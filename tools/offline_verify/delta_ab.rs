//! Offline A/B of the adaptive-monitoring pipeline: signaling bytes of
//! full vs delta vs adaptive reporting over the time-varying KPI workload,
//! with byte-identical reconstruction asserted on every applied frame.
//!
//! This drives the REAL `flexric_sm::delta` codec and the REAL
//! `ransim::kpi` workload generator for 1000 simulated agents × 3 SMs
//! in-process (no transport, no tokio — the container has no crates
//! registry), so the measured bytes are exactly the SM payload bytes the
//! mem-transport A/B (`fig7b_monitoring_cost`) would carry per
//! indication.  The adaptive mode simulates the server's retune state
//! machine (backoff on quiescence, tighten on anomaly) and charges each
//! retune a conservative E2AP subscription-PDU cost against the savings.
//!
//! Prints the BENCH_fig7b.json document on stdout; exits non-zero if
//! delta or adaptive fail the ≥3x savings bar or any reconstruction
//! diverges.

use std::time::Instant;

use flexric_sm::delta::{content_hash, DeltaDecoder, DeltaEncoder, DeltaEvent, DeltaOut, DeltaRows};
use flexric_sm::{SmCodec, SmPayload};
use ransim_kpi::KpiGen;

const AGENTS: usize = 1000;
const UES: usize = 32;
const TICKS: u64 = 400; // 4 full quiet/active/burst cycles per agent
const KEYFRAME_EVERY: u32 = 16;
/// Adaptive retune state machine (mirrors `AdaptiveConfig` defaults).
const MAX_PERIOD: u64 = 64;
const QUIET_PERIODS: u64 = 4;
const BACKLOG_THR: u64 = 500_000;
/// Conservative wire cost charged per retune (RIC Subscription Request +
/// Response with the re-encoded trigger, FB E2AP framing included).
const RETUNE_PDU_BYTES: u64 = 96;

#[derive(Default, Clone, Copy)]
struct Tally {
    bytes: u64,
    reports: u64,
    suppressed: u64,
    keyframes: u64,
    deltas: u64,
    retunes: u64,
    reconstruct_ns: u64,
    reconstructed: u64,
}

/// One delta stream under test: encoder, mirror decoder, identity checks.
struct Stream<T: DeltaRows + SmPayload + Clone + PartialEq> {
    enc: DeltaEncoder<T>,
    dec: DeltaDecoder<T>,
    /// Byte-compare the re-encoded reconstruction on sampled agents (the
    /// content hash is checked on every frame for every agent).
    byte_check: bool,
}

impl<T: DeltaRows + SmPayload + Clone + PartialEq> Stream<T> {
    fn new(byte_check: bool) -> Self {
        Stream { enc: DeltaEncoder::new(KEYFRAME_EVERY), dec: DeltaDecoder::new(), byte_check }
    }

    fn report(&mut self, src: &T, codec: SmCodec, t: &mut Tally) {
        t.reports += 1;
        let frame = match self.enc.encode(src, codec) {
            DeltaOut::Suppressed => {
                t.suppressed += 1;
                return;
            }
            DeltaOut::Keyframe(f) => {
                t.keyframes += 1;
                f
            }
            DeltaOut::Delta(f) => {
                t.deltas += 1;
                f
            }
        };
        t.bytes += frame.len() as u64;
        let t0 = Instant::now();
        let ev = self.dec.apply(&frame, codec).expect("frame decodes");
        t.reconstruct_ns += t0.elapsed().as_nanos() as u64;
        t.reconstructed += 1;
        match ev {
            DeltaEvent::Snapshot { snap, .. } => {
                assert_eq!(
                    content_hash(&snap),
                    content_hash(src),
                    "reconstructed content diverged from source"
                );
                if self.byte_check {
                    assert_eq!(
                        snap.encode(codec),
                        src.encode(codec),
                        "reconstruction is not byte-identical after re-encode"
                    );
                }
            }
            DeltaEvent::NeedKeyframe { reason } => {
                panic!("lossless in-process stream lost sync: {reason}")
            }
        }
    }
}

/// Per-agent adaptive period state (mirrors the monitoring iApp).
struct Adapt {
    period: u64,
    quiet: u64,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

struct ModeRun {
    codec: &'static str,
    mode: &'static str,
    tally: Tally,
    window_ms: u64,
}

fn run_mode(codec: SmCodec, mode: &'static str) -> ModeRun {
    let codec_name = match codec {
        SmCodec::Asn1Per => "per",
        SmCodec::Flatb => "fb",
    };
    let mut gens: Vec<KpiGen> = (0..AGENTS).map(|i| KpiGen::new(i as u64, UES)).collect();
    let mut macs = Vec::new();
    let mut rlcs = Vec::new();
    let mut pdcps = Vec::new();
    let mut adapts = Vec::new();
    for i in 0..AGENTS {
        let byte_check = i % 97 == 0;
        macs.push(Stream::new(byte_check));
        rlcs.push(Stream::new(byte_check));
        pdcps.push(Stream::new(byte_check));
        adapts.push(Adapt { period: 1, quiet: 0 });
    }
    let mut t = Tally::default();
    for tick in 1..=TICKS {
        for i in 0..AGENTS {
            gens[i].step(tick);
            match mode {
                "full" => {
                    t.reports += 3;
                    t.bytes += gens[i].mac().encode(codec).len() as u64;
                    t.bytes += gens[i].rlc().encode(codec).len() as u64;
                    t.bytes += gens[i].pdcp().encode(codec).len() as u64;
                }
                "delta" => {
                    macs[i].report(gens[i].mac(), codec, &mut t);
                    rlcs[i].report(gens[i].rlc(), codec, &mut t);
                    pdcps[i].report(gens[i].pdcp(), codec, &mut t);
                }
                "adaptive" => {
                    let a = &mut adapts[i];
                    if tick % a.period != 0 {
                        continue;
                    }
                    let before = t.suppressed;
                    macs[i].report(gens[i].mac(), codec, &mut t);
                    rlcs[i].report(gens[i].rlc(), codec, &mut t);
                    pdcps[i].report(gens[i].pdcp(), codec, &mut t);
                    let all_suppressed = t.suppressed == before + 3;
                    let anomaly =
                        gens[i].mac().ues.iter().any(|u| u.dl_backlog_bytes > BACKLOG_THR);
                    // Period-only retunes are *soft* (the ordered
                    // transport preserves sequence continuity, so the
                    // delta base survives); only the E2AP PDU is charged.
                    if anomaly && a.period > 1 {
                        a.period = 1;
                        a.quiet = 0;
                        t.retunes += 1;
                        t.bytes += RETUNE_PDU_BYTES;
                    } else if all_suppressed {
                        a.quiet += 1;
                        if a.quiet >= QUIET_PERIODS && a.period < MAX_PERIOD {
                            a.period = (a.period * 2).min(MAX_PERIOD);
                            a.quiet = 0;
                            t.retunes += 1;
                            t.bytes += RETUNE_PDU_BYTES;
                        }
                    } else {
                        a.quiet = 0;
                    }
                }
                _ => unreachable!(),
            }
        }
    }
    ModeRun { codec: codec_name, mode, tally: t, window_ms: TICKS }
}

fn main() {
    let mut runs = Vec::new();
    for codec in [SmCodec::Flatb, SmCodec::Asn1Per] {
        for mode in ["full", "delta", "adaptive"] {
            runs.push(run_mode(codec, mode));
        }
    }

    let bytes_of = |codec: &str, mode: &str| {
        runs.iter().find(|r| r.codec == codec && r.mode == mode).map(|r| r.tally.bytes).unwrap()
    };
    let mut ok = true;
    let mut savings = Vec::new();
    for codec in ["fb", "per"] {
        let full = bytes_of(codec, "full") as f64;
        let d = full / bytes_of(codec, "delta") as f64;
        let a = full / bytes_of(codec, "adaptive") as f64;
        if d < 3.0 || a < 3.0 {
            ok = false;
        }
        savings.push((codec, d, a));
    }

    let note = format!(
        "The build container has no crates registry, so the full-stack mem-transport sweep \
         (fig7b_monitoring_cost) cannot run here; these are REAL measured SM payload bytes from \
         the real delta codec (flexric_sm::delta) over the real time-varying workload \
         (ransim::kpi) for {AGENTS} agents x 3 SMs x {TICKS} report periods, with \
         reconstruction content-hash-verified on every frame and byte-identity-verified on \
         every ~100th agent; adaptive retunes are charged {RETUNE_PDU_BYTES} B each. Run \
         `cargo run --release -p flexric-bench --bin fig7b_monitoring_cost` on a networked \
         host to overwrite this file with live end-to-end points (same --out flag and schema)."
    );

    let mut points = String::new();
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            points.push_str(",\n");
        }
        let t = &r.tally;
        let bps = t.bytes as f64 * 1_000.0 / r.window_ms as f64;
        let rec_ns =
            if t.reconstructed == 0 { 0 } else { t.reconstruct_ns / t.reconstructed };
        points.push_str(&format!(
            "    {{\"agents\": {AGENTS}, \"sm_codec\": \"{}\", \"mode\": \"{}\", \
             \"window_ms\": {}, \"reports\": {}, \"sm_bytes\": {}, \
             \"bytes_per_simulated_s\": {:.0}, \"suppressed\": {}, \"keyframes\": {}, \
             \"deltas\": {}, \"retunes\": {}, \"reconstruct_ns_avg\": {}}}",
            r.codec, r.mode, r.window_ms, t.reports, t.bytes, bps, t.suppressed, t.keyframes,
            t.deltas, t.retunes, rec_ns,
        ));
    }
    let mut savings_json = String::new();
    for (i, (codec, d, a)) in savings.iter().enumerate() {
        if i > 0 {
            savings_json.push_str(", ");
        }
        savings_json.push_str(&format!(
            "{{\"sm_codec\": \"{codec}\", \"delta_savings\": {d:.2}, \
             \"adaptive_savings\": {a:.2}}}"
        ));
    }
    println!(
        "{{\n  \"bench\": \"fig7b\",\n  \"source\": \"tools/offline_verify/run.sh (delta_ab, \
         real delta codec + real kpi workload, bare rustc)\",\n  \"status\": \
         \"measured-offline-components\",\n  \"note\": \"{}\",\n  \"ues_per_agent\": {UES},\n  \
         \"sms_per_agent\": 3,\n  \"keyframe_every\": {KEYFRAME_EVERY},\n  \
         \"savings_at_{AGENTS}_agents\": [{savings_json}],\n  \"points\": [\n{points}\n  ]\n}}",
        json_escape(&note),
    );
    for (codec, d, a) in &savings {
        eprintln!("{codec}: delta {d:.2}x, adaptive {a:.2}x vs full");
    }
    if !ok {
        eprintln!("FAIL: savings below the 3x acceptance bar");
        std::process::exit(1);
    }
}
