//! Refcount-faithful test double of the `bytes` crate API surface this
//! workspace uses, for offline verification with bare `rustc` (the build
//! container has no crates registry).
//!
//! Unlike a naive `Vec<u8>` shim, this one preserves the semantics the
//! zero-copy receive path is built on:
//!
//! * `BytesMut::split_to(..).freeze()` and `Bytes::slice_ref` are O(1)
//!   pointer bookkeeping into a shared slab (`Arc`), not copies — so
//!   pointer-identity assertions in the real tests (`slice views share
//!   the slab`, `decode_borrowed borrows from the input`) actually hold
//!   or fail exactly as with the real crate;
//! * `reserve` keeps the slab while the handle has room, reclaims it
//!   in place when the handle is the sole owner, and allocates a fresh
//!   slab only when views are still outstanding — the amortization the
//!   receive path's lifetime rules depend on.
//!
//! Soundness: a `BytesMut` is the exclusive owner of `[off, limit)` of
//! its slab; `split_to`/`split_off` shrink that window before sharing,
//! and frozen `Bytes` views are read-only, so the `UnsafeCell` writes
//! never alias a readable range.

use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

struct Slab(UnsafeCell<Box<[u8]>>);

// Handles enforce range exclusivity (see module docs); the slab itself
// can then cross threads like the real crate's shared buffer does.
unsafe impl Send for Slab {}
unsafe impl Sync for Slab {}

impl Slab {
    fn new(cap: usize) -> Arc<Slab> {
        Arc::new(Slab(UnsafeCell::new(vec![0u8; cap].into_boxed_slice())))
    }
    fn cap(&self) -> usize {
        unsafe { (&(*self.0.get())).len() }
    }
    fn ptr(&self) -> *mut u8 {
        unsafe { (*self.0.get()).as_mut_ptr() }
    }
}

/// Cheaply cloneable shared view of a slab range.
pub struct Bytes {
    slab: Arc<Slab>,
    off: usize,
    len: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes { slab: Slab::new(0), off: 0, len: 0 }
    }

    pub fn from_static(s: &'static [u8]) -> Self {
        Self::copy_from_slice(s)
    }

    pub fn copy_from_slice(s: &[u8]) -> Self {
        let slab = Slab::new(s.len());
        unsafe { std::ptr::copy_nonoverlapping(s.as_ptr(), slab.ptr(), s.len()) };
        Bytes { slab, off: 0, len: s.len() }
    }

    /// O(1) subview of `self` given a subslice of its contents — the real
    /// crate's pointer-range semantics, including the panic when `sub` is
    /// not in range.
    pub fn slice_ref(&self, sub: &[u8]) -> Bytes {
        if sub.is_empty() {
            return Bytes::new();
        }
        let base = self.as_ptr() as usize;
        let p = sub.as_ptr() as usize;
        assert!(
            p >= base && p + sub.len() <= base + self.len,
            "slice_ref: subslice out of range"
        );
        Bytes { slab: self.slab.clone(), off: self.off + (p - base), len: sub.len() }
    }

    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len);
        let front = Bytes { slab: self.slab.clone(), off: self.off, len: at };
        self.off += at;
        self.len -= at;
        front
    }

    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len);
        let back = Bytes { slab: self.slab.clone(), off: self.off + at, len: self.len - at };
        self.len = at;
        back
    }

    pub fn clear(&mut self) {
        self.len = 0;
    }
}

impl Clone for Bytes {
    fn clone(&self) -> Self {
        Bytes { slab: self.slab.clone(), off: self.off, len: self.len }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.slab.ptr().add(self.off), self.len) }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, o: &Bytes) -> bool {
        self[..] == o[..]
    }
}
impl Eq for Bytes {}
impl PartialOrd for Bytes {
    fn partial_cmp(&self, o: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for Bytes {
    fn cmp(&self, o: &Bytes) -> std::cmp::Ordering {
        self[..].cmp(&o[..])
    }
}
impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, h: &mut H) {
        self[..].hash(h)
    }
}
impl PartialEq<[u8]> for Bytes {
    fn eq(&self, o: &[u8]) -> bool {
        self[..] == *o
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, o: &&[u8]) -> bool {
        self[..] == **o
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, o: &Vec<u8>) -> bool {
        self[..] == o[..]
    }
}
impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::copy_from_slice(&v)
    }
}
impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}
impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}
impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}
impl From<BytesMut> for Bytes {
    fn from(v: BytesMut) -> Self {
        v.freeze()
    }
}
impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

/// Unique growable view over `[off, limit)` of a slab; the written
/// region is `[off, off + len)`.
pub struct BytesMut {
    slab: Arc<Slab>,
    off: usize,
    len: usize,
    limit: usize,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { slab: Slab::new(0), off: 0, len: 0, limit: 0 }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { slab: Slab::new(cap), off: 0, len: 0, limit: cap }
    }

    pub fn zeroed(len: usize) -> Self {
        BytesMut { slab: Slab::new(len), off: 0, len, limit: len }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Usable capacity of this handle, like the real crate: bytes between
    /// the view's start and the end of its exclusive window.
    pub fn capacity(&self) -> usize {
        self.limit - self.off
    }

    /// Ensures room for `additional` more bytes.  Mirrors the real
    /// crate's strategy: no-op while the window has room; reclaim the
    /// slab front in place when this handle is the sole owner; otherwise
    /// move to a fresh slab and leave the old one to the outstanding
    /// views.
    pub fn reserve(&mut self, additional: usize) {
        if self.limit - self.off - self.len >= additional {
            return;
        }
        let sole = Arc::strong_count(&self.slab) == 1;
        if sole && self.limit == self.slab.cap() && self.slab.cap() >= self.len + additional {
            unsafe {
                std::ptr::copy(self.slab.ptr().add(self.off), self.slab.ptr(), self.len);
            }
            self.off = 0;
            return;
        }
        let cap = (self.len + additional).max(self.slab.cap()).max(64);
        let slab = Slab::new(cap);
        unsafe {
            std::ptr::copy_nonoverlapping(self.slab.ptr().add(self.off), slab.ptr(), self.len);
        }
        self.slab = slab;
        self.off = 0;
        self.limit = cap;
    }

    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.reserve(s.len());
        unsafe {
            std::ptr::copy_nonoverlapping(
                s.as_ptr(),
                self.slab.ptr().add(self.off + self.len),
                s.len(),
            );
        }
        self.len += s.len();
    }

    pub fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }

    pub fn put_u8(&mut self, v: u8) {
        self.extend_from_slice(&[v]);
    }

    pub fn resize(&mut self, new_len: usize, value: u8) {
        if new_len > self.len {
            let grow = new_len - self.len;
            self.reserve(grow);
            unsafe {
                std::ptr::write_bytes(self.slab.ptr().add(self.off + self.len), value, grow);
            }
        }
        self.len = new_len;
    }

    pub fn truncate(&mut self, len: usize) {
        self.len = self.len.min(len);
    }

    pub fn clear(&mut self) {
        self.len = 0;
    }

    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len);
        let front =
            BytesMut { slab: self.slab.clone(), off: self.off, len: at, limit: self.off + at };
        self.off += at;
        self.len -= at;
        front
    }

    pub fn split_off(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len);
        let back = BytesMut {
            slab: self.slab.clone(),
            off: self.off + at,
            len: self.len - at,
            limit: self.limit,
        };
        self.limit = self.off + at;
        self.len = at;
        back
    }

    pub fn split(&mut self) -> BytesMut {
        let at = self.len;
        self.split_to(at)
    }

    pub fn freeze(self) -> Bytes {
        Bytes { slab: self.slab, off: self.off, len: self.len }
    }
}

impl Default for BytesMut {
    fn default() -> Self {
        BytesMut::new()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.slab.ptr().add(self.off), self.len) }
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        unsafe { std::slice::from_raw_parts_mut(self.slab.ptr().add(self.off), self.len) }
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(self), f)
    }
}

impl PartialEq for BytesMut {
    fn eq(&self, o: &BytesMut) -> bool {
        self[..] == o[..]
    }
}
impl Eq for BytesMut {}
impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        let mut b = BytesMut::with_capacity(v.len());
        b.extend_from_slice(v);
        b
    }
}
impl Clone for BytesMut {
    fn clone(&self) -> Self {
        BytesMut::from(&self[..])
    }
}

/// The subset of `bytes::Buf` the workspace uses.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len);
        self.off += cnt;
        self.len -= cnt;
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len);
        self.off += cnt;
        self.len -= cnt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_to_freeze_shares_the_slab() {
        let mut m = BytesMut::with_capacity(64);
        m.extend_from_slice(b"aaaabbbb");
        let a = m.split_to(4).freeze();
        let base = a.as_ptr() as usize;
        let rest = m.freeze();
        assert_eq!(rest.as_ptr() as usize - base, 4, "views are contiguous in one slab");
        assert_eq!(&a[..], b"aaaa");
        assert_eq!(&rest[..], b"bbbb");
    }

    #[test]
    fn slice_ref_is_a_view() {
        let b = Bytes::copy_from_slice(b"hello world");
        let sub = b.slice_ref(&b[6..]);
        assert_eq!(&sub[..], b"world");
        assert_eq!(sub.as_ptr() as usize, b.as_ptr() as usize + 6);
    }

    #[test]
    fn reserve_reclaims_in_place_when_sole_owner() {
        let mut m = BytesMut::with_capacity(8);
        m.extend_from_slice(b"12345678");
        let f = m.split_to(6).freeze();
        drop(f); // view gone: handle is sole owner again
        m.reserve(6); // 2 bytes live, cap 8: reclaim without realloc
        assert!(m.capacity() >= 8);
        assert_eq!(&m[..], b"78");
    }

    #[test]
    fn reserve_moves_to_fresh_slab_when_views_outstanding() {
        let mut m = BytesMut::with_capacity(8);
        m.extend_from_slice(b"12345678");
        let f = m.split_to(6).freeze();
        let old = f.as_ptr() as usize;
        m.reserve(32); // outstanding view pins the old slab
        m.extend_from_slice(b"xx");
        assert_eq!(&f[..], b"123456", "view survives the handle's move");
        assert_eq!(f.as_ptr() as usize, old);
        assert_eq!(&m[..], b"78xx");
    }

    #[test]
    fn advance_then_split_views() {
        let mut m = BytesMut::from(&b"hhhhppppqqqq"[..]);
        Buf::advance(&mut m, 4);
        let p = m.split_to(4).freeze();
        assert_eq!(&p[..], b"pppp");
        assert_eq!(&m[..], b"qqqq");
    }
}
