#!/bin/sh
# Offline verification with bare rustc, for containers without a crates
# registry (cargo cannot resolve even cached deps there).  Compiles the
# dependency-light REAL crates — obs, e2ap, codec, and the tokio-free
# transport core (frame + rx) — against the refcount-faithful bytes shim
# and the mini proptest shim, runs their unit AND property tests, then
# runs the receive-path A/B measurement.
#
# This is a *partial* stand-in for `cargo test`: crates needing tokio
# (transport sockets, core, ctrl, ransim, bench) still require a
# networked host.  What it does cover is real: the exact sources of the
# frame codec, reassembler, borrowed decode, and obs registry, with
# refcount/pointer semantics faithful enough that the zero-copy
# assertions are meaningful.
#
# Usage: tools/offline_verify/run.sh  (from anywhere; writes to $WORK or
# a fresh tempdir, prints a PASS/FAIL summary and the A/B JSON).
set -eu
cd "$(dirname "$0")"
ROOT=$(cd ../.. && pwd)
WORK=${WORK:-$(mktemp -d /tmp/flexric-offline.XXXXXX)}
echo "workdir: $WORK"

RUSTC="rustc --edition 2021 -O -L dependency=$WORK"

# 1. Shims (the bytes shim's own semantics tests run first — if the
#    double is wrong, everything downstream is noise).
$RUSTC --crate-type rlib --crate-name bytes bytes_shim.rs -o "$WORK/libbytes.rlib"
$RUSTC --test --crate-name bytes_shim_tests bytes_shim.rs -o "$WORK/bytes_shim_tests"
"$WORK/bytes_shim_tests" --quiet
$RUSTC --crate-type rlib --crate-name proptest mini_proptest.rs -o "$WORK/libproptest.rlib"

# 2. Real crates as rlibs (dependency order).
$RUSTC --crate-type rlib --crate-name flexric_obs \
    "$ROOT/crates/obs/src/lib.rs" -o "$WORK/libflexric_obs.rlib"
$RUSTC --crate-type rlib --crate-name flexric_e2ap \
    --extern bytes="$WORK/libbytes.rlib" \
    "$ROOT/crates/e2ap/src/lib.rs" -o "$WORK/libflexric_e2ap.rlib"
$RUSTC --crate-type rlib --crate-name flexric_codec \
    --extern bytes="$WORK/libbytes.rlib" \
    --extern flexric_e2ap="$WORK/libflexric_e2ap.rlib" \
    --extern flexric_obs="$WORK/libflexric_obs.rlib" \
    "$ROOT/crates/codec/src/lib.rs" -o "$WORK/libflexric_codec.rlib"
$RUSTC --crate-type rlib --crate-name flexric_transport \
    --extern bytes="$WORK/libbytes.rlib" \
    transport_core.rs -o "$WORK/libflexric_transport.rlib"
$RUSTC --crate-type rlib --crate-name flexric_sm \
    --extern bytes="$WORK/libbytes.rlib" \
    --extern flexric_codec="$WORK/libflexric_codec.rlib" \
    --extern flexric_e2ap="$WORK/libflexric_e2ap.rlib" \
    --extern flexric_obs="$WORK/libflexric_obs.rlib" \
    "$ROOT/crates/sm/src/lib.rs" -o "$WORK/libflexric_sm.rlib"
# ransim's KPI workload module is deliberately std+sm-only so it compiles
# standalone here (the rest of ransim needs rand/parking_lot).
$RUSTC --crate-type rlib --crate-name ransim_kpi \
    --extern flexric_sm="$WORK/libflexric_sm.rlib" \
    "$ROOT/crates/ransim/src/kpi.rs" -o "$WORK/libransim_kpi.rlib"
# The FULL ransim crate is std+sm+obs-only in source (rand/parking_lot
# are declared but unused), so the whole simulator — scheduler, RLC, TC,
# traffic, scenario engine — compiles and tests under bare rustc.
$RUSTC --crate-type rlib --crate-name flexric_ransim \
    --extern flexric_sm="$WORK/libflexric_sm.rlib" \
    --extern flexric_obs="$WORK/libflexric_obs.rlib" \
    "$ROOT/crates/ransim/src/lib.rs" -o "$WORK/libflexric_ransim.rlib"
# The SLA share solver is std-only by design (see crates/ctrl/src/sla_solver.rs).
$RUSTC --crate-type rlib --crate-name sla_solver \
    "$ROOT/crates/ctrl/src/sla_solver.rs" -o "$WORK/libsla_solver.rlib"

# 3. Unit + property tests of the real modules.
$RUSTC --test --crate-name obs_tests \
    "$ROOT/crates/obs/src/lib.rs" -o "$WORK/obs_tests"
"$WORK/obs_tests" --quiet
$RUSTC --test --crate-name e2ap_tests \
    --extern bytes="$WORK/libbytes.rlib" \
    "$ROOT/crates/e2ap/src/lib.rs" -o "$WORK/e2ap_tests"
"$WORK/e2ap_tests" --quiet
$RUSTC --test --crate-name codec_tests \
    --extern bytes="$WORK/libbytes.rlib" \
    --extern flexric_e2ap="$WORK/libflexric_e2ap.rlib" \
    --extern flexric_obs="$WORK/libflexric_obs.rlib" \
    --extern proptest="$WORK/libproptest.rlib" \
    "$ROOT/crates/codec/src/lib.rs" -o "$WORK/codec_tests"
"$WORK/codec_tests" --quiet
$RUSTC --test --crate-name transport_core_tests \
    --extern bytes="$WORK/libbytes.rlib" \
    transport_core.rs -o "$WORK/transport_core_tests"
"$WORK/transport_core_tests" --quiet
$RUSTC --test --crate-name sm_tests \
    --extern bytes="$WORK/libbytes.rlib" \
    --extern flexric_codec="$WORK/libflexric_codec.rlib" \
    --extern flexric_e2ap="$WORK/libflexric_e2ap.rlib" \
    --extern flexric_obs="$WORK/libflexric_obs.rlib" \
    "$ROOT/crates/sm/src/lib.rs" -o "$WORK/sm_tests"
"$WORK/sm_tests" --quiet
$RUSTC --test --crate-name kpi_tests \
    --extern flexric_sm="$WORK/libflexric_sm.rlib" \
    "$ROOT/crates/ransim/src/kpi.rs" -o "$WORK/kpi_tests"
"$WORK/kpi_tests" --quiet
# Full ransim unit tests — scheduler, RLC, TC, traffic, and the scenario
# engine (mobility/churn/outage determinism, handover conservation).
$RUSTC --test --crate-name ransim_tests \
    --extern flexric_sm="$WORK/libflexric_sm.rlib" \
    --extern flexric_obs="$WORK/libflexric_obs.rlib" \
    "$ROOT/crates/ransim/src/lib.rs" -o "$WORK/ransim_tests"
"$WORK/ransim_tests" --quiet
$RUSTC --test --crate-name sla_solver_tests \
    "$ROOT/crates/ctrl/src/sla_solver.rs" -o "$WORK/sla_solver_tests"
"$WORK/sla_solver_tests" --quiet

# 4b. The real delta-stream property tests (crates/sm/tests/delta_props.rs).
$RUSTC --test --crate-name delta_props \
    --extern bytes="$WORK/libbytes.rlib" \
    --extern flexric_sm="$WORK/libflexric_sm.rlib" \
    --extern proptest="$WORK/libproptest.rlib" \
    "$ROOT/crates/sm/tests/delta_props.rs" -o "$WORK/delta_props"
"$WORK/delta_props" --quiet

# 4c. The real SM-registry property tests (crates/sm/tests/registry_props.rs).
$RUSTC --test --crate-name registry_props \
    --extern flexric_sm="$WORK/libflexric_sm.rlib" \
    --extern proptest="$WORK/libproptest.rlib" \
    "$ROOT/crates/sm/tests/registry_props.rs" -o "$WORK/registry_props"
"$WORK/registry_props" --quiet

# 4. The real receive-path property tests (tests/rx_props.rs), verbatim.
$RUSTC --test --crate-name rx_props \
    --extern bytes="$WORK/libbytes.rlib" \
    --extern flexric_transport="$WORK/libflexric_transport.rlib" \
    --extern proptest="$WORK/libproptest.rlib" \
    "$ROOT/crates/transport/tests/rx_props.rs" -o "$WORK/rx_props"
"$WORK/rx_props" --quiet

# 4d. Scenario-engine property tests (crates/ransim/tests/scenario_props.rs):
#     seed determinism, UE conservation across handover, Poisson sanity.
$RUSTC --test --crate-name scenario_props \
    --extern flexric_ransim="$WORK/libflexric_ransim.rlib" \
    --extern flexric_sm="$WORK/libflexric_sm.rlib" \
    --extern flexric_obs="$WORK/libflexric_obs.rlib" \
    --extern proptest="$WORK/libproptest.rlib" \
    "$ROOT/crates/ransim/tests/scenario_props.rs" -o "$WORK/scenario_props"
"$WORK/scenario_props" --quiet

# 5. Receive-path + codec A/B measurement (feeds BENCH_fig8b/9a notes).
$RUSTC --crate-name ab_bench \
    --extern bytes="$WORK/libbytes.rlib" \
    --extern flexric_e2ap="$WORK/libflexric_e2ap.rlib" \
    --extern flexric_obs="$WORK/libflexric_obs.rlib" \
    --extern flexric_codec="$WORK/libflexric_codec.rlib" \
    --extern flexric_transport="$WORK/libflexric_transport.rlib" \
    ab_bench.rs -o "$WORK/ab_bench"
# (redirect + cat, not `| tee`: a pipe would mask the exit status)
"$WORK/ab_bench" > "$WORK/ab.json"
cat "$WORK/ab.json"

# 6. Adaptive-monitoring A/B (full vs delta vs adaptive; feeds
#    BENCH_fig7b.json): real delta codec + real kpi workload, with
#    byte-identical reconstruction asserted as it runs.
$RUSTC --crate-name delta_ab \
    --extern bytes="$WORK/libbytes.rlib" \
    --extern flexric_sm="$WORK/libflexric_sm.rlib" \
    --extern ransim_kpi="$WORK/libransim_kpi.rlib" \
    delta_ab.rs -o "$WORK/delta_ab"
"$WORK/delta_ab" > "$WORK/fig7b.json"
cat "$WORK/fig7b.json"

# 7. SLA closed-loop A/B (open vs closed NVS shares under scenario load;
#    feeds BENCH_sla.json): real scenario engine + real simulator + real
#    solver, trace hash-checked identical across arms, closed loop
#    required to reduce violation time.
$RUSTC --crate-name sla_ab \
    --extern flexric_ransim="$WORK/libflexric_ransim.rlib" \
    --extern flexric_sm="$WORK/libflexric_sm.rlib" \
    --extern flexric_obs="$WORK/libflexric_obs.rlib" \
    --extern sla_solver="$WORK/libsla_solver.rlib" \
    sla_ab.rs -o "$WORK/sla_ab"
"$WORK/sla_ab" > "$WORK/sla.json"
cat "$WORK/sla.json"

echo "offline verify: ALL PASS (see caveats in tools/offline_verify/run.sh header)"
