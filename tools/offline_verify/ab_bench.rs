//! Offline A/B measurement of the receive path and codec, linking the
//! REAL workspace crates (obs, e2ap, codec, transport frame+rx) against
//! the refcount-faithful bytes shim.  Emits one JSON document to stdout;
//! `run.sh` captures it, and the checked-in `BENCH_fig8b.json` /
//! `BENCH_fig9a.json` derive their measured component points from it
//! (full-stack sweeps need a networked host — see those files' notes).

use bytes::{Bytes, BytesMut};
use flexric_codec::E2apCodec;
use flexric_e2ap::*;
use flexric_transport::frame::{decode_header, encode_frame_into, HEADER_LEN};
use flexric_transport::rx::FrameAssembler;
use flexric_transport::WireMsg;

const FRAMES: usize = 64;

fn burst(n: usize, payload: usize) -> Vec<u8> {
    let body = vec![0xA5u8; payload];
    let mut out = BytesMut::with_capacity(n * (HEADER_LEN + payload));
    for i in 0..n {
        encode_frame_into((i % 2) as u16, 70, &body, &mut out);
    }
    out.to_vec()
}

fn drain_copying(mut buf: &[u8]) -> u64 {
    let mut frames = 0u64;
    while buf.len() >= HEADER_LEN {
        let mut hdr = [0u8; HEADER_LEN];
        hdr.copy_from_slice(&buf[..HEADER_LEN]);
        let (len, stream, ppid) = decode_header(&hdr);
        let len = len as usize;
        buf = &buf[HEADER_LEN..];
        let mut payload = BytesMut::zeroed(len);
        payload.copy_from_slice(&buf[..len]);
        buf = &buf[len..];
        std::hint::black_box(WireMsg { stream, ppid, payload: payload.freeze() });
        frames += 1;
    }
    frames
}

fn drain_assembler(asm: &mut FrameAssembler, buf: &[u8]) -> u64 {
    let mut frames = 0u64;
    asm.feed(buf);
    while let Ok(Some(msg)) = asm.next_frame() {
        std::hint::black_box(msg);
        frames += 1;
    }
    frames
}

/// Median-of-5 runs of `iters` calls each, ns per call.
fn time_ns(iters: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..iters / 4 + 1 {
        f(); // warmup
    }
    let mut runs: Vec<f64> = (0..5)
        .map(|_| {
            let t0 = std::time::Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    runs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    runs[2]
}

fn indication(payload: usize) -> E2apPdu {
    E2apPdu::RicIndication(RicIndication {
        req_id: RicRequestId::new(1, 1),
        ran_function: RanFunctionId::new(142),
        action: RicActionId(0),
        sn: Some(7),
        ind_type: RicIndicationType::Report,
        header: Bytes::copy_from_slice(&[0x11; 16]),
        message: Bytes::copy_from_slice(&vec![0x22; payload]),
        call_process_id: None,
    })
}

fn main() {
    let mut out = String::from("{\n");

    // --- rx reassembly A/B (per frame) ---
    out.push_str("  \"rx_reassembly\": [\n");
    for (i, payload) in [64usize, 1024, 16 * 1024].iter().enumerate() {
        let data = burst(FRAMES, *payload);
        let iters = if *payload >= 16 * 1024 { 200 } else { 2000 };
        let copy_ns = time_ns(iters, || {
            assert_eq!(drain_copying(std::hint::black_box(&data)), FRAMES as u64);
        }) / FRAMES as f64;
        let mut asm = FrameAssembler::new();
        let zc_ns = time_ns(iters, || {
            assert_eq!(drain_assembler(&mut asm, std::hint::black_box(&data)), FRAMES as u64);
        }) / FRAMES as f64;
        out.push_str(&format!(
            "    {{\"payload_bytes\": {payload}, \"copying_ns_per_frame\": {copy_ns:.1}, \
             \"zero_copy_ns_per_frame\": {zc_ns:.1}, \"speedup\": {:.2}}}{}\n",
            copy_ns / zc_ns,
            if i < 2 { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");

    // --- decode A/B: owned vs borrowed, both codecs (per op) ---
    out.push_str("  \"decode\": [\n");
    for (i, payload) in [100usize, 1500].iter().enumerate() {
        let pdu = indication(*payload);
        let mut fields = Vec::new();
        for codec in [E2apCodec::Flatb, E2apCodec::Asn1Per] {
            let raw = Bytes::from(codec.encode(&pdu));
            // Borrowed decode really borrows: the indication message must
            // point into `raw`.
            let dec = codec.decode_borrowed(&raw).unwrap();
            if let E2apPdu::RicIndication(ind) = &dec {
                let base = raw.as_ptr() as usize;
                let p = ind.message.as_ptr() as usize;
                assert!(
                    p >= base && p + ind.message.len() <= base + raw.len(),
                    "decode_borrowed must alias the input ({codec:?})"
                );
            }
            assert_eq!(dec, codec.decode(&raw).unwrap());
            let owned_ns = time_ns(5000, || {
                std::hint::black_box(codec.decode(std::hint::black_box(&raw)).unwrap());
            });
            let borrowed_ns = time_ns(5000, || {
                std::hint::black_box(
                    codec.decode_borrowed(std::hint::black_box(&raw)).unwrap(),
                );
            });
            let encode_ns = time_ns(5000, || {
                std::hint::black_box(codec.encode(std::hint::black_box(&pdu)));
            });
            let peek_ns = time_ns(5000, || {
                std::hint::black_box(codec.peek(std::hint::black_box(&raw)).unwrap());
            });
            let tag = match codec {
                E2apCodec::Flatb => "fb",
                E2apCodec::Asn1Per => "per",
            };
            fields.push(format!(
                "\"{tag}_encode_ns\": {encode_ns:.1}, \"{tag}_peek_ns\": {peek_ns:.1}, \
                 \"{tag}_decode_owned_ns\": {owned_ns:.1}, \
                 \"{tag}_decode_borrowed_ns\": {borrowed_ns:.1}"
            ));
        }
        out.push_str(&format!(
            "    {{\"payload_bytes\": {payload}, {}}}{}\n",
            fields.join(", "),
            if i < 1 { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    print!("{out}");
}
