//! Offline SLA closed-loop A/B: the REAL scenario engine + REAL
//! simulator + REAL solver, no transport/server in between (the
//! container has no crates registry, so the full-stack
//! `fig_sla_scenario` bench cannot link tokio here).
//!
//! Per preset the same seeded scenario runs twice — open loop (static
//! NVS shares) and closed loop (sla_solver re-solving every eval
//! period, applied through the same `SliceCtrl::AddModSlices` path the
//! SC SM control plane uses).  The scenario trace is hash-checked
//! identical across arms, making the violation-seconds comparison
//! paired.  Emits BENCH_sla.json-schema JSON on stdout and exits
//! non-zero if the closed loop fails to reduce violation time on any
//! preset.
//!
//! Compiled by tools/offline_verify/run.sh with bare rustc against the
//! real flexric_ransim, flexric_sm and sla_solver rlibs.

use std::collections::{BTreeMap, HashMap};

use flexric_ransim::{ScenarioEngine, ScenarioSpec, Sim};
use flexric_sm::slice::{SliceCtrl, SliceParams, SliceStatsInd};
use sla_solver::{resolve, violated, SlaTarget, SliceObs, SolverCfg};

const DUR_MS: u64 = 30_000;
const EVAL_MS: u64 = 100;
const SEED: u64 = 7;

/// Same SLOs as the full-stack bench: voip bounded delay, web bounded
/// delay + throughput floor, mbb objective-free (the donor).
fn targets() -> Vec<SlaTarget> {
    vec![
        SlaTarget { slice: 0, thr_kbps_min: 0.0, delay_ms_max: 8.0, floor_milli: 100 },
        SlaTarget { slice: 1, thr_kbps_min: 2_000.0, delay_ms_max: 40.0, floor_milli: 100 },
        SlaTarget { slice: 2, thr_kbps_min: 0.0, delay_ms_max: 0.0, floor_milli: 100 },
    ]
}

/// Builds solver observations from one cell's windowed slice + RLC
/// statistics (the offline equivalent of `ctrl::sla::observations`,
/// which joins the same rows out of the monitoring store).
fn observe(stats: &SliceStatsInd, rlc: &flexric_sm::rlc::RlcStatsInd) -> Vec<SliceObs> {
    let slice_of: HashMap<u16, u32> = stats.ue_assoc.iter().copied().collect();
    let mut delay: HashMap<u32, (u64, u64)> = HashMap::new();
    for b in &rlc.bearers {
        if let Some(&sl) = slice_of.get(&b.rnti) {
            let e = delay.entry(sl).or_insert((0, 0));
            e.0 += b.sojourn_us_avg;
            e.1 += 1;
        }
    }
    stats
        .slices
        .iter()
        .filter_map(|s| {
            let SliceParams::NvsCapacity { share_milli } = s.conf.params else { return None };
            let d = delay
                .get(&s.conf.id)
                .map(|&(us, n)| us as f64 / if n == 0 { 1.0 } else { n as f64 } / 1000.0)
                .unwrap_or(0.0);
            Some(SliceObs {
                slice: s.conf.id,
                share_milli,
                thr_kbps: s.thr_kbps as f64,
                delay_ms: d,
                num_ues: s.num_ues,
            })
        })
        .collect()
}

struct Arm {
    violation_ms: BTreeMap<u32, u64>,
    pushes: u64,
    trace_hash: u64,
    handovers: u64,
    arrivals: u64,
    departures: u64,
    outages: u64,
}

fn run_arm(preset: &str, closed: bool) -> Arm {
    let spec = ScenarioSpec::preset(preset, SEED).expect("preset");
    let mut eng = ScenarioEngine::new(spec);
    let mut sim: Sim = eng.build_sim();
    eng.prime(&mut sim);
    let targets = targets();
    let solver = SolverCfg::default();
    let mut violation_ms: BTreeMap<u32, u64> = BTreeMap::new();
    let mut pushes = 0u64;

    for t in 1..=DUR_MS {
        sim.tick();
        eng.advance(&mut sim);
        if t % EVAL_MS != 0 {
            continue;
        }
        for ci in 0..sim.cells.len() {
            if eng.cell_down(ci) {
                continue; // dark cell: no monitoring rows, no control
            }
            let stats = sim.cells[ci].slice_stats();
            let rlc = sim.cells[ci].rlc_stats();
            let obs = observe(&stats, &rlc);
            for tg in &targets {
                if let Some(o) = obs.iter().find(|o| o.slice == tg.slice) {
                    if violated(tg, o) {
                        *violation_ms.entry(tg.slice).or_insert(0) += EVAL_MS;
                    }
                }
            }
            if !closed {
                continue;
            }
            if let Some(shares) = resolve(&targets, &obs, &solver) {
                let slices = stats
                    .slices
                    .iter()
                    .filter_map(|s| {
                        let (_, share) = shares.iter().find(|&&(id, _)| id == s.conf.id)?;
                        let mut conf = s.conf.clone();
                        conf.params = SliceParams::NvsCapacity { share_milli: *share };
                        Some(conf)
                    })
                    .collect::<Vec<_>>();
                sim.cells[ci]
                    .apply_slice_ctrl(&SliceCtrl::AddModSlices { slices })
                    .expect("solver respects the NVS budget");
                pushes += 1;
            }
        }
    }
    Arm {
        violation_ms,
        pushes,
        trace_hash: eng.trace_hash(),
        handovers: eng.stats.handovers,
        arrivals: eng.stats.arrivals,
        departures: eng.stats.departures,
        outages: eng.stats.outages,
    }
}

fn total(m: &BTreeMap<u32, u64>) -> u64 {
    m.values().sum()
}

fn by_slice_json(m: &BTreeMap<u32, u64>) -> String {
    let inner: Vec<String> = m.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
    format!("{{{}}}", inner.join(", "))
}

fn main() {
    let mut points = Vec::new();
    let mut ok = true;
    for preset in ["commuter-rush", "flash-crowd"] {
        let open = run_arm(preset, false);
        let closed = run_arm(preset, true);
        assert_eq!(
            open.trace_hash, closed.trace_hash,
            "scenario trace must be control-independent (paired A/B)"
        );
        let (o_s, c_s) = (total(&open.violation_ms) as f64 / 1e3, total(&closed.violation_ms) as f64 / 1e3);
        eprintln!(
            "{preset}: open {o_s:.1} viol-s, closed {c_s:.1} viol-s ({} pushes, {} handovers, {} outages)",
            closed.pushes, open.handovers, open.outages
        );
        ok &= c_s < o_s;
        for (name, arm) in [("open", &open), ("closed", &closed)] {
            points.push(format!(
                "    {{\"preset\": \"{preset}\", \"loop\": \"{name}\", \"virtual_ms\": {DUR_MS}, \
                 \"violation_s\": {:.3}, \"violation_ms_by_slice\": {}, \"pushes\": {}, \
                 \"handovers\": {}, \"arrivals\": {}, \"departures\": {}, \"outages\": {}, \
                 \"trace_hash\": \"{:016x}\"}}",
                total(&arm.violation_ms) as f64 / 1e3,
                by_slice_json(&arm.violation_ms),
                arm.pushes,
                arm.handovers,
                arm.arrivals,
                arm.departures,
                arm.outages,
                arm.trace_hash,
            ));
        }
    }
    println!("{{");
    println!("  \"bench\": \"sla_scenario\",");
    println!(
        "  \"source\": \"tools/offline_verify/run.sh (sla_ab: real scenario engine + real simulator + real solver, bare rustc)\","
    );
    println!("  \"status\": \"measured-offline-components\",");
    println!(
        "  \"note\": \"The build container has no crates registry, so the full-stack mem-transport A/B (fig_sla_scenario) cannot run here; these are REAL paired runs of the real scenario engine (mobility + churn + outages, seed {SEED}, trace hash-checked identical across arms) over the real NVS-scheduled simulator, with the real sla_solver re-solving shares every {EVAL_MS} virtual ms in the closed arm through the same SliceCtrl::AddModSlices path the SC SM uses. Only the E2 transport/server hop is elided. Run `cargo run --release -p flexric-bench --bin fig_sla_scenario` on a networked host to overwrite this file with live end-to-end points (same --out flag and schema).\","
    );
    println!("  \"points\": [");
    println!("{}", points.join(",\n"));
    println!("  ]");
    println!("}}");
    if !ok {
        eprintln!("FAIL: closed loop did not reduce SLA-violation time on every preset");
        std::process::exit(1);
    }
}
