//! Offline compilation wrapper for the tokio-free core of
//! `flexric-transport`: the frame codec and the zero-copy reassembler,
//! included from their real sources via `#[path]`, plus a verbatim copy
//! of `WireMsg` (whose real definition sits in the crate root next to
//! tokio-dependent code).  Compiled as `flexric_transport` so the real
//! `tests/rx_props.rs` links against it unchanged.

use bytes::Bytes;

#[path = "../../crates/transport/src/frame.rs"]
pub mod frame;
#[path = "../../crates/transport/src/rx.rs"]
pub mod rx;

/// One transport-level message (the unit SCTP would deliver).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireMsg {
    /// Stream id (SCTP stream); E2AP uses stream 0 for global procedures
    /// and nonzero streams for functional traffic.
    pub stream: u16,
    /// Payload protocol id; E2AP is PPID 70 per IANA.
    pub ppid: u32,
    /// The encoded E2AP PDU.
    pub payload: Bytes,
}

impl WireMsg {
    /// PPID assigned to E2AP.
    pub const PPID_E2AP: u32 = 70;

    /// Stream carrying global/control procedures (setup, subscription,
    /// control) — prioritized by the conn writer under load.
    pub const STREAM_CONTROL: u16 = 0;

    /// Stream carrying bulk functional traffic (RIC indications).
    pub const STREAM_BULK: u16 = 1;

    /// Convenience constructor for E2AP traffic on stream 0.
    pub fn e2ap(payload: Bytes) -> Self {
        WireMsg { stream: Self::STREAM_CONTROL, ppid: Self::PPID_E2AP, payload }
    }

    /// E2AP traffic on an explicit stream.
    pub fn e2ap_on(stream: u16, payload: Bytes) -> Self {
        WireMsg { stream, ppid: Self::PPID_E2AP, payload }
    }

    /// True for control-procedure traffic (stream 0), which overtakes
    /// queued bulk indications in the writer task.
    pub fn is_control(&self) -> bool {
        self.stream == Self::STREAM_CONTROL
    }
}
