//! Minimal deterministic stand-in for the `proptest` API surface this
//! workspace's property tests use, so the real test modules compile and
//! RUN under bare `rustc --test` in the offline container.
//!
//! Generation is random-sampling only (a fixed-seed xorshift and 256
//! cases per property) — no shrinking, no persistence.  A failing
//! property panics with the regular assert message, which is enough for
//! pass/fail verification; reproduce under the real proptest on a
//! networked host for minimal counterexamples.

use std::ops::{Range, RangeInclusive};

/// Fixed-seed xorshift64*; deterministic across runs.
pub struct TestRng(u64);

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng(seed | 1)
    }
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }
}

/// A value generator; the `gen`-only subset of proptest's `Strategy`.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
        self,
        _whence: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap { inner: self, f }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}
impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}
impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        for _ in 0..1000 {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map rejected 1000 consecutive samples");
    }
}

impl<T, S: Strategy<Value = T> + ?Sized> Strategy for Box<S> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end);
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
int_ranges!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Literal string strategies: proptest treats `&str` as a regex.  The
/// only pattern the workspace uses is a character-class repetition like
/// `"[a-z.]{0,32}"`, which this parses just well enough.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (class, max) = parse_class_repeat(self)
            .unwrap_or_else(|| panic!("mini_proptest: unsupported regex {self:?}"));
        let len = rng.below(max + 1);
        (0..len).map(|_| class[rng.below(class.len())] as char).collect()
    }
}

fn parse_class_repeat(pat: &str) -> Option<(Vec<u8>, usize)> {
    let rest = pat.strip_prefix('[')?;
    let (class_s, rest) = rest.split_once(']')?;
    let rest = rest.strip_prefix('{')?;
    let counts = rest.strip_suffix('}')?;
    let max: usize = counts.rsplit(',').next()?.trim().parse().ok()?;
    let cs: Vec<char> = class_s.chars().collect();
    let mut class = Vec::new();
    let mut i = 0;
    while i < cs.len() {
        if i + 2 < cs.len() && cs[i + 1] == '-' {
            for b in (cs[i] as u8)..=(cs[i + 2] as u8) {
                class.push(b);
            }
            i += 3;
        } else {
            class.push(cs[i] as u8);
            i += 1;
        }
    }
    Some((class, max))
}

pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}
impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize);
impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A/a, B/b);
tuple_strategy!(A/a, B/b, C/c);
tuple_strategy!(A/a, B/b, C/c, D/d);
tuple_strategy!(A/a, B/b, C/c, D/d, E/e);
tuple_strategy!(A/a, B/b, C/c, D/d, E/e, F/f);
tuple_strategy!(A/a, B/b, C/c, D/d, E/e, F/f, G/g);
tuple_strategy!(A/a, B/b, C/c, D/d, E/e, F/f, G/g, H/h);

pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        elem: S,
        count: Range<usize>,
    }
    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.count.start + rng.below(self.count.end - self.count.start);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
    pub fn vec<S: Strategy>(elem: S, count: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, count }
    }
}

pub mod option {
    use super::*;

    pub struct OptionStrategy<S>(S);
    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
    pub fn of<S: Strategy>(s: S) -> OptionStrategy<S> {
        OptionStrategy(s)
    }
}

pub mod sample {
    use super::*;

    /// A deferred index into a collection of then-unknown length.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);
    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }
    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

pub struct OneOf<T>(pub Vec<Box<dyn Strategy<Value = T>>>);
impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0[rng.below(self.0.len())].generate(rng)
    }
}

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        $crate::OneOf(vec![$(Box::new($s) as Box<dyn $crate::Strategy<Value = _>>),+])
    }};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::new(0x5EED_0000 ^ stringify!($name).len() as u64);
                for __case in 0..256u32 {
                    let _ = __case;
                    $(let $pat = $crate::Strategy::generate(&$strat, &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, Strategy,
    };
    pub mod prop {
        pub use crate::{collection, option, sample};
    }
}
