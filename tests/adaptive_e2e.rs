//! Adaptive monitoring end-to-end over the mem transport: delta-encoded
//! indications reconstruct byte-identically at the controller while
//! server-driven retunes (anomaly tightening) fire against the live
//! subscription procedure.
//!
//! The stack test must be the ONLY full-stack test in this binary: the
//! obs registry is process-global, and `cargo test` runs every test of
//! one binary in one process, so a second stack here would pollute the
//! counters the invariants are written against.
//!
//! Determinism trick: agent ticks are spaced by the adaptive *maximum*
//! period (1000 ms of virtual time), so every tick is due regardless of
//! how the server retunes the report period in between — each dummy
//! function steps its KPI generator exactly once per tick, and an
//! identically-seeded generator stepped the same number of times is the
//! ground truth for the reconstructed store content.

use std::time::Duration;

use flexric::agent::{Agent, AgentConfig, AgentHandle};
use flexric::server::{Server, ServerConfig};
use flexric_ctrl::dummy::dummy_bundle_time_varying;
use flexric_ctrl::monitoring::{AdaptiveConfig, MonitorApp, MonitorConfig, MonitorMode};
use flexric_e2ap::{E2NodeType, GlobalE2NodeId, GlobalRicId, Plmn};
use flexric_obs::{SnapValue, Snapshot};
use flexric_ransim::kpi::KpiGen;
use flexric_sm::delta::content_hash;
use flexric_sm::SmCodec;
use flexric_transport::TransportAddr;

const AGENTS: u64 = 2;
const UES: u16 = 8;
const TICKS: u64 = 300;
/// Virtual-time tick spacing ≥ the maximum retunable period.
const TICK_MS: u64 = 1_000;

fn counter(snap: &Snapshot, name: &str) -> u64 {
    snap.counter_value(name).unwrap_or_else(|| panic!("{name} not in registry"))
}

/// Sum of all series of `name` whose label string contains `label_frag`.
fn labeled_sum(snap: &Snapshot, name: &str, label_frag: &str) -> u64 {
    snap.metrics
        .iter()
        .filter(|m| m.name == name && m.labels.contains(label_frag))
        .map(|m| match m.value {
            SnapValue::Counter(v) => v,
            _ => panic!("{name} is not a counter"),
        })
        .sum()
}

#[tokio::test]
async fn delta_conservation_and_retuning_over_mem() {
    if cfg!(feature = "obs-off") {
        return; // counters are compiled out; nothing to conserve
    }
    let mcfg = MonitorConfig {
        period_ms: 4, // above min_period_ms so an anomaly has room to tighten
        sm_codec: SmCodec::Flatb,
        mode: MonitorMode::Adaptive,
        adaptive: AdaptiveConfig { min_period_ms: 1, quiet_periods: 4, ..Default::default() },
        ..Default::default()
    };
    let (monitor, db, counters) = MonitorApp::new(mcfg);
    let (rdb, rcounters) = (db.clone(), counters.clone());
    let addr = TransportAddr::Mem("adaptive-e2e".to_owned());
    let mut cfg = ServerConfig::new(GlobalRicId::new(Plmn::TEST, 1), addr.clone());
    cfg.tick_ms = Some(20);
    cfg.shards = 1;
    let mut first = Some(monitor);
    let server = Server::spawn_sharded(cfg, move |_shard| {
        let app = first
            .take()
            .unwrap_or_else(|| MonitorApp::replica(mcfg, rdb.clone(), rcounters.clone()));
        vec![Box::new(app) as Box<dyn flexric::server::IApp>]
    })
    .await
    .unwrap();

    let mut agents: Vec<AgentHandle> = Vec::new();
    for i in 0..AGENTS {
        let mut acfg =
            AgentConfig::new(GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Gnb, 1 + i), addr.clone());
        acfg.tick_ms = None;
        agents.push(
            Agent::spawn(acfg, dummy_bundle_time_varying(UES, SmCodec::Flatb, i)).await.unwrap(),
        );
    }

    // Wait until all MAC+RLC+PDCP subscriptions are established.
    let want_subs = AGENTS * 3;
    for _ in 0..200 {
        if server.stats().await.unwrap().subs >= want_subs {
            break;
        }
        tokio::time::sleep(Duration::from_millis(20)).await;
    }
    assert_eq!(server.stats().await.unwrap().subs, want_subs, "subscriptions established");

    // Drive the workload: every tick is due for every subscription (see
    // module docs), so each function steps its generator exactly once per
    // tick.  Yield regularly so indications and retunes flow.
    for i in 1..=TICKS {
        for a in &agents {
            a.tick(i * TICK_MS);
        }
        if i % 10 == 0 {
            tokio::time::sleep(Duration::from_millis(2)).await;
        } else {
            tokio::task::yield_now().await;
        }
    }

    // Settle: poll until the last in-flight indications have landed.
    let mut snap = flexric_obs::snapshot();
    for _ in 0..200 {
        let sent = counter(&snap, "flexric_agent_indications_sent_total");
        let rx = counter(&snap, "flexric_server_indications_rx_total");
        if sent > 0 && sent == rx {
            break;
        }
        tokio::time::sleep(Duration::from_millis(25)).await;
        snap = flexric_obs::snapshot();
    }

    // Conservation: every indication sent arrived, nothing failed to
    // decode at any layer, and no delta stream ever lost sync (the mem
    // transport is ordered and lossless).
    let sent = counter(&snap, "flexric_agent_indications_sent_total");
    let rx = counter(&snap, "flexric_server_indications_rx_total");
    assert!(sent > 100, "expected a steady indication stream, got {sent}");
    assert_eq!(sent, rx, "every indication sent must be received");
    assert_eq!(counter(&snap, "flexric_agent_decode_errors_total"), 0);
    assert_eq!(counter(&snap, "flexric_server_decode_errors_total"), 0);
    assert_eq!(counter(&snap, "flexric_sm_delta_decode_errors_total"), 0);
    assert_eq!(counter(&snap, "flexric_sm_delta_resyncs_total"), 0, "no loss on mem transport");

    // The delta machinery actually engaged: keyframes at the cadence,
    // deltas in between, suppression during the quiet phases.
    assert!(counter(&snap, "flexric_sm_keyframes_total") > 0, "keyframes emitted");
    assert!(
        labeled_sum(&snap, "flexric_sm_report_bytes_total", "delta") > 0,
        "delta frames emitted"
    );
    assert!(counter(&snap, "flexric_sm_reports_suppressed_total") > 0, "quiet phases suppress");

    // Server-driven retuning fired: the workload's burst phase crosses the
    // anomaly thresholds, which tightens the 4 ms period to 1 ms through
    // the live subscription procedure (same request id, new trigger).
    assert!(
        labeled_sum(&snap, "flexric_ctrl_retunes_total", "tighten") > 0,
        "burst anomaly must tighten the report period"
    );

    // Byte-identity: the reconstructed store content equals an
    // identically-seeded generator stepped once per tick.  Timestamps are
    // excluded (a suppressed tail leaves the store a few frozen-content
    // ticks behind), which is exactly the delta-stream contract.
    let truths: Vec<KpiGen> = (0..AGENTS)
        .map(|seed| {
            let mut g = KpiGen::new(seed, UES as usize);
            for t in 1..=TICKS {
                g.step(t * TICK_MS);
            }
            g
        })
        .collect();
    let db_agents = db.lock().agents();
    assert_eq!(db_agents.len(), AGENTS as usize, "stats stored for every agent");
    let mut matched = vec![false; truths.len()];
    for &agent_id in &db_agents {
        let db = db.lock();
        let mac = db.mac(agent_id).expect("MAC snapshot decodes");
        let rlc = db.rlc(agent_id).expect("RLC snapshot decodes");
        let pdcp = db.pdcp(agent_id).expect("PDCP snapshot decodes");
        assert_eq!(mac.ues.len(), UES as usize);
        // Agent-id assignment order is a server detail; each stored state
        // must match exactly one ground-truth generator on all three SMs.
        let hit = truths.iter().position(|g| {
            content_hash(&mac) == content_hash(g.mac())
                && content_hash(&rlc) == content_hash(g.rlc())
                && content_hash(&pdcp) == content_hash(g.pdcp())
        });
        let hit = hit.unwrap_or_else(|| {
            panic!("agent {agent_id:?}: reconstructed content matches no ground truth")
        });
        assert!(!matched[hit], "two agents reconstructed to the same ground truth");
        matched[hit] = true;
    }

    for a in &agents {
        a.stop();
    }
    server.stop();
}
