//! Robustness end-to-end: a scenario-scheduled cell outage drops the
//! owning agent's transport mid-run; the agent returns inside the
//! reconnect grace window, the server rebinds it to its old [`AgentId`]
//! and replays every subscription, and the restarted delta streams
//! resync through fresh keyframes — with the reconstructed monitoring
//! content checked against the simulator's cumulative ground truth.
//!
//! This must stay the ONLY full-stack test in this binary: the obs
//! registry is process-global and the conservation assertions below are
//! written against a single stack's counters.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use flexric::agent::{Agent, AgentConfig, AgentHandle};
use flexric::server::{Server, ServerConfig, ServerHandle};
use flexric_ctrl::monitoring::{MonitorApp, MonitorConfig, MonitorMode};
use flexric_ctrl::ranfun::{full_bundle, SimBs};
use flexric_e2ap::{E2NodeType, GlobalE2NodeId, GlobalRicId, Plmn};
use flexric_obs::Snapshot;
use flexric_ransim::scenario::{OutageSpec, ScenarioEvent, ScenarioSpec};
use flexric_ransim::{ScenarioEngine, Sim};
use flexric_sm::SmCodec;
use flexric_transport::TransportAddr;

/// Virtual-time spacing of agent ticks == the monitor report period, so
/// every tick is a due report and the last report carries final state.
const TICK_MS: u64 = 10;
const DUR_MS: u64 = 4_000;
const OUTAGE_AT_MS: u64 = 1_000;
const OUTAGE_DUR_MS: u64 = 600;

fn counter(snap: &Snapshot, name: &str) -> u64 {
    snap.counter_value(name).unwrap_or_else(|| panic!("{name} not in registry"))
}

async fn spawn_agent(sim: &Arc<Mutex<Sim>>, cell: usize, server: &ServerHandle) -> AgentHandle {
    let bs = SimBs::new(sim.clone(), cell);
    let mut acfg = AgentConfig::new(
        GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Gnb, 1 + cell as u64),
        server.addrs[0].clone(),
    );
    acfg.tick_ms = None; // virtual-time driven
    Agent::spawn(acfg, full_bundle(&bs, SmCodec::Flatb)).await.expect("agent")
}

#[tokio::test]
async fn outage_reconnect_replays_subscriptions_and_resyncs_deltas() {
    if cfg!(feature = "obs-off") {
        return; // the invariants below are counter-based
    }
    // A frozen-population scenario (no churn, no mobility) with one
    // scheduled outage: the only dynamics are the outage, its forced
    // handovers, and the recovery — so the ground-truth comparison at
    // the end is exact.
    let mut spec = ScenarioSpec::calm(42);
    spec.cells = 2;
    spec.initial_ues = 8;
    spec.mobility.step_ms = 0;
    spec.churn.arrival_mean_ms = 0;
    spec.churn.stay_mean_ms = u64::MAX / 128;
    spec.outages = vec![OutageSpec { at_ms: OUTAGE_AT_MS, cell: 0, dur_ms: OUTAGE_DUR_MS }];
    let mut engine = ScenarioEngine::new(spec);
    let mut sim = engine.build_sim();
    engine.prime(&mut sim);
    let cells = sim.cells.len();
    let sim = Arc::new(Mutex::new(sim));

    // Delta monitoring with a keyframe cadence far beyond the run
    // length: the only keyframes are stream starts, so the replayed
    // subscriptions after the reconnect are visible as an exact bump.
    let mcfg = MonitorConfig {
        period_ms: TICK_MS,
        sm_codec: SmCodec::Flatb,
        mac: true,
        rlc: true,
        pdcp: false,
        mode: MonitorMode::Delta,
        keyframe_every: 100_000,
        ..Default::default()
    };
    let (monitor, db, _counters) = MonitorApp::new(mcfg);

    let addr = TransportAddr::Mem("robustness-outage".to_owned());
    let mut cfg = ServerConfig::new(GlobalRicId::new(Plmn::TEST, 1), addr.clone());
    cfg.tick_ms = Some(20);
    cfg.reconnect_grace_ms = 30_000; // outage is short in wall time
    let server = Server::spawn(cfg, vec![Box::new(monitor)]).await.expect("controller");

    let mut agents: Vec<Option<AgentHandle>> = Vec::new();
    for cell in 0..cells {
        agents.push(Some(spawn_agent(&sim, cell, &server).await));
    }

    // MAC + RLC per agent.
    let want_subs = cells as u64 * 2;
    for _ in 0..200 {
        if server.stats().await.unwrap().subs >= want_subs {
            break;
        }
        tokio::time::sleep(Duration::from_millis(10)).await;
    }
    assert_eq!(server.stats().await.unwrap().subs, want_subs, "subscriptions established");

    let mut keyframes_at_outage = None;
    let mut saw_recovery = false;
    let steps = DUR_MS / TICK_MS;
    for step in 1..=steps {
        {
            let mut s = sim.lock();
            for _ in 0..TICK_MS {
                s.tick();
                engine.advance(&mut s);
            }
        }
        for ev in engine.drain_events() {
            match ev.1 {
                ScenarioEvent::CellOutage { cell } => {
                    // Let in-flight indications land, then cut the
                    // transport: the subscription state must survive in
                    // the server's grace window.
                    tokio::time::sleep(Duration::from_millis(20)).await;
                    if let Some(a) = agents[cell].take() {
                        a.stop();
                    }
                    keyframes_at_outage =
                        Some(counter(&flexric_obs::snapshot(), "flexric_sm_keyframes_total"));
                }
                ScenarioEvent::CellRecover { cell } => {
                    agents[cell] = Some(spawn_agent(&sim, cell, &server).await);
                    saw_recovery = true;
                }
                _ => {}
            }
        }
        for a in agents.iter().flatten() {
            a.tick(step * TICK_MS);
        }
        if step % 10 == 0 {
            tokio::time::sleep(Duration::from_millis(1)).await;
        } else {
            tokio::task::yield_now().await;
        }
    }
    assert_eq!(engine.stats.outages, 1, "the scheduled outage fired");
    assert!(saw_recovery, "the outaged cell recovered inside the run");
    let keyframes_at_outage = keyframes_at_outage.expect("outage observed");

    // Settle until the tail of in-flight indications lands.
    let mut snap = flexric_obs::snapshot();
    for _ in 0..200 {
        let sent = counter(&snap, "flexric_agent_indications_sent_total");
        let rx = counter(&snap, "flexric_server_indications_rx_total");
        if sent > 0 && sent == rx {
            break;
        }
        tokio::time::sleep(Duration::from_millis(25)).await;
        snap = flexric_obs::snapshot();
    }

    // Zero silent loss across the outage: everything sent arrived and
    // decoded, and no delta stream ever lost sync — the restart shows up
    // as fresh keyframes, not as a resync or a decode error.
    let sent = counter(&snap, "flexric_agent_indications_sent_total");
    let rx = counter(&snap, "flexric_server_indications_rx_total");
    assert!(sent > 100, "expected a steady indication stream, got {sent}");
    assert_eq!(sent, rx, "every indication sent must be received");
    assert_eq!(counter(&snap, "flexric_agent_decode_errors_total"), 0);
    assert_eq!(counter(&snap, "flexric_server_decode_errors_total"), 0);
    assert_eq!(counter(&snap, "flexric_sm_delta_decode_errors_total"), 0);
    assert_eq!(counter(&snap, "flexric_sm_delta_resyncs_total"), 0);

    // The reconnect rebound the agent to its old id and replayed its
    // subscriptions...
    let stats = server.stats().await.unwrap();
    assert!(stats.reconnects >= 1, "agent must rebind within the grace window");
    assert_eq!(stats.subs, want_subs, "replay restores every subscription");
    // ...and the replayed MAC + RLC delta streams restarted with forced
    // keyframes: exactly one stream start per subscription at t = 0,
    // exactly one more per replayed subscription after the reconnect
    // (keyframe_every is far beyond the run length, so cadence adds none).
    assert_eq!(keyframes_at_outage, want_subs, "one keyframe per stream start");
    assert_eq!(
        counter(&snap, "flexric_sm_keyframes_total"),
        keyframes_at_outage + 2,
        "replayed MAC + RLC streams must re-key after the reconnect"
    );

    // Ground truth: the reconstructed MAC content per agent equals the
    // simulator's cumulative per-UE counters (kpm_counters never resets),
    // including everything that happened while the cell was dark.
    let truths: Vec<BTreeMap<u16, u64>> = sim
        .lock()
        .cells
        .iter()
        .map(|c| c.kpm_counters().iter().map(|k| (k.rnti, k.dl_bytes_total)).collect())
        .collect();
    assert!(
        truths.iter().any(|t| !t.is_empty()),
        "forced handovers left every UE on the surviving cell"
    );
    let db_agents = db.lock().agents();
    assert_eq!(db_agents.len(), cells, "reconnect must not mint a new agent id");
    let mut matched = vec![false; truths.len()];
    for &agent_id in &db_agents {
        let mac = db.lock().mac(agent_id).expect("MAC snapshot decodes");
        let stored: BTreeMap<u16, u64> =
            mac.ues.iter().map(|u| (u.rnti, u.dl_aggr_bytes)).collect();
        let hit = truths
            .iter()
            .position(|t| *t == stored)
            .unwrap_or_else(|| panic!("agent {agent_id}: stored MAC content matches no cell"));
        assert!(!matched[hit], "two agents reconstructed to the same cell");
        matched[hit] = true;
    }

    for a in agents.iter().flatten() {
        a.stop();
    }
    server.stop();
}
