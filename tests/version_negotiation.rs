//! E2 Setup version negotiation: the server matches every advertised RAN
//! function against the SM registry by OID and semver rules.  Unknown
//! OIDs and major-version mismatches are rejected with explicit E2AP
//! causes (never silently dropped); minor-version skew interoperates.
//!
//! Runs under `cargo test`; the offline harness does not build the tokio
//! stack, so these are covered by CI only.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;

use flexric::agent::{
    Agent, AgentConfig, AgentCtx, CtrlId, PeriodicSubs, RanFunction, SubscriptionInfo,
};
use flexric::server::{AgentId, AgentInfo, IApp, Server, ServerApi, ServerConfig};
use flexric_e2ap::*;
use flexric_sm::{RanFuncDef, ReportTrigger, SmCodec, SmDescriptor, SmVersion};
use flexric_transport::TransportAddr;

const ALPHA_OID: &str = "vn.sm.alpha";
const ALPHA_RF: u16 = 400;

/// Registers `vn.sm.alpha@1.3` once per process (idempotent across tests).
fn register_alpha() {
    let _ = flexric_sm::registry::global().register(
        SmDescriptor::new(
            ALPHA_RF,
            ALPHA_OID,
            SmVersion::new(1, 3),
            RanFuncDef::simple("ALPHA", "version-negotiation test SM"),
        )
        .trigger::<ReportTrigger>(),
    );
}

/// A RAN function whose advertised identity (id, oid, version) is fully
/// parameterized, so tests can fabricate arbitrary setup offers.
struct VersionedFn {
    id: u16,
    oid: &'static str,
    version: FnVersion,
    subs: PeriodicSubs,
    sm_codec: SmCodec,
}

impl VersionedFn {
    fn new(id: u16, oid: &'static str, version: FnVersion) -> Self {
        VersionedFn { id, oid, version, subs: PeriodicSubs::new(), sm_codec: SmCodec::Flatb }
    }
}

impl RanFunction for VersionedFn {
    fn id(&self) -> RanFunctionId {
        RanFunctionId::new(self.id)
    }
    fn oid(&self) -> String {
        self.oid.into()
    }
    fn definition(&self) -> Bytes {
        Bytes::from_static(b"versioned-def")
    }
    fn version(&self) -> FnVersion {
        self.version
    }
    fn on_subscription(
        &mut self,
        ctx: &mut AgentCtx,
        sub: &SubscriptionInfo,
        _req: &RicSubscriptionRequest,
    ) -> Result<(), Cause> {
        self.subs.admit(sub, self.sm_codec, ctx.now_ms)
    }
    fn on_subscription_delete(&mut self, _ctx: &mut AgentCtx, ctrl: CtrlId, req_id: RicRequestId) {
        self.subs.remove(ctrl, req_id);
    }
    fn on_control(
        &mut self,
        _ctx: &mut AgentCtx,
        _ctrl: CtrlId,
        _req: &RicControlRequest,
    ) -> Result<Option<Bytes>, Cause> {
        Err(Cause::Ric(RicCause::ActionNotSupported))
    }
    fn on_tick(&mut self, ctx: &mut AgentCtx) {
        let now = ctx.now_ms;
        let mut due: Vec<SubscriptionInfo> = Vec::new();
        self.subs.for_due(now, |sub, _| due.push(sub.clone()));
        for (i, sub) in due.into_iter().enumerate() {
            ctx.send_indication(&sub, Some(i as u32), Bytes::new(), Bytes::from_static(b"tick"));
        }
    }
}

/// Records what the server saw: negotiated function lists and indications.
#[derive(Default)]
struct Seen {
    functions: Vec<Vec<(String, u16, u16)>>,
}

struct WatchApp {
    seen: Arc<Mutex<Seen>>,
    inds: Arc<AtomicU64>,
    subscribe: bool,
}

impl IApp for WatchApp {
    fn name(&self) -> &str {
        "watch"
    }
    fn on_agent_connected(&mut self, api: &mut ServerApi, agent: &AgentInfo) {
        self.seen.lock().functions.push(
            agent
                .functions
                .iter()
                .map(|f| (f.oid.clone(), f.version.major, f.version.minor))
                .collect(),
        );
        if !self.subscribe {
            return;
        }
        // Version-aware lookup: want 1.3, the agent may advertise any 1.x.
        if let Some(f) = agent.function_by_oid_compat(ALPHA_OID, FnVersion { major: 1, minor: 3 }) {
            let trigger = Bytes::from(ReportTrigger::every_ms(1).encode(SmCodec::Flatb));
            api.subscribe_report(agent.id, f.id, trigger);
        }
    }
    fn on_indication(
        &mut self,
        _api: &mut ServerApi,
        _agent: AgentId,
        _ind: &flexric::server::IndicationRef,
    ) {
        self.inds.fetch_add(1, Ordering::Relaxed);
    }
}

async fn spawn_server(name: &str, subscribe: bool) -> (Server, Arc<Mutex<Seen>>, Arc<AtomicU64>) {
    register_alpha();
    let seen = Arc::new(Mutex::new(Seen::default()));
    let inds = Arc::new(AtomicU64::new(0));
    let app = WatchApp { seen: seen.clone(), inds: inds.clone(), subscribe };
    let mut cfg =
        ServerConfig::new(GlobalRicId::new(Plmn::TEST, 1), TransportAddr::Mem(name.into()));
    cfg.tick_ms = Some(5);
    let server = Server::spawn(cfg, vec![Box::new(app)]).await.expect("server");
    (server, seen, inds)
}

fn agent_cfg(server: &Server, node_id: u64) -> AgentConfig {
    let mut acfg = AgentConfig::new(
        GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Gnb, node_id),
        server.addrs[0].clone(),
    );
    acfg.tick_ms = Some(1);
    acfg
}

async fn wait_until(mut cond: impl FnMut() -> bool, what: &str) {
    for _ in 0..500 {
        if cond() {
            return;
        }
        tokio::time::sleep(Duration::from_millis(10)).await;
    }
    panic!("timeout waiting for {what}");
}

/// An OID the registry has never seen fails setup with
/// `FunctionNotSupported`, surfaced as an error at the agent and no
/// registration at the server.
#[tokio::test]
async fn unknown_oid_rejected_with_explicit_cause() {
    let (server, seen, _) = spawn_server("vn-unknown", false).await;
    let f = VersionedFn::new(401, "vn.sm.never.registered", FnVersion::V1);
    let err = Agent::spawn(agent_cfg(&server, 1), vec![Box::new(f)])
        .await
        .expect_err("setup must be rejected");
    assert!(
        err.to_string().contains("FunctionNotSupported"),
        "agent sees the explicit cause, got: {err}"
    );
    assert!(seen.lock().functions.is_empty(), "rejected agent never reaches iApps");
    let stats = server.stats().await.unwrap();
    assert_eq!(stats.agents, 0, "rejected agent not registered");
    server.stop();
}

/// A major-version mismatch (agent offers 2.0, registry holds 1.x) fails
/// setup with `FunctionVersionMismatch`.
#[tokio::test]
async fn major_version_mismatch_rejected_with_explicit_cause() {
    let (server, seen, _) = spawn_server("vn-major", false).await;
    let f = VersionedFn::new(ALPHA_RF, ALPHA_OID, FnVersion { major: 2, minor: 0 });
    let err = Agent::spawn(agent_cfg(&server, 2), vec![Box::new(f)])
        .await
        .expect_err("setup must be rejected");
    assert!(
        err.to_string().contains("FunctionVersionMismatch"),
        "agent sees the explicit cause, got: {err}"
    );
    assert!(seen.lock().functions.is_empty());
    server.stop();
}

/// Minor-version skew still interoperates: the agent offers 1.0 while the
/// registry holds 1.3; setup succeeds and indications flow end-to-end.
#[tokio::test]
async fn minor_version_skew_interoperates() {
    let (server, seen, inds) = spawn_server("vn-minor", true).await;
    let f = VersionedFn::new(ALPHA_RF, ALPHA_OID, FnVersion { major: 1, minor: 0 });
    let agent = Agent::spawn(agent_cfg(&server, 3), vec![Box::new(f)]).await.expect("setup ok");
    wait_until(|| inds.load(Ordering::Relaxed) >= 5, "indications over skewed versions").await;
    assert_eq!(seen.lock().functions[0], vec![(ALPHA_OID.to_string(), 1, 0)]);
    agent.stop();
    server.stop();
}

/// Mixed offers negotiate partially: the unknown function is filtered out
/// of the server's RAN database, the known one is kept and served.
#[tokio::test]
async fn partial_rejection_filters_unknown_function() {
    let (server, seen, inds) = spawn_server("vn-partial", true).await;
    let good = VersionedFn::new(ALPHA_RF, ALPHA_OID, FnVersion { major: 1, minor: 3 });
    let bad = VersionedFn::new(402, "vn.sm.never.registered", FnVersion::V1);
    let agent = Agent::spawn(agent_cfg(&server, 4), vec![Box::new(good), Box::new(bad)])
        .await
        .expect("partial setup succeeds");
    wait_until(|| inds.load(Ordering::Relaxed) >= 5, "indications on the accepted fn").await;
    {
        let seen = seen.lock();
        assert_eq!(seen.functions.len(), 1);
        assert_eq!(
            seen.functions[0],
            vec![(ALPHA_OID.to_string(), 1, 3)],
            "only the negotiated function enters the RAN database"
        );
    }
    server.stats().await.unwrap();
    agent.stop();
    server.stop();
}
