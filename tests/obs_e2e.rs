//! Observability end-to-end: message-conservation invariants read straight
//! from the obs registry, plus property tests of the histogram math.
//!
//! The conservation test must be the ONLY full-stack test in this binary:
//! the obs registry is process-global, and `cargo test` runs every test of
//! one binary in one process, so a second stack here would pollute the
//! counters the invariants are written against.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use proptest::prelude::*;

use flexric::agent::{Agent, AgentConfig};
use flexric::server::{Server, ServerConfig};
use flexric_ctrl::monitoring::{MonitorApp, MonitorConfig};
use flexric_ctrl::ranfun::{stats_bundle, SimBs};
use flexric_e2ap::{E2NodeType, GlobalE2NodeId, GlobalRicId, Plmn};
use flexric_obs::{HistSnapshot, Histogram, SnapValue, Snapshot};
use flexric_ransim::{CellConfig, FlowConfig, FlowKind, PathConfig, Sim, UeConfig};
use flexric_sm::SmCodec;
use flexric_transport::TransportAddr;

fn counter(snap: &Snapshot, name: &str) -> u64 {
    snap.counter_value(name).unwrap_or_else(|| panic!("{name} not in registry"))
}

/// Total over every counter series named `name` (summing over label sets,
/// e.g. the per-site `site="…"` series of `rx_copies_total`).
fn counter_sum(snap: &Snapshot, name: &str) -> u64 {
    let series: Vec<u64> = snap
        .metrics
        .iter()
        .filter(|m| m.name == name)
        .map(|m| match m.value {
            SnapValue::Counter(v) => v,
            _ => panic!("{name} is not a counter"),
        })
        .collect();
    assert!(!series.is_empty(), "{name} not in registry");
    series.iter().sum()
}

/// Total record count across every histogram series named `name`
/// (summing over label sets, e.g. the per-codec `codec="…"` series).
fn hist_count(snap: &Snapshot, name: &str) -> u64 {
    snap.metrics
        .iter()
        .filter(|m| m.name == name)
        .map(|m| match &m.value {
            SnapValue::Hist(h) => h.count,
            _ => panic!("{name} is not a histogram"),
        })
        .sum()
}

/// No faults, TCP loopback: every indication the agents send must arrive
/// at the server, and nothing on the path may fail to decode.
///
/// Runs the server with two shards and one agent per shard (two distinct
/// RAN entities spread by least-loaded assignment), so the conservation
/// invariant also covers the sharded dispatch path and the per-shard
/// `flexric_server_shard_*` series are populated.  Running over real
/// sockets (not the mem transport) also exercises the buffered receive
/// path, whose zero-copy steady-state invariant is asserted below.
#[tokio::test]
async fn indication_conservation_over_tcp_loopback() {
    if cfg!(feature = "obs-off") {
        return; // counters are compiled out; nothing to conserve
    }
    let mcfg = MonitorConfig::default();
    let (monitor, db, counters) = MonitorApp::new(mcfg);
    let mut cfg = ServerConfig::new(
        GlobalRicId::new(Plmn::TEST, 1),
        TransportAddr::Tcp("127.0.0.1:0".parse().unwrap()),
    );
    cfg.tick_ms = None;
    cfg.shards = 2;
    let mut first = Some(monitor);
    let server = Server::spawn_sharded(cfg, move |_shard| {
        let app =
            first.take().unwrap_or_else(|| MonitorApp::replica(mcfg, db.clone(), counters.clone()));
        vec![Box::new(app) as Box<dyn flexric::server::IApp>]
    })
    .await
    .unwrap();

    let listen_addr = server.addrs[0].clone();

    let mut agents = Vec::new();
    let mut sims = Vec::new();
    for n in 0..2u64 {
        let mut sim = Sim::new(vec![CellConfig::nr("cell0", 106)], PathConfig::default());
        for i in 0..2u16 {
            sim.attach_ue(0, UeConfig::new(0x4601 + i, 20));
            sim.add_flow(FlowConfig {
                cell: 0,
                rnti: 0x4601 + i,
                drb: 1,
                kind: FlowKind::GreedyTcp { mss: 1500 },
                tuple: (0x0A00_0001, 0x0A00_0100 + i as u32, 1000, 80, 6),
                start_ms: 0,
                stop_ms: None,
            });
        }
        let sim = Arc::new(Mutex::new(sim));
        let bs = SimBs::new(sim.clone(), 0);
        let mut acfg = AgentConfig::new(
            GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Gnb, 1 + n),
            listen_addr.clone(),
        );
        acfg.tick_ms = None;
        agents.push(Agent::spawn(acfg, stats_bundle(&bs, SmCodec::Flatb)).await.unwrap());
        sims.push(sim);
    }

    // Zero-copy baseline: both agents are connected and set up, so any
    // receive-path copy from here on would be per-frame steady-state work.
    let rx_copies_before =
        counter_sum(&flexric_obs::snapshot(), "flexric_transport_rx_copies_total");

    // Drive 1 s of virtual time (subscription round-trip + a steady stream
    // of 1 ms-period indications from 3 SMs per agent).
    for _ in 0..20 {
        for _ in 0..50 {
            for (sim, agent) in sims.iter().zip(&agents) {
                let now = {
                    let mut s = sim.lock();
                    s.tick();
                    s.now_ms()
                };
                agent.tick(now);
            }
        }
        tokio::task::yield_now().await;
    }

    // Settle: poll until the last in-flight indications have landed.
    let mut snap = flexric_obs::snapshot();
    for _ in 0..100 {
        let sent = counter(&snap, "flexric_agent_indications_sent_total");
        let rx = counter(&snap, "flexric_server_indications_rx_total");
        if sent > 0 && sent == rx {
            break;
        }
        tokio::time::sleep(Duration::from_millis(30)).await;
        snap = flexric_obs::snapshot();
    }

    // The conservation invariant.
    let sent = counter(&snap, "flexric_agent_indications_sent_total");
    let rx = counter(&snap, "flexric_server_indications_rx_total");
    assert!(sent > 1_000, "2 agents × 3 SMs × ~1000 ticks should send thousands, got {sent}");
    assert_eq!(sent, rx, "every indication sent must be received");

    // Per-shard conservation: two entities on a two-shard server spread
    // one per shard (least-loaded assignment), each shard's rx series is
    // live, and the shard series sum to the totals they decompose.
    let shard_rx: Vec<u64> = snap
        .metrics
        .iter()
        .filter(|m| m.name == "flexric_server_shard_rx_total")
        .map(|m| match m.value {
            SnapValue::Counter(v) => v,
            _ => panic!("shard rx is a counter"),
        })
        .collect();
    assert_eq!(shard_rx.len(), 2, "one series per shard");
    assert!(shard_rx.iter().all(|&v| v > 0), "both shards received messages: {shard_rx:?}");
    assert_eq!(
        shard_rx.iter().sum::<u64>(),
        counter(&snap, "flexric_server_rx_msgs_total"),
        "shard rx series decompose the server total"
    );
    let shard_agents: Vec<i64> = snap
        .metrics
        .iter()
        .filter(|m| m.name == "flexric_server_shard_agents")
        .map(|m| match m.value {
            SnapValue::Gauge(v) => v,
            _ => panic!("shard agents is a gauge"),
        })
        .collect();
    assert_eq!(shard_agents, vec![1, 1], "one agent owned by each shard");
    assert_eq!(counter(&snap, "flexric_agent_decode_errors_total"), 0);
    assert_eq!(counter(&snap, "flexric_server_decode_errors_total"), 0);
    assert_eq!(counter(&snap, "flexric_transport_fault_dropped_total"), 0, "no faults configured");

    // Zero-copy receive: thousands of indications crossed the sockets and
    // not one of them took a payload copy — neither at recv (frames are
    // refcounted views into the read slab) nor at decode (borrowed decode
    // slices the receive buffer).  A flat counter across the burst is the
    // "zero per-frame allocations in steady state" acceptance criterion.
    let rx_copies_after = counter_sum(&snap, "flexric_transport_rx_copies_total");
    assert_eq!(
        rx_copies_after, rx_copies_before,
        "receive path took per-frame copies during the indication burst"
    );
    // Batched reads happened: the frames-per-wakeup histogram is fed by
    // the TCP receive loop, so running over loopback must populate it.
    assert!(
        hist_count(&snap, "flexric_transport_read_frames_per_wakeup") > 0,
        "TCP receive loop should account frames per socket wakeup"
    );

    // Every layer of the acceptance criterion reports: transport, codec,
    // endpoint, server (checked above), ransim.
    assert!(counter(&snap, "flexric_transport_tx_frames_total") > 0);
    assert!(counter(&snap, "flexric_transport_rx_frames_total") > 0);
    assert!(hist_count(&snap, "flexric_codec_encode_ns") > 0);
    assert!(hist_count(&snap, "flexric_codec_decode_ns") > 0);
    assert!(counter(&snap, "flexric_endpoint_begun_total") > 0, "subscription procedures ran");
    assert!(hist_count(&snap, "flexric_ransim_tti_ns") > 0, "sim ticks timed");
    assert!(counter(&snap, "flexric_ctrl_indications_total") > 0, "iApp saw indications");
    assert!(hist_count(&snap, "flexric_span_e2ap_encode_ns") > 0, "encode span on the hot path");

    // And the whole thing renders to Prometheus text, per-shard series
    // included.
    let text = snap.render_prom();
    assert!(text.contains("# TYPE flexric_server_indications_rx_total counter"));
    assert!(text.contains("flexric_server_dispatch_ns_bucket"));
    assert!(text.contains("flexric_server_shard_rx_total{shard=\"0\"}"));
    assert!(text.contains("flexric_server_shard_rx_total{shard=\"1\"}"));

    for agent in &agents {
        agent.stop();
    }
    server.stop();
}

fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

proptest! {
    /// Shard-per-thread recording then merging must be exactly the same
    /// as recording everything into one histogram.
    #[test]
    fn hist_merge_of_shards_equals_whole(
        values in prop::collection::vec((any::<u64>(), 0usize..4), 0..800)
    ) {
        let whole = Histogram::new();
        let shards: Vec<Histogram> = (0..4).map(|_| Histogram::new()).collect();
        for &(v, s) in &values {
            whole.record(v);
            shards[s].record(v);
        }
        let mut merged = HistSnapshot::default();
        for s in &shards {
            merged.merge(&s.snapshot());
        }
        prop_assert_eq!(merged, whole.snapshot());
    }

    /// Log-bucketed percentiles stay within the bucket's relative error
    /// (1/16 ≈ 6.25%) of the exact nearest-rank percentile.
    #[test]
    fn hist_percentile_within_bucket_error(
        mut values in prop::collection::vec(any::<u64>(), 1..800),
        p in 1.0f64..100.0
    ) {
        if cfg!(feature = "obs-off") {
            return Ok(()); // record() is compiled out
        }
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let exact = exact_percentile(&values, p);
        let approx = h.snapshot().percentile(p);
        prop_assert!(approx >= exact, "bucket upper bound is inclusive: {approx} < {exact}");
        prop_assert!(
            approx - exact <= exact / 16 + 1,
            "relative error too large: approx {approx}, exact {exact}"
        );
    }

    /// Merging in any split is associative-equivalent: percentiles of the
    /// merged snapshot match the unsplit histogram's.
    #[test]
    fn hist_merge_preserves_percentiles(
        values in prop::collection::vec(any::<u64>(), 1..400),
        split in 0usize..400
    ) {
        let split = split.min(values.len());
        let whole = Histogram::new();
        let a = Histogram::new();
        let b = Histogram::new();
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            if i < split { a.record(v) } else { b.record(v) }
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        for p in [1.0, 50.0, 90.0, 99.0, 100.0] {
            prop_assert_eq!(merged.percentile(p), whole.snapshot().percentile(p));
        }
    }
}
