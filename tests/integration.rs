//! Cross-crate integration tests: full FlexRIC stacks assembled from the
//! public APIs of every workspace crate.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use flexric::agent::{Agent, AgentConfig};
use flexric::server::{Server, ServerConfig};
use flexric_codec::E2apCodec;
use flexric_ctrl::monitoring::{MonitorApp, MonitorConfig};
use flexric_ctrl::ranfun::{full_bundle, stats_bundle, SimBs};
use flexric_e2ap::{E2NodeType, GlobalE2NodeId, GlobalRicId, Plmn};
use flexric_ransim::{CellConfig, FlowConfig, FlowKind, PathConfig, Sim, UeConfig};
use flexric_sm::SmCodec;
use flexric_transport::TransportAddr;

fn test_sim(ues: u16) -> Arc<Mutex<Sim>> {
    let mut sim = Sim::new(vec![CellConfig::nr("cell0", 106)], PathConfig::default());
    for i in 0..ues {
        sim.attach_ue(0, UeConfig::new(0x4601 + i, 20));
        sim.add_flow(FlowConfig {
            cell: 0,
            rnti: 0x4601 + i,
            drb: 1,
            kind: FlowKind::GreedyTcp { mss: 1500 },
            tuple: (0x0A00_0001, 0x0A00_0100 + i as u32, 1000, 80, 6),
            start_ms: 0,
            stop_ms: None,
        });
    }
    Arc::new(Mutex::new(sim))
}

/// Drives `ms` of virtual time through sim + agent.
async fn drive(sim: &Arc<Mutex<Sim>>, agent: &flexric::agent::AgentHandle, ms: u64) {
    for chunk in 0..(ms / 50).max(1) {
        let _ = chunk;
        for _ in 0..50 {
            let now = {
                let mut s = sim.lock();
                s.tick();
                s.now_ms()
            };
            agent.tick(now);
        }
        tokio::task::yield_now().await;
    }
    // Allow in-flight indications to land.
    tokio::time::sleep(Duration::from_millis(100)).await;
}

#[tokio::test]
async fn monitoring_pipeline_end_to_end() {
    // Controller + simulated BS over the in-memory transport; statistics
    // must arrive decoded and fresh in the controller's store.
    let (monitor, db, counters) = MonitorApp::new(MonitorConfig::default());
    let mut cfg =
        ServerConfig::new(GlobalRicId::new(Plmn::TEST, 1), TransportAddr::Mem("it-monitor".into()));
    cfg.tick_ms = None;
    let server = Server::spawn(cfg, vec![Box::new(monitor)]).await.unwrap();

    let sim = test_sim(3);
    let bs = SimBs::new(sim.clone(), 0);
    let mut acfg = AgentConfig::new(
        GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Gnb, 1),
        TransportAddr::Mem("it-monitor".into()),
    );
    acfg.tick_ms = None;
    let agent = Agent::spawn(acfg, stats_bundle(&bs, SmCodec::Flatb)).await.unwrap();

    drive(&sim, &agent, 2_000).await;

    let inds = counters.indications.load(std::sync::atomic::Ordering::Relaxed);
    assert!(inds > 3_000, "3 SMs × ~2000 ticks: got {inds}");
    let table = db.lock();
    let mac = table.mac(0).expect("mac stats stored");
    assert_eq!(mac.ues.len(), 3);
    assert!(mac.ues.iter().any(|u| u.dl_aggr_bytes > 1_000_000), "traffic flowed");
    let rlc = table.rlc(0).expect("rlc stats stored");
    assert_eq!(rlc.bearers.len(), 3);
    let pdcp = table.pdcp(0).expect("pdcp stats stored");
    assert_eq!(pdcp.bearers.len(), 3);
    agent.stop();
    server.stop();
}

#[tokio::test]
async fn monitoring_pipeline_asn1_variant() {
    // The same pipeline over the ASN.1-PER codec end to end.
    let (monitor, db, _) =
        MonitorApp::new(MonitorConfig { sm_codec: SmCodec::Asn1Per, ..Default::default() });
    let mut cfg = ServerConfig::new(
        GlobalRicId::new(Plmn::TEST, 1),
        TransportAddr::Mem("it-monitor-asn".into()),
    );
    cfg.codec = E2apCodec::Asn1Per;
    cfg.tick_ms = None;
    let server = Server::spawn(cfg, vec![Box::new(monitor)]).await.unwrap();

    let sim = test_sim(2);
    let bs = SimBs::new(sim.clone(), 0);
    let mut acfg = AgentConfig::new(
        GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Gnb, 1),
        TransportAddr::Mem("it-monitor-asn".into()),
    );
    acfg.codec = E2apCodec::Asn1Per;
    acfg.tick_ms = None;
    let agent = Agent::spawn(acfg, stats_bundle(&bs, SmCodec::Asn1Per)).await.unwrap();

    drive(&sim, &agent, 500).await;
    assert!(db.lock().mac(0).is_some(), "ASN.1 path delivers stats");
    agent.stop();
    server.stop();
}

#[tokio::test]
async fn slicing_control_loop_via_rest() {
    use flexric_ctrl::slicing::{spawn_rest, SliceApp};
    use flexric_xapp::http::HttpClient;
    use serde_json::json;

    let (slice_app, latest) = SliceApp::new(SmCodec::Flatb, 100);
    let mut cfg =
        ServerConfig::new(GlobalRicId::new(Plmn::TEST, 1), TransportAddr::Mem("it-slicing".into()));
    cfg.tick_ms = None;
    let server = Server::spawn(cfg, vec![Box::new(slice_app)]).await.unwrap();
    let rest = spawn_rest("127.0.0.1:0", server.clone(), latest).await.unwrap();
    let rest_addr = rest.addr.to_string();

    let sim = test_sim(2);
    let bs = SimBs::new(sim.clone(), 0);
    let mut acfg = AgentConfig::new(
        GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Gnb, 1),
        TransportAddr::Mem("it-slicing".into()),
    );
    acfg.tick_ms = None;
    let agent = Agent::spawn(acfg, full_bundle(&bs, SmCodec::Flatb)).await.unwrap();
    // Background virtual-time driver so REST control round-trips complete
    // while we await them.
    let driver = {
        let sim = sim.clone();
        let agent = agent.clone();
        tokio::spawn(async move {
            loop {
                for _ in 0..20 {
                    let now = {
                        let mut s = sim.lock();
                        s.tick();
                        s.now_ms()
                    };
                    agent.tick(now);
                }
                tokio::time::sleep(Duration::from_millis(2)).await;
            }
        })
    };
    tokio::time::sleep(Duration::from_millis(200)).await;

    // Configure slices over REST.
    let (status, body) =
        HttpClient::post_json(&rest_addr, "/slice/algo", &json!({"agent": 0, "algo": "nvs"}))
            .await
            .unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let (status, _) = HttpClient::post_json(
        &rest_addr,
        "/slice/conf",
        &json!({"agent": 0, "slices": [
            {"id": 0, "label": "a", "params": {"type": "nvs_capacity", "share_pct": 70.0}},
            {"id": 1, "label": "b", "params": {"type": "nvs_capacity", "share_pct": 30.0}},
        ]}),
    )
    .await
    .unwrap();
    assert_eq!(status, 200);
    let (status, _) = HttpClient::post_json(
        &rest_addr,
        "/slice/assoc",
        &json!({"agent": 0, "assoc": [[0x4601, 0], [0x4602, 1]]}),
    )
    .await
    .unwrap();
    assert_eq!(status, 200);

    // Over-commit must be rejected with a 400.
    let (status, _) = HttpClient::post_json(
        &rest_addr,
        "/slice/conf",
        &json!({"agent": 0, "slices": [
            {"id": 2, "label": "c", "params": {"type": "nvs_capacity", "share_pct": 10.0}},
        ]}),
    )
    .await
    .unwrap();
    assert_eq!(status, 400, "admission control surfaces as HTTP 400");

    // The slice configuration is observable in the simulator.
    {
        let s = sim.lock();
        assert!(s.cells[0].sched.index_of(0).is_some());
        assert!(s.cells[0].sched.index_of(1).is_some());
        assert!(s.cells[0].sched.index_of(2).is_none());
        let ue1 = s.cells[0].ues.iter().find(|u| u.cfg.rnti == 0x4601).unwrap();
        assert_eq!(ue1.slice, 0);
    }
    // And the stats flow back up over GET /slices eventually.
    let mut saw = false;
    for _ in 0..50 {
        let (status, body) = HttpClient::get(&rest_addr, "/slices").await.unwrap();
        assert_eq!(status, 200);
        let v: serde_json::Value = serde_json::from_slice(&body).unwrap();
        if v.as_array().is_some_and(|a| !a.is_empty()) {
            saw = true;
            break;
        }
        tokio::time::sleep(Duration::from_millis(50)).await;
    }
    assert!(saw, "slice stats visible over REST");
    driver.abort();
    agent.stop();
    server.stop();
}

#[tokio::test]
async fn tc_xapp_full_loop_fixes_bufferbloat() {
    use flexric_ctrl::ranfun::BearerAddr;
    use flexric_ctrl::traffic::{
        run_bloat_guard, spawn_rest, BloatGuardConfig, StatsForwarderApp, TcManagerApp,
    };
    use flexric_xapp::broker::Broker;

    let broker = Broker::spawn("127.0.0.1:0").await.unwrap();
    let broker_addr = broker.addr.to_string();
    let sm = SmCodec::Flatb;
    let fwd = StatsForwarderApp::new(
        sm,
        50,
        broker_addr.clone(),
        vec![BearerAddr { rnti: 0x4601, drb: 1 }],
    );
    let mgr = TcManagerApp::new(sm);
    let mut cfg =
        ServerConfig::new(GlobalRicId::new(Plmn::TEST, 1), TransportAddr::Mem("it-tc".into()));
    cfg.tick_ms = None;
    let server = Server::spawn(cfg, vec![Box::new(fwd), Box::new(mgr)]).await.unwrap();
    let rest = spawn_rest("127.0.0.1:0", server.clone()).await.unwrap();

    // Sim: VoIP + greedy TCP on one bearer.
    let mut sim = Sim::new(vec![CellConfig::nr("cell0", 106)], PathConfig::default());
    sim.attach_ue(0, UeConfig::new(0x4601, 20));
    let _voip = sim.add_flow(FlowConfig {
        cell: 0,
        rnti: 0x4601,
        drb: 1,
        kind: FlowKind::Cbr { bytes: 172, interval_ms: 20 },
        tuple: (1, 2, 1000, 5004, 17),
        start_ms: 0,
        stop_ms: None,
    });
    sim.add_flow(FlowConfig {
        cell: 0,
        rnti: 0x4601,
        drb: 1,
        kind: FlowKind::GreedyTcp { mss: 1500 },
        tuple: (1, 2, 1000, 80, 6),
        start_ms: 500,
        stop_ms: None,
    });
    let sim = Arc::new(Mutex::new(sim));
    let bs = SimBs::new(sim.clone(), 0);
    let mut acfg = AgentConfig::new(
        GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Gnb, 1),
        TransportAddr::Mem("it-tc".into()),
    );
    acfg.tick_ms = None;
    let agent = Agent::spawn(acfg, full_bundle(&bs, sm)).await.unwrap();

    let guard = tokio::spawn(run_bloat_guard(BloatGuardConfig {
        broker_addr,
        rest_addr: rest.addr.to_string(),
        sojourn_limit_us: 15_000,
        protect_dst_port: 5004,
        protect_proto: 17,
        pacer_target_us: 10_000,
    }));

    // Drive until the xApp has intervened (bounded).
    let driver_sim = sim.clone();
    let driver_agent = agent.clone();
    let mut intervened = false;
    for _ in 0..400 {
        for _ in 0..50 {
            let now = {
                let mut s = driver_sim.lock();
                s.tick();
                s.now_ms()
            };
            driver_agent.tick(now);
        }
        tokio::time::sleep(Duration::from_millis(2)).await;
        if guard.is_finished() {
            intervened = true;
            break;
        }
    }
    assert!(intervened, "xApp intervened through broker + REST");
    // The TC layer of the bearer now has a second queue and a pacer.
    {
        let s = sim.lock();
        let ue = s.cells[0].ues.iter().find(|u| u.cfg.rnti == 0x4601).unwrap();
        let tc = &ue.bearers[0].tc;
        assert!(matches!(tc.pacer(), flexric_sm::tc::PacerConf::Bdp { target_delay_us: 10_000 }));
    }
    agent.stop();
    server.stop();
}

#[tokio::test]
async fn recursive_virtualization_isolates_tenants() {
    use flexric_ctrl::recursive::{TenantConf, VirtController};
    use flexric_ctrl::slicing::{ApplySliceCtrl, SliceApp};
    use flexric_sm::slice::{SliceConf, SliceCtrl, SliceParams, UeSchedAlgo};
    use tokio::sync::oneshot;

    // Tenant controllers.
    let mk_tenant = |name: &str| {
        let (app, latest) = SliceApp::new(SmCodec::Flatb, 200);
        let mut cfg =
            ServerConfig::new(GlobalRicId::new(Plmn::TEST, 7), TransportAddr::Mem(name.to_owned()));
        cfg.tick_ms = None;
        (cfg, app, latest)
    };
    let (cfg_a, app_a, latest_a) = mk_tenant("it-virt-a");
    let (cfg_b, app_b, _latest_b) = mk_tenant("it-virt-b");
    let ctrl_a = Server::spawn(cfg_a, vec![Box::new(app_a)]).await.unwrap();
    let _ctrl_b = Server::spawn(cfg_b, vec![Box::new(app_b)]).await.unwrap();

    // Virtualization controller.
    let mut south_cfg = ServerConfig::new(
        GlobalRicId::new(Plmn::TEST, 20),
        TransportAddr::Mem("it-virt-south".into()),
    );
    south_cfg.tick_ms = None;
    let virt = VirtController::spawn(
        south_cfg,
        GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Enb, 99),
        vec![
            TenantConf {
                name: "a".into(),
                plmn: (1, 1),
                sla_milli: 500,
                ctrl_addr: TransportAddr::Mem("it-virt-a".into()),
            },
            TenantConf {
                name: "b".into(),
                plmn: (2, 1),
                sla_milli: 500,
                ctrl_addr: TransportAddr::Mem("it-virt-b".into()),
            },
        ],
        SmCodec::Flatb,
        100,
        None,
    )
    .await
    .unwrap();

    // Shared cell: 2 UEs per tenant.
    let mut sim = Sim::new(vec![CellConfig::lte("shared", 50)], PathConfig::default());
    for (i, (rnti, plmn)) in
        [(0x11u16, (1u16, 1u16)), (0x12, (1, 1)), (0x21, (2, 1)), (0x22, (2, 1))].iter().enumerate()
    {
        sim.attach_ue(0, UeConfig { rnti: *rnti, mcs: 28, cqi: 15, plmn: *plmn, snssai: None });
        sim.add_flow(FlowConfig {
            cell: 0,
            rnti: *rnti,
            drb: 1,
            kind: FlowKind::GreedyTcp { mss: 1500 },
            tuple: (1, 100 + i as u32, 1000, 80, 6),
            start_ms: 0,
            stop_ms: None,
        });
    }
    let sim = Arc::new(Mutex::new(sim));
    let bs = SimBs::new(sim.clone(), 0);
    let mut acfg = AgentConfig::new(
        GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Enb, 1),
        TransportAddr::Mem("it-virt-south".into()),
    );
    acfg.tick_ms = None;
    let agent = Agent::spawn(acfg, full_bundle(&bs, SmCodec::Flatb)).await.unwrap();

    // Virtual-time driver covering agent + virt north agent.
    let run = |ms: u64| {
        let sim = sim.clone();
        let agent = agent.clone();
        let north = virt.north.clone();
        let south = virt.south.clone();
        async move {
            for _ in 0..(ms / 50) {
                for _ in 0..50 {
                    let now = {
                        let mut s = sim.lock();
                        s.tick();
                        s.now_ms()
                    };
                    agent.tick(now);
                    north.tick(now);
                    south.tick(now);
                }
                tokio::time::sleep(Duration::from_millis(1)).await;
            }
        }
    };
    run(2_000).await;

    // Tenant UEs were auto-associated to their tenant default slices, so
    // throughput splits ~50/50 between operators.
    let delivered = |i: usize| sim.lock().flow(i).delivered_bytes as f64;
    let a = delivered(0) + delivered(1);
    let b = delivered(2) + delivered(3);
    let frac = a / (a + b);
    assert!((0.4..0.6).contains(&frac), "SLA split ≈50/50, got {frac:.2}");

    // Tenant A sub-slices within its virtual network.
    let apply = |ctrl: SliceCtrl| {
        let server = ctrl_a.clone();
        async move {
            let (tx, rx) = oneshot::channel();
            server.to_iapp("slice", Box::new(ApplySliceCtrl { agent: 0, ctrl, reply: tx }));
            tokio::time::timeout(Duration::from_secs(5), rx).await.unwrap().unwrap()
        }
    };
    // A runs the driver concurrently so the control round-trip completes.
    let driver = tokio::spawn(run(4_000));
    let reply = apply(SliceCtrl::AddModSlices {
        slices: vec![SliceConf {
            id: 0,
            label: "premium".into(),
            params: SliceParams::NvsCapacity { share_milli: 800 },
            ue_sched: UeSchedAlgo::PropFair,
        }],
    })
    .await;
    assert!(reply.ok, "virtual sub-slice accepted: {}", reply.detail);
    // Over-commit of the virtual budget is rejected.
    let reply = apply(SliceCtrl::AddModSlices {
        slices: vec![SliceConf {
            id: 1,
            label: "too much".into(),
            params: SliceParams::NvsCapacity { share_milli: 300 },
            ue_sched: UeSchedAlgo::PropFair,
        }],
    })
    .await;
    assert!(!reply.ok, "virtual admission control rejects over-commit");
    driver.await.unwrap();

    // The tenant's slice stats (virtual view) arrived at its controller.
    let seen = latest_a.lock().values().next().cloned();
    if let Some(stats) = seen {
        for s in &stats.slices {
            assert!(s.conf.id <= 99, "tenant sees virtual ids, got {}", s.conf.id);
        }
    }
    agent.stop();
}

#[tokio::test]
async fn transport_fault_injection_does_not_wedge_the_stack() {
    // Corrupted E2AP bytes must be ignored/answered with error
    // indications, never crash the server.
    use bytes::Bytes;
    use flexric_transport::{connect, WireMsg};

    let (monitor, _db, _) = MonitorApp::new(MonitorConfig::default());
    let mut cfg =
        ServerConfig::new(GlobalRicId::new(Plmn::TEST, 1), TransportAddr::Mem("it-fault".into()));
    cfg.tick_ms = None;
    let server = Server::spawn(cfg, vec![Box::new(monitor)]).await.unwrap();

    // A raw connection spewing garbage never completes setup…
    let mut garbage = connect(&TransportAddr::Mem("it-fault".into())).await.unwrap();
    for i in 0..50u8 {
        garbage.send(WireMsg::e2ap(Bytes::from(vec![i; 64]))).await.unwrap();
    }
    tokio::time::sleep(Duration::from_millis(100)).await;

    // …while a well-behaved agent still connects fine afterwards.
    let sim = test_sim(1);
    let bs = SimBs::new(sim.clone(), 0);
    let mut acfg = AgentConfig::new(
        GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Gnb, 1),
        TransportAddr::Mem("it-fault".into()),
    );
    acfg.tick_ms = None;
    let agent = Agent::spawn(acfg, stats_bundle(&sim_bs(&sim), SmCodec::Flatb)).await;
    assert!(agent.is_ok(), "server survives garbage and accepts agents");
    let _ = bs;
    server.stop();
}

fn sim_bs(sim: &Arc<Mutex<Sim>>) -> SimBs {
    SimBs::new(sim.clone(), 0)
}

#[tokio::test]
async fn kpm_subscription_and_handover_control() {
    use bytes::Bytes;
    use flexric::server::{CtrlOutcome, SubOutcome};
    use flexric_e2ap::*;
    use flexric_sm::kpm::{self, KpmActionDef, KpmReport};
    use flexric_sm::rrc::RrcCtrl;
    use flexric_sm::{ReportTrigger, SmPayload};

    // A bespoke iApp: subscribes to KPM on connect, later triggers a
    // handover through the RRC SM and records everything it sees.
    #[derive(Default)]
    struct SeenState {
        reports: Vec<KpmReport>,
        admitted: bool,
        ho_acked: bool,
    }
    struct KpmApp {
        seen: Arc<Mutex<SeenState>>,
    }
    enum Cmd {
        Handover(u16, u32),
    }
    impl flexric::server::IApp for KpmApp {
        fn name(&self) -> &str {
            "kpm-app"
        }
        fn on_agent_connected(
            &mut self,
            api: &mut flexric::server::ServerApi,
            agent: &flexric::server::AgentInfo,
        ) {
            let f = agent.function_by_oid(flexric_sm::oid::KPM).expect("kpm advertised");
            let trigger = Bytes::from(ReportTrigger::every_ms(100).encode(SmCodec::Flatb));
            let def = KpmActionDef::cell(
                100,
                &[kpm::meas::DRB_UE_THP_DL, kpm::meas::RRU_PRB_TOT_DL, kpm::meas::RRC_CONN_MEAN],
            );
            api.subscribe(
                agent.id,
                f.id,
                trigger,
                vec![RicActionToBeSetup {
                    id: RicActionId(0),
                    action_type: RicActionType::Report,
                    definition: Some(Bytes::from(def.encode(SmCodec::Flatb))),
                    subsequent: None,
                }],
            );
        }
        fn on_subscription_outcome(
            &mut self,
            _api: &mut flexric::server::ServerApi,
            _agent: flexric::server::AgentId,
            out: &SubOutcome,
        ) {
            if matches!(out, SubOutcome::Admitted(_)) {
                self.seen.lock().admitted = true;
            }
        }
        fn on_indication(
            &mut self,
            _api: &mut flexric::server::ServerApi,
            _agent: flexric::server::AgentId,
            ind: &flexric::server::IndicationRef,
        ) {
            let (_, msg) = ind.sm_payload().unwrap();
            if let Ok(report) = KpmReport::decode(SmCodec::Flatb, msg) {
                self.seen.lock().reports.push(report);
            }
        }
        fn on_control_outcome(
            &mut self,
            _api: &mut flexric::server::ServerApi,
            _agent: flexric::server::AgentId,
            out: &CtrlOutcome,
        ) {
            if matches!(out, CtrlOutcome::Ack(_)) {
                self.seen.lock().ho_acked = true;
            }
        }
        fn on_custom(
            &mut self,
            api: &mut flexric::server::ServerApi,
            msg: Box<dyn std::any::Any + Send>,
        ) {
            if let Ok(cmd) = msg.downcast::<Cmd>() {
                let Cmd::Handover(rnti, target) = *cmd;
                let rf_id = api
                    .randb()
                    .agents()
                    .next()
                    .and_then(|a| a.function_by_oid(flexric_sm::oid::RRC_EVENT))
                    .map(|f| f.id)
                    .expect("rrc fn");
                let msg = Bytes::from(
                    RrcCtrl::Handover { rnti, target_cell: target }.encode(SmCodec::Flatb),
                );
                api.control(0, rf_id, Bytes::new(), msg, Some(ControlAckRequest::Ack));
            }
        }
    }

    let seen = Arc::new(Mutex::new(SeenState::default()));
    let mut cfg =
        ServerConfig::new(GlobalRicId::new(Plmn::TEST, 1), TransportAddr::Mem("it-kpm".into()));
    cfg.tick_ms = None;
    let server = Server::spawn(cfg, vec![Box::new(KpmApp { seen: seen.clone() })]).await.unwrap();

    // Two-cell sim; the agent fronts cell 0.
    let mut sim =
        Sim::new(vec![CellConfig::nr("c0", 106), CellConfig::nr("c1", 106)], PathConfig::default());
    sim.attach_ue(0, UeConfig::new(0x4601, 20));
    sim.add_flow(FlowConfig {
        cell: 0,
        rnti: 0x4601,
        drb: 1,
        kind: FlowKind::GreedyTcp { mss: 1500 },
        tuple: (1, 2, 1000, 80, 6),
        start_ms: 0,
        stop_ms: None,
    });
    let sim = Arc::new(Mutex::new(sim));
    let bs = SimBs::new(sim.clone(), 0);
    let mut acfg = AgentConfig::new(
        GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Gnb, 1),
        TransportAddr::Mem("it-kpm".into()),
    );
    acfg.tick_ms = None;
    let agent = Agent::spawn(acfg, full_bundle(&bs, SmCodec::Flatb)).await.unwrap();

    drive(&sim, &agent, 1_000).await;
    {
        let st = seen.lock();
        assert!(st.admitted, "KPM subscription admitted");
        assert!(st.reports.len() >= 5, "KPM reports flowed: {}", st.reports.len());
        let last = st.reports.last().unwrap();
        assert_eq!(last.granularity_ms, 100);
        let thp = last
            .records
            .iter()
            .find(|r| r.name == kpm::meas::DRB_UE_THP_DL && r.rnti == Some(0x4601))
            .expect("per-UE throughput record");
        assert!(thp.value > 10_000, "UE throughput ≈ cell rate: {} kbps", thp.value);
        let conn = last.records.iter().find(|r| r.name == kpm::meas::RRC_CONN_MEAN).unwrap();
        assert_eq!(conn.value, 1);
        assert!(last.records.iter().any(|r| r.name == kpm::meas::RRU_PRB_TOT_DL));
    }

    // Handover the UE to cell 1 through the RRC SM.
    server.to_iapp("kpm-app", Box::new(Cmd::Handover(0x4601, 1)));
    drive(&sim, &agent, 500).await;
    assert!(seen.lock().ho_acked, "handover control acknowledged");
    {
        let s = sim.lock();
        assert!(s.cells[0].ues.is_empty(), "UE left cell 0");
        assert_eq!(s.cells[1].ues.len(), 1, "UE arrived in cell 1");
    }
    agent.stop();
    server.stop();
}
