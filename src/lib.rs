//! FlexRIC-rs umbrella crate: re-exports the full workspace.
pub use flexric as sdk;
pub use flexric_codec as codec;
pub use flexric_ctrl as ctrl;
pub use flexric_e2ap as e2ap;
pub use flexric_ransim as ransim;
pub use flexric_sm as sm;
pub use flexric_transport as transport;
pub use flexric_xapp as xapp;
