//! Quickstart: the smallest complete FlexRIC deployment.
//!
//! One monitoring controller (server library + statistics iApp), one
//! simulated 5G base station with the pre-defined statistics service
//! models, connected over the SCTP-like TCP transport with FlatBuffers
//! encoding.  The controller subscribes to MAC/RLC/PDCP statistics at
//! 1 ms and we print a live per-UE view once per second.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use parking_lot::Mutex;

use flexric::agent::{Agent, AgentConfig};
use flexric::server::{Server, ServerConfig};
use flexric_ctrl::monitoring::{MonitorApp, MonitorConfig};
use flexric_ctrl::ranfun::{stats_bundle, SimBs};
use flexric_e2ap::{E2NodeType, GlobalE2NodeId, GlobalRicId, Plmn};
use flexric_ransim::{CellConfig, FlowConfig, FlowKind, PathConfig, Sim, UeConfig};
use flexric_sm::SmCodec;
use flexric_transport::TransportAddr;

#[tokio::main]
async fn main() {
    // 1. The controller: server library + monitoring iApp.
    let (monitor, db, counters) = MonitorApp::new(MonitorConfig::default());
    let cfg = ServerConfig::new(
        GlobalRicId::new(Plmn::TEST, 1),
        TransportAddr::parse("127.0.0.1:0").unwrap(),
    );
    let server = Server::spawn(cfg, vec![Box::new(monitor)]).await.expect("controller");
    println!("controller listening on {}", server.addrs[0]);

    // 1b. Observability northbound: every layer below feeds the global
    //     obs registry; this serves it in Prometheus text format.
    let http = flexric_xapp::http::HttpServer::spawn(
        "127.0.0.1:0",
        flexric_xapp::metrics::with_metrics_route(flexric_xapp::http::Router::new()),
    )
    .await
    .expect("metrics exporter");
    println!("metrics:  curl http://{}/metrics", http.addr);

    // 2. The base station: a simulated NR cell (106 PRB ≈ 20 MHz) with
    //    three UEs downloading at full rate.
    let mut sim = Sim::new(vec![CellConfig::nr("cell0", 106)], PathConfig::default());
    for i in 0..3u16 {
        sim.attach_ue(0, UeConfig::new(0x4601 + i, 20));
        sim.add_flow(FlowConfig {
            cell: 0,
            rnti: 0x4601 + i,
            drb: 1,
            kind: FlowKind::GreedyTcp { mss: 1500 },
            tuple: (0x0A00_0001, 0x0A00_0100 + i as u32, 1000, 80, 6),
            start_ms: 0,
            stop_ms: None,
        });
    }
    let sim = Arc::new(Mutex::new(sim));

    // 3. The agent: pre-defined MAC/RLC/PDCP statistics RAN functions on
    //    top of the simulated cell, driven in real time at 1 ms TTI.
    let bs = SimBs::new(sim.clone(), 0);
    let mut acfg = AgentConfig::new(
        GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Gnb, 1),
        server.addrs[0].clone(),
    );
    acfg.tick_ms = None;
    let agent = Agent::spawn(acfg, stats_bundle(&bs, SmCodec::Flatb)).await.expect("agent");

    let driver_sim = sim.clone();
    let driver_agent = agent.clone();
    tokio::spawn(async move {
        let mut iv = tokio::time::interval(std::time::Duration::from_millis(1));
        iv.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Skip);
        loop {
            iv.tick().await;
            let now = {
                let mut s = driver_sim.lock();
                s.tick();
                s.now_ms()
            };
            driver_agent.tick(now);
        }
    });

    // 4. Watch the statistics arriving at the controller.
    for _ in 0..8 {
        tokio::time::sleep(std::time::Duration::from_secs(1)).await;
        let inds = counters.indications.load(std::sync::atomic::Ordering::Relaxed);
        let table = db.lock();
        let Some(mac) = table.mac(0) else {
            println!("waiting for statistics…");
            continue;
        };
        println!("t={}s  indications={}  cell: {} PRBs", mac.tstamp_ms / 1000, inds, mac.cell_prbs);
        for ue in &mac.ues {
            println!(
                "  UE {:#06x}: mcs {}  {:>6.2} Mbit/s  backlog {:>7} B  total {:>5} MB",
                ue.rnti,
                ue.mcs,
                ue.tbs_dl_bytes as f64 * 8.0 / 1000.0, // per-ms window → kbit/ms = Mbit/s
                ue.dl_backlog_bytes,
                ue.dl_aggr_bytes / 1_000_000,
            );
        }
    }
    println!("done — this is the whole SDK surface: Server + iApp, Agent + RAN functions.");
    agent.stop();
    server.stop();
}
