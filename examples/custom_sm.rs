//! A third-party service model, end to end, with zero core edits.
//!
//! Everything specific to the SM lives in this file: the payload type and
//! its codecs, the versioned descriptor, the agent-side RAN function, and
//! the consuming iApp.  Nothing under `crates/sm` or `crates/ctrl` knows
//! it exists — the descriptor registers in the process-wide
//! [`flexric_sm::registry`], the agent advertises `oid@version` from it at
//! E2 Setup, the server negotiates it like any bundled SM, and the iApp
//! decodes indications through the registry vtable.
//!
//! ```text
//! cargo run --release --example custom_sm
//! ```
//!
//! Exits 0 once indications flow and decode; panics otherwise (the CI
//! smoke job relies on that).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;

use flexric::agent::{Agent, AgentConfig, AgentCtx, CtrlId, PeriodicSubs, SubscriptionInfo};
use flexric::server::{AgentId, AgentInfo, IApp, IndicationRef, Server, ServerApi, ServerConfig};
use flexric_codec::error::{CodecError, Result as CodecResult};
use flexric_codec::fb::{FbBuilder, FbTable, TableBuilder};
use flexric_codec::per::{BitReader, BitWriter};
use flexric_codec::ByteSink;
use flexric_e2ap::*;
use flexric_sm::registry::{self, SmDescriptor, SmVersion};
use flexric_sm::{RanFuncDef, ReportTrigger, SmCodec, SmPayload};
use flexric_transport::TransportAddr;

/// The custom SM's identity.
const GEO_RF: u16 = 200;
const GEO_OID: &str = "example.sm.geoloc";
const GEO_VERSION: SmVersion = SmVersion::new(1, 1);

// ---------------------------------------------------------------------------
// 1. The payload type and its codecs — ordinary SmPayload impls.
// ---------------------------------------------------------------------------

/// A UE geolocation fix, the indication message of the custom SM.
#[derive(Debug, Clone, PartialEq, Eq)]
struct GeoLocInd {
    tstamp_ms: u64,
    rnti: u16,
    lat_microdeg: i64,
    lon_microdeg: i64,
    alt_cm: u32,
}

impl SmPayload for GeoLocInd {
    fn encode_per<B: ByteSink>(&self, w: &mut BitWriter<B>) {
        w.put_uint(self.tstamp_ms);
        w.put_uint(self.rnti as u64);
        w.put_uint(self.lat_microdeg.unsigned_abs());
        w.put_bit(self.lat_microdeg < 0);
        w.put_uint(self.lon_microdeg.unsigned_abs());
        w.put_bit(self.lon_microdeg < 0);
        w.put_uint(self.alt_cm as u64);
    }

    fn decode_per(r: &mut BitReader) -> CodecResult<Self> {
        let tstamp_ms = r.get_uint()?;
        let rnti = r.get_uint()? as u16;
        let lat_abs = r.get_uint()? as i64;
        let lat_neg = r.get_bit()?;
        let lon_abs = r.get_uint()? as i64;
        let lon_neg = r.get_bit()?;
        Ok(GeoLocInd {
            tstamp_ms,
            rnti,
            lat_microdeg: if lat_neg { -lat_abs } else { lat_abs },
            lon_microdeg: if lon_neg { -lon_abs } else { lon_abs },
            alt_cm: r.get_uint()? as u32,
        })
    }

    fn encode_fb<B: ByteSink>(&self, b: &mut FbBuilder<B>) -> u32 {
        let mut t = TableBuilder::new();
        t.u64(0, self.tstamp_ms)
            .u16(1, self.rnti)
            .u64(2, self.lat_microdeg.unsigned_abs())
            .u8(3, (self.lat_microdeg < 0) as u8)
            .u64(4, self.lon_microdeg.unsigned_abs())
            .u8(5, (self.lon_microdeg < 0) as u8)
            .u32(6, self.alt_cm);
        t.end(b)
    }

    fn decode_fb(t: &FbTable) -> CodecResult<Self> {
        let lat_abs = t.u64(2)?.ok_or(CodecError::Malformed { what: "geo lat" })? as i64;
        let lon_abs = t.u64(4)?.ok_or(CodecError::Malformed { what: "geo lon" })? as i64;
        Ok(GeoLocInd {
            tstamp_ms: t.u64(0)?.ok_or(CodecError::Malformed { what: "geo tstamp" })?,
            rnti: t.u16(1)?.unwrap_or(0),
            lat_microdeg: if t.u8(3)?.unwrap_or(0) != 0 { -lat_abs } else { lat_abs },
            lon_microdeg: if t.u8(5)?.unwrap_or(0) != 0 { -lon_abs } else { lon_abs },
            alt_cm: t.u32(6)?.unwrap_or(0),
        })
    }
}

// ---------------------------------------------------------------------------
// 2. The descriptor — registered like any plugin, never baked in.
// ---------------------------------------------------------------------------

fn register_geo_sm() -> Arc<SmDescriptor> {
    registry::global()
        .register(
            SmDescriptor::new(
                GEO_RF,
                GEO_OID,
                GEO_VERSION,
                RanFuncDef::simple("GEOLOC", "example UE geolocation SM"),
            )
            .trigger::<ReportTrigger>()
            .indication::<GeoLocInd>(),
        )
        .expect("geo SM registers once")
}

// ---------------------------------------------------------------------------
// 3. Agent side: a RAN function whose identity comes from the descriptor.
// ---------------------------------------------------------------------------

struct GeoFn {
    desc: Arc<SmDescriptor>,
    subs: PeriodicSubs,
    sm_codec: SmCodec,
    fixes: u64,
}

impl flexric::agent::RanFunction for GeoFn {
    fn id(&self) -> RanFunctionId {
        RanFunctionId::new(self.desc.ran_function_id)
    }
    fn oid(&self) -> String {
        self.desc.oid.clone()
    }
    fn definition(&self) -> Bytes {
        Bytes::from(self.desc.funcdef_bytes(self.sm_codec))
    }
    fn version(&self) -> FnVersion {
        self.desc.version.into()
    }
    fn on_subscription(
        &mut self,
        ctx: &mut AgentCtx,
        sub: &SubscriptionInfo,
        _req: &RicSubscriptionRequest,
    ) -> Result<(), Cause> {
        self.subs.admit(sub, self.sm_codec, ctx.now_ms)
    }
    fn on_subscription_delete(&mut self, _ctx: &mut AgentCtx, ctrl: CtrlId, req_id: RicRequestId) {
        self.subs.remove(ctrl, req_id);
    }
    fn on_control(
        &mut self,
        _ctx: &mut AgentCtx,
        _ctrl: CtrlId,
        _req: &RicControlRequest,
    ) -> Result<Option<Bytes>, Cause> {
        Err(Cause::Ric(RicCause::ActionNotSupported))
    }
    fn on_tick(&mut self, ctx: &mut AgentCtx) {
        let now = ctx.now_ms;
        let mut due: Vec<SubscriptionInfo> = Vec::new();
        self.subs.for_due(now, |sub, _| due.push(sub.clone()));
        for sub in due {
            self.fixes += 1;
            // A UE walking north-east, one step per report.
            let fix = GeoLocInd {
                tstamp_ms: now,
                rnti: 0x4601,
                lat_microdeg: 43_615_000 + self.fixes as i64,
                lon_microdeg: 7_071_000 + self.fixes as i64,
                alt_cm: 12_000,
            };
            let msg = Bytes::from(fix.encode(self.sm_codec));
            ctx.send_indication(&sub, Some(self.fixes as u32), Bytes::new(), msg);
        }
    }
}

// ---------------------------------------------------------------------------
// 4. Server side: an iApp that discovers and decodes via the registry.
// ---------------------------------------------------------------------------

struct GeoApp {
    sm_codec: SmCodec,
    fixes: Arc<AtomicU64>,
    last: Arc<parking_lot::Mutex<Option<GeoLocInd>>>,
}

impl IApp for GeoApp {
    fn name(&self) -> &str {
        "geo"
    }

    fn on_agent_connected(&mut self, api: &mut ServerApi, agent: &AgentInfo) {
        // The setup negotiation already filtered the function list against
        // the registry; a version-compatible match means we can subscribe.
        let desc = registry::global().latest(GEO_OID).expect("geo SM registered");
        let Some(f) = agent.function_by_oid_compat(GEO_OID, desc.version.into()) else { return };
        println!(
            "geo iApp: agent {} advertises {}@{}.{}",
            agent.id, f.oid, f.version.major, f.version.minor
        );
        let trigger = Bytes::from(ReportTrigger::every_ms(1).encode(self.sm_codec));
        api.subscribe_report(agent.id, f.id, trigger);
    }

    fn on_indication(&mut self, _api: &mut ServerApi, _agent: AgentId, ind: &IndicationRef) {
        let Ok((_, msg)) = ind.sm_payload() else { return };
        // Decode through the vtable — the iApp never names the codec fns.
        let desc = registry::global().latest(GEO_OID).expect("geo SM registered");
        let any = desc.decode_indication(self.sm_codec, msg).expect("geo decode");
        let fix = any.downcast::<GeoLocInd>().expect("geo concrete type");
        *self.last.lock() = Some(*fix);
        self.fixes.fetch_add(1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// 5. Wire it together over the in-memory transport.
// ---------------------------------------------------------------------------

#[tokio::main]
async fn main() {
    let desc = register_geo_sm();
    println!("registered {}", desc.label());
    assert_eq!(
        registry::global().negotiate(GEO_OID, SmVersion::new(1, 0)).unwrap().version,
        GEO_VERSION,
        "minor-version skew negotiates to the highest registered minor"
    );

    let sm_codec = SmCodec::Flatb;
    let fixes = Arc::new(AtomicU64::new(0));
    let last = Arc::new(parking_lot::Mutex::new(None));
    let app = GeoApp { sm_codec, fixes: fixes.clone(), last: last.clone() };

    let mut cfg =
        ServerConfig::new(GlobalRicId::new(Plmn::TEST, 1), TransportAddr::Mem("custom-sm".into()));
    cfg.tick_ms = Some(5);
    let server = Server::spawn(cfg, vec![Box::new(app)]).await.expect("server");

    let geo = GeoFn { desc, subs: PeriodicSubs::new(), sm_codec, fixes: 0 };
    let mut acfg = AgentConfig::new(
        GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Gnb, 1),
        server.addrs[0].clone(),
    );
    acfg.tick_ms = Some(1);
    let agent = Agent::spawn(acfg, vec![Box::new(geo)]).await.expect("agent");

    // Wait until fixes flow and decode.
    for _ in 0..500 {
        if fixes.load(Ordering::Relaxed) >= 20 {
            break;
        }
        tokio::time::sleep(std::time::Duration::from_millis(10)).await;
    }
    let n = fixes.load(Ordering::Relaxed);
    assert!(n >= 20, "expected at least 20 geolocation fixes, got {n}");
    let fix = last.lock().clone().expect("a decoded fix");
    assert_eq!(fix.rnti, 0x4601);
    assert!(fix.lat_microdeg > 43_615_000 && fix.lon_microdeg > 7_071_000);
    println!(
        "custom SM end-to-end: {n} fixes decoded via the registry vtable; last = ({:.6}°, {:.6}°)",
        fix.lat_microdeg as f64 / 1e6,
        fix.lon_microdeg as f64 / 1e6,
    );

    agent.stop();
    server.stop();
}
