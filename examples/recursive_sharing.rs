//! Recursive slicing / RAN sharing demo (paper §6.2): two operators run
//! their own slicing controllers over one shared base station.
//!
//! The virtualization controller terminates the real agent southbound and
//! — recursively — uses the agent library northbound to expose a virtual
//! E2 node to each tenant.  Each operator sees 100 % of a virtual network
//! backed by a 50 % SLA: slice configurations are translated per
//! Appendix B, slice ids are remapped, MAC statistics are partitioned by
//! PLMN.  Operator A sub-slices its network; operator B's view and
//! throughput stay untouched — and when B idles, A absorbs the spare
//! capacity (multiplexing gain).
//!
//! ```text
//! cargo run --release --example recursive_sharing
//! ```

use std::sync::Arc;

use parking_lot::Mutex;

use flexric::agent::{Agent, AgentConfig};
use flexric::server::{Server, ServerConfig};
use flexric_ctrl::ranfun::{full_bundle, SimBs};
use flexric_ctrl::recursive::{TenantConf, VirtController};
use flexric_ctrl::slicing::{ApplySliceCtrl, SliceApp};
use flexric_e2ap::{E2NodeType, GlobalE2NodeId, GlobalRicId, Plmn};
use flexric_ransim::{CellConfig, FlowConfig, FlowKind, PathConfig, Sim, UeConfig};
use flexric_sm::slice::{SliceConf, SliceCtrl, SliceParams, UeSchedAlgo};
use flexric_sm::SmCodec;
use flexric_transport::TransportAddr;
use tokio::sync::oneshot;

const OP_A: (u16, u16) = (1, 1);
const OP_B: (u16, u16) = (2, 1);

async fn tenant_ctrl(name: &str) -> flexric::server::ServerHandle {
    let (app, _latest) = SliceApp::new(SmCodec::Flatb, 1000);
    let cfg =
        ServerConfig::new(GlobalRicId::new(Plmn::TEST, 7), TransportAddr::Mem(name.to_owned()));
    Server::spawn(cfg, vec![Box::new(app)]).await.expect("tenant controller")
}

async fn tenant_apply(server: &flexric::server::ServerHandle, ctrl: SliceCtrl) -> bool {
    let (tx, rx) = oneshot::channel();
    server.to_iapp("slice", Box::new(ApplySliceCtrl { agent: 0, ctrl, reply: tx }));
    matches!(tokio::time::timeout(std::time::Duration::from_secs(5), rx).await, Ok(Ok(r)) if r.ok)
}

#[tokio::main]
async fn main() {
    // Two tenant controllers — the unchanged §6.1.2 slicing controller.
    let tenant_a = tenant_ctrl("tenant-a").await;
    let _tenant_b = tenant_ctrl("tenant-b").await;

    // The virtualization controller in between (50 % SLA each).
    let south_cfg = ServerConfig::new(
        GlobalRicId::new(Plmn::TEST, 20),
        TransportAddr::Mem("virt-south".into()),
    );
    let virt = VirtController::spawn(
        south_cfg,
        GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Enb, 99),
        vec![
            TenantConf {
                name: "operator-A".into(),
                plmn: OP_A,
                sla_milli: 500,
                ctrl_addr: TransportAddr::Mem("tenant-a".into()),
            },
            TenantConf {
                name: "operator-B".into(),
                plmn: OP_B,
                sla_milli: 500,
                ctrl_addr: TransportAddr::Mem("tenant-b".into()),
            },
        ],
        SmCodec::Flatb,
        500,
        Some(1),
    )
    .await
    .expect("virtualization controller");

    // The shared infrastructure: one 10 MHz LTE cell, 2 UEs per operator.
    let mut sim = Sim::new(vec![CellConfig::lte("shared-enb", 50)], PathConfig::default());
    let ues = [(0x11u16, OP_A), (0x12, OP_A), (0x21, OP_B), (0x22, OP_B)];
    let mut flows = Vec::new();
    for (i, (rnti, plmn)) in ues.iter().enumerate() {
        sim.attach_ue(0, UeConfig { rnti: *rnti, mcs: 28, cqi: 15, plmn: *plmn, snssai: None });
        flows.push(sim.add_flow(FlowConfig {
            cell: 0,
            rnti: *rnti,
            drb: 1,
            kind: FlowKind::GreedyTcp { mss: 1500 },
            tuple: (0x0A00_0001, 0x0A00_0200 + i as u32, 1000, 80, 6),
            start_ms: 0,
            stop_ms: None,
        }));
    }
    let sim = Arc::new(Mutex::new(sim));
    let bs = SimBs::new(sim.clone(), 0);
    let mut acfg = AgentConfig::new(
        GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Enb, 1),
        TransportAddr::Mem("virt-south".into()),
    );
    acfg.tick_ms = None;
    let agent = Agent::spawn(acfg, full_bundle(&bs, SmCodec::Flatb)).await.expect("agent");

    // Real-time driver for the whole stack.
    {
        let sim = sim.clone();
        let agent = agent.clone();
        tokio::spawn(async move {
            let mut iv = tokio::time::interval(std::time::Duration::from_millis(1));
            iv.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Skip);
            loop {
                iv.tick().await;
                let now = {
                    let mut s = sim.lock();
                    s.tick();
                    s.now_ms()
                };
                agent.tick(now);
            }
        });
    }

    let observe = |label: &'static str, secs: u64| {
        let sim = sim.clone();
        let flows = flows.clone();
        async move {
            let before: Vec<u64> =
                flows.iter().map(|f| sim.lock().flow(*f).delivered_bytes).collect();
            tokio::time::sleep(std::time::Duration::from_secs(secs)).await;
            println!("{label}:");
            let labels = ["A/UE1", "A/UE2", "B/UE3", "B/UE4"];
            for (i, f) in flows.iter().enumerate() {
                let after = sim.lock().flow(*f).delivered_bytes;
                println!(
                    "  {}: {:>5.2} Mbit/s",
                    labels[i],
                    (after - before[i]) as f64 * 8.0 / secs as f64 / 1e6
                );
            }
        }
    };

    tokio::time::sleep(std::time::Duration::from_millis(800)).await;
    observe("\nboth operators at their 50 % SLA, no sub-slices", 4).await;

    // Operator A sub-slices ITS OWN virtual network: 66 % + 34 % of its
    // 100 % virtual resources (i.e. 33 % + 17 % physical).
    let ok = tenant_apply(
        &tenant_a,
        SliceCtrl::AddModSlices {
            slices: vec![
                SliceConf {
                    id: 0,
                    label: "premium".into(),
                    params: SliceParams::NvsCapacity { share_milli: 660 },
                    ue_sched: UeSchedAlgo::PropFair,
                },
                SliceConf {
                    id: 1,
                    label: "standard".into(),
                    params: SliceParams::NvsCapacity { share_milli: 340 },
                    ue_sched: UeSchedAlgo::PropFair,
                },
            ],
        },
    )
    .await;
    println!("\noperator A creates virtual sub-slices 66/34 (accepted: {ok})");
    let ok = tenant_apply(&tenant_a, SliceCtrl::AssocUeSlice { assoc: vec![(0x11, 0), (0x12, 1)] })
        .await;
    println!("operator A associates UE1→premium, UE2→standard (accepted: {ok})");

    // Admission control in the virtual domain: a third slice that would
    // exceed A's virtual 100 % is rejected — B can never be affected.
    let rejected = !tenant_apply(
        &tenant_a,
        SliceCtrl::AddModSlices {
            slices: vec![SliceConf {
                id: 2,
                label: "greedy".into(),
                params: SliceParams::NvsCapacity { share_milli: 200 },
                ue_sched: UeSchedAlgo::PropFair,
            }],
        },
    )
    .await;
    println!("operator A tries to over-commit (+20 %): rejected = {rejected}");

    observe("\nafter A's sub-slicing (B unchanged — isolation)", 4).await;

    // Operator B goes idle: A absorbs the spare capacity.
    sim.lock().set_flow_active(flows[2], false);
    sim.lock().set_flow_active(flows[3], false);
    observe("\noperator B idle (A absorbs spare capacity — multiplexing gain)", 4).await;

    agent.stop();
    virt.south.stop();
    virt.north.stop();
}
