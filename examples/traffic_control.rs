//! Flow-based traffic control demo (paper §6.1.1): fighting bufferbloat
//! with the TC SM.
//!
//! A VoIP flow shares a bearer with a greedy TCP download.  The full
//! controller stack runs — RLC statistics flow to a pub/sub broker, the
//! bloat-guard xApp watches them and, when the sojourn time explodes,
//! reconfigures the bearer over REST: second FIFO queue, 5-tuple filter,
//! 5G-BDP pacer.  The example prints the VoIP round-trip time before and
//! after the intervention.
//!
//! ```text
//! cargo run --release --example traffic_control
//! ```

use std::sync::Arc;

use parking_lot::Mutex;

use flexric::agent::{Agent, AgentConfig};
use flexric::server::{Server, ServerConfig};
use flexric_ctrl::ranfun::{full_bundle, BearerAddr, SimBs};
use flexric_ctrl::traffic::{
    run_bloat_guard, spawn_rest, BloatGuardConfig, StatsForwarderApp, TcManagerApp,
};
use flexric_e2ap::{E2NodeType, GlobalE2NodeId, GlobalRicId, Plmn};
use flexric_ransim::{CellConfig, FlowConfig, FlowKind, PathConfig, Sim, UeConfig};
use flexric_sm::SmCodec;
use flexric_transport::TransportAddr;
use flexric_xapp::broker::Broker;

const RNTI: u16 = 0x4601;

#[tokio::main]
async fn main() {
    // Northbound plumbing: pub/sub broker (the Redis stand-in).
    let broker = Broker::spawn("127.0.0.1:0").await.expect("broker");
    let broker_addr = broker.addr.to_string();

    // Controller: stats forwarder + TC SM manager, REST northbound.
    let sm = SmCodec::Flatb;
    let fwd = StatsForwarderApp::new(
        sm,
        100,
        broker_addr.clone(),
        vec![BearerAddr { rnti: RNTI, drb: 1 }],
    );
    let mgr = TcManagerApp::new(sm);
    let cfg = ServerConfig::new(
        GlobalRicId::new(Plmn::TEST, 1),
        TransportAddr::parse("127.0.0.1:0").unwrap(),
    );
    let server = Server::spawn(cfg, vec![Box::new(fwd), Box::new(mgr)]).await.expect("server");
    let rest = spawn_rest("127.0.0.1:0", server.clone()).await.expect("rest");
    println!("TC controller: E2 {}, broker {}, REST {}", server.addrs[0], broker_addr, rest.addr);

    // Base station: one UE, a VoIP flow, and (after 5 s) a greedy TCP flow.
    let mut sim = Sim::new(vec![CellConfig::nr("cell0", 106)], PathConfig::default());
    sim.attach_ue(0, UeConfig::new(RNTI, 20));
    let voip = sim.add_flow(FlowConfig {
        cell: 0,
        rnti: RNTI,
        drb: 1,
        kind: FlowKind::Cbr { bytes: 172, interval_ms: 20 },
        tuple: (0x0A00_0001, 0x0A00_0002, 40_000, 5004, 17),
        start_ms: 0,
        stop_ms: None,
    });
    sim.add_flow(FlowConfig {
        cell: 0,
        rnti: RNTI,
        drb: 1,
        kind: FlowKind::GreedyTcp { mss: 1500 },
        tuple: (0x0A00_0001, 0x0A00_0002, 40_001, 80, 6),
        start_ms: 5_000,
        stop_ms: None,
    });
    let sim = Arc::new(Mutex::new(sim));
    let bs = SimBs::new(sim.clone(), 0);
    let mut acfg = AgentConfig::new(
        GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Gnb, 1),
        server.addrs[0].clone(),
    );
    acfg.tick_ms = None;
    let agent = Agent::spawn(acfg, full_bundle(&bs, sm)).await.expect("agent");

    // Real-time TTI driver.
    {
        let sim = sim.clone();
        let agent = agent.clone();
        tokio::spawn(async move {
            let mut iv = tokio::time::interval(std::time::Duration::from_millis(1));
            iv.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Skip);
            loop {
                iv.tick().await;
                let now = {
                    let mut s = sim.lock();
                    s.tick();
                    s.now_ms()
                };
                agent.tick(now);
            }
        });
    }

    // The xApp.
    let guard = tokio::spawn(run_bloat_guard(BloatGuardConfig {
        broker_addr,
        rest_addr: rest.addr.to_string(),
        sojourn_limit_us: 20_000,
        protect_dst_port: 5004,
        protect_proto: 17,
        pacer_target_us: 10_000,
    }));

    // Narrate the VoIP RTT once per second.
    let mut intervened_at = None;
    for sec in 1..=20u64 {
        tokio::time::sleep(std::time::Duration::from_secs(1)).await;
        let (rtt_ms, n) = {
            let s = sim.lock();
            let log = &s.flow(voip).rtt_log;
            let recent: Vec<u64> =
                log.iter().rev().take(40).map(|(_, rtt_us)| rtt_us / 1000).collect();
            (recent.iter().sum::<u64>() / recent.len().max(1) as u64, log.len())
        };
        let marker = match (&intervened_at, guard.is_finished()) {
            (None, true) => {
                intervened_at = Some(sec);
                "  ← xApp intervened (queue + filter + BDP pacer)"
            }
            _ => "",
        };
        println!("t={sec:>2}s  VoIP RTT ≈ {rtt_ms:>4} ms  ({n} packets){marker}");
    }
    println!("\nThe greedy flow bloats the RLC buffer from t=5 s; once the xApp");
    println!("segregates the VoIP flow and paces the bearer, its RTT collapses back.");
    agent.stop();
    server.stop();
}
