//! RAT-unaware slicing controller demo (paper §6.1.2).
//!
//! Builds the slicing controller of Table 4 — server library, SC SM
//! manager iApp, REST northbound — over a simulated NR cell with three
//! saturating UEs, then acts as the `curl` xApp: deploys NVS slices over
//! REST, re-associates UEs, reconfigures shares, and reads back the slice
//! statistics, printing the throughput shift at each step.
//!
//! ```text
//! cargo run --release --example slicing_demo
//! ```

use std::sync::Arc;

use parking_lot::Mutex;
use serde_json::json;

use flexric::agent::{Agent, AgentConfig};
use flexric::server::{Server, ServerConfig};
use flexric_ctrl::ranfun::{full_bundle, SimBs};
use flexric_ctrl::slicing::{spawn_rest, SliceApp};
use flexric_e2ap::{E2NodeType, GlobalE2NodeId, GlobalRicId, Plmn};
use flexric_ransim::{CellConfig, FlowConfig, FlowKind, PathConfig, Sim, UeConfig};
use flexric_sm::SmCodec;
use flexric_transport::TransportAddr;
use flexric_xapp::http::HttpClient;

async fn observe(sim: &Arc<Mutex<Sim>>, flows: &[usize], label: &str, secs: u64) {
    let before: Vec<u64> = flows.iter().map(|f| sim.lock().flow(*f).delivered_bytes).collect();
    tokio::time::sleep(std::time::Duration::from_secs(secs)).await;
    println!("{label}:");
    for (i, f) in flows.iter().enumerate() {
        let after = sim.lock().flow(*f).delivered_bytes;
        println!(
            "  UE {}: {:>6.2} Mbit/s",
            i + 1,
            (after - before[i]) as f64 * 8.0 / secs as f64 / 1e6
        );
    }
}

#[tokio::main]
async fn main() {
    // Controller: SC SM manager iApp + REST northbound.
    let (slice_app, latest) = SliceApp::new(SmCodec::Flatb, 500);
    let cfg = ServerConfig::new(
        GlobalRicId::new(Plmn::TEST, 1),
        TransportAddr::parse("127.0.0.1:0").unwrap(),
    );
    let server = Server::spawn(cfg, vec![Box::new(slice_app)]).await.expect("controller");
    let rest = spawn_rest("127.0.0.1:0", server.clone(), latest).await.expect("rest");
    let rest_addr = rest.addr.to_string();
    println!("slicing controller: E2 on {}, REST on {}", server.addrs[0], rest_addr);

    // Base station: NR cell, three saturating UEs.
    let mut sim = Sim::new(vec![CellConfig::nr("cell0", 106)], PathConfig::default());
    let mut flows = Vec::new();
    for i in 0..3u16 {
        sim.attach_ue(0, UeConfig::new(0x4601 + i, 20));
        flows.push(sim.add_flow(FlowConfig {
            cell: 0,
            rnti: 0x4601 + i,
            drb: 1,
            kind: FlowKind::GreedyTcp { mss: 1500 },
            tuple: (0x0A00_0001, 0x0A00_0100 + i as u32, 1000, 80, 6),
            start_ms: 0,
            stop_ms: None,
        }));
    }
    let sim = Arc::new(Mutex::new(sim));
    let bs = SimBs::new(sim.clone(), 0);
    let mut acfg = AgentConfig::new(
        GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Gnb, 1),
        server.addrs[0].clone(),
    );
    acfg.tick_ms = None;
    let agent = Agent::spawn(acfg, full_bundle(&bs, SmCodec::Flatb)).await.expect("agent");

    // Real-time TTI driver.
    {
        let sim = sim.clone();
        let agent = agent.clone();
        tokio::spawn(async move {
            let mut iv = tokio::time::interval(std::time::Duration::from_millis(1));
            iv.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Skip);
            loop {
                iv.tick().await;
                let now = {
                    let mut s = sim.lock();
                    s.tick();
                    s.now_ms()
                };
                agent.tick(now);
            }
        });
    }
    tokio::time::sleep(std::time::Duration::from_millis(300)).await;

    observe(&sim, &flows, "\nno slicing (equal share)", 4).await;

    // The xApp: plain REST calls, exactly what the paper does with curl.
    let post = |path: &'static str, body: serde_json::Value| {
        let addr = rest_addr.clone();
        async move {
            let (status, resp) = HttpClient::post_json(&addr, path, &body).await.expect("POST");
            assert_eq!(status, 200, "{}", String::from_utf8_lossy(&resp));
        }
    };
    post("/slice/algo", json!({"agent": 0, "algo": "nvs"})).await;
    post(
        "/slice/conf",
        json!({"agent": 0, "slices": [
            {"id": 0, "label": "gold", "params": {"type": "nvs_capacity", "share_pct": 50.0}},
            {"id": 1, "label": "best-effort", "params": {"type": "nvs_capacity", "share_pct": 50.0}},
        ]}),
    )
    .await;
    post("/slice/assoc", json!({"agent": 0, "assoc": [[0x4601, 0], [0x4602, 1], [0x4603, 1]]}))
        .await;
    observe(&sim, &flows, "\nNVS 50/50, UE1 alone in the gold slice", 4).await;

    post(
        "/slice/conf",
        json!({"agent": 0, "slices": [
            {"id": 0, "label": "gold", "params": {"type": "nvs_capacity", "share_pct": 66.0}},
            {"id": 1, "label": "best-effort", "params": {"type": "nvs_capacity", "share_pct": 34.0}},
        ]}),
    )
    .await;
    observe(&sim, &flows, "\nNVS 66/34", 4).await;

    // Read the slice statistics back over REST, as a dashboard would.
    let (status, body) = HttpClient::get(&rest_addr, "/slices").await.expect("GET /slices");
    assert_eq!(status, 200);
    let v: serde_json::Value = serde_json::from_slice(&body).unwrap();
    println!("\nGET /slices → {}", serde_json::to_string_pretty(&v).unwrap());

    agent.stop();
    server.stop();
}
