//! Closed-loop SLA xApp demo: the scenario engine drives mobility, churn
//! and an outage through a two-cell deployment while the `sla` iApp
//! watches per-slice throughput and RLC sojourn delay out of the
//! monitoring store and re-solves the NVS shares whenever a slice misses
//! its objective — pushing the new shares through the same SC SM control
//! path a `curl` xApp would use.
//!
//! ```text
//! cargo run --release --example sla_demo
//! ```

use std::sync::Arc;

use parking_lot::Mutex;

use flexric::agent::{Agent, AgentConfig, AgentHandle};
use flexric::server::{Server, ServerConfig, ServerHandle};
use flexric_ctrl::monitoring::{MonitorApp, MonitorConfig};
use flexric_ctrl::ranfun::{full_bundle, SimBs};
use flexric_ctrl::sla::{SlaApp, SlaConfig, SlaLedger, SlaPoll};
use flexric_ctrl::sla_solver::SlaTarget;
use flexric_e2ap::{E2NodeType, GlobalE2NodeId, GlobalRicId, Plmn};
use flexric_ransim::scenario::ScenarioEvent;
use flexric_ransim::{ScenarioEngine, ScenarioSpec, Sim};
use flexric_sm::SmCodec;
use flexric_transport::TransportAddr;

const TICK_MS: u64 = 10;
const DUR_MS: u64 = 30_000;

async fn spawn_agent(sim: &Arc<Mutex<Sim>>, cell: usize, server: &ServerHandle) -> AgentHandle {
    let bs = SimBs::new(sim.clone(), cell);
    let mut acfg = AgentConfig::new(
        GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Gnb, 1 + cell as u64),
        server.addrs[0].clone(),
    );
    acfg.tick_ms = None;
    Agent::spawn(acfg, full_bundle(&bs, SmCodec::Flatb)).await.expect("agent")
}

async fn ledger(server: &ServerHandle) -> SlaLedger {
    let (tx, rx) = tokio::sync::oneshot::channel();
    server.to_iapp("sla", Box::new(SlaPoll { reply: tx }));
    tokio::time::timeout(std::time::Duration::from_secs(5), rx)
        .await
        .expect("sla iApp reachable")
        .expect("sla iApp replies")
}

#[tokio::main]
async fn main() {
    // The commuter-rush preset: fast UEs shuttling between two cells,
    // diurnal churn, one mid-run outage.
    let spec = ScenarioSpec::preset("commuter-rush", 7).unwrap();
    println!("scenario: {} (seed {}, {} cells)", spec.name, spec.seed, spec.cells);
    let mut engine = ScenarioEngine::new(spec);
    let mut sim = engine.build_sim();
    engine.prime(&mut sim);
    let cells = sim.cells.len();
    let sim = Arc::new(Mutex::new(sim));

    // SLOs: voip wants bounded delay, web wants throughput + bounded
    // delay, mbb is the objective-free donor the solver shrinks.
    let targets = vec![
        SlaTarget { slice: 0, thr_kbps_min: 0.0, delay_ms_max: 8.0, floor_milli: 100 },
        SlaTarget { slice: 1, thr_kbps_min: 2_000.0, delay_ms_max: 40.0, floor_milli: 100 },
        SlaTarget { slice: 2, thr_kbps_min: 0.0, delay_ms_max: 0.0, floor_milli: 100 },
    ];

    let mcfg = MonitorConfig {
        period_ms: 20,
        sm_codec: SmCodec::Flatb,
        mac: true,
        rlc: true,
        pdcp: false,
        slice: true,
        stale_ttl_ms: Some(5_000),
        ..Default::default()
    };
    let (monitor, db, _counters) = MonitorApp::new(mcfg);
    let (sla, _) = SlaApp::new(SlaConfig::new(db, targets, true));

    let mut cfg = ServerConfig::new(
        GlobalRicId::new(Plmn::TEST, 1),
        TransportAddr::Mem("sla-demo".to_owned()),
    );
    cfg.tick_ms = Some(20);
    cfg.reconnect_grace_ms = 10_000;
    let server = Server::spawn(cfg, vec![Box::new(monitor), Box::new(sla)]).await.expect("ric");
    println!("controller up: monitoring + sla iApps, E2 on {}", server.addrs[0]);

    let mut agents: Vec<Option<AgentHandle>> = Vec::new();
    for cell in 0..cells {
        agents.push(Some(spawn_agent(&sim, cell, &server).await));
    }
    let want_subs = cells as u64 * 3; // MAC + RLC + slice per agent
    for _ in 0..400 {
        if server.stats().await.unwrap().subs >= want_subs {
            break;
        }
        tokio::time::sleep(std::time::Duration::from_millis(10)).await;
    }

    // Accelerated virtual-time drive: ~30 virtual seconds of scenario.
    let mut last_viol = 0;
    for step in 1..=(DUR_MS / TICK_MS) {
        {
            let mut s = sim.lock();
            for _ in 0..TICK_MS {
                s.tick();
                engine.advance(&mut s);
            }
        }
        let now = step * TICK_MS;
        for ev in engine.drain_events() {
            match ev.1 {
                ScenarioEvent::UeArrive { rnti, cell, .. } => {
                    println!("[{now:>6} ms] UE {rnti:#06x} arrives in cell {cell}");
                }
                ScenarioEvent::UeDepart { rnti, cell } => {
                    println!("[{now:>6} ms] UE {rnti:#06x} departs cell {cell}");
                }
                ScenarioEvent::Handover { rnti, from, to, forced } => {
                    let why = if forced { "outage" } else { "A3" };
                    println!("[{now:>6} ms] UE {rnti:#06x} hands over {from} → {to} ({why})");
                }
                ScenarioEvent::CellOutage { cell } => {
                    println!("[{now:>6} ms] cell {cell} DARK — dropping its agent");
                    if let Some(a) = agents[cell].take() {
                        a.stop();
                    }
                }
                ScenarioEvent::CellRecover { cell } => {
                    println!("[{now:>6} ms] cell {cell} back — agent reconnects");
                    agents[cell] = Some(spawn_agent(&sim, cell, &server).await);
                }
            }
        }
        for a in agents.iter().flatten() {
            a.tick(now);
        }
        if step % 10 == 0 {
            tokio::time::sleep(std::time::Duration::from_millis(1)).await;
        } else {
            tokio::task::yield_now().await;
        }
        // Every 5 virtual seconds, show how the ledger is moving.
        if now % 5_000 == 0 {
            let led = ledger(&server).await;
            let total = led.total_violation_ms();
            println!(
                "[{now:>6} ms] ledger: {:.1} violation-s (+{:.1}), {} evals, {} share pushes, {} acks",
                total as f64 / 1e3,
                (total - last_viol) as f64 / 1e3,
                led.evals,
                led.pushes,
                led.acks,
            );
            last_viol = total;
        }
    }

    let led = ledger(&server).await;
    println!(
        "\nfinal: {:.1} SLA-violation seconds over {} virtual s",
        led.total_violation_ms() as f64 / 1e3,
        DUR_MS / 1_000
    );
    for (slice, ms) in &led.violation_ms {
        println!("  slice {slice}: {:.1} s", *ms as f64 / 1e3);
    }
    println!(
        "scenario: {} handovers, {} arrivals, {} departures, {} outages",
        engine.stats.handovers,
        engine.stats.arrivals,
        engine.stats.departures,
        engine.stats.outages
    );

    for a in agents.iter().flatten() {
        a.stop();
    }
    server.stop();
}
