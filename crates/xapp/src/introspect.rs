//! Registry introspection over the REST northbound.
//!
//! xApps run out of process and cannot peek at the controller's E2AP
//! state, so capability discovery rides the HTTP layer: `GET /sm/registry`
//! lists every service model registered in the controller process — OID,
//! `major.minor` version, default RAN function id, which wire encodings
//! it speaks, and which payload codecs and delta hooks its vtable carries.
//! Third-party SMs registered at startup show up here automatically, with
//! no controller edits.

use serde::Serialize;

use crate::http::{Response, Router};

/// One registered service model, as serialized to xApps.
#[derive(Debug, Clone, Serialize)]
pub struct SmEntry {
    /// Object identifier, the cross-layer SM name.
    pub oid: String,
    /// `oid@major.minor`, the advertisement label.
    pub label: String,
    /// Major version (must match to interoperate).
    pub major: u16,
    /// Minor version (highest compatible wins).
    pub minor: u16,
    /// Default RAN function id.
    pub ran_function_id: u16,
    /// Whether the SM encodes ASN.1-PER style.
    pub per: bool,
    /// Whether the SM encodes FlatBuffers style.
    pub fb: bool,
    /// Installed codec slots: which payload kinds the SM can decode.
    pub codecs: SmCodecSlots,
}

/// Which payload-kind codecs an SM's vtable carries.
#[derive(Debug, Clone, Serialize)]
pub struct SmCodecSlots {
    /// Event trigger definition.
    pub trigger: bool,
    /// Action definition.
    pub action: bool,
    /// Indication message.
    pub indication: bool,
    /// Control message.
    pub ctrl: bool,
    /// Delta-stream reconstruction.
    pub delta: bool,
}

/// Snapshot of the process-wide SM registry, sorted by OID then version.
pub fn registry_snapshot() -> Vec<SmEntry> {
    flexric_sm::registry::global()
        .list()
        .into_iter()
        .map(|d| SmEntry {
            oid: d.oid.clone(),
            label: d.label(),
            major: d.version.major,
            minor: d.version.minor,
            ran_function_id: d.ran_function_id,
            per: d.supports.per,
            fb: d.supports.fb,
            codecs: SmCodecSlots {
                trigger: d.vtable.decode_trigger.is_some(),
                action: d.vtable.decode_action.is_some(),
                indication: d.vtable.decode_indication.is_some(),
                ctrl: d.vtable.decode_ctrl.is_some(),
                delta: d.vtable.new_delta_decoder.is_some(),
            },
        })
        .collect()
}

/// Mounts `GET /sm/registry` on a router.
pub fn mount(router: Router) -> Router {
    router.route("GET", "/sm/registry", |_req| async { Response::json(&registry_snapshot()) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{HttpClient, HttpServer};

    #[test]
    fn snapshot_lists_builtins_sorted() {
        let snap = registry_snapshot();
        assert!(snap.len() >= 8, "bundled SMs present, got {}", snap.len());
        let oids: Vec<&str> = snap.iter().map(|e| e.oid.as_str()).collect();
        let mut sorted = oids.clone();
        sorted.sort_unstable();
        assert_eq!(oids, sorted, "sorted by oid");
        let mac = snap.iter().find(|e| e.oid == "flexric.sm.mac_stats").expect("mac sm");
        assert_eq!(mac.label, "flexric.sm.mac_stats@1.0");
        assert!(mac.codecs.trigger && mac.codecs.indication && mac.codecs.delta);
        assert!(mac.per && mac.fb);
    }

    #[tokio::test]
    async fn served_over_http() {
        let srv = HttpServer::spawn("127.0.0.1:0", mount(Router::new())).await.unwrap();
        let addr = srv.addr.to_string();
        let (status, body) = HttpClient::get(&addr, "/sm/registry").await.unwrap();
        assert_eq!(status, 200);
        let entries: Vec<serde_json::Value> = serde_json::from_slice(&body).unwrap();
        assert!(entries.iter().any(|e| e["oid"] == "flexric.sm.hw"), "hw sm listed: {entries:?}");
    }
}
