//! Northbound plumbing for FlexRIC controllers.
//!
//! The paper's controller specializations expose their services to xApps
//! through "a custom protocol, such as a simple REST interface (e.g.,
//! FlexRAN), the RMR library (e.g., O-RAN RIC), a message broker (e.g.
//! Redis), or E2AP itself" (§4.2.1).  This crate provides the first two
//! from scratch:
//!
//! * [`http`] — a minimal HTTP/1.1 server and client (GET/POST with JSON
//!   bodies), the REST northbound of the slicing and TC controllers;
//! * [`broker`] — a Redis-style pub/sub broker (SUBSCRIBE/PUBLISH over a
//!   length-framed TCP protocol), the stats-push channel of the TC
//!   controller;
//! * [`metrics`] — a Prometheus-text `/metrics` route for the HTTP
//!   server, exporting the process-wide obs registry;
//! * [`introspect`] — a `GET /sm/registry` route listing every service
//!   model registered in the process (OID, version, codec support), so
//!   xApps discover capabilities without E2AP access.
//!
//! The recursive controller's northbound is the agent library itself and
//! lives in `flexric-ctrl`.

pub mod broker;
pub mod http;
pub mod introspect;
pub mod metrics;
