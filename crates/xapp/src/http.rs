//! Minimal HTTP/1.1 server and client — the REST northbound.
//!
//! Supports exactly what the controller specializations need: `GET` and
//! `POST` with optional JSON bodies, `Content-Length` framing, one request
//! per roundtrip with keep-alive.  No TLS, no chunked encoding, no
//! multipart — the zero-overhead principle applied to the northbound.

use std::collections::HashMap;
use std::future::Future;
use std::io;
use std::net::SocketAddr;
use std::pin::Pin;
use std::sync::Arc;

use tokio::io::{AsyncBufReadExt, AsyncReadExt, AsyncWriteExt, BufReader};
use tokio::net::{TcpListener, TcpStream};

/// An HTTP request as seen by a handler.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET` / `POST` / ….
    pub method: String,
    /// Path without query string.
    pub path: String,
    /// Decoded query parameters.
    pub query: HashMap<String, String>,
    /// Body bytes (often JSON).
    pub body: Vec<u8>,
}

impl Request {
    /// Parses the body as JSON.
    pub fn json<T: serde::de::DeserializeOwned>(&self) -> Result<T, serde_json::Error> {
        serde_json::from_slice(&self.body)
    }
}

/// An HTTP response from a handler.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Content type.
    pub content_type: &'static str,
}

impl Response {
    /// 200 with a JSON body.
    pub fn json<T: serde::Serialize>(value: &T) -> Response {
        Response {
            status: 200,
            body: serde_json::to_vec(value).unwrap_or_default(),
            content_type: "application/json",
        }
    }

    /// 200 with a plain-text body.
    pub fn text(s: impl Into<String>) -> Response {
        Response { status: 200, body: s.into().into_bytes(), content_type: "text/plain" }
    }

    /// An error status with a plain-text body.
    pub fn error(status: u16, msg: impl Into<String>) -> Response {
        Response { status, body: msg.into().into_bytes(), content_type: "text/plain" }
    }

    fn status_line(&self) -> &'static str {
        match self.status {
            200 => "200 OK",
            201 => "201 Created",
            204 => "204 No Content",
            400 => "400 Bad Request",
            404 => "404 Not Found",
            405 => "405 Method Not Allowed",
            _ => "500 Internal Server Error",
        }
    }
}

/// Boxed async handler.
pub type Handler =
    Arc<dyn Fn(Request) -> Pin<Box<dyn Future<Output = Response> + Send>> + Send + Sync>;

/// A tiny route table: exact `(method, path)` matches.
#[derive(Default, Clone)]
pub struct Router {
    routes: HashMap<(String, String), Handler>,
}

impl Router {
    /// Creates an empty router.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a handler for `(method, path)`.
    pub fn route<F, Fut>(mut self, method: &str, path: &str, f: F) -> Self
    where
        F: Fn(Request) -> Fut + Send + Sync + 'static,
        Fut: Future<Output = Response> + Send + 'static,
    {
        let h: Handler = Arc::new(move |req| Box::pin(f(req)));
        self.routes.insert((method.to_uppercase(), path.to_owned()), h);
        self
    }

    fn lookup(&self, method: &str, path: &str) -> Option<Handler> {
        self.routes.get(&(method.to_uppercase(), path.to_owned())).cloned()
    }
}

/// A running HTTP server.
pub struct HttpServer {
    /// The bound address (ephemeral port resolved).
    pub addr: SocketAddr,
}

impl HttpServer {
    /// Binds `addr` and serves `router` until the process exits.
    pub async fn spawn(addr: &str, router: Router) -> io::Result<HttpServer> {
        let listener = TcpListener::bind(addr).await?;
        let addr = listener.local_addr()?;
        let router = Arc::new(router);
        tokio::spawn(async move {
            loop {
                let Ok((stream, _)) = listener.accept().await else { break };
                let router = router.clone();
                tokio::spawn(async move {
                    let _ = serve_conn(stream, router).await;
                });
            }
        });
        Ok(HttpServer { addr })
    }
}

async fn serve_conn(stream: TcpStream, router: Arc<Router>) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let (rd, mut wr) = stream.into_split();
    let mut rd = BufReader::new(rd);
    loop {
        let Some(req) = read_request(&mut rd).await? else { return Ok(()) };
        let resp = match router.lookup(&req.method, &req.path) {
            Some(h) => h(req).await,
            None => Response::error(404, "not found"),
        };
        let head = format!(
            "HTTP/1.1 {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: keep-alive\r\n\r\n",
            resp.status_line(),
            resp.content_type,
            resp.body.len()
        );
        wr.write_all(head.as_bytes()).await?;
        wr.write_all(&resp.body).await?;
        wr.flush().await?;
    }
}

async fn read_request<R: AsyncBufReadExt + Unpin>(rd: &mut R) -> io::Result<Option<Request>> {
    let mut line = String::new();
    if rd.read_line(&mut line).await? == 0 {
        return Ok(None); // clean close
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_owned();
    let target = parts.next().unwrap_or_default().to_owned();
    if method.is_empty() || target.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad request line"));
    }
    let (path, query) = parse_target(&target);
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        if rd.read_line(&mut h).await? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "headers truncated"));
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                })?;
                if content_length > 16 * 1024 * 1024 {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, "body too large"));
                }
            }
        }
    }
    let mut body = vec![0u8; content_length];
    rd.read_exact(&mut body).await?;
    Ok(Some(Request { method, path, query, body }))
}

fn parse_target(target: &str) -> (String, HashMap<String, String>) {
    match target.split_once('?') {
        None => (target.to_owned(), HashMap::new()),
        Some((path, qs)) => {
            let query = qs
                .split('&')
                .filter_map(|kv| kv.split_once('=').map(|(k, v)| (k.to_owned(), v.to_owned())))
                .collect();
            (path.to_owned(), query)
        }
    }
}

/// Minimal HTTP client: one request per call, fresh connection.
pub struct HttpClient;

impl HttpClient {
    /// Issues a request; returns `(status, body)`.
    pub async fn request(
        addr: &str,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> io::Result<(u16, Vec<u8>)> {
        let stream = TcpStream::connect(addr).await?;
        stream.set_nodelay(true)?;
        let (rd, mut wr) = stream.into_split();
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
            body.len()
        );
        wr.write_all(head.as_bytes()).await?;
        wr.write_all(body).await?;
        wr.flush().await?;

        let mut rd = BufReader::new(rd);
        let mut status_line = String::new();
        rd.read_line(&mut status_line).await?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
        let mut content_length = None;
        loop {
            let mut h = String::new();
            if rd.read_line(&mut h).await? == 0 {
                break;
            }
            let h = h.trim_end();
            if h.is_empty() {
                break;
            }
            if let Some((name, value)) = h.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().ok();
                }
            }
        }
        let mut body = Vec::new();
        match content_length {
            Some(n) => {
                body.resize(n, 0);
                rd.read_exact(&mut body).await?;
            }
            None => {
                rd.read_to_end(&mut body).await?;
            }
        }
        Ok((status, body))
    }

    /// GET returning `(status, body)`.
    pub async fn get(addr: &str, path: &str) -> io::Result<(u16, Vec<u8>)> {
        Self::request(addr, "GET", path, &[]).await
    }

    /// POST with a JSON body.
    pub async fn post_json<T: serde::Serialize>(
        addr: &str,
        path: &str,
        value: &T,
    ) -> io::Result<(u16, Vec<u8>)> {
        let body = serde_json::to_vec(value)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        Self::request(addr, "POST", path, &body).await
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    async fn test_server() -> HttpServer {
        let router = Router::new()
            .route("GET", "/ping", |_req| async { Response::text("pong") })
            .route("POST", "/echo", |req: Request| async move {
                Response { status: 200, body: req.body, content_type: "application/json" }
            })
            .route("GET", "/query", |req: Request| async move {
                Response::text(req.query.get("key").cloned().unwrap_or_default())
            });
        HttpServer::spawn("127.0.0.1:0", router).await.unwrap()
    }

    #[tokio::test]
    async fn get_roundtrip() {
        let srv = test_server().await;
        let addr = srv.addr.to_string();
        let (status, body) = HttpClient::get(&addr, "/ping").await.unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"pong");
    }

    #[tokio::test]
    async fn post_json_roundtrip() {
        let srv = test_server().await;
        let addr = srv.addr.to_string();
        let payload = json!({"slice": 1, "share": 0.66});
        let (status, body) = HttpClient::post_json(&addr, "/echo", &payload).await.unwrap();
        assert_eq!(status, 200);
        let back: serde_json::Value = serde_json::from_slice(&body).unwrap();
        assert_eq!(back, payload);
    }

    #[tokio::test]
    async fn query_params_parsed() {
        let srv = test_server().await;
        let addr = srv.addr.to_string();
        let (status, body) = HttpClient::get(&addr, "/query?key=value&x=1").await.unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"value");
    }

    #[tokio::test]
    async fn unknown_route_404() {
        let srv = test_server().await;
        let addr = srv.addr.to_string();
        let (status, _) = HttpClient::get(&addr, "/nope").await.unwrap();
        assert_eq!(status, 404);
    }

    #[tokio::test]
    async fn wrong_method_404() {
        let srv = test_server().await;
        let addr = srv.addr.to_string();
        let (status, _) = HttpClient::request(&addr, "POST", "/ping", b"").await.unwrap();
        assert_eq!(status, 404);
    }

    #[tokio::test]
    async fn concurrent_requests() {
        let srv = test_server().await;
        let addr = srv.addr.to_string();
        let mut handles = Vec::new();
        for _ in 0..32 {
            let addr = addr.clone();
            handles.push(tokio::spawn(
                async move { HttpClient::get(&addr, "/ping").await.unwrap().0 },
            ));
        }
        for h in handles {
            assert_eq!(h.await.unwrap(), 200);
        }
    }
}
