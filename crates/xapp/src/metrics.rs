//! The `/metrics` northbound: a Prometheus-text exporter mounted on the
//! existing REST [`http`](crate::http) server.
//!
//! Every scrape walks the process-wide obs registry and renders it fresh
//! — no caching layer, so a scrape after an event always sees it.  The
//! registry read path is lock-free for counters/gauges/histograms (one
//! short mutex hold to walk the name index), so scrapes do not perturb
//! the E2AP hot path they observe.

use crate::http::{Response, Router};

/// Mounts `GET /metrics` on `router`, serving the whole obs registry in
/// Prometheus text exposition format.
pub fn with_metrics_route(router: Router) -> Router {
    router.route("GET", "/metrics", |_req| async {
        Response {
            status: 200,
            body: flexric_obs::prom::render_text().into_bytes(),
            content_type: flexric_obs::prom::CONTENT_TYPE,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{HttpClient, HttpServer};

    #[tokio::test]
    async fn metrics_route_serves_registry() {
        let c = flexric_obs::counter(
            "flexric_test_xapp_scrape_total",
            "test counter for the /metrics route",
        );
        c.add(3);
        let srv =
            HttpServer::spawn("127.0.0.1:0", with_metrics_route(Router::new())).await.unwrap();
        let addr = srv.addr.to_string();
        let (status, body) = HttpClient::get(&addr, "/metrics").await.unwrap();
        assert_eq!(status, 200);
        let text = String::from_utf8(body).unwrap();
        assert!(text.contains("# TYPE flexric_test_xapp_scrape_total counter"));
        if cfg!(feature = "obs-off") {
            assert!(text.contains("flexric_test_xapp_scrape_total 0"));
        } else {
            assert!(text.contains("flexric_test_xapp_scrape_total 3"));
        }
    }
}
