//! Redis-style pub/sub message broker.
//!
//! The paper's TC controller "used Redis as a message broker used by an
//! iApp to forward messages to the xApp" (§6.1.1, Table 3).  This is a
//! from-scratch substitute with the same interaction pattern: clients
//! subscribe to channels; publishers fan messages out to all subscribers
//! of a channel.
//!
//! ## Wire protocol (length-framed over TCP)
//!
//! ```text
//! frame   := len:u32BE kind:u8 payload
//! kind 1  := SUBSCRIBE   payload = channel (utf-8)
//! kind 2  := PUBLISH     payload = chan_len:u16BE channel message-bytes
//! kind 3  := MESSAGE     payload = chan_len:u16BE channel message-bytes
//! ```

use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::mpsc;

const KIND_SUBSCRIBE: u8 = 1;
const KIND_PUBLISH: u8 = 2;
const KIND_MESSAGE: u8 = 3;
const MAX_FRAME: usize = 16 * 1024 * 1024;

async fn write_frame<W: AsyncWriteExt + Unpin>(
    wr: &mut W,
    kind: u8,
    payload: &[u8],
) -> io::Result<()> {
    let len = payload.len() as u32 + 1;
    wr.write_all(&len.to_be_bytes()).await?;
    wr.write_all(&[kind]).await?;
    wr.write_all(payload).await?;
    wr.flush().await
}

async fn read_frame<R: AsyncReadExt + Unpin>(rd: &mut R) -> io::Result<Option<(u8, Vec<u8>)>> {
    let mut len_buf = [0u8; 4];
    match rd.read(&mut len_buf[..1]).await? {
        0 => return Ok(None),
        _ => {}
    }
    rd.read_exact(&mut len_buf[1..]).await?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad frame length"));
    }
    let mut payload = vec![0u8; len];
    rd.read_exact(&mut payload).await?;
    let kind = payload.remove(0);
    Ok(Some((kind, payload)))
}

fn chan_msg(payload: &[u8]) -> io::Result<(String, Bytes)> {
    if payload.len() < 2 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "short publish"));
    }
    let chan_len = u16::from_be_bytes([payload[0], payload[1]]) as usize;
    if payload.len() < 2 + chan_len {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad channel length"));
    }
    let channel = String::from_utf8(payload[2..2 + chan_len].to_vec())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad channel utf8"))?;
    Ok((channel, Bytes::copy_from_slice(&payload[2 + chan_len..])))
}

fn encode_chan_msg(channel: &str, msg: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(2 + channel.len() + msg.len());
    payload.extend_from_slice(&(channel.len() as u16).to_be_bytes());
    payload.extend_from_slice(channel.as_bytes());
    payload.extend_from_slice(msg);
    payload
}

type Subscribers = Arc<Mutex<HashMap<String, Vec<mpsc::UnboundedSender<(String, Bytes)>>>>>;

/// A running broker.
pub struct Broker {
    /// The bound address.
    pub addr: SocketAddr,
    accept: tokio::task::JoinHandle<()>,
    clients: Arc<Mutex<Vec<tokio::task::JoinHandle<()>>>>,
}

impl Broker {
    /// Binds and serves; runs until the process exits or [`shutdown`] is
    /// called.
    ///
    /// [`shutdown`]: Broker::shutdown
    pub async fn spawn(addr: &str) -> io::Result<Broker> {
        let listener = TcpListener::bind(addr).await?;
        let addr = listener.local_addr()?;
        let subs: Subscribers = Arc::new(Mutex::new(HashMap::new()));
        let clients: Arc<Mutex<Vec<tokio::task::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let clients2 = clients.clone();
        let accept = tokio::spawn(async move {
            loop {
                let Ok((stream, _)) = listener.accept().await else { break };
                let subs = subs.clone();
                let handle = tokio::spawn(async move {
                    let _ = serve_client(stream, subs).await;
                });
                let mut list = clients2.lock();
                list.retain(|h| !h.is_finished());
                list.push(handle);
            }
        });
        Ok(Broker { addr, accept, clients })
    }

    /// Stops accepting and drops every live client connection, freeing the
    /// listen address.  Used by tests to simulate a broker crash; connected
    /// [`BrokerClient`]s see the connection drop and reconnect.
    pub fn shutdown(&self) {
        self.accept.abort();
        for h in self.clients.lock().drain(..) {
            h.abort();
        }
    }
}

async fn serve_client(stream: TcpStream, subs: Subscribers) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let (mut rd, mut wr) = stream.into_split();
    let (tx, mut rx) = mpsc::unbounded_channel::<(String, Bytes)>();
    // Writer side: forward matched messages to this client.
    let writer = tokio::spawn(async move {
        while let Some((channel, msg)) = rx.recv().await {
            let payload = encode_chan_msg(&channel, &msg);
            if write_frame(&mut wr, KIND_MESSAGE, &payload).await.is_err() {
                break;
            }
        }
    });
    // Reader side: handle SUBSCRIBE/PUBLISH.
    while let Some((kind, payload)) = read_frame(&mut rd).await? {
        match kind {
            KIND_SUBSCRIBE => {
                let channel = String::from_utf8(payload)
                    .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad channel"))?;
                subs.lock().entry(channel).or_default().push(tx.clone());
            }
            KIND_PUBLISH => {
                let (channel, msg) = chan_msg(&payload)?;
                let mut table = subs.lock();
                if let Some(list) = table.get_mut(&channel) {
                    list.retain(|s| s.send((channel.clone(), msg.clone())).is_ok());
                }
            }
            _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "unknown frame kind")),
        }
    }
    drop(tx);
    let _ = writer.await;
    Ok(())
}

/// Reconnect schedule: capped exponential backoff.
const RECONNECT_INITIAL_MS: u64 = 50;
const RECONNECT_MAX_MS: u64 = 5_000;
const RECONNECT_ATTEMPTS: u32 = 8;

async fn dial(
    addr: &str,
) -> io::Result<(tokio::net::tcp::OwnedWriteHalf, mpsc::UnboundedReceiver<(String, Bytes)>)> {
    let stream = TcpStream::connect(addr).await?;
    stream.set_nodelay(true)?;
    let (mut rd, wr) = stream.into_split();
    let (tx, rx) = mpsc::unbounded_channel();
    tokio::spawn(async move {
        while let Ok(Some((kind, payload))) = read_frame(&mut rd).await {
            if kind == KIND_MESSAGE {
                if let Ok((channel, msg)) = chan_msg(&payload) {
                    if tx.send((channel, msg)).is_err() {
                        break;
                    }
                }
            }
        }
    });
    Ok((wr, rx))
}

/// A broker client: publish and/or subscribe.
///
/// The client remembers every channel it subscribed to.  When the broker
/// connection drops — detected on a failed write or when the inbound
/// stream ends — it redials with capped exponential backoff and replays
/// all subscriptions, so a broker restart is invisible to the caller
/// beyond the messages published while it was down.
pub struct BrokerClient {
    addr: String,
    wr: tokio::net::tcp::OwnedWriteHalf,
    rx: mpsc::UnboundedReceiver<(String, Bytes)>,
    channels: Vec<String>,
}

impl BrokerClient {
    /// Connects to a broker.
    pub async fn connect(addr: &str) -> io::Result<BrokerClient> {
        let (wr, rx) = dial(addr).await?;
        Ok(BrokerClient { addr: addr.to_string(), wr, rx, channels: Vec::new() })
    }

    /// Redials and replays all subscriptions.  Retries with backoff before
    /// giving up.
    async fn reconnect(&mut self) -> io::Result<()> {
        let mut delay = RECONNECT_INITIAL_MS;
        for _ in 0..RECONNECT_ATTEMPTS {
            tokio::time::sleep(std::time::Duration::from_millis(delay)).await;
            delay = delay.saturating_mul(2).min(RECONNECT_MAX_MS);
            let Ok((mut wr, rx)) = dial(&self.addr).await else { continue };
            let mut ok = true;
            for chan in &self.channels {
                if write_frame(&mut wr, KIND_SUBSCRIBE, chan.as_bytes()).await.is_err() {
                    ok = false;
                    break;
                }
            }
            if ok {
                self.wr = wr;
                self.rx = rx;
                return Ok(());
            }
        }
        Err(io::Error::new(io::ErrorKind::ConnectionRefused, "broker unreachable"))
    }

    /// Subscribes to a channel.  The subscription is replayed automatically
    /// after a reconnect.
    pub async fn subscribe(&mut self, channel: &str) -> io::Result<()> {
        if !self.channels.iter().any(|c| c == channel) {
            self.channels.push(channel.to_string());
        }
        match write_frame(&mut self.wr, KIND_SUBSCRIBE, channel.as_bytes()).await {
            Ok(()) => Ok(()),
            // reconnect() replays the channel list, which now includes
            // this channel.
            Err(_) => self.reconnect().await,
        }
    }

    /// Publishes a message to a channel, reconnecting once on a dead
    /// connection.
    pub async fn publish(&mut self, channel: &str, msg: &[u8]) -> io::Result<()> {
        let payload = encode_chan_msg(channel, msg);
        match write_frame(&mut self.wr, KIND_PUBLISH, &payload).await {
            Ok(()) => Ok(()),
            Err(_) => {
                self.reconnect().await?;
                write_frame(&mut self.wr, KIND_PUBLISH, &payload).await
            }
        }
    }

    /// Receives the next message on any subscribed channel.  If the broker
    /// connection drops, reconnects (replaying subscriptions) and keeps
    /// waiting; returns `None` only when the broker stays unreachable or
    /// nothing was ever subscribed.
    pub async fn recv(&mut self) -> Option<(String, Bytes)> {
        loop {
            if let Some(m) = self.rx.recv().await {
                return Some(m);
            }
            if self.channels.is_empty() || self.reconnect().await.is_err() {
                return None;
            }
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&mut self) -> Option<(String, Bytes)> {
        self.rx.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[tokio::test]
    async fn pubsub_roundtrip() {
        let broker = Broker::spawn("127.0.0.1:0").await.unwrap();
        let addr = broker.addr.to_string();
        let mut sub = BrokerClient::connect(&addr).await.unwrap();
        sub.subscribe("rlc-stats").await.unwrap();
        tokio::time::sleep(Duration::from_millis(20)).await; // sub registered
        let mut publ = BrokerClient::connect(&addr).await.unwrap();
        publ.publish("rlc-stats", b"{\"sojourn\": 42}").await.unwrap();
        let (chan, msg) =
            tokio::time::timeout(Duration::from_secs(2), sub.recv()).await.unwrap().unwrap();
        assert_eq!(chan, "rlc-stats");
        assert_eq!(&msg[..], b"{\"sojourn\": 42}");
    }

    #[tokio::test]
    async fn fanout_to_multiple_subscribers() {
        let broker = Broker::spawn("127.0.0.1:0").await.unwrap();
        let addr = broker.addr.to_string();
        let mut subs = Vec::new();
        for _ in 0..5 {
            let mut c = BrokerClient::connect(&addr).await.unwrap();
            c.subscribe("chan").await.unwrap();
            subs.push(c);
        }
        tokio::time::sleep(Duration::from_millis(30)).await;
        let mut publ = BrokerClient::connect(&addr).await.unwrap();
        publ.publish("chan", b"x").await.unwrap();
        for c in &mut subs {
            let (_, msg) =
                tokio::time::timeout(Duration::from_secs(2), c.recv()).await.unwrap().unwrap();
            assert_eq!(&msg[..], b"x");
        }
    }

    #[tokio::test]
    async fn channel_isolation() {
        let broker = Broker::spawn("127.0.0.1:0").await.unwrap();
        let addr = broker.addr.to_string();
        let mut a = BrokerClient::connect(&addr).await.unwrap();
        a.subscribe("a").await.unwrap();
        tokio::time::sleep(Duration::from_millis(20)).await;
        let mut publ = BrokerClient::connect(&addr).await.unwrap();
        publ.publish("b", b"not for a").await.unwrap();
        publ.publish("a", b"for a").await.unwrap();
        let (chan, msg) =
            tokio::time::timeout(Duration::from_secs(2), a.recv()).await.unwrap().unwrap();
        assert_eq!(chan, "a");
        assert_eq!(&msg[..], b"for a");
        assert!(a.try_recv().is_none(), "channel b message not delivered");
    }

    #[tokio::test]
    async fn publish_without_subscribers_is_fine() {
        let broker = Broker::spawn("127.0.0.1:0").await.unwrap();
        let addr = broker.addr.to_string();
        let mut publ = BrokerClient::connect(&addr).await.unwrap();
        publ.publish("void", b"shout").await.unwrap();
        // Broker still alive.
        let mut sub = BrokerClient::connect(&addr).await.unwrap();
        sub.subscribe("void").await.unwrap();
        tokio::time::sleep(Duration::from_millis(20)).await;
        publ.publish("void", b"heard").await.unwrap();
        let (_, msg) =
            tokio::time::timeout(Duration::from_secs(2), sub.recv()).await.unwrap().unwrap();
        assert_eq!(&msg[..], b"heard");
    }

    #[tokio::test]
    async fn broker_restart_resubscribes() {
        let broker = Broker::spawn("127.0.0.1:0").await.unwrap();
        let addr = broker.addr.to_string();
        let mut sub = BrokerClient::connect(&addr).await.unwrap();
        sub.subscribe("chan").await.unwrap();
        tokio::time::sleep(Duration::from_millis(20)).await;

        // Crash the broker and bring a new one up on the same address.
        broker.shutdown();
        tokio::time::sleep(Duration::from_millis(20)).await;
        let _broker2 = Broker::spawn(&addr).await.unwrap();

        // The subscriber reconnects and replays its subscription in the
        // background; publish until the message gets through.
        let mut publ = BrokerClient::connect(&addr).await.unwrap();
        let mut got = None;
        for _ in 0..100 {
            publ.publish("chan", b"after restart").await.unwrap();
            if let Ok(Some(m)) = tokio::time::timeout(Duration::from_millis(100), sub.recv()).await
            {
                got = Some(m);
                break;
            }
        }
        let (chan, msg) = got.expect("subscription survived the broker restart");
        assert_eq!(chan, "chan");
        assert_eq!(&msg[..], b"after restart");
    }

    #[tokio::test]
    async fn dead_subscriber_pruned() {
        let broker = Broker::spawn("127.0.0.1:0").await.unwrap();
        let addr = broker.addr.to_string();
        {
            let mut dead = BrokerClient::connect(&addr).await.unwrap();
            dead.subscribe("chan").await.unwrap();
            tokio::time::sleep(Duration::from_millis(20)).await;
        } // dropped
        let mut sub = BrokerClient::connect(&addr).await.unwrap();
        sub.subscribe("chan").await.unwrap();
        tokio::time::sleep(Duration::from_millis(20)).await;
        let mut publ = BrokerClient::connect(&addr).await.unwrap();
        publ.publish("chan", b"still works").await.unwrap();
        let (_, msg) =
            tokio::time::timeout(Duration::from_secs(2), sub.recv()).await.unwrap().unwrap();
        assert_eq!(&msg[..], b"still works");
    }
}
