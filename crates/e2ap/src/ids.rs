//! Identifier types shared by all E2AP procedures.

use std::fmt;

/// A Public Land Mobile Network identifier (MCC + MNC).
///
/// A PLMN identifies an operator; the recursive virtualization controller of
/// the paper (§6.2) partitions UEs between tenant controllers by PLMN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Plmn {
    /// Mobile Country Code, `0..=999`.
    pub mcc: u16,
    /// Mobile Network Code, `0..=999`.
    pub mnc: u16,
    /// Number of MNC digits (2 or 3); part of the 3GPP encoding.
    pub mnc_digits: u8,
}

impl Plmn {
    /// Creates a PLMN, clamping fields into their 3GPP ranges.
    pub fn new(mcc: u16, mnc: u16, mnc_digits: u8) -> Self {
        Plmn {
            mcc: mcc.min(999),
            mnc: mnc.min(999),
            mnc_digits: if mnc_digits >= 3 { 3 } else { 2 },
        }
    }

    /// The test PLMN used throughout the examples (001/01).
    pub const TEST: Plmn = Plmn { mcc: 1, mnc: 1, mnc_digits: 2 };
}

impl fmt::Display for Plmn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.mnc_digits == 3 {
            write!(f, "{:03}.{:03}", self.mcc, self.mnc)
        } else {
            write!(f, "{:03}.{:02}", self.mcc, self.mnc)
        }
    }
}

/// The kind of E2 node behind an agent.
///
/// E2 nodes can be monolithic base stations or parts of a disaggregated
/// deployment (CU/DU).  The server library's RAN management merges CU and DU
/// agents carrying the same `(plmn, node_id)` into a single RAN entity
/// (paper §4.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum E2NodeType {
    /// Monolithic 4G eNodeB.
    Enb = 0,
    /// Monolithic 5G gNodeB.
    Gnb = 1,
    /// 5G Centralized Unit.
    GnbCu = 2,
    /// 5G Distributed Unit.
    GnbDu = 3,
    /// 4G Centralized Unit.
    EnbCu = 4,
    /// 4G Distributed Unit.
    EnbDu = 5,
    /// ng-eNB (4G base station connected to a 5G core).
    NgEnb = 6,
}

impl E2NodeType {
    /// All node types, in discriminant order.
    pub const ALL: [E2NodeType; 7] = [
        E2NodeType::Enb,
        E2NodeType::Gnb,
        E2NodeType::GnbCu,
        E2NodeType::GnbDu,
        E2NodeType::EnbCu,
        E2NodeType::EnbDu,
        E2NodeType::NgEnb,
    ];

    /// Decodes a discriminant produced by [`E2NodeType as u8`].
    pub fn from_u8(v: u8) -> Option<Self> {
        Self::ALL.get(v as usize).copied()
    }

    /// Whether this node type is part of a disaggregated base station.
    pub fn is_split(self) -> bool {
        matches!(
            self,
            E2NodeType::GnbCu | E2NodeType::GnbDu | E2NodeType::EnbCu | E2NodeType::EnbDu
        )
    }
}

/// Globally unique identifier of an E2 node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalE2NodeId {
    /// Operator owning the node.
    pub plmn: Plmn,
    /// Node kind (monolithic or CU/DU part).
    pub node_type: E2NodeType,
    /// gNB/eNB identity (up to 36 bits per 3GPP).
    pub node_id: u64,
}

impl GlobalE2NodeId {
    /// Creates a node id, masking `node_id` to its 36-bit 3GPP range.
    pub fn new(plmn: Plmn, node_type: E2NodeType, node_id: u64) -> Self {
        GlobalE2NodeId { plmn, node_type, node_id: node_id & ((1u64 << 36) - 1) }
    }

    /// The key under which CU/DU agents of the same base station merge into
    /// one RAN entity: the id with the node type erased.
    pub fn ran_entity_key(&self) -> (Plmn, u64) {
        (self.plmn, self.node_id)
    }
}

impl fmt::Display for GlobalE2NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{:?}/{}", self.plmn, self.node_type, self.node_id)
    }
}

/// Globally unique identifier of a RIC (near-real-time controller).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalRicId {
    /// Operator owning the RIC.
    pub plmn: Plmn,
    /// Near-RT RIC identity (20 bits per the E2AP spec).
    pub ric_id: u32,
}

impl GlobalRicId {
    /// Creates a RIC id, masking to the 20-bit spec range.
    pub fn new(plmn: Plmn, ric_id: u32) -> Self {
        GlobalRicId { plmn, ric_id: ric_id & 0xF_FFFF }
    }
}

/// Identifier of a RAN function within an E2 node (`0..=4095`).
///
/// Each service model instance registered at an agent is a RAN function; the
/// id is the routing key for all functional procedures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RanFunctionId(pub u16);

impl RanFunctionId {
    /// Maximum value allowed by the spec.
    pub const MAX: u16 = 4095;

    /// Creates a RAN function id, masking into the spec range.
    pub fn new(v: u16) -> Self {
        RanFunctionId(v & Self::MAX)
    }
}

impl fmt::Display for RanFunctionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rf{}", self.0)
    }
}

/// Identifier of a RIC request: ties subscription/control exchanges to the
/// requesting application instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct RicRequestId {
    /// Identifies the requesting xApp/iApp (`0..=65535`).
    pub requestor: u16,
    /// Distinguishes parallel requests of one requestor (`0..=65535`).
    pub instance: u16,
}

impl RicRequestId {
    /// Convenience constructor.
    pub fn new(requestor: u16, instance: u16) -> Self {
        RicRequestId { requestor, instance }
    }
}

impl fmt::Display for RicRequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}:{}", self.requestor, self.instance)
    }
}

/// Identifier of an action within a subscription (`0..=255`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct RicActionId(pub u8);

/// A RIC style type: service models group their capabilities into "styles".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RicStyleType(pub i32);

/// RAN interfaces an E2 node component can terminate (used by the E2 node
/// configuration update procedure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum InterfaceType {
    /// 5G core ↔ gNB.
    Ng = 0,
    /// gNB ↔ gNB.
    Xn = 1,
    /// CU-CP ↔ CU-UP.
    E1 = 2,
    /// CU ↔ DU.
    F1 = 3,
    /// ng-eNB internal split.
    W1 = 4,
    /// 4G core ↔ eNB.
    S1 = 5,
    /// eNB ↔ eNB.
    X2 = 6,
}

impl InterfaceType {
    /// All interface types, in discriminant order.
    pub const ALL: [InterfaceType; 7] = [
        InterfaceType::Ng,
        InterfaceType::Xn,
        InterfaceType::E1,
        InterfaceType::F1,
        InterfaceType::W1,
        InterfaceType::S1,
        InterfaceType::X2,
    ];

    /// Decodes a discriminant.
    pub fn from_u8(v: u8) -> Option<Self> {
        Self::ALL.get(v as usize).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plmn_clamps_ranges() {
        let p = Plmn::new(1500, 1200, 7);
        assert_eq!(p.mcc, 999);
        assert_eq!(p.mnc, 999);
        assert_eq!(p.mnc_digits, 3);
        let p2 = Plmn::new(208, 95, 2);
        assert_eq!(p2.mnc_digits, 2);
    }

    #[test]
    fn plmn_display_respects_digits() {
        assert_eq!(Plmn::new(208, 95, 2).to_string(), "208.95");
        assert_eq!(Plmn::new(208, 95, 3).to_string(), "208.095");
    }

    #[test]
    fn node_id_masked_to_36_bits() {
        let id = GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Gnb, u64::MAX);
        assert_eq!(id.node_id, (1u64 << 36) - 1);
    }

    #[test]
    fn cu_du_share_ran_entity_key() {
        let cu = GlobalE2NodeId::new(Plmn::TEST, E2NodeType::GnbCu, 7);
        let du = GlobalE2NodeId::new(Plmn::TEST, E2NodeType::GnbDu, 7);
        assert_eq!(cu.ran_entity_key(), du.ran_entity_key());
        let other = GlobalE2NodeId::new(Plmn::TEST, E2NodeType::GnbDu, 8);
        assert_ne!(cu.ran_entity_key(), other.ran_entity_key());
    }

    #[test]
    fn node_type_roundtrip() {
        for t in E2NodeType::ALL {
            assert_eq!(E2NodeType::from_u8(t as u8), Some(t));
        }
        assert_eq!(E2NodeType::from_u8(200), None);
    }

    #[test]
    fn split_detection() {
        assert!(E2NodeType::GnbCu.is_split());
        assert!(E2NodeType::EnbDu.is_split());
        assert!(!E2NodeType::Gnb.is_split());
        assert!(!E2NodeType::NgEnb.is_split());
    }

    #[test]
    fn interface_type_roundtrip() {
        for t in InterfaceType::ALL {
            assert_eq!(InterfaceType::from_u8(t as u8), Some(t));
        }
        assert_eq!(InterfaceType::from_u8(7), None);
    }

    #[test]
    fn ric_id_masked_to_20_bits() {
        assert_eq!(GlobalRicId::new(Plmn::TEST, u32::MAX).ric_id, 0xF_FFFF);
    }

    #[test]
    fn ran_function_id_masked() {
        assert_eq!(RanFunctionId::new(u16::MAX).0, 4095);
    }
}
