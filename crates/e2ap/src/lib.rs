//! Encoding-independent intermediate representation (IR) of the O-RAN E2
//! Application Protocol (E2AP).
//!
//! The FlexRIC paper identifies four orthogonal abstractions in the E2
//! specification: the transport protocol, the encoding of E2AP, the encoding
//! of the service models (E2SM), and the semantics of E2AP itself.  This
//! crate models the *semantics* only: every E2AP procedure is represented as
//! a plain Rust type, "without loss of information and independent of any
//! particular encoding/decoding algorithm" (§4.3 of the paper).  Codecs
//! (ASN.1-PER-style, FlatBuffers-style) live in `flexric-codec`; transports
//! live in `flexric-transport`.
//!
//! Service-model payloads are deliberately carried as opaque [`bytes::Bytes`]
//! — E2 mandates a double encoding where the "inner" E2SM payload is encoded
//! first and then encapsulated by the "outer" E2AP encoding.  Keeping the
//! inner payload opaque at this layer is what makes the E2AP×E2SM encoding
//! combinations of the paper's Fig. 7 a pure configuration choice.
//!
//! # Message coverage
//!
//! All 25 E2AP procedure messages of E2AP v1 relevant to the paper are
//! modelled (the paper implements "the most common 20 out of 26" in ASN.1 and
//! 12 in FlatBuffers; this crate's IR covers the full set so both codecs can
//! cover all of them):
//!
//! * **Global procedures** — E2 Setup, Reset, Error Indication, E2 Node
//!   Configuration Update, E2 Connection Update, RIC Service Update/Query.
//! * **Functional procedures** — RIC Subscription (+ Delete), RIC
//!   Indication, RIC Control.

pub mod cause;
pub mod ids;
pub mod msg;

pub use cause::{Cause, MiscCause, ProtocolCause, RicCause, RicServiceCause, TransportCause};
pub use ids::{
    E2NodeType, GlobalE2NodeId, GlobalRicId, InterfaceType, Plmn, RanFunctionId, RicActionId,
    RicRequestId, RicStyleType,
};
pub use msg::*;
