//! E2AP procedure messages and the top-level [`E2apPdu`] choice.

use bytes::Bytes;

use crate::cause::Cause;
use crate::ids::{
    GlobalE2NodeId, GlobalRicId, InterfaceType, RanFunctionId, RicActionId, RicRequestId,
};

/// Service-model version advertised alongside a RAN function: the
/// `major.minor` the E2 node implements.  Negotiation is semver-style —
/// the RIC serves the function iff it has a registered descriptor with
/// the same major (highest minor wins); see `flexric-sm`'s registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FnVersion {
    /// Incompatible-change counter; must match exactly.
    pub major: u16,
    /// Backward-compatible revision.
    pub minor: u16,
}

impl FnVersion {
    /// Version 1.0, what pre-versioning peers are assumed to speak (the
    /// wire encodes it as an absent field, so old captures still decode).
    pub const V1: FnVersion = FnVersion { major: 1, minor: 0 };

    /// A version literal.
    pub const fn new(major: u16, minor: u16) -> Self {
        FnVersion { major, minor }
    }
}

impl Default for FnVersion {
    fn default() -> Self {
        FnVersion::V1
    }
}

/// A RAN function as advertised during E2 setup / RIC service update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RanFunctionItem {
    /// The function id, unique within the E2 node.
    pub id: RanFunctionId,
    /// Service-model-encoded RAN function definition (opaque at E2AP level).
    pub definition: Bytes,
    /// Revision of the function definition.
    pub revision: u16,
    /// Service model object identifier, e.g. `"flexric.sm.mac_stats"`.
    pub oid: String,
    /// Service-model version (`major.minor`) behind the OID.
    pub version: FnVersion,
}

/// Configuration of one E2 node component (interface termination).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct E2NodeComponentConfig {
    /// The interface this component terminates.
    pub interface: InterfaceType,
    /// Component id (e.g. an interface endpoint name).
    pub component_id: String,
    /// Interface setup request snapshot (opaque).
    pub request_part: Bytes,
    /// Interface setup response snapshot (opaque).
    pub response_part: Bytes,
}

/// Transport network layer information for E2 connection updates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TnlInfo {
    /// Endpoint address, e.g. `"127.0.0.1"` or a mem-transport name.
    pub address: String,
    /// Endpoint port.
    pub port: u16,
    /// What the association is used for.
    pub usage: TnlUsage,
}

/// Purpose of a TNL association.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum TnlUsage {
    /// RIC service traffic only.
    RicService = 0,
    /// Support functions only.
    SupportFunction = 1,
    /// Both.
    Both = 2,
}

impl TnlUsage {
    /// Decodes a discriminant.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(TnlUsage::RicService),
            1 => Some(TnlUsage::SupportFunction),
            2 => Some(TnlUsage::Both),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Global procedures
// ---------------------------------------------------------------------------

/// E2 Setup Request: first message from an agent, advertising its identity
/// and RAN functions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct E2SetupRequest {
    /// Transaction id (matches response to request).
    pub transaction_id: u8,
    /// Identity of the connecting E2 node.
    pub global_node: GlobalE2NodeId,
    /// RAN functions offered by this node.
    pub ran_functions: Vec<RanFunctionItem>,
    /// Component configurations (interface terminations).
    pub component_configs: Vec<E2NodeComponentConfig>,
}

/// E2 Setup Response: the RIC accepts (a subset of) the RAN functions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct E2SetupResponse {
    /// Transaction id echoed from the request.
    pub transaction_id: u8,
    /// Identity of the RIC.
    pub global_ric: GlobalRicId,
    /// Accepted RAN function ids.
    pub accepted: Vec<RanFunctionId>,
    /// Rejected RAN functions with causes.
    pub rejected: Vec<(RanFunctionId, Cause)>,
}

/// E2 Setup Failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct E2SetupFailure {
    /// Transaction id echoed from the request.
    pub transaction_id: u8,
    /// Why setup failed.
    pub cause: Cause,
    /// Suggested retry delay in milliseconds.
    pub time_to_wait_ms: Option<u32>,
}

/// Reset Request: either side asks to drop all procedure state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResetRequest {
    /// Transaction id.
    pub transaction_id: u8,
    /// Why the reset is requested.
    pub cause: Cause,
}

/// Reset Response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResetResponse {
    /// Transaction id echoed from the request.
    pub transaction_id: u8,
}

/// Error Indication: reports a protocol error outside a procedure.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ErrorIndication {
    /// Offending request, if attributable.
    pub req_id: Option<RicRequestId>,
    /// Offending RAN function, if attributable.
    pub ran_function: Option<RanFunctionId>,
    /// Error cause, if known.
    pub cause: Option<Cause>,
}

/// E2 Node Configuration Update (agent → RIC).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct E2NodeConfigUpdate {
    /// Transaction id.
    pub transaction_id: u8,
    /// Added component configurations.
    pub additions: Vec<E2NodeComponentConfig>,
    /// Updated component configurations.
    pub updates: Vec<E2NodeComponentConfig>,
    /// Removed components, by `(interface, component id)`.
    pub removals: Vec<(InterfaceType, String)>,
}

/// Acknowledgement of an E2 node configuration update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct E2NodeConfigUpdateAck {
    /// Transaction id echoed from the request.
    pub transaction_id: u8,
    /// Accepted components.
    pub accepted: Vec<(InterfaceType, String)>,
    /// Rejected components with causes.
    pub rejected: Vec<(InterfaceType, String, Cause)>,
}

/// Failure of an E2 node configuration update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct E2NodeConfigUpdateFailure {
    /// Transaction id echoed from the request.
    pub transaction_id: u8,
    /// Why the update failed.
    pub cause: Cause,
    /// Suggested retry delay in milliseconds.
    pub time_to_wait_ms: Option<u32>,
}

/// E2 Connection Update (RIC → agent): manage additional TNL associations,
/// the hook the multi-controller support of §4.1.2 builds on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct E2ConnectionUpdate {
    /// Transaction id.
    pub transaction_id: u8,
    /// Associations to add.
    pub add: Vec<TnlInfo>,
    /// Associations to remove.
    pub remove: Vec<TnlInfo>,
    /// Associations to modify.
    pub modify: Vec<TnlInfo>,
}

/// Acknowledgement of an E2 connection update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct E2ConnectionUpdateAck {
    /// Transaction id echoed from the request.
    pub transaction_id: u8,
    /// Associations successfully set up.
    pub setup: Vec<TnlInfo>,
    /// Associations that failed, with causes.
    pub failed: Vec<(TnlInfo, Cause)>,
}

/// Failure of an E2 connection update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct E2ConnectionUpdateFailure {
    /// Transaction id echoed from the request.
    pub transaction_id: u8,
    /// Why the update failed.
    pub cause: Cause,
    /// Suggested retry delay in milliseconds.
    pub time_to_wait_ms: Option<u32>,
}

/// RIC Service Update (agent → RIC): RAN functions changed at runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RicServiceUpdate {
    /// Transaction id.
    pub transaction_id: u8,
    /// Newly added functions.
    pub added: Vec<RanFunctionItem>,
    /// Modified functions.
    pub modified: Vec<RanFunctionItem>,
    /// Removed function ids.
    pub removed: Vec<RanFunctionId>,
}

/// Acknowledgement of a RIC service update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RicServiceUpdateAck {
    /// Transaction id echoed from the request.
    pub transaction_id: u8,
    /// Accepted function ids.
    pub accepted: Vec<RanFunctionId>,
    /// Rejected functions with causes.
    pub rejected: Vec<(RanFunctionId, Cause)>,
}

/// Failure of a RIC service update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RicServiceUpdateFailure {
    /// Transaction id echoed from the request.
    pub transaction_id: u8,
    /// Why the update failed.
    pub cause: Cause,
    /// Suggested retry delay in milliseconds.
    pub time_to_wait_ms: Option<u32>,
}

/// RIC Service Query (RIC → agent): asks which functions the RIC believes
/// are registered so the agent can reconcile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RicServiceQuery {
    /// Transaction id.
    pub transaction_id: u8,
    /// Function ids the RIC currently has accepted.
    pub accepted: Vec<RanFunctionId>,
}

// ---------------------------------------------------------------------------
// Functional procedures
// ---------------------------------------------------------------------------

/// Action type inside a subscription (report / insert / policy, Appendix A.3
/// of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum RicActionType {
    /// E2 node sends information to the RIC on trigger.
    Report = 0,
    /// E2 node suspends a procedure and asks the RIC.
    Insert = 1,
    /// E2 node applies a pre-installed rule on trigger.
    Policy = 2,
}

impl RicActionType {
    /// Decodes a discriminant.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(RicActionType::Report),
            1 => Some(RicActionType::Insert),
            2 => Some(RicActionType::Policy),
            _ => None,
        }
    }
}

/// What the RAN function should do after serving an insert action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SubsequentActionType {
    /// Continue the suspended procedure.
    Continue = 0,
    /// Wait for a RIC control message.
    Wait = 1,
}

impl SubsequentActionType {
    /// Decodes a discriminant.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(SubsequentActionType::Continue),
            1 => Some(SubsequentActionType::Wait),
            _ => None,
        }
    }
}

/// Subsequent action attached to an action-to-be-setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RicSubsequentAction {
    /// Continue or wait.
    pub kind: SubsequentActionType,
    /// Wait timeout in milliseconds (0 = zero wait).
    pub wait_ms: u32,
}

/// One action requested within a subscription.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RicActionToBeSetup {
    /// Action id, unique within the subscription.
    pub id: RicActionId,
    /// Report / insert / policy.
    pub action_type: RicActionType,
    /// SM-encoded action definition (opaque).
    pub definition: Option<Bytes>,
    /// Optional subsequent action.
    pub subsequent: Option<RicSubsequentAction>,
}

/// RIC Subscription Request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RicSubscriptionRequest {
    /// Request id chosen by the subscriber.
    pub req_id: RicRequestId,
    /// Target RAN function.
    pub ran_function: RanFunctionId,
    /// SM-encoded event trigger definition (opaque).
    pub event_trigger: Bytes,
    /// Actions requested.
    pub actions: Vec<RicActionToBeSetup>,
}

/// RIC Subscription Response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RicSubscriptionResponse {
    /// Request id echoed.
    pub req_id: RicRequestId,
    /// RAN function echoed.
    pub ran_function: RanFunctionId,
    /// Admitted action ids.
    pub admitted: Vec<RicActionId>,
    /// Not-admitted action ids with causes.
    pub not_admitted: Vec<(RicActionId, Cause)>,
}

/// RIC Subscription Failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RicSubscriptionFailure {
    /// Request id echoed.
    pub req_id: RicRequestId,
    /// RAN function echoed.
    pub ran_function: RanFunctionId,
    /// Why the subscription failed.
    pub cause: Cause,
}

/// RIC Subscription Delete Request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RicSubscriptionDeleteRequest {
    /// Request id of the subscription to delete.
    pub req_id: RicRequestId,
    /// RAN function of the subscription.
    pub ran_function: RanFunctionId,
}

/// RIC Subscription Delete Response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RicSubscriptionDeleteResponse {
    /// Request id echoed.
    pub req_id: RicRequestId,
    /// RAN function echoed.
    pub ran_function: RanFunctionId,
}

/// RIC Subscription Delete Failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RicSubscriptionDeleteFailure {
    /// Request id echoed.
    pub req_id: RicRequestId,
    /// RAN function echoed.
    pub ran_function: RanFunctionId,
    /// Why the delete failed.
    pub cause: Cause,
}

/// Kind of indication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum RicIndicationType {
    /// Report indication.
    Report = 0,
    /// Insert indication.
    Insert = 1,
}

impl RicIndicationType {
    /// Decodes a discriminant.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(RicIndicationType::Report),
            1 => Some(RicIndicationType::Insert),
            _ => None,
        }
    }
}

/// RIC Indication: SM data from a RAN function to the subscriber.  This is
/// the hot-path message of every monitoring workload in the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RicIndication {
    /// Subscription this indication belongs to.
    pub req_id: RicRequestId,
    /// Originating RAN function.
    pub ran_function: RanFunctionId,
    /// Action that fired.
    pub action: RicActionId,
    /// Optional sequence number.
    pub sn: Option<u32>,
    /// Report or insert.
    pub ind_type: RicIndicationType,
    /// SM-encoded indication header (opaque).
    pub header: Bytes,
    /// SM-encoded indication message (opaque).
    pub message: Bytes,
    /// Optional call process id (insert flows).
    pub call_process_id: Option<Bytes>,
}

/// Whether the sender of a control request wants an acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ControlAckRequest {
    /// Never acknowledge.
    NoAck = 0,
    /// Acknowledge on success.
    Ack = 1,
    /// Negative acknowledge on failure only.
    NAck = 2,
}

impl ControlAckRequest {
    /// Decodes a discriminant.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(ControlAckRequest::NoAck),
            1 => Some(ControlAckRequest::Ack),
            2 => Some(ControlAckRequest::NAck),
            _ => None,
        }
    }
}

/// RIC Control Request: executes an operation inside a RAN function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RicControlRequest {
    /// Request id chosen by the controller application.
    pub req_id: RicRequestId,
    /// Target RAN function.
    pub ran_function: RanFunctionId,
    /// Optional call process id (answers an insert).
    pub call_process_id: Option<Bytes>,
    /// SM-encoded control header (opaque).
    pub header: Bytes,
    /// SM-encoded control message (opaque).
    pub message: Bytes,
    /// Acknowledgement policy.
    pub ack_request: Option<ControlAckRequest>,
}

/// RIC Control Acknowledge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RicControlAcknowledge {
    /// Request id echoed.
    pub req_id: RicRequestId,
    /// RAN function echoed.
    pub ran_function: RanFunctionId,
    /// Optional call process id.
    pub call_process_id: Option<Bytes>,
    /// SM-encoded control outcome (opaque).
    pub outcome: Option<Bytes>,
}

/// RIC Control Failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RicControlFailure {
    /// Request id echoed.
    pub req_id: RicRequestId,
    /// RAN function echoed.
    pub ran_function: RanFunctionId,
    /// Optional call process id.
    pub call_process_id: Option<Bytes>,
    /// Why the control failed.
    pub cause: Cause,
    /// SM-encoded control outcome (opaque).
    pub outcome: Option<Bytes>,
}

// ---------------------------------------------------------------------------
// Top-level PDU
// ---------------------------------------------------------------------------

/// Message type discriminant, stable across codecs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum MsgType {
    E2SetupRequest = 0,
    E2SetupResponse = 1,
    E2SetupFailure = 2,
    ResetRequest = 3,
    ResetResponse = 4,
    ErrorIndication = 5,
    E2NodeConfigUpdate = 6,
    E2NodeConfigUpdateAck = 7,
    E2NodeConfigUpdateFailure = 8,
    E2ConnectionUpdate = 9,
    E2ConnectionUpdateAck = 10,
    E2ConnectionUpdateFailure = 11,
    RicServiceUpdate = 12,
    RicServiceUpdateAck = 13,
    RicServiceUpdateFailure = 14,
    RicServiceQuery = 15,
    RicSubscriptionRequest = 16,
    RicSubscriptionResponse = 17,
    RicSubscriptionFailure = 18,
    RicSubscriptionDeleteRequest = 19,
    RicSubscriptionDeleteResponse = 20,
    RicSubscriptionDeleteFailure = 21,
    RicIndication = 22,
    RicControlRequest = 23,
    RicControlAcknowledge = 24,
    RicControlFailure = 25,
}

impl MsgType {
    /// All message types in discriminant order.
    pub const ALL: [MsgType; 26] = [
        MsgType::E2SetupRequest,
        MsgType::E2SetupResponse,
        MsgType::E2SetupFailure,
        MsgType::ResetRequest,
        MsgType::ResetResponse,
        MsgType::ErrorIndication,
        MsgType::E2NodeConfigUpdate,
        MsgType::E2NodeConfigUpdateAck,
        MsgType::E2NodeConfigUpdateFailure,
        MsgType::E2ConnectionUpdate,
        MsgType::E2ConnectionUpdateAck,
        MsgType::E2ConnectionUpdateFailure,
        MsgType::RicServiceUpdate,
        MsgType::RicServiceUpdateAck,
        MsgType::RicServiceUpdateFailure,
        MsgType::RicServiceQuery,
        MsgType::RicSubscriptionRequest,
        MsgType::RicSubscriptionResponse,
        MsgType::RicSubscriptionFailure,
        MsgType::RicSubscriptionDeleteRequest,
        MsgType::RicSubscriptionDeleteResponse,
        MsgType::RicSubscriptionDeleteFailure,
        MsgType::RicIndication,
        MsgType::RicControlRequest,
        MsgType::RicControlAcknowledge,
        MsgType::RicControlFailure,
    ];

    /// Decodes a discriminant.
    pub fn from_u8(v: u8) -> Option<Self> {
        Self::ALL.get(v as usize).copied()
    }

    /// Whether this message belongs to the functional procedure class
    /// (addressed to a RAN function rather than the E2 connection itself).
    pub fn is_functional(self) -> bool {
        self as u8 >= MsgType::RicSubscriptionRequest as u8
    }
}

/// The top-level E2AP PDU: a choice over all procedure messages.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum E2apPdu {
    E2SetupRequest(E2SetupRequest),
    E2SetupResponse(E2SetupResponse),
    E2SetupFailure(E2SetupFailure),
    ResetRequest(ResetRequest),
    ResetResponse(ResetResponse),
    ErrorIndication(ErrorIndication),
    E2NodeConfigUpdate(E2NodeConfigUpdate),
    E2NodeConfigUpdateAck(E2NodeConfigUpdateAck),
    E2NodeConfigUpdateFailure(E2NodeConfigUpdateFailure),
    E2ConnectionUpdate(E2ConnectionUpdate),
    E2ConnectionUpdateAck(E2ConnectionUpdateAck),
    E2ConnectionUpdateFailure(E2ConnectionUpdateFailure),
    RicServiceUpdate(RicServiceUpdate),
    RicServiceUpdateAck(RicServiceUpdateAck),
    RicServiceUpdateFailure(RicServiceUpdateFailure),
    RicServiceQuery(RicServiceQuery),
    RicSubscriptionRequest(RicSubscriptionRequest),
    RicSubscriptionResponse(RicSubscriptionResponse),
    RicSubscriptionFailure(RicSubscriptionFailure),
    RicSubscriptionDeleteRequest(RicSubscriptionDeleteRequest),
    RicSubscriptionDeleteResponse(RicSubscriptionDeleteResponse),
    RicSubscriptionDeleteFailure(RicSubscriptionDeleteFailure),
    RicIndication(RicIndication),
    RicControlRequest(RicControlRequest),
    RicControlAcknowledge(RicControlAcknowledge),
    RicControlFailure(RicControlFailure),
}

impl E2apPdu {
    /// The message type of this PDU.
    pub fn msg_type(&self) -> MsgType {
        match self {
            E2apPdu::E2SetupRequest(_) => MsgType::E2SetupRequest,
            E2apPdu::E2SetupResponse(_) => MsgType::E2SetupResponse,
            E2apPdu::E2SetupFailure(_) => MsgType::E2SetupFailure,
            E2apPdu::ResetRequest(_) => MsgType::ResetRequest,
            E2apPdu::ResetResponse(_) => MsgType::ResetResponse,
            E2apPdu::ErrorIndication(_) => MsgType::ErrorIndication,
            E2apPdu::E2NodeConfigUpdate(_) => MsgType::E2NodeConfigUpdate,
            E2apPdu::E2NodeConfigUpdateAck(_) => MsgType::E2NodeConfigUpdateAck,
            E2apPdu::E2NodeConfigUpdateFailure(_) => MsgType::E2NodeConfigUpdateFailure,
            E2apPdu::E2ConnectionUpdate(_) => MsgType::E2ConnectionUpdate,
            E2apPdu::E2ConnectionUpdateAck(_) => MsgType::E2ConnectionUpdateAck,
            E2apPdu::E2ConnectionUpdateFailure(_) => MsgType::E2ConnectionUpdateFailure,
            E2apPdu::RicServiceUpdate(_) => MsgType::RicServiceUpdate,
            E2apPdu::RicServiceUpdateAck(_) => MsgType::RicServiceUpdateAck,
            E2apPdu::RicServiceUpdateFailure(_) => MsgType::RicServiceUpdateFailure,
            E2apPdu::RicServiceQuery(_) => MsgType::RicServiceQuery,
            E2apPdu::RicSubscriptionRequest(_) => MsgType::RicSubscriptionRequest,
            E2apPdu::RicSubscriptionResponse(_) => MsgType::RicSubscriptionResponse,
            E2apPdu::RicSubscriptionFailure(_) => MsgType::RicSubscriptionFailure,
            E2apPdu::RicSubscriptionDeleteRequest(_) => MsgType::RicSubscriptionDeleteRequest,
            E2apPdu::RicSubscriptionDeleteResponse(_) => MsgType::RicSubscriptionDeleteResponse,
            E2apPdu::RicSubscriptionDeleteFailure(_) => MsgType::RicSubscriptionDeleteFailure,
            E2apPdu::RicIndication(_) => MsgType::RicIndication,
            E2apPdu::RicControlRequest(_) => MsgType::RicControlRequest,
            E2apPdu::RicControlAcknowledge(_) => MsgType::RicControlAcknowledge,
            E2apPdu::RicControlFailure(_) => MsgType::RicControlFailure,
        }
    }

    /// The RIC request id, for functional procedures.
    pub fn ric_request_id(&self) -> Option<RicRequestId> {
        match self {
            E2apPdu::RicSubscriptionRequest(m) => Some(m.req_id),
            E2apPdu::RicSubscriptionResponse(m) => Some(m.req_id),
            E2apPdu::RicSubscriptionFailure(m) => Some(m.req_id),
            E2apPdu::RicSubscriptionDeleteRequest(m) => Some(m.req_id),
            E2apPdu::RicSubscriptionDeleteResponse(m) => Some(m.req_id),
            E2apPdu::RicSubscriptionDeleteFailure(m) => Some(m.req_id),
            E2apPdu::RicIndication(m) => Some(m.req_id),
            E2apPdu::RicControlRequest(m) => Some(m.req_id),
            E2apPdu::RicControlAcknowledge(m) => Some(m.req_id),
            E2apPdu::RicControlFailure(m) => Some(m.req_id),
            E2apPdu::ErrorIndication(m) => m.req_id,
            _ => None,
        }
    }

    /// The RAN function id, for functional procedures.
    pub fn ran_function_id(&self) -> Option<RanFunctionId> {
        match self {
            E2apPdu::RicSubscriptionRequest(m) => Some(m.ran_function),
            E2apPdu::RicSubscriptionResponse(m) => Some(m.ran_function),
            E2apPdu::RicSubscriptionFailure(m) => Some(m.ran_function),
            E2apPdu::RicSubscriptionDeleteRequest(m) => Some(m.ran_function),
            E2apPdu::RicSubscriptionDeleteResponse(m) => Some(m.ran_function),
            E2apPdu::RicSubscriptionDeleteFailure(m) => Some(m.ran_function),
            E2apPdu::RicIndication(m) => Some(m.ran_function),
            E2apPdu::RicControlRequest(m) => Some(m.ran_function),
            E2apPdu::RicControlAcknowledge(m) => Some(m.ran_function),
            E2apPdu::RicControlFailure(m) => Some(m.ran_function),
            E2apPdu::ErrorIndication(m) => m.ran_function,
            _ => None,
        }
    }

    /// The routing header of this PDU, as a [`PduHeader`].
    pub fn header(&self) -> PduHeader {
        PduHeader {
            msg_type: self.msg_type(),
            req_id: self.ric_request_id(),
            ran_function: self.ran_function_id(),
        }
    }
}

/// The routing header of an E2AP PDU: everything the server's subscription
/// management needs to dispatch a message.
///
/// FlatBuffers-style encodings can extract this *without decoding the PDU*
/// (`peek`), which is the mechanism behind the ~4× controller CPU difference
/// the paper reports in Fig. 8b.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PduHeader {
    /// Message type.
    pub msg_type: MsgType,
    /// RIC request id, for functional procedures.
    pub req_id: Option<RicRequestId>,
    /// RAN function id, for functional procedures.
    pub ran_function: Option<RanFunctionId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cause::MiscCause;
    use crate::ids::Plmn;

    fn sample_indication() -> RicIndication {
        RicIndication {
            req_id: RicRequestId::new(7, 3),
            ran_function: RanFunctionId::new(42),
            action: RicActionId(1),
            sn: Some(99),
            ind_type: RicIndicationType::Report,
            header: Bytes::from_static(b"hdr"),
            message: Bytes::from_static(b"msg"),
            call_process_id: None,
        }
    }

    #[test]
    fn msg_type_roundtrip() {
        for t in MsgType::ALL {
            assert_eq!(MsgType::from_u8(t as u8), Some(t));
        }
        assert_eq!(MsgType::from_u8(26), None);
    }

    #[test]
    fn functional_classification() {
        assert!(!MsgType::E2SetupRequest.is_functional());
        assert!(!MsgType::RicServiceQuery.is_functional());
        assert!(MsgType::RicSubscriptionRequest.is_functional());
        assert!(MsgType::RicIndication.is_functional());
        assert!(MsgType::RicControlFailure.is_functional());
    }

    #[test]
    fn header_extraction_for_functional_pdu() {
        let pdu = E2apPdu::RicIndication(sample_indication());
        let h = pdu.header();
        assert_eq!(h.msg_type, MsgType::RicIndication);
        assert_eq!(h.req_id, Some(RicRequestId::new(7, 3)));
        assert_eq!(h.ran_function, Some(RanFunctionId::new(42)));
    }

    #[test]
    fn header_extraction_for_global_pdu() {
        let pdu = E2apPdu::ResetRequest(ResetRequest {
            transaction_id: 1,
            cause: Cause::Misc(MiscCause::OmIntervention),
        });
        let h = pdu.header();
        assert_eq!(h.msg_type, MsgType::ResetRequest);
        assert_eq!(h.req_id, None);
        assert_eq!(h.ran_function, None);
    }

    #[test]
    fn error_indication_optional_routing() {
        let pdu = E2apPdu::ErrorIndication(ErrorIndication {
            req_id: Some(RicRequestId::new(1, 2)),
            ran_function: None,
            cause: None,
        });
        assert_eq!(pdu.ric_request_id(), Some(RicRequestId::new(1, 2)));
        assert_eq!(pdu.ran_function_id(), None);
    }

    #[test]
    fn setup_request_holds_functions() {
        let req = E2SetupRequest {
            transaction_id: 0,
            global_node: GlobalE2NodeId::new(Plmn::TEST, crate::ids::E2NodeType::Gnb, 1),
            ran_functions: vec![RanFunctionItem {
                id: RanFunctionId::new(2),
                definition: Bytes::from_static(b"def"),
                revision: 1,
                oid: "flexric.sm.mac_stats".into(),
                version: FnVersion::new(1, 2),
            }],
            component_configs: vec![],
        };
        let pdu = E2apPdu::E2SetupRequest(req.clone());
        assert_eq!(pdu.msg_type(), MsgType::E2SetupRequest);
        match pdu {
            E2apPdu::E2SetupRequest(r) => assert_eq!(r, req),
            _ => unreachable!(),
        }
    }

    #[test]
    fn tnl_usage_roundtrip() {
        for v in [TnlUsage::RicService, TnlUsage::SupportFunction, TnlUsage::Both] {
            assert_eq!(TnlUsage::from_u8(v as u8), Some(v));
        }
        assert_eq!(TnlUsage::from_u8(3), None);
    }

    #[test]
    fn enum_discriminant_decoders() {
        for v in [RicActionType::Report, RicActionType::Insert, RicActionType::Policy] {
            assert_eq!(RicActionType::from_u8(v as u8), Some(v));
        }
        assert_eq!(RicActionType::from_u8(3), None);
        for v in [SubsequentActionType::Continue, SubsequentActionType::Wait] {
            assert_eq!(SubsequentActionType::from_u8(v as u8), Some(v));
        }
        assert_eq!(SubsequentActionType::from_u8(2), None);
        for v in [RicIndicationType::Report, RicIndicationType::Insert] {
            assert_eq!(RicIndicationType::from_u8(v as u8), Some(v));
        }
        assert_eq!(RicIndicationType::from_u8(2), None);
        for v in [ControlAckRequest::NoAck, ControlAckRequest::Ack, ControlAckRequest::NAck] {
            assert_eq!(ControlAckRequest::from_u8(v as u8), Some(v));
        }
        assert_eq!(ControlAckRequest::from_u8(3), None);
    }
}
