//! E2AP cause values: every failure message carries a structured reason.

/// RIC-request-related causes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum RicCause {
    /// The addressed RAN function id is not registered at the E2 node.
    RanFunctionIdInvalid = 0,
    /// The action requested is not supported by the RAN function.
    ActionNotSupported = 1,
    /// More actions than the function can serve concurrently.
    ExcessiveActions = 2,
    /// A subscription with the same request id already exists.
    DuplicateAction = 3,
    /// The event trigger could not be parsed by the service model.
    UnsupportedEventTrigger = 4,
    /// Function-level admission control rejected the request (e.g. the SLA
    /// budget of a slicing subscription is exhausted, paper §4.1.2).
    FunctionResourceLimit = 5,
    /// The request referenced an unknown subscription.
    RequestIdUnknown = 6,
    /// Inconsistency between action type and subsequent-action presence.
    InconsistentActionSubsequentActionSequence = 7,
    /// A control message failed validation inside the service model.
    ControlMessageInvalid = 8,
    /// A call process id was not recognized.
    CallProcessIdInvalid = 9,
    /// Catch-all.
    Unspecified = 10,
}

/// RIC-service-related causes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum RicServiceCause {
    /// The RAN function definition could not be parsed.
    FunctionNotRequired = 0,
    /// Too many RAN functions for this RIC.
    ExcessiveFunctions = 1,
    /// RIC cannot serve the function revision.
    RicResourceLimit = 2,
    /// No service model with the advertised OID is registered at the RIC.
    FunctionNotSupported = 3,
    /// A service model with the OID exists, but no registered version is
    /// semver-compatible with the advertised one (major mismatch).
    FunctionVersionMismatch = 4,
}

/// Transport-layer causes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum TransportCause {
    /// Catch-all.
    Unspecified = 0,
    /// The transport resource ran out (e.g. stream exhaustion).
    TransportResourceUnavailable = 1,
}

/// Protocol-level causes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ProtocolCause {
    /// Transfer syntax (encoding) error.
    TransferSyntaxError = 0,
    /// Abstract syntax error, reject.
    AbstractSyntaxErrorReject = 1,
    /// Abstract syntax error, ignore and notify.
    AbstractSyntaxErrorIgnoreAndNotify = 2,
    /// Message not compatible with receiver state.
    MessageNotCompatibleWithReceiverState = 3,
    /// Semantic error.
    SemanticError = 4,
    /// Falsely constructed message.
    AbstractSyntaxErrorFalselyConstructedMessage = 5,
    /// Catch-all.
    Unspecified = 6,
}

/// Miscellaneous causes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MiscCause {
    /// Control processing overload.
    ControlProcessingOverload = 0,
    /// Hardware failure.
    HardwareFailure = 1,
    /// Operator intervention.
    OmIntervention = 2,
    /// Catch-all.
    Unspecified = 3,
}

/// An E2AP cause: a choice over the five cause groups of the spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cause {
    /// RIC request group.
    Ric(RicCause),
    /// RIC service group.
    RicService(RicServiceCause),
    /// Transport group.
    Transport(TransportCause),
    /// Protocol group.
    Protocol(ProtocolCause),
    /// Miscellaneous group.
    Misc(MiscCause),
}

impl Cause {
    /// Group discriminant used by codecs (choice index).
    pub fn group(&self) -> u8 {
        match self {
            Cause::Ric(_) => 0,
            Cause::RicService(_) => 1,
            Cause::Transport(_) => 2,
            Cause::Protocol(_) => 3,
            Cause::Misc(_) => 4,
        }
    }

    /// Value discriminant within the group.
    pub fn value(&self) -> u8 {
        match self {
            Cause::Ric(c) => *c as u8,
            Cause::RicService(c) => *c as u8,
            Cause::Transport(c) => *c as u8,
            Cause::Protocol(c) => *c as u8,
            Cause::Misc(c) => *c as u8,
        }
    }

    /// Reconstructs a cause from its `(group, value)` discriminants.
    pub fn from_parts(group: u8, value: u8) -> Option<Cause> {
        Some(match group {
            0 => Cause::Ric(match value {
                0 => RicCause::RanFunctionIdInvalid,
                1 => RicCause::ActionNotSupported,
                2 => RicCause::ExcessiveActions,
                3 => RicCause::DuplicateAction,
                4 => RicCause::UnsupportedEventTrigger,
                5 => RicCause::FunctionResourceLimit,
                6 => RicCause::RequestIdUnknown,
                7 => RicCause::InconsistentActionSubsequentActionSequence,
                8 => RicCause::ControlMessageInvalid,
                9 => RicCause::CallProcessIdInvalid,
                10 => RicCause::Unspecified,
                _ => return None,
            }),
            1 => Cause::RicService(match value {
                0 => RicServiceCause::FunctionNotRequired,
                1 => RicServiceCause::ExcessiveFunctions,
                2 => RicServiceCause::RicResourceLimit,
                3 => RicServiceCause::FunctionNotSupported,
                4 => RicServiceCause::FunctionVersionMismatch,
                _ => return None,
            }),
            2 => Cause::Transport(match value {
                0 => TransportCause::Unspecified,
                1 => TransportCause::TransportResourceUnavailable,
                _ => return None,
            }),
            3 => Cause::Protocol(match value {
                0 => ProtocolCause::TransferSyntaxError,
                1 => ProtocolCause::AbstractSyntaxErrorReject,
                2 => ProtocolCause::AbstractSyntaxErrorIgnoreAndNotify,
                3 => ProtocolCause::MessageNotCompatibleWithReceiverState,
                4 => ProtocolCause::SemanticError,
                5 => ProtocolCause::AbstractSyntaxErrorFalselyConstructedMessage,
                6 => ProtocolCause::Unspecified,
                _ => return None,
            }),
            4 => Cause::Misc(match value {
                0 => MiscCause::ControlProcessingOverload,
                1 => MiscCause::HardwareFailure,
                2 => MiscCause::OmIntervention,
                3 => MiscCause::Unspecified,
                _ => return None,
            }),
            _ => return None,
        })
    }

    /// Every cause value, used by exhaustive codec round-trip tests.
    pub fn all() -> Vec<Cause> {
        let mut out = Vec::new();
        for g in 0..5u8 {
            for v in 0..16u8 {
                if let Some(c) = Cause::from_parts(g, v) {
                    out.push(c);
                }
            }
        }
        out
    }
}

impl Default for Cause {
    fn default() -> Self {
        Cause::Misc(MiscCause::Unspecified)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parts_roundtrip_all() {
        let all = Cause::all();
        assert!(all.len() >= 25, "expected full cause coverage, got {}", all.len());
        for c in all {
            assert_eq!(Cause::from_parts(c.group(), c.value()), Some(c));
        }
    }

    #[test]
    fn invalid_parts_rejected() {
        assert_eq!(Cause::from_parts(5, 0), None);
        assert_eq!(Cause::from_parts(0, 99), None);
        assert_eq!(Cause::from_parts(1, 5), None);
        assert_eq!(Cause::from_parts(2, 2), None);
        assert_eq!(Cause::from_parts(3, 7), None);
        assert_eq!(Cause::from_parts(4, 4), None);
    }

    #[test]
    fn groups_are_distinct() {
        assert_ne!(Cause::Ric(RicCause::Unspecified), Cause::Misc(MiscCause::Unspecified));
        assert_eq!(Cause::default().group(), 4);
    }
}
