//! Property-based tests on the RAN simulator's conservation and isolation
//! invariants.

use proptest::prelude::*;

use flexric_ransim::{CellConfig, FlowConfig, FlowKind, PathConfig, Sim, UeConfig};
use flexric_sm::slice::{SliceAlgo, SliceConf, SliceCtrl, SliceParams, UeSchedAlgo};

fn greedy(rnti: u16, port: u16) -> FlowConfig {
    FlowConfig {
        cell: 0,
        rnti,
        drb: 1,
        kind: FlowKind::GreedyTcp { mss: 1500 },
        tuple: (1, 2, 1000, port, 6),
        start_ms: 0,
        stop_ms: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Packet conservation: every packet a flow emitted is delivered, lost,
    /// queued somewhere in the cell, or still in flight — never duplicated,
    /// never silently vanished.
    #[test]
    fn packet_conservation(
        ues in 1u16..6,
        prbs in prop_oneof![Just(25u32), Just(50), Just(106)],
        mcs in 5u8..28,
        run_ms in 200u64..1500,
    ) {
        let mut sim = Sim::new(vec![CellConfig::nr("c", prbs)], PathConfig::default());
        for i in 0..ues {
            sim.attach_ue(0, UeConfig::new(0x100 + i, mcs));
            sim.add_flow(greedy(0x100 + i, 80));
        }
        sim.run_ms(run_ms);
        // Flush in-flight deliveries: stop generation, keep ticking long
        // enough for the air-interface pipeline to drain.
        for f in 0..sim.flow_count() {
            sim.set_flow_active(f, false);
        }
        sim.run_ms(50);
        for f in 0..sim.flow_count() {
            let flow = sim.flow(f);
            let queued: u64 = sim.cells[0]
                .ues
                .iter()
                .filter(|u| u.cfg.rnti == flow.cfg.rnti)
                .map(|u| {
                    u.bearers
                        .iter()
                        .map(|b| b.rlc.backlog_pkts() as u64 + b.tc.backlog_bytes() / 1500)
                        .sum::<u64>()
                })
                .sum();
            let accounted = flow.delivered_pkts + flow.lost_pkts + queued;
            // In-flight (scheduled deliveries) and partial-packet rounding
            // allow a small slack; never MORE packets than were sent.
            prop_assert!(accounted <= flow.tx_pkts + 1,
                "flow {f}: delivered {} + lost {} + queued {queued} > tx {}",
                flow.delivered_pkts, flow.lost_pkts, flow.tx_pkts);
            // And most packets are accounted for (in-flight window is small).
            prop_assert!(accounted + 64 >= flow.tx_pkts,
                "flow {f}: only {accounted} of {} packets accounted", flow.tx_pkts);
        }
    }

    /// Cell capacity: aggregate delivered throughput never exceeds the
    /// PHY-model capacity of the cell.
    #[test]
    fn throughput_bounded_by_capacity(
        ues in 1u16..5,
        mcs in 5u8..28,
    ) {
        let prbs = 50u32;
        let mut sim = Sim::new(vec![CellConfig::nr("c", prbs)], PathConfig::default());
        for i in 0..ues {
            sim.attach_ue(0, UeConfig::new(0x100 + i, mcs));
            sim.add_flow(greedy(0x100 + i, 80));
        }
        let run_ms = 3_000u64;
        sim.run_ms(run_ms);
        let delivered: u64 = (0..sim.flow_count()).map(|f| sim.flow(f).delivered_bytes).sum();
        let cap_bytes = flexric_ransim::bytes_per_prb_tti(flexric_ransim::Rat::Nr, mcs) as u64
            * prbs as u64
            * run_ms;
        prop_assert!(
            delivered <= cap_bytes,
            "delivered {delivered} exceeds capacity {cap_bytes}"
        );
    }

    /// NVS isolation: with all slices backlogged, each capacity slice's
    /// share of delivered bytes is within tolerance of its configuration.
    #[test]
    fn nvs_shares_hold_under_load(
        share_a in 200u32..800,
    ) {
        let share_b = 1000 - share_a;
        let mut sim = Sim::new(vec![CellConfig::nr("c", 106)], PathConfig::default());
        sim.attach_ue(0, UeConfig::new(0x1, 20));
        sim.attach_ue(0, UeConfig::new(0x2, 20));
        let fa = sim.add_flow(greedy(0x1, 80));
        let fb = sim.add_flow(greedy(0x2, 81));
        let cell = &mut sim.cells[0];
        cell.apply_slice_ctrl(&SliceCtrl::SetAlgo { algo: SliceAlgo::Nvs }).unwrap();
        cell.apply_slice_ctrl(&SliceCtrl::AddModSlices {
            slices: vec![
                SliceConf { id: 0, label: "a".into(),
                    params: SliceParams::NvsCapacity { share_milli: share_a },
                    ue_sched: UeSchedAlgo::PropFair },
                SliceConf { id: 1, label: "b".into(),
                    params: SliceParams::NvsCapacity { share_milli: share_b },
                    ue_sched: UeSchedAlgo::PropFair },
            ],
        }).unwrap();
        cell.apply_slice_ctrl(&SliceCtrl::AssocUeSlice { assoc: vec![(0x1, 0), (0x2, 1)] })
            .unwrap();
        sim.run_ms(10_000);
        let a = sim.flow(fa).delivered_bytes as f64;
        let b = sim.flow(fb).delivered_bytes as f64;
        let frac = a / (a + b);
        let want = share_a as f64 / 1000.0;
        prop_assert!(
            (frac - want).abs() < 0.08,
            "slice a got {frac:.3}, configured {want:.3}"
        );
    }

    /// Admission control is a total function: any sequence of slice-control
    /// commands either applies or errors; the scheduler never ends up with
    /// more than 100 % reserved.
    #[test]
    fn admission_never_overcommits(
        shares in proptest::collection::vec(1u32..1200, 1..8),
    ) {
        let mut sim = Sim::new(vec![CellConfig::nr("c", 106)], PathConfig::default());
        let cell = &mut sim.cells[0];
        cell.apply_slice_ctrl(&SliceCtrl::SetAlgo { algo: SliceAlgo::Nvs }).unwrap();
        for (i, milli) in shares.iter().enumerate() {
            let _ = cell.apply_slice_ctrl(&SliceCtrl::AddModSlices {
                slices: vec![SliceConf {
                    id: i as u32,
                    label: format!("s{i}"),
                    params: SliceParams::NvsCapacity { share_milli: *milli },
                    ue_sched: UeSchedAlgo::RoundRobin,
                }],
            });
        }
        let total: f64 = cell
            .sched
            .slices
            .iter()
            .filter(|s| s.conf.id != u32::MAX)
            .map(|s| s.conf.params.share(106))
            .sum();
        prop_assert!(total <= 1.0 + 1e-9, "scheduler over-committed: {total:.3}");
    }
}
