//! Property tests on the scenario engine's contracts: determinism under
//! a seed, UE conservation across churn and handovers, and Poisson
//! arrival-rate sanity.  Runs under both the real proptest (cargo) and
//! the mini_proptest shim (tools/offline_verify), so no proptest_config
//! attributes and bodies kept cheap.

use proptest::prelude::*;

use flexric_ransim::scenario::{ChurnCfg, MobilityCfg, ScenarioSpec};
use flexric_ransim::{ScenarioEngine, Sim};

/// Builds, primes and runs a scenario for `ms` virtual milliseconds.
fn run(spec: ScenarioSpec, ms: u64) -> (ScenarioEngine, Sim) {
    let mut eng = ScenarioEngine::new(spec);
    let mut sim = eng.build_sim();
    eng.prime(&mut sim);
    for _ in 0..ms {
        sim.tick();
        eng.advance(&mut sim);
    }
    (eng, sim)
}

/// A cheap spec: VoIP-only traffic so 256 cases stay fast.
fn cheap_spec(seed: u64, cells: usize, mobile: bool) -> ScenarioSpec {
    ScenarioSpec {
        name: "prop".to_owned(),
        seed,
        cells,
        initial_ues: 2,
        mobility: MobilityCfg {
            step_ms: if mobile { 100 } else { 0 },
            speed_min_mps: 8.0,
            speed_max_mps: 20.0,
            a3_ttt_ms: 200,
            ..Default::default()
        },
        churn: ChurnCfg {
            arrival_mean_ms: 600,
            stay_mean_ms: 2_500,
            max_ues: 24,
            profile_weights: [1, 0, 0],
            ..Default::default()
        },
        ..Default::default()
    }
}

proptest! {
    /// Same seed ⇒ identical event trace and identical aggregate stats;
    /// the trace hash is the determinism contract benches rely on for
    /// paired open/closed-loop comparisons.
    #[test]
    fn same_seed_reproduces_trace(seed in 1u64..100_000) {
        let (a, _) = run(cheap_spec(seed, 2, true), 2_500);
        let (b, _) = run(cheap_spec(seed, 2, true), 2_500);
        prop_assert_eq!(a.trace_hash(), b.trace_hash());
        prop_assert_eq!(a.stats, b.stats);
        prop_assert_eq!(a.ue_count(), b.ue_count());
    }

    /// UE conservation: every admitted arrival is either still attached
    /// or departed — handovers move UEs between cells without creating
    /// or losing them, and the engine's population always equals the
    /// simulator's.
    #[test]
    fn ue_conservation_under_churn_and_handover(
        seed in 1u64..50_000,
        cells in 2usize..4,
    ) {
        let (eng, sim) = run(cheap_spec(seed, cells, true), 4_000);
        let attached = eng.ue_count() as u64;
        prop_assert_eq!(
            eng.stats.arrivals, attached + eng.stats.departures,
            "arrivals {} != attached {} + departures {}",
            eng.stats.arrivals, attached, eng.stats.departures
        );
        let sim_pop: usize = sim.cells.iter().map(|c| c.ues.len()).sum();
        prop_assert_eq!(sim_pop, eng.ue_count());
        // Handovers moved UEs, never duplicated them: cumulative in ==
        // cumulative out across the deployment.
        let ho_out: u64 = sim.cells.iter().map(|c| c.ho_out_total).sum();
        let ho_in: u64 = sim.cells.iter().map(|c| c.ho_in_total).sum();
        prop_assert_eq!(ho_out, ho_in);
        prop_assert_eq!(ho_out, eng.stats.handovers);
    }

    /// Poisson arrivals: over a long flat window the observed arrival
    /// count lands within a generous band around T/mean (no diurnal, no
    /// cap pressure, no departures interfering with the count).
    #[test]
    fn poisson_arrival_rate_sanity(
        seed in 1u64..20_000,
        mean_ms in 300u64..800,
    ) {
        let horizon = 20_000u64;
        let spec = ScenarioSpec {
            initial_ues: 0,
            churn: ChurnCfg {
                arrival_mean_ms: mean_ms,
                stay_mean_ms: 1_000_000, // nobody leaves inside the window
                max_ues: 1_000,
                profile_weights: [1, 0, 0],
                ..Default::default()
            },
            ..cheap_spec(seed, 1, false)
        };
        let (eng, _) = run(spec, horizon);
        prop_assert_eq!(eng.stats.rejected, 0);
        let expect = (horizon / mean_ms) as f64;
        let got = eng.stats.arrivals as f64;
        prop_assert!(
            got > expect * 0.5 - 8.0 && got < expect * 2.0 + 8.0,
            "arrivals {got} far from expected {expect} (mean {mean_ms} ms)"
        );
    }
}
