//! Time-varying KPI workload generator for the adaptive-monitoring
//! experiments (Fig. 7b).
//!
//! Real cells are bursty: most report periods change only a handful of
//! counters, long stretches change nothing at all, and occasionally a
//! traffic burst moves everything at once.  [`KpiGen`] reproduces that
//! shape deterministically — one generator per simulated agent, seeded by
//! agent index — so the full/delta/adaptive A/B measures a workload with
//! realistic temporal structure instead of white noise (which would make
//! delta encoding look uselessly bad) or a frozen snapshot (uselessly
//! good).
//!
//! This module is deliberately self-contained (std + `flexric-sm` only, no
//! `rand`/`parking_lot`) so the offline verification harness can compile
//! it with bare `rustc` alongside the delta codec it exercises.

use flexric_sm::mac::{MacStatsInd, MacUeStats};
use flexric_sm::pdcp::{PdcpBearerStats, PdcpStatsInd};
use flexric_sm::rlc::{RlcBearerStats, RlcStatsInd};

/// xorshift64* — deterministic, seed-stable across platforms.
#[derive(Debug, Clone)]
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `0..n` (n > 0).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// True with probability `num/den`.
    fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

/// Traffic phase of a simulated cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Nothing moves: every KPI frozen.  Delta mode suppresses the report
    /// entirely; adaptive mode backs the period off.
    Quiet,
    /// Normal traffic: a few UEs' counters move each period.
    Active,
    /// Overload: every row changes and the anomaly KPIs
    /// (`dl_backlog_bytes`, `sojourn_us_avg`) exceed the adaptive
    /// thresholds, so the controller tightens the period.
    Burst,
}

/// Phase schedule: a fixed cycle with a per-agent offset so a fleet of
/// generators desynchronizes instead of bursting in lockstep.
const CYCLE: u64 = 100;
const QUIET_LEN: u64 = 45;
const ACTIVE_LEN: u64 = 45;
// Burst fills the remaining CYCLE - QUIET_LEN - ACTIVE_LEN = 10 ticks.

/// Backlog bytes emitted during a burst — above the default
/// `AdaptiveConfig::backlog_bytes_thr` of the monitoring iApp.
pub const BURST_BACKLOG_BYTES: u64 = 800_000;
/// Sojourn time emitted during a burst — above the default
/// `AdaptiveConfig::sojourn_us_thr`.
pub const BURST_SOJOURN_US: u64 = 450_000;

/// Deterministic per-agent KPI generator.
#[derive(Debug, Clone)]
pub struct KpiGen {
    rng: Rng,
    /// Phase offset of this agent within the cycle.
    offset: u64,
    tick: u64,
    mac: MacStatsInd,
    rlc: RlcStatsInd,
    pdcp: PdcpStatsInd,
}

impl KpiGen {
    /// A generator with `ues` UEs (one bearer each), seeded by `seed`
    /// (pass the agent index for a desynchronized fleet).
    pub fn new(seed: u64, ues: usize) -> Self {
        let mut rng = Rng::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1));
        let offset = rng.below(CYCLE);
        let mut mac = MacStatsInd { tstamp_ms: 0, cell_prbs: 106, ues: Vec::with_capacity(ues) };
        let mut rlc = RlcStatsInd::default();
        let mut pdcp = PdcpStatsInd::default();
        for i in 0..ues {
            let rnti = 0x4601 + i as u16;
            mac.ues.push(MacUeStats {
                rnti,
                cqi: (rng.below(16)) as u8,
                mcs: (rng.below(29)) as u8,
                slice_id: (i % 4) as u32,
                plmn_mcc: 208,
                plmn_mnc: 95,
                ..Default::default()
            });
            rlc.bearers.push(RlcBearerStats { rnti, drb_id: 1, ..Default::default() });
            pdcp.bearers.push(PdcpBearerStats { rnti, drb_id: 1, ..Default::default() });
        }
        KpiGen { rng, offset, tick: 0, mac, rlc, pdcp }
    }

    /// The phase the generator is currently in.
    pub fn phase(&self) -> Phase {
        match (self.tick + self.offset) % CYCLE {
            t if t < QUIET_LEN => Phase::Quiet,
            t if t < QUIET_LEN + ACTIVE_LEN => Phase::Active,
            _ => Phase::Burst,
        }
    }

    /// Advances one report period to `now_ms` and updates the snapshots.
    ///
    /// Timestamps always move (they are excluded from the delta content
    /// hash, matching the wire format); the KPI content moves per phase.
    pub fn step(&mut self, now_ms: u64) {
        self.tick += 1;
        let phase = self.phase();
        self.mac.tstamp_ms = now_ms;
        self.rlc.tstamp_ms = now_ms;
        self.pdcp.tstamp_ms = now_ms;
        match phase {
            Phase::Quiet => {}
            Phase::Active => {
                // A sparse update: each UE has a ~1-in-4 chance of traffic
                // this period, and a moving UE touches only a few fields.
                for i in 0..self.mac.ues.len() {
                    if !self.rng.chance(1, 4) {
                        continue;
                    }
                    let bytes = 1_000 + self.rng.below(20_000);
                    let u = &mut self.mac.ues[i];
                    u.prbs_dl = (bytes / 400) as u32;
                    u.tbs_dl_bytes = bytes;
                    u.dl_aggr_bytes = u.dl_aggr_bytes.wrapping_add(bytes);
                    u.dl_backlog_bytes = self.rng.below(40_000);
                    if self.rng.chance(1, 8) {
                        u.cqi = self.rng.below(16) as u8;
                        u.mcs = self.rng.below(29) as u8;
                    }
                    let b = &mut self.rlc.bearers[i];
                    b.tx_pdus += 1 + bytes / 1_400;
                    b.tx_bytes += bytes;
                    b.buffer_bytes = self.rng.below(30_000);
                    b.sojourn_us_avg = 500 + self.rng.below(5_000);
                    let p = &mut self.pdcp.bearers[i];
                    p.tx_pdus += 1 + bytes / 1_400;
                    p.tx_bytes += bytes;
                    p.tx_aggr_bytes = p.tx_aggr_bytes.wrapping_add(bytes);
                }
            }
            Phase::Burst => {
                // Everything moves, and the anomaly KPIs pierce the
                // adaptive thresholds.
                for i in 0..self.mac.ues.len() {
                    let bytes = 50_000 + self.rng.below(100_000);
                    let u = &mut self.mac.ues[i];
                    u.prbs_dl = 100;
                    u.prbs_ul = 50;
                    u.tbs_dl_bytes = bytes;
                    u.tbs_ul_bytes = bytes / 4;
                    u.dl_aggr_bytes = u.dl_aggr_bytes.wrapping_add(bytes);
                    u.ul_aggr_bytes = u.ul_aggr_bytes.wrapping_add(bytes / 4);
                    u.bsr = self.rng.below(1 << 20) as u32;
                    u.dl_backlog_bytes = BURST_BACKLOG_BYTES + self.rng.below(200_000);
                    let b = &mut self.rlc.bearers[i];
                    b.tx_pdus += bytes / 1_400;
                    b.tx_bytes += bytes;
                    b.retx_pdus += self.rng.below(10);
                    b.dropped_pdus += self.rng.below(3);
                    b.buffer_bytes = 200_000 + self.rng.below(100_000);
                    b.buffer_pkts = (b.buffer_bytes / 1_400) as u32;
                    b.sojourn_us_avg = BURST_SOJOURN_US + self.rng.below(100_000);
                    b.sojourn_us_max = b.sojourn_us_avg * 2;
                    let p = &mut self.pdcp.bearers[i];
                    p.tx_pdus += bytes / 1_400;
                    p.tx_bytes += bytes;
                    p.rx_pdus += bytes / 5_600;
                    p.rx_bytes += bytes / 4;
                    p.tx_aggr_bytes = p.tx_aggr_bytes.wrapping_add(bytes);
                    p.rx_aggr_bytes = p.rx_aggr_bytes.wrapping_add(bytes / 4);
                }
            }
        }
    }

    /// The current MAC snapshot.
    pub fn mac(&self) -> &MacStatsInd {
        &self.mac
    }

    /// The current RLC snapshot.
    pub fn rlc(&self) -> &RlcStatsInd {
        &self.rlc
    }

    /// The current PDCP snapshot.
    pub fn pdcp(&self) -> &PdcpStatsInd {
        &self.pdcp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexric_sm::delta::content_hash;

    #[test]
    fn deterministic_across_instances() {
        let mut a = KpiGen::new(7, 8);
        let mut b = KpiGen::new(7, 8);
        for t in 0..300 {
            a.step(t);
            b.step(t);
        }
        assert_eq!(a.mac(), b.mac());
        assert_eq!(a.rlc(), b.rlc());
        assert_eq!(a.pdcp(), b.pdcp());
    }

    #[test]
    fn quiet_phase_freezes_content() {
        let mut g = KpiGen::new(3, 4);
        let mut seen_frozen = false;
        let mut prev = content_hash(g.mac());
        for t in 1..400u64 {
            g.step(t);
            let h = content_hash(g.mac());
            if g.phase() == Phase::Quiet && h == prev {
                seen_frozen = true;
            }
            // Timestamps still advance even when content is frozen.
            assert_eq!(g.mac().tstamp_ms, t);
            prev = h;
        }
        assert!(seen_frozen, "quiet phase never froze the MAC content hash");
    }

    #[test]
    fn burst_phase_crosses_anomaly_thresholds() {
        let mut g = KpiGen::new(11, 4);
        let mut seen_burst = false;
        for t in 0..300u64 {
            g.step(t);
            if g.phase() == Phase::Burst {
                seen_burst = true;
                assert!(g.mac().ues.iter().all(|u| u.dl_backlog_bytes >= BURST_BACKLOG_BYTES));
                assert!(g.rlc().bearers.iter().all(|b| b.sojourn_us_avg >= BURST_SOJOURN_US));
            }
        }
        assert!(seen_burst, "schedule never reached a burst phase");
    }

    #[test]
    fn phases_all_occur_and_fleet_desyncs() {
        let mut quiet = 0u32;
        let mut active = 0u32;
        let mut burst = 0u32;
        let mut g = KpiGen::new(1, 2);
        for t in 0..(3 * CYCLE) {
            g.step(t);
            match g.phase() {
                Phase::Quiet => quiet += 1,
                Phase::Active => active += 1,
                Phase::Burst => burst += 1,
            }
        }
        assert!(quiet > 0 && active > 0 && burst > 0);
        // Different seeds land on different offsets (desynchronized fleet).
        let offs: std::collections::HashSet<u64> =
            (0..32).map(|s| KpiGen::new(s, 1).offset).collect();
        assert!(offs.len() > 8, "fleet offsets collapsed: {}", offs.len());
    }
}
