//! Deterministic event-driven scenario engine over [`crate::sim::Sim`].
//!
//! The paper's experiments (and every robustness PR since) exercise a
//! *static* UE population; a RIC earns its keep reacting to a *moving*
//! one.  This module layers the three dynamics that matter on top of the
//! TTI simulator, all driven from one seedable xorshift64* PRNG and the
//! simulation's virtual clock — no wall-clock anywhere, so the same seed
//! reproduces the same event trace bit-for-bit:
//!
//! * **mobility** — a random-waypoint model over a linear cell layout
//!   with a log-distance path-loss proxy; an A3-style measurement rule
//!   (neighbor RSRP above serving by a hysteresis for a time-to-trigger)
//!   hands UEs over via [`Sim::handover`], which moves RLC queues and
//!   slice binding and emits RRC HandoverOut/In into the SM event path;
//!   link adaptation follows distance, so cell-edge UEs drag down slice
//!   throughput exactly the way an SLA controller must notice;
//! * **churn** — Poisson UE arrival/departure with a diurnal rate curve
//!   and per-UE traffic profiles (VoIP CBR, bursty on/off, greedy TCP)
//!   composed onto [`crate::traffic`] flows;
//! * **cell outage/recovery** — scheduled events that force the victims
//!   onto neighbor cells and tell the embedding layer (via the drained
//!   event stream) to drop the owning agent's transport, so the
//!   reconnect-grace + resubscribe-replay machinery gets a live workout.
//!
//! Like `kpi.rs`, this module avoids every dependency outside `std`,
//! `flexric-sm` and `flexric-obs`, so the offline harness compiles and
//! runs the whole crate (engine included) under bare `rustc`.

use std::collections::BinaryHeap;
use std::collections::HashMap;

use crate::cell::{CellConfig, UeConfig};
use crate::phy::Rat;
use crate::sim::{PathConfig, Sim};
use crate::traffic::{FlowConfig, FlowKind};
use flexric_sm::slice::{SliceConf, SliceCtrl, SliceParams, UeSchedAlgo};

// ---------------------------------------------------------------------------
// PRNG (xorshift64*, same recipe as kpi.rs — deliberately duplicated so
// both modules stay standalone-compilable)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }

    /// Uniform integer below `n`.
    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next() % n
        }
    }

    /// Exponential inter-event time with the given mean, in whole
    /// milliseconds, clamped to `[1, 50 * mean]` so one unlucky draw
    /// cannot stall a scenario.
    fn exp_ms(&mut self, mean_ms: u64) -> u64 {
        let mean = mean_ms.max(1) as f64;
        let u = self.unit().clamp(1e-12, 1.0 - 1e-12);
        ((-(1.0 - u).ln() * mean) as u64).clamp(1, mean_ms.max(1) * 50)
    }

    /// Weighted choice over `weights`; returns the index.
    fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|w| *w as u64).sum();
        if total == 0 {
            return 0;
        }
        let mut pick = self.below(total);
        for (i, w) in weights.iter().enumerate() {
            if pick < *w as u64 {
                return i;
            }
            pick -= *w as u64;
        }
        weights.len() - 1
    }
}

// ---------------------------------------------------------------------------
// Spec
// ---------------------------------------------------------------------------

/// One scheduled cell outage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageSpec {
    /// Virtual time the cell goes dark.
    pub at_ms: u64,
    /// Victim cell index.
    pub cell: usize,
    /// Outage duration; recovery is emitted at `at_ms + dur_ms`.
    pub dur_ms: u64,
}

/// One NVS capacity slice the scenario installs on every cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceSpec {
    /// Slice id.
    pub id: u32,
    /// Initial NVS capacity share, milli-units.
    pub share_milli: u32,
    /// Human label (also used by the SLA xApp's reports).
    pub label: String,
}

/// Random-waypoint mobility parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MobilityCfg {
    /// Position/measurement update cadence (virtual ms).
    pub step_ms: u64,
    /// Minimum UE speed, m/s.
    pub speed_min_mps: f64,
    /// Maximum UE speed, m/s.
    pub speed_max_mps: f64,
    /// A3 hysteresis: neighbor must beat serving by this many dB.
    pub a3_hyst_db: f64,
    /// A3 time-to-trigger: the offset must hold this long.
    pub a3_ttt_ms: u64,
}

impl Default for MobilityCfg {
    fn default() -> Self {
        MobilityCfg {
            step_ms: 100,
            speed_min_mps: 1.0,
            speed_max_mps: 8.0,
            a3_hyst_db: 3.0,
            a3_ttt_ms: 300,
        }
    }
}

/// Poisson churn parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnCfg {
    /// Mean inter-arrival time at the base rate (virtual ms); 0 disables
    /// arrivals.
    pub arrival_mean_ms: u64,
    /// Mean UE lifetime (virtual ms).
    pub stay_mean_ms: u64,
    /// Attached-UE cap; arrivals beyond it are rejected (and counted).
    pub max_ues: usize,
    /// Relative weights of the [`TrafficProfile`]s (voip, bursty, greedy).
    pub profile_weights: [u32; 3],
    /// Diurnal curve: `(from_ms, permille)` steps scaling the arrival
    /// *rate* (2000 = twice the base rate).  Empty = flat.
    pub diurnal: Vec<(u64, u32)>,
}

impl Default for ChurnCfg {
    fn default() -> Self {
        ChurnCfg {
            arrival_mean_ms: 2_000,
            stay_mean_ms: 15_000,
            max_ues: 48,
            profile_weights: [2, 1, 1],
            diurnal: Vec::new(),
        }
    }
}

/// A declarative scenario description; build one with the struct-update
/// syntax, a preset, or [`ScenarioSpec::parse`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (shows up in benches and traces).
    pub name: String,
    /// PRNG seed; same seed ⇒ identical event trace.
    pub seed: u64,
    /// Number of cells, laid out on a line.
    pub cells: usize,
    /// PRBs per cell (NR numerology).
    pub prbs: u32,
    /// Inter-site distance in meters.
    pub isd_m: f64,
    /// UEs attached at t = 0.
    pub initial_ues: usize,
    /// Slices installed on every cell (empty = no slicing).
    pub slices: Vec<SliceSpec>,
    /// Mobility model.
    pub mobility: MobilityCfg,
    /// Churn model.
    pub churn: ChurnCfg,
    /// Scheduled outages.
    pub outages: Vec<OutageSpec>,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            name: "custom".to_owned(),
            seed: 1,
            cells: 2,
            prbs: 106,
            isd_m: 500.0,
            initial_ues: 6,
            slices: Vec::new(),
            mobility: MobilityCfg::default(),
            churn: ChurnCfg::default(),
            outages: Vec::new(),
        }
    }
}

/// The default three-slice layout used by the presets: VoIP, bursty web,
/// and best-effort greedy, with intentionally skewed initial shares so
/// an SLA loop has something to fix.
pub fn default_slices() -> Vec<SliceSpec> {
    vec![
        SliceSpec { id: 0, share_milli: 150, label: "voip".to_owned() },
        SliceSpec { id: 1, share_milli: 250, label: "web".to_owned() },
        SliceSpec { id: 2, share_milli: 600, label: "mbb".to_owned() },
    ]
}

impl ScenarioSpec {
    /// Quiet suburb: slow walkers, light churn, no outages.
    pub fn calm(seed: u64) -> Self {
        ScenarioSpec {
            name: "calm".to_owned(),
            seed,
            cells: 2,
            initial_ues: 8,
            slices: default_slices(),
            mobility: MobilityCfg { speed_min_mps: 0.5, speed_max_mps: 3.0, ..Default::default() },
            churn: ChurnCfg { arrival_mean_ms: 4_000, stay_mean_ms: 20_000, ..Default::default() },
            ..Default::default()
        }
    }

    /// Commuter rush: fast UEs streaming between cells while the arrival
    /// rate ramps up and back down — the load keeps shifting between
    /// cells and slices.
    pub fn commuter_rush(seed: u64) -> Self {
        ScenarioSpec {
            name: "commuter-rush".to_owned(),
            seed,
            cells: 3,
            initial_ues: 9,
            slices: default_slices(),
            mobility: MobilityCfg {
                speed_min_mps: 12.0,
                speed_max_mps: 28.0,
                a3_ttt_ms: 200,
                ..Default::default()
            },
            churn: ChurnCfg {
                arrival_mean_ms: 1_500,
                stay_mean_ms: 12_000,
                max_ues: 60,
                profile_weights: [3, 2, 2],
                diurnal: vec![(0, 400), (5_000, 1_200), (10_000, 2_500), (20_000, 1_000)],
            },
            ..Default::default()
        }
    }

    /// Flash crowd: a sudden arrival burst plus a mid-run cell outage
    /// that dumps one cell's UEs onto its neighbors.
    pub fn flash_crowd(seed: u64) -> Self {
        ScenarioSpec {
            name: "flash-crowd".to_owned(),
            seed,
            cells: 3,
            initial_ues: 6,
            slices: default_slices(),
            mobility: MobilityCfg { speed_min_mps: 1.0, speed_max_mps: 6.0, ..Default::default() },
            churn: ChurnCfg {
                arrival_mean_ms: 2_500,
                stay_mean_ms: 10_000,
                max_ues: 60,
                profile_weights: [1, 2, 3],
                diurnal: vec![(0, 500), (8_000, 4_000), (16_000, 900)],
            },
            outages: vec![OutageSpec { at_ms: 12_000, cell: 1, dur_ms: 4_000 }],
            ..Default::default()
        }
    }

    /// Resolves a preset by name.
    pub fn preset(name: &str, seed: u64) -> Option<Self> {
        match name {
            "calm" => Some(Self::calm(seed)),
            "commuter-rush" => Some(Self::commuter_rush(seed)),
            "flash-crowd" => Some(Self::flash_crowd(seed)),
            _ => None,
        }
    }

    /// Parses the TOML-ish scenario format: `[section]` headers with
    /// `key = value` lines, `#` comments.  Sections: `[scenario]`
    /// (name/seed/cells/prbs/isd_m/initial_ues/preset), `[mobility]`,
    /// `[churn]` (diurnal as `from:permille,from:permille,…`),
    /// `[slice]` (repeatable: id/share_milli/label) and `[outage]`
    /// (repeatable: at_ms/cell/dur_ms).  A `preset` key seeds the spec
    /// from that preset before the remaining keys override it.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut spec = ScenarioSpec::default();
        let mut section = String::from("scenario");
        let mut explicit_slices = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_owned();
                match section.as_str() {
                    "slice" => {
                        if !explicit_slices {
                            explicit_slices = true;
                            spec.slices.clear();
                        }
                        spec.slices.push(SliceSpec {
                            id: spec.slices.len() as u32,
                            share_milli: 0,
                            label: String::new(),
                        });
                    }
                    "outage" => {
                        spec.outages.push(OutageSpec { at_ms: 0, cell: 0, dur_ms: 1_000 });
                    }
                    _ => {}
                }
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
            let (key, value) = (key.trim(), value.trim().trim_matches('"'));
            let bad = |what: &str| format!("line {}: bad {what} `{value}`", lineno + 1);
            let as_u64 = |v: &str| v.parse::<u64>().map_err(|_| bad("integer"));
            let as_f64 = |v: &str| v.parse::<f64>().map_err(|_| bad("number"));
            match (section.as_str(), key) {
                ("scenario", "preset") => {
                    spec = Self::preset(value, spec.seed)
                        .ok_or_else(|| format!("line {}: unknown preset `{value}`", lineno + 1))?;
                }
                ("scenario", "name") => spec.name = value.to_owned(),
                ("scenario", "seed") => spec.seed = as_u64(value)?,
                ("scenario", "cells") => spec.cells = as_u64(value)? as usize,
                ("scenario", "prbs") => spec.prbs = as_u64(value)? as u32,
                ("scenario", "isd_m") => spec.isd_m = as_f64(value)?,
                ("scenario", "initial_ues") => spec.initial_ues = as_u64(value)? as usize,
                ("mobility", "step_ms") => spec.mobility.step_ms = as_u64(value)?,
                ("mobility", "speed_min_mps") => spec.mobility.speed_min_mps = as_f64(value)?,
                ("mobility", "speed_max_mps") => spec.mobility.speed_max_mps = as_f64(value)?,
                ("mobility", "a3_hyst_db") => spec.mobility.a3_hyst_db = as_f64(value)?,
                ("mobility", "a3_ttt_ms") => spec.mobility.a3_ttt_ms = as_u64(value)?,
                ("churn", "arrival_mean_ms") => spec.churn.arrival_mean_ms = as_u64(value)?,
                ("churn", "stay_mean_ms") => spec.churn.stay_mean_ms = as_u64(value)?,
                ("churn", "max_ues") => spec.churn.max_ues = as_u64(value)? as usize,
                ("churn", "profile_weights") => {
                    let mut it = value.split(',').map(|w| w.trim().parse::<u32>());
                    for slot in spec.churn.profile_weights.iter_mut() {
                        *slot =
                            it.next().ok_or_else(|| bad("weights"))?.map_err(|_| bad("weights"))?;
                    }
                }
                ("churn", "diurnal") => {
                    spec.churn.diurnal.clear();
                    for part in value.split(',').filter(|p| !p.trim().is_empty()) {
                        let (from, permille) =
                            part.split_once(':').ok_or_else(|| bad("diurnal"))?;
                        spec.churn.diurnal.push((
                            from.trim().parse().map_err(|_| bad("diurnal"))?,
                            permille.trim().parse().map_err(|_| bad("diurnal"))?,
                        ));
                    }
                }
                ("slice", "id") => {
                    spec.slices.last_mut().ok_or_else(|| bad("slice"))?.id = as_u64(value)? as u32;
                }
                ("slice", "share_milli") => {
                    spec.slices.last_mut().ok_or_else(|| bad("slice"))?.share_milli =
                        as_u64(value)? as u32;
                }
                ("slice", "label") => {
                    spec.slices.last_mut().ok_or_else(|| bad("slice"))?.label = value.to_owned();
                }
                ("outage", "at_ms") => {
                    spec.outages.last_mut().ok_or_else(|| bad("outage"))?.at_ms = as_u64(value)?;
                }
                ("outage", "cell") => {
                    spec.outages.last_mut().ok_or_else(|| bad("outage"))?.cell =
                        as_u64(value)? as usize;
                }
                ("outage", "dur_ms") => {
                    spec.outages.last_mut().ok_or_else(|| bad("outage"))?.dur_ms = as_u64(value)?;
                }
                _ => return Err(format!("line {}: unknown key `{section}.{key}`", lineno + 1)),
            }
        }
        if spec.cells == 0 {
            return Err("scenario needs at least one cell".to_owned());
        }
        Ok(spec)
    }
}

// ---------------------------------------------------------------------------
// Events + traffic profiles
// ---------------------------------------------------------------------------

/// Per-UE traffic profile attached at arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficProfile {
    /// G.711-like CBR VoIP (~69 kbit/s).
    Voip,
    /// On/off bursty CBR (~4.8 Mbit/s while on).
    Bursty,
    /// Greedy TCP (Cubic), takes whatever the slice gives it.
    Greedy,
}

impl TrafficProfile {
    fn of(idx: usize) -> TrafficProfile {
        match idx {
            0 => TrafficProfile::Voip,
            1 => TrafficProfile::Bursty,
            _ => TrafficProfile::Greedy,
        }
    }

    fn flow_kind(self) -> FlowKind {
        match self {
            TrafficProfile::Voip => FlowKind::Cbr { bytes: 172, interval_ms: 20 },
            TrafficProfile::Bursty => FlowKind::Cbr { bytes: 6_000, interval_ms: 10 },
            TrafficProfile::Greedy => FlowKind::GreedyTcp { mss: 1_500 },
        }
    }
}

/// One entry of the scenario's event trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioEvent {
    /// A UE arrived and attached to `cell`.
    UeArrive {
        /// The UE.
        rnti: u16,
        /// Attach cell.
        cell: usize,
        /// Traffic profile it brings.
        profile: TrafficProfile,
    },
    /// A UE departed from `cell`.
    UeDepart {
        /// The UE.
        rnti: u16,
        /// Cell it left from.
        cell: usize,
    },
    /// An A3 (or outage-forced) handover moved a UE.
    Handover {
        /// The UE.
        rnti: u16,
        /// Source cell.
        from: usize,
        /// Target cell.
        to: usize,
        /// `true` when forced by an outage rather than A3.
        forced: bool,
    },
    /// A cell went dark; the embedding layer should drop the owning
    /// agent's transport (e.g. via `transport::fault` or an agent stop).
    CellOutage {
        /// The victim.
        cell: usize,
    },
    /// An outaged cell came back; the owning agent should reconnect.
    CellRecover {
        /// The survivor.
        cell: usize,
    },
}

/// Counters the engine keeps alongside the trace (also mirrored into the
/// global obs registry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScenarioStats {
    /// Handover count (A3 + forced).
    pub handovers: u64,
    /// Arrivals admitted.
    pub arrivals: u64,
    /// Arrivals rejected by the `max_ues` cap.
    pub rejected: u64,
    /// Departures.
    pub departures: u64,
    /// Outages started.
    pub outages: u64,
}

struct ScenarioObs {
    handovers: flexric_obs::Counter,
    arrivals: flexric_obs::Counter,
    departures: flexric_obs::Counter,
    outages: flexric_obs::Counter,
}

fn obs() -> &'static ScenarioObs {
    static OBS: std::sync::OnceLock<ScenarioObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| ScenarioObs {
        handovers: flexric_obs::counter(
            "flexric_scenario_handovers_total",
            "Handovers executed by the scenario engine (A3 + outage-forced)",
        ),
        arrivals: flexric_obs::counter_with(
            "flexric_scenario_churn_total",
            &[("dir", "arrive")],
            "Scenario churn events by direction",
        ),
        departures: flexric_obs::counter_with(
            "flexric_scenario_churn_total",
            &[("dir", "depart")],
            "Scenario churn events by direction",
        ),
        outages: flexric_obs::counter(
            "flexric_scenario_outages_total",
            "Cell outages injected by the scenario engine",
        ),
    })
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// Reference transmit power for the RSRP proxy (dBm).
const TX_POWER_DBM: f64 = 30.0;

/// Log-distance path loss (3GPP urban-macro flavored):
/// `128.1 + 37.6 log10(d_km)`.
fn rsrp_dbm(dist_m: f64) -> f64 {
    let d_km = (dist_m.max(10.0)) / 1000.0;
    TX_POWER_DBM - (128.1 + 37.6 * d_km.log10())
}

/// Link adaptation: RSRP proxy → MCS (and a CQI to match).
fn mcs_of(rsrp: f64, rat: Rat) -> (u8, u8) {
    let mcs: u8 = if rsrp >= -78.0 {
        27
    } else if rsrp >= -84.0 {
        24
    } else if rsrp >= -90.0 {
        20
    } else if rsrp >= -96.0 {
        16
    } else if rsrp >= -102.0 {
        11
    } else if rsrp >= -108.0 {
        7
    } else {
        3
    };
    let mcs = match rat {
        Rat::Lte => mcs.min(28),
        Rat::Nr => mcs.min(27),
    };
    (mcs, (mcs / 2 + 1).min(15))
}

/// Per-UE mobility + bookkeeping state.
#[derive(Debug)]
struct UeState {
    x: f64,
    y: f64,
    wp_x: f64,
    wp_y: f64,
    speed_mps: f64,
    serving: usize,
    /// A3 condition start (per current best neighbor), if ongoing.
    a3_since: Option<(usize, u64)>,
    flow: usize,
    /// Bursty on/off toggle time (virtual ms), if the profile toggles.
    next_toggle_ms: Option<u64>,
    flow_on: bool,
}

/// The scenario engine.  Create it from a spec, [`ScenarioEngine::build_sim`]
/// the matching simulation, [`ScenarioEngine::prime`] the initial
/// population, then interleave `sim.tick()` with
/// [`ScenarioEngine::advance`].
pub struct ScenarioEngine {
    spec: ScenarioSpec,
    rng: Rng,
    now_ms: u64,
    ues: HashMap<u16, UeState>,
    next_rnti: u16,
    next_arrival_ms: u64,
    /// `(depart_at, rnti)`, min-heap.
    departures: BinaryHeap<std::cmp::Reverse<(u64, u16)>>,
    /// Outage schedule, sorted by time; `next_outage` indexes into it.
    outages: Vec<OutageSpec>,
    next_outage: usize,
    /// `(recover_at, cell)`, min-heap.
    recoveries: BinaryHeap<std::cmp::Reverse<(u64, usize)>>,
    down: Vec<bool>,
    trace: Vec<(u64, ScenarioEvent)>,
    drained: usize,
    /// Aggregate counters (also mirrored to obs).
    pub stats: ScenarioStats,
}

impl ScenarioEngine {
    /// Creates an engine (and registers its obs series).
    pub fn new(spec: ScenarioSpec) -> Self {
        let _ = obs();
        let mut outages = spec.outages.clone();
        outages.sort_by_key(|o| o.at_ms);
        let seed = spec.seed;
        let cells = spec.cells;
        let mut eng = ScenarioEngine {
            spec,
            rng: Rng::new(seed),
            now_ms: 0,
            ues: HashMap::new(),
            next_rnti: 0x4601,
            next_arrival_ms: 0,
            departures: BinaryHeap::new(),
            outages,
            next_outage: 0,
            recoveries: BinaryHeap::new(),
            down: vec![false; cells],
            trace: Vec::new(),
            drained: 0,
            stats: ScenarioStats::default(),
        };
        eng.next_arrival_ms = eng.sample_arrival(0);
        eng
    }

    /// The spec this engine runs.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Builds the simulation matching the spec (cells on a line).
    pub fn build_sim(&self) -> Sim {
        let cfgs = (0..self.spec.cells)
            .map(|i| CellConfig::nr(&format!("cell{i}"), self.spec.prbs))
            .collect();
        Sim::new(cfgs, PathConfig::default())
    }

    /// Cell site x-coordinate (linear layout, y = 0).
    fn site_x(&self, cell: usize) -> f64 {
        self.spec.isd_m * (cell as f64 + 0.5)
    }

    fn rsrp_to(&self, cell: usize, x: f64, y: f64) -> f64 {
        let dx = x - self.site_x(cell);
        rsrp_dbm((dx * dx + y * y).sqrt())
    }

    /// Picks the next waypoint: the vicinity of a random site, so
    /// trajectories run along the cell line and cross A3 contours —
    /// uniform waypoints over the whole field would leave most UEs
    /// dithering mid-cell, never handing over within realistic stays.
    fn pick_waypoint(&mut self) -> (f64, f64) {
        let cell = self.rng.below(self.spec.cells as u64) as usize;
        let jitter = self.spec.isd_m / 4.0;
        let w = self.spec.isd_m * self.spec.cells as f64;
        let x = (self.site_x(cell) + self.rng.range(-jitter, jitter)).clamp(0.0, w);
        let y = self.rng.range(-self.spec.isd_m / 8.0, self.spec.isd_m / 8.0);
        (x, y)
    }

    /// Strongest *active* cell at a position, with its RSRP.
    fn best_cell(&self, x: f64, y: f64, exclude: Option<usize>) -> Option<(usize, f64)> {
        (0..self.spec.cells)
            .filter(|c| !self.down[*c] && Some(*c) != exclude)
            .map(|c| (c, self.rsrp_to(c, x, y)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Installs the spec's slices on every cell and attaches the initial
    /// UE population.  Call once, before the first tick.
    pub fn prime(&mut self, sim: &mut Sim) {
        if !self.spec.slices.is_empty() {
            let slices: Vec<SliceConf> = self
                .spec
                .slices
                .iter()
                .map(|s| SliceConf {
                    id: s.id,
                    label: s.label.clone(),
                    params: SliceParams::NvsCapacity { share_milli: s.share_milli },
                    ue_sched: UeSchedAlgo::PropFair,
                })
                .collect();
            for cell in &mut sim.cells {
                cell.apply_slice_ctrl(&SliceCtrl::SetAlgo {
                    algo: flexric_sm::slice::SliceAlgo::Nvs,
                })
                .expect("set NVS");
                cell.apply_slice_ctrl(&SliceCtrl::AddModSlices { slices: slices.clone() })
                    .expect("spec slices within budget");
            }
        }
        for _ in 0..self.spec.initial_ues {
            self.spawn_ue(sim, 0);
        }
    }

    /// Processes every scenario event due up to (and including) the
    /// simulation's current time.  Call after each `sim.tick()` (or a
    /// batch of ticks — the engine catches up).
    pub fn advance(&mut self, sim: &mut Sim) {
        let target = sim.now_ms();
        while self.now_ms < target {
            let t = self.now_ms;
            self.step_outages(sim, t);
            self.step_churn(sim, t);
            self.step_traffic(sim, t);
            if self.spec.mobility.step_ms > 0 && t % self.spec.mobility.step_ms == 0 {
                self.step_mobility(sim, t);
            }
            self.now_ms += 1;
        }
    }

    /// Whether a cell is currently in outage.
    pub fn cell_down(&self, cell: usize) -> bool {
        self.down.get(cell).copied().unwrap_or(false)
    }

    /// Currently attached UE count.
    pub fn ue_count(&self) -> usize {
        self.ues.len()
    }

    /// Events emitted since the last drain (for the embedding layer —
    /// e.g. mapping outages onto agent transports).
    pub fn drain_events(&mut self) -> Vec<(u64, ScenarioEvent)> {
        let out = self.trace[self.drained..].to_vec();
        self.drained = self.trace.len();
        out
    }

    /// The full trace since engine creation.
    pub fn trace(&self) -> &[(u64, ScenarioEvent)] {
        &self.trace
    }

    /// FNV-1a hash over the full event trace; equal seeds must yield
    /// equal hashes (the determinism contract).
    pub fn trace_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (t, ev) in &self.trace {
            for b in format!("{t}:{ev:?};").bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1_0000_01b3);
            }
        }
        h
    }

    fn emit(&mut self, t: u64, ev: ScenarioEvent) {
        self.trace.push((t, ev));
    }

    // -- churn ----------------------------------------------------------

    /// Current diurnal rate multiplier in permille.
    fn rate_permille(&self, t: u64) -> u32 {
        let mut permille = 1_000;
        for (from, p) in &self.spec.churn.diurnal {
            if t >= *from {
                permille = *p;
            }
        }
        permille.max(1)
    }

    fn sample_arrival(&mut self, t: u64) -> u64 {
        if self.spec.churn.arrival_mean_ms == 0 {
            return u64::MAX;
        }
        let scaled = (self.spec.churn.arrival_mean_ms as u128 * 1_000
            / self.rate_permille(t) as u128)
            .max(1) as u64;
        t + self.rng.exp_ms(scaled)
    }

    fn spawn_ue(&mut self, sim: &mut Sim, t: u64) {
        if self.ues.len() >= self.spec.churn.max_ues {
            self.stats.rejected += 1;
            return;
        }
        let (w, h) = (self.spec.isd_m * self.spec.cells as f64, self.spec.isd_m / 2.0);
        let (x, y) = (self.rng.range(0.0, w), self.rng.range(-h, h));
        let Some((cell, rsrp)) = self.best_cell(x, y, None) else {
            self.stats.rejected += 1;
            return;
        };
        let rnti = self.next_rnti;
        self.next_rnti = self.next_rnti.wrapping_add(1).max(0x4601);
        let profile_idx = self.rng.weighted(&self.spec.churn.profile_weights);
        let profile = TrafficProfile::of(profile_idx);
        let (mcs, cqi) = mcs_of(rsrp, Rat::Nr);
        let slice = if self.spec.slices.is_empty() {
            None
        } else {
            Some(self.spec.slices[profile_idx % self.spec.slices.len()].id)
        };
        let mut cfg = UeConfig::new(rnti, mcs);
        cfg.cqi = cqi;
        cfg.snssai = slice;
        sim.attach_ue(cell, cfg);
        if let Some(slice) = slice {
            sim.cells[cell]
                .apply_slice_ctrl(&SliceCtrl::AssocUeSlice { assoc: vec![(rnti, slice)] })
                .expect("slice installed at prime");
        }
        let flow = sim.add_flow(FlowConfig {
            cell,
            rnti,
            drb: 1,
            kind: profile.flow_kind(),
            tuple: (0x0A00_0001, 0x0A01_0000 + rnti as u32, 1_000, 5_000 + profile_idx as u16, 17),
            start_ms: t,
            stop_ms: None,
        });
        let speed =
            self.rng.range(self.spec.mobility.speed_min_mps, self.spec.mobility.speed_max_mps);
        let (wp_x, wp_y) = self.pick_waypoint();
        let next_toggle =
            matches!(profile, TrafficProfile::Bursty).then(|| t + self.rng.exp_ms(800));
        self.ues.insert(
            rnti,
            UeState {
                x,
                y,
                wp_x,
                wp_y,
                speed_mps: speed.max(0.1),
                serving: cell,
                a3_since: None,
                flow,
                next_toggle_ms: next_toggle,
                flow_on: true,
            },
        );
        let depart_at = t + self.rng.exp_ms(self.spec.churn.stay_mean_ms);
        self.departures.push(std::cmp::Reverse((depart_at, rnti)));
        self.stats.arrivals += 1;
        obs().arrivals.inc();
        self.emit(t, ScenarioEvent::UeArrive { rnti, cell, profile });
    }

    fn step_churn(&mut self, sim: &mut Sim, t: u64) {
        while self.next_arrival_ms <= t {
            self.spawn_ue(sim, t);
            self.next_arrival_ms = self.sample_arrival(t);
        }
        while let Some(std::cmp::Reverse((at, rnti))) = self.departures.peek().copied() {
            if at > t {
                break;
            }
            self.departures.pop();
            let Some(st) = self.ues.remove(&rnti) else { continue };
            sim.set_flow_active(st.flow, false);
            sim.detach_ue(st.serving, rnti);
            self.stats.departures += 1;
            obs().departures.inc();
            self.emit(t, ScenarioEvent::UeDepart { rnti, cell: st.serving });
        }
    }

    // -- traffic --------------------------------------------------------

    fn step_traffic(&mut self, sim: &mut Sim, t: u64) {
        for st in self.ues.values_mut() {
            let Some(toggle_at) = st.next_toggle_ms else { continue };
            if toggle_at > t {
                continue;
            }
            st.flow_on = !st.flow_on;
            sim.set_flow_active(st.flow, st.flow_on);
            // On ~40 % duty cycle: 800 ms bursts, 1200 ms gaps.
            let mean = if st.flow_on { 800 } else { 1_200 };
            st.next_toggle_ms = Some(t + self.rng.exp_ms(mean));
        }
    }

    // -- mobility -------------------------------------------------------

    fn step_mobility(&mut self, sim: &mut Sim, t: u64) {
        let dt_s = self.spec.mobility.step_ms as f64 / 1_000.0;
        let mut rntis: Vec<u16> = self.ues.keys().copied().collect();
        rntis.sort_unstable();
        for rnti in rntis {
            // Move toward the waypoint; arrived UEs pick a new one.
            let (x, y, serving) = {
                let st = self.ues.get_mut(&rnti).expect("present");
                let (dx, dy) = (st.wp_x - st.x, st.wp_y - st.y);
                let dist = (dx * dx + dy * dy).sqrt();
                let step = st.speed_mps * dt_s;
                if dist <= step {
                    st.x = st.wp_x;
                    st.y = st.wp_y;
                } else {
                    st.x += dx / dist * step;
                    st.y += dy / dist * step;
                }
                (st.x, st.y, st.serving)
            };
            if self.ues[&rnti].x == self.ues[&rnti].wp_x
                && self.ues[&rnti].y == self.ues[&rnti].wp_y
            {
                let (nx, ny) = self.pick_waypoint();
                let st = self.ues.get_mut(&rnti).expect("present");
                st.wp_x = nx;
                st.wp_y = ny;
            }
            // Link adaptation toward the serving cell.
            let serving_rsrp = self.rsrp_to(serving, x, y);
            let (mcs, cqi) = mcs_of(serving_rsrp, sim.cells[serving].cfg.rat);
            if let Some(ue) = sim.cells[serving].ues.iter_mut().find(|u| u.cfg.rnti == rnti) {
                ue.cfg.mcs = mcs;
                ue.cfg.cqi = cqi;
            }
            // A3 measurement rule against the best active neighbor.
            let Some((best, best_rsrp)) = self.best_cell(x, y, Some(serving)) else {
                continue;
            };
            let over = best_rsrp > serving_rsrp + self.spec.mobility.a3_hyst_db;
            let st = self.ues.get_mut(&rnti).expect("present");
            if !over || self.down[serving] {
                st.a3_since = None;
                continue;
            }
            match st.a3_since {
                Some((cand, since)) if cand == best => {
                    if t.saturating_sub(since) >= self.spec.mobility.a3_ttt_ms {
                        st.a3_since = None;
                        st.serving = best;
                        sim.handover(rnti, serving, best).expect("UE tracked in serving cell");
                        self.stats.handovers += 1;
                        obs().handovers.inc();
                        self.emit(
                            t,
                            ScenarioEvent::Handover {
                                rnti,
                                from: serving,
                                to: best,
                                forced: false,
                            },
                        );
                    }
                }
                _ => st.a3_since = Some((best, t)),
            }
        }
    }

    // -- outages --------------------------------------------------------

    fn step_outages(&mut self, sim: &mut Sim, t: u64) {
        while let Some(std::cmp::Reverse((at, cell))) = self.recoveries.peek().copied() {
            if at > t {
                break;
            }
            self.recoveries.pop();
            self.down[cell] = false;
            self.emit(t, ScenarioEvent::CellRecover { cell });
        }
        while self.next_outage < self.outages.len() && self.outages[self.next_outage].at_ms <= t {
            let o = self.outages[self.next_outage];
            self.next_outage += 1;
            if o.cell >= self.spec.cells
                || self.down[o.cell]
                || self.down.iter().filter(|d| !**d).count() <= 1
            {
                // Never darken the last active cell (or a dead index).
                continue;
            }
            self.down[o.cell] = true;
            self.stats.outages += 1;
            obs().outages.inc();
            self.emit(t, ScenarioEvent::CellOutage { cell: o.cell });
            self.recoveries.push(std::cmp::Reverse((o.at_ms + o.dur_ms.max(1), o.cell)));
            // Coverage-triggered handover: victims flee to the strongest
            // surviving cell.
            let mut victims: Vec<u16> = self
                .ues
                .iter()
                .filter(|(_, st)| st.serving == o.cell)
                .map(|(rnti, _)| *rnti)
                .collect();
            victims.sort_unstable();
            for rnti in victims {
                let (x, y) = {
                    let st = &self.ues[&rnti];
                    (st.x, st.y)
                };
                let Some((target, _)) = self.best_cell(x, y, Some(o.cell)) else { continue };
                let st = self.ues.get_mut(&rnti).expect("present");
                st.serving = target;
                st.a3_since = None;
                sim.handover(rnti, o.cell, target).expect("UE tracked in outaged cell");
                self.stats.handovers += 1;
                obs().handovers.inc();
                self.emit(
                    t,
                    ScenarioEvent::Handover { rnti, from: o.cell, to: target, forced: true },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(spec: ScenarioSpec, ms: u64) -> (ScenarioEngine, Sim) {
        let mut eng = ScenarioEngine::new(spec);
        let mut sim = eng.build_sim();
        eng.prime(&mut sim);
        for _ in 0..ms {
            sim.tick();
            eng.advance(&mut sim);
        }
        (eng, sim)
    }

    #[test]
    fn same_seed_same_trace() {
        let (a, _) = run(ScenarioSpec::commuter_rush(42), 8_000);
        let (b, _) = run(ScenarioSpec::commuter_rush(42), 8_000);
        assert_eq!(a.trace(), b.trace());
        assert_eq!(a.trace_hash(), b.trace_hash());
        assert!(!a.trace().is_empty(), "a rush scenario generates events");
    }

    #[test]
    fn different_seed_different_trace() {
        let (a, _) = run(ScenarioSpec::commuter_rush(1), 8_000);
        let (b, _) = run(ScenarioSpec::commuter_rush(2), 8_000);
        assert_ne!(a.trace_hash(), b.trace_hash());
    }

    #[test]
    fn ue_conservation_across_handovers() {
        let (eng, sim) = run(ScenarioSpec::commuter_rush(7), 10_000);
        let attached: usize = sim.cells.iter().map(|c| c.ues.len()).sum();
        assert_eq!(attached, eng.ue_count(), "engine and sim agree on the population");
        assert_eq!(
            attached as u64 + eng.stats.departures,
            eng.stats.arrivals,
            "arrivals = attached + departed (initial UEs count as arrivals)"
        );
        assert!(eng.stats.handovers > 0, "fast commuters hand over");
        // Every tracked UE is attached exactly where the engine thinks.
        for (rnti, st) in &eng.ues {
            assert!(
                sim.cells[st.serving].ues.iter().any(|u| u.cfg.rnti == *rnti),
                "UE {rnti:#x} tracked in cell {}",
                st.serving
            );
        }
    }

    #[test]
    fn poisson_interarrival_sanity() {
        let mut rng = Rng::new(99);
        let mean = 2_000u64;
        let n = 4_000;
        let total: u64 = (0..n).map(|_| rng.exp_ms(mean)).sum();
        let avg = total as f64 / n as f64;
        assert!((avg - mean as f64).abs() < mean as f64 * 0.1, "sample mean {avg:.0} vs {mean}");
    }

    #[test]
    fn outage_forces_handover_and_recovery() {
        let mut spec = ScenarioSpec::calm(5);
        spec.cells = 2;
        spec.initial_ues = 6;
        spec.churn.arrival_mean_ms = 0; // isolate the outage behavior
        spec.churn.stay_mean_ms = u64::MAX / 128; // nobody leaves
        spec.outages = vec![OutageSpec { at_ms: 1_000, cell: 0, dur_ms: 2_000 }];
        let (eng, sim) = run(spec, 4_000);
        assert_eq!(eng.stats.outages, 1);
        let outs: Vec<_> = eng
            .trace()
            .iter()
            .filter(|(_, e)| matches!(e, ScenarioEvent::CellOutage { .. }))
            .collect();
        assert_eq!(outs.len(), 1);
        assert!(
            eng.trace()
                .iter()
                .any(|(t, e)| *t == 3_000 && matches!(e, ScenarioEvent::CellRecover { cell: 0 })),
            "recovery emitted at outage end"
        );
        // During the outage every UE fled cell 0; afterwards mobility may
        // bring some back, but conservation must hold throughout.
        let attached: usize = sim.cells.iter().map(|c| c.ues.len()).sum();
        assert_eq!(attached, 6);
        assert!(!eng.cell_down(0), "cell recovered by the end");
    }

    #[test]
    fn never_darkens_the_last_cell() {
        let mut spec = ScenarioSpec::calm(5);
        spec.cells = 2;
        spec.outages = vec![
            OutageSpec { at_ms: 100, cell: 0, dur_ms: 5_000 },
            OutageSpec { at_ms: 200, cell: 1, dur_ms: 5_000 },
        ];
        let (eng, _) = run(spec, 1_000);
        assert_eq!(eng.stats.outages, 1, "second outage would darken the last active cell");
    }

    #[test]
    fn slices_installed_and_ues_associated() {
        let (eng, mut sim) = run(ScenarioSpec::flash_crowd(3), 3_000);
        assert!(!eng.spec().slices.is_empty());
        for cell in &mut sim.cells {
            let st = cell.slice_stats();
            assert_eq!(st.slices.len(), 3, "spec slices installed on every cell");
        }
        let assoc: Vec<u32> =
            sim.cells.iter().flat_map(|c| c.ues.iter().map(|u| u.slice)).collect();
        assert!(assoc.iter().all(|s| *s != u32::MAX), "every scenario UE is slice-bound");
    }

    #[test]
    fn traffic_flows_and_moves_bytes() {
        let (eng, sim) = run(ScenarioSpec::commuter_rush(11), 6_000);
        let delivered: u64 = (0..sim.flow_count()).map(|f| sim.flow(f).delivered_bytes).sum();
        assert!(delivered > 1_000_000, "scenario traffic moves data, got {delivered}");
        assert!(eng.stats.arrivals >= eng.spec().initial_ues as u64);
    }

    #[test]
    fn diurnal_curve_shifts_arrival_rate() {
        let mut quiet = ScenarioSpec::calm(17);
        quiet.initial_ues = 0; // prime() counts initial UEs as arrivals
        quiet.churn.arrival_mean_ms = 1_000;
        quiet.churn.diurnal = vec![(0, 200)]; // 0.2× base rate
        quiet.churn.max_ues = 1_000;
        quiet.churn.stay_mean_ms = u64::MAX / 128;
        let mut busy = quiet.clone();
        busy.churn.diurnal = vec![(0, 3_000)]; // 3× base rate
        let (q, _) = run(quiet, 10_000);
        let (b, _) = run(busy, 10_000);
        assert!(
            b.stats.arrivals > q.stats.arrivals * 4,
            "3× vs 0.2× rate must differ sharply: {} vs {}",
            b.stats.arrivals,
            q.stats.arrivals
        );
    }

    #[test]
    fn drain_events_is_incremental() {
        let mut eng = ScenarioEngine::new(ScenarioSpec::commuter_rush(9));
        let mut sim = eng.build_sim();
        eng.prime(&mut sim);
        for _ in 0..2_000 {
            sim.tick();
            eng.advance(&mut sim);
        }
        let first = eng.drain_events();
        assert!(!first.is_empty());
        assert!(eng.drain_events().is_empty(), "drained");
        for _ in 0..2_000 {
            sim.tick();
            eng.advance(&mut sim);
        }
        let second = eng.drain_events();
        assert_eq!(first.len() + second.len(), eng.trace().len());
    }

    #[test]
    fn parse_toml_ish_spec() {
        let text = r#"
            # SLA scenario
            [scenario]
            preset = "commuter-rush"
            seed = 77
            cells = 4
            [mobility]
            speed_max_mps = 20.0
            [churn]
            arrival_mean_ms = 900
            diurnal = 0:500, 4000:2000
            [outage]
            at_ms = 6000
            cell = 2
            dur_ms = 1500
        "#;
        let spec = ScenarioSpec::parse(text).expect("parses");
        assert_eq!(spec.name, "commuter-rush");
        assert_eq!(spec.seed, 77);
        assert_eq!(spec.cells, 4);
        assert_eq!(spec.mobility.speed_max_mps, 20.0);
        assert_eq!(spec.churn.arrival_mean_ms, 900);
        assert_eq!(spec.churn.diurnal, vec![(0, 500), (4_000, 2_000)]);
        assert_eq!(spec.outages.len(), 1, "preset had none, parse added one");
        assert_eq!(spec.outages[0].cell, 2);
        assert!(ScenarioSpec::parse("[scenario]\npreset = \"nope\"").is_err());
        assert!(ScenarioSpec::parse("[scenario]\ncells = 0").is_err());
        assert!(ScenarioSpec::parse("junk").is_err());
    }

    #[test]
    fn handovers_reach_kpm_and_rrc_surfaces() {
        let (_, mut sim) = run(ScenarioSpec::commuter_rush(21), 10_000);
        let ho_total: u64 = sim.cells.iter().map(|c| c.ho_out_total + c.ho_in_total).sum();
        assert!(ho_total > 0, "cells count handovers for the KPM surface");
        let events: usize = sim.cells.iter_mut().map(|c| c.take_rrc_events().len()).sum();
        assert!(events > 0, "RRC events pending for the RRC SM");
    }
}
