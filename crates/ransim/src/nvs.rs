//! Slice scheduling: NVS (Kokku et al., IEEE/ACM ToN 2012) and static
//! partitioning.
//!
//! NVS is the algorithm the paper's slicing experiments use (§6.1.2, §6.2,
//! Appendix B).  Every TTI it grants the whole slot to one slice — the one
//! with the highest weight:
//!
//! * a **capacity slice** with share `c` has weight `c / e`, where `e` is
//!   an exponentially weighted average of the fraction of slots the slice
//!   has received;
//! * a **rate slice** with reserved rate `r_rsv` over reference rate
//!   `r_ref` has weight `r_rsv / r_avg`, where `r_avg` is the slice's
//!   exponentially averaged throughput.
//!
//! Admission control enforces `Σ c + Σ r_rsv/r_ref ≤ 1`.  With *sharing*
//! enabled (work-conserving, the paper's Fig. 13b lower plot) slices
//! without backlog are skipped; without sharing the winning slice keeps
//! its slot even when idle, wasting it (Fig. 13b upper plot).

use flexric_sm::slice::{SliceAlgo, SliceConf, SliceParams, UeSchedAlgo};

/// Runtime state of one slice at the MAC.
#[derive(Debug, Clone)]
pub struct SliceState {
    /// The configuration installed through the SC SM.
    pub conf: SliceConf,
    /// Exponential average of the fraction of slots granted.
    pub avg_slots: f64,
    /// Exponential average of the slice throughput, bytes per TTI.
    pub avg_rate_bptti: f64,
    /// PRBs granted in the current statistics window.
    pub window_prbs: u64,
    /// Bytes served in the current statistics window.
    pub window_bytes: u64,
    /// Round-robin cursor of the slice's UE scheduler.
    pub rr_cursor: usize,
}

impl SliceState {
    /// Wraps a configuration with zeroed averages.
    pub fn new(conf: SliceConf) -> Self {
        SliceState {
            conf,
            avg_slots: 0.0,
            avg_rate_bptti: 0.0,
            window_prbs: 0,
            window_bytes: 0,
            rr_cursor: 0,
        }
    }
}

/// EWMA smoothing factor for NVS averages.
const NVS_ALPHA: f64 = 0.01;

/// The slice scheduler of one cell.
#[derive(Debug)]
pub struct SliceSched {
    /// Which algorithm is active.
    pub algo: SliceAlgo,
    /// Slice states, in configuration order.
    pub slices: Vec<SliceState>,
}

impl Default for SliceSched {
    fn default() -> Self {
        Self::new()
    }
}

impl SliceSched {
    /// No slicing: one implicit slice owning all resources.
    pub fn new() -> Self {
        SliceSched { algo: SliceAlgo::None, slices: vec![SliceState::new(default_slice())] }
    }

    /// Installs a slice algorithm; keeps existing slice configs.
    pub fn set_algo(&mut self, algo: SliceAlgo) {
        self.algo = algo;
        if matches!(algo, SliceAlgo::None) {
            self.slices = vec![SliceState::new(default_slice())];
        }
    }

    /// Total reserved share of all slices except `skip_id` (for admission).
    /// The implicit default slice (`id == u32::MAX`) never counts: it is a
    /// placeholder, not a reservation.
    fn reserved_share(&self, cell_prbs: u32, skip_id: Option<u32>) -> f64 {
        self.slices
            .iter()
            .filter(|s| Some(s.conf.id) != skip_id && s.conf.id != u32::MAX)
            .map(|s| s.conf.params.share(cell_prbs))
            .sum()
    }

    /// Adds or reconfigures a slice, enforcing NVS admission control:
    /// the total reserved share must not exceed 100 %.
    pub fn upsert(&mut self, conf: SliceConf, cell_prbs: u32) -> Result<(), String> {
        let proposed = self.reserved_share(cell_prbs, Some(conf.id)) + conf.params.share(cell_prbs);
        if conf.id != u32::MAX && proposed > 1.0 + 1e-9 {
            return Err(format!("admission control: total share {:.3} exceeds 1.0", proposed));
        }
        if conf.id != u32::MAX {
            // A real slice replaces the implicit default placeholder.
            self.slices.retain(|s| s.conf.id != u32::MAX);
        }
        if let Some(s) = self.slices.iter_mut().find(|s| s.conf.id == conf.id) {
            s.conf = conf;
        } else {
            self.slices.push(SliceState::new(conf));
        }
        Ok(())
    }

    /// Adds or reconfigures a *batch* of slices atomically: admission is
    /// evaluated over the final configuration, so a reconfiguration like
    /// 50/50 → 66/34 is accepted regardless of message order.
    pub fn upsert_batch(&mut self, confs: &[SliceConf], cell_prbs: u32) -> Result<(), String> {
        use std::collections::HashMap;
        let mut shares: HashMap<u32, f64> = self
            .slices
            .iter()
            .filter(|s| s.conf.id != u32::MAX)
            .map(|s| (s.conf.id, s.conf.params.share(cell_prbs)))
            .collect();
        for c in confs {
            if c.id == u32::MAX {
                return Err("slice id reserved".to_owned());
            }
            shares.insert(c.id, c.params.share(cell_prbs));
        }
        let total: f64 = shares.values().sum();
        if total > 1.0 + 1e-9 {
            return Err(format!("admission control: total share {total:.3} exceeds 1.0"));
        }
        for c in confs {
            self.slices.retain(|s| s.conf.id != u32::MAX);
            if let Some(s) = self.slices.iter_mut().find(|s| s.conf.id == c.id) {
                s.conf = c.clone();
            } else {
                self.slices.push(SliceState::new(c.clone()));
            }
        }
        Ok(())
    }

    /// Deletes a slice.
    pub fn delete(&mut self, id: u32) -> Result<(), String> {
        let before = self.slices.len();
        self.slices.retain(|s| s.conf.id != id);
        if self.slices.len() == before {
            return Err(format!("no slice {id}"));
        }
        if self.slices.is_empty() {
            self.slices.push(SliceState::new(default_slice()));
        }
        Ok(())
    }

    /// Picks the slice for this TTI.  `backlogged(slice_id)` tells whether
    /// the slice has traffic.  Returns the index into `slices`, or `None`
    /// when the slot stays idle.
    pub fn pick(&mut self, mut backlogged: impl FnMut(u32) -> bool) -> Option<usize> {
        let sharing = !matches!(self.algo, SliceAlgo::NvsNoSharing);
        let mut winner: Option<(usize, f64)> = None;
        for (i, s) in self.slices.iter().enumerate() {
            let weight = match s.conf.params {
                SliceParams::NvsCapacity { share_milli } => {
                    let c = share_milli as f64 / 1000.0;
                    c / s.avg_slots.max(1e-6)
                }
                SliceParams::NvsRate { rate_kbps, ref_kbps } => {
                    let _ = ref_kbps;
                    // r_rsv in bytes per TTI over averaged rate.
                    let rsv_bptti = rate_kbps as f64 * 1000.0 / 8.0 / 1000.0;
                    rsv_bptti / s.avg_rate_bptti.max(1.0)
                }
                SliceParams::StaticRb { .. } => {
                    // Static slices are handled by prb_range(); under a
                    // pick-based algorithm treat the range as a share.
                    1.0
                }
            };
            if winner.is_none_or(|(_, w)| weight > w) {
                winner = Some((i, weight));
            }
        }
        // Without sharing the winner keeps the slot no matter what; with
        // sharing, fall back over the remaining slices by weight order.
        let (wi, _) = winner?;
        if !sharing {
            // Update averages as if granted; the slot may be wasted.
            self.account(wi, 0, 0);
            return if backlogged(self.slices[wi].conf.id) { Some(wi) } else { None };
        }
        // Work-conserving: order by weight, grant the best backlogged one.
        let mut order: Vec<usize> = (0..self.slices.len()).collect();
        order.sort_by(|&a, &b| {
            self.weight_of(b).partial_cmp(&self.weight_of(a)).unwrap_or(std::cmp::Ordering::Equal)
        });
        let chosen = order.into_iter().find(|&i| backlogged(self.slices[i].conf.id));
        match chosen {
            Some(i) => {
                self.account(i, 0, 0);
                Some(i)
            }
            None => {
                self.account_idle();
                None
            }
        }
    }

    fn weight_of(&self, i: usize) -> f64 {
        let s = &self.slices[i];
        match s.conf.params {
            SliceParams::NvsCapacity { share_milli } => {
                (share_milli as f64 / 1000.0) / s.avg_slots.max(1e-6)
            }
            SliceParams::NvsRate { rate_kbps, .. } => {
                let rsv_bptti = rate_kbps as f64 * 1000.0 / 8.0 / 1000.0;
                rsv_bptti / s.avg_rate_bptti.max(1.0)
            }
            SliceParams::StaticRb { .. } => 1.0,
        }
    }

    /// Updates slot averages: slice `granted` received the slot.
    fn account(&mut self, granted: usize, _prbs: u32, _bytes: u64) {
        for (i, s) in self.slices.iter_mut().enumerate() {
            let x = if i == granted { 1.0 } else { 0.0 };
            s.avg_slots = (1.0 - NVS_ALPHA) * s.avg_slots + NVS_ALPHA * x;
        }
    }

    /// Updates slot averages for an idle slot.
    fn account_idle(&mut self) {
        for s in &mut self.slices {
            s.avg_slots *= 1.0 - NVS_ALPHA;
        }
    }

    /// Records served bytes for rate averaging and window statistics.
    pub fn record_service(&mut self, idx: usize, prbs: u32, bytes: u64) {
        for (i, s) in self.slices.iter_mut().enumerate() {
            let b = if i == idx { bytes as f64 } else { 0.0 };
            s.avg_rate_bptti = (1.0 - NVS_ALPHA) * s.avg_rate_bptti + NVS_ALPHA * b;
        }
        let s = &mut self.slices[idx];
        s.window_prbs += prbs as u64;
        s.window_bytes += bytes;
    }

    /// The PRB range of a static slice, for [`SliceAlgo::Static`].
    pub fn static_ranges(&self) -> Vec<(u32, u16, u16)> {
        self.slices
            .iter()
            .filter_map(|s| match s.conf.params {
                SliceParams::StaticRb { lo, hi } if hi >= lo => Some((s.conf.id, lo, hi)),
                _ => None,
            })
            .collect()
    }

    /// Looks up a slice index by id.
    pub fn index_of(&self, id: u32) -> Option<usize> {
        self.slices.iter().position(|s| s.conf.id == id)
    }
}

/// The implicit "everything" slice used when no slicing is configured.
pub fn default_slice() -> SliceConf {
    SliceConf {
        id: u32::MAX,
        label: "default".into(),
        params: SliceParams::NvsCapacity { share_milli: 1000 },
        ue_sched: UeSchedAlgo::PropFair,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap_slice(id: u32, share_milli: u32) -> SliceConf {
        SliceConf {
            id,
            label: format!("s{id}"),
            params: SliceParams::NvsCapacity { share_milli },
            ue_sched: UeSchedAlgo::RoundRobin,
        }
    }

    #[test]
    fn admission_control_rejects_over_100pct() {
        let mut sched = SliceSched::new();
        sched.set_algo(SliceAlgo::Nvs);
        sched.upsert(cap_slice(0, 660), 106).unwrap();
        sched.upsert(cap_slice(1, 340), 106).unwrap();
        assert!(sched.upsert(cap_slice(2, 10), 106).is_err(), "sum would exceed 1.0");
        // Reconfiguring an existing slice within budget is fine.
        sched.upsert(cap_slice(0, 500), 106).unwrap();
        sched.upsert(cap_slice(2, 100), 106).unwrap();
    }

    #[test]
    fn rate_slices_count_toward_admission() {
        let mut sched = SliceSched::new();
        sched.set_algo(SliceAlgo::Nvs);
        // 5 Mbps over 50 Mbps reference = 10 %.
        sched
            .upsert(
                SliceConf {
                    id: 0,
                    label: "rate".into(),
                    params: SliceParams::NvsRate { rate_kbps: 5_000, ref_kbps: 50_000 },
                    ue_sched: UeSchedAlgo::RoundRobin,
                },
                106,
            )
            .unwrap();
        sched.upsert(cap_slice(1, 900), 106).unwrap();
        assert!(sched.upsert(cap_slice(2, 10), 106).is_err());
    }

    #[test]
    fn nvs_converges_to_shares_when_backlogged() {
        let mut sched = SliceSched::new();
        sched.set_algo(SliceAlgo::Nvs);
        sched.upsert(cap_slice(0, 660), 100).unwrap();
        sched.upsert(cap_slice(1, 340), 100).unwrap();
        let mut grants = [0u64; 2];
        for _ in 0..20_000 {
            if let Some(i) = sched.pick(|_| true) {
                grants[i] += 1;
                sched.record_service(i, 100, 10_000);
            }
        }
        let frac0 = grants[0] as f64 / (grants[0] + grants[1]) as f64;
        assert!((frac0 - 0.66).abs() < 0.03, "slice 0 got {frac0:.3}, expected ≈0.66");
    }

    #[test]
    fn sharing_gives_idle_resources_away() {
        let mut sched = SliceSched::new();
        sched.set_algo(SliceAlgo::Nvs);
        sched.upsert(cap_slice(0, 660), 100).unwrap();
        sched.upsert(cap_slice(1, 340), 100).unwrap();
        // Slice 1 idle: slice 0 takes every slot.
        let mut s0 = 0u64;
        for _ in 0..5_000 {
            match sched.pick(|id| id == 0) {
                Some(i) => {
                    assert_eq!(sched.slices[i].conf.id, 0);
                    s0 += 1;
                    sched.record_service(i, 100, 10_000);
                }
                None => panic!("work-conserving NVS must not idle"),
            }
        }
        assert_eq!(s0, 5_000);
    }

    #[test]
    fn no_sharing_wastes_idle_winner_slots() {
        let mut sched = SliceSched::new();
        sched.set_algo(SliceAlgo::NvsNoSharing);
        sched.upsert(cap_slice(0, 660), 100).unwrap();
        sched.upsert(cap_slice(1, 340), 100).unwrap();
        // Slice 1 idle; slice 0 backlogged: slice 0 only gets its own
        // ~66 % of slots, the rest are wasted.
        let mut granted = 0u64;
        let rounds = 20_000;
        for _ in 0..rounds {
            if let Some(i) = sched.pick(|id| id == 0) {
                granted += 1;
                sched.record_service(i, 100, 10_000);
            }
        }
        let frac = granted as f64 / rounds as f64;
        assert!(
            (frac - 0.66).abs() < 0.05,
            "without sharing slice 0 is capped at its share, got {frac:.3}"
        );
    }

    #[test]
    fn rate_slice_gets_its_rate() {
        let mut sched = SliceSched::new();
        sched.set_algo(SliceAlgo::Nvs);
        // Cell of 5000 B/TTI ≈ 40 Mbps. Rate slice: 4 Mbps ≈ 500 B/TTI.
        sched
            .upsert(
                SliceConf {
                    id: 0,
                    label: "rate".into(),
                    params: SliceParams::NvsRate { rate_kbps: 4_000, ref_kbps: 40_000 },
                    ue_sched: UeSchedAlgo::RoundRobin,
                },
                100,
            )
            .unwrap();
        sched.upsert(cap_slice(1, 900), 100).unwrap();
        let mut bytes = [0u64; 2];
        for _ in 0..50_000 {
            if let Some(i) = sched.pick(|_| true) {
                bytes[i] += 5_000;
                sched.record_service(i, 100, 5_000);
            }
        }
        let frac0 = bytes[0] as f64 / (bytes[0] + bytes[1]) as f64;
        assert!((frac0 - 0.10).abs() < 0.03, "rate slice got {frac0:.3} of ~0.10");
    }

    #[test]
    fn delete_and_default_restore() {
        let mut sched = SliceSched::new();
        sched.set_algo(SliceAlgo::Nvs);
        sched.upsert(cap_slice(0, 500), 100).unwrap();
        assert!(sched.delete(1).is_err());
        sched.delete(0).unwrap();
        assert_eq!(sched.slices.len(), 1, "default slice restored");
        assert_eq!(sched.slices[0].conf.id, u32::MAX);
    }

    #[test]
    fn static_ranges_extracted() {
        let mut sched = SliceSched::new();
        sched.set_algo(SliceAlgo::Static);
        sched
            .upsert(
                SliceConf {
                    id: 0,
                    label: "lo".into(),
                    params: SliceParams::StaticRb { lo: 0, hi: 12 },
                    ue_sched: UeSchedAlgo::RoundRobin,
                },
                25,
            )
            .unwrap();
        sched
            .upsert(
                SliceConf {
                    id: 1,
                    label: "hi".into(),
                    params: SliceParams::StaticRb { lo: 13, hi: 24 },
                    ue_sched: UeSchedAlgo::RoundRobin,
                },
                25,
            )
            .unwrap();
        let ranges = sched.static_ranges();
        assert_eq!(ranges.len(), 2);
        assert_eq!(ranges[0], (0, 0, 12));
        assert_eq!(ranges[1], (1, 13, 24));
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use flexric_sm::slice::SliceAlgo;

    fn cap(id: u32, milli: u32) -> SliceConf {
        SliceConf {
            id,
            label: format!("s{id}"),
            params: SliceParams::NvsCapacity { share_milli: milli },
            ue_sched: UeSchedAlgo::PropFair,
        }
    }

    #[test]
    fn batch_reconfiguration_is_atomic() {
        let mut sched = SliceSched::new();
        sched.set_algo(SliceAlgo::Nvs);
        sched.upsert_batch(&[cap(0, 500), cap(1, 500)], 106).unwrap();
        // 50/50 → 66/34 in one batch must pass even though the interim
        // state (66 + 50) would not.
        sched.upsert_batch(&[cap(0, 660), cap(1, 340)], 106).unwrap();
        assert_eq!(sched.slices.len(), 2);
        // But a batch that really over-commits is rejected whole.
        assert!(sched.upsert_batch(&[cap(0, 800), cap(2, 300)], 106).is_err());
        assert_eq!(sched.slices.len(), 2, "rejected batch left state unchanged");
        assert!(sched.index_of(2).is_none());
        // Reserved sentinel id rejected.
        assert!(sched.upsert_batch(&[cap(u32::MAX, 100)], 106).is_err());
    }
}
