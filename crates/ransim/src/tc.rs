//! The traffic-control sublayer of the downlink path (paper Fig. 10).
//!
//! Sits between SDAP and PDCP: an OSI classifier segregates packets into
//! queues, a scheduler pulls from the active queues, and a pacer decides
//! *how much* may be released toward the RLC buffer each TTI.  In
//! transparent mode (the default) there is a single pass-through FIFO and
//! no pacer, reproducing vanilla behaviour; the TC SM reconfigures all
//! three stages at runtime.

use std::collections::VecDeque;

use flexric_sm::tc::{FiveTupleRule, PacerConf, QueueKind, TcQueueStats, TcSchedAlgo};

use crate::rlc::{Packet, RlcBearer, SojournWindow};

/// One TC queue instance.
#[derive(Debug)]
struct TcQueue {
    id: u32,
    kind: QueueKind,
    queue: VecDeque<Packet>,
    backlog_bytes: u64,
    sojourn: SojournWindow,
    drops: u64,
    tx_pkts: u64,
    tx_bytes: u64,
    /// CoDel state: when the sojourn first exceeded target.
    codel_above_since: Option<u64>,
}

impl TcQueue {
    fn new(id: u32, kind: QueueKind) -> Self {
        TcQueue {
            id,
            kind,
            queue: VecDeque::new(),
            backlog_bytes: 0,
            sojourn: SojournWindow::default(),
            drops: 0,
            tx_pkts: 0,
            tx_bytes: 0,
            codel_above_since: None,
        }
    }

    fn enqueue(&mut self, mut pkt: Packet, now_ms: u64) -> bool {
        if let QueueKind::Fifo { cap_bytes } = self.kind {
            if cap_bytes > 0 && self.backlog_bytes + pkt.bytes as u64 > cap_bytes as u64 {
                self.drops += 1;
                return false;
            }
        }
        pkt.enq_ms = now_ms;
        self.backlog_bytes += pkt.bytes as u64;
        self.queue.push_back(pkt);
        true
    }

    fn dequeue(&mut self, now_ms: u64) -> Option<Packet> {
        loop {
            let pkt = self.queue.pop_front()?;
            self.backlog_bytes -= pkt.bytes as u64;
            let sojourn_ms = now_ms.saturating_sub(pkt.enq_ms);
            if let QueueKind::Codel { target_us, interval_us } = self.kind {
                // Simplified CoDel: drop the head while the sojourn has
                // been above target for longer than one interval.
                if sojourn_ms * 1000 > target_us as u64 {
                    let since = *self.codel_above_since.get_or_insert(now_ms);
                    if (now_ms - since) * 1000 >= interval_us as u64 {
                        self.drops += 1;
                        continue; // drop and try the next packet
                    }
                } else {
                    self.codel_above_since = None;
                }
            }
            self.sojourn.record(sojourn_ms);
            self.tx_pkts += 1;
            self.tx_bytes += pkt.bytes as u64;
            return Some(pkt);
        }
    }

    fn head_bytes(&self) -> Option<u32> {
        self.queue.front().map(|p| p.bytes)
    }

    fn stats(&self) -> TcQueueStats {
        TcQueueStats {
            id: self.id,
            backlog_bytes: self.backlog_bytes,
            backlog_pkts: self.queue.len() as u32,
            sojourn_us_avg: self.sojourn.avg_us(),
            sojourn_us_max: self.sojourn.max_us(),
            drops: self.drops,
            tx_pkts: self.tx_pkts,
            tx_bytes: self.tx_bytes,
        }
    }
}

/// A classifier rule bound to a target queue.
#[derive(Debug, Clone, Copy)]
struct BoundRule {
    rule: FiveTupleRule,
    queue: u32,
    precedence: u32,
}

/// The TC sublayer of one bearer.
#[derive(Debug)]
pub struct TcLayer {
    queues: Vec<TcQueue>,
    rules: Vec<BoundRule>,
    sched: TcSchedAlgo,
    weights: Vec<u32>,
    pacer: PacerConf,
    rr_next: usize,
    /// Bytes released toward RLC in the current window (for the pacer-rate
    /// statistic).
    released_bytes_window: u64,
    window_started_ms: u64,
}

impl Default for TcLayer {
    fn default() -> Self {
        Self::new()
    }
}

impl TcLayer {
    /// Transparent mode: one unbounded FIFO, no pacer.
    pub fn new() -> Self {
        TcLayer {
            queues: vec![TcQueue::new(0, QueueKind::Fifo { cap_bytes: 0 })],
            rules: Vec::new(),
            sched: TcSchedAlgo::RoundRobin,
            weights: Vec::new(),
            pacer: PacerConf::None,
            rr_next: 0,
            released_bytes_window: 0,
            window_started_ms: 0,
        }
    }

    /// Adds (or reconfigures) a queue.
    pub fn add_queue(&mut self, id: u32, kind: QueueKind) {
        if let Some(q) = self.queues.iter_mut().find(|q| q.id == id) {
            q.kind = kind;
        } else {
            self.queues.push(TcQueue::new(id, kind));
        }
    }

    /// Removes a queue, re-homing its backlog to queue 0.
    pub fn del_queue(&mut self, id: u32) -> Result<(), &'static str> {
        if id == 0 {
            return Err("queue 0 cannot be removed");
        }
        let Some(pos) = self.queues.iter().position(|q| q.id == id) else {
            return Err("no such queue");
        };
        let mut removed = self.queues.remove(pos);
        self.rules.retain(|r| r.queue != id);
        let q0 = self.queues.iter_mut().find(|q| q.id == 0).expect("queue 0 always present");
        while let Some(pkt) = removed.queue.pop_front() {
            q0.backlog_bytes += pkt.bytes as u64;
            q0.queue.push_back(pkt);
        }
        Ok(())
    }

    /// Installs a classifier rule.
    pub fn add_rule(
        &mut self,
        rule: FiveTupleRule,
        queue: u32,
        precedence: u32,
    ) -> Result<(), &'static str> {
        if !self.queues.iter().any(|q| q.id == queue) {
            return Err("rule targets unknown queue");
        }
        self.rules.retain(|r| r.rule.id != rule.id);
        self.rules.push(BoundRule { rule, queue, precedence });
        self.rules.sort_by_key(|r| r.precedence);
        Ok(())
    }

    /// Removes a classifier rule.
    pub fn del_rule(&mut self, rule_id: u32) -> Result<(), &'static str> {
        let before = self.rules.len();
        self.rules.retain(|r| r.rule.id != rule_id);
        if self.rules.len() == before {
            Err("no such rule")
        } else {
            Ok(())
        }
    }

    /// Selects the queue scheduler.
    pub fn set_sched(&mut self, algo: TcSchedAlgo, weights: Vec<u32>) {
        self.sched = algo;
        self.weights = weights;
    }

    /// Configures the pacer.
    pub fn set_pacer(&mut self, pacer: PacerConf) {
        self.pacer = pacer;
    }

    /// Current pacer configuration.
    pub fn pacer(&self) -> PacerConf {
        self.pacer
    }

    /// Total TC backlog in bytes.
    pub fn backlog_bytes(&self) -> u64 {
        self.queues.iter().map(|q| q.backlog_bytes).sum()
    }

    /// Classifies and enqueues a packet arriving from upper layers.
    pub fn ingress(&mut self, pkt: Packet, now_ms: u64) -> bool {
        let target = self
            .rules
            .iter()
            .find(|r| r.rule.matches(pkt.src_ip, pkt.dst_ip, pkt.src_port, pkt.dst_port, pkt.proto))
            .map(|r| r.queue)
            .unwrap_or(0);
        let pos = self
            .queues
            .iter()
            .position(|q| q.id == target)
            .or_else(|| self.queues.iter().position(|q| q.id == 0))
            .expect("queue 0 always present");
        self.queues[pos].enqueue(pkt, now_ms)
    }

    /// Releases packets toward the RLC bearer for this TTI, honoring the
    /// pacer: with the 5G-BDP pacer, release only while the RLC backlog is
    /// below `drain_rate × target_delay` — enough not to starve the DRB,
    /// not enough to bloat it.  Returns packets the RLC buffer rejected
    /// (drop-tail), so senders can react to the loss.
    pub fn egress(&mut self, rlc: &mut RlcBearer, now_ms: u64) -> Vec<Packet> {
        let budget = match self.pacer {
            PacerConf::None => u64::MAX,
            PacerConf::Bdp { target_delay_us } => {
                // Allow a minimum floor so a cold-start (drain rate still
                // ~0) does not deadlock the bearer.
                let target =
                    (rlc.drain_rate_bpms * (target_delay_us as f64 / 1000.0)).max(3_000.0) as u64;
                target.saturating_sub(rlc.backlog_bytes())
            }
        };
        let mut remaining = budget;
        let mut dropped = Vec::new();
        loop {
            let Some(qidx) = self.pick_queue(remaining, now_ms) else { break };
            let Some(pkt) = self.queues[qidx].dequeue(now_ms) else { continue };
            remaining = remaining.saturating_sub(pkt.bytes as u64);
            self.released_bytes_window += pkt.bytes as u64;
            if !rlc.enqueue(pkt, now_ms) {
                dropped.push(pkt);
            }
        }
        dropped
    }

    /// Picks the next queue with a head packet fitting `budget`, or `None`.
    fn pick_queue(&mut self, budget: u64, _now_ms: u64) -> Option<usize> {
        let fits = |q: &TcQueue| q.head_bytes().is_some_and(|b| b as u64 <= budget);
        match self.sched {
            TcSchedAlgo::RoundRobin => {
                let n = self.queues.len();
                for off in 0..n {
                    let idx = (self.rr_next + off) % n;
                    if fits(&self.queues[idx]) {
                        self.rr_next = (idx + 1) % n;
                        return Some(idx);
                    }
                }
                None
            }
            TcSchedAlgo::StrictPriority => {
                // Lowest queue id first.
                let mut order: Vec<usize> = (0..self.queues.len()).collect();
                order.sort_by_key(|&i| self.queues[i].id);
                order.into_iter().find(|&i| fits(&self.queues[i]))
            }
            TcSchedAlgo::WeightedRoundRobin => {
                // Deficit-less approximation: serve queues proportionally by
                // comparing tx_bytes / weight; the least-served eligible
                // queue goes first.
                let mut best: Option<(usize, f64)> = None;
                for (i, q) in self.queues.iter().enumerate() {
                    if !fits(q) {
                        continue;
                    }
                    let w = self.weights.get(i).copied().unwrap_or(1).max(1) as f64;
                    let served = q.tx_bytes as f64 / w;
                    if best.is_none_or(|(_, s)| served < s) {
                        best = Some((i, served));
                    }
                }
                best.map(|(i, _)| i)
            }
        }
    }

    /// Per-queue statistics plus the pacer release-rate estimate.
    pub fn stats(&mut self, now_ms: u64) -> (Vec<TcQueueStats>, u64) {
        let stats = self.queues.iter().map(|q| q.stats()).collect();
        let elapsed = now_ms.saturating_sub(self.window_started_ms).max(1);
        let rate_kbps = self.released_bytes_window * 8 / elapsed;
        (stats, rate_kbps)
    }

    /// Resets window statistics (on snapshot).
    pub fn reset_window(&mut self, now_ms: u64) {
        for q in &mut self.queues {
            q.sojourn.reset();
        }
        self.released_bytes_window = 0;
        self.window_started_ms = now_ms;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(flow: usize, bytes: u32, now: u64, dst_port: u16, proto: u8) -> Packet {
        Packet {
            flow,
            seq: 0,
            bytes,
            sent_ms: now,
            enq_ms: now,
            src_ip: 0x0A000001,
            dst_ip: 0x0A000002,
            src_port: 1000,
            dst_port,
            proto,
        }
    }

    #[test]
    fn transparent_mode_passes_through() {
        let mut tc = TcLayer::new();
        let mut rlc = RlcBearer::new(0);
        tc.ingress(pkt(0, 100, 0, 80, 6), 0);
        tc.ingress(pkt(0, 200, 0, 80, 6), 0);
        tc.egress(&mut rlc, 0);
        assert_eq!(tc.backlog_bytes(), 0);
        assert_eq!(rlc.backlog_bytes(), 300);
    }

    #[test]
    fn classifier_routes_to_queue() {
        let mut tc = TcLayer::new();
        tc.add_queue(1, QueueKind::Fifo { cap_bytes: 0 });
        tc.add_rule(
            FiveTupleRule { id: 1, dst_port: Some(5004), proto: Some(17), ..Default::default() },
            1,
            0,
        )
        .unwrap();
        tc.ingress(pkt(0, 100, 0, 5004, 17), 0); // matches → q1
        tc.ingress(pkt(1, 100, 0, 80, 6), 0); // default → q0
        let (stats, _) = tc.stats(0);
        let q0 = stats.iter().find(|q| q.id == 0).unwrap();
        let q1 = stats.iter().find(|q| q.id == 1).unwrap();
        assert_eq!(q0.backlog_pkts, 1);
        assert_eq!(q1.backlog_pkts, 1);
    }

    #[test]
    fn rule_to_unknown_queue_rejected() {
        let mut tc = TcLayer::new();
        assert!(tc.add_rule(FiveTupleRule::default(), 9, 0).is_err());
        assert!(tc.del_rule(1).is_err());
        assert!(tc.del_queue(0).is_err());
        assert!(tc.del_queue(5).is_err());
    }

    #[test]
    fn del_queue_rehomes_backlog() {
        let mut tc = TcLayer::new();
        tc.add_queue(1, QueueKind::Fifo { cap_bytes: 0 });
        tc.add_rule(FiveTupleRule { id: 1, proto: Some(17), ..Default::default() }, 1, 0).unwrap();
        tc.ingress(pkt(0, 100, 0, 5004, 17), 0);
        tc.del_queue(1).unwrap();
        let (stats, _) = tc.stats(0);
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].backlog_pkts, 1, "packet re-homed to q0");
    }

    #[test]
    fn bdp_pacer_bounds_rlc_backlog() {
        let mut tc = TcLayer::new();
        tc.set_pacer(PacerConf::Bdp { target_delay_us: 10_000 });
        let mut rlc = RlcBearer::new(0);
        // Warm the drain-rate estimate: 2000 B/ms link.
        for t in 0..500u64 {
            tc.ingress(pkt(0, 1000, t, 80, 6), t);
            tc.ingress(pkt(0, 1000, t, 80, 6), t);
            tc.egress(&mut rlc, t);
            rlc.drain(2000, t);
        }
        // Now flood: the TC holds the excess, the RLC stays near
        // drain_rate × target = 2000 B/ms × 10 ms = 20 kB.
        for t in 500..1000u64 {
            for _ in 0..10 {
                tc.ingress(pkt(0, 1500, t, 80, 6), t);
            }
            tc.egress(&mut rlc, t);
            rlc.drain(2000, t);
        }
        assert!(
            rlc.backlog_bytes() < 40_000,
            "RLC stays uncongested under pacing: {}",
            rlc.backlog_bytes()
        );
        assert!(tc.backlog_bytes() > 100_000, "excess backlogged at TC: {}", tc.backlog_bytes());
    }

    #[test]
    fn round_robin_alternates_queues() {
        let mut tc = TcLayer::new();
        tc.add_queue(1, QueueKind::Fifo { cap_bytes: 0 });
        tc.add_rule(FiveTupleRule { id: 1, proto: Some(17), ..Default::default() }, 1, 0).unwrap();
        for _ in 0..10 {
            tc.ingress(pkt(0, 100, 0, 80, 6), 0); // q0
            tc.ingress(pkt(1, 100, 0, 5004, 17), 0); // q1
        }
        let mut rlc = RlcBearer::new(0);
        tc.egress(&mut rlc, 0);
        // Everything released (no pacer); both queues served.
        let (stats, _) = tc.stats(0);
        assert!(stats.iter().all(|q| q.backlog_pkts == 0));
        assert_eq!(stats.iter().map(|q| q.tx_pkts).sum::<u64>(), 20);
    }

    #[test]
    fn strict_priority_serves_low_id_first() {
        let mut tc = TcLayer::new();
        tc.add_queue(1, QueueKind::Fifo { cap_bytes: 0 });
        tc.set_sched(TcSchedAlgo::StrictPriority, vec![]);
        tc.set_pacer(PacerConf::Bdp { target_delay_us: 1 }); // tiny budget
        tc.add_rule(FiveTupleRule { id: 1, proto: Some(17), ..Default::default() }, 1, 0).unwrap();
        tc.ingress(pkt(1, 1000, 0, 5004, 17), 0); // q1
        tc.ingress(pkt(0, 1000, 0, 80, 6), 0); // q0
        let mut rlc = RlcBearer::new(0);
        // Budget floor is 3000 B; only q0's packet plus one more fit…
        tc.egress(&mut rlc, 0);
        let (stats, _) = tc.stats(0);
        let q0 = stats.iter().find(|q| q.id == 0).unwrap();
        assert_eq!(q0.tx_pkts, 1, "q0 served first under strict priority");
    }

    #[test]
    fn codel_drops_persistent_bloat() {
        let mut tc = TcLayer::new();
        tc.add_queue(1, QueueKind::Codel { target_us: 5_000, interval_us: 20_000 });
        tc.add_rule(FiveTupleRule { id: 1, proto: Some(17), ..Default::default() }, 1, 0).unwrap();
        // Fill queue 1 at t=0, then drain much later: sojourns way above
        // target for longer than the interval ⇒ CoDel drops.
        for i in 0..50 {
            tc.ingress(pkt(1, 100, 0, 5004, 17), i / 10);
        }
        let mut rlc = RlcBearer::new(0);
        // First egress at t=100 sets codel_above_since; later ones drop.
        tc.egress(&mut rlc, 100);
        tc.reset_window(100);
        for i in 0..50 {
            tc.ingress(pkt(1, 100, 130, 5004, 17), 130);
            let _ = i;
        }
        tc.egress(&mut rlc, 200);
        let (stats, _) = tc.stats(200);
        let q1 = stats.iter().find(|q| q.id == 1).unwrap();
        assert!(q1.drops > 0, "CoDel dropped persistent-bloat packets: {q1:?}");
    }
}
