//! RLC bearer buffer: the bottleneck queue of the downlink path.
//!
//! "The RLC sublayer is provided with large buffers to absorb the brusque
//! changes that the radio channel may suffer" (paper §6.1.1) — which is
//! exactly what makes cellular links bufferbloat-prone.  This module
//! models a per-DRB drop-tail byte-bounded FIFO with per-packet sojourn
//! tracking, the quantity the RLC statistics SM reports and the TC xApp
//! of Fig. 11 acts on.

use std::collections::VecDeque;

/// One packet travelling through the downlink path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Flow the packet belongs to.
    pub flow: usize,
    /// Sequence within the flow.
    pub seq: u64,
    /// Size in bytes.
    pub bytes: u32,
    /// When the flow emitted it (ms).
    pub sent_ms: u64,
    /// When it entered the current queue (ms); updated at each hop.
    pub enq_ms: u64,
    /// Classifier metadata: source IPv4.
    pub src_ip: u32,
    /// Classifier metadata: destination IPv4.
    pub dst_ip: u32,
    /// Classifier metadata: source port.
    pub src_port: u16,
    /// Classifier metadata: destination port.
    pub dst_port: u16,
    /// Classifier metadata: IP protocol.
    pub proto: u8,
}

/// Running sojourn statistics over a reporting window.
#[derive(Debug, Clone, Copy, Default)]
pub struct SojournWindow {
    sum_us: u64,
    count: u64,
    max_us: u64,
}

impl SojournWindow {
    /// Records a departure with the given sojourn.
    pub fn record(&mut self, sojourn_ms: u64) {
        let us = sojourn_ms * 1000;
        self.sum_us += us;
        self.count += 1;
        self.max_us = self.max_us.max(us);
    }

    /// Average sojourn in the window, microseconds.
    pub fn avg_us(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.sum_us / self.count
        }
    }

    /// Maximum sojourn in the window, microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Resets the window (on snapshot).
    pub fn reset(&mut self) {
        *self = SojournWindow::default();
    }
}

/// Cumulative and per-window counters of an RLC bearer.
#[derive(Debug, Clone, Copy, Default)]
pub struct RlcCounters {
    /// PDUs transmitted in the window.
    pub tx_pdus: u64,
    /// Bytes transmitted in the window.
    pub tx_bytes: u64,
    /// PDUs dropped at enqueue in the window.
    pub dropped_pdus: u64,
    /// Cumulative bytes transmitted.
    pub tx_bytes_total: u64,
}

/// A drop-tail RLC bearer buffer.
#[derive(Debug)]
pub struct RlcBearer {
    queue: VecDeque<Packet>,
    backlog_bytes: u64,
    /// Remaining bytes of the head packet (partial drains across TTIs).
    head_remaining: u32,
    /// Capacity in bytes; 0 = unbounded.
    cap_bytes: u64,
    /// Sojourn statistics of the current window.
    pub sojourn: SojournWindow,
    /// Counters of the current window.
    pub counters: RlcCounters,
    /// Exponentially averaged drain rate, bytes per ms (for pacers and
    /// stats).
    pub drain_rate_bpms: f64,
}

impl RlcBearer {
    /// Creates a bearer with the given byte capacity (0 = unbounded).
    pub fn new(cap_bytes: u64) -> Self {
        RlcBearer {
            queue: VecDeque::new(),
            backlog_bytes: 0,
            head_remaining: 0,
            cap_bytes,
            sojourn: SojournWindow::default(),
            counters: RlcCounters::default(),
            drain_rate_bpms: 0.0,
        }
    }

    /// Current backlog in bytes.
    pub fn backlog_bytes(&self) -> u64 {
        self.backlog_bytes
    }

    /// Current backlog in packets.
    pub fn backlog_pkts(&self) -> u32 {
        self.queue.len() as u32
    }

    /// Whether there is anything to transmit.
    pub fn has_backlog(&self) -> bool {
        self.backlog_bytes > 0
    }

    /// Enqueues a packet; returns `false` (and counts a drop) when the
    /// buffer is full.
    pub fn enqueue(&mut self, mut pkt: Packet, now_ms: u64) -> bool {
        if self.cap_bytes > 0 && self.backlog_bytes + pkt.bytes as u64 > self.cap_bytes {
            self.counters.dropped_pdus += 1;
            return false;
        }
        pkt.enq_ms = now_ms;
        if self.queue.is_empty() {
            self.head_remaining = pkt.bytes;
        }
        self.backlog_bytes += pkt.bytes as u64;
        self.queue.push_back(pkt);
        true
    }

    /// Drains up to `budget` bytes; completed packets are returned with
    /// their sojourn recorded.  Partial head-of-line transmission carries
    /// over to the next TTI, as RLC segmentation would.
    pub fn drain(&mut self, mut budget: u64, now_ms: u64) -> Vec<Packet> {
        let mut out = Vec::new();
        let mut drained = 0u64;
        while budget > 0 {
            if self.queue.is_empty() {
                break;
            }
            let take = (self.head_remaining as u64).min(budget);
            budget -= take;
            drained += take;
            self.head_remaining -= take as u32;
            self.backlog_bytes -= take;
            if self.head_remaining == 0 {
                let pkt = self.queue.pop_front().expect("head exists");
                self.sojourn.record(now_ms.saturating_sub(pkt.enq_ms));
                self.counters.tx_pdus += 1;
                self.counters.tx_bytes += pkt.bytes as u64;
                self.counters.tx_bytes_total += pkt.bytes as u64;
                out.push(pkt);
                if let Some(next) = self.queue.front() {
                    self.head_remaining = next.bytes;
                }
            } else {
                debug_assert_eq!(budget, 0);
            }
        }
        // EWMA over the drain opportunities actually used.
        const ALPHA: f64 = 0.05;
        self.drain_rate_bpms = (1.0 - ALPHA) * self.drain_rate_bpms + ALPHA * drained as f64;
        out
    }

    /// Resets window counters (on statistics snapshot).
    pub fn reset_window(&mut self) {
        self.sojourn.reset();
        let total = self.counters.tx_bytes_total;
        self.counters = RlcCounters { tx_bytes_total: total, ..Default::default() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(seq: u64, bytes: u32, sent_ms: u64) -> Packet {
        Packet {
            flow: 0,
            seq,
            bytes,
            sent_ms,
            enq_ms: sent_ms,
            src_ip: 0,
            dst_ip: 0,
            src_port: 0,
            dst_port: 0,
            proto: 6,
        }
    }

    #[test]
    fn fifo_order_and_sojourn() {
        let mut b = RlcBearer::new(0);
        b.enqueue(pkt(1, 100, 0), 0);
        b.enqueue(pkt(2, 100, 0), 0);
        assert_eq!(b.backlog_bytes(), 200);
        let out = b.drain(150, 10);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].seq, 1);
        assert_eq!(b.backlog_bytes(), 50);
        // Partial head continues next drain.
        let out = b.drain(1000, 20);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].seq, 2);
        assert_eq!(b.backlog_bytes(), 0);
        assert_eq!(b.sojourn.max_us(), 20_000);
        assert_eq!(b.counters.tx_pdus, 2);
        assert_eq!(b.counters.tx_bytes, 200);
    }

    #[test]
    fn drop_tail_when_full() {
        let mut b = RlcBearer::new(250);
        assert!(b.enqueue(pkt(1, 100, 0), 0));
        assert!(b.enqueue(pkt(2, 100, 0), 0));
        assert!(!b.enqueue(pkt(3, 100, 0), 0), "third packet exceeds 250 B cap");
        assert_eq!(b.counters.dropped_pdus, 1);
        assert_eq!(b.backlog_pkts(), 2);
        // Draining frees space again.
        b.drain(100, 1);
        assert!(b.enqueue(pkt(4, 100, 1), 1));
    }

    #[test]
    fn zero_cap_is_unbounded() {
        let mut b = RlcBearer::new(0);
        for i in 0..10_000 {
            assert!(b.enqueue(pkt(i, 1500, 0), 0));
        }
        assert_eq!(b.backlog_bytes(), 15_000_000);
    }

    #[test]
    fn drain_rate_converges() {
        let mut b = RlcBearer::new(0);
        for t in 0..2000u64 {
            b.enqueue(pkt(t, 1000, t), t);
            b.drain(1000, t);
        }
        assert!(
            (b.drain_rate_bpms - 1000.0).abs() < 50.0,
            "drain rate {} ≉ 1000 B/ms",
            b.drain_rate_bpms
        );
    }

    #[test]
    fn window_reset_keeps_totals() {
        let mut b = RlcBearer::new(0);
        b.enqueue(pkt(1, 500, 0), 0);
        b.drain(500, 5);
        assert_eq!(b.counters.tx_bytes_total, 500);
        b.reset_window();
        assert_eq!(b.counters.tx_pdus, 0);
        assert_eq!(b.counters.tx_bytes_total, 500);
        assert_eq!(b.sojourn.avg_us(), 0);
    }
}
