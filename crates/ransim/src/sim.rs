//! The simulation engine: cells + flows + the delivery/ACK pipeline.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::cell::{Cell, CellConfig, UeConfig};
use crate::rlc::Packet;
use crate::traffic::{Flow, FlowConfig};

/// Latency parameters of the path outside the cell.
#[derive(Debug, Clone, Copy)]
pub struct PathConfig {
    /// Air-interface + HARQ pipeline latency after the MAC drains a
    /// packet (ms).
    pub dl_latency_ms: u64,
    /// Return-path latency (UE → server): uplink + core (ms).
    pub ul_rtt_ms: u64,
}

impl Default for PathConfig {
    fn default() -> Self {
        PathConfig { dl_latency_ms: 4, ul_rtt_ms: 10 }
    }
}

#[derive(Debug, PartialEq, Eq)]
enum Pending {
    /// Packet arrives at the UE.
    Delivery(Packet),
    /// ACK arrives back at the sender of `flow`.
    Ack(usize),
}

// BinaryHeap needs Ord; order by time only.
#[derive(Debug, PartialEq, Eq)]
struct Scheduled(u64, u64, Pending);

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.0, self.1).cmp(&(other.0, other.1))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Metrics for the simulation tick loop, registered once.
struct SimObs {
    tti_ns: flexric_obs::Histogram,
    tti_last_ns: flexric_obs::Gauge,
    tti_overruns: flexric_obs::Counter,
}

fn obs() -> &'static SimObs {
    static OBS: std::sync::OnceLock<SimObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| SimObs {
        tti_ns: flexric_obs::histogram(
            "flexric_ransim_tti_ns",
            "Wall-clock nanoseconds spent per simulated 1 ms TTI tick",
        ),
        tti_last_ns: flexric_obs::gauge(
            "flexric_ransim_tti_last_ns",
            "Wall-clock nanoseconds of the most recent TTI tick",
        ),
        tti_overruns: flexric_obs::counter(
            "flexric_ransim_tti_overruns_total",
            "TTI ticks whose wall-clock cost exceeded the 1 ms real-time budget",
        ),
    })
}

/// The discrete-time (1 ms TTI) RAN simulation.
pub struct Sim {
    /// The cells.
    pub cells: Vec<Cell>,
    flows: Vec<Flow>,
    path: PathConfig,
    pending: BinaryHeap<Reverse<Scheduled>>,
    seqno: u64,
    now_ms: u64,
}

impl Sim {
    /// Creates a simulation over the given cells.
    pub fn new(cells: Vec<CellConfig>, path: PathConfig) -> Self {
        Sim {
            cells: cells.into_iter().map(Cell::new).collect(),
            flows: Vec::new(),
            path,
            pending: BinaryHeap::new(),
            seqno: 0,
            now_ms: 0,
        }
    }

    /// Current simulation time (ms).
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Attaches a UE to a cell.
    pub fn attach_ue(&mut self, cell: usize, cfg: UeConfig) {
        self.cells[cell].attach_ue(cfg);
    }

    /// Detaches a UE.
    pub fn detach_ue(&mut self, cell: usize, rnti: u16) {
        self.cells[cell].detach_ue(rnti);
    }

    /// Adds a flow; returns its id.
    pub fn add_flow(&mut self, cfg: FlowConfig) -> usize {
        self.flows.push(Flow::new(cfg));
        self.flows.len() - 1
    }

    /// Pauses/resumes a flow (experiment control).
    pub fn set_flow_active(&mut self, flow: usize, active: bool) {
        self.flows[flow].active = active;
    }

    /// Read access to a flow (counters, RTT log).
    pub fn flow(&self, flow: usize) -> &Flow {
        &self.flows[flow]
    }

    /// Number of flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    fn schedule(&mut self, at_ms: u64, what: Pending) {
        self.seqno += 1;
        self.pending.push(Reverse(Scheduled(at_ms, self.seqno, what)));
    }

    /// Advances the simulation by one TTI (1 ms).
    pub fn tick(&mut self) {
        let sw = flexric_obs::Stopwatch::start();
        let now = self.now_ms;
        // 1. Deliveries and ACKs due now.
        while let Some(Reverse(Scheduled(t, _, _))) = self.pending.peek() {
            if *t > now {
                break;
            }
            let Reverse(Scheduled(_, _, what)) = self.pending.pop().expect("peeked");
            match what {
                Pending::Delivery(pkt) => {
                    let flow_id = pkt.flow;
                    if let Some(flow) = self.flows.get_mut(flow_id) {
                        flow.on_delivered(&pkt, now, self.path.ul_rtt_ms);
                        let is_tcp =
                            matches!(flow.cfg.kind, crate::traffic::FlowKind::GreedyTcp { .. });
                        if is_tcp {
                            self.schedule(now + self.path.ul_rtt_ms, Pending::Ack(flow_id));
                        }
                    }
                }
                Pending::Ack(flow_id) => {
                    if let Some(flow) = self.flows.get_mut(flow_id) {
                        flow.on_ack(now);
                    }
                }
            }
        }
        // 2. Flow generation → cell ingress.
        for fi in 0..self.flows.len() {
            let pkts = self.flows[fi].generate(fi, now);
            let (cell, rnti, drb) = {
                let c = &self.flows[fi].cfg;
                (c.cell, c.rnti, c.drb)
            };
            for pkt in pkts {
                if !self.cells[cell].ingress(rnti, drb, pkt) {
                    self.flows[fi].on_lost(now);
                }
            }
        }
        // 3. Cells schedule and drain; drained packets are in flight,
        //    drop-tail losses are signalled back to their senders.
        for ci in 0..self.cells.len() {
            let (drained, dropped) = self.cells[ci].tick(now);
            for pkt in drained {
                self.schedule(now + self.path.dl_latency_ms, Pending::Delivery(pkt));
            }
            for pkt in dropped {
                if let Some(flow) = self.flows.get_mut(pkt.flow) {
                    flow.on_lost(now);
                }
            }
        }
        self.now_ms += 1;
        // A real-time deployment has 1 ms per TTI; going over budget is the
        // signal the paper's radio-deployment overhead figures guard.
        let ns = sw.elapsed_ns();
        let m = obs();
        m.tti_ns.record(ns);
        m.tti_last_ns.set(ns as i64);
        if ns > 1_000_000 {
            m.tti_overruns.inc();
        }
    }

    /// Hands a UE over from one cell to another: the UE moves with its
    /// bearers (and their queued packets); RRC HandoverOut/In events are
    /// emitted at the source/target; the UE's flows follow it.
    pub fn handover(&mut self, rnti: u16, from: usize, to: usize) -> Result<(), String> {
        if from == to || from >= self.cells.len() || to >= self.cells.len() {
            return Err("bad handover cells".to_owned());
        }
        let Some(ue) = self.cells[from].extract_ue(rnti) else {
            return Err(format!("no UE {rnti:#x} in cell {from}"));
        };
        self.cells[to].insert_ue(ue);
        for f in &mut self.flows {
            if f.cfg.cell == from && f.cfg.rnti == rnti {
                f.cfg.cell = to;
            }
        }
        Ok(())
    }

    /// Runs `n` TTIs.
    pub fn run_ms(&mut self, n: u64) {
        for _ in 0..n {
            self.tick();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::FlowKind;
    use flexric_sm::slice::{SliceAlgo, SliceConf, SliceCtrl, SliceParams, UeSchedAlgo};
    use flexric_sm::tc::{FiveTupleRule, PacerConf, QueueKind, TcCtrl};

    fn one_cell_sim(prbs: u32, mcs: u8, ues: u16) -> Sim {
        let mut sim = Sim::new(vec![CellConfig::nr("cell0", prbs)], PathConfig::default());
        for i in 0..ues {
            sim.attach_ue(0, UeConfig::new(0x4601 + i, mcs));
        }
        sim
    }

    fn greedy(cell: usize, rnti: u16, port: u16) -> FlowConfig {
        FlowConfig {
            cell,
            rnti,
            drb: 1,
            kind: FlowKind::GreedyTcp { mss: 1500 },
            tuple: (0x0A000001, 0x0A000002, 1000, port, 6),
            start_ms: 0,
            stop_ms: None,
        }
    }

    #[test]
    fn greedy_flow_saturates_cell() {
        let mut sim = one_cell_sim(106, 20, 1);
        let f = sim.add_flow(greedy(0, 0x4601, 80));
        sim.run_ms(5_000);
        let delivered = sim.flow(f).delivered_bytes;
        let mbps = delivered as f64 * 8.0 / 5_000.0 / 1000.0;
        // NR 106 RB MCS 20 ≈ 60 Mbps; TCP should reach most of it.
        assert!(mbps > 40.0, "greedy TCP reached only {mbps:.1} Mbps");
        assert!(mbps < 80.0, "throughput above link capacity: {mbps:.1} Mbps");
    }

    #[test]
    fn two_ues_share_equally_without_slicing() {
        let mut sim = one_cell_sim(106, 20, 2);
        let f1 = sim.add_flow(greedy(0, 0x4601, 80));
        let f2 = sim.add_flow(greedy(0, 0x4602, 81));
        sim.run_ms(10_000);
        let d1 = sim.flow(f1).delivered_bytes as f64;
        let d2 = sim.flow(f2).delivered_bytes as f64;
        let ratio = d1 / d2;
        assert!((0.8..1.25).contains(&ratio), "equal sharing, ratio {ratio:.2}");
    }

    #[test]
    fn bufferbloat_emerges_with_cbr_and_tcp() {
        // The Fig. 11 signature: once the greedy TCP flow starts, the
        // VoIP packets' RTT jumps from ~base to hundreds of ms.
        let mut sim = one_cell_sim(106, 20, 1);
        let voip = sim.add_flow(FlowConfig {
            cell: 0,
            rnti: 0x4601,
            drb: 1,
            kind: FlowKind::Cbr { bytes: 172, interval_ms: 20 },
            tuple: (0x0A000001, 0x0A000002, 1000, 5004, 17),
            start_ms: 0,
            stop_ms: None,
        });
        let _tcp = sim.add_flow(FlowConfig { start_ms: 5_000, ..greedy(0, 0x4601, 80) });
        sim.run_ms(30_000);
        let log = &sim.flow(voip).rtt_log;
        let before: Vec<u64> =
            log.iter().filter(|(t, _)| *t < 4_000).map(|(_, r)| *r / 1000).collect();
        let after: Vec<u64> =
            log.iter().filter(|(t, _)| *t > 15_000).map(|(_, r)| *r / 1000).collect();
        let avg = |v: &[u64]| v.iter().sum::<u64>() / v.len().max(1) as u64;
        let (b, a) = (avg(&before), avg(&after));
        assert!(b < 40, "VoIP RTT before TCP should be near base: {b} ms");
        assert!(a > 100, "bufferbloat should inflate VoIP RTT: {a} ms");
    }

    #[test]
    fn tc_xapp_recipe_rescues_voip() {
        // Apply the three actions of the paper's TC xApp (second queue,
        // 5-tuple filter, BDP pacer with RR scheduler) and verify the VoIP
        // RTT stays low despite the greedy flow.
        let mut sim = one_cell_sim(106, 20, 1);
        let voip = sim.add_flow(FlowConfig {
            cell: 0,
            rnti: 0x4601,
            drb: 1,
            kind: FlowKind::Cbr { bytes: 172, interval_ms: 20 },
            tuple: (0x0A000001, 0x0A000002, 1000, 5004, 17),
            start_ms: 0,
            stop_ms: None,
        });
        let _tcp = sim.add_flow(FlowConfig { start_ms: 2_000, ..greedy(0, 0x4601, 80) });
        for ctrl in [
            TcCtrl::AddQueue { id: 1, kind: QueueKind::Fifo { cap_bytes: 0 } },
            TcCtrl::AddRule {
                rule: FiveTupleRule {
                    id: 1,
                    dst_port: Some(5004),
                    proto: Some(17),
                    ..Default::default()
                },
                queue: 1,
                precedence: 0,
            },
            TcCtrl::SetPacer { pacer: PacerConf::Bdp { target_delay_us: 10_000 } },
        ] {
            sim.cells[0].apply_tc_ctrl(0x4601, 1, &ctrl).unwrap();
        }
        sim.run_ms(30_000);
        let log = &sim.flow(voip).rtt_log;
        let after: Vec<u64> =
            log.iter().filter(|(t, _)| *t > 15_000).map(|(_, r)| *r / 1000).collect();
        let avg = after.iter().sum::<u64>() / after.len().max(1) as u64;
        assert!(avg < 80, "TC xApp keeps VoIP RTT low, got {avg} ms");
    }

    #[test]
    fn nvs_isolation_between_slices() {
        // Fig. 13a shape: two slices 50/50, one UE in slice 0 and two in
        // slice 1 → the lone UE gets ≈50 % of cell throughput.
        let mut sim = one_cell_sim(106, 20, 3);
        let cell = &mut sim.cells[0];
        cell.apply_slice_ctrl(&SliceCtrl::SetAlgo { algo: SliceAlgo::Nvs }).unwrap();
        cell.apply_slice_ctrl(&SliceCtrl::AddModSlices {
            slices: vec![
                SliceConf {
                    id: 0,
                    label: "white".into(),
                    params: SliceParams::NvsCapacity { share_milli: 500 },
                    ue_sched: UeSchedAlgo::PropFair,
                },
                SliceConf {
                    id: 1,
                    label: "rest".into(),
                    params: SliceParams::NvsCapacity { share_milli: 500 },
                    ue_sched: UeSchedAlgo::PropFair,
                },
            ],
        })
        .unwrap();
        cell.apply_slice_ctrl(&SliceCtrl::AssocUeSlice {
            assoc: vec![(0x4601, 0), (0x4602, 1), (0x4603, 1)],
        })
        .unwrap();
        let f1 = sim.add_flow(greedy(0, 0x4601, 80));
        let f2 = sim.add_flow(greedy(0, 0x4602, 81));
        let f3 = sim.add_flow(greedy(0, 0x4603, 82));
        sim.run_ms(15_000);
        let d1 = sim.flow(f1).delivered_bytes as f64;
        let d2 = sim.flow(f2).delivered_bytes as f64;
        let d3 = sim.flow(f3).delivered_bytes as f64;
        let share1 = d1 / (d1 + d2 + d3);
        assert!((share1 - 0.5).abs() < 0.07, "lone slice-0 UE got {share1:.3}, want ≈0.5");
        let ratio23 = d2 / d3;
        assert!((0.7..1.4).contains(&ratio23), "slice-1 UEs share equally: {ratio23:.2}");
    }

    #[test]
    fn admission_control_rejected_via_ctrl() {
        let mut sim = one_cell_sim(106, 20, 1);
        let cell = &mut sim.cells[0];
        cell.apply_slice_ctrl(&SliceCtrl::SetAlgo { algo: SliceAlgo::Nvs }).unwrap();
        let over = SliceCtrl::AddModSlices {
            slices: vec![SliceConf {
                id: 0,
                label: "too big".into(),
                params: SliceParams::NvsCapacity { share_milli: 1100 },
                ue_sched: UeSchedAlgo::RoundRobin,
            }],
        };
        assert!(cell.apply_slice_ctrl(&over).is_err());
        assert!(cell
            .apply_slice_ctrl(&SliceCtrl::AssocUeSlice { assoc: vec![(0x9999, 0)] })
            .is_err());
    }

    #[test]
    fn rrc_events_on_attach_detach() {
        let mut sim = one_cell_sim(25, 28, 2);
        sim.detach_ue(0, 0x4601);
        let events = sim.cells[0].take_rrc_events();
        assert_eq!(events.len(), 3, "two attaches + one detach");
        assert!(sim.cells[0].take_rrc_events().is_empty(), "events drained");
    }

    #[test]
    fn drop_tail_losses_reach_the_sender() {
        // Greedy TCP over a small RLC buffer must observe losses and back
        // off (the Cubic sawtooth behind Fig. 11a).
        let mut sim = Sim::new(vec![CellConfig::nr("c", 106)], PathConfig::default());
        sim.attach_ue(0, UeConfig::new(0x4601, 20));
        let f = sim.add_flow(greedy(0, 0x4601, 80));
        sim.run_ms(20_000);
        let flow = sim.flow(f);
        assert!(flow.lost_pkts > 0, "drop-tail losses signalled to the flow");
        let tcp = flow.tcp_state().unwrap();
        assert!(tcp.losses > 0, "cubic registered the losses");
        assert!(tcp.cwnd < crate::traffic::TCP_MAX_WND, "cwnd backed off");
    }

    #[test]
    fn handover_moves_ue_traffic_and_events() {
        let mut sim = Sim::new(
            vec![CellConfig::lte("a", 25), CellConfig::lte("b", 25)],
            PathConfig::default(),
        );
        sim.attach_ue(0, UeConfig::new(0x4601, 28));
        let f = sim.add_flow(greedy(0, 0x4601, 80));
        sim.run_ms(2_000);
        let before = sim.flow(f).delivered_bytes;
        assert!(before > 0);
        let _ = sim.cells[0].take_rrc_events();
        let _ = sim.cells[1].take_rrc_events();

        sim.handover(0x4601, 0, 1).unwrap();
        assert!(sim.cells[0].ues.is_empty());
        assert_eq!(sim.cells[1].ues.len(), 1);
        let out = sim.cells[0].take_rrc_events();
        let inn = sim.cells[1].take_rrc_events();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, flexric_sm::rrc::RrcEventKind::HandoverOut);
        assert_eq!(inn[0].kind, flexric_sm::rrc::RrcEventKind::HandoverIn);

        // Traffic continues in the target cell.
        sim.run_ms(2_000);
        assert!(
            sim.flow(f).delivered_bytes > before + 1_000_000,
            "flow follows the UE to the target cell"
        );
        // Error paths.
        assert!(sim.handover(0x4601, 1, 1).is_err(), "same cell");
        assert!(sim.handover(0x4601, 0, 1).is_err(), "UE not in source");
        assert!(sim.handover(0x4601, 1, 9).is_err(), "bad target");
    }

    #[test]
    fn kpm_counters_accumulate() {
        let mut sim = one_cell_sim(106, 20, 2);
        let _f = sim.add_flow(greedy(0, 0x4601, 80));
        sim.run_ms(500);
        let a = sim.cells[0].kpm_counters();
        sim.run_ms(500);
        let b = sim.cells[0].kpm_counters();
        let ue_a = a.iter().find(|c| c.rnti == 0x4601).unwrap();
        let ue_b = b.iter().find(|c| c.rnti == 0x4601).unwrap();
        assert!(ue_b.dl_bytes_total > ue_a.dl_bytes_total, "cumulative bytes grow");
        assert!(ue_b.dl_prbs_total > ue_a.dl_prbs_total, "cumulative PRBs grow");
        assert!(ue_b.pdcp_tx_aggr > 0);
        // Idle UE's counters stay flat.
        let idle_a = a.iter().find(|c| c.rnti == 0x4602).unwrap();
        let idle_b = b.iter().find(|c| c.rnti == 0x4602).unwrap();
        assert_eq!(idle_a.dl_bytes_total, idle_b.dl_bytes_total);
    }

    #[test]
    fn stats_snapshots_populate() {
        let mut sim = one_cell_sim(106, 20, 2);
        let _f = sim.add_flow(greedy(0, 0x4601, 80));
        sim.run_ms(200);
        let mac = sim.cells[0].mac_stats();
        assert_eq!(mac.ues.len(), 2);
        assert_eq!(mac.cell_prbs, 106);
        let busy = mac.ues.iter().find(|u| u.rnti == 0x4601).unwrap();
        assert!(busy.tbs_dl_bytes > 0, "served UE has DL bytes");
        assert!(busy.dl_aggr_bytes >= busy.tbs_dl_bytes);
        let rlc = sim.cells[0].rlc_stats();
        assert_eq!(rlc.bearers.len(), 2);
        let pdcp = sim.cells[0].pdcp_stats();
        assert!(pdcp.bearers.iter().any(|b| b.tx_pdus > 0));
        let tc = sim.cells[0].tc_stats(0x4601, 1).unwrap();
        assert_eq!(tc.rnti, 0x4601);
        assert!(sim.cells[0].tc_stats(0x9999, 1).is_none());
        let sl = sim.cells[0].slice_stats();
        assert_eq!(sl.ue_assoc.len(), 2);
    }

    #[test]
    fn mac_window_resets_on_snapshot() {
        let mut sim = one_cell_sim(106, 20, 1);
        let _f = sim.add_flow(greedy(0, 0x4601, 80));
        sim.run_ms(100);
        let first = sim.cells[0].mac_stats();
        let second = sim.cells[0].mac_stats();
        assert!(first.ues[0].tbs_dl_bytes > 0);
        assert_eq!(second.ues[0].tbs_dl_bytes, 0, "window reset");
        assert_eq!(second.ues[0].dl_aggr_bytes, first.ues[0].dl_aggr_bytes, "aggregate kept");
    }
}
