//! Traffic generators: CBR (VoIP) and a greedy TCP flow with a
//! Cubic-style congestion controller.
//!
//! The Fig. 11 workload is "a one minute G.711 VoIP conversation through
//! UDP data frames of 172 bytes with an interval of 20 ms […] and a second
//! flow emulating a bufferbloat-prone flow using iperf3" — the latter is a
//! long-lived TCP bulk transfer whose congestion controller (Cubic) "cannot
//! differentiate between the propagation time and the large sojourn time
//! that packets experience in a bloated buffer", so it fills the RLC
//! buffer until drop-tail loss.

use crate::rlc::Packet;

/// What kind of traffic a flow generates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlowKind {
    /// Constant bit rate: `bytes` every `interval_ms` (VoIP-like).
    Cbr {
        /// Payload per packet.
        bytes: u32,
        /// Packet interval.
        interval_ms: u64,
    },
    /// Greedy TCP bulk transfer with Cubic congestion control.
    GreedyTcp {
        /// Maximum segment size.
        mss: u32,
    },
}

/// Configuration of one downlink flow.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Target cell index in the simulation.
    pub cell: usize,
    /// Target UE.
    pub rnti: u16,
    /// Target bearer.
    pub drb: u8,
    /// Generator kind.
    pub kind: FlowKind,
    /// 5-tuple `(src ip, dst ip, src port, dst port, proto)` for the TC
    /// classifier.
    pub tuple: (u32, u32, u16, u16, u8),
    /// When the flow starts (ms).
    pub start_ms: u64,
    /// When the flow stops generating (ms), `None` = never.
    pub stop_ms: Option<u64>,
}

/// Cubic parameters (RFC 8312 defaults).
const CUBIC_C: f64 = 0.4;
const CUBIC_BETA: f64 = 0.7;

/// Receive-window cap in segments: real senders are bounded by the
/// receiver's advertised window (~3 MB here), which bounds how far a
/// queue can bloat even without loss.
pub const TCP_MAX_WND: f64 = 2048.0;

/// Cubic congestion-control state, in MSS units.
#[derive(Debug, Clone)]
pub struct TcpState {
    /// Congestion window, segments.
    pub cwnd: f64,
    /// Slow-start threshold, segments.
    pub ssthresh: f64,
    /// Window before the last reduction.
    pub w_max: f64,
    /// Start of the current cubic epoch (ms).
    pub epoch_start_ms: Option<u64>,
    /// Bytes in flight.
    pub in_flight: u64,
    /// Loss events observed.
    pub losses: u64,
}

impl Default for TcpState {
    fn default() -> Self {
        TcpState {
            cwnd: 10.0,
            ssthresh: f64::MAX,
            w_max: 0.0,
            epoch_start_ms: None,
            in_flight: 0,
            losses: 0,
        }
    }
}

impl TcpState {
    /// Window growth on one ACK at `now_ms`.
    pub fn on_ack(&mut self, now_ms: u64, mss: u32) {
        self.in_flight = self.in_flight.saturating_sub(mss as u64);
        if self.cwnd >= TCP_MAX_WND {
            self.cwnd = TCP_MAX_WND;
            return;
        }
        if self.cwnd < self.ssthresh {
            self.cwnd += 1.0; // slow start
            return;
        }
        let epoch = *self.epoch_start_ms.get_or_insert(now_ms);
        let t = (now_ms - epoch) as f64 / 1000.0;
        let k = (self.w_max * (1.0 - CUBIC_BETA) / CUBIC_C).cbrt();
        let target = CUBIC_C * (t - k).powi(3) + self.w_max;
        if target > self.cwnd {
            // Approach the cubic curve.
            self.cwnd += (target - self.cwnd).clamp(0.0, 1.0);
        } else {
            // TCP-friendly region: gentle AIMD-like growth.
            self.cwnd += 0.05;
        }
    }

    /// Multiplicative decrease on a loss at `now_ms`.
    pub fn on_loss(&mut self, now_ms: u64, mss: u32) {
        self.in_flight = self.in_flight.saturating_sub(mss as u64);
        self.losses += 1;
        self.w_max = self.cwnd;
        self.cwnd = (self.cwnd * CUBIC_BETA).max(2.0);
        self.ssthresh = self.cwnd;
        self.epoch_start_ms = Some(now_ms);
    }

    /// Whether another segment fits in the window.
    pub fn can_send(&self, mss: u32) -> bool {
        self.in_flight + mss as u64 <= (self.cwnd * mss as f64) as u64
    }
}

/// Per-flow generator state.
#[derive(Debug, Clone)]
enum GenState {
    Cbr { next_ms: u64 },
    Tcp(TcpState),
}

/// A live flow.
#[derive(Debug)]
pub struct Flow {
    /// Configuration.
    pub cfg: FlowConfig,
    state: GenState,
    /// Next sequence number.
    seq: u64,
    /// Whether generation is paused (experiment control).
    pub active: bool,
    /// Packets handed to the cell.
    pub tx_pkts: u64,
    /// Packets delivered to the UE.
    pub delivered_pkts: u64,
    /// Packets lost (queue drops).
    pub lost_pkts: u64,
    /// Bytes delivered.
    pub delivered_bytes: u64,
    /// Per-packet RTT log `(sent_ms, rtt_us)` — CBR flows only (Fig. 11c).
    pub rtt_log: Vec<(u64, u64)>,
}

impl Flow {
    /// Creates a flow from its configuration.
    pub fn new(cfg: FlowConfig) -> Self {
        let state = match cfg.kind {
            FlowKind::Cbr { .. } => GenState::Cbr { next_ms: cfg.start_ms },
            FlowKind::GreedyTcp { .. } => GenState::Tcp(TcpState::default()),
        };
        Flow {
            cfg,
            state,
            seq: 0,
            active: true,
            tx_pkts: 0,
            delivered_pkts: 0,
            lost_pkts: 0,
            delivered_bytes: 0,
            rtt_log: Vec::new(),
        }
    }

    fn mk_packet(&mut self, flow_id: usize, bytes: u32, now_ms: u64) -> Packet {
        let (src_ip, dst_ip, src_port, dst_port, proto) = self.cfg.tuple;
        let seq = self.seq;
        self.seq += 1;
        self.tx_pkts += 1;
        Packet {
            flow: flow_id,
            seq,
            bytes,
            sent_ms: now_ms,
            enq_ms: now_ms,
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto,
        }
    }

    /// Emits the packets this flow sends at `now_ms`.
    pub fn generate(&mut self, flow_id: usize, now_ms: u64) -> Vec<Packet> {
        if !self.active
            || now_ms < self.cfg.start_ms
            || self.cfg.stop_ms.is_some_and(|s| now_ms >= s)
        {
            return Vec::new();
        }
        let mut out = Vec::new();
        match self.cfg.kind {
            FlowKind::Cbr { bytes, interval_ms } => {
                let due = {
                    let GenState::Cbr { next_ms } = &mut self.state else {
                        unreachable!("state matches kind")
                    };
                    let mut due = 0;
                    while *next_ms <= now_ms {
                        *next_ms += interval_ms.max(1);
                        due += 1;
                    }
                    due
                };
                for _ in 0..due {
                    let pkt = self.mk_packet(flow_id, bytes, now_ms);
                    out.push(pkt);
                }
            }
            FlowKind::GreedyTcp { mss } => {
                // Bounded per tick to avoid pathological bursts.
                for _ in 0..64 {
                    let can = {
                        let GenState::Tcp(tcp) = &mut self.state else {
                            unreachable!("state matches kind")
                        };
                        if tcp.can_send(mss) {
                            tcp.in_flight += mss as u64;
                            true
                        } else {
                            false
                        }
                    };
                    if !can {
                        break;
                    }
                    let pkt = self.mk_packet(flow_id, mss, now_ms);
                    out.push(pkt);
                }
            }
        }
        out
    }

    /// The packet was delivered to the UE at `now_ms`; `ul_rtt_ms` is the
    /// return-path latency.
    pub fn on_delivered(&mut self, pkt: &Packet, now_ms: u64, ul_rtt_ms: u64) {
        self.delivered_pkts += 1;
        self.delivered_bytes += pkt.bytes as u64;
        if let FlowKind::Cbr { .. } = self.cfg.kind {
            let rtt_us = (now_ms.saturating_sub(pkt.sent_ms) + ul_rtt_ms) * 1000;
            self.rtt_log.push((pkt.sent_ms, rtt_us));
        }
    }

    /// The ACK for a delivered packet arrived back at the sender.
    pub fn on_ack(&mut self, now_ms: u64) {
        if let (GenState::Tcp(tcp), FlowKind::GreedyTcp { mss }) = (&mut self.state, self.cfg.kind)
        {
            tcp.on_ack(now_ms, mss);
        }
    }

    /// The packet was dropped in a queue.
    pub fn on_lost(&mut self, now_ms: u64) {
        self.lost_pkts += 1;
        if let (GenState::Tcp(tcp), FlowKind::GreedyTcp { mss }) = (&mut self.state, self.cfg.kind)
        {
            tcp.on_loss(now_ms, mss);
        }
    }

    /// The TCP state, for inspection in tests.
    pub fn tcp_state(&self) -> Option<&TcpState> {
        match &self.state {
            GenState::Tcp(t) => Some(t),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cbr_cfg() -> FlowConfig {
        FlowConfig {
            cell: 0,
            rnti: 1,
            drb: 1,
            kind: FlowKind::Cbr { bytes: 172, interval_ms: 20 },
            tuple: (1, 2, 100, 5004, 17),
            start_ms: 0,
            stop_ms: Some(1000),
        }
    }

    #[test]
    fn cbr_generates_at_interval() {
        let mut f = Flow::new(cbr_cfg());
        let mut total = 0;
        for t in 0..1000u64 {
            total += f.generate(0, t).len();
        }
        assert_eq!(total, 50, "one packet every 20 ms for 1 s");
        // Stopped after stop_ms.
        assert!(f.generate(0, 1500).is_empty());
    }

    #[test]
    fn cbr_packets_carry_tuple() {
        let mut f = Flow::new(cbr_cfg());
        let pkts = f.generate(0, 0);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].bytes, 172);
        assert_eq!(pkts[0].dst_port, 5004);
        assert_eq!(pkts[0].proto, 17);
    }

    #[test]
    fn tcp_respects_window() {
        let mut f = Flow::new(FlowConfig {
            kind: FlowKind::GreedyTcp { mss: 1500 },
            tuple: (1, 2, 100, 80, 6),
            stop_ms: None,
            ..cbr_cfg()
        });
        let pkts = f.generate(0, 0);
        assert_eq!(pkts.len(), 10, "initial window of 10 segments");
        assert!(f.generate(0, 1).is_empty(), "window full, nothing acked");
        // ACK two segments → two more may fly (slow start doubles).
        f.on_ack(10);
        f.on_ack(10);
        let pkts = f.generate(0, 10);
        assert_eq!(pkts.len(), 4, "2 acked + 2 window growth");
    }

    #[test]
    fn cubic_backoff_and_regrowth() {
        let mut st = TcpState { cwnd: 100.0, ssthresh: 0.0, ..Default::default() };
        st.on_loss(1000, 1500);
        assert!((st.cwnd - 70.0).abs() < 1e-6, "β=0.7 backoff");
        assert_eq!(st.losses, 1);
        let after_loss = st.cwnd;
        // Regrows toward w_max over time.
        for t in 0..20_000u64 {
            st.on_ack(1000 + t, 1500);
        }
        assert!(st.cwnd > after_loss, "cubic regrows");
        assert!(st.cwnd >= 99.0, "approaches w_max {}", st.cwnd);
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut st = TcpState::default();
        let w0 = st.cwnd;
        for _ in 0..10 {
            st.on_ack(0, 1500);
        }
        assert!((st.cwnd - (w0 + 10.0)).abs() < 1e-9, "one segment per ACK in slow start");
    }

    #[test]
    fn rtt_logged_for_cbr_only() {
        let mut f = Flow::new(cbr_cfg());
        let pkts = f.generate(0, 0);
        f.on_delivered(&pkts[0], 30, 10);
        assert_eq!(f.rtt_log, vec![(0, 40_000)]);

        let mut t = Flow::new(FlowConfig {
            kind: FlowKind::GreedyTcp { mss: 1500 },
            stop_ms: None,
            ..cbr_cfg()
        });
        let pkts = t.generate(0, 0);
        t.on_delivered(&pkts[0], 30, 10);
        assert!(t.rtt_log.is_empty());
    }

    #[test]
    fn inactive_flow_is_silent() {
        let mut f = Flow::new(cbr_cfg());
        f.active = false;
        assert!(f.generate(0, 0).is_empty());
        f.active = true;
        assert!(!f.generate(0, 0).is_empty());
    }
}
