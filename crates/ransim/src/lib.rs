//! Discrete-time 4G/5G RAN simulator — the substrate standing in for the
//! paper's OpenAirInterface base stations, Ettus B210 radios and COTS UEs.
//!
//! The simulator models exactly the mechanisms the paper's experiments
//! exercise (see DESIGN.md §1 for the substitution argument):
//!
//! * a 1 ms-TTI MAC with two-level scheduling — a slice scheduler
//!   ([`nvs`]: NVS with/without sharing, static partitioning) above
//!   per-slice UE schedulers (round-robin, proportional fair, max
//!   throughput) — reproducing the isolation/sharing dynamics of
//!   Figs. 13/15;
//! * per-bearer RLC buffers with drop-tail capacity and sojourn-time
//!   tracking ([`rlc`]) — the bottleneck queue behind bufferbloat;
//! * the TC sublayer ([`tc`]): OSI classifier, FIFO/CoDel queues,
//!   RR/priority/WRR schedulers and the 5G-BDP pacer of §6.1.1;
//! * traffic generators ([`traffic`]): G.711-like CBR VoIP and greedy TCP
//!   with a Cubic-style congestion controller that closes the loop through
//!   the RLC queue, so bufferbloat *emerges* rather than being scripted;
//! * a simple PHY abstraction ([`phy`]) mapping `(RAT, MCS, PRBs)` to
//!   drain rate, calibrated to the paper's cells (25 RB LTE ≈ 17 Mbit/s,
//!   106 RB NR MCS 20 ≈ 60 Mbit/s).
//!
//! The engine is virtual-time: [`Sim::tick`] advances exactly one TTI, so
//! a 60 s scenario runs in milliseconds inside tests and the experiment
//! harness; the agent integration layer (`flexric-ctrl`) drives it either
//! from a real-time tokio interval or from the experiment's loop.

pub mod cell;
pub mod kpi;
pub mod nvs;
pub mod phy;
pub mod rlc;
pub mod scenario;
pub mod sim;
pub mod tc;
pub mod traffic;

pub use cell::{Cell, CellConfig, UeConfig};
pub use kpi::{KpiGen, Phase};
pub use phy::{bytes_per_prb_tti, cell_rate_kbps, Rat};
pub use rlc::Packet;
pub use scenario::{ScenarioEngine, ScenarioEvent, ScenarioSpec};
pub use sim::{PathConfig, Sim};
pub use traffic::{Flow, FlowConfig, FlowKind};
