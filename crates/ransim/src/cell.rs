//! One simulated cell: UEs, bearers (TC + RLC), and the two-level MAC
//! scheduler (slice scheduler → per-slice UE scheduler, paper Fig. 12).

use flexric_sm::mac::{MacStatsInd, MacUeStats};
use flexric_sm::pdcp::{PdcpBearerStats, PdcpStatsInd};
use flexric_sm::rlc::{RlcBearerStats, RlcStatsInd};
use flexric_sm::rrc::{RrcEventKind, RrcUeEvent};

/// Cumulative per-UE counters exposed for KPM-style measurements.
#[derive(Debug, Clone, Copy)]
pub struct KpmUeCounters {
    /// The UE.
    pub rnti: u16,
    /// Cumulative DL MAC bytes.
    pub dl_bytes_total: u64,
    /// Cumulative DL PRBs granted.
    pub dl_prbs_total: u64,
    /// Current-window average RLC sojourn (µs).
    pub rlc_sojourn_us_avg: u64,
    /// Cumulative DL PDCP SDU bytes.
    pub pdcp_tx_aggr: u64,
}
use flexric_sm::slice::{SliceAlgo, SliceCtrl, SliceStatsInd, SliceStatus, UeSchedAlgo};
use flexric_sm::tc::{TcCtrl, TcStatsInd};

use crate::nvs::SliceSched;
use crate::phy::{bytes_per_prb_tti, Rat};
use crate::rlc::{Packet, RlcBearer};
use crate::tc::TcLayer;

/// Static configuration of a cell.
#[derive(Debug, Clone)]
pub struct CellConfig {
    /// Human-readable name, for experiment output.
    pub name: String,
    /// Radio access technology.
    pub rat: Rat,
    /// PRBs per TTI (25 = 5 MHz LTE, 50 = 10 MHz LTE, 106 = 20 MHz NR).
    pub prbs: u32,
    /// RLC buffer capacity per bearer in bytes (0 = unbounded).  The
    /// paper's bufferbloat stems from these "large buffers"; the default
    /// mirrors that.
    pub rlc_cap_bytes: u64,
}

impl CellConfig {
    /// An LTE cell of the given bandwidth in PRBs.
    pub fn lte(name: &str, prbs: u32) -> Self {
        CellConfig { name: name.into(), rat: Rat::Lte, prbs, rlc_cap_bytes: 2_000_000 }
    }

    /// An NR cell of the given bandwidth in PRBs.
    pub fn nr(name: &str, prbs: u32) -> Self {
        CellConfig { name: name.into(), rat: Rat::Nr, prbs, rlc_cap_bytes: 2_000_000 }
    }
}

/// Static configuration of a UE.
#[derive(Debug, Clone, Copy)]
pub struct UeConfig {
    /// RNTI.
    pub rnti: u16,
    /// Fixed modulation-and-coding scheme.
    pub mcs: u8,
    /// Reported CQI.
    pub cqi: u8,
    /// Serving PLMN `(mcc, mnc)` — drives multi-tenant partitioning.
    pub plmn: (u16, u16),
    /// S-NSSAI from the attach, if any.
    pub snssai: Option<u32>,
}

impl UeConfig {
    /// A UE with typical defaults.
    pub fn new(rnti: u16, mcs: u8) -> Self {
        UeConfig { rnti, mcs, cqi: 15, plmn: (1, 1), snssai: None }
    }
}

/// One bearer: TC sublayer feeding an RLC buffer, with PDCP counters.
#[derive(Debug)]
pub struct Bearer {
    /// DRB id.
    pub drb_id: u8,
    /// The TC sublayer.
    pub tc: TcLayer,
    /// The RLC buffer.
    pub rlc: RlcBearer,
    pdcp_tx_pdus: u64,
    pdcp_tx_bytes: u64,
    pdcp_tx_aggr: u64,
}

/// Per-UE MAC accounting for the current statistics window.
#[derive(Debug, Default, Clone, Copy)]
struct MacWindow {
    prbs_dl: u32,
    tbs_dl_bytes: u64,
    dl_aggr_bytes: u64,
    prbs_dl_total: u64,
    avg_thr_bptti: f64,
}

/// A UE attached to the cell.
#[derive(Debug)]
pub struct Ue {
    /// Static configuration.
    pub cfg: UeConfig,
    /// Slice association (`u32::MAX` = unassociated/default).
    pub slice: u32,
    /// Bearers (DRB 1 created at attach).
    pub bearers: Vec<Bearer>,
    mac: MacWindow,
}

impl Ue {
    fn backlog(&self) -> u64 {
        self.bearers.iter().map(|b| b.rlc.backlog_bytes()).sum()
    }
}

/// A simulated cell.
pub struct Cell {
    /// Static configuration.
    pub cfg: CellConfig,
    /// Attached UEs.
    pub ues: Vec<Ue>,
    /// The slice scheduler.
    pub sched: SliceSched,
    /// Cumulative handovers out of this cell (KPM surface, never reset).
    pub ho_out_total: u64,
    /// Cumulative handovers into this cell (KPM surface, never reset).
    pub ho_in_total: u64,
    rrc_events: Vec<RrcUeEvent>,
    now_ms: u64,
    window_start_ms: u64,
}

impl Cell {
    /// Creates an empty cell.
    pub fn new(cfg: CellConfig) -> Self {
        Cell {
            cfg,
            ues: Vec::new(),
            sched: SliceSched::new(),
            ho_out_total: 0,
            ho_in_total: 0,
            rrc_events: Vec::new(),
            now_ms: 0,
            window_start_ms: 0,
        }
    }

    /// Attaches a UE with one default bearer (DRB 1); emits an RRC event.
    pub fn attach_ue(&mut self, cfg: UeConfig) {
        let bearer = Bearer {
            drb_id: 1,
            tc: TcLayer::new(),
            rlc: RlcBearer::new(self.cfg.rlc_cap_bytes),
            pdcp_tx_pdus: 0,
            pdcp_tx_bytes: 0,
            pdcp_tx_aggr: 0,
        };
        self.ues.push(Ue {
            cfg,
            slice: u32::MAX,
            bearers: vec![bearer],
            mac: MacWindow::default(),
        });
        self.rrc_events.push(RrcUeEvent {
            rnti: cfg.rnti,
            kind: RrcEventKind::Attach,
            plmn_mcc: cfg.plmn.0,
            plmn_mnc: cfg.plmn.1,
            snssai: cfg.snssai,
        });
    }

    /// Detaches a UE; emits an RRC event.
    pub fn detach_ue(&mut self, rnti: u16) {
        if let Some(pos) = self.ues.iter().position(|u| u.cfg.rnti == rnti) {
            let ue = self.ues.remove(pos);
            self.rrc_events.push(RrcUeEvent {
                rnti,
                kind: RrcEventKind::Detach,
                plmn_mcc: ue.cfg.plmn.0,
                plmn_mnc: ue.cfg.plmn.1,
                snssai: ue.cfg.snssai,
            });
        }
    }

    /// Drains pending RRC events (the RRC SM picks these up).
    pub fn take_rrc_events(&mut self) -> Vec<RrcUeEvent> {
        std::mem::take(&mut self.rrc_events)
    }

    /// Removes a UE without a detach event (handover source side),
    /// returning it with its bearers intact.
    pub(crate) fn extract_ue(&mut self, rnti: u16) -> Option<Ue> {
        let pos = self.ues.iter().position(|u| u.cfg.rnti == rnti)?;
        let ue = self.ues.remove(pos);
        self.ho_out_total += 1;
        self.rrc_events.push(RrcEventKind::HandoverOut.event(
            ue.cfg.rnti,
            ue.cfg.plmn,
            ue.cfg.snssai,
        ));
        Some(ue)
    }

    /// Inserts a handed-over UE (target side).
    pub(crate) fn insert_ue(&mut self, ue: Ue) {
        self.ho_in_total += 1;
        self.rrc_events.push(RrcEventKind::HandoverIn.event(
            ue.cfg.rnti,
            ue.cfg.plmn,
            ue.cfg.snssai,
        ));
        self.ues.push(ue);
    }

    /// Cumulative per-UE counters for KPM-style gauges (never reset, so
    /// multiple KPM subscriptions can compute independent deltas).
    pub fn kpm_counters(&self) -> Vec<KpmUeCounters> {
        self.ues
            .iter()
            .map(|u| KpmUeCounters {
                rnti: u.cfg.rnti,
                dl_bytes_total: u.mac.dl_aggr_bytes,
                dl_prbs_total: u.mac.prbs_dl_total,
                rlc_sojourn_us_avg: u
                    .bearers
                    .iter()
                    .map(|b| b.rlc.sojourn.avg_us())
                    .max()
                    .unwrap_or(0),
                pdcp_tx_aggr: u.bearers.iter().map(|b| b.pdcp_tx_aggr).sum(),
            })
            .collect()
    }

    fn ue_mut(&mut self, rnti: u16) -> Option<&mut Ue> {
        self.ues.iter_mut().find(|u| u.cfg.rnti == rnti)
    }

    /// Delivers a downlink packet into the UE's bearer (SDAP ingress →
    /// TC classifier).  Returns `false` if the packet was dropped.
    pub fn ingress(&mut self, rnti: u16, drb: u8, pkt: Packet) -> bool {
        let now = self.now_ms;
        let Some(ue) = self.ue_mut(rnti) else { return false };
        let Some(bearer) = ue.bearers.iter_mut().find(|b| b.drb_id == drb) else { return false };
        bearer.pdcp_tx_pdus += 1;
        bearer.pdcp_tx_bytes += pkt.bytes as u64;
        bearer.pdcp_tx_aggr += pkt.bytes as u64;
        bearer.tc.ingress(pkt, now)
    }

    /// The effective slice a UE is served in: its association if that
    /// slice exists, otherwise the first configured slice.
    fn effective_slice_idx(&self, ue: &Ue) -> usize {
        self.sched.index_of(ue.slice).unwrap_or(0)
    }

    /// Advances the cell by one TTI: pacer release, slice scheduling, UE
    /// scheduling, RLC drain.  Returns the packets that left the cell this
    /// TTI (they reach the UE after the air-interface latency) plus the
    /// packets dropped at the RLC drop-tail (the sender's loss signal).
    pub fn tick(&mut self, now_ms: u64) -> (Vec<Packet>, Vec<Packet>) {
        self.now_ms = now_ms;
        // 1. TC → RLC release (pacing); overflow at the RLC is loss.
        let mut dropped = Vec::new();
        for ue in &mut self.ues {
            for b in &mut ue.bearers {
                dropped.extend(b.tc.egress(&mut b.rlc, now_ms));
            }
        }
        // 2. MAC scheduling.
        let mut out = Vec::new();
        match self.sched.algo {
            SliceAlgo::Static => {
                let ranges = self.sched.static_ranges();
                for (slice_id, lo, hi) in ranges {
                    if let Some(idx) = self.sched.index_of(slice_id) {
                        let prbs = (hi - lo + 1) as u32;
                        self.serve_slice(idx, prbs, now_ms, &mut out);
                    }
                }
            }
            _ => {
                // Collect backlog per slice id.
                let backlog: Vec<(u32, bool)> = self
                    .sched
                    .slices
                    .iter()
                    .enumerate()
                    .map(|(idx, s)| {
                        let any = self
                            .ues
                            .iter()
                            .any(|u| self.effective_slice_idx(u) == idx && u.backlog() > 0);
                        (s.conf.id, any)
                    })
                    .collect();
                let picked = self.sched.pick(|id| {
                    backlog.iter().find(|(sid, _)| *sid == id).map(|(_, b)| *b).unwrap_or(false)
                });
                if let Some(idx) = picked {
                    let prbs = self.cfg.prbs;
                    self.serve_slice(idx, prbs, now_ms, &mut out);
                }
            }
        }
        (out, dropped)
    }

    /// Distributes `prbs` among the backlogged UEs of slice `slice_idx`
    /// using the slice's UE scheduler, and drains their RLC buffers.
    fn serve_slice(&mut self, slice_idx: usize, prbs: u32, now_ms: u64, out: &mut Vec<Packet>) {
        let algo = self.sched.slices[slice_idx].conf.ue_sched;
        let mut eligible: Vec<usize> = (0..self.ues.len())
            .filter(|&i| {
                self.effective_slice_idx(&self.ues[i]) == slice_idx && self.ues[i].backlog() > 0
            })
            .collect();
        if eligible.is_empty() {
            return;
        }
        match algo {
            UeSchedAlgo::RoundRobin => {
                let cursor = self.sched.slices[slice_idx].rr_cursor;
                let n = eligible.len();
                eligible.rotate_left(cursor % n);
                self.sched.slices[slice_idx].rr_cursor = cursor.wrapping_add(1);
            }
            UeSchedAlgo::PropFair => {
                // Metric: achievable rate over averaged throughput.
                eligible.sort_by(|&a, &b| {
                    let ma = self.pf_metric(a);
                    let mb = self.pf_metric(b);
                    mb.partial_cmp(&ma).unwrap_or(std::cmp::Ordering::Equal)
                });
            }
            UeSchedAlgo::MaxThroughput => {
                eligible.sort_by_key(|&i| std::cmp::Reverse(self.ues[i].cfg.mcs));
            }
        }
        // Water-filling: equal shares, leftover redistributed to UEs that
        // still have backlog (up to a few passes).
        let mut remaining = prbs;
        let mut slice_bytes = 0u64;
        let mut slice_prbs = 0u32;
        for pass in 0..3 {
            if remaining == 0 {
                break;
            }
            let active: Vec<usize> =
                eligible.iter().copied().filter(|&i| self.ues[i].backlog() > 0).collect();
            if active.is_empty() {
                break;
            }
            let per_ue = if matches!(algo, UeSchedAlgo::MaxThroughput) && pass == 0 {
                remaining // max-throughput: best UE takes what it needs
            } else {
                (remaining / active.len() as u32).max(1)
            };
            for &i in &active {
                if remaining == 0 {
                    break;
                }
                let rat = self.cfg.rat;
                let ue = &mut self.ues[i];
                let bprb = bytes_per_prb_tti(rat, ue.cfg.mcs) as u64;
                let want_bytes = ue.backlog();
                let want_prbs = (want_bytes.div_ceil(bprb.max(1))) as u32;
                let grant = per_ue.min(remaining).min(want_prbs.max(1));
                let budget = grant as u64 * bprb;
                let mut drained = 0u64;
                for b in &mut ue.bearers {
                    if drained >= budget {
                        break;
                    }
                    let pkts = b.rlc.drain(budget - drained, now_ms);
                    for p in pkts {
                        drained += p.bytes as u64;
                        out.push(p);
                    }
                    // Partial head bytes also consumed budget; approximate
                    // by recomputing from backlog delta is unnecessary —
                    // drain() already bounded by budget.
                }
                let used_prbs = (drained.div_ceil(bprb.max(1)) as u32).min(grant);
                ue.mac.prbs_dl += used_prbs.max(if drained > 0 { 1 } else { 0 });
                ue.mac.prbs_dl_total += used_prbs as u64;
                ue.mac.tbs_dl_bytes += drained;
                ue.mac.dl_aggr_bytes += drained;
                const A: f64 = 0.01;
                ue.mac.avg_thr_bptti = (1.0 - A) * ue.mac.avg_thr_bptti + A * drained as f64;
                remaining -= grant.min(remaining);
                slice_bytes += drained;
                slice_prbs += used_prbs;
            }
        }
        self.sched.record_service(slice_idx, slice_prbs, slice_bytes);
    }

    fn pf_metric(&self, ue_idx: usize) -> f64 {
        let ue = &self.ues[ue_idx];
        let inst = bytes_per_prb_tti(self.cfg.rat, ue.cfg.mcs) as f64;
        inst / ue.mac.avg_thr_bptti.max(1.0)
    }

    // -----------------------------------------------------------------
    // Service-model surface
    // -----------------------------------------------------------------

    /// Applies a slice-control message; errors carry the admission-control
    /// reason.
    pub fn apply_slice_ctrl(&mut self, ctrl: &SliceCtrl) -> Result<(), String> {
        match ctrl {
            SliceCtrl::SetAlgo { algo } => {
                self.sched.set_algo(*algo);
                Ok(())
            }
            SliceCtrl::AddModSlices { slices } => self.sched.upsert_batch(slices, self.cfg.prbs),
            SliceCtrl::DelSlices { ids } => {
                for id in ids {
                    self.sched.delete(*id)?;
                }
                Ok(())
            }
            SliceCtrl::AssocUeSlice { assoc } => {
                for (rnti, slice) in assoc {
                    match self.ue_mut(*rnti) {
                        Some(ue) => ue.slice = *slice,
                        None => return Err(format!("no UE {rnti:#x}")),
                    }
                }
                Ok(())
            }
        }
    }

    /// Applies a traffic-control message to one bearer.
    pub fn apply_tc_ctrl(&mut self, rnti: u16, drb: u8, ctrl: &TcCtrl) -> Result<(), String> {
        let Some(ue) = self.ue_mut(rnti) else { return Err(format!("no UE {rnti:#x}")) };
        let Some(bearer) = ue.bearers.iter_mut().find(|b| b.drb_id == drb) else {
            return Err(format!("no DRB {drb}"));
        };
        match ctrl {
            TcCtrl::AddQueue { id, kind } => {
                bearer.tc.add_queue(*id, *kind);
                Ok(())
            }
            TcCtrl::DelQueue { id } => bearer.tc.del_queue(*id).map_err(|e| e.to_owned()),
            TcCtrl::AddRule { rule, queue, precedence } => {
                bearer.tc.add_rule(*rule, *queue, *precedence).map_err(|e| e.to_owned())
            }
            TcCtrl::DelRule { rule_id } => bearer.tc.del_rule(*rule_id).map_err(|e| e.to_owned()),
            TcCtrl::SetSched { algo, weights } => {
                bearer.tc.set_sched(*algo, weights.clone());
                Ok(())
            }
            TcCtrl::SetPacer { pacer } => {
                bearer.tc.set_pacer(*pacer);
                Ok(())
            }
        }
    }

    /// MAC statistics snapshot; resets the window.
    pub fn mac_stats(&mut self) -> MacStatsInd {
        let ues = self
            .ues
            .iter_mut()
            .map(|u| {
                let w = u.mac;
                u.mac.prbs_dl = 0;
                u.mac.tbs_dl_bytes = 0;
                MacUeStats {
                    rnti: u.cfg.rnti,
                    cqi: u.cfg.cqi,
                    mcs: u.cfg.mcs,
                    prbs_dl: w.prbs_dl,
                    prbs_ul: 0,
                    tbs_dl_bytes: w.tbs_dl_bytes,
                    tbs_ul_bytes: 0,
                    dl_aggr_bytes: w.dl_aggr_bytes,
                    ul_aggr_bytes: 0,
                    bsr: 0,
                    dl_backlog_bytes: u.bearers.iter().map(|b| b.rlc.backlog_bytes()).sum(),
                    slice_id: u.slice,
                    plmn_mcc: u.cfg.plmn.0,
                    plmn_mnc: u.cfg.plmn.1,
                }
            })
            .collect();
        MacStatsInd { tstamp_ms: self.now_ms, cell_prbs: self.cfg.prbs, ues }
    }

    /// RLC statistics snapshot; resets the window.
    pub fn rlc_stats(&mut self) -> RlcStatsInd {
        let mut bearers = Vec::new();
        for u in &mut self.ues {
            for b in &mut u.bearers {
                bearers.push(RlcBearerStats {
                    rnti: u.cfg.rnti,
                    drb_id: b.drb_id,
                    tx_pdus: b.rlc.counters.tx_pdus,
                    tx_bytes: b.rlc.counters.tx_bytes,
                    retx_pdus: 0,
                    dropped_pdus: b.rlc.counters.dropped_pdus,
                    buffer_bytes: b.rlc.backlog_bytes(),
                    buffer_pkts: b.rlc.backlog_pkts(),
                    sojourn_us_avg: b.rlc.sojourn.avg_us(),
                    sojourn_us_max: b.rlc.sojourn.max_us(),
                });
                b.rlc.reset_window();
            }
        }
        RlcStatsInd { tstamp_ms: self.now_ms, bearers }
    }

    /// PDCP statistics snapshot; resets the window.
    pub fn pdcp_stats(&mut self) -> PdcpStatsInd {
        let mut bearers = Vec::new();
        for u in &mut self.ues {
            for b in &mut u.bearers {
                bearers.push(PdcpBearerStats {
                    rnti: u.cfg.rnti,
                    drb_id: b.drb_id,
                    tx_pdus: b.pdcp_tx_pdus,
                    tx_bytes: b.pdcp_tx_bytes,
                    rx_pdus: 0,
                    rx_bytes: 0,
                    tx_aggr_bytes: b.pdcp_tx_aggr,
                    rx_aggr_bytes: 0,
                    rx_discards: 0,
                });
                b.pdcp_tx_pdus = 0;
                b.pdcp_tx_bytes = 0;
            }
        }
        PdcpStatsInd { tstamp_ms: self.now_ms, bearers }
    }

    /// TC statistics snapshot for one bearer; resets its window.
    pub fn tc_stats(&mut self, rnti: u16, drb: u8) -> Option<TcStatsInd> {
        let now = self.now_ms;
        let ue = self.ue_mut(rnti)?;
        let bearer = ue.bearers.iter_mut().find(|b| b.drb_id == drb)?;
        let (queues, pacer_rate_kbps) = bearer.tc.stats(now);
        bearer.tc.reset_window(now);
        Some(TcStatsInd { tstamp_ms: now, rnti, drb_id: drb, queues, pacer_rate_kbps })
    }

    /// Slice statistics snapshot; resets the per-slice windows.
    pub fn slice_stats(&mut self) -> SliceStatsInd {
        let elapsed = (self.now_ms - self.window_start_ms).max(1);
        let slices = self
            .sched
            .slices
            .iter_mut()
            .map(|s| {
                let status = SliceStatus {
                    conf: s.conf.clone(),
                    alloc_prbs: s.window_prbs,
                    thr_kbps: s.window_bytes * 8 / elapsed,
                    num_ues: 0, // filled below
                };
                s.window_prbs = 0;
                s.window_bytes = 0;
                status
            })
            .collect::<Vec<_>>();
        let mut slices = slices;
        for ue in &self.ues {
            let idx = self.sched.index_of(ue.slice).unwrap_or(0);
            if let Some(st) = slices.get_mut(idx) {
                st.num_ues += 1;
            }
        }
        self.window_start_ms = self.now_ms;
        SliceStatsInd {
            tstamp_ms: self.now_ms,
            algo: self.sched.algo,
            slices,
            ue_assoc: self.ues.iter().map(|u| (u.cfg.rnti, u.slice)).collect(),
        }
    }
}
