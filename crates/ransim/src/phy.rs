//! Simplified PHY abstraction: how many MAC bytes fit into one PRB per TTI.
//!
//! The simulator does not model OFDM symbols; it only needs the *drain
//! rate* that a given `(RAT, MCS, #PRBs)` combination sustains, because the
//! experiments in the paper are shaped by that rate (slice throughputs in
//! Figs. 13/15, the bottleneck rate behind the bufferbloat of Fig. 11).
//! Spectral efficiencies follow 3GPP 36.213 Table 7.1.7.1-1 (LTE, 64QAM)
//! and 38.214 Table 5.1.3.1-2 (NR, 256QAM), scaled by the resource elements
//! of one PRB-ms minus control/reference-signal overhead.

/// Radio access technology of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rat {
    /// 4G / LTE.
    Lte,
    /// 5G / New Radio.
    Nr,
}

/// Spectral efficiency (bits per resource element) for LTE MCS 0–28,
/// 64-QAM table (3GPP 36.213 Table 7.1.7.1-1 / 7.1.7.2.1-1 condensed).
const LTE_EFF: [f64; 29] = [
    0.15, 0.19, 0.23, 0.31, 0.38, 0.49, 0.59, 0.74, 0.88, 1.03, 1.18, 1.33, 1.48, 1.70, 1.91, 2.16,
    2.41, 2.57, 2.73, 3.03, 3.32, 3.61, 3.90, 4.21, 4.52, 4.82, 5.12, 5.33, 5.55,
];

/// Spectral efficiency for NR MCS 0–27, 256-QAM table (38.214 Table
/// 5.1.3.1-2 condensed).
const NR_EFF: [f64; 28] = [
    0.23, 0.38, 0.60, 0.88, 1.18, 1.48, 1.70, 1.91, 2.16, 2.41, 2.57, 2.73, 3.03, 3.32, 3.61, 3.90,
    4.21, 4.52, 4.82, 5.12, 5.33, 5.55, 5.89, 6.23, 6.57, 6.91, 7.16, 7.41,
];

/// Usable resource elements in one PRB over one millisecond, after
/// control-channel and reference-signal overhead.
const RE_PER_PRB_MS: f64 = 120.0;

/// MAC-layer bytes one PRB carries in one TTI at the given MCS.
pub fn bytes_per_prb_tti(rat: Rat, mcs: u8) -> u32 {
    let eff = match rat {
        Rat::Lte => LTE_EFF[(mcs as usize).min(LTE_EFF.len() - 1)],
        Rat::Nr => NR_EFF[(mcs as usize).min(NR_EFF.len() - 1)],
    };
    (eff * RE_PER_PRB_MS / 8.0) as u32
}

/// Cell throughput in kbit/s for a full allocation of `prbs` at `mcs`.
pub fn cell_rate_kbps(rat: Rat, mcs: u8, prbs: u32) -> u64 {
    bytes_per_prb_tti(rat, mcs) as u64 * prbs as u64 * 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lte_25rb_mcs28_matches_5mhz_cell() {
        // A 5 MHz LTE cell at MCS 28 peaks around 16-18 Mbit/s — the
        // dashed "dedicated eNB" line of the paper's Fig. 15.
        let kbps = cell_rate_kbps(Rat::Lte, 28, 25);
        assert!((14_000..20_000).contains(&kbps), "LTE 25 RB = {kbps} kbps");
    }

    #[test]
    fn nr_106rb_mcs20_matches_20mhz_cell() {
        // The paper's Fig. 13 NR cell (106 RB, MCS 20) saturates around
        // 60 Mbit/s (two UEs at ~30 Mbit/s each).
        let kbps = cell_rate_kbps(Rat::Nr, 20, 106);
        assert!((55_000..75_000).contains(&kbps), "NR 106 RB = {kbps} kbps");
    }

    #[test]
    fn monotone_in_mcs() {
        for rat in [Rat::Lte, Rat::Nr] {
            let mut last = 0;
            for mcs in 0..28 {
                let b = bytes_per_prb_tti(rat, mcs);
                assert!(b >= last, "{rat:?} mcs {mcs}");
                last = b;
            }
        }
    }

    #[test]
    fn out_of_range_mcs_clamps() {
        assert_eq!(bytes_per_prb_tti(Rat::Lte, 99), bytes_per_prb_tti(Rat::Lte, 28));
        assert_eq!(bytes_per_prb_tti(Rat::Nr, 99), bytes_per_prb_tti(Rat::Nr, 27));
    }
}
