//! Log-bucketed latency histogram in the HdrHistogram style.
//!
//! Values (nanoseconds, bytes, …) are bucketed by magnitude: 16 linear
//! sub-buckets per power of two, so the bucket containing `v` is at most
//! `v/16` wide — ≤ 6.25 % relative error on any reported quantile, over the
//! full `u64` range, with a fixed 976-bucket table.  Recording is four or
//! five `Relaxed` atomic ops and no allocation; buckets are plain counts,
//! so snapshots from different shards, threads, or processes merge by
//! element-wise addition ([`HistSnapshot::merge`]) and the merge is *exact*
//! — merging per-shard snapshots yields bit-identical results to recording
//! everything into one histogram.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// log2 of the number of linear sub-buckets per power of two.
const SUB_BITS: u32 = 4;
/// Linear sub-buckets per power of two (16 → ≤ 6.25 % bucket width).
const SUB: usize = 1 << SUB_BITS;
/// Total buckets covering all of `u64`: 16 exact buckets for `0..16`, then
/// 16 per magnitude for magnitudes 4..=63.
pub const BUCKETS: usize = SUB * (64 - SUB_BITS as usize + 1);

/// Bucket index for a value.  Exact below 16; above, the top `SUB_BITS + 1`
/// significant bits select the bucket.
#[inline]
#[cfg_attr(feature = "obs-off", allow(dead_code))]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = ((v >> shift) & (SUB as u64 - 1)) as usize;
    ((msb - SUB_BITS + 1) as usize) * SUB + sub
}

/// Inclusive upper bound of a bucket — the value reported for quantiles
/// that land in it, so reported quantiles never under-state the truth.
pub fn bucket_bound(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let mag = (idx / SUB) as u32;
    let sub = (idx % SUB) as u64;
    let shift = mag - 1;
    ((SUB as u64 + sub) << shift) + ((1u64 << shift) - 1)
}

struct HistInner {
    buckets: Vec<AtomicU64>,
    #[cfg_attr(feature = "obs-off", allow(dead_code))]
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// Concurrent histogram handle; clones share storage.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistInner>,
}

impl Histogram {
    /// Creates a detached histogram: not registered, not exported — for
    /// ad-hoc aggregation and property tests.  Registered histograms come
    /// from [`crate::registry::histogram`].
    pub fn new() -> Self {
        Histogram {
            inner: Arc::new(HistInner {
                buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Records one value.  All-`Relaxed` atomics, no allocation.
    #[cfg(not(feature = "obs-off"))]
    #[inline]
    pub fn record(&self, v: u64) {
        let inner = &*self.inner;
        inner.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        inner.count.fetch_add(1, Relaxed);
        inner.sum.fetch_add(v, Relaxed);
        inner.min.fetch_min(v, Relaxed);
        inner.max.fetch_max(v, Relaxed);
    }

    /// No-op: hooks are compiled out.
    #[cfg(feature = "obs-off")]
    #[inline]
    pub fn record(&self, _v: u64) {}

    /// Starts a drop-guard that records elapsed nanoseconds into this
    /// histogram when it goes out of scope.
    #[cfg(not(feature = "obs-off"))]
    #[inline]
    pub fn timer(&self) -> Timer<'_> {
        Timer { hist: self, start: std::time::Instant::now() }
    }

    /// No-op guard: neither the clock read nor the record happens.
    #[cfg(feature = "obs-off")]
    #[inline]
    pub fn timer(&self) -> Timer<'_> {
        Timer(std::marker::PhantomData)
    }

    /// Point-in-time copy of the buckets.  Under concurrent writers the cut
    /// is not atomic across buckets, but every recorded value is counted at
    /// most once per snapshot and never twice.
    pub fn snapshot(&self) -> HistSnapshot {
        let inner = &*self.inner;
        let buckets: Vec<u64> = inner.buckets.iter().map(|b| b.load(Relaxed)).collect();
        let count: u64 = buckets.iter().sum();
        HistSnapshot {
            sum: inner.sum.load(Relaxed),
            min: if count == 0 { 0 } else { inner.min.load(Relaxed) },
            max: inner.max.load(Relaxed),
            count,
            buckets,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Drop-guard returned by [`Histogram::timer`] and [`crate::span!`].
#[cfg(not(feature = "obs-off"))]
#[must_use = "the timer records on drop; binding it to `_` drops it immediately"]
pub struct Timer<'a> {
    hist: &'a Histogram,
    start: std::time::Instant,
}

#[cfg(not(feature = "obs-off"))]
impl Drop for Timer<'_> {
    fn drop(&mut self) {
        self.hist.record(self.start.elapsed().as_nanos() as u64);
    }
}

/// Zero-sized stand-in without a `Drop` impl: the guard costs nothing.
#[cfg(feature = "obs-off")]
#[must_use = "the timer records on drop; binding it to `_` drops it immediately"]
pub struct Timer<'a>(std::marker::PhantomData<&'a ()>);

/// Mergeable point-in-time histogram state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket counts (see [`bucket_bound`] for bucket upper bounds).
    pub buckets: Vec<u64>,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values (wrapping).
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl HistSnapshot {
    /// Element-wise merge.  Exact: merging shard snapshots is
    /// indistinguishable from having recorded every value into one
    /// histogram.
    pub fn merge(&mut self, other: &HistSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = if self.count == 0 { other.min } else { self.min.min(other.min) };
        self.max = self.max.max(other.max);
        self.count += other.count;
    }

    /// Nearest-rank percentile at bucket resolution: the reported value is
    /// the upper bound of the bucket holding the rank-th smallest sample
    /// (clamped to the observed max), so it is ≥ the exact percentile and
    /// over-states it by at most 6.25 %.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (((p / 100.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return bucket_bound(idx).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use super::*;

    /// Deterministic xorshift64* stream for property-style sweeps without
    /// external dev-dependencies.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0.wrapping_mul(0x2545F4914F6CDD1D)
        }
    }

    fn interesting_values() -> Vec<u64> {
        let mut vals: Vec<u64> = (0..4096).collect();
        for p in 4..64 {
            let b = 1u64 << p;
            vals.extend([b - 1, b, b + 1]);
        }
        vals.push(u64::MAX);
        let mut rng = Rng(0x5EED);
        for _ in 0..4096 {
            let v = rng.next();
            // Spread across magnitudes, not just the top of the range.
            vals.push(v >> (rng.next() % 64));
        }
        vals
    }

    #[test]
    fn bucket_invariants() {
        for &v in &interesting_values() {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS, "index {idx} out of range for {v}");
            let bound = bucket_bound(idx);
            assert!(bound >= v, "bound {bound} < value {v}");
            if v >= SUB as u64 {
                assert!(bound - v <= v / SUB as u64, "error too large for {v}: bound {bound}");
            } else {
                assert_eq!(bound, v, "exact below {SUB}");
            }
            if v > 0 {
                assert!(bucket_index(v - 1) <= idx, "index not monotone at {v}");
            }
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_bound(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn merge_of_shards_equals_whole() {
        let mut rng = Rng(42);
        let whole = Histogram::new();
        let shards: Vec<Histogram> = (0..4).map(|_| Histogram::new()).collect();
        for i in 0..20_000u64 {
            let v = rng.next() >> (rng.next() % 64);
            whole.record(v);
            shards[(i % 4) as usize].record(v);
        }
        let mut merged = HistSnapshot::default();
        for s in &shards {
            merged.merge(&s.snapshot());
        }
        assert_eq!(merged, whole.snapshot());
    }

    #[test]
    fn percentile_tracks_exact_within_bucket_error() {
        let mut rng = Rng(7);
        let hist = Histogram::new();
        let mut samples: Vec<u64> = Vec::new();
        for _ in 0..10_000 {
            let v = rng.next() >> (rng.next() % 48);
            hist.record(v);
            samples.push(v);
        }
        samples.sort_unstable();
        let snap = hist.snapshot();
        for p in [1.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let exact = crate::stats::percentile(&samples, p);
            let approx = snap.percentile(p);
            assert!(approx >= exact, "p{p}: approx {approx} < exact {exact}");
            assert!(
                approx - exact <= exact / 16 + 1,
                "p{p}: approx {approx} over-states exact {exact} by more than 6.25 %"
            );
        }
        assert_eq!(snap.percentile(100.0), *samples.last().unwrap());
        assert_eq!(snap.min, samples[0]);
        assert_eq!(snap.count, 10_000);
    }

    #[test]
    fn empty_and_single() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.percentile(50.0), 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.mean(), 0.0);
        h.record(7);
        let s = h.snapshot();
        assert_eq!((s.count, s.sum, s.min, s.max), (1, 7, 7, 7));
        assert_eq!(s.percentile(99.0), 7);
    }

    #[test]
    fn merge_handles_empty_sides() {
        let h = Histogram::new();
        h.record(100);
        let mut empty = HistSnapshot::default();
        empty.merge(&h.snapshot());
        assert_eq!(empty, h.snapshot());
        let mut full = h.snapshot();
        full.merge(&HistSnapshot::default());
        assert_eq!(full, h.snapshot());
    }

    #[test]
    fn timer_records() {
        let h = Histogram::new();
        {
            let _t = h.timer();
            std::hint::black_box(0);
        }
        assert_eq!(h.snapshot().count, 1);
    }
}
