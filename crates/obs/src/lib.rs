//! `flexric-obs` — always-on, near-zero-cost observability for the whole
//! stack.
//!
//! The paper's evaluation is entirely about latency and CPU overhead of the
//! E2 path (Figs. 6, 8, 9); this crate makes those quantities readable from
//! a *running* process instead of only from the offline harness in
//! `crates/bench`.  Three pieces:
//!
//! - a global, lock-free [`registry`]: counters are sharded across
//!   cache-line-padded atomics (one shard per thread, round-robin assigned)
//!   and updated with `Relaxed` ordering, so the hot path is a single
//!   uncontended `fetch_add`; registration (the cold path) interns handles
//!   by `(name, labels)` under a mutex, so the same metric registered from
//!   two call sites shares storage;
//! - log-bucketed [`hist::Histogram`]s in the HdrHistogram style — 16
//!   linear sub-buckets per power of two (≤ 6.25 % relative error),
//!   bucketwise-additive snapshots so per-shard or per-process histograms
//!   merge exactly;
//! - a lightweight span API ([`span!`]) that times a scope with a
//!   drop-guard and records into a histogram resolved once per call site
//!   through a local `OnceLock`.
//!
//! Everything renders to Prometheus text exposition format via
//! [`prom::render_text`]; metric names follow `flexric_<layer>_<name>`.
//!
//! The `obs-off` cargo feature compiles out all hot-path mutation and clock
//! reads while leaving registration and rendering intact, so downstream
//! crates carry no `cfg` — the A/B bench in `crates/bench` measures the
//! delta.

pub mod hist;
pub mod prom;
pub mod registry;
pub mod span;
pub mod stats;

pub use hist::{HistSnapshot, Histogram, Timer};
pub use registry::{
    counter, counter_with, gauge, gauge_with, histogram, histogram_with, snapshot, Counter, Gauge,
    SnapMetric, SnapValue, Snapshot,
};
pub use span::Stopwatch;
pub use stats::{percentile, summarize, Summary};
