//! Exact-sample summary statistics.  Moved here from `crates/bench` so the
//! repo has one percentile implementation: the offline harness keeps full
//! sample vectors and uses these exact helpers; the runtime uses the
//! bucketed [`crate::hist::Histogram`], whose quantiles are validated
//! against these in the histogram tests.

/// Percentile of a sorted slice (nearest-rank).
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Summary statistics of a sample set.
#[derive(Debug, Clone, Copy, Default)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Mean.
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Minimum.
    pub min: u64,
    /// Maximum.
    pub max: u64,
}

/// Summarizes raw samples.
pub fn summarize(samples: &mut Vec<u64>) -> Summary {
    if samples.is_empty() {
        return Summary::default();
    }
    samples.sort_unstable();
    Summary {
        n: samples.len(),
        mean: samples.iter().sum::<u64>() as f64 / samples.len() as f64,
        p50: percentile(samples, 50.0),
        p99: percentile(samples, 99.0),
        min: samples[0],
        max: samples[samples.len() - 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&s, 50.0), 50);
        assert_eq!(percentile(&s, 99.0), 99);
        assert_eq!(percentile(&s, 100.0), 100);
        assert_eq!(percentile(&s, 1.0), 1);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 99.0), 7);
    }

    #[test]
    fn summary_fields() {
        let mut s = vec![5, 1, 3, 2, 4];
        let sum = summarize(&mut s);
        assert_eq!(sum.n, 5);
        assert_eq!(sum.min, 1);
        assert_eq!(sum.max, 5);
        assert_eq!(sum.p50, 3);
        assert!((sum.mean - 3.0).abs() < 1e-9);
        let sum = summarize(&mut vec![]);
        assert_eq!(sum.n, 0);
    }
}
