//! Global lock-free metrics registry.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones of
//! shared storage.  Registration interns by `(name, rendered labels)` under
//! a mutex — strictly cold path; updating a metric never takes a lock.
//! Counter increments go to a per-thread shard (cache-line padded, assigned
//! round-robin at first touch) so concurrent writers do not bounce a cache
//! line; reads sum the shards.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};

use crate::hist::{HistSnapshot, Histogram};

/// Number of counter shards.  A small power of two: enough that the handful
/// of runtime threads (agent/server loops, writer tasks, listener tasks)
/// land on distinct cache lines, small enough that summing on scrape is
/// trivial.
pub(crate) const NUM_SHARDS: usize = 16;

/// One cache line per shard so concurrent `fetch_add`s from different
/// threads never contend on the same line.
#[repr(align(64))]
#[derive(Default)]
pub(crate) struct Shard(pub(crate) AtomicU64);

#[cfg_attr(feature = "obs-off", allow(dead_code))]
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

#[cfg(not(feature = "obs-off"))]
thread_local! {
    static MY_SHARD: usize = NEXT_SHARD.fetch_add(1, Relaxed) % NUM_SHARDS;
}

#[cfg(not(feature = "obs-off"))]
#[inline]
pub(crate) fn shard_idx() -> usize {
    MY_SHARD.with(|s| *s)
}

/// Monotonically increasing counter, sharded per thread.
#[derive(Clone)]
pub struct Counter {
    shards: Arc<[Shard; NUM_SHARDS]>,
}

impl Counter {
    pub(crate) fn new() -> Self {
        Counter { shards: Arc::new(std::array::from_fn(|_| Shard::default())) }
    }

    /// Adds `v` to this thread's shard (`Relaxed`; a single uncontended
    /// `fetch_add` on the hot path).
    #[cfg(not(feature = "obs-off"))]
    #[inline]
    pub fn add(&self, v: u64) {
        self.shards[shard_idx()].0.fetch_add(v, Relaxed);
    }

    /// No-op: hooks are compiled out.
    #[cfg(feature = "obs-off")]
    #[inline]
    pub fn add(&self, _v: u64) {}

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Sum across shards.  Not a consistent point-in-time cut under
    /// concurrent writers, but each increment is observed at most once and
    /// never lost — fine for monitoring.
    pub fn value(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Relaxed)).sum()
    }
}

/// Instantaneous signed value (set/add/sub), a single atomic.
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    pub(crate) fn new() -> Self {
        Gauge { cell: Arc::new(AtomicI64::new(0)) }
    }

    #[cfg(not(feature = "obs-off"))]
    #[inline]
    pub fn set(&self, v: i64) {
        self.cell.store(v, Relaxed);
    }

    #[cfg(feature = "obs-off")]
    #[inline]
    pub fn set(&self, _v: i64) {}

    #[cfg(not(feature = "obs-off"))]
    #[inline]
    pub fn add(&self, v: i64) {
        self.cell.fetch_add(v, Relaxed);
    }

    #[cfg(feature = "obs-off")]
    #[inline]
    pub fn add(&self, _v: i64) {}

    /// Decrements by `v`.
    #[inline]
    pub fn sub(&self, v: i64) {
        self.add(-v);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.cell.load(Relaxed)
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    help: String,
    metric: Metric,
}

/// Key is `(metric name, rendered label pairs)`; `BTreeMap` so snapshots and
/// the Prometheus rendering come out sorted, with all label variants of a
/// name adjacent (one `# TYPE` line per name).
struct Registry {
    entries: Mutex<BTreeMap<(String, String), Entry>>,
}

fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry { entries: Mutex::new(BTreeMap::new()) })
}

/// Renders label pairs to the canonical `k="v",k2="v2"` form used both as
/// part of the intern key and verbatim inside `{…}` in the exposition.
fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                _ => out.push(c),
            }
        }
        out.push('"');
    }
    out
}

fn register(
    name: &str,
    labels: &[(&str, &str)],
    help: &str,
    make: impl FnOnce() -> Metric,
) -> Metric {
    let key = (name.to_string(), render_labels(labels));
    let mut entries = global().entries.lock().unwrap_or_else(|e| e.into_inner());
    let entry =
        entries.entry(key).or_insert_with(|| Entry { help: help.to_string(), metric: make() });
    if entry.help.is_empty() && !help.is_empty() {
        entry.help = help.to_string();
    }
    match &entry.metric {
        Metric::Counter(c) => Metric::Counter(c.clone()),
        Metric::Gauge(g) => Metric::Gauge(g.clone()),
        Metric::Histogram(h) => Metric::Histogram(h.clone()),
    }
}

/// Registers (or looks up) a counter.  Re-registering the same
/// `(name, labels)` returns a handle to the same storage.
///
/// Panics if the name is already registered as a different metric kind —
/// that is a programming error, not a runtime condition.
pub fn counter(name: &str, help: &str) -> Counter {
    counter_with(name, &[], help)
}

/// [`counter`] with label pairs (e.g. `&[("codec", "ASN")]`).
pub fn counter_with(name: &str, labels: &[(&str, &str)], help: &str) -> Counter {
    match register(name, labels, help, || Metric::Counter(Counter::new())) {
        Metric::Counter(c) => c,
        m => panic!("obs: {name} already registered as {}", m.kind()),
    }
}

/// Registers (or looks up) a gauge.
pub fn gauge(name: &str, help: &str) -> Gauge {
    gauge_with(name, &[], help)
}

/// [`gauge`] with label pairs.
pub fn gauge_with(name: &str, labels: &[(&str, &str)], help: &str) -> Gauge {
    match register(name, labels, help, || Metric::Gauge(Gauge::new())) {
        Metric::Gauge(g) => g,
        m => panic!("obs: {name} already registered as {}", m.kind()),
    }
}

/// Registers (or looks up) a histogram.
pub fn histogram(name: &str, help: &str) -> Histogram {
    histogram_with(name, &[], help)
}

/// [`histogram`] with label pairs.
pub fn histogram_with(name: &str, labels: &[(&str, &str)], help: &str) -> Histogram {
    match register(name, labels, help, || Metric::Histogram(Histogram::new())) {
        Metric::Histogram(h) => h,
        m => panic!("obs: {name} already registered as {}", m.kind()),
    }
}

/// Point-in-time value of one metric in a [`Snapshot`].
#[derive(Clone, Debug)]
pub enum SnapValue {
    Counter(u64),
    Gauge(i64),
    Hist(HistSnapshot),
}

/// One metric in a [`Snapshot`].
#[derive(Clone, Debug)]
pub struct SnapMetric {
    /// Metric name (`flexric_<layer>_<name>`).
    pub name: String,
    /// Rendered label pairs (`k="v",…`), empty when unlabeled.
    pub labels: String,
    /// Help text from registration.
    pub help: String,
    /// The value.
    pub value: SnapValue,
}

/// A point-in-time copy of every registered metric, sorted by
/// `(name, labels)`.  This is the aggregation boundary: the exporter, the
/// `MetricsReader` iApp, and tests all consume snapshots rather than poking
/// live atomics.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// All metrics, name-sorted.
    pub metrics: Vec<SnapMetric>,
}

impl Snapshot {
    /// Renders to Prometheus text exposition format.
    pub fn render_prom(&self) -> String {
        crate::prom::render(self)
    }

    /// Looks up a counter value by name (unlabeled), mostly for tests.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.metrics.iter().find(|m| m.name == name && m.labels.is_empty()).and_then(|m| {
            match m.value {
                SnapValue::Counter(v) => Some(v),
                _ => None,
            }
        })
    }
}

/// Takes a snapshot of the whole registry.
pub fn snapshot() -> Snapshot {
    let entries = global().entries.lock().unwrap_or_else(|e| e.into_inner());
    let metrics = entries
        .iter()
        .map(|((name, labels), entry)| SnapMetric {
            name: name.clone(),
            labels: labels.clone(),
            help: entry.help.clone(),
            value: match &entry.metric {
                Metric::Counter(c) => SnapValue::Counter(c.value()),
                Metric::Gauge(g) => SnapValue::Gauge(g.value()),
                Metric::Histogram(h) => SnapValue::Hist(h.snapshot()),
            },
        })
        .collect();
    Snapshot { metrics }
}

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use super::*;

    #[test]
    fn counter_interns_by_name_and_labels() {
        let a = counter("obs_test_intern_total", "help");
        let b = counter("obs_test_intern_total", "");
        a.add(3);
        b.inc();
        assert_eq!(a.value(), 4);
        assert_eq!(b.value(), 4);
        let labeled = counter_with("obs_test_intern_total", &[("k", "v")], "");
        labeled.inc();
        assert_eq!(labeled.value(), 1, "distinct labels are distinct storage");
        assert_eq!(a.value(), 4);
    }

    #[test]
    fn counter_sums_across_threads() {
        let c = counter("obs_test_threads_total", "");
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.value(), 80_000);
    }

    #[test]
    fn gauge_set_add_sub() {
        let g = gauge("obs_test_gauge", "");
        g.set(5);
        g.add(3);
        g.sub(2);
        assert_eq!(g.value(), 6);
    }

    #[test]
    fn snapshot_contains_registered_metrics() {
        let c = counter("obs_test_snap_total", "a counter");
        c.add(7);
        let snap = snapshot();
        assert_eq!(snap.counter_value("obs_test_snap_total"), Some(7));
        let m = snap.metrics.iter().find(|m| m.name == "obs_test_snap_total").unwrap();
        assert_eq!(m.help, "a counter");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let _ = counter("obs_test_kind", "");
        let _ = gauge("obs_test_kind", "");
    }

    #[test]
    fn label_escaping() {
        assert_eq!(render_labels(&[("k", "a\"b\\c")]), "k=\"a\\\"b\\\\c\"");
        assert_eq!(render_labels(&[("a", "1"), ("b", "2")]), "a=\"1\",b=\"2\"");
    }
}
