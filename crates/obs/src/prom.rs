//! Prometheus text exposition (format version 0.0.4) rendering of a
//! registry [`Snapshot`].
//!
//! Histograms emit cumulative `_bucket{le="…"}` series for occupied
//! buckets only (the full 976-bucket table would be noise), then the
//! standard `+Inf` bucket, `_sum`, and `_count`.  `# TYPE` / `# HELP` are
//! emitted once per metric name; the snapshot is `(name, labels)`-sorted,
//! so all label variants of a name are adjacent.

use crate::registry::{SnapMetric, SnapValue, Snapshot};

/// Content-Type for HTTP responses carrying this format.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

fn push_series(
    out: &mut String,
    name: &str,
    labels: &str,
    extra: Option<(&str, &str)>,
    value: &str,
) {
    out.push_str(name);
    if !labels.is_empty() || extra.is_some() {
        out.push('{');
        out.push_str(labels);
        if let Some((k, v)) = extra {
            if !labels.is_empty() {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(v);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

fn render_one(out: &mut String, m: &SnapMetric) {
    match &m.value {
        SnapValue::Counter(v) => push_series(out, &m.name, &m.labels, None, &v.to_string()),
        SnapValue::Gauge(v) => push_series(out, &m.name, &m.labels, None, &v.to_string()),
        SnapValue::Hist(h) => {
            let bucket_name = format!("{}_bucket", m.name);
            let mut cum = 0u64;
            for (idx, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                cum += n;
                let le = crate::hist::bucket_bound(idx).to_string();
                push_series(out, &bucket_name, &m.labels, Some(("le", &le)), &cum.to_string());
            }
            push_series(out, &bucket_name, &m.labels, Some(("le", "+Inf")), &h.count.to_string());
            push_series(out, &format!("{}_sum", m.name), &m.labels, None, &h.sum.to_string());
            push_series(out, &format!("{}_count", m.name), &m.labels, None, &h.count.to_string());
        }
    }
}

/// Renders a snapshot to the exposition text.
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::with_capacity(4096);
    let mut prev_name: Option<&str> = None;
    for m in &snap.metrics {
        if prev_name != Some(m.name.as_str()) {
            if !m.help.is_empty() {
                out.push_str("# HELP ");
                out.push_str(&m.name);
                out.push(' ');
                out.push_str(&m.help);
                out.push('\n');
            }
            out.push_str("# TYPE ");
            out.push_str(&m.name);
            out.push(' ');
            out.push_str(match m.value {
                SnapValue::Counter(_) => "counter",
                SnapValue::Gauge(_) => "gauge",
                SnapValue::Hist(_) => "histogram",
            });
            out.push('\n');
            prev_name = Some(m.name.as_str());
        }
        render_one(&mut out, m);
    }
    out
}

/// Snapshots the global registry and renders it — what `GET /metrics`
/// serves.
pub fn render_text() -> String {
    render(&crate::registry::snapshot())
}

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use crate::registry;

    #[test]
    fn renders_counters_gauges_histograms() {
        let c = registry::counter_with("obs_prom_reqs_total", &[("codec", "ASN")], "requests");
        c.add(3);
        let g = registry::gauge("obs_prom_live", "live things");
        g.set(-2);
        let h = registry::histogram("obs_prom_lat_ns", "latency");
        h.record(5);
        h.record(5);
        h.record(100);
        let text = super::render_text();
        assert!(text.contains("# TYPE obs_prom_reqs_total counter"), "{text}");
        assert!(text.contains("obs_prom_reqs_total{codec=\"ASN\"} 3"), "{text}");
        assert!(text.contains("# HELP obs_prom_live live things"), "{text}");
        assert!(text.contains("obs_prom_live -2"), "{text}");
        assert!(text.contains("# TYPE obs_prom_lat_ns histogram"), "{text}");
        assert!(text.contains("obs_prom_lat_ns_bucket{le=\"5\"} 2"), "{text}");
        assert!(text.contains("obs_prom_lat_ns_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("obs_prom_lat_ns_sum 110"), "{text}");
        assert!(text.contains("obs_prom_lat_ns_count 3"), "{text}");
        // Cumulative: the bucket holding 100 includes the two 5s.
        let hundred_bucket = crate::hist::bucket_bound(crate::hist::bucket_index(100));
        assert!(
            text.contains(&format!("obs_prom_lat_ns_bucket{{le=\"{hundred_bucket}\"}} 3")),
            "{text}"
        );
    }

    #[test]
    fn type_line_once_per_name_across_label_variants() {
        let a = registry::counter_with("obs_prom_multi_total", &[("codec", "ASN")], "h");
        let b = registry::counter_with("obs_prom_multi_total", &[("codec", "FB")], "h");
        a.inc();
        b.inc();
        let text = super::render_text();
        let type_lines =
            text.lines().filter(|l| l.starts_with("# TYPE obs_prom_multi_total ")).count();
        assert_eq!(type_lines, 1, "{text}");
    }
}
