//! Lightweight span timing: `obs::span!("e2ap.encode")` returns a guard
//! that records the scope's wall time (ns) into a histogram named
//! `flexric_span_e2ap_encode_ns`.  The histogram handle is resolved once
//! per call site through a local `OnceLock`, so the steady-state cost is
//! one clock read at entry and one clock read + histogram record at drop —
//! and nothing at all under `obs-off`.

use crate::hist::Histogram;

/// Times the enclosing scope into a span histogram.
///
/// ```
/// fn handle() {
///     let _span = flexric_obs::span!("e2ap.encode");
///     // … work …
/// } // recorded into `flexric_span_e2ap_encode_ns` here
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static __OBS_SPAN: ::std::sync::OnceLock<$crate::Histogram> = ::std::sync::OnceLock::new();
        __OBS_SPAN.get_or_init(|| $crate::span::span_histogram($name)).timer()
    }};
}

/// Registers the histogram backing a [`span!`] call site: the span name is
/// sanitized into the metric name `flexric_span_<name>_ns`.
pub fn span_histogram(name: &str) -> Histogram {
    let mut metric = String::with_capacity(name.len() + 17);
    metric.push_str("flexric_span_");
    for c in name.chars() {
        metric.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    metric.push_str("_ns");
    crate::registry::histogram(&metric, "span duration in nanoseconds")
}

/// Wall-clock stopwatch for call sites that need the elapsed value itself
/// (e.g. the ransim TTI overrun check), not just a histogram record.
/// Compiles to nothing under `obs-off`: no clock read, elapsed is 0.
pub struct Stopwatch {
    #[cfg(not(feature = "obs-off"))]
    start: std::time::Instant,
}

impl Stopwatch {
    /// Starts the stopwatch.
    #[cfg(not(feature = "obs-off"))]
    #[inline]
    pub fn start() -> Self {
        Stopwatch { start: std::time::Instant::now() }
    }

    /// No-op: hooks are compiled out.
    #[cfg(feature = "obs-off")]
    #[inline]
    pub fn start() -> Self {
        Stopwatch {}
    }

    /// Elapsed nanoseconds since [`Stopwatch::start`] (0 under `obs-off`).
    #[cfg(not(feature = "obs-off"))]
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Always 0: hooks are compiled out.
    #[cfg(feature = "obs-off")]
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        0
    }
}

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    #[test]
    fn span_macro_records_into_named_histogram() {
        {
            let _s = crate::span!("test.span-macro");
            std::hint::black_box(0);
        }
        {
            let _s = crate::span!("test.span-macro");
        }
        let h = crate::registry::histogram("flexric_span_test_span_macro_ns", "");
        assert_eq!(h.snapshot().count, 2);
    }

    #[test]
    fn stopwatch_measures() {
        let sw = super::Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(sw.elapsed_ns() >= 1_000_000);
    }
}
