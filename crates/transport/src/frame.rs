//! SCTP-like frame header used by the TCP transport.
//!
//! Each message is prefixed with a fixed 10-byte header:
//!
//! ```text
//! 0       4       6         10
//! +-------+-------+---------+----------------+
//! | len   | strm  | ppid    |  payload …     |
//! | u32BE | u16BE | u32BE   |  (len bytes)   |
//! +-------+-------+---------+----------------+
//! ```
//!
//! `len` counts payload bytes only.  This mirrors what an SCTP DATA chunk
//! carries (stream id + PPID + user data) so the E2 layers above see SCTP
//! semantics: message boundaries, ordering, reliability.

use bytes::{Bytes, BytesMut};

/// Size of the frame header in bytes.
pub const HEADER_LEN: usize = 10;

/// Maximum payload accepted, to bound allocations on corrupted input.
pub const MAX_PAYLOAD: usize = 64 * 1024 * 1024;

/// Serializes a frame header.
pub fn encode_header(len: u32, stream: u16, ppid: u32) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0..4].copy_from_slice(&len.to_be_bytes());
    h[4..6].copy_from_slice(&stream.to_be_bytes());
    h[6..10].copy_from_slice(&ppid.to_be_bytes());
    h
}

/// Parses a frame header into `(payload len, stream, ppid)`.
pub fn decode_header(h: &[u8; HEADER_LEN]) -> (u32, u16, u32) {
    let len = u32::from_be_bytes([h[0], h[1], h[2], h[3]]);
    let stream = u16::from_be_bytes([h[4], h[5]]);
    let ppid = u32::from_be_bytes([h[6], h[7], h[8], h[9]]);
    (len, stream, ppid)
}

/// Serializes a full frame (header + payload) into one buffer, so the
/// writer can issue a single `write_all` per message.
///
/// Allocates a fresh buffer per call; hot paths should prefer
/// [`encode_frame_into`] with a reusable scratch buffer, or the direct
/// header+payload writes the TCP send half performs.
pub fn encode_frame(stream: u16, ppid: u32, payload: &Bytes) -> BytesMut {
    let mut buf = BytesMut::with_capacity(HEADER_LEN + payload.len());
    buf.extend_from_slice(&encode_header(payload.len() as u32, stream, ppid));
    buf.extend_from_slice(payload);
    buf
}

/// Serializes a full frame into a reusable scratch buffer, appending after
/// any existing content.  The header is written up front and the payload
/// follows in the same buffer — no intermediate allocation and no second
/// copy once the buffer's capacity is warm.
pub fn encode_frame_into(stream: u16, ppid: u32, payload: &[u8], out: &mut BytesMut) {
    out.reserve(HEADER_LEN + payload.len());
    out.extend_from_slice(&encode_header(payload.len() as u32, stream, ppid));
    out.extend_from_slice(payload);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        for (len, stream, ppid) in
            [(0u32, 0u16, 0u32), (1500, 7, 70), (u32::MAX, u16::MAX, u32::MAX)]
        {
            let h = encode_header(len, stream, ppid);
            assert_eq!(decode_header(&h), (len, stream, ppid));
        }
    }

    #[test]
    fn frame_layout() {
        let payload = Bytes::from_static(b"abc");
        let f = encode_frame(2, 70, &payload);
        assert_eq!(f.len(), HEADER_LEN + 3);
        assert_eq!(&f[0..4], &3u32.to_be_bytes());
        assert_eq!(&f[HEADER_LEN..], b"abc");
    }

    #[test]
    fn encode_frame_into_matches_encode_frame() {
        let payload = Bytes::from_static(b"payload-bytes");
        let owned = encode_frame(3, 70, &payload);
        let mut scratch = BytesMut::new();
        scratch.extend_from_slice(b"already-queued");
        encode_frame_into(3, 70, &payload, &mut scratch);
        assert_eq!(&scratch[..14], b"already-queued");
        assert_eq!(&scratch[14..], &owned[..]);
    }
}
