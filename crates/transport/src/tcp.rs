//! SCTP-like framed transport over TCP.

use std::io;

use bytes::{Bytes, BytesMut};
use tokio::io::{AsyncReadExt, AsyncWriteExt, BufWriter};
use tokio::net::tcp::{OwnedReadHalf, OwnedWriteHalf};
use tokio::net::TcpStream;

use crate::frame::{self, HEADER_LEN, MAX_PAYLOAD};
use crate::WireMsg;

/// A connected framed-TCP transport.
#[derive(Debug)]
pub struct TcpConn {
    tx: TcpSendHalf,
    rx: TcpRecvHalf,
    peer: String,
}

impl TcpConn {
    /// Wraps a connected `TcpStream`.
    pub fn new(stream: TcpStream) -> Self {
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".to_owned());
        let (rd, wr) = stream.into_split();
        TcpConn {
            tx: TcpSendHalf { wr: BufWriter::new(wr) },
            rx: TcpRecvHalf { rd },
            peer,
        }
    }

    /// Sends one message.
    pub async fn send(&mut self, msg: WireMsg) -> io::Result<()> {
        self.tx.send(msg).await
    }

    /// Receives the next message; `None` on orderly shutdown.
    pub async fn recv(&mut self) -> io::Result<Option<WireMsg>> {
        self.rx.recv().await
    }

    /// Splits into owned halves.
    pub fn split(self) -> (TcpSendHalf, TcpRecvHalf) {
        (self.tx, self.rx)
    }

    /// Peer address, for logs.
    pub fn peer(&self) -> String {
        self.peer.clone()
    }
}

/// Owned send half.
#[derive(Debug)]
pub struct TcpSendHalf {
    wr: BufWriter<OwnedWriteHalf>,
}

impl TcpSendHalf {
    /// Sends one message (header + payload, flushed).
    pub async fn send(&mut self, msg: WireMsg) -> io::Result<()> {
        let buf = frame::encode_frame(msg.stream, msg.ppid, &msg.payload);
        self.wr.write_all(&buf).await?;
        // Flush per message: E2 traffic is latency sensitive and messages
        // are the unit of exchange; Nagle is already disabled.
        self.wr.flush().await
    }

    /// Sends a batch of messages with a single flush — used by writer
    /// tasks when several indications are queued in the same tick.
    pub async fn send_batch(&mut self, msgs: &[WireMsg]) -> io::Result<()> {
        for msg in msgs {
            let buf = frame::encode_frame(msg.stream, msg.ppid, &msg.payload);
            self.wr.write_all(&buf).await?;
        }
        self.wr.flush().await
    }
}

/// Owned receive half.
#[derive(Debug)]
pub struct TcpRecvHalf {
    rd: OwnedReadHalf,
}

impl TcpRecvHalf {
    /// Receives the next message; `None` on orderly shutdown at a frame
    /// boundary, an error on mid-frame truncation or oversized frames.
    pub async fn recv(&mut self) -> io::Result<Option<WireMsg>> {
        let mut header = [0u8; HEADER_LEN];
        // First byte distinguishes orderly EOF from truncation.
        match self.rd.read(&mut header[..1]).await? {
            0 => return Ok(None),
            _ => {}
        }
        self.rd.read_exact(&mut header[1..]).await?;
        let (len, stream, ppid) = frame::decode_header(&header);
        if len as usize > MAX_PAYLOAD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame of {len} bytes exceeds maximum"),
            ));
        }
        let mut payload = BytesMut::zeroed(len as usize);
        self.rd.read_exact(&mut payload).await?;
        Ok(Some(WireMsg { stream, ppid, payload: Bytes::from(payload) }))
    }
}
