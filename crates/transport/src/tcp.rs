//! SCTP-like framed transport over TCP.

use std::io;

use bytes::{Bytes, BytesMut};
use tokio::io::{AsyncReadExt, AsyncWriteExt, BufWriter};
use tokio::net::tcp::{OwnedReadHalf, OwnedWriteHalf};
use tokio::net::TcpStream;

use crate::frame::{self, HEADER_LEN, MAX_PAYLOAD};
use crate::WireMsg;

/// A connected framed-TCP transport.
#[derive(Debug)]
pub struct TcpConn {
    tx: TcpSendHalf,
    rx: TcpRecvHalf,
    peer: String,
}

impl TcpConn {
    /// Wraps a connected `TcpStream`.
    pub fn new(stream: TcpStream) -> Self {
        let peer =
            stream.peer_addr().map(|a| a.to_string()).unwrap_or_else(|_| "<unknown>".to_owned());
        let (rd, wr) = stream.into_split();
        TcpConn { tx: TcpSendHalf { wr: BufWriter::new(wr) }, rx: TcpRecvHalf { rd }, peer }
    }

    /// Sends one message.
    pub async fn send(&mut self, msg: WireMsg) -> io::Result<()> {
        self.tx.send(msg).await
    }

    /// Receives the next message; `None` on orderly shutdown.
    pub async fn recv(&mut self) -> io::Result<Option<WireMsg>> {
        self.rx.recv().await
    }

    /// Splits into owned halves.
    pub fn split(self) -> (TcpSendHalf, TcpRecvHalf) {
        (self.tx, self.rx)
    }

    /// Peer address, for logs.
    pub fn peer(&self) -> String {
        self.peer.clone()
    }
}

/// Payloads at least this large bypass the `BufWriter` staging copy and go
/// out as one vectored (header, payload) write instead.
const VECTORED_MIN: usize = 8 * 1024;

/// Owned send half.
#[derive(Debug)]
pub struct TcpSendHalf {
    wr: BufWriter<OwnedWriteHalf>,
}

impl TcpSendHalf {
    /// Writes one frame without flushing.
    ///
    /// Small payloads are staged in the `BufWriter` as header-then-payload —
    /// no per-frame buffer allocation and no header+payload re-copy.  Large
    /// payloads skip staging entirely: the buffered bytes are flushed and
    /// the (header, payload) pair is handed to the kernel as a vectored
    /// write.
    async fn write_frame(&mut self, msg: &WireMsg) -> io::Result<()> {
        let header = frame::encode_header(msg.payload.len() as u32, msg.stream, msg.ppid);
        if msg.payload.len() < VECTORED_MIN {
            self.wr.write_all(&header).await?;
            return self.wr.write_all(&msg.payload).await;
        }
        self.wr.flush().await?;
        let sock = self.wr.get_mut();
        let mut hdr_sent = 0usize;
        let mut pay_sent = 0usize;
        while hdr_sent < HEADER_LEN || pay_sent < msg.payload.len() {
            // Short writes attribute to the header first, so the payload
            // slice only advances once the header is fully out.
            let n = if hdr_sent < HEADER_LEN {
                let bufs = [io::IoSlice::new(&header[hdr_sent..]), io::IoSlice::new(&msg.payload)];
                sock.write_vectored(&bufs).await?
            } else {
                sock.write(&msg.payload[pay_sent..]).await?
            };
            if n == 0 {
                return Err(io::Error::new(io::ErrorKind::WriteZero, "socket closed mid-frame"));
            }
            let for_header = n.min(HEADER_LEN - hdr_sent);
            hdr_sent += for_header;
            pay_sent += n - for_header;
        }
        Ok(())
    }

    /// Sends one message (header + payload, flushed).
    pub async fn send(&mut self, msg: WireMsg) -> io::Result<()> {
        self.write_frame(&msg).await?;
        // Flush per message: E2 traffic is latency sensitive and messages
        // are the unit of exchange; Nagle is already disabled.
        self.wr.flush().await
    }

    /// Sends a batch of messages with a single flush — used by writer
    /// tasks when several indications are queued in the same tick.
    pub async fn send_batch(&mut self, msgs: &[WireMsg]) -> io::Result<()> {
        for msg in msgs {
            self.write_frame(msg).await?;
        }
        self.wr.flush().await
    }
}

/// Owned receive half.
#[derive(Debug)]
pub struct TcpRecvHalf {
    rd: OwnedReadHalf,
}

impl TcpRecvHalf {
    /// Receives the next message; `None` on orderly shutdown at a frame
    /// boundary, an error on mid-frame truncation or oversized frames.
    pub async fn recv(&mut self) -> io::Result<Option<WireMsg>> {
        let mut header = [0u8; HEADER_LEN];
        // First byte distinguishes orderly EOF from truncation.
        match self.rd.read(&mut header[..1]).await? {
            0 => return Ok(None),
            _ => {}
        }
        self.rd.read_exact(&mut header[1..]).await?;
        let (len, stream, ppid) = frame::decode_header(&header);
        if len as usize > MAX_PAYLOAD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame of {len} bytes exceeds maximum"),
            ));
        }
        let mut payload = BytesMut::zeroed(len as usize);
        self.rd.read_exact(&mut payload).await?;
        Ok(Some(WireMsg { stream, ppid, payload: Bytes::from(payload) }))
    }
}
