//! SCTP-like framed transport over TCP.
//!
//! The receive side runs on [`FrameAssembler`]: one large `read_buf` per
//! socket wakeup into a reusable slab, every complete frame sliced out as
//! a refcounted [`Bytes`] view — 1 syscall and 0 per-frame allocations for
//! an N-frame burst.  The pre-assembler path (header `read_exact`, zeroed
//! payload allocation, copy) is kept as [`FramedReader::recv_copying`] for
//! A/B benchmarks and compiles back in as the default under the `rx-copy`
//! feature.

use std::io;

use bytes::{Bytes, BytesMut};
use tokio::io::{AsyncRead, AsyncReadExt, AsyncWriteExt, BufWriter};
use tokio::net::tcp::{OwnedReadHalf, OwnedWriteHalf};
use tokio::net::TcpStream;

use crate::frame::{self, HEADER_LEN, MAX_PAYLOAD};
use crate::rx::{FrameAssembler, FrameError};
use crate::WireMsg;

/// A connected framed-TCP transport.
#[derive(Debug)]
pub struct TcpConn {
    tx: TcpSendHalf,
    rx: TcpRecvHalf,
    peer: String,
}

impl TcpConn {
    /// Wraps a connected `TcpStream`.
    pub fn new(stream: TcpStream) -> Self {
        let peer =
            stream.peer_addr().map(|a| a.to_string()).unwrap_or_else(|_| "<unknown>".to_owned());
        let (rd, wr) = stream.into_split();
        TcpConn {
            tx: TcpSendHalf { wr: BufWriter::new(wr), hdr_scratch: Vec::new() },
            rx: TcpRecvHalf { rd: FramedReader::new(rd) },
            peer,
        }
    }

    /// Sends one message.
    pub async fn send(&mut self, msg: WireMsg) -> io::Result<()> {
        self.tx.send(msg).await
    }

    /// Receives the next message; `None` on orderly shutdown.
    pub async fn recv(&mut self) -> io::Result<Option<WireMsg>> {
        self.rx.recv().await
    }

    /// Splits into owned halves.
    pub fn split(self) -> (TcpSendHalf, TcpRecvHalf) {
        (self.tx, self.rx)
    }

    /// Peer address, for logs.
    pub fn peer(&self) -> String {
        self.peer.clone()
    }
}

/// Payloads at least this large bypass the `BufWriter` staging copy and go
/// out as one vectored (header, payload) write instead.  `send_batch`
/// applies the same threshold to the whole batch: once the coalesced batch
/// exceeds it, the frames go to the kernel as one vectored write with no
/// staging copy at all.
const VECTORED_MIN: usize = 8 * 1024;

/// Maximum frames per vectored `writev` (2 `IoSlice`s per frame, safely
/// under Linux's `IOV_MAX` of 1024).
const VECTORED_MAX_FRAMES: usize = 64;

/// Owned send half.
#[derive(Debug)]
pub struct TcpSendHalf {
    wr: BufWriter<OwnedWriteHalf>,
    /// Reusable header storage for vectored batches (stable addresses for
    /// the `IoSlice`s while a `writev` is in flight).
    hdr_scratch: Vec<[u8; HEADER_LEN]>,
}

impl TcpSendHalf {
    /// Writes one frame without flushing.
    ///
    /// Small payloads are staged in the `BufWriter` as header-then-payload —
    /// no per-frame buffer allocation and no header+payload re-copy.  Large
    /// payloads skip staging entirely: the buffered bytes are flushed and
    /// the (header, payload) pair is handed to the kernel as a vectored
    /// write.
    async fn write_frame(&mut self, msg: &WireMsg) -> io::Result<()> {
        let header = frame::encode_header(msg.payload.len() as u32, msg.stream, msg.ppid);
        if msg.payload.len() < VECTORED_MIN {
            self.wr.write_all(&header).await?;
            return self.wr.write_all(&msg.payload).await;
        }
        self.wr.flush().await?;
        let sock = self.wr.get_mut();
        let mut hdr_sent = 0usize;
        let mut pay_sent = 0usize;
        while hdr_sent < HEADER_LEN || pay_sent < msg.payload.len() {
            // Short writes attribute to the header first, so the payload
            // slice only advances once the header is fully out.
            let n = if hdr_sent < HEADER_LEN {
                let bufs = [io::IoSlice::new(&header[hdr_sent..]), io::IoSlice::new(&msg.payload)];
                sock.write_vectored(&bufs).await?
            } else {
                sock.write(&msg.payload[pay_sent..]).await?
            };
            if n == 0 {
                return Err(io::Error::new(io::ErrorKind::WriteZero, "socket closed mid-frame"));
            }
            let for_header = n.min(HEADER_LEN - hdr_sent);
            hdr_sent += for_header;
            pay_sent += n - for_header;
        }
        Ok(())
    }

    /// Sends one message (header + payload, flushed).
    pub async fn send(&mut self, msg: WireMsg) -> io::Result<()> {
        self.write_frame(&msg).await?;
        // Flush per message: E2 traffic is latency sensitive and messages
        // are the unit of exchange; Nagle is already disabled.
        self.wr.flush().await
    }

    /// Sends a batch of messages with adaptive coalescing.
    ///
    /// Small batches (total under [`VECTORED_MIN`]) are staged through the
    /// `BufWriter` and flushed once — one syscall, one staging copy.
    /// Larger batches skip the staging copy entirely: headers are encoded
    /// into a reusable scratch vector and up to [`VECTORED_MAX_FRAMES`]
    /// frames at a time go to the kernel as a single vectored `writev` of
    /// (header, payload) pairs, reading the payload `Bytes` in place.
    pub async fn send_batch(&mut self, msgs: &[WireMsg]) -> io::Result<()> {
        let total: usize = msgs.iter().map(|m| HEADER_LEN + m.payload.len()).sum();
        if total < VECTORED_MIN {
            for msg in msgs {
                self.write_frame(msg).await?;
            }
            return self.wr.flush().await;
        }
        // Vectored path: drain anything already staged, then writev the
        // batch without copying payloads.
        self.wr.flush().await?;
        for group in msgs.chunks(VECTORED_MAX_FRAMES) {
            self.hdr_scratch.clear();
            for msg in group {
                self.hdr_scratch.push(frame::encode_header(
                    msg.payload.len() as u32,
                    msg.stream,
                    msg.ppid,
                ));
            }
            let mut slices: Vec<io::IoSlice<'_>> = Vec::with_capacity(group.len() * 2);
            for (msg, hdr) in group.iter().zip(&self.hdr_scratch) {
                slices.push(io::IoSlice::new(hdr));
                if !msg.payload.is_empty() {
                    slices.push(io::IoSlice::new(&msg.payload));
                }
            }
            write_all_vectored(self.wr.get_mut(), &mut slices).await?;
        }
        Ok(())
    }
}

/// Writes every byte of `slices`, handling short writes via
/// `IoSlice::advance_slices`.
async fn write_all_vectored(
    sock: &mut OwnedWriteHalf,
    slices: &mut [io::IoSlice<'_>],
) -> io::Result<()> {
    let mut remaining: usize = slices.iter().map(|s| s.len()).sum();
    let mut slices = slices;
    while remaining > 0 {
        let n = sock.write_vectored(slices).await?;
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::WriteZero, "socket closed mid-batch"));
        }
        remaining -= n;
        if remaining == 0 {
            break;
        }
        io::IoSlice::advance_slices(&mut slices, n);
    }
    Ok(())
}

/// Framed reader over any async byte stream: the reassembly loop behind
/// [`TcpRecvHalf`], kept generic so tests and benchmarks can drive it over
/// an in-memory duplex.
#[derive(Debug)]
pub struct FramedReader<R> {
    rd: R,
    asm: FrameAssembler,
    /// Successful non-empty reads issued so far.
    reads: u64,
    /// Frames extracted since the last read, for the per-wakeup histogram.
    frames_since_read: u64,
}

impl<R: AsyncRead + Unpin> FramedReader<R> {
    /// Wraps a byte stream.
    pub fn new(rd: R) -> Self {
        FramedReader { rd, asm: FrameAssembler::new(), reads: 0, frames_since_read: 0 }
    }

    /// Receives the next message; `None` on orderly shutdown at a frame
    /// boundary, an error on mid-frame truncation or oversized frames.
    ///
    /// Buffered frames are returned without touching the socket; a read is
    /// only issued once the slab holds no complete frame.
    pub async fn recv(&mut self) -> io::Result<Option<WireMsg>> {
        loop {
            match self.asm.next_frame() {
                Ok(Some(msg)) => {
                    self.frames_since_read += 1;
                    return Ok(Some(msg));
                }
                Ok(None) => {}
                Err(e @ FrameError::Oversized(_)) => {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
                }
            }
            self.note_wakeup();
            let n = self.rd.read_buf(self.asm.read_slab()).await?;
            if n == 0 {
                return if self.asm.is_clean() {
                    Ok(None)
                } else {
                    Err(io::Error::new(io::ErrorKind::UnexpectedEof, "socket closed mid-frame"))
                };
            }
            self.reads += 1;
        }
    }

    /// Flushes the frames-per-wakeup accounting ahead of a blocking read
    /// (or at EOF): everything extracted since the previous read was
    /// delivered by that single syscall.
    fn note_wakeup(&mut self) {
        if self.frames_since_read > 0 {
            crate::obs().read_frames_per_wakeup.record(self.frames_since_read);
            self.frames_since_read = 0;
        }
    }

    /// The legacy copying receive path: header `read_exact` (one byte
    /// first to distinguish orderly EOF), then a zeroed allocation and a
    /// payload `read_exact` — ≥2 syscalls and 1 alloc+copy per frame.
    ///
    /// Kept for A/B benchmarks (`transport_rx`) and compiled back in as
    /// the default `recv` under the `rx-copy` feature.  Every call bumps
    /// `flexric_transport_rx_copies_total{site="recv"}`.  Must not be
    /// interleaved with the assembler path on one stream.
    pub async fn recv_copying(&mut self) -> io::Result<Option<WireMsg>> {
        debug_assert!(self.asm.is_clean(), "copying recv cannot follow buffered reads");
        let mut header = [0u8; HEADER_LEN];
        // First byte distinguishes orderly EOF from truncation.
        if self.rd.read(&mut header[..1]).await? == 0 {
            return Ok(None);
        }
        self.rd.read_exact(&mut header[1..]).await?;
        let (len, stream, ppid) = frame::decode_header(&header);
        if len as usize > MAX_PAYLOAD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame of {len} bytes exceeds maximum"),
            ));
        }
        let mut payload = BytesMut::zeroed(len as usize);
        self.rd.read_exact(&mut payload).await?;
        crate::obs().rx_copies_recv.inc();
        Ok(Some(WireMsg { stream, ppid, payload: Bytes::from(payload) }))
    }

    /// Successful non-empty reads issued so far (regression tests assert a
    /// burst is consumed in a single read).
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Frames extracted so far.
    pub fn frames(&self) -> u64 {
        self.asm.frames()
    }
}

/// Owned receive half.
#[derive(Debug)]
pub struct TcpRecvHalf {
    rd: FramedReader<OwnedReadHalf>,
}

impl TcpRecvHalf {
    /// Receives the next message; `None` on orderly shutdown at a frame
    /// boundary, an error on mid-frame truncation or oversized frames.
    pub async fn recv(&mut self) -> io::Result<Option<WireMsg>> {
        #[cfg(feature = "rx-copy")]
        {
            self.rd.recv_copying().await
        }
        #[cfg(not(feature = "rx-copy"))]
        {
            self.rd.recv().await
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn burst(n: u16, payload_len: usize) -> BytesMut {
        let mut buf = BytesMut::new();
        for i in 0..n {
            let payload = vec![i as u8; payload_len];
            frame::encode_frame_into(i, 70, &payload, &mut buf);
        }
        buf
    }

    /// Regression for the 1-byte-then-9-byte header read: a multi-frame
    /// burst written in one piece must be consumed in a SINGLE read —
    /// not 2+ syscalls per frame.
    #[tokio::test]
    async fn burst_consumed_in_single_read_over_duplex() {
        let (mut a, b) = tokio::io::duplex(1 << 20);
        let wire = burst(32, 200);
        a.write_all(&wire).await.unwrap();
        let mut rd = FramedReader::new(b);
        for i in 0..32u16 {
            let m = rd.recv().await.unwrap().unwrap();
            assert_eq!(m.stream, i);
            assert_eq!(m.payload.len(), 200);
        }
        assert_eq!(rd.reads(), 1, "whole burst in one read");
        assert_eq!(rd.frames(), 32);
    }

    #[tokio::test]
    async fn duplex_eof_mid_frame_is_an_error() {
        let (mut a, b) = tokio::io::duplex(1 << 16);
        let wire = burst(1, 500);
        a.write_all(&wire[..wire.len() - 100]).await.unwrap();
        drop(a); // truncate mid-payload
        let mut rd = FramedReader::new(b);
        let err = rd.recv().await.unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[tokio::test]
    async fn duplex_eof_at_boundary_is_none() {
        let (mut a, b) = tokio::io::duplex(1 << 16);
        let wire = burst(3, 50);
        a.write_all(&wire).await.unwrap();
        drop(a);
        let mut rd = FramedReader::new(b);
        for _ in 0..3 {
            assert!(rd.recv().await.unwrap().is_some());
        }
        assert!(rd.recv().await.unwrap().is_none());
    }

    #[tokio::test]
    async fn copying_path_agrees_with_assembled_path() {
        let (mut a, b) = tokio::io::duplex(1 << 20);
        let wire = burst(8, 300);
        a.write_all(&wire).await.unwrap();
        drop(a);
        let mut legacy = FramedReader::new(b);
        let mut got = Vec::new();
        while let Some(m) = legacy.recv_copying().await.unwrap() {
            got.push(m);
        }

        let (mut a2, b2) = tokio::io::duplex(1 << 20);
        let wire2 = burst(8, 300);
        a2.write_all(&wire2).await.unwrap();
        drop(a2);
        let mut new = FramedReader::new(b2);
        let mut got2 = Vec::new();
        while let Some(m) = new.recv().await.unwrap() {
            got2.push(m);
        }
        assert_eq!(got, got2, "both paths yield byte-identical WireMsgs");
    }
}
