//! In-process transport: same interface as the TCP transport, but over
//! unbounded channels through a global name registry.
//!
//! Used for deterministic tests and for single-process experiments where
//! network jitter would obscure the quantity being measured.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use parking_lot::Mutex;
use tokio::sync::mpsc;

use crate::WireMsg;

type Registry = Mutex<HashMap<String, mpsc::UnboundedSender<MemConn>>>;

fn registry() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(HashMap::new()))
}

static CONN_IDS: AtomicU64 = AtomicU64::new(0);

/// A connected in-process transport.
#[derive(Debug)]
pub struct MemConn {
    tx: MemSendHalf,
    rx: MemRecvHalf,
    peer: String,
}

impl MemConn {
    fn pair(name: &str) -> (MemConn, MemConn) {
        let id = CONN_IDS.fetch_add(1, Ordering::Relaxed);
        let (a_tx, b_rx) = mpsc::unbounded_channel();
        let (b_tx, a_rx) = mpsc::unbounded_channel();
        let a = MemConn {
            tx: MemSendHalf { tx: a_tx },
            rx: MemRecvHalf { rx: a_rx },
            peer: format!("mem:{name}#{id}"),
        };
        let b = MemConn {
            tx: MemSendHalf { tx: b_tx },
            rx: MemRecvHalf { rx: b_rx },
            peer: format!("mem:{name}#{id}-client"),
        };
        (a, b)
    }

    /// Sends one message.
    pub fn send(&mut self, msg: WireMsg) -> io::Result<()> {
        self.tx.send(msg)
    }

    /// Receives the next message; `None` once the peer is gone.
    pub async fn recv(&mut self) -> io::Result<Option<WireMsg>> {
        self.rx.recv().await
    }

    /// Splits into owned halves.
    pub fn split(self) -> (MemSendHalf, MemRecvHalf) {
        (self.tx, self.rx)
    }

    /// Peer description, for logs.
    pub fn peer(&self) -> String {
        self.peer.clone()
    }
}

/// Owned send half.
#[derive(Debug)]
pub struct MemSendHalf {
    tx: mpsc::UnboundedSender<WireMsg>,
}

impl MemSendHalf {
    /// Sends one message.
    pub fn send(&mut self, msg: WireMsg) -> io::Result<()> {
        self.tx.send(msg).map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer closed"))
    }
}

/// Owned receive half.
#[derive(Debug)]
pub struct MemRecvHalf {
    rx: mpsc::UnboundedReceiver<WireMsg>,
}

impl MemRecvHalf {
    /// Receives the next message; `None` once the peer is gone.
    pub async fn recv(&mut self) -> io::Result<Option<WireMsg>> {
        Ok(self.rx.recv().await)
    }
}

/// A named in-process listener.
#[derive(Debug)]
pub struct MemListener {
    name: String,
    rx: mpsc::UnboundedReceiver<MemConn>,
}

impl MemListener {
    /// Registers `name` in the global registry.
    pub fn bind(name: &str) -> io::Result<Self> {
        let mut reg = registry().lock();
        // A stale entry whose listener has been dropped can be replaced.
        if let Some(tx) = reg.get(name) {
            if !tx.is_closed() {
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!("mem endpoint {name} already bound"),
                ));
            }
        }
        let (tx, rx) = mpsc::unbounded_channel();
        reg.insert(name.to_owned(), tx);
        Ok(MemListener { name: name.to_owned(), rx })
    }

    /// Accepts the next inbound connection.
    pub async fn accept(&mut self) -> io::Result<MemConn> {
        self.rx
            .recv()
            .await
            .ok_or_else(|| io::Error::new(io::ErrorKind::BrokenPipe, "listener closed"))
    }

    /// The registered name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl Drop for MemListener {
    fn drop(&mut self) {
        let mut reg = registry().lock();
        // Only remove our own (now-closed) entry; a racing re-bind may have
        // replaced it already.
        if reg.get(&self.name).is_some_and(|tx| tx.is_closed()) {
            reg.remove(&self.name);
        }
    }
}

/// Connects to the listener registered under `name`.
pub async fn connect(name: &str) -> io::Result<MemConn> {
    let tx = {
        let reg = registry().lock();
        reg.get(name).cloned().ok_or_else(|| {
            io::Error::new(io::ErrorKind::ConnectionRefused, format!("no mem endpoint {name}"))
        })?
    };
    let (server_side, client_side) = MemConn::pair(name);
    tx.send(server_side)
        .map_err(|_| io::Error::new(io::ErrorKind::ConnectionRefused, "listener gone"))?;
    Ok(client_side)
}
