//! Fault injection wrapper, in the spirit of smoltcp's `--drop-chance` /
//! `--corrupt-chance` example options: deterministic, seedable packet loss
//! and corruption on the send path, used by robustness tests.

use std::io;

use crate::{SendHalf, WireMsg};

/// Configuration for the fault injector.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Probability (0..=1) of silently dropping a message.
    pub drop_chance: f64,
    /// Probability (0..=1) of flipping one byte of the payload.
    pub corrupt_chance: f64,
    /// Drop messages whose payload exceeds this size (None = no limit).
    pub size_limit: Option<usize>,
    /// PRNG seed, for reproducibility.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig { drop_chance: 0.0, corrupt_chance: 0.0, size_limit: None, seed: 0x5EED }
    }
}

/// Statistics of what the injector did.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages passed through unmodified.
    pub passed: u64,
    /// Messages dropped.
    pub dropped: u64,
    /// Messages corrupted.
    pub corrupted: u64,
}

/// A send half that randomly drops/corrupts messages.
#[derive(Debug)]
pub struct FaultySender {
    inner: SendHalf,
    cfg: FaultConfig,
    rng_state: u64,
    stats: FaultStats,
}

impl FaultySender {
    /// Wraps `inner` with fault injection per `cfg`.
    pub fn new(inner: SendHalf, cfg: FaultConfig) -> Self {
        FaultySender { inner, cfg, rng_state: cfg.seed.max(1), stats: FaultStats::default() }
    }

    /// xorshift64* — deterministic, seedable, dependency-free.
    fn next_u64(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Sends `msg`, possibly dropping or corrupting it.
    pub async fn send(&mut self, mut msg: WireMsg) -> io::Result<()> {
        if let Some(limit) = self.cfg.size_limit {
            if msg.payload.len() > limit {
                self.stats.dropped += 1;
                return Ok(());
            }
        }
        if self.next_f64() < self.cfg.drop_chance {
            self.stats.dropped += 1;
            return Ok(());
        }
        if !msg.payload.is_empty() && self.next_f64() < self.cfg.corrupt_chance {
            let idx = (self.next_u64() as usize) % msg.payload.len();
            let mut owned = msg.payload.to_vec();
            owned[idx] ^= 0xFF;
            msg.payload = owned.into();
            self.stats.corrupted += 1;
        } else {
            self.stats.passed += 1;
        }
        self.inner.send(msg).await
    }

    /// What the injector has done so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{connect, listen, TransportAddr};
    use bytes::Bytes;

    #[tokio::test]
    async fn drop_all_delivers_nothing() {
        let mut l = listen(&TransportAddr::Mem("fault-drop".into())).await.unwrap();
        let conn = connect(&TransportAddr::Mem("fault-drop".into())).await.unwrap();
        let (tx, _rx) = conn.split();
        let mut faulty =
            FaultySender::new(tx, FaultConfig { drop_chance: 1.0, ..FaultConfig::default() });
        for _ in 0..50 {
            faulty.send(WireMsg::e2ap(Bytes::from_static(b"x"))).await.unwrap();
        }
        assert_eq!(faulty.stats().dropped, 50);
        assert_eq!(faulty.stats().passed, 0);
        let mut server = l.accept().await.unwrap();
        drop(faulty);
        assert!(server.recv().await.unwrap().is_none());
    }

    #[tokio::test]
    async fn corrupt_always_flips_a_byte() {
        let mut l = listen(&TransportAddr::Mem("fault-corrupt".into())).await.unwrap();
        let conn = connect(&TransportAddr::Mem("fault-corrupt".into())).await.unwrap();
        let (tx, _rx) = conn.split();
        let mut faulty =
            FaultySender::new(tx, FaultConfig { corrupt_chance: 1.0, ..FaultConfig::default() });
        let orig = Bytes::from_static(b"payload-bytes");
        faulty.send(WireMsg::e2ap(orig.clone())).await.unwrap();
        assert_eq!(faulty.stats().corrupted, 1);
        let mut server = l.accept().await.unwrap();
        let got = server.recv().await.unwrap().unwrap();
        assert_eq!(got.payload.len(), orig.len());
        assert_ne!(got.payload, orig);
        // Exactly one byte differs.
        let diffs = got.payload.iter().zip(orig.iter()).filter(|(a, b)| a != b).count();
        assert_eq!(diffs, 1);
    }

    #[tokio::test]
    async fn deterministic_for_fixed_seed() {
        async fn run(seed: u64) -> FaultStats {
            let name = format!("fault-det-{seed}");
            let _l = listen(&TransportAddr::Mem(name.clone())).await.unwrap();
            let conn = connect(&TransportAddr::Mem(name)).await.unwrap();
            let (tx, _rx) = conn.split();
            let mut faulty = FaultySender::new(
                tx,
                FaultConfig { drop_chance: 0.3, corrupt_chance: 0.2, seed, size_limit: None },
            );
            for i in 0..200u32 {
                faulty
                    .send(WireMsg { stream: 0, ppid: i, payload: Bytes::from_static(b"abc") })
                    .await
                    .unwrap();
            }
            faulty.stats()
        }
        let a = run(42).await;
        let b = run(42).await;
        assert_eq!(a, b);
        assert!(a.dropped > 30 && a.dropped < 90, "drop rate plausible: {a:?}");
    }

    #[tokio::test]
    async fn size_limit_drops_large() {
        let _l = listen(&TransportAddr::Mem("fault-size".into())).await.unwrap();
        let conn = connect(&TransportAddr::Mem("fault-size".into())).await.unwrap();
        let (tx, _rx) = conn.split();
        let mut faulty =
            FaultySender::new(tx, FaultConfig { size_limit: Some(100), ..FaultConfig::default() });
        faulty.send(WireMsg::e2ap(Bytes::from(vec![0; 101]))).await.unwrap();
        faulty.send(WireMsg::e2ap(Bytes::from(vec![0; 100]))).await.unwrap();
        assert_eq!(faulty.stats().dropped, 1);
        assert_eq!(faulty.stats().passed, 1);
    }
}
