//! Fault injection wrapper, in the spirit of smoltcp's `--drop-chance` /
//! `--corrupt-chance` example options: deterministic, seedable packet loss,
//! corruption, delay and reordering on the send path, used by robustness
//! tests.
//!
//! Two entry points exist:
//!
//! - [`FaultySender`] wraps an owned [`SendHalf`] directly (simple tests);
//! - [`FaultHandle`] is a cloneable, shared injector that the agent/server
//!   writer tasks consult per frame, so a test can keep one end and steer
//!   faults (e.g. [`FaultHandle::drop_next`]) while the stack owns the
//!   transport.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::{SendHalf, WireMsg};

/// Configuration for the fault injector.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Probability (0..=1) of silently dropping a message.
    pub drop_chance: f64,
    /// Probability (0..=1) of flipping one byte of the payload.
    pub corrupt_chance: f64,
    /// Probability (0..=1) of delaying a message by [`delay_ms`](Self::delay_ms).
    pub delay_chance: f64,
    /// How long a delayed message is held back, in milliseconds.
    pub delay_ms: u64,
    /// Probability (0..=1) of holding a message back so it is delivered
    /// after the next one (pairwise reorder).  A held message is released
    /// together with (and after) the next message that passes the injector.
    pub reorder_chance: f64,
    /// Drop messages whose payload exceeds this size (None = no limit).
    pub size_limit: Option<usize>,
    /// PRNG seed, for reproducibility.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            delay_chance: 0.0,
            delay_ms: 0,
            reorder_chance: 0.0,
            size_limit: None,
            seed: 0x5EED,
        }
    }
}

/// Statistics of what the injector did.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages passed through unmodified.
    pub passed: u64,
    /// Messages dropped.
    pub dropped: u64,
    /// Messages corrupted.
    pub corrupted: u64,
    /// Messages delayed.
    pub delayed: u64,
    /// Messages delivered out of order.
    pub reordered: u64,
}

/// Live atomic counters behind a [`FaultHandle`]: [`FaultHandle::stats`]
/// reads them without touching the injector's mutex, so observers never
/// contend with (or need exclusive access to) the fault layer.
#[derive(Debug, Default)]
struct FaultCounters {
    passed: AtomicU64,
    dropped: AtomicU64,
    corrupted: AtomicU64,
    delayed: AtomicU64,
    reordered: AtomicU64,
}

/// Global registry mirrors of the fault counters, aggregated across every
/// injector in the process — what `/metrics` reports.
struct FaultObs {
    passed: flexric_obs::Counter,
    dropped: flexric_obs::Counter,
    corrupted: flexric_obs::Counter,
    delayed: flexric_obs::Counter,
    reordered: flexric_obs::Counter,
}

pub(crate) fn fault_obs() -> &'static FaultObs {
    static M: std::sync::OnceLock<FaultObs> = std::sync::OnceLock::new();
    M.get_or_init(|| FaultObs {
        passed: flexric_obs::counter(
            "flexric_transport_fault_passed_total",
            "messages passed through the fault injector unmodified",
        ),
        dropped: flexric_obs::counter(
            "flexric_transport_fault_dropped_total",
            "messages dropped by the fault injector",
        ),
        corrupted: flexric_obs::counter(
            "flexric_transport_fault_corrupted_total",
            "messages corrupted by the fault injector",
        ),
        delayed: flexric_obs::counter(
            "flexric_transport_fault_delayed_total",
            "messages delayed by the fault injector",
        ),
        reordered: flexric_obs::counter(
            "flexric_transport_fault_reordered_total",
            "messages reordered by the fault injector",
        ),
    })
}

/// What to do with one message, as decided by [`FaultHandle::process`].
#[derive(Debug)]
pub struct FaultVerdict {
    /// Sleep this long before sending (0 = send immediately).
    pub delay_ms: u64,
    /// The messages to put on the wire now, in order.  Empty when the
    /// message was dropped or held back for reordering.
    pub deliver: Vec<WireMsg>,
}

#[derive(Debug)]
struct FaultState {
    cfg: FaultConfig,
    rng_state: u64,
    drop_next: u64,
    held: Option<WireMsg>,
}

impl FaultState {
    /// xorshift64* — deterministic, seedable, dependency-free.
    fn next_u64(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A cloneable, shared fault injector.  All clones act on the same PRNG,
/// statistics, and targeted-drop counter, so a test can hold one clone
/// while the stack's writer tasks consult another.  Statistics live in
/// atomics outside the mutex: [`FaultHandle::stats`] is lock-free, and
/// every event is mirrored into the global metrics registry
/// (`flexric_transport_fault_*_total`).
#[derive(Debug, Clone)]
pub struct FaultHandle {
    state: Arc<Mutex<FaultState>>,
    counters: Arc<FaultCounters>,
}

impl Default for FaultHandle {
    fn default() -> Self {
        FaultHandle::new(FaultConfig::default())
    }
}

impl FaultHandle {
    /// Creates a handle with the given configuration.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultHandle {
            state: Arc::new(Mutex::new(FaultState {
                cfg,
                rng_state: cfg.seed.max(1),
                drop_next: 0,
                held: None,
            })),
            counters: Arc::new(FaultCounters::default()),
        }
    }

    /// Replaces the configuration (the PRNG state is kept).
    pub fn set_config(&self, cfg: FaultConfig) {
        self.state.lock().cfg = cfg;
    }

    /// Unconditionally drops the next `n` messages, regardless of the
    /// probabilistic knobs.  Counters accumulate across calls.
    pub fn drop_next(&self, n: u64) {
        self.state.lock().drop_next += n;
    }

    /// Snapshot of what the injector has done so far.  Reads the atomic
    /// counters directly — never blocks on, or is blocked by, `process`.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            passed: self.counters.passed.load(Relaxed),
            dropped: self.counters.dropped.load(Relaxed),
            corrupted: self.counters.corrupted.load(Relaxed),
            delayed: self.counters.delayed.load(Relaxed),
            reordered: self.counters.reordered.load(Relaxed),
        }
    }

    fn note_dropped(&self) {
        self.counters.dropped.fetch_add(1, Relaxed);
        fault_obs().dropped.inc();
    }

    /// Decides the fate of one message.  Pure bookkeeping — the caller is
    /// responsible for honoring the returned delay and sending the
    /// delivered messages in order.
    pub fn process(&self, mut msg: WireMsg) -> FaultVerdict {
        let mut st = self.state.lock();
        if st.drop_next > 0 {
            st.drop_next -= 1;
            self.note_dropped();
            return FaultVerdict { delay_ms: 0, deliver: vec![] };
        }
        if let Some(limit) = st.cfg.size_limit {
            if msg.payload.len() > limit {
                self.note_dropped();
                return FaultVerdict { delay_ms: 0, deliver: vec![] };
            }
        }
        if st.next_f64() < st.cfg.drop_chance {
            self.note_dropped();
            return FaultVerdict { delay_ms: 0, deliver: vec![] };
        }
        if !msg.payload.is_empty() && st.next_f64() < st.cfg.corrupt_chance {
            let idx = (st.next_u64() as usize) % msg.payload.len();
            let mut owned = msg.payload.to_vec();
            owned[idx] ^= 0xFF;
            msg.payload = owned.into();
            self.counters.corrupted.fetch_add(1, Relaxed);
            fault_obs().corrupted.inc();
        } else {
            self.counters.passed.fetch_add(1, Relaxed);
            fault_obs().passed.inc();
        }
        // Reorder: hold this message back until the next one passes.
        if st.cfg.reorder_chance > 0.0 && st.held.is_none() && st.next_f64() < st.cfg.reorder_chance
        {
            st.held = Some(msg);
            return FaultVerdict { delay_ms: 0, deliver: vec![] };
        }
        let mut deliver = vec![msg];
        if let Some(held) = st.held.take() {
            self.counters.reordered.fetch_add(1, Relaxed);
            fault_obs().reordered.inc();
            deliver.push(held);
        }
        let delay_ms = if st.cfg.delay_chance > 0.0 && st.next_f64() < st.cfg.delay_chance {
            self.counters.delayed.fetch_add(1, Relaxed);
            fault_obs().delayed.inc();
            st.cfg.delay_ms
        } else {
            0
        };
        FaultVerdict { delay_ms, deliver }
    }

    /// Releases a message held back for reordering, if any (end-of-stream
    /// flush).
    pub fn take_held(&self) -> Option<WireMsg> {
        self.state.lock().held.take()
    }
}

/// A send half that randomly drops, corrupts, delays or reorders messages.
#[derive(Debug)]
pub struct FaultySender {
    inner: SendHalf,
    handle: FaultHandle,
}

impl FaultySender {
    /// Wraps `inner` with fault injection per `cfg`.
    pub fn new(inner: SendHalf, cfg: FaultConfig) -> Self {
        FaultySender { inner, handle: FaultHandle::new(cfg) }
    }

    /// Wraps `inner` with a shared injector.
    pub fn with_handle(inner: SendHalf, handle: FaultHandle) -> Self {
        FaultySender { inner, handle }
    }

    /// The shared injector, for steering faults and reading stats.
    pub fn handle(&self) -> FaultHandle {
        self.handle.clone()
    }

    /// Sends `msg`, subject to the configured faults.
    pub async fn send(&mut self, msg: WireMsg) -> io::Result<()> {
        let verdict = self.handle.process(msg);
        if verdict.delay_ms > 0 {
            tokio::time::sleep(Duration::from_millis(verdict.delay_ms)).await;
        }
        for m in verdict.deliver {
            self.inner.send(m).await?;
        }
        Ok(())
    }

    /// Sends a batch, each message subject to the configured faults.
    ///
    /// Surviving messages are delivered through the inner half's
    /// `send_batch`, so the writer's coalesced vectored write is preserved
    /// through the fault layer; a per-message delay flushes what is ready,
    /// sleeps, then resumes batching (ordering around the delay holds).
    pub async fn send_batch(&mut self, msgs: Vec<WireMsg>) -> io::Result<()> {
        let mut ready: Vec<WireMsg> = Vec::with_capacity(msgs.len());
        for msg in msgs {
            let verdict = self.handle.process(msg);
            if verdict.delay_ms > 0 {
                if !ready.is_empty() {
                    self.inner.send_batch(std::mem::take(&mut ready)).await?;
                }
                tokio::time::sleep(Duration::from_millis(verdict.delay_ms)).await;
            }
            ready.extend(verdict.deliver);
        }
        if !ready.is_empty() {
            self.inner.send_batch(ready).await?;
        }
        Ok(())
    }

    /// What the injector has done so far.
    pub fn stats(&self) -> FaultStats {
        self.handle.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{connect, listen, TransportAddr};
    use bytes::Bytes;

    #[tokio::test]
    async fn drop_all_delivers_nothing() {
        let mut l = listen(&TransportAddr::Mem("fault-drop".into())).await.unwrap();
        let conn = connect(&TransportAddr::Mem("fault-drop".into())).await.unwrap();
        let (tx, _rx) = conn.split();
        let mut faulty =
            FaultySender::new(tx, FaultConfig { drop_chance: 1.0, ..FaultConfig::default() });
        for _ in 0..50 {
            faulty.send(WireMsg::e2ap(Bytes::from_static(b"x"))).await.unwrap();
        }
        assert_eq!(faulty.stats().dropped, 50);
        assert_eq!(faulty.stats().passed, 0);
        let mut server = l.accept().await.unwrap();
        drop(faulty);
        assert!(server.recv().await.unwrap().is_none());
    }

    #[tokio::test]
    async fn corrupt_always_flips_a_byte() {
        let mut l = listen(&TransportAddr::Mem("fault-corrupt".into())).await.unwrap();
        let conn = connect(&TransportAddr::Mem("fault-corrupt".into())).await.unwrap();
        let (tx, _rx) = conn.split();
        let mut faulty =
            FaultySender::new(tx, FaultConfig { corrupt_chance: 1.0, ..FaultConfig::default() });
        let orig = Bytes::from_static(b"payload-bytes");
        faulty.send(WireMsg::e2ap(orig.clone())).await.unwrap();
        assert_eq!(faulty.stats().corrupted, 1);
        let mut server = l.accept().await.unwrap();
        let got = server.recv().await.unwrap().unwrap();
        assert_eq!(got.payload.len(), orig.len());
        assert_ne!(got.payload, orig);
        // Exactly one byte differs.
        let diffs = got.payload.iter().zip(orig.iter()).filter(|(a, b)| a != b).count();
        assert_eq!(diffs, 1);
    }

    #[tokio::test]
    async fn deterministic_for_fixed_seed() {
        async fn run(seed: u64) -> FaultStats {
            let name = format!("fault-det-{seed}");
            let _l = listen(&TransportAddr::Mem(name.clone())).await.unwrap();
            let conn = connect(&TransportAddr::Mem(name)).await.unwrap();
            let (tx, _rx) = conn.split();
            let mut faulty = FaultySender::new(
                tx,
                FaultConfig { drop_chance: 0.3, corrupt_chance: 0.2, seed, ..Default::default() },
            );
            for i in 0..200u32 {
                faulty
                    .send(WireMsg { stream: 0, ppid: i, payload: Bytes::from_static(b"abc") })
                    .await
                    .unwrap();
            }
            faulty.stats()
        }
        let a = run(42).await;
        let b = run(42).await;
        assert_eq!(a, b);
        assert!(a.dropped > 30 && a.dropped < 90, "drop rate plausible: {a:?}");
    }

    #[tokio::test]
    async fn size_limit_drops_large() {
        let _l = listen(&TransportAddr::Mem("fault-size".into())).await.unwrap();
        let conn = connect(&TransportAddr::Mem("fault-size".into())).await.unwrap();
        let (tx, _rx) = conn.split();
        let mut faulty =
            FaultySender::new(tx, FaultConfig { size_limit: Some(100), ..FaultConfig::default() });
        faulty.send(WireMsg::e2ap(Bytes::from(vec![0; 101]))).await.unwrap();
        faulty.send(WireMsg::e2ap(Bytes::from(vec![0; 100]))).await.unwrap();
        assert_eq!(faulty.stats().dropped, 1);
        assert_eq!(faulty.stats().passed, 1);
    }

    #[tokio::test]
    async fn drop_next_is_targeted_and_exact() {
        let mut l = listen(&TransportAddr::Mem("fault-dropnext".into())).await.unwrap();
        let conn = connect(&TransportAddr::Mem("fault-dropnext".into())).await.unwrap();
        let (tx, _rx) = conn.split();
        let mut faulty = FaultySender::new(tx, FaultConfig::default());
        faulty.handle().drop_next(2);
        for i in 0..5u32 {
            faulty
                .send(WireMsg { stream: 0, ppid: i, payload: Bytes::from_static(b"m") })
                .await
                .unwrap();
        }
        assert_eq!(faulty.stats().dropped, 2);
        assert_eq!(faulty.stats().passed, 3);
        let mut server = l.accept().await.unwrap();
        // The first two messages (ppid 0, 1) were eaten.
        let got = server.recv().await.unwrap().unwrap();
        assert_eq!(got.ppid, 2);
    }

    #[tokio::test]
    async fn reorder_swaps_adjacent_messages() {
        let mut l = listen(&TransportAddr::Mem("fault-reorder".into())).await.unwrap();
        let conn = connect(&TransportAddr::Mem("fault-reorder".into())).await.unwrap();
        let (tx, _rx) = conn.split();
        let mut faulty =
            FaultySender::new(tx, FaultConfig { reorder_chance: 1.0, ..FaultConfig::default() });
        for i in 0..4u32 {
            faulty
                .send(WireMsg { stream: 0, ppid: i, payload: Bytes::from_static(b"m") })
                .await
                .unwrap();
        }
        let stats = faulty.stats();
        assert!(stats.reordered >= 1, "at least one swap: {stats:?}");
        let mut server = l.accept().await.unwrap();
        let mut seen = Vec::new();
        for _ in 0..stats.passed - u64::from(faulty.handle().take_held().is_some()) {
            seen.push(server.recv().await.unwrap().unwrap().ppid);
        }
        assert_ne!(seen, (0..seen.len() as u32).collect::<Vec<_>>(), "order changed: {seen:?}");
    }

    #[tokio::test]
    async fn delay_holds_messages_back() {
        let mut l = listen(&TransportAddr::Mem("fault-delay".into())).await.unwrap();
        let conn = connect(&TransportAddr::Mem("fault-delay".into())).await.unwrap();
        let (tx, _rx) = conn.split();
        let mut faulty = FaultySender::new(
            tx,
            FaultConfig { delay_chance: 1.0, delay_ms: 30, ..FaultConfig::default() },
        );
        let t0 = std::time::Instant::now();
        faulty.send(WireMsg::e2ap(Bytes::from_static(b"late"))).await.unwrap();
        assert!(t0.elapsed().as_millis() >= 25, "send was delayed");
        assert_eq!(faulty.stats().delayed, 1);
        let mut server = l.accept().await.unwrap();
        assert_eq!(server.recv().await.unwrap().unwrap().payload, Bytes::from_static(b"late"));
    }
}
