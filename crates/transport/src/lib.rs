//! Message-oriented transport abstraction for the E2 interface.
//!
//! O-RAN mandates SCTP as the E2 transport, but the FlexRIC paper abstracts
//! it away: "a wrapper is created to abstract the communication interface
//! allowing to easily switch between different transport protocols" (§4.3).
//! This crate is that wrapper.  Two transports are provided:
//!
//! * [`tcp`] — an SCTP-like framed transport over TCP: message boundaries,
//!   a stream id and a payload protocol id (PPID) per message, preserving
//!   the properties E2 actually relies on (reliable, ordered, message
//!   oriented).  Native SCTP is not practical in pure Rust; this is the
//!   substitution documented in DESIGN.md.
//! * [`mem`] — an in-process channel transport with the same interface, for
//!   deterministic tests and single-process experiments.
//!
//! [`fault`] adds smoltcp-style fault injection (drop/corrupt) on top of
//! either, for robustness tests.

pub mod fault;
pub mod frame;
pub mod mem;
pub mod rx;
pub mod tcp;

use bytes::Bytes;
use std::fmt;
use std::io;

/// Wire-level counters and the write-latency span, shared by all transport
/// instances.  Registered as a block on first use so the transport layer is
/// always present in `/metrics`.
pub(crate) struct TransportMetrics {
    pub tx_frames: flexric_obs::Counter,
    pub tx_bytes: flexric_obs::Counter,
    pub rx_frames: flexric_obs::Counter,
    pub rx_bytes: flexric_obs::Counter,
    pub write_ns: flexric_obs::Histogram,
    /// Complete frames delivered by each socket read — the coalescing win
    /// of the zero-copy receive path (N frames per wakeup vs 1).
    pub read_frames_per_wakeup: flexric_obs::Histogram,
    /// Per-frame payload copies on the receive path.  Zero in steady state
    /// with the assembler; incremented by the legacy `rx-copy` path.  The
    /// codec registers the same series with `site="decode"` for borrowed
    /// decodes that fall back to copying.
    pub rx_copies_recv: flexric_obs::Counter,
}

pub(crate) fn obs() -> &'static TransportMetrics {
    static M: std::sync::OnceLock<TransportMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| {
        // Register the fault-injector series alongside ours: a no-fault
        // deployment still lists them (at zero) in /metrics.
        fault::fault_obs();
        TransportMetrics {
            tx_frames: flexric_obs::counter("flexric_transport_tx_frames_total", "frames sent"),
            tx_bytes: flexric_obs::counter(
                "flexric_transport_tx_bytes_total",
                "payload bytes sent",
            ),
            rx_frames: flexric_obs::counter("flexric_transport_rx_frames_total", "frames received"),
            rx_bytes: flexric_obs::counter(
                "flexric_transport_rx_bytes_total",
                "payload bytes received",
            ),
            write_ns: flexric_obs::histogram(
                "flexric_transport_write_ns",
                "transport write latency (frame + flush, including backpressure)",
            ),
            read_frames_per_wakeup: flexric_obs::histogram(
                "flexric_transport_read_frames_per_wakeup",
                "complete frames delivered by one socket read",
            ),
            rx_copies_recv: flexric_obs::counter_with(
                "flexric_transport_rx_copies_total",
                &[("site", "recv")],
                "per-frame payload copies on the receive path",
            ),
        }
    })
}

/// One transport-level message (the unit SCTP would deliver).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireMsg {
    /// Stream id (SCTP stream); E2AP uses stream 0 for global procedures
    /// and nonzero streams for functional traffic.
    pub stream: u16,
    /// Payload protocol id; E2AP is PPID 70 per IANA.
    pub ppid: u32,
    /// The encoded E2AP PDU.
    pub payload: Bytes,
}

impl WireMsg {
    /// PPID assigned to E2AP.
    pub const PPID_E2AP: u32 = 70;

    /// Stream carrying global/control procedures (setup, subscription,
    /// control) — prioritized by the conn writer under load.
    pub const STREAM_CONTROL: u16 = 0;

    /// Stream carrying bulk functional traffic (RIC indications).
    pub const STREAM_BULK: u16 = 1;

    /// Convenience constructor for E2AP traffic on stream 0.
    pub fn e2ap(payload: Bytes) -> Self {
        WireMsg { stream: Self::STREAM_CONTROL, ppid: Self::PPID_E2AP, payload }
    }

    /// E2AP traffic on an explicit stream.
    pub fn e2ap_on(stream: u16, payload: Bytes) -> Self {
        WireMsg { stream, ppid: Self::PPID_E2AP, payload }
    }

    /// True for control-procedure traffic (stream 0), which overtakes
    /// queued bulk indications in the writer task.
    pub fn is_control(&self) -> bool {
        self.stream == Self::STREAM_CONTROL
    }
}

/// Address of a transport endpoint.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TransportAddr {
    /// TCP socket address (SCTP-like framing on top).
    Tcp(std::net::SocketAddr),
    /// Named in-process endpoint.
    Mem(String),
}

impl TransportAddr {
    /// Parses `"mem:name"` or `"host:port"`.
    pub fn parse(s: &str) -> io::Result<Self> {
        if let Some(name) = s.strip_prefix("mem:") {
            Ok(TransportAddr::Mem(name.to_owned()))
        } else {
            s.parse()
                .map(TransportAddr::Tcp)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))
        }
    }
}

impl fmt::Display for TransportAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportAddr::Tcp(a) => write!(f, "{a}"),
            TransportAddr::Mem(n) => write!(f, "mem:{n}"),
        }
    }
}

/// A connected, bidirectional, message-oriented transport.
#[derive(Debug)]
pub enum Transport {
    /// SCTP-like framing over TCP.
    Tcp(tcp::TcpConn),
    /// In-process channels.
    Mem(mem::MemConn),
}

impl Transport {
    /// Sends one message.
    pub async fn send(&mut self, msg: WireMsg) -> io::Result<()> {
        let m = obs();
        m.tx_frames.inc();
        m.tx_bytes.add(msg.payload.len() as u64);
        let _t = m.write_ns.timer();
        match self {
            Transport::Tcp(c) => c.send(msg).await,
            Transport::Mem(c) => c.send(msg),
        }
    }

    /// Receives the next message; `None` on orderly shutdown.
    pub async fn recv(&mut self) -> io::Result<Option<WireMsg>> {
        let res = match self {
            Transport::Tcp(c) => c.recv().await,
            Transport::Mem(c) => c.recv().await,
        };
        if let Ok(Some(msg)) = &res {
            let m = obs();
            m.rx_frames.inc();
            m.rx_bytes.add(msg.payload.len() as u64);
        }
        res
    }

    /// Splits into independently owned send and receive halves.
    pub fn split(self) -> (SendHalf, RecvHalf) {
        match self {
            Transport::Tcp(c) => {
                let (tx, rx) = c.split();
                (SendHalf::Tcp(tx), RecvHalf::Tcp(rx))
            }
            Transport::Mem(c) => {
                let (tx, rx) = c.split();
                (SendHalf::Mem(tx), RecvHalf::Mem(rx))
            }
        }
    }

    /// Description of the peer, for logs.
    pub fn peer(&self) -> String {
        match self {
            Transport::Tcp(c) => c.peer(),
            Transport::Mem(c) => c.peer(),
        }
    }
}

/// Owned send half of a [`Transport`].
#[derive(Debug)]
pub enum SendHalf {
    /// TCP half.
    Tcp(tcp::TcpSendHalf),
    /// Mem half.
    Mem(mem::MemSendHalf),
}

impl SendHalf {
    /// Sends one message.
    pub async fn send(&mut self, msg: WireMsg) -> io::Result<()> {
        let m = obs();
        m.tx_frames.inc();
        m.tx_bytes.add(msg.payload.len() as u64);
        let _t = m.write_ns.timer();
        match self {
            SendHalf::Tcp(c) => c.send(msg).await,
            SendHalf::Mem(c) => c.send(msg),
        }
    }

    /// Sends a batch of messages; over TCP this issues a single flush.
    pub async fn send_batch(&mut self, msgs: Vec<WireMsg>) -> io::Result<()> {
        let m = obs();
        m.tx_frames.add(msgs.len() as u64);
        m.tx_bytes.add(msgs.iter().map(|w| w.payload.len() as u64).sum());
        let _t = m.write_ns.timer();
        match self {
            SendHalf::Tcp(c) => c.send_batch(&msgs).await,
            SendHalf::Mem(c) => {
                for w in msgs {
                    c.send(w)?;
                }
                Ok(())
            }
        }
    }
}

/// Owned receive half of a [`Transport`].
#[derive(Debug)]
pub enum RecvHalf {
    /// TCP half.
    Tcp(tcp::TcpRecvHalf),
    /// Mem half.
    Mem(mem::MemRecvHalf),
}

impl RecvHalf {
    /// Receives the next message; `None` on orderly shutdown.
    pub async fn recv(&mut self) -> io::Result<Option<WireMsg>> {
        let res = match self {
            RecvHalf::Tcp(c) => c.recv().await,
            RecvHalf::Mem(c) => c.recv().await,
        };
        if let Ok(Some(msg)) = &res {
            let m = obs();
            m.rx_frames.inc();
            m.rx_bytes.add(msg.payload.len() as u64);
        }
        res
    }
}

/// A listener accepting transport connections.
#[derive(Debug)]
pub enum Listener {
    /// TCP listener.
    Tcp(tokio::net::TcpListener),
    /// In-process listener.
    Mem(mem::MemListener),
}

impl Listener {
    /// Accepts the next inbound connection.
    pub async fn accept(&mut self) -> io::Result<Transport> {
        match self {
            Listener::Tcp(l) => {
                let (stream, _) = l.accept().await?;
                stream.set_nodelay(true)?;
                Ok(Transport::Tcp(tcp::TcpConn::new(stream)))
            }
            Listener::Mem(l) => Ok(Transport::Mem(l.accept().await?)),
        }
    }

    /// The address this listener is bound to (with the ephemeral port
    /// resolved for TCP).
    pub fn local_addr(&self) -> io::Result<TransportAddr> {
        match self {
            Listener::Tcp(l) => Ok(TransportAddr::Tcp(l.local_addr()?)),
            Listener::Mem(l) => Ok(TransportAddr::Mem(l.name().to_owned())),
        }
    }
}

/// Binds a listener at `addr`.
pub async fn listen(addr: &TransportAddr) -> io::Result<Listener> {
    match addr {
        TransportAddr::Tcp(a) => Ok(Listener::Tcp(tokio::net::TcpListener::bind(a).await?)),
        TransportAddr::Mem(name) => Ok(Listener::Mem(mem::MemListener::bind(name)?)),
    }
}

/// Connects to a listener at `addr`.
pub async fn connect(addr: &TransportAddr) -> io::Result<Transport> {
    match addr {
        TransportAddr::Tcp(a) => {
            let stream = tokio::net::TcpStream::connect(a).await?;
            stream.set_nodelay(true)?;
            Ok(Transport::Tcp(tcp::TcpConn::new(stream)))
        }
        TransportAddr::Mem(name) => Ok(Transport::Mem(mem::connect(name).await?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_parse_and_display() {
        let a = TransportAddr::parse("mem:agent0").unwrap();
        assert_eq!(a, TransportAddr::Mem("agent0".into()));
        assert_eq!(a.to_string(), "mem:agent0");
        let t = TransportAddr::parse("127.0.0.1:36421").unwrap();
        assert!(matches!(t, TransportAddr::Tcp(_)));
        assert_eq!(t.to_string(), "127.0.0.1:36421");
        assert!(TransportAddr::parse("not an addr").is_err());
    }

    #[tokio::test]
    async fn mem_roundtrip() {
        let mut l = listen(&TransportAddr::Mem("t-mem-rt".into())).await.unwrap();
        let client = tokio::spawn(async move {
            let mut c = connect(&TransportAddr::Mem("t-mem-rt".into())).await.unwrap();
            c.send(WireMsg::e2ap(Bytes::from_static(b"ping"))).await.unwrap();
            c.recv().await.unwrap().unwrap()
        });
        let mut server_side = l.accept().await.unwrap();
        let got = server_side.recv().await.unwrap().unwrap();
        assert_eq!(got.payload, Bytes::from_static(b"ping"));
        assert_eq!(got.ppid, WireMsg::PPID_E2AP);
        server_side.send(WireMsg::e2ap(Bytes::from_static(b"pong"))).await.unwrap();
        let reply = client.await.unwrap();
        assert_eq!(reply.payload, Bytes::from_static(b"pong"));
    }

    #[tokio::test]
    async fn tcp_roundtrip_with_streams() {
        let mut l = listen(&TransportAddr::parse("127.0.0.1:0").unwrap()).await.unwrap();
        let addr = l.local_addr().unwrap();
        let client = tokio::spawn(async move {
            let mut c = connect(&addr).await.unwrap();
            for i in 0..10u16 {
                c.send(WireMsg { stream: i, ppid: 70, payload: Bytes::from(vec![i as u8; 100]) })
                    .await
                    .unwrap();
            }
            let mut last = None;
            for _ in 0..10 {
                last = c.recv().await.unwrap();
            }
            last
        });
        let mut conn = l.accept().await.unwrap();
        for i in 0..10u16 {
            let m = conn.recv().await.unwrap().unwrap();
            assert_eq!(m.stream, i, "ordering preserved");
            assert_eq!(m.payload.len(), 100);
            conn.send(m).await.unwrap();
        }
        let last = client.await.unwrap().unwrap();
        assert_eq!(last.stream, 9);
    }

    #[tokio::test]
    async fn recv_returns_none_on_close() {
        let mut l = listen(&TransportAddr::Mem("t-close".into())).await.unwrap();
        let client = tokio::spawn(async move {
            let c = connect(&TransportAddr::Mem("t-close".into())).await.unwrap();
            drop(c);
        });
        let mut conn = l.accept().await.unwrap();
        client.await.unwrap();
        assert!(conn.recv().await.unwrap().is_none());
    }

    #[tokio::test]
    async fn tcp_recv_none_on_close() {
        let mut l = listen(&TransportAddr::parse("127.0.0.1:0").unwrap()).await.unwrap();
        let addr = l.local_addr().unwrap();
        let client = tokio::spawn(async move {
            let c = connect(&addr).await.unwrap();
            drop(c);
        });
        let mut conn = l.accept().await.unwrap();
        client.await.unwrap();
        assert!(conn.recv().await.unwrap().is_none());
    }

    #[tokio::test]
    async fn split_halves_work_concurrently() {
        let mut l = listen(&TransportAddr::Mem("t-split".into())).await.unwrap();
        let echo = tokio::spawn(async move {
            let conn = l.accept().await.unwrap();
            let (mut tx, mut rx) = conn.split();
            while let Some(m) = rx.recv().await.unwrap() {
                tx.send(m).await.unwrap();
            }
        });
        let conn = connect(&TransportAddr::Mem("t-split".into())).await.unwrap();
        let (mut tx, mut rx) = conn.split();
        for i in 0..100u32 {
            tx.send(WireMsg { stream: 0, ppid: i, payload: Bytes::new() }).await.unwrap();
        }
        for i in 0..100u32 {
            let m = rx.recv().await.unwrap().unwrap();
            assert_eq!(m.ppid, i);
        }
        drop(tx);
        drop(rx);
        echo.await.unwrap();
    }

    #[tokio::test]
    async fn connect_to_missing_mem_endpoint_fails() {
        assert!(connect(&TransportAddr::Mem("nobody-here".into())).await.is_err());
    }

    #[tokio::test]
    async fn double_bind_mem_fails() {
        let _l = listen(&TransportAddr::Mem("t-dup".into())).await.unwrap();
        assert!(listen(&TransportAddr::Mem("t-dup".into())).await.is_err());
    }

    #[tokio::test]
    async fn mem_name_freed_on_drop() {
        {
            let _l = listen(&TransportAddr::Mem("t-free".into())).await.unwrap();
        }
        // Listener dropped: the name can be reused.
        let _l2 = listen(&TransportAddr::Mem("t-free".into())).await.unwrap();
    }

    #[tokio::test]
    async fn large_message_over_tcp() {
        let mut l = listen(&TransportAddr::parse("127.0.0.1:0").unwrap()).await.unwrap();
        let addr = l.local_addr().unwrap();
        let payload = Bytes::from(vec![0x5Au8; 4 * 1024 * 1024]);
        let p2 = payload.clone();
        let client = tokio::spawn(async move {
            let mut c = connect(&addr).await.unwrap();
            c.send(WireMsg::e2ap(p2)).await.unwrap();
        });
        let mut conn = l.accept().await.unwrap();
        let m = conn.recv().await.unwrap().unwrap();
        assert_eq!(m.payload, payload);
        client.await.unwrap();
    }
}
