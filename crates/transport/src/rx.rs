//! Zero-copy frame reassembly for the receive path.
//!
//! The old receive path paid, per frame, at least two `read` syscalls (one
//! byte to distinguish orderly EOF, then the rest of the header, then the
//! payload) plus one zeroed allocation and one copy.  [`FrameAssembler`]
//! inverts the loop: the socket reader issues **one large read per wakeup**
//! into a per-connection [`BytesMut`] slab, and the assembler slices every
//! complete frame out of the slab as a refcounted [`bytes::Bytes`] view
//! (`split_to(..).freeze()` — pointer bookkeeping, no copy, no zeroing).
//! A partial frame at the tail simply stays buffered and is completed by
//! the next read.  In steady state a burst of N frames costs 1 syscall and
//! 0 per-frame heap allocations.
//!
//! ## Buffer ownership and lifetime
//!
//! Every [`bytes::Bytes`] payload handed out shares the read slab's
//! allocation.
//! The slab is reclaimed for reuse once **all** frames sliced from it have
//! been dropped; until then, `reserve` before the next read allocates a
//! fresh slab (one allocation per ~`read_chunk` bytes of traffic — still
//! amortized over many frames, never per-frame).  A consumer that retains
//! a payload long-term (e.g. a stored subscription trigger) therefore pins
//! at most one read chunk; see DESIGN.md "Zero-copy receive" for the
//! full lifetime rules.
//!
//! The assembler is synchronous and I/O-free so it can be driven by any
//! reader (tokio sockets, an in-memory duplex, tests, benchmarks).

use bytes::{Buf, BytesMut};

use crate::frame::{decode_header, HEADER_LEN, MAX_PAYLOAD};
use crate::WireMsg;

/// Default size of one read into the slab.  Large enough to swallow a
/// burst of typical E2 indications (a few hundred bytes each) in one
/// syscall, small enough that a pinned chunk is cheap.
pub const DEFAULT_READ_CHUNK: usize = 64 * 1024;

/// Errors the reassembly loop can surface.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameError {
    /// A frame header announced a payload larger than [`MAX_PAYLOAD`].
    Oversized(u32),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized(len) => {
                write!(f, "frame of {len} bytes exceeds maximum")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// A header that has been consumed from the slab while its payload is
/// still (partially) in flight.
#[derive(Debug, Clone, Copy)]
struct Pending {
    len: usize,
    stream: u16,
    ppid: u32,
}

/// Buffered frame reassembly over a reusable read slab.
///
/// Feed bytes in with [`FrameAssembler::read_slab`] (async readers append
/// via `read_buf`) or [`FrameAssembler::feed`] (sync/test path), then
/// drain complete frames with [`FrameAssembler::next_frame`].
#[derive(Debug)]
pub struct FrameAssembler {
    buf: BytesMut,
    pending: Option<Pending>,
    read_chunk: usize,
    frames: u64,
}

impl Default for FrameAssembler {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameAssembler {
    /// An assembler with the default read chunk.
    pub fn new() -> Self {
        Self::with_chunk(DEFAULT_READ_CHUNK)
    }

    /// An assembler that reserves `read_chunk` bytes ahead of each read.
    pub fn with_chunk(read_chunk: usize) -> Self {
        FrameAssembler {
            buf: BytesMut::new(),
            pending: None,
            read_chunk: read_chunk.max(HEADER_LEN),
            frames: 0,
        }
    }

    /// Extracts the next complete frame, or `None` if more bytes are
    /// needed.  The payload is a refcounted view of the read slab — no
    /// copy, no zeroing.
    pub fn next_frame(&mut self) -> Result<Option<WireMsg>, FrameError> {
        if self.pending.is_none() {
            if self.buf.len() < HEADER_LEN {
                return Ok(None);
            }
            let mut hdr = [0u8; HEADER_LEN];
            hdr.copy_from_slice(&self.buf[..HEADER_LEN]);
            let (len, stream, ppid) = decode_header(&hdr);
            if len as usize > MAX_PAYLOAD {
                return Err(FrameError::Oversized(len));
            }
            self.buf.advance(HEADER_LEN);
            self.pending = Some(Pending { len: len as usize, stream, ppid });
        }
        let need = self.pending.as_ref().expect("just set").len;
        if self.buf.len() < need {
            return Ok(None);
        }
        let p = self.pending.take().expect("just checked");
        let payload = self.buf.split_to(p.len).freeze();
        self.frames += 1;
        Ok(Some(WireMsg { stream: p.stream, ppid: p.ppid, payload }))
    }

    /// The read slab, with capacity reserved for the next read: at least
    /// the remainder of a pending payload (so an oversized frame completes
    /// in few reads), otherwise one read chunk.  Async readers append into
    /// the spare capacity via `AsyncReadExt::read_buf` — no zeroing.
    pub fn read_slab(&mut self) -> &mut BytesMut {
        let want = match &self.pending {
            Some(p) if p.len > self.buf.len() => (p.len - self.buf.len()).max(self.read_chunk),
            _ => self.read_chunk,
        };
        self.buf.reserve(want);
        &mut self.buf
    }

    /// Appends bytes by copy — the sync path for tests and benchmarks
    /// driving the assembler without an async reader.
    pub fn feed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// True when the stream is at a frame boundary: no partial header or
    /// payload is buffered.  EOF here is an orderly shutdown; EOF anywhere
    /// else is mid-frame truncation.
    pub fn is_clean(&self) -> bool {
        self.pending.is_none() && self.buf.is_empty()
    }

    /// Bytes currently buffered (partial frames awaiting completion).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Total frames sliced out since construction.
    pub fn frames(&self) -> u64 {
        self.frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::encode_header;

    fn frame_bytes(stream: u16, ppid: u32, payload: &[u8]) -> Vec<u8> {
        let mut v = encode_header(payload.len() as u32, stream, ppid).to_vec();
        v.extend_from_slice(payload);
        v
    }

    #[test]
    fn single_frame_roundtrip() {
        let mut asm = FrameAssembler::new();
        assert!(asm.next_frame().unwrap().is_none());
        asm.feed(&frame_bytes(3, 70, b"hello"));
        let m = asm.next_frame().unwrap().unwrap();
        assert_eq!(m.stream, 3);
        assert_eq!(m.ppid, 70);
        assert_eq!(&m.payload[..], b"hello");
        assert!(asm.is_clean());
        assert_eq!(asm.frames(), 1);
    }

    #[test]
    fn coalesced_burst_drains_without_refeeding() {
        let mut asm = FrameAssembler::new();
        let mut burst = Vec::new();
        for i in 0..50u16 {
            burst.extend_from_slice(&frame_bytes(i, 70, &vec![i as u8; i as usize]));
        }
        asm.feed(&burst);
        for i in 0..50u16 {
            let m = asm.next_frame().unwrap().unwrap();
            assert_eq!(m.stream, i);
            assert_eq!(m.payload.len(), i as usize);
            assert!(m.payload.iter().all(|&b| b == i as u8));
        }
        assert!(asm.next_frame().unwrap().is_none());
        assert!(asm.is_clean());
    }

    #[test]
    fn one_byte_chunks_reassemble() {
        let mut asm = FrameAssembler::new();
        let wire = frame_bytes(1, 70, b"byte-at-a-time");
        let mut got = Vec::new();
        for b in &wire {
            asm.feed(std::slice::from_ref(b));
            if let Some(m) = asm.next_frame().unwrap() {
                got.push(m);
            }
        }
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0].payload[..], b"byte-at-a-time");
    }

    #[test]
    fn mid_header_split() {
        let mut asm = FrameAssembler::new();
        let wire = frame_bytes(9, 70, b"split");
        asm.feed(&wire[..4]); // half the length field's neighbourhood
        assert!(asm.next_frame().unwrap().is_none());
        assert!(!asm.is_clean());
        asm.feed(&wire[4..]);
        let m = asm.next_frame().unwrap().unwrap();
        assert_eq!(m.stream, 9);
        assert_eq!(&m.payload[..], b"split");
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut asm = FrameAssembler::new();
        let hdr = encode_header((MAX_PAYLOAD + 1) as u32, 0, 70);
        asm.feed(&hdr);
        assert_eq!(asm.next_frame().unwrap_err(), FrameError::Oversized((MAX_PAYLOAD + 1) as u32));
    }

    #[test]
    fn empty_payload_frames() {
        let mut asm = FrameAssembler::new();
        asm.feed(&frame_bytes(0, 70, b""));
        asm.feed(&frame_bytes(1, 70, b""));
        assert_eq!(asm.next_frame().unwrap().unwrap().payload.len(), 0);
        assert_eq!(asm.next_frame().unwrap().unwrap().stream, 1);
        assert!(asm.is_clean());
    }

    #[test]
    fn payload_views_share_the_slab() {
        // Two frames fed in one chunk: both payloads are views of one
        // allocation (same backing range), proven by pointer arithmetic.
        let mut asm = FrameAssembler::new();
        let mut burst = frame_bytes(0, 70, &[0xAA; 100]);
        burst.extend_from_slice(&frame_bytes(1, 70, &[0xBB; 100]));
        asm.feed(&burst);
        let a = asm.next_frame().unwrap().unwrap().payload;
        let b = asm.next_frame().unwrap().unwrap().payload;
        let a_end = a.as_ptr() as usize + a.len();
        let b_start = b.as_ptr() as usize;
        assert_eq!(b_start - a_end, HEADER_LEN, "contiguous views of one slab");
    }

    #[test]
    fn pending_large_payload_reserves_remainder() {
        let mut asm = FrameAssembler::with_chunk(64);
        let payload = vec![0x5A; 10_000];
        let wire = frame_bytes(0, 70, &payload);
        asm.feed(&wire[..HEADER_LEN + 10]);
        assert!(asm.next_frame().unwrap().is_none());
        // After the header is consumed the slab reserves the payload
        // remainder, not just one chunk.
        let slab = asm.read_slab();
        assert!(slab.capacity() - slab.len() >= 10_000 - 10);
        asm.feed(&wire[HEADER_LEN + 10..]);
        let m = asm.next_frame().unwrap().unwrap();
        assert_eq!(m.payload.len(), 10_000);
    }
}
