//! Property tests for zero-copy frame reassembly: any frame sequence,
//! split at arbitrary chunk boundaries (1-byte reads, mid-header splits,
//! coalesced frames), must reassemble to byte-identical `WireMsg`s; and a
//! stream truncated strictly inside a frame must never look clean (so EOF
//! there is classified as an error, not an orderly shutdown).

use bytes::Bytes;
use flexric_transport::frame::{encode_frame_into, HEADER_LEN};
use flexric_transport::rx::FrameAssembler;
use flexric_transport::WireMsg;
use proptest::prelude::*;

fn arb_frames() -> impl Strategy<Value = Vec<WireMsg>> {
    prop::collection::vec(
        (any::<u16>(), any::<u32>(), prop::collection::vec(any::<u8>(), 0..512)),
        1..20,
    )
    .prop_map(|frames| {
        frames
            .into_iter()
            .map(|(stream, ppid, payload)| WireMsg { stream, ppid, payload: Bytes::from(payload) })
            .collect()
    })
}

fn wire_of(frames: &[WireMsg]) -> Vec<u8> {
    let mut buf = bytes::BytesMut::new();
    for f in frames {
        encode_frame_into(f.stream, f.ppid, &f.payload, &mut buf);
    }
    buf.to_vec()
}

/// Cuts `wire` into chunks at the given relative boundaries.
fn chunked(wire: &[u8], cuts: &[prop::sample::Index]) -> Vec<Vec<u8>> {
    let mut points: Vec<usize> = cuts.iter().map(|i| i.index(wire.len() + 1)).collect();
    points.push(0);
    points.push(wire.len());
    points.sort_unstable();
    points.dedup();
    points.windows(2).map(|w| wire[w[0]..w[1]].to_vec()).collect()
}

proptest! {
    /// Reassembly is exactly inverse to framing no matter how the byte
    /// stream is sliced.
    #[test]
    fn arbitrary_chunking_reassembles_byte_identical(
        frames in arb_frames(),
        cuts in prop::collection::vec(any::<prop::sample::Index>(), 0..64),
    ) {
        let wire = wire_of(&frames);
        let mut asm = FrameAssembler::with_chunk(32);
        let mut got = Vec::new();
        for chunk in chunked(&wire, &cuts) {
            asm.feed(&chunk);
            while let Some(m) = asm.next_frame().unwrap() {
                got.push(m);
            }
        }
        prop_assert_eq!(got, frames);
        prop_assert!(asm.is_clean());
    }

    /// Byte-at-a-time delivery (the pathological chunking) also works.
    #[test]
    fn one_byte_reads_reassemble(frames in arb_frames()) {
        let wire = wire_of(&frames);
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for b in &wire {
            asm.feed(std::slice::from_ref(b));
            while let Some(m) = asm.next_frame().unwrap() {
                got.push(m);
            }
        }
        prop_assert_eq!(got, frames);
    }

    /// Truncating the stream strictly inside a frame (mid-header or
    /// mid-payload) leaves the assembler dirty: every already-complete
    /// frame still comes out intact, but `is_clean()` is false so the
    /// reader reports the truncation instead of an orderly shutdown.
    #[test]
    fn mid_frame_truncation_is_never_clean(
        frames in arb_frames(),
        cut in any::<prop::sample::Index>(),
    ) {
        let wire = wire_of(&frames);
        // Pick a truncation point strictly inside some frame: frame
        // boundaries (including 0 and len) are the clean points.
        let mut boundaries = vec![0usize];
        let mut at = 0usize;
        for f in &frames {
            at += HEADER_LEN + f.payload.len();
            boundaries.push(at);
        }
        let cut = cut.index(wire.len() + 1);
        let mut asm = FrameAssembler::new();
        asm.feed(&wire[..cut]);
        let mut complete = 0usize;
        while asm.next_frame().unwrap().is_some() {
            complete += 1;
        }
        if boundaries.contains(&cut) {
            prop_assert!(asm.is_clean());
            prop_assert_eq!(complete, boundaries.iter().filter(|&&b| b > 0 && b <= cut).count());
        } else {
            prop_assert!(!asm.is_clean(), "cut at {cut} inside a frame must be dirty");
        }
    }
}
