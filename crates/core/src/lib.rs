//! # FlexRIC-rs — the SDK
//!
//! A from-scratch Rust reproduction of the FlexRIC SDK (Schmidt, Irazabal,
//! Nikaein — *FlexRIC: An SDK for Next-Generation SD-RANs*, CoNEXT 2021):
//! an event-driven software development kit to build specialized
//! software-defined RAN controllers.
//!
//! The SDK consists of two libraries (paper §3):
//!
//! * the **agent library** ([`agent`]) — extends a base station with E2
//!   agent functionality: connection management toward one *or several*
//!   controllers, a generic RAN-function API with subscription /
//!   subscription-delete / control callbacks, and a UE-to-controller
//!   association for multi-service deployments;
//! * the **server library** ([`server`]) — multiplexes agent connections
//!   and dispatches E2AP messages to controller-internal applications
//!   (iApps) through an event-driven callback system; it maintains a RAN
//!   database that merges disaggregated CU/DU agents into RAN entities and
//!   tracks subscriptions so indications reach the right iApp.
//!
//! Both libraries speak through the E2AP intermediate representation of
//! `flexric-e2ap`, with the encoding ([`flexric_codec::E2apCodec`]) and the
//! transport (`flexric-transport`) selected per connection — the paper's
//! "zero-overhead principle": nothing is imposed beyond what the use case
//! needs.
//!
//! Both sides build their pending-request bookkeeping on the shared
//! procedure-endpoint layer ([`endpoint`]): one outstanding-transaction
//! table with per-procedure-class deadlines, bounded retransmission, and
//! explicit terminal outcomes, plus connection supervisors that reconnect
//! with capped exponential backoff and replay E2 Setup and live
//! subscriptions, so iApps and RAN functions survive a controller or agent
//! restart without code changes.
//!
//! ## Quick start
//!
//! See `examples/quickstart.rs` at the repository root: it starts a
//! controller with a monitoring iApp, attaches an agent exposing the MAC
//! statistics service model, subscribes, and prints live statistics.

pub mod agent;
pub(crate) mod conn;
pub mod endpoint;
pub mod report;
pub mod scratch;
pub mod server;

pub use agent::{Agent, AgentConfig, AgentCtx, AgentHandle, RanFunction, SubscriptionInfo};
pub use endpoint::{
    Backoff, E2apEndpoint, Procedure, ProcedureClass, ProcedureKey, ProcedureOutcome,
    ProcedureTable, RetryPolicy,
};
pub use report::ReportSender;
pub use scratch::{stream_for, EncodeScratch, Targets};
pub use server::{
    AgentId, AgentInfo, IApp, IndicationRef, RanDb, RanEntity, Server, ServerApi, ServerConfig,
    ServerEvent, ServerHandle,
};

/// Current time source used by both libraries when running in real time:
/// milliseconds of a monotonic clock anchored at process start.
pub fn mono_ms() -> u64 {
    mono_ns() / 1_000_000
}

/// Nanoseconds of a monotonic clock anchored at process start, for RTT
/// measurements.
pub fn mono_ns() -> u64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_nanos() as u64
}
