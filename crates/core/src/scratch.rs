//! Reusable encode scratch buffers and encode-once fan-out.
//!
//! The agent and server event loops each own an [`EncodeScratch`] and queue
//! outbound PDUs as `(Targets, E2apPdu)` pairs.  At flush time every PDU is
//! encoded exactly once into the scratch buffer — via the zero-allocation
//! `encode_into` path — and the frozen [`Bytes`] is shared by reference
//! count across all targets.  A 1→N indication fan-out therefore costs one
//! encode and N cheap `Bytes` clones, not N encodes.

use bytes::{Bytes, BytesMut};
use flexric_codec::E2apCodec;
use flexric_e2ap::E2apPdu;
use flexric_transport::WireMsg;

/// Stream a PDU travels on under the SCTP-like framing: RIC indications
/// are bulk traffic (stream 1); every other procedure — setup,
/// subscription, control, service update — is a control procedure on
/// stream 0 and overtakes queued bulk in the writer task.
pub fn stream_for(pdu: &E2apPdu) -> u16 {
    match pdu {
        E2apPdu::RicIndication(_) => WireMsg::STREAM_BULK,
        _ => WireMsg::STREAM_CONTROL,
    }
}

/// Destination set of one queued PDU.
///
/// The single-target case is by far the most common, so it avoids the
/// `Vec` allocation entirely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Targets<T> {
    /// One destination.
    One(T),
    /// Several destinations sharing one encoded frame.
    Many(Vec<T>),
}

impl<T> Targets<T> {
    /// The destinations as a slice.
    pub fn as_slice(&self) -> &[T] {
        match self {
            Targets::One(t) => std::slice::from_ref(t),
            Targets::Many(v) => v,
        }
    }

    /// Builds the cheapest representation for `targets`.
    pub fn from_vec(mut targets: Vec<T>) -> Self {
        if targets.len() == 1 {
            Targets::One(targets.pop().expect("len checked"))
        } else {
            Targets::Many(targets)
        }
    }
}

impl<T> From<T> for Targets<T> {
    fn from(t: T) -> Self {
        Targets::One(t)
    }
}

/// A reusable per-loop encode buffer.
///
/// Each encode appends into the buffer and splits the message off as a
/// frozen [`Bytes`].  Once every frozen handle of a previous message has
/// dropped (the writer task sent it), the buffer reclaims that capacity, so
/// steady-state encoding performs no allocation.
#[derive(Debug, Default)]
pub struct EncodeScratch {
    buf: BytesMut,
}

impl EncodeScratch {
    /// An empty scratch buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch buffer with an initial capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EncodeScratch { buf: BytesMut::with_capacity(cap) }
    }

    /// Encodes `pdu` once and returns the frozen frame.
    pub fn encode(&mut self, codec: E2apCodec, pdu: &E2apPdu) -> Bytes {
        let _span = flexric_obs::span!("e2ap.encode");
        codec.encode_into(pdu, &mut self.buf);
        self.buf.split().freeze()
    }
}

/// Drains `outbox`, encoding every PDU exactly once and delivering the
/// shared frame to each of its targets as a [`WireMsg`] on the stream
/// [`stream_for`] assigns (indications on the bulk stream, procedures on
/// the control stream).
///
/// `deliver` receives a clone of the frozen [`Bytes`] per target — a
/// reference-count bump, not a copy.  Delivery decisions (dead connection,
/// unknown target) stay with the caller.
pub fn flush_outbox<T: Copy>(
    scratch: &mut EncodeScratch,
    codec: E2apCodec,
    outbox: &mut Vec<(Targets<T>, E2apPdu)>,
    mut deliver: impl FnMut(T, WireMsg),
) {
    for (targets, pdu) in outbox.drain(..) {
        let stream = stream_for(&pdu);
        let frame = scratch.encode(codec, &pdu);
        for t in targets.as_slice() {
            deliver(*t, WireMsg::e2ap_on(stream, frame.clone()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexric_e2ap::{ResetResponse, RicIndication, RicRequestId};

    fn indication() -> E2apPdu {
        E2apPdu::RicIndication(RicIndication {
            req_id: RicRequestId::new(7, 3),
            ran_function: flexric_e2ap::RanFunctionId::new(142),
            action: flexric_e2ap::RicActionId(0),
            sn: Some(42),
            ind_type: flexric_e2ap::RicIndicationType::Report,
            header: Bytes::new(),
            message: Bytes::from_static(b"shared-report-payload"),
            call_process_id: None,
        })
    }

    #[test]
    fn fan_out_encodes_once_and_shares_bytes() {
        // Acceptance criterion: a 1→8 fan-out performs exactly one encode
        // per (PDU, codec), and every target receives identical bytes.
        for codec in E2apCodec::ALL {
            let mut scratch = EncodeScratch::new();
            let mut outbox = vec![(Targets::Many((0usize..8).collect()), indication())];
            let mut delivered: Vec<(usize, WireMsg)> = Vec::new();

            let before = flexric_codec::encode_invocations();
            flush_outbox(&mut scratch, codec, &mut outbox, |t, msg| {
                delivered.push((t, msg));
            });
            let encodes = flexric_codec::encode_invocations() - before;

            assert_eq!(encodes, 1, "{codec:?}: one encode for 8 targets");
            assert!(outbox.is_empty());
            assert_eq!(delivered.len(), 8);
            let expected = codec.encode(&indication());
            for (i, (t, msg)) in delivered.iter().enumerate() {
                assert_eq!(*t, i);
                assert_eq!(&msg.payload[..], &expected[..], "{codec:?}: identical frame");
                assert_eq!(msg.stream, WireMsg::STREAM_BULK, "indications ride the bulk stream");
            }
        }
    }

    #[test]
    fn mixed_outbox_encodes_once_per_pdu() {
        let mut scratch = EncodeScratch::with_capacity(256);
        let reset = E2apPdu::ResetResponse(ResetResponse { transaction_id: 1 });
        let mut outbox =
            vec![(Targets::One(0usize), reset.clone()), (Targets::Many(vec![1, 2]), indication())];
        let before = flexric_codec::encode_invocations();
        let mut streams = Vec::new();
        flush_outbox(&mut scratch, E2apCodec::Asn1Per, &mut outbox, |_, msg| {
            streams.push(msg.stream)
        });
        assert_eq!(flexric_codec::encode_invocations() - before, 2);
        assert_eq!(
            streams,
            [WireMsg::STREAM_CONTROL, WireMsg::STREAM_BULK, WireMsg::STREAM_BULK],
            "procedures on stream 0, indications on the bulk stream"
        );
    }

    #[test]
    fn stream_assignment_covers_the_pdu_space() {
        assert_eq!(stream_for(&indication()), WireMsg::STREAM_BULK);
        let reset = E2apPdu::ResetResponse(ResetResponse { transaction_id: 1 });
        assert_eq!(stream_for(&reset), WireMsg::STREAM_CONTROL);
    }

    #[test]
    fn targets_from_vec_picks_cheap_variant() {
        assert_eq!(Targets::from_vec(vec![5usize]), Targets::One(5));
        assert_eq!(Targets::from_vec(vec![1usize, 2]), Targets::Many(vec![1, 2]));
        assert_eq!(Targets::from(3usize).as_slice(), &[3]);
        assert_eq!(Targets::<usize>::from_vec(vec![]).as_slice(), &[] as &[usize]);
    }
}
