//! Shared E2AP procedure-endpoint layer.
//!
//! The paper's E2AP procedures (Setup, RIC Subscription, Control — §3.2,
//! §4.1, §4.3) are request/response exchanges; production E2 nodes treat
//! the endpoint lifecycle around them as first class: every outstanding
//! request carries a deadline, a bounded number of retransmissions, and an
//! explicit terminal outcome.  This module provides that machinery once,
//! for both sides of the wire — the agent and the server library build
//! their pending-request bookkeeping on [`ProcedureTable`] /
//! [`E2apEndpoint`] instead of hand-rolling it twice.
//!
//! ## Procedure lifecycle
//!
//! ```text
//!            begin()                      complete()
//!   (sent) ────────────► OUTSTANDING ───────────────► Acked / Failed(Cause)
//!                          │      ▲
//!         deadline passed  │      │ retransmit
//!         attempts < max   └──────┘ (deadline doubles, capped)
//!                          │
//!         deadline passed  │                 connection_lost()
//!         attempts == max  ▼                        │
//!                       TimedOut ◄──────────────────┴─► ConnectionLost
//! ```
//!
//! Every outcome is terminal: an entry leaves the table exactly once, so a
//! lost response can no longer leak state forever.
//!
//! ## Time
//!
//! The table is driven explicitly via [`ProcedureTable::poll`] with the
//! caller's clock — wall time on a ticking agent/server, virtual time in
//! simulations — so retransmission behaviour is deterministic under test.

use std::collections::HashMap;
use std::hash::Hash;

use flexric_e2ap::{Cause, E2apPdu, RanFunctionId, RicRequestId};

/// The E2AP procedure classes tracked by the endpoint, each with its own
/// default deadline (see [`RetryPolicy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcedureClass {
    /// E2 Setup (agent-initiated).
    Setup,
    /// RIC Subscription (server-initiated).
    Subscription,
    /// RIC Subscription Delete (server-initiated).
    SubscriptionDelete,
    /// RIC Control (server-initiated).  Controls are *not* retransmitted:
    /// a control message is not idempotent, so the deadline only bounds
    /// how long the requester waits for the outcome.
    Control,
    /// RIC Service Update (agent-initiated).
    ServiceUpdate,
    /// E2AP Reset.
    Reset,
    /// E2 Connection Update.
    ConnectionUpdate,
}

/// Key of an outstanding procedure at one peer: E2AP global procedures use
/// a one-byte transaction id, RIC functional procedures a
/// [`RicRequestId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcedureKey {
    /// Transaction-id keyed procedure (Setup, Service Update, Reset, …).
    Tx(u8),
    /// RIC-request-id keyed procedure (Subscription, Control, …).
    Ric(RicRequestId),
}

/// Terminal outcome of a tracked procedure.
#[derive(Debug, Clone, PartialEq)]
pub enum ProcedureOutcome {
    /// The peer acknowledged the request.
    Acked,
    /// The peer rejected the request.
    Failed(Cause),
    /// No response arrived within the deadline, after all retransmissions.
    TimedOut,
    /// The connection went down while the request was outstanding.
    ConnectionLost,
}

/// Capped exponential backoff: `initial_ms * 2^attempt`, clamped to
/// `max_ms`.  Used both for retransmission deadlines and for the
/// reconnect supervisors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// Delay before the first retry, in milliseconds.
    pub initial_ms: u64,
    /// Upper bound on the delay, in milliseconds.
    pub max_ms: u64,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff { initial_ms: 50, max_ms: 5_000 }
    }
}

impl Backoff {
    /// The delay before attempt number `attempt` (0-based).
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let factor = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
        self.initial_ms.saturating_mul(factor).min(self.max_ms)
    }
}

/// Per-procedure-class deadlines and the retransmission budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Deadline for E2 Setup, in milliseconds.
    pub setup_deadline_ms: u64,
    /// Deadline for RIC Subscription requests, in milliseconds.
    pub subscription_deadline_ms: u64,
    /// Deadline for RIC Subscription Delete requests, in milliseconds.
    pub delete_deadline_ms: u64,
    /// Deadline for RIC Control requests, in milliseconds.
    pub control_deadline_ms: u64,
    /// Deadline for RIC Service Update, in milliseconds.
    pub service_deadline_ms: u64,
    /// Deadline for Reset and Connection Update, in milliseconds.
    pub global_deadline_ms: u64,
    /// Cap on the per-attempt deadline as it doubles across retries.
    pub max_deadline_ms: u64,
    /// Total send attempts per procedure (1 original + N-1 retransmits).
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            setup_deadline_ms: 1_000,
            subscription_deadline_ms: 300,
            delete_deadline_ms: 300,
            control_deadline_ms: 500,
            service_deadline_ms: 500,
            global_deadline_ms: 500,
            max_deadline_ms: 5_000,
            max_attempts: 4,
        }
    }
}

impl RetryPolicy {
    /// The first-attempt deadline of a class, in milliseconds.
    pub fn deadline_ms(&self, class: ProcedureClass) -> u64 {
        match class {
            ProcedureClass::Setup => self.setup_deadline_ms,
            ProcedureClass::Subscription => self.subscription_deadline_ms,
            ProcedureClass::SubscriptionDelete => self.delete_deadline_ms,
            ProcedureClass::Control => self.control_deadline_ms,
            ProcedureClass::ServiceUpdate => self.service_deadline_ms,
            ProcedureClass::Reset | ProcedureClass::ConnectionUpdate => self.global_deadline_ms,
        }
    }

    /// Whether a class may be retransmitted.  Control and Connection
    /// Update are not idempotent and never are.
    pub fn retryable(&self, class: ProcedureClass) -> bool {
        !matches!(class, ProcedureClass::Control | ProcedureClass::ConnectionUpdate)
    }

    /// The deadline of attempt number `attempt` (1-based): the class
    /// deadline, doubling per retransmission, capped at
    /// [`max_deadline_ms`](Self::max_deadline_ms).
    pub fn attempt_deadline_ms(&self, class: ProcedureClass, attempt: u32) -> u64 {
        Backoff { initial_ms: self.deadline_ms(class), max_ms: self.max_deadline_ms }
            .delay_ms(attempt.saturating_sub(1))
    }
}

/// One outstanding procedure.
#[derive(Debug, Clone)]
pub struct Procedure<P, U> {
    /// The peer the request was sent to.
    pub peer: P,
    /// The procedure's key at that peer.
    pub key: ProcedureKey,
    /// Its class.
    pub class: ProcedureClass,
    /// The request PDU, kept for retransmission.  `None` tracks a
    /// procedure whose PDU the endpoint never saw (externally forwarded
    /// requests) — such entries are never retransmitted.
    pub pdu: Option<E2apPdu>,
    /// Caller payload (e.g. the owning iApp index), returned on
    /// completion.
    pub user: U,
    /// Send attempts so far (1 = original send only).
    pub attempts: u32,
    /// Absolute deadline in the caller's clock; `None` = tracked for
    /// routing only, never expires.
    pub deadline_ms: Option<u64>,
}

impl<P, U> Procedure<P, U> {
    /// The RAN function addressed by the request, when the PDU carries
    /// one.
    pub fn ran_function(&self) -> Option<RanFunctionId> {
        self.pdu.as_ref().and_then(|p| p.ran_function_id())
    }
}

/// Procedure-layer metrics, shared by every endpoint in the process
/// (agent- and server-side tables alike).  Terminal outcomes are labeled
/// `outcome="acked|failed|timed_out|connection_lost"`; the table itself
/// counts begins/retransmits/timeouts/losses, and the response-completion
/// call sites in agent/server report acked vs. failed via
/// [`note_completed`].
pub(crate) struct EndpointMetrics {
    pub begun: flexric_obs::Counter,
    pub retransmits: flexric_obs::Counter,
    pub acked: flexric_obs::Counter,
    pub failed: flexric_obs::Counter,
    pub timed_out: flexric_obs::Counter,
    pub connection_lost: flexric_obs::Counter,
    pub outstanding: flexric_obs::Gauge,
}

pub(crate) fn metrics() -> &'static EndpointMetrics {
    static M: std::sync::OnceLock<EndpointMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| {
        let outcome = |o: &'static str| {
            flexric_obs::counter_with(
                "flexric_endpoint_procedures_total",
                &[("outcome", o)],
                "E2AP procedures by terminal outcome",
            )
        };
        EndpointMetrics {
            begun: flexric_obs::counter(
                "flexric_endpoint_begun_total",
                "E2AP procedures started (original transmissions)",
            ),
            retransmits: flexric_obs::counter(
                "flexric_endpoint_retransmits_total",
                "E2AP procedure retransmissions",
            ),
            acked: outcome("acked"),
            failed: outcome("failed"),
            timed_out: outcome("timed_out"),
            connection_lost: outcome("connection_lost"),
            outstanding: flexric_obs::gauge(
                "flexric_endpoint_outstanding",
                "E2AP procedures currently in flight",
            ),
        }
    })
}

/// Records a procedure completed by a peer response: positive responses
/// count as `outcome="acked"`, failure responses as `outcome="failed"`.
pub(crate) fn note_completed(acked: bool) {
    if acked {
        metrics().acked.inc();
    } else {
        metrics().failed.inc();
    }
}

/// The typed outstanding-transaction table: at most one procedure per
/// `(peer, key)`, with deadline/retransmission bookkeeping driven by
/// [`poll`](Self::poll).
#[derive(Debug)]
pub struct ProcedureTable<P: Eq + Hash + Copy, U> {
    entries: HashMap<(P, ProcedureKey), Procedure<P, U>>,
    policy: RetryPolicy,
}

impl<P: Eq + Hash + Copy, U> ProcedureTable<P, U> {
    /// An empty table under `policy`.
    pub fn new(policy: RetryPolicy) -> Self {
        ProcedureTable { entries: HashMap::new(), policy }
    }

    /// The policy in force.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Starts tracking a procedure sent at `now_ms`.  Returns `false` (and
    /// changes nothing) if the same `(peer, key)` is already outstanding.
    pub fn begin(
        &mut self,
        peer: P,
        key: ProcedureKey,
        class: ProcedureClass,
        pdu: Option<E2apPdu>,
        user: U,
        now_ms: u64,
    ) -> bool {
        if self.entries.contains_key(&(peer, key)) {
            return false;
        }
        let deadline = Some(now_ms.saturating_add(self.policy.deadline_ms(class)));
        self.entries.insert(
            (peer, key),
            Procedure { peer, key, class, pdu, user, attempts: 1, deadline_ms: deadline },
        );
        metrics().begun.inc();
        metrics().outstanding.add(1);
        true
    }

    /// Starts tracking a procedure for response routing only: no deadline,
    /// no retransmission (externally forwarded requests whose lifecycle
    /// the forwarder owns).
    pub fn begin_untimed(
        &mut self,
        peer: P,
        key: ProcedureKey,
        class: ProcedureClass,
        user: U,
    ) -> bool {
        if self.entries.contains_key(&(peer, key)) {
            return false;
        }
        self.entries.insert(
            (peer, key),
            Procedure { peer, key, class, pdu: None, user, attempts: 1, deadline_ms: None },
        );
        metrics().begun.inc();
        metrics().outstanding.add(1);
        true
    }

    /// Removes and returns the procedure a response arrived for.
    pub fn complete(&mut self, peer: P, key: ProcedureKey) -> Option<Procedure<P, U>> {
        let removed = self.entries.remove(&(peer, key));
        if removed.is_some() {
            metrics().outstanding.sub(1);
        }
        removed
    }

    /// The outstanding procedure under `(peer, key)`, if any.
    pub fn get(&self, peer: P, key: ProcedureKey) -> Option<&Procedure<P, U>> {
        self.entries.get(&(peer, key))
    }

    /// Whether `(peer, key)` is outstanding.
    pub fn contains(&self, peer: P, key: ProcedureKey) -> bool {
        self.entries.contains_key(&(peer, key))
    }

    /// Number of outstanding procedures.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether transaction id `id` is in flight toward any peer.
    pub fn tx_in_flight(&self, id: u8) -> bool {
        self.entries.keys().any(|(_, k)| *k == ProcedureKey::Tx(id))
    }

    /// Whether `requestor/instance` is in flight toward any peer.
    pub fn instance_in_flight(&self, requestor: u16, instance: u16) -> bool {
        self.entries
            .keys()
            .any(|(_, k)| *k == ProcedureKey::Ric(RicRequestId::new(requestor, instance)))
    }

    /// Advances the clock: retransmits every expired procedure with budget
    /// left (through `retransmit`, with a doubled, capped deadline) and
    /// removes and returns the ones that exhausted their budget — each
    /// with terminal outcome [`ProcedureOutcome::TimedOut`].
    pub fn poll(
        &mut self,
        now_ms: u64,
        mut retransmit: impl FnMut(P, &E2apPdu),
    ) -> Vec<Procedure<P, U>> {
        let mut expired: Vec<(P, ProcedureKey)> = Vec::new();
        for ((peer, key), proc) in self.entries.iter_mut() {
            let Some(deadline) = proc.deadline_ms else { continue };
            if now_ms < deadline {
                continue;
            }
            let can_retry = proc.attempts < self.policy.max_attempts
                && self.policy.retryable(proc.class)
                && proc.pdu.is_some();
            if can_retry {
                proc.attempts += 1;
                proc.deadline_ms = Some(
                    now_ms
                        .saturating_add(self.policy.attempt_deadline_ms(proc.class, proc.attempts)),
                );
                if let Some(pdu) = &proc.pdu {
                    metrics().retransmits.inc();
                    retransmit(*peer, pdu);
                }
            } else {
                expired.push((*peer, *key));
            }
        }
        let out: Vec<Procedure<P, U>> =
            expired.into_iter().filter_map(|k| self.entries.remove(&k)).collect();
        metrics().timed_out.add(out.len() as u64);
        metrics().outstanding.sub(out.len() as i64);
        out
    }

    /// Removes and returns every procedure outstanding toward `peer` —
    /// each with terminal outcome [`ProcedureOutcome::ConnectionLost`].
    pub fn connection_lost(&mut self, peer: P) -> Vec<Procedure<P, U>> {
        let keys: Vec<(P, ProcedureKey)> =
            self.entries.keys().filter(|(p, _)| *p == peer).copied().collect();
        let out: Vec<Procedure<P, U>> =
            keys.into_iter().filter_map(|k| self.entries.remove(&k)).collect();
        metrics().connection_lost.add(out.len() as u64);
        metrics().outstanding.sub(out.len() as i64);
        out
    }
}

/// Wraparound-safe allocator for E2AP one-byte transaction ids: skips ids
/// still in flight, so an id is never reused while its procedure is
/// outstanding.
#[derive(Debug, Default, Clone, Copy)]
pub struct TxIdAlloc {
    next: u8,
}

impl TxIdAlloc {
    /// The next free transaction id, or `None` if all 256 are in flight.
    pub fn alloc(&mut self, mut in_flight: impl FnMut(u8) -> bool) -> Option<u8> {
        for _ in 0..=u8::MAX {
            let id = self.next;
            self.next = self.next.wrapping_add(1);
            if !in_flight(id) {
                return Some(id);
            }
        }
        None
    }
}

/// Wraparound-safe allocator for the 16-bit instance half of a
/// [`RicRequestId`].
#[derive(Debug, Default, Clone, Copy)]
pub struct InstanceAlloc {
    next: u16,
}

impl InstanceAlloc {
    /// The next free instance, or `None` if all 65 536 are in use.
    pub fn alloc(&mut self, mut in_use: impl FnMut(u16) -> bool) -> Option<u16> {
        for _ in 0..=u16::MAX {
            let inst = self.next;
            self.next = self.next.wrapping_add(1);
            if !in_use(inst) {
                return Some(inst);
            }
        }
        None
    }
}

/// A procedure endpoint: the outstanding-transaction table plus the
/// wraparound-safe id allocators.  One per agent/server event loop.
#[derive(Debug)]
pub struct E2apEndpoint<P: Eq + Hash + Copy, U> {
    /// The outstanding-transaction table.
    pub table: ProcedureTable<P, U>,
    tx_ids: TxIdAlloc,
    instances: InstanceAlloc,
}

impl<P: Eq + Hash + Copy, U> E2apEndpoint<P, U> {
    /// A fresh endpoint under `policy`.
    pub fn new(policy: RetryPolicy) -> Self {
        E2apEndpoint {
            table: ProcedureTable::new(policy),
            tx_ids: TxIdAlloc::default(),
            instances: InstanceAlloc::default(),
        }
    }

    /// Allocates a transaction id not currently in flight.
    pub fn alloc_tx_id(&mut self) -> u8 {
        let table = &self.table;
        // 256 simultaneously outstanding global procedures cannot happen
        // under the attempt budget; the fallback is unreachable.
        self.tx_ids.alloc(|id| table.tx_in_flight(id)).unwrap_or(0)
    }

    /// Allocates a request id for `requestor` whose instance is neither in
    /// flight in the table nor claimed by `extra_in_use` (the caller's
    /// established-subscription set).
    pub fn alloc_request_id(
        &mut self,
        requestor: u16,
        mut extra_in_use: impl FnMut(u16) -> bool,
    ) -> RicRequestId {
        let table = &self.table;
        let inst =
            self.instances.alloc(|i| table.instance_in_flight(requestor, i) || extra_in_use(i));
        // 65 536 simultaneously live ids for one requestor exceeds any
        // real deployment; fall back to instance 0 rather than panic.
        RicRequestId::new(requestor, inst.unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexric_e2ap::RicSubscriptionDeleteRequest;

    fn pdu(req: RicRequestId) -> E2apPdu {
        E2apPdu::RicSubscriptionDeleteRequest(RicSubscriptionDeleteRequest {
            req_id: req,
            ran_function: RanFunctionId::new(7),
        })
    }

    fn rid(inst: u16) -> RicRequestId {
        RicRequestId::new(1, inst)
    }

    #[test]
    fn begin_complete_roundtrip() {
        let mut t: ProcedureTable<usize, u32> = ProcedureTable::new(RetryPolicy::default());
        assert!(t.begin(
            0,
            ProcedureKey::Ric(rid(1)),
            ProcedureClass::Subscription,
            Some(pdu(rid(1))),
            42,
            0
        ));
        assert!(!t.begin(0, ProcedureKey::Ric(rid(1)), ProcedureClass::Subscription, None, 43, 0));
        assert_eq!(t.len(), 1);
        let done = t.complete(0, ProcedureKey::Ric(rid(1))).unwrap();
        assert_eq!(done.user, 42);
        assert_eq!(done.ran_function(), Some(RanFunctionId::new(7)));
        assert!(t.is_empty());
        assert!(t.complete(0, ProcedureKey::Ric(rid(1))).is_none());
    }

    #[test]
    fn poll_retransmits_then_times_out() {
        let policy = RetryPolicy {
            subscription_deadline_ms: 10,
            max_deadline_ms: 1_000,
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let mut t: ProcedureTable<usize, ()> = ProcedureTable::new(policy);
        t.begin(
            0,
            ProcedureKey::Ric(rid(1)),
            ProcedureClass::Subscription,
            Some(pdu(rid(1))),
            (),
            0,
        );

        let mut sent = 0;
        assert!(t.poll(9, |_, _| sent += 1).is_empty());
        assert_eq!(sent, 0, "not due yet");

        // First expiry: retransmit, deadline doubles to 20 ms.
        assert!(t.poll(10, |_, _| sent += 1).is_empty());
        assert_eq!(sent, 1);
        assert_eq!(t.get(0, ProcedureKey::Ric(rid(1))).unwrap().attempts, 2);
        assert_eq!(t.get(0, ProcedureKey::Ric(rid(1))).unwrap().deadline_ms, Some(30));

        // Second expiry: last retransmit of the budget.
        assert!(t.poll(30, |_, _| sent += 1).is_empty());
        assert_eq!(sent, 2);
        assert_eq!(t.get(0, ProcedureKey::Ric(rid(1))).unwrap().deadline_ms, Some(70));

        // Budget exhausted: terminal timeout.
        let dead = t.poll(70, |_, _| sent += 1);
        assert_eq!(sent, 2, "no retransmit past the budget");
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].attempts, 3);
        assert!(t.is_empty());
    }

    #[test]
    fn control_is_never_retransmitted() {
        let policy =
            RetryPolicy { control_deadline_ms: 10, max_attempts: 4, ..RetryPolicy::default() };
        let mut t: ProcedureTable<usize, ()> = ProcedureTable::new(policy);
        t.begin(0, ProcedureKey::Ric(rid(9)), ProcedureClass::Control, Some(pdu(rid(9))), (), 0);
        let mut sent = 0;
        let dead = t.poll(10, |_, _| sent += 1);
        assert_eq!(sent, 0, "controls are not idempotent");
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].attempts, 1);
    }

    #[test]
    fn untimed_entries_never_expire() {
        let mut t: ProcedureTable<usize, ()> = ProcedureTable::new(RetryPolicy::default());
        t.begin_untimed(0, ProcedureKey::Ric(rid(3)), ProcedureClass::Control, ());
        assert!(t.poll(u64::MAX, |_, _| {}).is_empty());
        assert!(t.contains(0, ProcedureKey::Ric(rid(3))));
    }

    #[test]
    fn connection_lost_drains_one_peer() {
        let mut t: ProcedureTable<usize, ()> = ProcedureTable::new(RetryPolicy::default());
        t.begin(0, ProcedureKey::Ric(rid(1)), ProcedureClass::Subscription, None, (), 0);
        t.begin(0, ProcedureKey::Tx(5), ProcedureClass::ServiceUpdate, None, (), 0);
        t.begin(1, ProcedureKey::Ric(rid(1)), ProcedureClass::Subscription, None, (), 0);
        let lost = t.connection_lost(0);
        assert_eq!(lost.len(), 2);
        assert_eq!(t.len(), 1);
        assert!(t.contains(1, ProcedureKey::Ric(rid(1))));
    }

    #[test]
    fn backoff_caps_at_max() {
        let b = Backoff { initial_ms: 50, max_ms: 5_000 };
        assert_eq!(b.delay_ms(0), 50);
        assert_eq!(b.delay_ms(1), 100);
        assert_eq!(b.delay_ms(6), 3_200);
        assert_eq!(b.delay_ms(7), 5_000);
        assert_eq!(b.delay_ms(63), 5_000);
        assert_eq!(b.delay_ms(64), 5_000, "shift overflow saturates");
        assert_eq!(b.delay_ms(u32::MAX), 5_000);
    }

    #[test]
    fn endpoint_allocators_skip_in_flight() {
        let mut ep: E2apEndpoint<usize, ()> = E2apEndpoint::new(RetryPolicy::default());
        let t0 = ep.alloc_tx_id();
        ep.table.begin(0, ProcedureKey::Tx(t0), ProcedureClass::Setup, None, (), 0);
        let t1 = ep.alloc_tx_id();
        assert_ne!(t0, t1);

        let r0 = ep.alloc_request_id(1, |_| false);
        ep.table.begin(0, ProcedureKey::Ric(r0), ProcedureClass::Subscription, None, (), 0);
        let r1 = ep.alloc_request_id(1, |_| false);
        assert_ne!(r0, r1);
        // An externally claimed instance is skipped too.
        let r2 = ep.alloc_request_id(1, |i| i == r1.instance.wrapping_add(1));
        assert_ne!(r2.instance, r1.instance.wrapping_add(1));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;
        use std::collections::HashSet;

        proptest! {
            /// Transaction-id allocation never hands out an id that is
            /// still in flight, across multiple wraparounds of the u8
            /// space.
            #[test]
            fn tx_id_alloc_never_collides(ops in proptest::collection::vec(any::<u16>(), 1..800)) {
                let mut alloc = TxIdAlloc::default();
                let mut live: HashSet<u8> = HashSet::new();
                let mut order: Vec<u8> = Vec::new();
                for op in ops {
                    // Keep headroom so allocation can always succeed.
                    if live.len() >= 200 || (op % 3 == 0 && !order.is_empty()) {
                        let idx = (op as usize) % order.len();
                        let id = order.swap_remove(idx);
                        live.remove(&id);
                    } else {
                        let id = alloc.alloc(|i| live.contains(&i)).expect("space available");
                        prop_assert!(!live.contains(&id), "collision on {id}");
                        live.insert(id);
                        order.push(id);
                    }
                }
            }

            /// Request-id instance allocation never collides either, even
            /// when the caller pins extra instances (established
            /// subscriptions) across wraparound of the u16 space.
            #[test]
            fn instance_alloc_never_collides(
                ops in proptest::collection::vec(any::<u32>(), 1..600),
                pinned in proptest::collection::hash_set(any::<u16>(), 0..16),
            ) {
                let mut alloc = InstanceAlloc { next: u16::MAX - 100 }; // force wraparound early
                let mut live: HashSet<u16> = HashSet::new();
                let mut order: Vec<u16> = Vec::new();
                for op in ops {
                    if live.len() >= 300 || (op % 4 == 0 && !order.is_empty()) {
                        let idx = (op as usize) % order.len();
                        let inst = order.swap_remove(idx);
                        live.remove(&inst);
                    } else {
                        let inst = alloc
                            .alloc(|i| live.contains(&i) || pinned.contains(&i))
                            .expect("space available");
                        prop_assert!(!live.contains(&inst), "collision on {inst}");
                        prop_assert!(!pinned.contains(&inst), "pinned instance reused: {inst}");
                        live.insert(inst);
                        order.push(inst);
                    }
                }
            }
        }
    }
}
