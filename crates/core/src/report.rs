//! Agent-side report emission with the full/delta mode switch folded in.
//!
//! [`ReportSender`] sits between a periodic RAN function and
//! [`AgentCtx::send_indication`]: full-mode subscriptions get the plain
//! encoded snapshot, delta-mode subscriptions get keyframe/delta frames
//! from a per-subscription [`DeltaStreams`] encoder, and unchanged
//! snapshots are suppressed (no indication at all).  Stream lifecycle
//! follows the subscription lifecycle: admit (including reconnect
//! replay) resets the stream — epoch bump, next report is a keyframe —
//! and delete drops it.  Retunes are smarter: a retune that changes the
//! trigger (period backoff/tighten) preserves the stream, because
//! sequence continuity over the ordered transport keeps the receiver's
//! base valid; a retune to the *identical* trigger is only meaningful
//! as a resync request and forces a keyframe, as does any report-mode
//! change.

use std::collections::HashMap;

use bytes::Bytes;
use flexric_e2ap::RicRequestId;
use flexric_sm::delta::{DeltaRows, DeltaStreams, ReportOut};
use flexric_sm::{ReportMode, ReportTrigger, SmCodec};

use crate::agent::{AgentCtx, CtrlId, SubscriptionInfo};

/// Per-RAN-function report sender: one delta stream per subscription.
#[derive(Debug, Default)]
pub struct ReportSender<T: DeltaRows> {
    streams: DeltaStreams<(CtrlId, RicRequestId), T>,
    /// Last trigger seen per subscription, for the retune soft/hard call.
    triggers: HashMap<(CtrlId, RicRequestId), ReportTrigger>,
}

impl<T: DeltaRows> ReportSender<T> {
    /// An empty sender.
    pub fn new() -> Self {
        ReportSender { streams: DeltaStreams::new(), triggers: HashMap::new() }
    }

    /// A subscription was admitted (first time or reconnect replay):
    /// (re)start its stream so the next delta-mode report is a keyframe
    /// under a fresh epoch.
    pub fn reset(&mut self, sub: &SubscriptionInfo, trigger: &ReportTrigger) {
        let key = (sub.ctrl, sub.req_id);
        self.triggers.insert(key, *trigger);
        if let ReportMode::Delta { keyframe_every } = trigger.mode {
            self.streams.reset(key, keyframe_every);
        } else {
            self.streams.remove(&key);
        }
    }

    /// A subscription was retuned.  A changed trigger under the same
    /// report mode (the period backoff/tighten path) preserves the
    /// stream — the ordered transport keeps the receiver's base valid.
    /// An *identical* trigger is the server's resync request, and a mode
    /// change invalidates the base: both force a keyframe.
    pub fn retune(&mut self, sub: &SubscriptionInfo, trigger: &ReportTrigger) {
        let key = (sub.ctrl, sub.req_id);
        let prev = self.triggers.insert(key, *trigger);
        match trigger.mode {
            ReportMode::Delta { keyframe_every } => {
                let soft = prev.is_some_and(|p| p.mode == trigger.mode && p != *trigger);
                if soft {
                    self.streams.ensure(key, keyframe_every);
                } else {
                    self.streams.reset(key, keyframe_every);
                }
            }
            ReportMode::Full => self.streams.remove(&key),
        }
    }

    /// A subscription was deleted.
    pub fn delete(&mut self, ctrl: CtrlId, req_id: RicRequestId) {
        self.streams.remove(&(ctrl, req_id));
        self.triggers.remove(&(ctrl, req_id));
    }

    /// A controller went away entirely.
    pub fn delete_ctrl(&mut self, ctrl: CtrlId) {
        // DeltaStreams has no ctrl index; streams of dead subscriptions
        // are also dropped lazily on the next reset with the same key.
        self.streams.retain_keys(|(c, _)| *c != ctrl);
        self.triggers.retain(|(c, _), _| *c != ctrl);
    }

    /// Emits one report for `sub` under its trigger mode; suppressed
    /// reports send nothing.  Returns whether an indication was queued.
    pub fn send(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        sub: &SubscriptionInfo,
        trigger: &ReportTrigger,
        snap: &T,
        codec: SmCodec,
        sn: Option<u32>,
        header: Bytes,
    ) -> bool {
        match self.streams.report((sub.ctrl, sub.req_id), trigger.mode, snap, codec) {
            ReportOut::Send(buf) => {
                ctx.send_indication(sub, sn, header, buf);
                true
            }
            ReportOut::Suppressed => false,
        }
    }
}
