//! The FlexRIC server library (paper §4.2.2).
//!
//! "The FlexRIC server library's objective is to multiplex agent
//! connections and dispatch E2AP messages. […] The server library is
//! designed as an event-driven/callback-driven system, following the
//! ultra-lean design principle to impose minimal overhead.  Thus, it
//! invokes iApps only when there are new messages, unlike systems like
//! FlexRAN that use polling."
//!
//! The server library itself implements no service model and never
//! requests information by itself; iApps trigger all SM-related
//! communication and the server multiplexes messages between agents and
//! iApps.
//!
//! ## The FB fast path
//!
//! When the connection codec is FlatBuffers-style, inbound indications are
//! dispatched to iApps as raw bytes plus a peeked header
//! ([`IndicationRef::Raw`]): the subscription lookup needs only the O(1)
//! header peek, and a monitoring iApp can slice the SM payload out of the
//! raw bytes without ever building the IR.  With the ASN.1-PER-style codec
//! the lookup already requires a full decode ([`IndicationRef::Decoded`]).
//! This asymmetry is the mechanism behind the ~4× controller CPU difference
//! of the paper's Fig. 8b.

mod randb;

pub use randb::{AgentId, AgentInfo, RanDb, RanEntity};

use std::any::Any;
use std::collections::HashMap;
use std::io;

use bytes::Bytes;
use tokio::sync::{broadcast, mpsc, oneshot};

use flexric_codec::{CodecError, E2apCodec};
use flexric_e2ap::*;
use flexric_transport::{listen, Listener, SendHalf, TransportAddr, WireMsg};

use crate::scratch::{self, EncodeScratch, Targets};

/// Configuration of a controller built on the server library.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Identity advertised in E2 setup responses.
    pub ric_id: GlobalRicId,
    /// Addresses to accept agents on.
    pub listen: Vec<TransportAddr>,
    /// E2AP encoding used on all connections.
    pub codec: E2apCodec,
    /// Internal tick period in milliseconds; `None` means the embedder
    /// drives time explicitly through [`ServerHandle::tick`].
    pub tick_ms: Option<u64>,
}

impl ServerConfig {
    /// A controller listening on one address, 100 ms internal ticks.
    pub fn new(ric_id: GlobalRicId, listen_addr: TransportAddr) -> Self {
        ServerConfig {
            ric_id,
            listen: vec![listen_addr],
            codec: E2apCodec::default(),
            tick_ms: Some(100),
        }
    }
}

/// A received indication, decoded lazily depending on the codec.
#[derive(Debug)]
pub enum IndicationRef<'a> {
    /// FB path: raw bytes + peeked header, no decode performed.
    Raw {
        /// The encoded E2AP PDU.
        raw: &'a [u8],
        /// The peeked routing header.
        hdr: PduHeader,
    },
    /// PER path: the decode already happened during dispatch.
    Decoded(&'a RicIndication),
}

impl IndicationRef<'_> {
    /// The routing header.
    pub fn header(&self) -> PduHeader {
        match self {
            IndicationRef::Raw { hdr, .. } => *hdr,
            IndicationRef::Decoded(ind) => PduHeader {
                msg_type: MsgType::RicIndication,
                req_id: Some(ind.req_id),
                ran_function: Some(ind.ran_function),
            },
        }
    }

    /// The subscription's request id.
    pub fn req_id(&self) -> RicRequestId {
        self.header().req_id.unwrap_or_default()
    }

    /// The SM payload `(indication header, indication message)` as borrowed
    /// slices — on the FB path this is a zero-copy slice into the raw
    /// bytes; on the PER path it borrows the decoded PDU.
    pub fn sm_payload(&self) -> Result<(&[u8], &[u8]), CodecError> {
        match self {
            IndicationRef::Raw { raw, .. } => flexric_codec::e2ap_fb::indication_payload(raw),
            IndicationRef::Decoded(ind) => Ok((&ind.header, &ind.message)),
        }
    }

    /// Fully decodes into an owned indication (allocates on the FB path).
    pub fn to_owned_indication(&self) -> Result<RicIndication, CodecError> {
        match self {
            IndicationRef::Raw { raw, .. } => match flexric_codec::e2ap_fb::decode(raw)? {
                E2apPdu::RicIndication(ind) => Ok(ind),
                _ => Err(CodecError::Malformed { what: "not an indication" }),
            },
            IndicationRef::Decoded(ind) => Ok((*ind).clone()),
        }
    }
}

/// Outcome of a subscription request, delivered to the requesting iApp.
#[derive(Debug, Clone)]
pub enum SubOutcome {
    /// The agent admitted the subscription.
    Admitted(RicSubscriptionResponse),
    /// The agent rejected it.
    Failed(RicSubscriptionFailure),
}

/// Outcome of a control request, delivered to the requesting iApp.
#[derive(Debug, Clone)]
pub enum CtrlOutcome {
    /// Acknowledged (possibly with an SM outcome payload).
    Ack(RicControlAcknowledge),
    /// Failed.
    Failed(RicControlFailure),
}

/// A controller-internal application: the unit of controller
/// specialization (paper §4.2.1).
pub trait IApp: Send {
    /// Unique name, used for northbound routing.
    fn name(&self) -> &str;

    /// Called once when the server starts.
    fn on_start(&mut self, _api: &mut ServerApi) {}
    /// A new agent completed E2 setup.
    fn on_agent_connected(&mut self, _api: &mut ServerApi, _agent: &AgentInfo) {}
    /// An agent disconnected.
    fn on_agent_disconnected(&mut self, _api: &mut ServerApi, _agent: AgentId) {}
    /// A RAN entity became complete (monolithic node, or CU+DU merged).
    fn on_ran_formed(&mut self, _api: &mut ServerApi, _ran: &RanEntity) {}
    /// Outcome of a subscription this iApp requested.
    fn on_subscription_outcome(
        &mut self,
        _api: &mut ServerApi,
        _agent: AgentId,
        _out: &SubOutcome,
    ) {
    }
    /// An indication for a subscription this iApp owns.
    fn on_indication(&mut self, _api: &mut ServerApi, _agent: AgentId, _ind: &IndicationRef) {}
    /// Outcome of a control request this iApp sent.
    fn on_control_outcome(&mut self, _api: &mut ServerApi, _agent: AgentId, _out: &CtrlOutcome) {}
    /// Periodic tick.
    fn on_tick(&mut self, _api: &mut ServerApi, _now_ms: u64) {}
    /// A message from the northbound (or another iApp).
    fn on_custom(&mut self, _api: &mut ServerApi, _msg: Box<dyn Any + Send>) {}
}

/// Events published to external observers (examples, tests, northbound).
#[derive(Debug, Clone)]
pub enum ServerEvent {
    /// An agent completed E2 setup.
    AgentConnected(AgentInfo),
    /// An agent disconnected.
    AgentDisconnected(AgentId),
    /// A RAN entity became complete.
    RanFormed(RanEntity),
}

struct ConnState {
    tx: mpsc::UnboundedSender<Bytes>,
    alive: bool,
}

struct SubEntry {
    iapp: usize,
}

/// Shared server state handed to iApps through [`ServerApi`].
struct ServerCore {
    codec: E2apCodec,
    ric_id: GlobalRicId,
    randb: RanDb,
    subs: HashMap<(AgentId, RicRequestId), SubEntry>,
    ctrl_reqs: HashMap<(AgentId, RicRequestId), usize>,
    conns: HashMap<AgentId, ConnState>,
    outbox: Vec<(Targets<AgentId>, E2apPdu)>,
    scratch: EncodeScratch,
    custom_queue: Vec<(String, Box<dyn Any + Send>)>,
    events_tx: broadcast::Sender<ServerEvent>,
    next_instance: u16,
    now_ms: u64,
    rx_msgs: u64,
    tx_msgs: u64,
    rx_bytes: u64,
    tx_bytes: u64,
}

impl ServerCore {
    fn next_req_id(&mut self, iapp: usize) -> RicRequestId {
        self.next_instance = self.next_instance.wrapping_add(1);
        RicRequestId::new(iapp as u16 + 1, self.next_instance)
    }
}

/// API surface iApps use to act on the network.
pub struct ServerApi<'a> {
    core: &'a mut ServerCore,
    iapp: usize,
}

impl ServerApi<'_> {
    /// Current time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.core.now_ms
    }

    /// The RAN database.
    pub fn randb(&self) -> &RanDb {
        &self.core.randb
    }

    /// The E2AP codec of this controller.
    pub fn codec(&self) -> E2apCodec {
        self.core.codec
    }

    /// Requests a subscription at `agent` for `ran_function`; indications
    /// will be delivered to this iApp.  Returns the assigned request id.
    pub fn subscribe(
        &mut self,
        agent: AgentId,
        ran_function: RanFunctionId,
        event_trigger: Bytes,
        actions: Vec<RicActionToBeSetup>,
    ) -> RicRequestId {
        let req_id = self.core.next_req_id(self.iapp);
        self.core.subs.insert((agent, req_id), SubEntry { iapp: self.iapp });
        self.core.outbox.push((
            agent.into(),
            E2apPdu::RicSubscriptionRequest(RicSubscriptionRequest {
                req_id,
                ran_function,
                event_trigger,
                actions,
            }),
        ));
        req_id
    }

    /// Requests a report subscription with a single report action.
    pub fn subscribe_report(
        &mut self,
        agent: AgentId,
        ran_function: RanFunctionId,
        event_trigger: Bytes,
    ) -> RicRequestId {
        self.subscribe(
            agent,
            ran_function,
            event_trigger,
            vec![RicActionToBeSetup {
                id: RicActionId(0),
                action_type: RicActionType::Report,
                definition: None,
                subsequent: None,
            }],
        )
    }

    /// Deletes a subscription.
    pub fn unsubscribe(&mut self, agent: AgentId, req_id: RicRequestId) {
        if let Some(entry) = self.core.subs.get(&(agent, req_id)) {
            if entry.iapp != self.iapp {
                return; // not this iApp's subscription
            }
        }
        if let Some(sub) = self.core.subs.remove(&(agent, req_id)) {
            let ran_function = RanFunctionId::new(0); // resolved below
            let _ = sub;
            let _ = ran_function;
        }
        // The delete request needs the RAN function id; agents in this
        // implementation resolve deletes by request id, so 0 is accepted.
        self.core.outbox.push((
            agent.into(),
            E2apPdu::RicSubscriptionDeleteRequest(RicSubscriptionDeleteRequest {
                req_id,
                ran_function: RanFunctionId::new(0),
            }),
        ));
    }

    /// Sends a control request; the outcome is delivered to this iApp.
    pub fn control(
        &mut self,
        agent: AgentId,
        ran_function: RanFunctionId,
        header: Bytes,
        message: Bytes,
        ack: Option<ControlAckRequest>,
    ) -> RicRequestId {
        let req_id = self.core.next_req_id(self.iapp);
        self.core.ctrl_reqs.insert((agent, req_id), self.iapp);
        self.core.outbox.push((
            agent.into(),
            E2apPdu::RicControlRequest(RicControlRequest {
                req_id,
                ran_function,
                call_process_id: None,
                header,
                message,
                ack_request: ack,
            }),
        ));
        req_id
    }

    /// Sends an arbitrary PDU to an agent (relay/advanced use).
    pub fn send_pdu(&mut self, agent: AgentId, pdu: E2apPdu) {
        self.core.outbox.push((Targets::One(agent), pdu));
    }

    /// Sends one PDU to several agents.  The PDU is encoded once at flush
    /// and the frozen frame is shared across all targets.
    pub fn send_pdu_multi(&mut self, agents: Vec<AgentId>, pdu: E2apPdu) {
        if agents.is_empty() {
            return;
        }
        self.core.outbox.push((Targets::from_vec(agents), pdu));
    }

    /// Registers an externally chosen request id so indications and
    /// subscription outcomes for it are routed to this iApp (used by
    /// relaying controllers that forward subscriptions verbatim).
    pub fn claim_request_id(&mut self, agent: AgentId, req_id: RicRequestId) {
        self.core.subs.insert((agent, req_id), SubEntry { iapp: self.iapp });
    }

    /// Registers an externally chosen request id so control outcomes for
    /// it are routed to this iApp (relaying controllers forwarding control
    /// requests verbatim).
    pub fn claim_control_id(&mut self, agent: AgentId, req_id: RicRequestId) {
        self.core.ctrl_reqs.insert((agent, req_id), self.iapp);
    }

    /// Sends a custom message to another iApp (dispatched after the current
    /// callback returns).
    pub fn send_custom(&mut self, iapp_name: &str, msg: Box<dyn Any + Send>) {
        self.core.custom_queue.push((iapp_name.to_owned(), msg));
    }

    /// Publishes a server event to external observers.
    pub fn publish(&mut self, event: ServerEvent) {
        let _ = self.core.events_tx.send(event);
    }
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

enum Cmd {
    Tick(u64),
    ToIApp(String, Box<dyn Any + Send>),
    Agents(oneshot::Sender<Vec<AgentInfo>>),
    Stats(oneshot::Sender<ServerStats>),
    Stop,
}

/// Counters exposed by [`ServerHandle::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Messages received from agents.
    pub rx_msgs: u64,
    /// Messages sent to agents.
    pub tx_msgs: u64,
    /// Connected agents.
    pub agents: u64,
    /// Active subscriptions.
    pub subs: u64,
    /// Bytes sent to agents (encoded E2AP).
    pub tx_bytes: u64,
    /// Bytes received from agents.
    pub rx_bytes: u64,
}

/// Handle to a running controller.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    cmd: mpsc::UnboundedSender<Cmd>,
    events_tx: broadcast::Sender<ServerEvent>,
    /// Addresses the controller is listening on (ephemeral ports resolved).
    pub addrs: Vec<TransportAddr>,
}

impl ServerHandle {
    /// Advances controller time (virtual-time mode, or extra ticks).
    pub fn tick(&self, now_ms: u64) {
        let _ = self.cmd.send(Cmd::Tick(now_ms));
    }

    /// Sends a message to a named iApp (northbound ingress).
    pub fn to_iapp(&self, name: &str, msg: Box<dyn Any + Send>) {
        let _ = self.cmd.send(Cmd::ToIApp(name.to_owned(), msg));
    }

    /// Subscribes to server events.
    pub fn events(&self) -> broadcast::Receiver<ServerEvent> {
        self.events_tx.subscribe()
    }

    /// Snapshot of connected agents.
    pub async fn agents(&self) -> io::Result<Vec<AgentInfo>> {
        let (tx, rx) = oneshot::channel();
        self.cmd
            .send(Cmd::Agents(tx))
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "server stopped"))?;
        rx.await.map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "server stopped"))
    }

    /// Snapshot of the controller's counters.
    pub async fn stats(&self) -> io::Result<ServerStats> {
        let (tx, rx) = oneshot::channel();
        self.cmd
            .send(Cmd::Stats(tx))
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "server stopped"))?;
        rx.await.map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "server stopped"))
    }

    /// Stops the controller.
    pub fn stop(&self) {
        let _ = self.cmd.send(Cmd::Stop);
    }
}

enum LoopEvent {
    NewAgent(E2SetupRequest, flexric_transport::Transport),
    Inbound(AgentId, WireMsg),
    Closed(AgentId),
    Cmd(Cmd),
}

/// The controller runtime.
pub struct Server;

impl Server {
    /// Binds the listeners and spawns the controller event loop with the
    /// given iApps.
    pub async fn spawn(cfg: ServerConfig, iapps: Vec<Box<dyn IApp>>) -> io::Result<ServerHandle> {
        let (evt_tx, evt_rx) = mpsc::unbounded_channel();
        let (cmd_tx, cmd_rx) = mpsc::unbounded_channel();
        let (events_tx, _) = broadcast::channel(1024);

        let mut bound = Vec::new();
        let mut listeners: Vec<Listener> = Vec::new();
        for addr in &cfg.listen {
            let l = listen(addr).await?;
            bound.push(l.local_addr()?);
            listeners.push(l);
        }
        // Accept tasks: perform the setup *read* off the event loop, then
        // hand the transport plus the parsed request to the loop.
        for mut l in listeners {
            let evt = evt_tx.clone();
            let codec = cfg.codec;
            tokio::spawn(async move {
                loop {
                    let Ok(mut transport) = l.accept().await else { break };
                    let evt = evt.clone();
                    tokio::spawn(async move {
                        let Ok(Some(first)) = transport.recv().await else { return };
                        match codec.decode(&first.payload) {
                            Ok(E2apPdu::E2SetupRequest(req)) => {
                                let _ = evt.send(LoopEvent::NewAgent(req, transport));
                            }
                            _ => {
                                // Protocol violation: close the connection.
                            }
                        }
                    });
                }
            });
        }

        let core = ServerCore {
            codec: cfg.codec,
            ric_id: cfg.ric_id,
            randb: RanDb::new(),
            subs: HashMap::new(),
            ctrl_reqs: HashMap::new(),
            conns: HashMap::new(),
            outbox: Vec::new(),
            scratch: EncodeScratch::with_capacity(4096),
            custom_queue: Vec::new(),
            events_tx: events_tx.clone(),
            next_instance: 0,
            now_ms: 0,
            rx_msgs: 0,
            tx_msgs: 0,
            rx_bytes: 0,
            tx_bytes: 0,
        };
        let runtime = ServerRuntime { core, iapps, next_agent: 0, evt_tx: evt_tx.clone() };
        tokio::spawn(runtime.run(cfg.tick_ms, evt_rx, cmd_rx));
        Ok(ServerHandle { cmd: cmd_tx, events_tx, addrs: bound })
    }
}

struct ServerRuntime {
    core: ServerCore,
    iapps: Vec<Box<dyn IApp>>,
    next_agent: AgentId,
    evt_tx: mpsc::UnboundedSender<LoopEvent>,
}

impl ServerRuntime {
    async fn run(
        mut self,
        tick_ms: Option<u64>,
        mut evt_rx: mpsc::UnboundedReceiver<LoopEvent>,
        mut cmd_rx: mpsc::UnboundedReceiver<Cmd>,
    ) {
        self.for_all(|iapp, api| iapp.on_start(api));
        self.flush();
        let mut ticker = tick_ms.map(|ms| {
            let mut iv = tokio::time::interval(std::time::Duration::from_millis(ms.max(1)));
            iv.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Skip);
            iv
        });
        loop {
            let event = if let Some(iv) = ticker.as_mut() {
                tokio::select! {
                    biased;
                    Some(cmd) = cmd_rx.recv() => LoopEvent::Cmd(cmd),
                    Some(ev) = evt_rx.recv() => ev,
                    _ = iv.tick() => LoopEvent::Cmd(Cmd::Tick(crate::mono_ms())),
                    else => break,
                }
            } else {
                tokio::select! {
                    biased;
                    Some(cmd) = cmd_rx.recv() => LoopEvent::Cmd(cmd),
                    Some(ev) = evt_rx.recv() => ev,
                    else => break,
                }
            };
            match event {
                LoopEvent::NewAgent(req, transport) => self.handle_new_agent(req, transport),
                LoopEvent::Inbound(agent, msg) => {
                    self.core.rx_msgs += 1;
                    self.core.rx_bytes += msg.payload.len() as u64;
                    self.handle_inbound(agent, &msg.payload);
                }
                LoopEvent::Closed(agent) => self.handle_closed(agent),
                LoopEvent::Cmd(Cmd::Tick(now)) => {
                    self.core.now_ms = now;
                    self.for_all(|iapp, api| iapp.on_tick(api, now));
                }
                LoopEvent::Cmd(Cmd::ToIApp(name, msg)) => self.dispatch_custom(name, msg),
                LoopEvent::Cmd(Cmd::Agents(reply)) => {
                    let _ = reply.send(self.core.randb.agents().cloned().collect());
                }
                LoopEvent::Cmd(Cmd::Stats(reply)) => {
                    let _ = reply.send(ServerStats {
                        rx_msgs: self.core.rx_msgs,
                        tx_msgs: self.core.tx_msgs,
                        agents: self.core.randb.agent_count() as u64,
                        subs: self.core.subs.len() as u64,
                        tx_bytes: self.core.tx_bytes,
                        rx_bytes: self.core.rx_bytes,
                    });
                }
                LoopEvent::Cmd(Cmd::Stop) => break,
            }
            self.flush();
        }
    }

    /// Runs a callback over all iApps with a fresh API view each.
    fn for_all(&mut self, mut f: impl FnMut(&mut Box<dyn IApp>, &mut ServerApi)) {
        for idx in 0..self.iapps.len() {
            // Split borrow: iApps vector vs core.
            let (iapps, core) = (&mut self.iapps, &mut self.core);
            let mut api = ServerApi { core, iapp: idx };
            f(&mut iapps[idx], &mut api);
        }
        self.drain_custom();
    }

    /// Runs a callback on one iApp.
    fn for_one(&mut self, idx: usize, f: impl FnOnce(&mut Box<dyn IApp>, &mut ServerApi)) {
        if idx >= self.iapps.len() {
            return;
        }
        let (iapps, core) = (&mut self.iapps, &mut self.core);
        let mut api = ServerApi { core, iapp: idx };
        f(&mut iapps[idx], &mut api);
        self.drain_custom();
    }

    fn drain_custom(&mut self) {
        // Custom messages queued by iApps during callbacks, delivered
        // breadth-first; bounded to avoid infinite ping-pong.
        let mut depth = 0;
        while !self.core.custom_queue.is_empty() && depth < 64 {
            depth += 1;
            let queue = std::mem::take(&mut self.core.custom_queue);
            for (name, msg) in queue {
                if let Some(idx) = self.iapps.iter().position(|i| i.name() == name) {
                    let (iapps, core) = (&mut self.iapps, &mut self.core);
                    let mut api = ServerApi { core, iapp: idx };
                    iapps[idx].on_custom(&mut api, msg);
                }
            }
        }
    }

    fn dispatch_custom(&mut self, name: String, msg: Box<dyn Any + Send>) {
        self.core.custom_queue.push((name, msg));
        self.drain_custom();
    }

    fn handle_new_agent(&mut self, req: E2SetupRequest, transport: flexric_transport::Transport) {
        let agent_id = self.next_agent;
        self.next_agent += 1;
        let peer = transport.peer();
        let (out_tx, mut out_rx) = mpsc::unbounded_channel::<Bytes>();
        let (mut send_half, mut recv_half): (SendHalf, _) = transport.split();
        tokio::spawn(async move {
            let mut batch = Vec::with_capacity(8);
            while let Some(buf) = out_rx.recv().await {
                batch.push(WireMsg::e2ap(buf));
                // Coalesce everything already queued into one flush.
                while batch.len() < 64 {
                    match out_rx.try_recv() {
                        Ok(buf) => batch.push(WireMsg::e2ap(buf)),
                        Err(_) => break,
                    }
                }
                if send_half.send_batch(std::mem::take(&mut batch)).await.is_err() {
                    break;
                }
            }
        });
        let evt = self.evt_tx.clone();
        tokio::spawn(async move {
            loop {
                match recv_half.recv().await {
                    Ok(Some(msg)) => {
                        if evt.send(LoopEvent::Inbound(agent_id, msg)).is_err() {
                            break;
                        }
                    }
                    Ok(None) | Err(_) => {
                        let _ = evt.send(LoopEvent::Closed(agent_id));
                        break;
                    }
                }
            }
        });
        self.core.conns.insert(agent_id, ConnState { tx: out_tx, alive: true });

        let info = AgentInfo {
            id: agent_id,
            node: req.global_node,
            functions: req.ran_functions.clone(),
            peer,
        };
        let accepted = req.ran_functions.iter().map(|f| f.id).collect();
        self.core.outbox.push((
            agent_id.into(),
            E2apPdu::E2SetupResponse(E2SetupResponse {
                transaction_id: req.transaction_id,
                global_ric: self.core.ric_id,
                accepted,
                rejected: vec![],
            }),
        ));
        let formed = self.core.randb.add_agent(info.clone());
        let _ = self.core.events_tx.send(ServerEvent::AgentConnected(info.clone()));
        self.for_all(|iapp, api| iapp.on_agent_connected(api, &info));
        if let Some(entity) = formed {
            let _ = self.core.events_tx.send(ServerEvent::RanFormed(entity.clone()));
            self.for_all(|iapp, api| iapp.on_ran_formed(api, &entity));
        }
    }

    fn handle_closed(&mut self, agent: AgentId) {
        if let Some(conn) = self.core.conns.get_mut(&agent) {
            conn.alive = false;
        }
        self.core.subs.retain(|(a, _), _| *a != agent);
        self.core.ctrl_reqs.retain(|(a, _), _| *a != agent);
        if self.core.randb.remove_agent(agent).is_some() {
            let _ = self.core.events_tx.send(ServerEvent::AgentDisconnected(agent));
            self.for_all(|iapp, api| iapp.on_agent_disconnected(api, agent));
        }
        self.core.conns.remove(&agent);
    }

    fn handle_inbound(&mut self, agent: AgentId, raw: &[u8]) {
        // FB fast path: peek is O(1); only indications stay undecoded.
        if self.core.codec == E2apCodec::Flatb {
            let Ok(hdr) = self.core.codec.peek(raw) else { return };
            if hdr.msg_type == MsgType::RicIndication {
                let req_id = hdr.req_id.unwrap_or_default();
                if let Some(entry) = self.core.subs.get(&(agent, req_id)) {
                    let idx = entry.iapp;
                    let ind = IndicationRef::Raw { raw, hdr };
                    self.for_one(idx, |iapp, api| iapp.on_indication(api, agent, &ind));
                }
                return;
            }
        }
        let Ok(pdu) = self.core.codec.decode(raw) else { return };
        match pdu {
            E2apPdu::RicIndication(ind) => {
                if let Some(entry) = self.core.subs.get(&(agent, ind.req_id)) {
                    let idx = entry.iapp;
                    let ind_ref = IndicationRef::Decoded(&ind);
                    self.for_one(idx, |iapp, api| iapp.on_indication(api, agent, &ind_ref));
                }
            }
            E2apPdu::RicSubscriptionResponse(resp) => {
                if let Some(entry) = self.core.subs.get(&(agent, resp.req_id)) {
                    let idx = entry.iapp;
                    let out = SubOutcome::Admitted(resp);
                    self.for_one(idx, |iapp, api| iapp.on_subscription_outcome(api, agent, &out));
                }
            }
            E2apPdu::RicSubscriptionFailure(fail) => {
                if let Some(entry) = self.core.subs.remove(&(agent, fail.req_id)) {
                    let idx = entry.iapp;
                    let out = SubOutcome::Failed(fail);
                    self.for_one(idx, |iapp, api| iapp.on_subscription_outcome(api, agent, &out));
                }
            }
            E2apPdu::RicSubscriptionDeleteResponse(resp) => {
                self.core.subs.remove(&(agent, resp.req_id));
            }
            E2apPdu::RicSubscriptionDeleteFailure(fail) => {
                self.core.subs.remove(&(agent, fail.req_id));
            }
            E2apPdu::RicControlAcknowledge(ack) => {
                if let Some(idx) = self.core.ctrl_reqs.remove(&(agent, ack.req_id)) {
                    let out = CtrlOutcome::Ack(ack);
                    self.for_one(idx, |iapp, api| iapp.on_control_outcome(api, agent, &out));
                }
            }
            E2apPdu::RicControlFailure(fail) => {
                if let Some(idx) = self.core.ctrl_reqs.remove(&(agent, fail.req_id)) {
                    let out = CtrlOutcome::Failed(fail);
                    self.for_one(idx, |iapp, api| iapp.on_control_outcome(api, agent, &out));
                }
            }
            E2apPdu::RicServiceUpdate(upd) => {
                // Update the RANDB view of the agent's functions and ack.
                let accepted: Vec<RanFunctionId> = upd.added.iter().map(|f| f.id).collect();
                if let Some(info) = self.core.randb.agent(agent).cloned() {
                    let mut info = info;
                    for f in upd.added {
                        if !info.functions.iter().any(|x| x.id == f.id) {
                            info.functions.push(f);
                        }
                    }
                    for f in upd.modified {
                        if let Some(x) = info.functions.iter_mut().find(|x| x.id == f.id) {
                            *x = f;
                        }
                    }
                    info.functions.retain(|x| !upd.removed.contains(&x.id));
                    self.core.randb.add_agent(info);
                }
                self.core.outbox.push((
                    agent.into(),
                    E2apPdu::RicServiceUpdateAck(RicServiceUpdateAck {
                        transaction_id: upd.transaction_id,
                        accepted,
                        rejected: vec![],
                    }),
                ));
            }
            E2apPdu::ErrorIndication(_) | E2apPdu::ResetResponse(_) => {}
            E2apPdu::ResetRequest(req) => {
                self.core.subs.retain(|(a, _), _| *a != agent);
                self.core.outbox.push((
                    agent.into(),
                    E2apPdu::ResetResponse(ResetResponse { transaction_id: req.transaction_id }),
                ));
            }
            _ => {}
        }
    }

    fn flush(&mut self) {
        // Encode each queued PDU exactly once into the reusable scratch
        // buffer and share the frozen frame across its targets.
        let core = &mut self.core;
        let (conns, tx_msgs, tx_bytes) = (&core.conns, &mut core.tx_msgs, &mut core.tx_bytes);
        scratch::flush_outbox(&mut core.scratch, core.codec, &mut core.outbox, |agent, frame| {
            let Some(conn) = conns.get(&agent) else { return };
            if !conn.alive {
                return;
            }
            *tx_msgs += 1;
            *tx_bytes += frame.len() as u64;
            let _ = conn.tx.send(frame);
        });
    }
}
