//! The FlexRIC server library (paper §4.2.2).
//!
//! "The FlexRIC server library's objective is to multiplex agent
//! connections and dispatch E2AP messages. […] The server library is
//! designed as an event-driven/callback-driven system, following the
//! ultra-lean design principle to impose minimal overhead.  Thus, it
//! invokes iApps only when there are new messages, unlike systems like
//! FlexRAN that use polling."
//!
//! The server library itself implements no service model and never
//! requests information by itself; iApps trigger all SM-related
//! communication and the server multiplexes messages between agents and
//! iApps.
//!
//! ## Procedure robustness
//!
//! Every server-initiated E2AP procedure (subscription, subscription
//! delete, control) is tracked in the shared procedure-endpoint layer
//! ([`crate::endpoint`]): requests carry per-class deadlines, subscription
//! requests are retransmitted under [`RetryPolicy`], and terminal failures
//! surface to the owning iApp as [`SubOutcome::TimedOut`] /
//! [`CtrlOutcome::TimedOut`] or the `ConnectionLost` variants instead of
//! leaking state.  When an agent's connection drops, its identity and
//! subscription intents are kept for [`ServerConfig::reconnect_grace_ms`];
//! an agent presenting the same global E2 node id within the window is
//! rebound to its old [`AgentId`] and every replayable subscription is
//! re-issued — iApps keep their request ids and indications simply resume.
//!
//! ## The FB fast path
//!
//! When the connection codec is FlatBuffers-style, inbound indications are
//! dispatched to iApps as raw bytes plus a peeked header
//! ([`IndicationRef::Raw`]): the subscription lookup needs only the O(1)
//! header peek, and a monitoring iApp can slice the SM payload out of the
//! raw bytes without ever building the IR.  With the ASN.1-PER-style codec
//! the lookup already requires a full decode ([`IndicationRef::Decoded`]).
//! This asymmetry is the mechanism behind the ~4× controller CPU difference
//! of the paper's Fig. 8b.

mod randb;

pub use randb::{AgentId, AgentInfo, RanDb, RanEntity};

use std::any::Any;
use std::collections::HashMap;
use std::io;

use bytes::Bytes;
use tokio::sync::{broadcast, mpsc, oneshot};
use tokio::task::JoinHandle;

use flexric_codec::{CodecError, E2apCodec};
use flexric_e2ap::*;
use flexric_transport::fault::FaultHandle;
use flexric_transport::{listen, Listener, TransportAddr, WireMsg};

use crate::endpoint::{E2apEndpoint, Procedure, ProcedureClass, ProcedureKey, RetryPolicy};
use crate::scratch::{self, EncodeScratch, Targets};

/// Consecutive undecodable PDUs from one agent before the server degrades
/// the connection instead of continuing to parse garbage.
const MAX_CONSECUTIVE_DECODE_ERRORS: u32 = 8;

/// Configuration of a controller built on the server library.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Identity advertised in E2 setup responses.
    pub ric_id: GlobalRicId,
    /// Addresses to accept agents on.
    pub listen: Vec<TransportAddr>,
    /// E2AP encoding used on all connections.
    pub codec: E2apCodec,
    /// Internal tick period in milliseconds; `None` means the embedder
    /// drives time explicitly through [`ServerHandle::tick`].
    pub tick_ms: Option<u64>,
    /// Deadlines and retransmission budget for tracked procedures.
    pub retry: RetryPolicy,
    /// How long a disconnected agent's identity and subscription intents
    /// are kept for a reconnect-with-resubscribe; `0` disconnects
    /// immediately.
    pub reconnect_grace_ms: u64,
    /// Fault injector applied to every outbound frame (robustness tests).
    pub fault: Option<FaultHandle>,
}

impl ServerConfig {
    /// A controller listening on one address, 100 ms internal ticks, a
    /// one-second reconnect grace window.
    pub fn new(ric_id: GlobalRicId, listen_addr: TransportAddr) -> Self {
        ServerConfig {
            ric_id,
            listen: vec![listen_addr],
            codec: E2apCodec::default(),
            tick_ms: Some(100),
            retry: RetryPolicy::default(),
            reconnect_grace_ms: 1_000,
            fault: None,
        }
    }
}

/// A received indication, decoded lazily depending on the codec.
#[derive(Debug)]
pub enum IndicationRef<'a> {
    /// FB path: raw bytes + peeked header, no decode performed.
    Raw {
        /// The encoded E2AP PDU.
        raw: &'a [u8],
        /// The peeked routing header.
        hdr: PduHeader,
    },
    /// PER path: the decode already happened during dispatch.
    Decoded(&'a RicIndication),
}

impl IndicationRef<'_> {
    /// The routing header.
    pub fn header(&self) -> PduHeader {
        match self {
            IndicationRef::Raw { hdr, .. } => *hdr,
            IndicationRef::Decoded(ind) => PduHeader {
                msg_type: MsgType::RicIndication,
                req_id: Some(ind.req_id),
                ran_function: Some(ind.ran_function),
            },
        }
    }

    /// The subscription's request id.
    pub fn req_id(&self) -> RicRequestId {
        self.header().req_id.unwrap_or_default()
    }

    /// The SM payload `(indication header, indication message)` as borrowed
    /// slices — on the FB path this is a zero-copy slice into the raw
    /// bytes; on the PER path it borrows the decoded PDU.
    pub fn sm_payload(&self) -> Result<(&[u8], &[u8]), CodecError> {
        match self {
            IndicationRef::Raw { raw, .. } => flexric_codec::e2ap_fb::indication_payload(raw),
            IndicationRef::Decoded(ind) => Ok((&ind.header, &ind.message)),
        }
    }

    /// Fully decodes into an owned indication (allocates on the FB path).
    pub fn to_owned_indication(&self) -> Result<RicIndication, CodecError> {
        match self {
            IndicationRef::Raw { raw, .. } => match flexric_codec::e2ap_fb::decode(raw)? {
                E2apPdu::RicIndication(ind) => Ok(ind),
                _ => Err(CodecError::Malformed { what: "not an indication" }),
            },
            IndicationRef::Decoded(ind) => Ok((*ind).clone()),
        }
    }
}

/// Outcome of a subscription request, delivered to the requesting iApp.
#[derive(Debug, Clone)]
pub enum SubOutcome {
    /// The agent admitted the subscription.
    Admitted(RicSubscriptionResponse),
    /// The agent rejected it.
    Failed(RicSubscriptionFailure),
    /// No response within the deadline, after all retransmissions.
    TimedOut {
        /// The request that expired.
        req_id: RicRequestId,
        /// The RAN function it addressed.
        ran_function: RanFunctionId,
        /// How many times the request was sent.
        attempts: u32,
    },
    /// The agent's connection dropped while the request was outstanding.
    /// If the agent reconnects within the grace window the subscription is
    /// re-issued automatically under the same request id.
    ConnectionLost {
        /// The request that was in flight.
        req_id: RicRequestId,
        /// The RAN function it addressed.
        ran_function: RanFunctionId,
    },
}

/// Outcome of a control request, delivered to the requesting iApp.
#[derive(Debug, Clone)]
pub enum CtrlOutcome {
    /// Acknowledged (possibly with an SM outcome payload).
    Ack(RicControlAcknowledge),
    /// Failed.
    Failed(RicControlFailure),
    /// No acknowledgement within the deadline.  Controls are never
    /// retransmitted (they are not idempotent), so this only bounds the
    /// wait.
    TimedOut {
        /// The request that expired.
        req_id: RicRequestId,
        /// The RAN function it addressed.
        ran_function: RanFunctionId,
    },
    /// The agent's connection dropped while the request was outstanding.
    ConnectionLost {
        /// The request that was in flight.
        req_id: RicRequestId,
        /// The RAN function it addressed.
        ran_function: RanFunctionId,
    },
}

/// A controller-internal application: the unit of controller
/// specialization (paper §4.2.1).
pub trait IApp: Send {
    /// Unique name, used for northbound routing.
    fn name(&self) -> &str;

    /// Called once when the server starts.
    fn on_start(&mut self, _api: &mut ServerApi) {}
    /// A new agent completed E2 setup.
    fn on_agent_connected(&mut self, _api: &mut ServerApi, _agent: &AgentInfo) {}
    /// An agent disconnected.
    fn on_agent_disconnected(&mut self, _api: &mut ServerApi, _agent: AgentId) {}
    /// An agent reconnected within the grace window and was rebound to its
    /// previous [`AgentId`]; its replayable subscriptions are being
    /// re-issued under their original request ids.
    fn on_agent_reconnected(&mut self, _api: &mut ServerApi, _agent: &AgentInfo) {}
    /// A RAN entity became complete (monolithic node, or CU+DU merged).
    fn on_ran_formed(&mut self, _api: &mut ServerApi, _ran: &RanEntity) {}
    /// Outcome of a subscription this iApp requested.
    fn on_subscription_outcome(
        &mut self,
        _api: &mut ServerApi,
        _agent: AgentId,
        _out: &SubOutcome,
    ) {
    }
    /// An indication for a subscription this iApp owns.
    fn on_indication(&mut self, _api: &mut ServerApi, _agent: AgentId, _ind: &IndicationRef) {}
    /// Outcome of a control request this iApp sent.
    fn on_control_outcome(&mut self, _api: &mut ServerApi, _agent: AgentId, _out: &CtrlOutcome) {}
    /// Periodic tick.
    fn on_tick(&mut self, _api: &mut ServerApi, _now_ms: u64) {}
    /// A message from the northbound (or another iApp).
    fn on_custom(&mut self, _api: &mut ServerApi, _msg: Box<dyn Any + Send>) {}
}

/// Events published to external observers (examples, tests, northbound).
#[derive(Debug, Clone)]
pub enum ServerEvent {
    /// An agent completed E2 setup.
    AgentConnected(AgentInfo),
    /// An agent disconnected.
    AgentDisconnected(AgentId),
    /// An agent reconnected within the grace window and kept its id.
    AgentReconnected(AgentInfo),
    /// A RAN entity became complete.
    RanFormed(RanEntity),
}

struct ConnState {
    tx: mpsc::UnboundedSender<Bytes>,
    /// Distinguishes this connection from earlier ones under the same
    /// [`AgentId`] (reconnects), so stale reader events are ignored.
    epoch: u64,
    reader: JoinHandle<()>,
    /// Consecutive undecodable inbound PDUs; reset on any good PDU.
    decode_errors: u32,
}

/// One subscription the server knows about: the routing entry plus the
/// intent needed to replay it after a reconnect.
struct SubState {
    iapp: usize,
    ran_function: RanFunctionId,
    event_trigger: Bytes,
    actions: Vec<RicActionToBeSetup>,
    /// Whether the agent has acknowledged it (on the current connection).
    established: bool,
    /// Whether the server owns the request and may re-issue it on
    /// reconnect.  Claimed (forwarded) ids are routing-only.
    replayable: bool,
}

/// Shared server state handed to iApps through [`ServerApi`].
struct ServerCore {
    codec: E2apCodec,
    ric_id: GlobalRicId,
    randb: RanDb,
    subs: HashMap<(AgentId, RicRequestId), SubState>,
    /// The shared procedure endpoint: one outstanding-transaction table
    /// for every server-initiated procedure, plus the id allocators.
    endpoint: E2apEndpoint<AgentId, usize>,
    conns: HashMap<AgentId, ConnState>,
    outbox: Vec<(Targets<AgentId>, E2apPdu)>,
    scratch: EncodeScratch,
    custom_queue: Vec<(String, Box<dyn Any + Send>)>,
    events_tx: broadcast::Sender<ServerEvent>,
    now_ms: u64,
    rx_msgs: u64,
    tx_msgs: u64,
    rx_bytes: u64,
    tx_bytes: u64,
    retries: u64,
    timeouts: u64,
    reconnects: u64,
    decode_errors: u64,
}

impl ServerCore {
    fn next_req_id(&mut self, iapp: usize) -> RicRequestId {
        let requestor = iapp as u16 + 1;
        let ServerCore { endpoint, subs, .. } = self;
        // An instance is busy while its procedure is in flight *or* its
        // subscription is live — established subscriptions outlive their
        // table entry.
        endpoint.alloc_request_id(requestor, |inst| {
            subs.keys().any(|(_, r)| r.requestor == requestor && r.instance == inst)
        })
    }
}

/// API surface iApps use to act on the network.
pub struct ServerApi<'a> {
    core: &'a mut ServerCore,
    iapp: usize,
}

impl ServerApi<'_> {
    /// Current time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.core.now_ms
    }

    /// The RAN database.
    pub fn randb(&self) -> &RanDb {
        &self.core.randb
    }

    /// The E2AP codec of this controller.
    pub fn codec(&self) -> E2apCodec {
        self.core.codec
    }

    /// Requests a subscription at `agent` for `ran_function`; indications
    /// will be delivered to this iApp.  Returns the assigned request id.
    ///
    /// The request is tracked in the procedure endpoint: it is
    /// retransmitted per [`RetryPolicy`] if the response is lost, and the
    /// iApp sees a terminal [`SubOutcome`] in every case.
    pub fn subscribe(
        &mut self,
        agent: AgentId,
        ran_function: RanFunctionId,
        event_trigger: Bytes,
        actions: Vec<RicActionToBeSetup>,
    ) -> RicRequestId {
        let req_id = self.core.next_req_id(self.iapp);
        let pdu = E2apPdu::RicSubscriptionRequest(RicSubscriptionRequest {
            req_id,
            ran_function,
            event_trigger: event_trigger.clone(),
            actions: actions.clone(),
        });
        self.core.subs.insert(
            (agent, req_id),
            SubState {
                iapp: self.iapp,
                ran_function,
                event_trigger,
                actions,
                established: false,
                replayable: true,
            },
        );
        self.core.endpoint.table.begin(
            agent,
            ProcedureKey::Ric(req_id),
            ProcedureClass::Subscription,
            Some(pdu.clone()),
            self.iapp,
            self.core.now_ms,
        );
        self.core.outbox.push((agent.into(), pdu));
        req_id
    }

    /// Requests a report subscription with a single report action.
    pub fn subscribe_report(
        &mut self,
        agent: AgentId,
        ran_function: RanFunctionId,
        event_trigger: Bytes,
    ) -> RicRequestId {
        self.subscribe(
            agent,
            ran_function,
            event_trigger,
            vec![RicActionToBeSetup {
                id: RicActionId(0),
                action_type: RicActionType::Report,
                definition: None,
                subsequent: None,
            }],
        )
    }

    /// Deletes a subscription.
    pub fn unsubscribe(&mut self, agent: AgentId, req_id: RicRequestId) {
        let ran_function = match self.core.subs.get(&(agent, req_id)) {
            Some(sub) if sub.iapp != self.iapp => return, // not this iApp's subscription
            Some(sub) => sub.ran_function,
            None => RanFunctionId::new(0),
        };
        self.core.subs.remove(&(agent, req_id));
        // A still-pending subscription procedure under the same key is
        // cancelled; the delete takes over the id.
        self.core.endpoint.table.complete(agent, ProcedureKey::Ric(req_id));
        let pdu = E2apPdu::RicSubscriptionDeleteRequest(RicSubscriptionDeleteRequest {
            req_id,
            ran_function,
        });
        self.core.endpoint.table.begin(
            agent,
            ProcedureKey::Ric(req_id),
            ProcedureClass::SubscriptionDelete,
            Some(pdu.clone()),
            self.iapp,
            self.core.now_ms,
        );
        self.core.outbox.push((agent.into(), pdu));
    }

    /// Sends a control request; the outcome is delivered to this iApp.
    ///
    /// With `ack = Some(Ack)` the request carries a deadline and the iApp
    /// is guaranteed a terminal [`CtrlOutcome`]; otherwise the entry only
    /// routes whatever response the agent chooses to send.  Controls are
    /// never retransmitted.
    pub fn control(
        &mut self,
        agent: AgentId,
        ran_function: RanFunctionId,
        header: Bytes,
        message: Bytes,
        ack: Option<ControlAckRequest>,
    ) -> RicRequestId {
        let req_id = self.core.next_req_id(self.iapp);
        let pdu = E2apPdu::RicControlRequest(RicControlRequest {
            req_id,
            ran_function,
            call_process_id: None,
            header,
            message,
            ack_request: ack,
        });
        if ack == Some(ControlAckRequest::Ack) {
            self.core.endpoint.table.begin(
                agent,
                ProcedureKey::Ric(req_id),
                ProcedureClass::Control,
                Some(pdu.clone()),
                self.iapp,
                self.core.now_ms,
            );
        } else {
            // A response is not guaranteed (no-ack / nack-only): track for
            // routing but never expire.
            self.core.endpoint.table.begin_untimed(
                agent,
                ProcedureKey::Ric(req_id),
                ProcedureClass::Control,
                self.iapp,
            );
        }
        self.core.outbox.push((agent.into(), pdu));
        req_id
    }

    /// Sends an arbitrary PDU to an agent (relay/advanced use).
    pub fn send_pdu(&mut self, agent: AgentId, pdu: E2apPdu) {
        self.core.outbox.push((Targets::One(agent), pdu));
    }

    /// Sends one PDU to several agents.  The PDU is encoded once at flush
    /// and the frozen frame is shared across all targets.
    pub fn send_pdu_multi(&mut self, agents: Vec<AgentId>, pdu: E2apPdu) {
        if agents.is_empty() {
            return;
        }
        self.core.outbox.push((Targets::from_vec(agents), pdu));
    }

    /// Registers an externally chosen request id so indications and
    /// subscription outcomes for it are routed to this iApp (used by
    /// relaying controllers that forward subscriptions verbatim).  The
    /// forwarder owns the procedure lifecycle: the entry never times out
    /// and is not replayed on reconnect.
    pub fn claim_request_id(&mut self, agent: AgentId, req_id: RicRequestId) {
        self.core.subs.insert(
            (agent, req_id),
            SubState {
                iapp: self.iapp,
                ran_function: RanFunctionId::new(0),
                event_trigger: Bytes::new(),
                actions: Vec::new(),
                established: false,
                replayable: false,
            },
        );
    }

    /// Registers an externally chosen request id so control outcomes for
    /// it are routed to this iApp (relaying controllers forwarding control
    /// requests verbatim).  Routing-only: the entry never times out.
    pub fn claim_control_id(&mut self, agent: AgentId, req_id: RicRequestId) {
        self.core.endpoint.table.begin_untimed(
            agent,
            ProcedureKey::Ric(req_id),
            ProcedureClass::Control,
            self.iapp,
        );
    }

    /// Sends a custom message to another iApp (dispatched after the current
    /// callback returns).
    pub fn send_custom(&mut self, iapp_name: &str, msg: Box<dyn Any + Send>) {
        self.core.custom_queue.push((iapp_name.to_owned(), msg));
    }

    /// Publishes a server event to external observers.
    pub fn publish(&mut self, event: ServerEvent) {
        let _ = self.core.events_tx.send(event);
    }
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

enum Cmd {
    Tick(u64),
    ToIApp(String, Box<dyn Any + Send>),
    Agents(oneshot::Sender<Vec<AgentInfo>>),
    Stats(oneshot::Sender<ServerStats>),
    Stop,
}

/// Counters exposed by [`ServerHandle::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Messages received from agents.
    pub rx_msgs: u64,
    /// Messages sent to agents.
    pub tx_msgs: u64,
    /// Connected agents (including agents in the reconnect grace window).
    pub agents: u64,
    /// Active subscriptions.
    pub subs: u64,
    /// Bytes sent to agents (encoded E2AP).
    pub tx_bytes: u64,
    /// Bytes received from agents.
    pub rx_bytes: u64,
    /// Procedure retransmissions sent.
    pub retries: u64,
    /// Procedures that expired terminally.
    pub timeouts: u64,
    /// Agents rebound to their old id after a reconnect.
    pub reconnects: u64,
    /// Inbound PDUs that failed to decode.
    pub decode_errors: u64,
}

/// Server-layer registry metrics, mirroring the per-instance
/// [`ServerStats`] into the process-wide registry (summed across servers
/// in one process).  Registered as a block on first touch so the layer is
/// always listed in `/metrics`.
struct ServerObs {
    rx_msgs: flexric_obs::Counter,
    rx_bytes: flexric_obs::Counter,
    tx_msgs: flexric_obs::Counter,
    tx_bytes: flexric_obs::Counter,
    indications_rx: flexric_obs::Counter,
    decode_errors: flexric_obs::Counter,
    reconnects: flexric_obs::Counter,
    agents: flexric_obs::Gauge,
    subs_live: flexric_obs::Gauge,
    dispatch_ns: flexric_obs::Histogram,
}

fn obs() -> &'static ServerObs {
    static M: std::sync::OnceLock<ServerObs> = std::sync::OnceLock::new();
    M.get_or_init(|| ServerObs {
        rx_msgs: flexric_obs::counter("flexric_server_rx_msgs_total", "messages from agents"),
        rx_bytes: flexric_obs::counter("flexric_server_rx_bytes_total", "encoded bytes received"),
        tx_msgs: flexric_obs::counter("flexric_server_tx_msgs_total", "messages to agents"),
        tx_bytes: flexric_obs::counter("flexric_server_tx_bytes_total", "encoded bytes sent"),
        indications_rx: flexric_obs::counter(
            "flexric_server_indications_rx_total",
            "RIC indications received from agents",
        ),
        decode_errors: flexric_obs::counter(
            "flexric_server_decode_errors_total",
            "inbound PDUs that failed to decode",
        ),
        reconnects: flexric_obs::counter(
            "flexric_server_reconnects_total",
            "agents rebound to their old id after a reconnect",
        ),
        agents: flexric_obs::gauge("flexric_server_agents", "connected agents"),
        subs_live: flexric_obs::gauge("flexric_server_subscriptions_live", "active subscriptions"),
        dispatch_ns: flexric_obs::histogram(
            "flexric_server_dispatch_ns",
            "indication dispatch latency (subscription lookup + iApp handler)",
        ),
    })
}

/// Handle to a running controller.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    cmd: mpsc::UnboundedSender<Cmd>,
    events_tx: broadcast::Sender<ServerEvent>,
    /// Addresses the controller is listening on (ephemeral ports resolved).
    pub addrs: Vec<TransportAddr>,
}

impl ServerHandle {
    /// Advances controller time (virtual-time mode, or extra ticks).
    pub fn tick(&self, now_ms: u64) {
        let _ = self.cmd.send(Cmd::Tick(now_ms));
    }

    /// Sends a message to a named iApp (northbound ingress).
    pub fn to_iapp(&self, name: &str, msg: Box<dyn Any + Send>) {
        let _ = self.cmd.send(Cmd::ToIApp(name.to_owned(), msg));
    }

    /// Subscribes to server events.
    pub fn events(&self) -> broadcast::Receiver<ServerEvent> {
        self.events_tx.subscribe()
    }

    /// Snapshot of connected agents.
    pub async fn agents(&self) -> io::Result<Vec<AgentInfo>> {
        let (tx, rx) = oneshot::channel();
        self.cmd
            .send(Cmd::Agents(tx))
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "server stopped"))?;
        rx.await.map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "server stopped"))
    }

    /// Snapshot of the controller's counters.
    pub async fn stats(&self) -> io::Result<ServerStats> {
        let (tx, rx) = oneshot::channel();
        self.cmd
            .send(Cmd::Stats(tx))
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "server stopped"))?;
        rx.await.map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "server stopped"))
    }

    /// Stops the controller.  Listeners are shut down with the event loop,
    /// so the addresses can be re-bound by a restarted controller.
    pub fn stop(&self) {
        let _ = self.cmd.send(Cmd::Stop);
    }
}

enum LoopEvent {
    NewAgent(E2SetupRequest, flexric_transport::Transport),
    Inbound(AgentId, u64, WireMsg),
    Closed(AgentId, u64),
    Cmd(Cmd),
}

/// The controller runtime.
///
/// Procedure tracking, retransmission, and reconnect handling live in the
/// shared endpoint layer — see [`crate::endpoint`] and the module docs.
pub struct Server;

impl Server {
    /// Binds the listeners and spawns the controller event loop with the
    /// given iApps.
    pub async fn spawn(cfg: ServerConfig, iapps: Vec<Box<dyn IApp>>) -> io::Result<ServerHandle> {
        let (evt_tx, evt_rx) = mpsc::unbounded_channel();
        let (cmd_tx, cmd_rx) = mpsc::unbounded_channel();
        let (events_tx, _) = broadcast::channel(1024);

        let mut bound = Vec::new();
        let mut listeners: Vec<Listener> = Vec::new();
        for addr in &cfg.listen {
            let l = listen(addr).await?;
            bound.push(l.local_addr()?);
            listeners.push(l);
        }
        // Accept tasks: perform the setup *read* off the event loop, then
        // hand the transport plus the parsed request to the loop.  The
        // handles are kept so stopping the server frees the addresses.
        let mut listener_tasks = Vec::new();
        for mut l in listeners {
            let evt = evt_tx.clone();
            let codec = cfg.codec;
            listener_tasks.push(tokio::spawn(async move {
                loop {
                    let Ok(mut transport) = l.accept().await else { break };
                    let evt = evt.clone();
                    tokio::spawn(async move {
                        let Ok(Some(first)) = transport.recv().await else { return };
                        match codec.decode(&first.payload) {
                            Ok(E2apPdu::E2SetupRequest(req)) => {
                                let _ = evt.send(LoopEvent::NewAgent(req, transport));
                            }
                            _ => {
                                // Protocol violation: close the connection.
                            }
                        }
                    });
                }
            }));
        }

        let core = ServerCore {
            codec: cfg.codec,
            ric_id: cfg.ric_id,
            randb: RanDb::new(),
            subs: HashMap::new(),
            endpoint: E2apEndpoint::new(cfg.retry),
            conns: HashMap::new(),
            outbox: Vec::new(),
            scratch: EncodeScratch::with_capacity(4096),
            custom_queue: Vec::new(),
            events_tx: events_tx.clone(),
            now_ms: 0,
            rx_msgs: 0,
            tx_msgs: 0,
            rx_bytes: 0,
            tx_bytes: 0,
            retries: 0,
            timeouts: 0,
            reconnects: 0,
            decode_errors: 0,
        };
        let runtime = ServerRuntime {
            core,
            iapps,
            next_agent: 0,
            next_epoch: 0,
            evt_tx: evt_tx.clone(),
            offline: HashMap::new(),
            grace_ms: cfg.reconnect_grace_ms,
            fault: cfg.fault.clone(),
            listener_tasks,
        };
        tokio::spawn(runtime.run(cfg.tick_ms, evt_rx, cmd_rx));
        Ok(ServerHandle { cmd: cmd_tx, events_tx, addrs: bound })
    }
}

struct ServerRuntime {
    core: ServerCore,
    iapps: Vec<Box<dyn IApp>>,
    next_agent: AgentId,
    next_epoch: u64,
    evt_tx: mpsc::UnboundedSender<LoopEvent>,
    /// Disconnected agents kept for a rebind: grace deadline per agent.
    offline: HashMap<AgentId, u64>,
    grace_ms: u64,
    fault: Option<FaultHandle>,
    listener_tasks: Vec<JoinHandle<()>>,
}

impl ServerRuntime {
    async fn run(
        mut self,
        tick_ms: Option<u64>,
        mut evt_rx: mpsc::UnboundedReceiver<LoopEvent>,
        mut cmd_rx: mpsc::UnboundedReceiver<Cmd>,
    ) {
        self.for_all(|iapp, api| iapp.on_start(api));
        self.flush();
        let mut ticker = tick_ms.map(|ms| {
            let mut iv = tokio::time::interval(std::time::Duration::from_millis(ms.max(1)));
            iv.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Skip);
            iv
        });
        loop {
            let event = if let Some(iv) = ticker.as_mut() {
                tokio::select! {
                    biased;
                    Some(cmd) = cmd_rx.recv() => LoopEvent::Cmd(cmd),
                    Some(ev) = evt_rx.recv() => ev,
                    _ = iv.tick() => LoopEvent::Cmd(Cmd::Tick(crate::mono_ms())),
                    else => break,
                }
            } else {
                tokio::select! {
                    biased;
                    Some(cmd) = cmd_rx.recv() => LoopEvent::Cmd(cmd),
                    Some(ev) = evt_rx.recv() => ev,
                    else => break,
                }
            };
            match event {
                LoopEvent::NewAgent(req, transport) => self.handle_new_agent(req, transport),
                LoopEvent::Inbound(agent, epoch, msg) => {
                    if !self.core.conns.get(&agent).is_some_and(|c| c.epoch == epoch) {
                        continue; // stale reader of a replaced connection
                    }
                    self.core.rx_msgs += 1;
                    self.core.rx_bytes += msg.payload.len() as u64;
                    obs().rx_msgs.inc();
                    obs().rx_bytes.add(msg.payload.len() as u64);
                    match self.handle_inbound(agent, &msg.payload) {
                        Ok(()) => {
                            if let Some(c) = self.core.conns.get_mut(&agent) {
                                c.decode_errors = 0;
                            }
                        }
                        Err(_) => self.on_decode_error(agent),
                    }
                }
                LoopEvent::Closed(agent, epoch) => self.handle_closed(agent, epoch),
                LoopEvent::Cmd(Cmd::Tick(now)) => {
                    self.core.now_ms = now;
                    self.tick_procedures(now);
                    self.for_all(|iapp, api| iapp.on_tick(api, now));
                }
                LoopEvent::Cmd(Cmd::ToIApp(name, msg)) => self.dispatch_custom(name, msg),
                LoopEvent::Cmd(Cmd::Agents(reply)) => {
                    let _ = reply.send(self.core.randb.agents().cloned().collect());
                }
                LoopEvent::Cmd(Cmd::Stats(reply)) => {
                    let _ = reply.send(ServerStats {
                        rx_msgs: self.core.rx_msgs,
                        tx_msgs: self.core.tx_msgs,
                        agents: self.core.randb.agent_count() as u64,
                        subs: self.core.subs.len() as u64,
                        tx_bytes: self.core.tx_bytes,
                        rx_bytes: self.core.rx_bytes,
                        retries: self.core.retries,
                        timeouts: self.core.timeouts,
                        reconnects: self.core.reconnects,
                        decode_errors: self.core.decode_errors,
                    });
                }
                LoopEvent::Cmd(Cmd::Stop) => break,
            }
            self.flush();
        }
        // Free the listen addresses and reader tasks so a restarted
        // controller can bind the same endpoints.
        for t in &self.listener_tasks {
            t.abort();
        }
        for (_, conn) in self.core.conns.drain() {
            conn.reader.abort();
        }
    }

    /// Runs a callback over all iApps with a fresh API view each.
    fn for_all(&mut self, mut f: impl FnMut(&mut Box<dyn IApp>, &mut ServerApi)) {
        for idx in 0..self.iapps.len() {
            // Split borrow: iApps vector vs core.
            let (iapps, core) = (&mut self.iapps, &mut self.core);
            let mut api = ServerApi { core, iapp: idx };
            f(&mut iapps[idx], &mut api);
        }
        self.drain_custom();
    }

    /// Runs a callback on one iApp.
    fn for_one(&mut self, idx: usize, f: impl FnOnce(&mut Box<dyn IApp>, &mut ServerApi)) {
        if idx >= self.iapps.len() {
            return;
        }
        let (iapps, core) = (&mut self.iapps, &mut self.core);
        let mut api = ServerApi { core, iapp: idx };
        f(&mut iapps[idx], &mut api);
        self.drain_custom();
    }

    fn drain_custom(&mut self) {
        // Custom messages queued by iApps during callbacks, delivered
        // breadth-first; bounded to avoid infinite ping-pong.
        let mut depth = 0;
        while !self.core.custom_queue.is_empty() && depth < 64 {
            depth += 1;
            let queue = std::mem::take(&mut self.core.custom_queue);
            for (name, msg) in queue {
                if let Some(idx) = self.iapps.iter().position(|i| i.name() == name) {
                    let (iapps, core) = (&mut self.iapps, &mut self.core);
                    let mut api = ServerApi { core, iapp: idx };
                    iapps[idx].on_custom(&mut api, msg);
                }
            }
        }
    }

    fn dispatch_custom(&mut self, name: String, msg: Box<dyn Any + Send>) {
        self.core.custom_queue.push((name, msg));
        self.drain_custom();
    }

    /// Spawns the writer/reader tasks for a new connection and registers
    /// it under `agent_id`.  Returns the transport peer description.
    fn spawn_conn(&mut self, agent_id: AgentId, transport: flexric_transport::Transport) -> String {
        let peer = transport.peer();
        self.next_epoch += 1;
        let epoch = self.next_epoch;
        let (send_half, mut recv_half) = transport.split();
        let tx = crate::conn::spawn_writer(send_half, self.fault.clone());
        let evt = self.evt_tx.clone();
        let reader = tokio::spawn(async move {
            loop {
                match recv_half.recv().await {
                    Ok(Some(msg)) => {
                        if evt.send(LoopEvent::Inbound(agent_id, epoch, msg)).is_err() {
                            break;
                        }
                    }
                    Ok(None) | Err(_) => {
                        let _ = evt.send(LoopEvent::Closed(agent_id, epoch));
                        break;
                    }
                }
            }
        });
        self.core.conns.insert(agent_id, ConnState { tx, epoch, reader, decode_errors: 0 });
        peer
    }

    fn handle_new_agent(&mut self, req: E2SetupRequest, transport: flexric_transport::Transport) {
        // An agent presenting a known global E2 node id is rebound to its
        // previous AgentId: a reconnect, not a new node.
        let known = self.core.randb.agents().find(|i| i.node == req.global_node).map(|i| i.id);
        let (agent_id, reconnect) = match known {
            Some(id) => {
                if self.offline.remove(&id).is_none() {
                    // Reconnect raced ahead of the close of the previous
                    // connection: replace it.
                    if let Some(old) = self.core.conns.remove(&id) {
                        old.reader.abort();
                    }
                    let lost = self.core.endpoint.table.connection_lost(id);
                    self.deliver_terminals(lost, false);
                }
                (id, true)
            }
            None => {
                let id = self.next_agent;
                self.next_agent += 1;
                (id, false)
            }
        };
        let peer = self.spawn_conn(agent_id, transport);

        let info = AgentInfo {
            id: agent_id,
            node: req.global_node,
            functions: req.ran_functions.clone(),
            peer,
        };
        let accepted = req.ran_functions.iter().map(|f| f.id).collect();
        self.core.outbox.push((
            agent_id.into(),
            E2apPdu::E2SetupResponse(E2SetupResponse {
                transaction_id: req.transaction_id,
                global_ric: self.core.ric_id,
                accepted,
                rejected: vec![],
            }),
        ));
        let formed = self.core.randb.add_agent(info.clone());
        if reconnect {
            self.core.reconnects += 1;
            obs().reconnects.inc();
            let _ = self.core.events_tx.send(ServerEvent::AgentReconnected(info.clone()));
            self.for_all(|iapp, api| iapp.on_agent_reconnected(api, &info));
            self.replay_subscriptions(agent_id);
        } else {
            let _ = self.core.events_tx.send(ServerEvent::AgentConnected(info.clone()));
            self.for_all(|iapp, api| iapp.on_agent_connected(api, &info));
        }
        if let Some(entity) = formed {
            let _ = self.core.events_tx.send(ServerEvent::RanFormed(entity.clone()));
            self.for_all(|iapp, api| iapp.on_ran_formed(api, &entity));
        }
    }

    /// Re-issues every replayable subscription intent toward a rebound
    /// agent under its original request id.
    fn replay_subscriptions(&mut self, agent: AgentId) {
        let now = self.core.now_ms;
        let ServerCore { subs, endpoint, outbox, .. } = &mut self.core;
        for ((a, req_id), sub) in subs.iter_mut() {
            if *a != agent || !sub.replayable {
                continue;
            }
            sub.established = false;
            let pdu = E2apPdu::RicSubscriptionRequest(RicSubscriptionRequest {
                req_id: *req_id,
                ran_function: sub.ran_function,
                event_trigger: sub.event_trigger.clone(),
                actions: sub.actions.clone(),
            });
            if endpoint.table.begin(
                agent,
                ProcedureKey::Ric(*req_id),
                ProcedureClass::Subscription,
                Some(pdu.clone()),
                sub.iapp,
                now,
            ) {
                outbox.push((Targets::One(agent), pdu));
            }
        }
    }

    fn handle_closed(&mut self, agent: AgentId, epoch: u64) {
        match self.core.conns.get(&agent) {
            Some(conn) if conn.epoch == epoch => {}
            _ => return, // stale notification from a replaced connection
        }
        if let Some(conn) = self.core.conns.remove(&agent) {
            conn.reader.abort();
        }
        // Every procedure in flight toward the agent terminates now.
        let lost = self.core.endpoint.table.connection_lost(agent);
        self.deliver_terminals(lost, false);
        if self.core.randb.agent(agent).is_none() {
            return;
        }
        if self.grace_ms > 0 {
            // Keep the identity and the subscription intents for a rebind;
            // the grace deadline is enforced on ticks.
            for ((a, _), sub) in self.core.subs.iter_mut() {
                if *a == agent {
                    sub.established = false;
                }
            }
            self.offline.insert(agent, self.core.now_ms.saturating_add(self.grace_ms));
        } else {
            self.finalize_disconnect(agent);
        }
    }

    /// The agent is gone for good: drop its subscriptions and identity and
    /// tell the world.
    fn finalize_disconnect(&mut self, agent: AgentId) {
        self.offline.remove(&agent);
        self.core.subs.retain(|(a, _), _| *a != agent);
        if let Some(conn) = self.core.conns.remove(&agent) {
            conn.reader.abort();
        }
        if self.core.randb.remove_agent(agent).is_some() {
            let _ = self.core.events_tx.send(ServerEvent::AgentDisconnected(agent));
            self.for_all(|iapp, api| iapp.on_agent_disconnected(api, agent));
        }
    }

    /// Drives the procedure table: retransmits due requests, delivers
    /// terminal timeouts, and expires reconnect grace windows.
    fn tick_procedures(&mut self, now: u64) {
        let timed_out = {
            let ServerCore { endpoint, outbox, retries, .. } = &mut self.core;
            endpoint.table.poll(now, |agent, pdu| {
                *retries += 1;
                outbox.push((Targets::One(agent), pdu.clone()));
            })
        };
        self.deliver_terminals(timed_out, true);
        let expired: Vec<AgentId> =
            self.offline.iter().filter(|(_, dl)| now >= **dl).map(|(a, _)| *a).collect();
        for agent in expired {
            self.finalize_disconnect(agent);
        }
    }

    /// Delivers terminal outcomes for procedures that died without a
    /// response — timed out (`timed_out`) or severed with the connection.
    fn deliver_terminals(&mut self, procs: Vec<Procedure<AgentId, usize>>, timed_out: bool) {
        for proc in procs {
            if timed_out {
                self.core.timeouts += 1;
            }
            let agent = proc.peer;
            let ProcedureKey::Ric(req_id) = proc.key else { continue };
            let ran_function = proc.ran_function().unwrap_or(RanFunctionId::new(0));
            match proc.class {
                ProcedureClass::Subscription => {
                    let out = if timed_out {
                        // The agent is reachable but unresponsive for this
                        // request: the intent dies with it.
                        self.core.subs.remove(&(agent, req_id));
                        SubOutcome::TimedOut { req_id, ran_function, attempts: proc.attempts }
                    } else {
                        SubOutcome::ConnectionLost { req_id, ran_function }
                    };
                    self.for_one(proc.user, |iapp, api| {
                        iapp.on_subscription_outcome(api, agent, &out)
                    });
                }
                ProcedureClass::Control => {
                    let out = if timed_out {
                        CtrlOutcome::TimedOut { req_id, ran_function }
                    } else {
                        CtrlOutcome::ConnectionLost { req_id, ran_function }
                    };
                    self.for_one(proc.user, |iapp, api| iapp.on_control_outcome(api, agent, &out));
                }
                // Subscription deletes and global procedures have no
                // iApp-visible outcome; the counter above records them.
                _ => {}
            }
        }
    }

    /// An inbound PDU failed to decode: count it, report it to the peer,
    /// and degrade the connection if the peer keeps sending garbage.
    fn on_decode_error(&mut self, agent: AgentId) {
        self.core.decode_errors += 1;
        obs().decode_errors.inc();
        self.core.outbox.push((
            agent.into(),
            E2apPdu::ErrorIndication(ErrorIndication {
                req_id: None,
                ran_function: None,
                cause: Some(Cause::Protocol(ProtocolCause::TransferSyntaxError)),
            }),
        ));
        let Some(conn) = self.core.conns.get_mut(&agent) else { return };
        conn.decode_errors += 1;
        if conn.decode_errors >= MAX_CONSECUTIVE_DECODE_ERRORS {
            let epoch = conn.epoch;
            self.handle_closed(agent, epoch);
        }
    }

    fn handle_inbound(&mut self, agent: AgentId, raw: &[u8]) -> Result<(), CodecError> {
        // FB fast path: peek is O(1); only indications stay undecoded.
        if self.core.codec == E2apCodec::Flatb {
            let hdr = self.core.codec.peek(raw)?;
            if hdr.msg_type == MsgType::RicIndication {
                obs().indications_rx.inc();
                let req_id = hdr.req_id.unwrap_or_default();
                if let Some(entry) = self.core.subs.get(&(agent, req_id)) {
                    let idx = entry.iapp;
                    let ind = IndicationRef::Raw { raw, hdr };
                    let _t = obs().dispatch_ns.timer();
                    self.for_one(idx, |iapp, api| iapp.on_indication(api, agent, &ind));
                }
                return Ok(());
            }
        }
        let pdu = self.core.codec.decode(raw)?;
        match pdu {
            E2apPdu::RicIndication(ind) => {
                obs().indications_rx.inc();
                if let Some(entry) = self.core.subs.get(&(agent, ind.req_id)) {
                    let idx = entry.iapp;
                    let ind_ref = IndicationRef::Decoded(&ind);
                    let _t = obs().dispatch_ns.timer();
                    self.for_one(idx, |iapp, api| iapp.on_indication(api, agent, &ind_ref));
                }
            }
            E2apPdu::RicSubscriptionResponse(resp) => {
                let proc = self.core.endpoint.table.complete(agent, ProcedureKey::Ric(resp.req_id));
                if proc.is_some() {
                    crate::endpoint::note_completed(true);
                }
                if let Some(sub) = self.core.subs.get_mut(&(agent, resp.req_id)) {
                    // A retransmitted request may be acknowledged more than
                    // once; only the first response is delivered.  Claimed
                    // (forwarded) ids have no tracked procedure and always
                    // pass through.
                    let fresh = proc.is_some() || !sub.replayable;
                    sub.established = true;
                    let idx = sub.iapp;
                    if fresh {
                        let out = SubOutcome::Admitted(resp);
                        self.for_one(idx, |iapp, api| {
                            iapp.on_subscription_outcome(api, agent, &out)
                        });
                    }
                }
            }
            E2apPdu::RicSubscriptionFailure(fail) => {
                if self
                    .core
                    .endpoint
                    .table
                    .complete(agent, ProcedureKey::Ric(fail.req_id))
                    .is_some()
                {
                    crate::endpoint::note_completed(false);
                }
                if let Some(sub) = self.core.subs.remove(&(agent, fail.req_id)) {
                    let out = SubOutcome::Failed(fail);
                    self.for_one(sub.iapp, |iapp, api| {
                        iapp.on_subscription_outcome(api, agent, &out)
                    });
                }
            }
            E2apPdu::RicSubscriptionDeleteResponse(resp) => {
                if self
                    .core
                    .endpoint
                    .table
                    .complete(agent, ProcedureKey::Ric(resp.req_id))
                    .is_some()
                {
                    crate::endpoint::note_completed(true);
                }
                self.core.subs.remove(&(agent, resp.req_id));
            }
            E2apPdu::RicSubscriptionDeleteFailure(fail) => {
                if self
                    .core
                    .endpoint
                    .table
                    .complete(agent, ProcedureKey::Ric(fail.req_id))
                    .is_some()
                {
                    crate::endpoint::note_completed(false);
                }
                self.core.subs.remove(&(agent, fail.req_id));
            }
            E2apPdu::RicControlAcknowledge(ack) => {
                if let Some(proc) =
                    self.core.endpoint.table.complete(agent, ProcedureKey::Ric(ack.req_id))
                {
                    crate::endpoint::note_completed(true);
                    let out = CtrlOutcome::Ack(ack);
                    self.for_one(proc.user, |iapp, api| iapp.on_control_outcome(api, agent, &out));
                }
            }
            E2apPdu::RicControlFailure(fail) => {
                if let Some(proc) =
                    self.core.endpoint.table.complete(agent, ProcedureKey::Ric(fail.req_id))
                {
                    crate::endpoint::note_completed(false);
                    let out = CtrlOutcome::Failed(fail);
                    self.for_one(proc.user, |iapp, api| iapp.on_control_outcome(api, agent, &out));
                }
            }
            E2apPdu::RicServiceUpdate(upd) => {
                // Update the RANDB view of the agent's functions and ack.
                let accepted: Vec<RanFunctionId> = upd.added.iter().map(|f| f.id).collect();
                if let Some(info) = self.core.randb.agent(agent).cloned() {
                    let mut info = info;
                    for f in upd.added {
                        if !info.functions.iter().any(|x| x.id == f.id) {
                            info.functions.push(f);
                        }
                    }
                    for f in upd.modified {
                        if let Some(x) = info.functions.iter_mut().find(|x| x.id == f.id) {
                            *x = f;
                        }
                    }
                    info.functions.retain(|x| !upd.removed.contains(&x.id));
                    self.core.randb.add_agent(info);
                }
                self.core.outbox.push((
                    agent.into(),
                    E2apPdu::RicServiceUpdateAck(RicServiceUpdateAck {
                        transaction_id: upd.transaction_id,
                        accepted,
                        rejected: vec![],
                    }),
                ));
            }
            E2apPdu::ErrorIndication(_) | E2apPdu::ResetResponse(_) => {}
            E2apPdu::ResetRequest(req) => {
                // The agent wiped its subscription state: drop intents and
                // terminate everything in flight toward it.
                self.core.subs.retain(|(a, _), _| *a != agent);
                let lost = self.core.endpoint.table.connection_lost(agent);
                self.deliver_terminals(lost, false);
                self.core.outbox.push((
                    agent.into(),
                    E2apPdu::ResetResponse(ResetResponse { transaction_id: req.transaction_id }),
                ));
            }
            _ => {}
        }
        Ok(())
    }

    fn flush(&mut self) {
        // Encode each queued PDU exactly once into the reusable scratch
        // buffer and share the frozen frame across its targets.
        let m = obs();
        let core = &mut self.core;
        let (conns, tx_msgs, tx_bytes) = (&core.conns, &mut core.tx_msgs, &mut core.tx_bytes);
        scratch::flush_outbox(&mut core.scratch, core.codec, &mut core.outbox, |agent, frame| {
            let Some(conn) = conns.get(&agent) else { return };
            *tx_msgs += 1;
            *tx_bytes += frame.len() as u64;
            m.tx_msgs.inc();
            m.tx_bytes.add(frame.len() as u64);
            let _ = conn.tx.send(frame);
        });
        m.agents.set(core.randb.agent_count() as i64);
        m.subs_live.set(core.subs.len() as i64);
    }
}
