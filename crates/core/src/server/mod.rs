//! The FlexRIC server library (paper §4.2.2).
//!
//! "The FlexRIC server library's objective is to multiplex agent
//! connections and dispatch E2AP messages. […] The server library is
//! designed as an event-driven/callback-driven system, following the
//! ultra-lean design principle to impose minimal overhead.  Thus, it
//! invokes iApps only when there are new messages, unlike systems like
//! FlexRAN that use polling."
//!
//! The server library itself implements no service model and never
//! requests information by itself; iApps trigger all SM-related
//! communication and the server multiplexes messages between agents and
//! iApps.
//!
//! ## Sharded runtime
//!
//! The controller runs [`ServerConfig::shards`] independent event loops
//! (the `shard` module), each owning a disjoint set of agents: connection
//! state, the RAN database slice, subscription routing, and the procedure
//! endpoint of an agent all live on exactly one shard.  Agents are
//! assigned to shards at accept time by their RAN-entity key (least-loaded
//! shard wins; CU/DU agents of one base station land together so entity
//! merging stays shard-local), and the assignment is sticky across the
//! reconnect grace window, so a returning agent rebinds on its original
//! shard.  The indication hot path — header peek, subscription lookup,
//! iApp dispatch — never crosses a shard boundary and takes no cross-shard
//! lock.  Only three things span shards: accept-time assignment (the
//! `router` module), `send_pdu`/`send_pdu_multi` toward agents owned by
//! another shard (the encoded frame is handed over, never re-encoded), and
//! the aggregating [`ServerHandle`].
//!
//! ## Procedure robustness
//!
//! Every server-initiated E2AP procedure (subscription, subscription
//! delete, control) is tracked in the shared procedure-endpoint layer
//! ([`crate::endpoint`]): requests carry per-class deadlines, subscription
//! requests are retransmitted under [`RetryPolicy`], and terminal failures
//! surface to the owning iApp as [`SubOutcome::TimedOut`] /
//! [`CtrlOutcome::TimedOut`] or the `ConnectionLost` variants instead of
//! leaking state.  When an agent's connection drops, its identity and
//! subscription intents are kept for [`ServerConfig::reconnect_grace_ms`];
//! an agent presenting the same global E2 node id within the window is
//! rebound to its old [`AgentId`] and every replayable subscription is
//! re-issued — iApps keep their request ids and indications simply resume.
//!
//! ## The FB fast path
//!
//! When the connection codec is FlatBuffers-style, inbound indications are
//! dispatched to iApps as raw bytes plus a peeked header
//! ([`IndicationRef::Raw`]): the subscription lookup needs only the O(1)
//! header peek, and a monitoring iApp can slice the SM payload out of the
//! raw bytes without ever building the IR.  With the ASN.1-PER-style codec
//! the lookup already requires a full decode ([`IndicationRef::Decoded`]).
//! This asymmetry is the mechanism behind the ~4× controller CPU difference
//! of the paper's Fig. 8b.

mod randb;
mod router;
mod runtime;
mod shard;

pub use randb::{AgentId, AgentInfo, RanDb, RanEntity};
pub use runtime::{Server, ServerHandle};
pub use shard::ServerApi;

use std::any::Any;

use flexric_codec::{CodecError, E2apCodec};
use flexric_e2ap::*;
use flexric_transport::fault::FaultHandle;
use flexric_transport::TransportAddr;

use crate::endpoint::RetryPolicy;

/// Consecutive undecodable PDUs from one agent before the server degrades
/// the connection instead of continuing to parse garbage.
pub(crate) const MAX_CONSECUTIVE_DECODE_ERRORS: u32 = 8;

/// Configuration of a controller built on the server library.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Identity advertised in E2 setup responses.
    pub ric_id: GlobalRicId,
    /// Addresses to accept agents on.
    pub listen: Vec<TransportAddr>,
    /// E2AP encoding used on all connections.
    pub codec: E2apCodec,
    /// Internal tick period in milliseconds; `None` means the embedder
    /// drives time explicitly through [`ServerHandle::tick`].
    pub tick_ms: Option<u64>,
    /// Deadlines and retransmission budget for tracked procedures.
    pub retry: RetryPolicy,
    /// How long a disconnected agent's identity and subscription intents
    /// are kept for a reconnect-with-resubscribe; `0` disconnects
    /// immediately.
    pub reconnect_grace_ms: u64,
    /// Fault injector applied to every outbound frame (robustness tests).
    pub fault: Option<FaultHandle>,
    /// Number of shard event loops; `0` means one per available core.
    /// With more than one shard each shard needs its own iApp instances —
    /// use [`Server::spawn_sharded`].
    pub shards: usize,
}

impl ServerConfig {
    /// A controller listening on one address, 100 ms internal ticks, a
    /// one-second reconnect grace window, a single shard.
    pub fn new(ric_id: GlobalRicId, listen_addr: TransportAddr) -> Self {
        ServerConfig {
            ric_id,
            listen: vec![listen_addr],
            codec: E2apCodec::default(),
            tick_ms: Some(100),
            retry: RetryPolicy::default(),
            reconnect_grace_ms: 1_000,
            fault: None,
            shards: 1,
        }
    }

    /// The shard count this configuration resolves to: `shards`, or the
    /// machine's available parallelism when `shards == 0`.
    pub fn resolved_shards(&self) -> usize {
        match self.shards {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            n => n,
        }
    }
}

/// A received indication, decoded lazily depending on the codec.
#[derive(Debug)]
pub enum IndicationRef<'a> {
    /// FB path: the raw frame (a refcounted view of the transport read
    /// slab) + peeked header, no decode performed.
    Raw {
        /// The encoded E2AP PDU, as sliced off the receive buffer.
        raw: &'a bytes::Bytes,
        /// The peeked routing header.
        hdr: PduHeader,
    },
    /// PER path: the decode already happened during dispatch.
    Decoded(&'a RicIndication),
}

impl IndicationRef<'_> {
    /// The routing header.
    pub fn header(&self) -> PduHeader {
        match self {
            IndicationRef::Raw { hdr, .. } => *hdr,
            IndicationRef::Decoded(ind) => PduHeader {
                msg_type: MsgType::RicIndication,
                req_id: Some(ind.req_id),
                ran_function: Some(ind.ran_function),
            },
        }
    }

    /// The subscription's request id.
    pub fn req_id(&self) -> RicRequestId {
        self.header().req_id.unwrap_or_default()
    }

    /// The SM payload `(indication header, indication message)` as borrowed
    /// slices — on the FB path this is a zero-copy slice into the raw
    /// bytes; on the PER path it borrows the decoded PDU.
    pub fn sm_payload(&self) -> Result<(&[u8], &[u8]), CodecError> {
        match self {
            IndicationRef::Raw { raw, .. } => flexric_codec::e2ap_fb::indication_payload(raw),
            IndicationRef::Decoded(ind) => Ok((&ind.header, &ind.message)),
        }
    }

    /// Fully decodes into an owned indication.  On the FB path the
    /// byte-valued fields stay refcounted views of the receive buffer
    /// (borrowed decode), so "owned" costs no payload copy.
    pub fn to_owned_indication(&self) -> Result<RicIndication, CodecError> {
        match self {
            IndicationRef::Raw { raw, .. } => match E2apCodec::Flatb.decode_borrowed(raw)? {
                E2apPdu::RicIndication(ind) => Ok(ind),
                _ => Err(CodecError::Malformed { what: "not an indication" }),
            },
            IndicationRef::Decoded(ind) => Ok((*ind).clone()),
        }
    }

    /// The encoded frame, when the indication arrived undecoded (FB path):
    /// a refcount bump on the receive-buffer slice, suitable for
    /// forwarding verbatim to another E2 hop without re-encoding.
    pub fn frame(&self) -> Option<bytes::Bytes> {
        match self {
            IndicationRef::Raw { raw, .. } => Some((*raw).clone()),
            IndicationRef::Decoded(_) => None,
        }
    }
}

/// Outcome of a subscription request, delivered to the requesting iApp.
#[derive(Debug, Clone)]
pub enum SubOutcome {
    /// The agent admitted the subscription.
    Admitted(RicSubscriptionResponse),
    /// The agent rejected it.
    Failed(RicSubscriptionFailure),
    /// No response within the deadline, after all retransmissions.
    TimedOut {
        /// The request that expired.
        req_id: RicRequestId,
        /// The RAN function it addressed.
        ran_function: RanFunctionId,
        /// How many times the request was sent.
        attempts: u32,
    },
    /// The agent's connection dropped while the request was outstanding.
    /// If the agent reconnects within the grace window the subscription is
    /// re-issued automatically under the same request id.
    ConnectionLost {
        /// The request that was in flight.
        req_id: RicRequestId,
        /// The RAN function it addressed.
        ran_function: RanFunctionId,
    },
}

/// Outcome of a control request, delivered to the requesting iApp.
#[derive(Debug, Clone)]
pub enum CtrlOutcome {
    /// Acknowledged (possibly with an SM outcome payload).
    Ack(RicControlAcknowledge),
    /// Failed.
    Failed(RicControlFailure),
    /// No acknowledgement within the deadline.  Controls are never
    /// retransmitted (they are not idempotent), so this only bounds the
    /// wait.
    TimedOut {
        /// The request that expired.
        req_id: RicRequestId,
        /// The RAN function it addressed.
        ran_function: RanFunctionId,
    },
    /// The agent's connection dropped while the request was outstanding.
    ConnectionLost {
        /// The request that was in flight.
        req_id: RicRequestId,
        /// The RAN function it addressed.
        ran_function: RanFunctionId,
    },
}

/// A controller-internal application: the unit of controller
/// specialization (paper §4.2.1).
///
/// On a sharded controller one instance of each iApp runs per shard and
/// sees only the agents owned by that shard; instances share state through
/// whatever the iApp's constructor puts behind an `Arc` (see
/// `MonitorApp::replica` in `flexric-ctrl` for the pattern).
pub trait IApp: Send {
    /// Unique name, used for northbound routing.
    fn name(&self) -> &str;

    /// Called once when the server starts.
    fn on_start(&mut self, _api: &mut ServerApi) {}
    /// A new agent completed E2 setup.
    fn on_agent_connected(&mut self, _api: &mut ServerApi, _agent: &AgentInfo) {}
    /// An agent disconnected.
    fn on_agent_disconnected(&mut self, _api: &mut ServerApi, _agent: AgentId) {}
    /// An agent reconnected within the grace window and was rebound to its
    /// previous [`AgentId`]; its replayable subscriptions are being
    /// re-issued under their original request ids.
    fn on_agent_reconnected(&mut self, _api: &mut ServerApi, _agent: &AgentInfo) {}
    /// A RAN entity became complete (monolithic node, or CU+DU merged).
    fn on_ran_formed(&mut self, _api: &mut ServerApi, _ran: &RanEntity) {}
    /// Outcome of a subscription this iApp requested.
    fn on_subscription_outcome(
        &mut self,
        _api: &mut ServerApi,
        _agent: AgentId,
        _out: &SubOutcome,
    ) {
    }
    /// An indication for a subscription this iApp owns.
    fn on_indication(&mut self, _api: &mut ServerApi, _agent: AgentId, _ind: &IndicationRef) {}
    /// Outcome of a control request this iApp sent.
    fn on_control_outcome(&mut self, _api: &mut ServerApi, _agent: AgentId, _out: &CtrlOutcome) {}
    /// Periodic tick.
    fn on_tick(&mut self, _api: &mut ServerApi, _now_ms: u64) {}
    /// A message from the northbound (or another iApp).
    fn on_custom(&mut self, _api: &mut ServerApi, _msg: Box<dyn Any + Send>) {}
}

/// Events published to external observers (examples, tests, northbound).
/// All shards publish into one broadcast channel.
#[derive(Debug, Clone)]
pub enum ServerEvent {
    /// An agent completed E2 setup.
    AgentConnected(AgentInfo),
    /// An agent disconnected.
    AgentDisconnected(AgentId),
    /// An agent reconnected within the grace window and kept its id.
    AgentReconnected(AgentInfo),
    /// A RAN entity became complete.
    RanFormed(RanEntity),
}

/// Counters exposed by [`ServerHandle::stats`], summed over all shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Messages received from agents.
    pub rx_msgs: u64,
    /// Messages sent to agents.
    pub tx_msgs: u64,
    /// Connected agents (including agents in the reconnect grace window).
    pub agents: u64,
    /// Active subscriptions.
    pub subs: u64,
    /// Bytes sent to agents (encoded E2AP).
    pub tx_bytes: u64,
    /// Bytes received from agents.
    pub rx_bytes: u64,
    /// Procedure retransmissions sent.
    pub retries: u64,
    /// Procedures that expired terminally.
    pub timeouts: u64,
    /// Agents rebound to their old id after a reconnect.
    pub reconnects: u64,
    /// Inbound PDUs that failed to decode.
    pub decode_errors: u64,
}

impl std::ops::AddAssign for ServerStats {
    fn add_assign(&mut self, s: ServerStats) {
        self.rx_msgs += s.rx_msgs;
        self.tx_msgs += s.tx_msgs;
        self.agents += s.agents;
        self.subs += s.subs;
        self.tx_bytes += s.tx_bytes;
        self.rx_bytes += s.rx_bytes;
        self.retries += s.retries;
        self.timeouts += s.timeouts;
        self.reconnects += s.reconnects;
        self.decode_errors += s.decode_errors;
    }
}
