//! One shard of the controller: an event loop owning a disjoint set of
//! agents — their connections, RAN database slice, subscription routing,
//! and procedure endpoint.
//!
//! The indication hot path (header peek → subscription lookup → iApp
//! dispatch) runs entirely inside one shard, with no cross-shard lock.
//! The only cross-shard interaction on egress is the flush fallback: a
//! frame addressed to an agent another shard owns is handed over through
//! the [`super::router::ShardRouter`] as a frozen `Bytes`, arriving here
//! as [`LoopEvent::Forward`] — encoded exactly once by the sending shard.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use tokio::sync::{broadcast, mpsc};
use tokio::task::JoinHandle;

use flexric_codec::{CodecError, E2apCodec};
use flexric_e2ap::*;
use flexric_transport::fault::FaultHandle;
use flexric_transport::WireMsg;

use crate::endpoint::{E2apEndpoint, Procedure, ProcedureClass, ProcedureKey};
use crate::scratch::{self, EncodeScratch, Targets};

use super::router::ShardRouter;
use super::runtime::Cmd;
use super::{
    AgentId, AgentInfo, CtrlOutcome, IApp, IndicationRef, RanDb, ServerConfig, ServerEvent,
    ServerStats, SubOutcome, MAX_CONSECUTIVE_DECODE_ERRORS,
};

struct ConnState {
    tx: mpsc::UnboundedSender<WireMsg>,
    /// Distinguishes this connection from earlier ones under the same
    /// [`AgentId`] (reconnects), so stale reader events are ignored.
    epoch: u64,
    reader: JoinHandle<()>,
    /// Consecutive undecodable inbound PDUs; reset on any good PDU.
    decode_errors: u32,
}

/// One subscription the server knows about: the routing entry plus the
/// intent needed to replay it after a reconnect.
struct SubState {
    iapp: usize,
    ran_function: RanFunctionId,
    event_trigger: Bytes,
    actions: Vec<RicActionToBeSetup>,
    /// Whether the agent has acknowledged it (on the current connection).
    established: bool,
    /// Whether the server owns the request and may re-issue it on
    /// reconnect.  Claimed (forwarded) ids are routing-only.
    replayable: bool,
}

/// Shared shard state handed to iApps through [`ServerApi`].
struct ServerCore {
    codec: E2apCodec,
    ric_id: GlobalRicId,
    shard: usize,
    randb: RanDb,
    subs: HashMap<(AgentId, RicRequestId), SubState>,
    /// The shared procedure endpoint: one outstanding-transaction table
    /// for every server-initiated procedure, plus the id allocators.
    endpoint: E2apEndpoint<AgentId, usize>,
    conns: HashMap<AgentId, ConnState>,
    outbox: Vec<(Targets<AgentId>, E2apPdu)>,
    scratch: EncodeScratch,
    custom_queue: Vec<(String, Box<dyn Any + Send>)>,
    events_tx: broadcast::Sender<ServerEvent>,
    now_ms: u64,
    rx_msgs: u64,
    tx_msgs: u64,
    rx_bytes: u64,
    tx_bytes: u64,
    retries: u64,
    timeouts: u64,
    reconnects: u64,
    decode_errors: u64,
}

impl ServerCore {
    fn next_req_id(&mut self, iapp: usize) -> RicRequestId {
        let requestor = iapp as u16 + 1;
        let ServerCore { endpoint, subs, .. } = self;
        // An instance is busy while its procedure is in flight *or* its
        // subscription is live — established subscriptions outlive their
        // table entry.
        endpoint.alloc_request_id(requestor, |inst| {
            subs.keys().any(|(_, r)| r.requestor == requestor && r.instance == inst)
        })
    }
}

/// API surface iApps use to act on the network.
///
/// On a sharded controller each iApp instance sees the slice of the
/// network its shard owns: `randb()` lists only local agents, and
/// `subscribe`/`control` address local agents (connection callbacks only
/// ever hand out local ids).  `send_pdu`/`send_pdu_multi` may address any
/// agent — frames for remote agents are routed to their owning shard.
pub struct ServerApi<'a> {
    core: &'a mut ServerCore,
    iapp: usize,
}

impl ServerApi<'_> {
    /// Current time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.core.now_ms
    }

    /// The RAN database (this shard's slice on a sharded controller).
    pub fn randb(&self) -> &RanDb {
        &self.core.randb
    }

    /// The E2AP codec of this controller.
    pub fn codec(&self) -> E2apCodec {
        self.core.codec
    }

    /// The shard this iApp instance runs on (`0` on an unsharded server).
    pub fn shard(&self) -> usize {
        self.core.shard
    }

    /// Requests a subscription at `agent` for `ran_function`; indications
    /// will be delivered to this iApp.  Returns the assigned request id.
    ///
    /// The request is tracked in the procedure endpoint: it is
    /// retransmitted per [`crate::endpoint::RetryPolicy`] if the response
    /// is lost, and the iApp sees a terminal [`SubOutcome`] in every case.
    pub fn subscribe(
        &mut self,
        agent: AgentId,
        ran_function: RanFunctionId,
        event_trigger: Bytes,
        actions: Vec<RicActionToBeSetup>,
    ) -> RicRequestId {
        let req_id = self.core.next_req_id(self.iapp);
        let pdu = E2apPdu::RicSubscriptionRequest(RicSubscriptionRequest {
            req_id,
            ran_function,
            event_trigger: event_trigger.clone(),
            actions: actions.clone(),
        });
        self.core.subs.insert(
            (agent, req_id),
            SubState {
                iapp: self.iapp,
                ran_function,
                event_trigger,
                actions,
                established: false,
                replayable: true,
            },
        );
        self.core.endpoint.table.begin(
            agent,
            ProcedureKey::Ric(req_id),
            ProcedureClass::Subscription,
            Some(pdu.clone()),
            self.iapp,
            self.core.now_ms,
        );
        self.core.outbox.push((agent.into(), pdu));
        req_id
    }

    /// Requests a report subscription with a single report action.
    pub fn subscribe_report(
        &mut self,
        agent: AgentId,
        ran_function: RanFunctionId,
        event_trigger: Bytes,
    ) -> RicRequestId {
        self.subscribe(
            agent,
            ran_function,
            event_trigger,
            vec![RicActionToBeSetup {
                id: RicActionId(0),
                action_type: RicActionType::Report,
                definition: None,
                subsequent: None,
            }],
        )
    }

    /// Deletes a subscription.
    pub fn unsubscribe(&mut self, agent: AgentId, req_id: RicRequestId) {
        let ran_function = match self.core.subs.get(&(agent, req_id)) {
            Some(sub) if sub.iapp != self.iapp => return, // not this iApp's subscription
            Some(sub) => sub.ran_function,
            None => RanFunctionId::new(0),
        };
        self.core.subs.remove(&(agent, req_id));
        // A still-pending subscription procedure under the same key is
        // cancelled; the delete takes over the id.
        self.core.endpoint.table.complete(agent, ProcedureKey::Ric(req_id));
        let pdu = E2apPdu::RicSubscriptionDeleteRequest(RicSubscriptionDeleteRequest {
            req_id,
            ran_function,
        });
        self.core.endpoint.table.begin(
            agent,
            ProcedureKey::Ric(req_id),
            ProcedureClass::SubscriptionDelete,
            Some(pdu.clone()),
            self.iapp,
            self.core.now_ms,
        );
        self.core.outbox.push((agent.into(), pdu));
    }

    /// Re-issues an existing subscription with a new event trigger — the
    /// server-driven *retune* (report-period backoff / tightening, or
    /// forcing a delta-stream keyframe).  The request keeps its id, so
    /// the agent updates the live subscription in place instead of
    /// creating a new one, and the re-issued request gets the same
    /// deadline/retransmit treatment as the original.  Returns `false`
    /// if the subscription is unknown or owned by another iApp.
    pub fn retune_subscription(
        &mut self,
        agent: AgentId,
        req_id: RicRequestId,
        event_trigger: Bytes,
    ) -> bool {
        let (ran_function, actions) = match self.core.subs.get_mut(&(agent, req_id)) {
            Some(sub) if sub.iapp != self.iapp => return false,
            Some(sub) => {
                sub.event_trigger = event_trigger.clone();
                // Not established again until the retune is acked; a
                // reconnect replay meanwhile re-issues the new trigger.
                sub.established = false;
                (sub.ran_function, sub.actions.clone())
            }
            None => return false,
        };
        let pdu = E2apPdu::RicSubscriptionRequest(RicSubscriptionRequest {
            req_id,
            ran_function,
            event_trigger,
            actions,
        });
        // A still-pending procedure under the same key (the original
        // subscribe, or an earlier retune) is superseded.
        self.core.endpoint.table.complete(agent, ProcedureKey::Ric(req_id));
        self.core.endpoint.table.begin(
            agent,
            ProcedureKey::Ric(req_id),
            ProcedureClass::Subscription,
            Some(pdu.clone()),
            self.iapp,
            self.core.now_ms,
        );
        self.core.outbox.push((agent.into(), pdu));
        true
    }

    /// Sends a control request; the outcome is delivered to this iApp.
    ///
    /// With `ack = Some(Ack)` the request carries a deadline and the iApp
    /// is guaranteed a terminal [`CtrlOutcome`]; otherwise the entry only
    /// routes whatever response the agent chooses to send.  Controls are
    /// never retransmitted.
    pub fn control(
        &mut self,
        agent: AgentId,
        ran_function: RanFunctionId,
        header: Bytes,
        message: Bytes,
        ack: Option<ControlAckRequest>,
    ) -> RicRequestId {
        let req_id = self.core.next_req_id(self.iapp);
        let pdu = E2apPdu::RicControlRequest(RicControlRequest {
            req_id,
            ran_function,
            call_process_id: None,
            header,
            message,
            ack_request: ack,
        });
        if ack == Some(ControlAckRequest::Ack) {
            self.core.endpoint.table.begin(
                agent,
                ProcedureKey::Ric(req_id),
                ProcedureClass::Control,
                Some(pdu.clone()),
                self.iapp,
                self.core.now_ms,
            );
        } else {
            // A response is not guaranteed (no-ack / nack-only): track for
            // routing but never expire.
            self.core.endpoint.table.begin_untimed(
                agent,
                ProcedureKey::Ric(req_id),
                ProcedureClass::Control,
                self.iapp,
            );
        }
        self.core.outbox.push((agent.into(), pdu));
        req_id
    }

    /// Sends an arbitrary PDU to an agent (relay/advanced use).  The agent
    /// may be owned by any shard.
    pub fn send_pdu(&mut self, agent: AgentId, pdu: E2apPdu) {
        self.core.outbox.push((Targets::One(agent), pdu));
    }

    /// Sends one PDU to several agents.  The PDU is encoded once at flush
    /// and the frozen frame is shared across all targets, including
    /// targets owned by other shards.
    pub fn send_pdu_multi(&mut self, agents: Vec<AgentId>, pdu: E2apPdu) {
        if agents.is_empty() {
            return;
        }
        self.core.outbox.push((Targets::from_vec(agents), pdu));
    }

    /// Registers an externally chosen request id so indications and
    /// subscription outcomes for it are routed to this iApp (used by
    /// relaying controllers that forward subscriptions verbatim).  The
    /// forwarder owns the procedure lifecycle: the entry never times out
    /// and is not replayed on reconnect.
    pub fn claim_request_id(&mut self, agent: AgentId, req_id: RicRequestId) {
        self.core.subs.insert(
            (agent, req_id),
            SubState {
                iapp: self.iapp,
                ran_function: RanFunctionId::new(0),
                event_trigger: Bytes::new(),
                actions: Vec::new(),
                established: false,
                replayable: false,
            },
        );
    }

    /// Registers an externally chosen request id so control outcomes for
    /// it are routed to this iApp (relaying controllers forwarding control
    /// requests verbatim).  Routing-only: the entry never times out.
    pub fn claim_control_id(&mut self, agent: AgentId, req_id: RicRequestId) {
        self.core.endpoint.table.begin_untimed(
            agent,
            ProcedureKey::Ric(req_id),
            ProcedureClass::Control,
            self.iapp,
        );
    }

    /// Sends a custom message to another iApp on the same shard
    /// (dispatched after the current callback returns).
    pub fn send_custom(&mut self, iapp_name: &str, msg: Box<dyn Any + Send>) {
        self.core.custom_queue.push((iapp_name.to_owned(), msg));
    }

    /// Publishes a server event to external observers.
    pub fn publish(&mut self, event: ServerEvent) {
        let _ = self.core.events_tx.send(event);
    }
}

// ---------------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------------

/// Server-layer registry metrics, mirroring the per-instance
/// [`ServerStats`] into the process-wide registry (summed across servers
/// and shards in one process; gauges are maintained as per-shard deltas so
/// the sum stays correct).  Registered as a block on first touch so the
/// layer is always listed in `/metrics`.
struct ServerObs {
    rx_msgs: flexric_obs::Counter,
    rx_bytes: flexric_obs::Counter,
    tx_msgs: flexric_obs::Counter,
    tx_bytes: flexric_obs::Counter,
    indications_rx: flexric_obs::Counter,
    decode_errors: flexric_obs::Counter,
    reconnects: flexric_obs::Counter,
    agents: flexric_obs::Gauge,
    subs_live: flexric_obs::Gauge,
    dispatch_ns: flexric_obs::Histogram,
}

fn obs() -> &'static ServerObs {
    static M: std::sync::OnceLock<ServerObs> = std::sync::OnceLock::new();
    M.get_or_init(|| ServerObs {
        rx_msgs: flexric_obs::counter("flexric_server_rx_msgs_total", "messages from agents"),
        rx_bytes: flexric_obs::counter("flexric_server_rx_bytes_total", "encoded bytes received"),
        tx_msgs: flexric_obs::counter("flexric_server_tx_msgs_total", "messages to agents"),
        tx_bytes: flexric_obs::counter("flexric_server_tx_bytes_total", "encoded bytes sent"),
        indications_rx: flexric_obs::counter(
            "flexric_server_indications_rx_total",
            "RIC indications received from agents",
        ),
        decode_errors: flexric_obs::counter(
            "flexric_server_decode_errors_total",
            "inbound PDUs that failed to decode",
        ),
        reconnects: flexric_obs::counter(
            "flexric_server_reconnects_total",
            "agents rebound to their old id after a reconnect",
        ),
        agents: flexric_obs::gauge("flexric_server_agents", "connected agents"),
        subs_live: flexric_obs::gauge("flexric_server_subscriptions_live", "active subscriptions"),
        dispatch_ns: flexric_obs::histogram(
            "flexric_server_dispatch_ns",
            "indication dispatch latency (subscription lookup + iApp handler)",
        ),
    })
}

/// Per-shard load series, labeled `shard="<idx>"` — the view that shows
/// whether entity assignment actually spreads work across the shards.
struct ShardObs {
    rx: flexric_obs::Counter,
    agents: flexric_obs::Gauge,
}

impl ShardObs {
    fn new(idx: usize) -> Self {
        let s = idx.to_string();
        ShardObs {
            rx: flexric_obs::counter_with(
                "flexric_server_shard_rx_total",
                &[("shard", s.as_str())],
                "messages received by this shard",
            ),
            agents: flexric_obs::gauge_with(
                "flexric_server_shard_agents",
                &[("shard", s.as_str())],
                "agents owned by this shard",
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

pub(crate) enum LoopEvent {
    NewAgent(E2SetupRequest, flexric_transport::Transport),
    Inbound(AgentId, u64, WireMsg),
    Closed(AgentId, u64),
    /// A message encoded by another shard for an agent this shard owns
    /// (the stream id travels with the frame).
    Forward(AgentId, WireMsg),
    Cmd(Cmd),
}

/// One shard's event loop state.
pub(crate) struct ShardRuntime {
    core: ServerCore,
    iapps: Vec<Box<dyn IApp>>,
    idx: usize,
    router: Arc<ShardRouter>,
    next_epoch: u64,
    evt_tx: mpsc::UnboundedSender<LoopEvent>,
    /// Disconnected agents kept for a rebind: grace deadline per agent.
    offline: HashMap<AgentId, u64>,
    grace_ms: u64,
    fault: Option<FaultHandle>,
    /// Listener accept tasks; owned by shard 0, empty elsewhere.
    listener_tasks: Vec<JoinHandle<()>>,
    shard_obs: ShardObs,
    /// Last values this shard contributed to the global gauges, so the
    /// process-wide gauge can be maintained as a sum of per-shard deltas.
    gauge_agents: i64,
    gauge_subs: i64,
}

impl ShardRuntime {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        idx: usize,
        cfg: &ServerConfig,
        iapps: Vec<Box<dyn IApp>>,
        router: Arc<ShardRouter>,
        events_tx: broadcast::Sender<ServerEvent>,
        evt_tx: mpsc::UnboundedSender<LoopEvent>,
        listener_tasks: Vec<JoinHandle<()>>,
    ) -> Self {
        let core = ServerCore {
            codec: cfg.codec,
            ric_id: cfg.ric_id,
            shard: idx,
            randb: RanDb::new(),
            subs: HashMap::new(),
            endpoint: E2apEndpoint::new(cfg.retry),
            conns: HashMap::new(),
            outbox: Vec::new(),
            scratch: EncodeScratch::with_capacity(4096),
            custom_queue: Vec::new(),
            events_tx,
            now_ms: 0,
            rx_msgs: 0,
            tx_msgs: 0,
            rx_bytes: 0,
            tx_bytes: 0,
            retries: 0,
            timeouts: 0,
            reconnects: 0,
            decode_errors: 0,
        };
        ShardRuntime {
            core,
            iapps,
            idx,
            router,
            next_epoch: 0,
            evt_tx,
            offline: HashMap::new(),
            grace_ms: cfg.reconnect_grace_ms,
            fault: cfg.fault.clone(),
            listener_tasks,
            shard_obs: ShardObs::new(idx),
            gauge_agents: 0,
            gauge_subs: 0,
        }
    }

    pub(crate) async fn run(
        mut self,
        tick_ms: Option<u64>,
        mut evt_rx: mpsc::UnboundedReceiver<LoopEvent>,
        mut cmd_rx: mpsc::UnboundedReceiver<Cmd>,
    ) {
        self.for_all(|iapp, api| iapp.on_start(api));
        self.flush();
        let mut ticker = tick_ms.map(|ms| {
            let mut iv = tokio::time::interval(std::time::Duration::from_millis(ms.max(1)));
            iv.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Skip);
            iv
        });
        loop {
            let event = if let Some(iv) = ticker.as_mut() {
                tokio::select! {
                    biased;
                    Some(cmd) = cmd_rx.recv() => LoopEvent::Cmd(cmd),
                    Some(ev) = evt_rx.recv() => ev,
                    _ = iv.tick() => LoopEvent::Cmd(Cmd::Tick(crate::mono_ms())),
                    else => break,
                }
            } else {
                tokio::select! {
                    biased;
                    Some(cmd) = cmd_rx.recv() => LoopEvent::Cmd(cmd),
                    Some(ev) = evt_rx.recv() => ev,
                    else => break,
                }
            };
            match event {
                LoopEvent::NewAgent(req, transport) => self.handle_new_agent(req, transport),
                LoopEvent::Inbound(agent, epoch, msg) => {
                    if !self.core.conns.get(&agent).is_some_and(|c| c.epoch == epoch) {
                        continue; // stale reader of a replaced connection
                    }
                    self.core.rx_msgs += 1;
                    self.core.rx_bytes += msg.payload.len() as u64;
                    obs().rx_msgs.inc();
                    obs().rx_bytes.add(msg.payload.len() as u64);
                    self.shard_obs.rx.inc();
                    match self.handle_inbound(agent, &msg.payload) {
                        Ok(()) => {
                            if let Some(c) = self.core.conns.get_mut(&agent) {
                                c.decode_errors = 0;
                            }
                        }
                        Err(_) => self.on_decode_error(agent),
                    }
                }
                LoopEvent::Closed(agent, epoch) => self.handle_closed(agent, epoch),
                LoopEvent::Forward(agent, frame) => self.deliver_forwarded(agent, frame),
                LoopEvent::Cmd(Cmd::Tick(now)) => {
                    self.core.now_ms = now;
                    self.tick_procedures(now);
                    self.for_all(|iapp, api| iapp.on_tick(api, now));
                }
                LoopEvent::Cmd(Cmd::ToIApp(name, msg)) => self.dispatch_custom(name, msg),
                LoopEvent::Cmd(Cmd::Agents(reply)) => {
                    let _ = reply.send(self.core.randb.agents().cloned().collect());
                }
                LoopEvent::Cmd(Cmd::Stats(reply)) => {
                    let _ = reply.send(ServerStats {
                        rx_msgs: self.core.rx_msgs,
                        tx_msgs: self.core.tx_msgs,
                        agents: self.core.randb.agent_count() as u64,
                        subs: self.core.subs.len() as u64,
                        tx_bytes: self.core.tx_bytes,
                        rx_bytes: self.core.rx_bytes,
                        retries: self.core.retries,
                        timeouts: self.core.timeouts,
                        reconnects: self.core.reconnects,
                        decode_errors: self.core.decode_errors,
                    });
                }
                LoopEvent::Cmd(Cmd::Stop) => break,
            }
            self.flush();
        }
        // Free the listen addresses and reader tasks so a restarted
        // controller can bind the same endpoints, and retract this shard's
        // contribution to the summed gauges.
        for t in &self.listener_tasks {
            t.abort();
        }
        for (_, conn) in self.core.conns.drain() {
            conn.reader.abort();
        }
        obs().agents.add(-self.gauge_agents);
        obs().subs_live.add(-self.gauge_subs);
        self.shard_obs.agents.set(0);
    }

    /// Runs a callback over all iApps with a fresh API view each.
    fn for_all(&mut self, mut f: impl FnMut(&mut Box<dyn IApp>, &mut ServerApi)) {
        for idx in 0..self.iapps.len() {
            // Split borrow: iApps vector vs core.
            let (iapps, core) = (&mut self.iapps, &mut self.core);
            let mut api = ServerApi { core, iapp: idx };
            f(&mut iapps[idx], &mut api);
        }
        self.drain_custom();
    }

    /// Runs a callback on one iApp.
    fn for_one(&mut self, idx: usize, f: impl FnOnce(&mut Box<dyn IApp>, &mut ServerApi)) {
        if idx >= self.iapps.len() {
            return;
        }
        let (iapps, core) = (&mut self.iapps, &mut self.core);
        let mut api = ServerApi { core, iapp: idx };
        f(&mut iapps[idx], &mut api);
        self.drain_custom();
    }

    fn drain_custom(&mut self) {
        // Custom messages queued by iApps during callbacks, delivered
        // breadth-first; bounded to avoid infinite ping-pong.
        let mut depth = 0;
        while !self.core.custom_queue.is_empty() && depth < 64 {
            depth += 1;
            let queue = std::mem::take(&mut self.core.custom_queue);
            for (name, msg) in queue {
                if let Some(idx) = self.iapps.iter().position(|i| i.name() == name) {
                    let (iapps, core) = (&mut self.iapps, &mut self.core);
                    let mut api = ServerApi { core, iapp: idx };
                    iapps[idx].on_custom(&mut api, msg);
                }
            }
        }
    }

    fn dispatch_custom(&mut self, name: String, msg: Box<dyn Any + Send>) {
        self.core.custom_queue.push((name, msg));
        self.drain_custom();
    }

    /// Spawns the writer/reader tasks for a new connection and registers
    /// it under `agent_id`.  Returns the transport peer description.
    fn spawn_conn(&mut self, agent_id: AgentId, transport: flexric_transport::Transport) -> String {
        let peer = transport.peer();
        self.next_epoch += 1;
        let epoch = self.next_epoch;
        let (send_half, mut recv_half) = transport.split();
        let tx = crate::conn::spawn_writer(send_half, self.fault.clone());
        let evt = self.evt_tx.clone();
        let reader = tokio::spawn(async move {
            loop {
                match recv_half.recv().await {
                    Ok(Some(msg)) => {
                        if evt.send(LoopEvent::Inbound(agent_id, epoch, msg)).is_err() {
                            break;
                        }
                    }
                    Ok(None) | Err(_) => {
                        let _ = evt.send(LoopEvent::Closed(agent_id, epoch));
                        break;
                    }
                }
            }
        });
        self.core.conns.insert(agent_id, ConnState { tx, epoch, reader, decode_errors: 0 });
        peer
    }

    fn handle_new_agent(&mut self, req: E2SetupRequest, transport: flexric_transport::Transport) {
        // Capability negotiation against the SM registry before any
        // identity is allocated: each advertised function resolves by OID
        // + semver-compatible version (major must match; the registry
        // serves the highest compatible minor).  Unknown OIDs and
        // major-incompatible versions carry an explicit E2AP cause back
        // to the agent instead of being silently dropped.
        let registry = flexric_sm::registry::global();
        let mut accepted_fns = Vec::new();
        let mut accepted = Vec::new();
        let mut rejected = Vec::new();
        for f in &req.ran_functions {
            let offered = flexric_sm::SmVersion::new(f.version.major, f.version.minor);
            match registry.negotiate(&f.oid, offered) {
                Ok(_) => {
                    accepted.push(f.id);
                    accepted_fns.push(f.clone());
                }
                Err(e) => {
                    let cause = match e {
                        flexric_sm::registry::NegotiationError::UnknownOid { .. } => {
                            Cause::RicService(RicServiceCause::FunctionNotSupported)
                        }
                        flexric_sm::registry::NegotiationError::MajorMismatch { .. } => {
                            Cause::RicService(RicServiceCause::FunctionVersionMismatch)
                        }
                    };
                    rejected.push((f.id, cause));
                }
            }
        }
        if accepted.is_empty() && !req.ran_functions.is_empty() {
            // Nothing this RIC can serve: fail the setup on the raw
            // transport and never register the node.
            let cause = rejected[0].1;
            let pdu = E2apPdu::E2SetupFailure(E2SetupFailure {
                transaction_id: req.transaction_id,
                cause,
                time_to_wait_ms: None,
            });
            let buf = Bytes::from(self.core.codec.encode(&pdu));
            tokio::spawn(async move {
                let mut transport = transport;
                let _ = transport.send(WireMsg::e2ap(buf)).await;
            });
            return;
        }
        // An agent presenting a known global E2 node id is rebound to its
        // previous AgentId: a reconnect, not a new node.  Entity-key shard
        // affinity guarantees the previous identity lives on this shard.
        let known = self.core.randb.agents().find(|i| i.node == req.global_node).map(|i| i.id);
        let (agent_id, reconnect) = match known {
            Some(id) => {
                if self.offline.remove(&id).is_none() {
                    // Reconnect raced ahead of the close of the previous
                    // connection: replace it.
                    if let Some(old) = self.core.conns.remove(&id) {
                        old.reader.abort();
                    }
                    let lost = self.core.endpoint.table.connection_lost(id);
                    self.deliver_terminals(lost, false);
                }
                (id, true)
            }
            None => (self.router.alloc_agent(), false),
        };
        self.router.bind(agent_id, self.idx);
        let peer = self.spawn_conn(agent_id, transport);

        // Only negotiated functions enter the RAN database: iApps never
        // see (and cannot subscribe to) a function the RIC rejected.
        let info = AgentInfo { id: agent_id, node: req.global_node, functions: accepted_fns, peer };
        self.core.outbox.push((
            agent_id.into(),
            E2apPdu::E2SetupResponse(E2SetupResponse {
                transaction_id: req.transaction_id,
                global_ric: self.core.ric_id,
                accepted,
                rejected,
            }),
        ));
        let formed = self.core.randb.add_agent(info.clone());
        if reconnect {
            self.core.reconnects += 1;
            obs().reconnects.inc();
            let _ = self.core.events_tx.send(ServerEvent::AgentReconnected(info.clone()));
            self.for_all(|iapp, api| iapp.on_agent_reconnected(api, &info));
            self.replay_subscriptions(agent_id);
        } else {
            let _ = self.core.events_tx.send(ServerEvent::AgentConnected(info.clone()));
            self.for_all(|iapp, api| iapp.on_agent_connected(api, &info));
        }
        if let Some(entity) = formed {
            let _ = self.core.events_tx.send(ServerEvent::RanFormed(entity.clone()));
            self.for_all(|iapp, api| iapp.on_ran_formed(api, &entity));
        }
    }

    /// Re-issues every replayable subscription intent toward a rebound
    /// agent under its original request id.
    fn replay_subscriptions(&mut self, agent: AgentId) {
        let now = self.core.now_ms;
        let ServerCore { subs, endpoint, outbox, .. } = &mut self.core;
        for ((a, req_id), sub) in subs.iter_mut() {
            if *a != agent || !sub.replayable {
                continue;
            }
            sub.established = false;
            let pdu = E2apPdu::RicSubscriptionRequest(RicSubscriptionRequest {
                req_id: *req_id,
                ran_function: sub.ran_function,
                event_trigger: sub.event_trigger.clone(),
                actions: sub.actions.clone(),
            });
            if endpoint.table.begin(
                agent,
                ProcedureKey::Ric(*req_id),
                ProcedureClass::Subscription,
                Some(pdu.clone()),
                sub.iapp,
                now,
            ) {
                outbox.push((Targets::One(agent), pdu));
            }
        }
    }

    fn handle_closed(&mut self, agent: AgentId, epoch: u64) {
        match self.core.conns.get(&agent) {
            Some(conn) if conn.epoch == epoch => {}
            _ => return, // stale notification from a replaced connection
        }
        if let Some(conn) = self.core.conns.remove(&agent) {
            conn.reader.abort();
        }
        // Every procedure in flight toward the agent terminates now.
        let lost = self.core.endpoint.table.connection_lost(agent);
        self.deliver_terminals(lost, false);
        if self.core.randb.agent(agent).is_none() {
            return;
        }
        if self.grace_ms > 0 {
            // Keep the identity and the subscription intents for a rebind;
            // the grace deadline is enforced on ticks.  The router keeps
            // the agent bound here, so the entity's shard pin holds.
            for ((a, _), sub) in self.core.subs.iter_mut() {
                if *a == agent {
                    sub.established = false;
                }
            }
            self.offline.insert(agent, self.core.now_ms.saturating_add(self.grace_ms));
        } else {
            self.finalize_disconnect(agent);
        }
    }

    /// The agent is gone for good: drop its subscriptions and identity and
    /// tell the world.
    fn finalize_disconnect(&mut self, agent: AgentId) {
        self.offline.remove(&agent);
        self.core.subs.retain(|(a, _), _| *a != agent);
        if let Some(conn) = self.core.conns.remove(&agent) {
            conn.reader.abort();
        }
        if let Some(info) = self.core.randb.remove_agent(agent) {
            // Release the entity→shard pin once no agent of the entity
            // remains (all agents of an entity live on this shard).
            let key = info.node.ran_entity_key();
            let entity_gone = !self.core.randb.agents().any(|a| a.node.ran_entity_key() == key);
            self.router.unbind(agent, entity_gone.then_some(&key));
            let _ = self.core.events_tx.send(ServerEvent::AgentDisconnected(agent));
            self.for_all(|iapp, api| iapp.on_agent_disconnected(api, agent));
        } else {
            self.router.unbind(agent, None);
        }
    }

    /// Drives the procedure table: retransmits due requests, delivers
    /// terminal timeouts, and expires reconnect grace windows.
    fn tick_procedures(&mut self, now: u64) {
        let timed_out = {
            let ServerCore { endpoint, outbox, retries, .. } = &mut self.core;
            endpoint.table.poll(now, |agent, pdu| {
                *retries += 1;
                outbox.push((Targets::One(agent), pdu.clone()));
            })
        };
        self.deliver_terminals(timed_out, true);
        let expired: Vec<AgentId> =
            self.offline.iter().filter(|(_, dl)| now >= **dl).map(|(a, _)| *a).collect();
        for agent in expired {
            self.finalize_disconnect(agent);
        }
    }

    /// Delivers terminal outcomes for procedures that died without a
    /// response — timed out (`timed_out`) or severed with the connection.
    fn deliver_terminals(&mut self, procs: Vec<Procedure<AgentId, usize>>, timed_out: bool) {
        for proc in procs {
            if timed_out {
                self.core.timeouts += 1;
            }
            let agent = proc.peer;
            let ProcedureKey::Ric(req_id) = proc.key else { continue };
            let ran_function = proc.ran_function().unwrap_or(RanFunctionId::new(0));
            match proc.class {
                ProcedureClass::Subscription => {
                    let out = if timed_out {
                        // The agent is reachable but unresponsive for this
                        // request: the intent dies with it.
                        self.core.subs.remove(&(agent, req_id));
                        SubOutcome::TimedOut { req_id, ran_function, attempts: proc.attempts }
                    } else {
                        SubOutcome::ConnectionLost { req_id, ran_function }
                    };
                    self.for_one(proc.user, |iapp, api| {
                        iapp.on_subscription_outcome(api, agent, &out)
                    });
                }
                ProcedureClass::Control => {
                    let out = if timed_out {
                        CtrlOutcome::TimedOut { req_id, ran_function }
                    } else {
                        CtrlOutcome::ConnectionLost { req_id, ran_function }
                    };
                    self.for_one(proc.user, |iapp, api| iapp.on_control_outcome(api, agent, &out));
                }
                // Subscription deletes and global procedures have no
                // iApp-visible outcome; the counter above records them.
                _ => {}
            }
        }
    }

    /// An inbound PDU failed to decode: count it, report it to the peer,
    /// and degrade the connection if the peer keeps sending garbage.
    fn on_decode_error(&mut self, agent: AgentId) {
        self.core.decode_errors += 1;
        obs().decode_errors.inc();
        self.core.outbox.push((
            agent.into(),
            E2apPdu::ErrorIndication(ErrorIndication {
                req_id: None,
                ran_function: None,
                cause: Some(Cause::Protocol(ProtocolCause::TransferSyntaxError)),
            }),
        ));
        let Some(conn) = self.core.conns.get_mut(&agent) else { return };
        conn.decode_errors += 1;
        if conn.decode_errors >= MAX_CONSECUTIVE_DECODE_ERRORS {
            let epoch = conn.epoch;
            self.handle_closed(agent, epoch);
        }
    }

    fn handle_inbound(&mut self, agent: AgentId, raw: &Bytes) -> Result<(), CodecError> {
        // FB fast path: peek is O(1); only indications stay undecoded.
        // `raw` is the frame sliced off the transport read slab, so the
        // dispatch below hands apps refcounted views of the receive buffer
        // — the paper's "no explicit decode" hot path with zero copies.
        // Subscription lookup and dispatch are shard-local by construction:
        // the subscription was created on this shard when the agent (owned
        // here) connected.
        if self.core.codec == E2apCodec::Flatb {
            let hdr = self.core.codec.peek(raw)?;
            if hdr.msg_type == MsgType::RicIndication {
                obs().indications_rx.inc();
                let req_id = hdr.req_id.unwrap_or_default();
                if let Some(entry) = self.core.subs.get(&(agent, req_id)) {
                    let idx = entry.iapp;
                    let ind = IndicationRef::Raw { raw, hdr };
                    let _t = obs().dispatch_ns.timer();
                    self.for_one(idx, |iapp, api| iapp.on_indication(api, agent, &ind));
                }
                return Ok(());
            }
        }
        // Borrowed decode: byte-valued fields stay views of the read slab.
        let pdu = self.core.codec.decode_borrowed(raw)?;
        match pdu {
            E2apPdu::RicIndication(ind) => {
                obs().indications_rx.inc();
                if let Some(entry) = self.core.subs.get(&(agent, ind.req_id)) {
                    let idx = entry.iapp;
                    let ind_ref = IndicationRef::Decoded(&ind);
                    let _t = obs().dispatch_ns.timer();
                    self.for_one(idx, |iapp, api| iapp.on_indication(api, agent, &ind_ref));
                }
            }
            E2apPdu::RicSubscriptionResponse(resp) => {
                let proc = self.core.endpoint.table.complete(agent, ProcedureKey::Ric(resp.req_id));
                if proc.is_some() {
                    crate::endpoint::note_completed(true);
                }
                if let Some(sub) = self.core.subs.get_mut(&(agent, resp.req_id)) {
                    // A retransmitted request may be acknowledged more than
                    // once; only the first response is delivered.  Claimed
                    // (forwarded) ids have no tracked procedure and always
                    // pass through.
                    let fresh = proc.is_some() || !sub.replayable;
                    sub.established = true;
                    let idx = sub.iapp;
                    if fresh {
                        let out = SubOutcome::Admitted(resp);
                        self.for_one(idx, |iapp, api| {
                            iapp.on_subscription_outcome(api, agent, &out)
                        });
                    }
                }
            }
            E2apPdu::RicSubscriptionFailure(fail) => {
                if self
                    .core
                    .endpoint
                    .table
                    .complete(agent, ProcedureKey::Ric(fail.req_id))
                    .is_some()
                {
                    crate::endpoint::note_completed(false);
                }
                if let Some(sub) = self.core.subs.remove(&(agent, fail.req_id)) {
                    let out = SubOutcome::Failed(fail);
                    self.for_one(sub.iapp, |iapp, api| {
                        iapp.on_subscription_outcome(api, agent, &out)
                    });
                }
            }
            E2apPdu::RicSubscriptionDeleteResponse(resp) => {
                if self
                    .core
                    .endpoint
                    .table
                    .complete(agent, ProcedureKey::Ric(resp.req_id))
                    .is_some()
                {
                    crate::endpoint::note_completed(true);
                }
                self.core.subs.remove(&(agent, resp.req_id));
            }
            E2apPdu::RicSubscriptionDeleteFailure(fail) => {
                if self
                    .core
                    .endpoint
                    .table
                    .complete(agent, ProcedureKey::Ric(fail.req_id))
                    .is_some()
                {
                    crate::endpoint::note_completed(false);
                }
                self.core.subs.remove(&(agent, fail.req_id));
            }
            E2apPdu::RicControlAcknowledge(ack) => {
                if let Some(proc) =
                    self.core.endpoint.table.complete(agent, ProcedureKey::Ric(ack.req_id))
                {
                    crate::endpoint::note_completed(true);
                    let out = CtrlOutcome::Ack(ack);
                    self.for_one(proc.user, |iapp, api| iapp.on_control_outcome(api, agent, &out));
                }
            }
            E2apPdu::RicControlFailure(fail) => {
                if let Some(proc) =
                    self.core.endpoint.table.complete(agent, ProcedureKey::Ric(fail.req_id))
                {
                    crate::endpoint::note_completed(false);
                    let out = CtrlOutcome::Failed(fail);
                    self.for_one(proc.user, |iapp, api| iapp.on_control_outcome(api, agent, &out));
                }
            }
            E2apPdu::RicServiceUpdate(upd) => {
                // Update the RANDB view of the agent's functions and ack.
                let accepted: Vec<RanFunctionId> = upd.added.iter().map(|f| f.id).collect();
                if let Some(info) = self.core.randb.agent(agent).cloned() {
                    let mut info = info;
                    for f in upd.added {
                        if !info.functions.iter().any(|x| x.id == f.id) {
                            info.functions.push(f);
                        }
                    }
                    for f in upd.modified {
                        if let Some(x) = info.functions.iter_mut().find(|x| x.id == f.id) {
                            *x = f;
                        }
                    }
                    info.functions.retain(|x| !upd.removed.contains(&x.id));
                    self.core.randb.add_agent(info);
                }
                self.core.outbox.push((
                    agent.into(),
                    E2apPdu::RicServiceUpdateAck(RicServiceUpdateAck {
                        transaction_id: upd.transaction_id,
                        accepted,
                        rejected: vec![],
                    }),
                ));
            }
            E2apPdu::ErrorIndication(_) | E2apPdu::ResetResponse(_) => {}
            E2apPdu::ResetRequest(req) => {
                // The agent wiped its subscription state: drop intents and
                // terminate everything in flight toward it.
                self.core.subs.retain(|(a, _), _| *a != agent);
                let lost = self.core.endpoint.table.connection_lost(agent);
                self.deliver_terminals(lost, false);
                self.core.outbox.push((
                    agent.into(),
                    E2apPdu::ResetResponse(ResetResponse { transaction_id: req.transaction_id }),
                ));
            }
            _ => {}
        }
        Ok(())
    }

    /// Sends a message another shard encoded to a locally owned agent.
    fn deliver_forwarded(&mut self, agent: AgentId, msg: WireMsg) {
        let Some(conn) = self.core.conns.get(&agent) else { return };
        self.core.tx_msgs += 1;
        self.core.tx_bytes += msg.payload.len() as u64;
        let m = obs();
        m.tx_msgs.inc();
        m.tx_bytes.add(msg.payload.len() as u64);
        let _ = conn.tx.send(msg);
    }

    fn flush(&mut self) {
        // Encode each queued PDU exactly once into the reusable scratch
        // buffer and share the frozen frame across its targets.  Targets
        // owned by another shard get the same frozen frame through the
        // router — the handover never re-encodes.
        let m = obs();
        let core = &mut self.core;
        let router = &self.router;
        let idx = self.idx;
        let (conns, tx_msgs, tx_bytes) = (&core.conns, &mut core.tx_msgs, &mut core.tx_bytes);
        scratch::flush_outbox(&mut core.scratch, core.codec, &mut core.outbox, |agent, msg| {
            match conns.get(&agent) {
                Some(conn) => {
                    *tx_msgs += 1;
                    *tx_bytes += msg.payload.len() as u64;
                    m.tx_msgs.inc();
                    m.tx_bytes.add(msg.payload.len() as u64);
                    let _ = conn.tx.send(msg);
                }
                // Not local: cross-shard target (or a dead agent — the
                // router drops frames for unknown ids, as before).
                None => router.forward(idx, agent, msg),
            }
        });
        let agents_now = self.core.randb.agent_count() as i64;
        let subs_now = self.core.subs.len() as i64;
        m.agents.add(agents_now - self.gauge_agents);
        m.subs_live.add(subs_now - self.gauge_subs);
        self.gauge_agents = agents_now;
        self.gauge_subs = subs_now;
        self.shard_obs.agents.set(agents_now);
    }
}
