//! Controller startup and the public handle: binds listeners, spawns one
//! [`super::shard::ShardRuntime`] per shard, and fans handle commands out
//! across the shards.

use std::any::Any;
use std::io;
use std::sync::Arc;

use tokio::sync::{broadcast, mpsc, oneshot};

use flexric_e2ap::E2apPdu;
use flexric_transport::{listen, Listener, TransportAddr};

use super::router::ShardRouter;
use super::shard::ShardRuntime;
use super::{AgentInfo, IApp, ServerConfig, ServerEvent, ServerStats};

pub(crate) enum Cmd {
    Tick(u64),
    ToIApp(String, Box<dyn Any + Send>),
    Agents(oneshot::Sender<Vec<AgentInfo>>),
    Stats(oneshot::Sender<ServerStats>),
    Stop,
}

/// Handle to a running controller.
///
/// On a sharded controller the handle is the aggregation point: `tick` and
/// `stop` reach every shard, `agents`/`stats` gather and merge per-shard
/// snapshots, and `events` taps the single broadcast channel all shards
/// publish into.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shards: Vec<mpsc::UnboundedSender<Cmd>>,
    events_tx: broadcast::Sender<ServerEvent>,
    /// Addresses the controller is listening on (ephemeral ports resolved).
    pub addrs: Vec<TransportAddr>,
}

impl ServerHandle {
    /// Number of shard event loops behind this handle.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Advances controller time on every shard (virtual-time mode, or
    /// extra ticks).
    pub fn tick(&self, now_ms: u64) {
        for s in &self.shards {
            let _ = s.send(Cmd::Tick(now_ms));
        }
    }

    /// Sends a message to a named iApp (northbound ingress).
    ///
    /// The message is delivered on shard 0 (`Box<dyn Any>` is not
    /// cloneable, so it cannot be fanned out); on a sharded controller the
    /// shard-0 iApp instance is the northbound entry point and forwards
    /// shard-spanning requests through [`super::ServerApi::send_pdu_multi`],
    /// which routes across shards.
    pub fn to_iapp(&self, name: &str, msg: Box<dyn Any + Send>) {
        let _ = self.shards[0].send(Cmd::ToIApp(name.to_owned(), msg));
    }

    /// Subscribes to server events (published by all shards).
    pub fn events(&self) -> broadcast::Receiver<ServerEvent> {
        self.events_tx.subscribe()
    }

    /// Snapshot of connected agents, merged over all shards.
    pub async fn agents(&self) -> io::Result<Vec<AgentInfo>> {
        let mut pending = Vec::with_capacity(self.shards.len());
        for s in &self.shards {
            let (tx, rx) = oneshot::channel();
            s.send(Cmd::Agents(tx))
                .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "server stopped"))?;
            pending.push(rx);
        }
        let mut all = Vec::new();
        for rx in pending {
            let mut part = rx
                .await
                .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "server stopped"))?;
            all.append(&mut part);
        }
        all.sort_by_key(|a| a.id);
        Ok(all)
    }

    /// Snapshot of the controller's counters, summed over all shards.
    pub async fn stats(&self) -> io::Result<ServerStats> {
        let mut pending = Vec::with_capacity(self.shards.len());
        for s in &self.shards {
            let (tx, rx) = oneshot::channel();
            s.send(Cmd::Stats(tx))
                .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "server stopped"))?;
            pending.push(rx);
        }
        let mut sum = ServerStats::default();
        for rx in pending {
            sum += rx
                .await
                .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "server stopped"))?;
        }
        Ok(sum)
    }

    /// Stops the controller.  Listeners are shut down with the shard-0
    /// event loop, so the addresses can be re-bound by a restarted
    /// controller.
    pub fn stop(&self) {
        for s in &self.shards {
            let _ = s.send(Cmd::Stop);
        }
    }
}

/// The controller runtime.
///
/// Procedure tracking, retransmission, and reconnect handling live in the
/// shared endpoint layer — see [`crate::endpoint`] and the module docs.
pub struct Server;

impl Server {
    /// Binds the listeners and spawns the controller event loop with the
    /// given iApps.
    ///
    /// This entry point runs a single shard: one set of iApp instances,
    /// one event loop — the classic layout.  A config asking for more than
    /// one shard is rejected here, because one `Vec` of iApps cannot serve
    /// N independent loops; use [`Server::spawn_sharded`] with a factory.
    pub async fn spawn(cfg: ServerConfig, iapps: Vec<Box<dyn IApp>>) -> io::Result<ServerHandle> {
        if cfg.resolved_shards() > 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "ServerConfig.shards > 1 needs per-shard iApp instances; use Server::spawn_sharded",
            ));
        }
        let mut iapps = Some(iapps);
        Self::spawn_sharded(cfg, move |_| iapps.take().unwrap_or_default()).await
    }

    /// Binds the listeners and spawns one shard event loop per
    /// [`ServerConfig::resolved_shards`], calling `iapps(shard)` once per
    /// shard for that shard's iApp instances.
    ///
    /// Connections are assigned to shards at accept time by RAN-entity key
    /// (sticky least-loaded), so agents of one base station — and an agent
    /// reconnecting within the grace window — always land on the same
    /// shard.  Per-shard instances that need a combined view share state
    /// via `Arc` internally (see `MonitorApp::replica`).
    pub async fn spawn_sharded(
        cfg: ServerConfig,
        mut iapps: impl FnMut(usize) -> Vec<Box<dyn IApp>>,
    ) -> io::Result<ServerHandle> {
        let shards = cfg.resolved_shards().max(1);
        let (events_tx, _) = broadcast::channel(1024);

        let mut evt_txs = Vec::with_capacity(shards);
        let mut evt_rxs = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = mpsc::unbounded_channel();
            evt_txs.push(tx);
            evt_rxs.push(rx);
        }
        let router = Arc::new(ShardRouter::new(evt_txs.clone()));

        let mut bound = Vec::new();
        let mut listeners: Vec<Listener> = Vec::new();
        for addr in &cfg.listen {
            let l = listen(addr).await?;
            bound.push(l.local_addr()?);
            listeners.push(l);
        }
        // Accept tasks: perform the setup *read* off the event loops, then
        // route the transport plus the parsed request to the entity's
        // shard.  The handles are kept (on shard 0) so stopping the server
        // frees the addresses.
        let mut listener_tasks = Vec::new();
        for mut l in listeners {
            let router = router.clone();
            let codec = cfg.codec;
            listener_tasks.push(tokio::spawn(async move {
                loop {
                    let Ok(mut transport) = l.accept().await else { break };
                    let router = router.clone();
                    tokio::spawn(async move {
                        let Ok(Some(first)) = transport.recv().await else { return };
                        match codec.decode(&first.payload) {
                            Ok(E2apPdu::E2SetupRequest(req)) => {
                                router.dispatch_new_agent(req, transport);
                            }
                            _ => {
                                // Protocol violation: close the connection.
                            }
                        }
                    });
                }
            }));
        }

        let mut listener_tasks = Some(listener_tasks);
        let mut cmd_txs = Vec::with_capacity(shards);
        for (idx, evt_rx) in evt_rxs.into_iter().enumerate() {
            let (cmd_tx, cmd_rx) = mpsc::unbounded_channel();
            cmd_txs.push(cmd_tx);
            let rt = ShardRuntime::new(
                idx,
                &cfg,
                iapps(idx),
                router.clone(),
                events_tx.clone(),
                evt_txs[idx].clone(),
                listener_tasks.take().unwrap_or_default(),
            );
            tokio::spawn(rt.run(cfg.tick_ms, evt_rx, cmd_rx));
        }
        Ok(ServerHandle { shards: cmd_txs, events_tx, addrs: bound })
    }
}
