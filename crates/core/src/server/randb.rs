//! The RAN database (RANDB): what the controller knows about the network.
//!
//! "The RAN management functionality stores information in the RAN database
//! allowing to query information about the composition of the RAN network
//! […] and handles disaggregated deployments by merging agents that belong
//! to the same base station (e.g., CU agent and DU agent) into the same RAN
//! entity" (paper §4.2.2).

use std::collections::HashMap;

use flexric_e2ap::{E2NodeType, FnVersion, GlobalE2NodeId, Plmn, RanFunctionId, RanFunctionItem};

/// Identifier of a connected agent at the server.
pub type AgentId = usize;

/// What the server knows about one connected agent.
#[derive(Debug, Clone)]
pub struct AgentInfo {
    /// The agent's id at this server.
    pub id: AgentId,
    /// The agent's global E2 node identity.
    pub node: GlobalE2NodeId,
    /// RAN functions the agent advertised.
    pub functions: Vec<RanFunctionItem>,
    /// Transport peer description.
    pub peer: String,
}

impl AgentInfo {
    /// Finds an advertised function by OID (any version; the setup
    /// negotiation already filtered out incompatible ones).
    pub fn function_by_oid(&self, oid: &str) -> Option<&RanFunctionItem> {
        self.functions.iter().find(|f| f.oid == oid)
    }

    /// Finds an advertised function by OID whose version is
    /// major-compatible with `want`, preferring the highest minor — the
    /// version-aware variant of [`AgentInfo::function_by_oid`].
    pub fn function_by_oid_compat(&self, oid: &str, want: FnVersion) -> Option<&RanFunctionItem> {
        self.functions
            .iter()
            .filter(|f| f.oid == oid && f.version.major == want.major)
            .max_by_key(|f| f.version.minor)
    }

    /// Finds an advertised function by id.
    pub fn function(&self, id: RanFunctionId) -> Option<&RanFunctionItem> {
        self.functions.iter().find(|f| f.id == id)
    }
}

/// A RAN entity: one logical base station, possibly assembled from several
/// agents (CU + DU).
#[derive(Debug, Clone)]
pub struct RanEntity {
    /// Merge key: `(plmn, node id)` with the node type erased.
    pub key: (Plmn, u64),
    /// Agents belonging to this entity.
    pub agents: Vec<AgentId>,
    /// Whether the entity is complete: a monolithic node, or both CU and
    /// DU parts present.
    pub complete: bool,
}

/// The RAN database.
#[derive(Debug, Default)]
pub struct RanDb {
    agents: HashMap<AgentId, AgentInfo>,
    entities: HashMap<(Plmn, u64), RanEntity>,
}

impl RanDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a connected agent.  Returns the agent's RAN entity if
    /// this connection *completed* it (CU+DU both present, or a monolithic
    /// node) — the "complete RAN formed" event of the paper.
    pub fn add_agent(&mut self, info: AgentInfo) -> Option<RanEntity> {
        let key = info.node.ran_entity_key();
        let node_type = info.node.node_type;
        let id = info.id;
        self.agents.insert(id, info);
        let entity = self.entities.entry(key).or_insert(RanEntity {
            key,
            agents: Vec::new(),
            complete: false,
        });
        if !entity.agents.contains(&id) {
            entity.agents.push(id);
        }
        let was_complete = entity.complete;
        entity.complete = if node_type.is_split() {
            let types: Vec<E2NodeType> = entity
                .agents
                .iter()
                .filter_map(|a| self.agents.get(a))
                .map(|a| a.node.node_type)
                .collect();
            let has_cu = types.iter().any(|t| matches!(t, E2NodeType::GnbCu | E2NodeType::EnbCu));
            let has_du = types.iter().any(|t| matches!(t, E2NodeType::GnbDu | E2NodeType::EnbDu));
            has_cu && has_du
        } else {
            true
        };
        if entity.complete && !was_complete {
            Some(entity.clone())
        } else {
            None
        }
    }

    /// Removes an agent (disconnect); its entity loses completeness if it
    /// depended on this agent.
    pub fn remove_agent(&mut self, id: AgentId) -> Option<AgentInfo> {
        let info = self.agents.remove(&id)?;
        let key = info.node.ran_entity_key();
        if let Some(entity) = self.entities.get_mut(&key) {
            entity.agents.retain(|a| *a != id);
            if entity.agents.is_empty() {
                self.entities.remove(&key);
            } else {
                entity.complete = false;
            }
        }
        Some(info)
    }

    /// Looks up an agent.
    pub fn agent(&self, id: AgentId) -> Option<&AgentInfo> {
        self.agents.get(&id)
    }

    /// All connected agents.
    pub fn agents(&self) -> impl Iterator<Item = &AgentInfo> {
        self.agents.values()
    }

    /// Number of connected agents.
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }

    /// All RAN entities.
    pub fn entities(&self) -> impl Iterator<Item = &RanEntity> {
        self.entities.values()
    }

    /// Finds agents advertising a function with the given OID.
    pub fn agents_with_oid<'a>(&'a self, oid: &'a str) -> impl Iterator<Item = &'a AgentInfo> {
        self.agents.values().filter(move |a| a.function_by_oid(oid).is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexric_e2ap::E2NodeType;

    fn info(id: AgentId, node_type: E2NodeType, node_id: u64) -> AgentInfo {
        AgentInfo {
            id,
            node: GlobalE2NodeId::new(Plmn::TEST, node_type, node_id),
            functions: vec![RanFunctionItem {
                id: RanFunctionId::new(142),
                definition: bytes::Bytes::new(),
                revision: 1,
                oid: "flexric.sm.mac_stats".into(),
                version: FnVersion::V1,
            }],
            peer: "test".into(),
        }
    }

    #[test]
    fn monolithic_agent_completes_immediately() {
        let mut db = RanDb::new();
        let formed = db.add_agent(info(0, E2NodeType::Gnb, 1));
        assert!(formed.is_some());
        assert!(formed.unwrap().complete);
        assert_eq!(db.agent_count(), 1);
    }

    #[test]
    fn cu_du_merge_into_one_entity() {
        let mut db = RanDb::new();
        assert!(db.add_agent(info(0, E2NodeType::GnbCu, 7)).is_none(), "CU alone incomplete");
        let formed = db.add_agent(info(1, E2NodeType::GnbDu, 7));
        assert!(formed.is_some(), "CU+DU complete");
        let entity = formed.unwrap();
        assert_eq!(entity.agents.len(), 2);
        assert_eq!(db.entities().count(), 1);
    }

    #[test]
    fn different_node_ids_stay_separate() {
        let mut db = RanDb::new();
        db.add_agent(info(0, E2NodeType::GnbCu, 7));
        assert!(db.add_agent(info(1, E2NodeType::GnbDu, 8)).is_none());
        assert_eq!(db.entities().count(), 2);
    }

    #[test]
    fn two_dus_without_cu_incomplete() {
        let mut db = RanDb::new();
        assert!(db.add_agent(info(0, E2NodeType::GnbDu, 7)).is_none());
        assert!(db.add_agent(info(1, E2NodeType::GnbDu, 7)).is_none());
    }

    #[test]
    fn removal_breaks_completeness() {
        let mut db = RanDb::new();
        db.add_agent(info(0, E2NodeType::GnbCu, 7));
        db.add_agent(info(1, E2NodeType::GnbDu, 7));
        let removed = db.remove_agent(1).unwrap();
        assert_eq!(removed.id, 1);
        let entity = db.entities().next().unwrap();
        assert!(!entity.complete);
        // Removing the last agent removes the entity.
        db.remove_agent(0);
        assert_eq!(db.entities().count(), 0);
        assert!(db.remove_agent(0).is_none());
    }

    #[test]
    fn re_adding_completes_again() {
        let mut db = RanDb::new();
        db.add_agent(info(0, E2NodeType::GnbCu, 7));
        db.add_agent(info(1, E2NodeType::GnbDu, 7));
        db.remove_agent(1);
        let formed = db.add_agent(info(2, E2NodeType::GnbDu, 7));
        assert!(formed.is_some(), "entity re-completes with replacement DU");
    }

    #[test]
    fn oid_lookup() {
        let mut db = RanDb::new();
        db.add_agent(info(0, E2NodeType::Gnb, 1));
        assert_eq!(db.agents_with_oid("flexric.sm.mac_stats").count(), 1);
        assert_eq!(db.agents_with_oid("flexric.sm.tc_ctrl").count(), 0);
        let a = db.agent(0).unwrap();
        assert!(a.function(RanFunctionId::new(142)).is_some());
        assert!(a.function(RanFunctionId::new(1)).is_none());
    }

    #[test]
    fn version_aware_oid_lookup() {
        let mut base = info(0, E2NodeType::Gnb, 1);
        let mut v21 = base.functions[0].clone();
        v21.id = RanFunctionId::new(200);
        v21.version = FnVersion::new(2, 1);
        let mut v23 = v21.clone();
        v23.id = RanFunctionId::new(201);
        v23.version = FnVersion::new(2, 3);
        base.functions.extend([v21, v23]);
        // Major must match; highest minor among compatible wins.
        let got = base.function_by_oid_compat("flexric.sm.mac_stats", FnVersion::new(2, 0));
        assert_eq!(got.unwrap().version, FnVersion::new(2, 3));
        let got = base.function_by_oid_compat("flexric.sm.mac_stats", FnVersion::V1);
        assert_eq!(got.unwrap().version, FnVersion::V1);
        assert!(base
            .function_by_oid_compat("flexric.sm.mac_stats", FnVersion::new(3, 0))
            .is_none());
        assert!(base.function_by_oid_compat("flexric.sm.nope", FnVersion::V1).is_none());
    }
}
