//! Shard assignment and the thin cross-shard router.
//!
//! Everything on the indication hot path is shard-local; this module is
//! the *only* state shared between shard event loops, and it is touched
//! only on accept, disconnect-finalize, and cross-shard `send_pdu` —
//! none of which are per-indication work.
//!
//! Assignment is keyed on the RAN-entity key (`(Plmn, node id)` with the
//! node type erased) rather than the connection: CU and DU agents of one
//! base station must land on the same shard so `RanDb` entity merging
//! stays shard-local, and the key pin outlives the connection so an agent
//! returning within the reconnect grace window rebinds on the shard that
//! still holds its identity and subscription intents.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};

use tokio::sync::mpsc;

use flexric_e2ap::{E2SetupRequest, Plmn};
use flexric_transport::WireMsg;

use super::randb::AgentId;
use super::shard::LoopEvent;

/// Sticky least-loaded assignment of keys to `n` shards.
///
/// Pure `std` on purpose: the assignment invariants (stickiness, balance,
/// release) are the cross-shard correctness core and are unit-tested
/// standalone.
pub(crate) struct ShardMap<K> {
    assigned: HashMap<K, usize>,
    load: Vec<usize>,
}

impl<K: Hash + Eq> ShardMap<K> {
    pub(crate) fn new(shards: usize) -> Self {
        ShardMap { assigned: HashMap::new(), load: vec![0; shards.max(1)] }
    }

    /// Shard for `key`: the existing assignment if the key is known
    /// (sticky), otherwise the least-loaded shard (first wins on ties).
    pub(crate) fn assign(&mut self, key: K) -> usize {
        if let Some(&s) = self.assigned.get(&key) {
            return s;
        }
        let s = self.load.iter().enumerate().min_by_key(|(_, l)| **l).map(|(i, _)| i).unwrap_or(0);
        self.load[s] += 1;
        self.assigned.insert(key, s);
        s
    }

    /// Drops a key's assignment and returns its slot to the load balance.
    /// Called when the last agent of an entity is finally disconnected.
    pub(crate) fn release(&mut self, key: &K) {
        if let Some(s) = self.assigned.remove(key) {
            self.load[s] = self.load[s].saturating_sub(1);
        }
    }

    #[cfg(test)]
    fn load(&self) -> &[usize] {
        &self.load
    }
}

/// Shared between all shard loops and the accept tasks.
pub(crate) struct ShardRouter {
    /// Event-channel senders of every shard, indexed by shard.
    evt: Vec<mpsc::UnboundedSender<LoopEvent>>,
    /// Entity-key → shard pins.  Accept/finalize path only.
    map: Mutex<ShardMap<(Plmn, u64)>>,
    /// AgentId → owning shard, maintained by the owning shard.  Read on
    /// the cross-shard egress fallback; never on local delivery.
    owners: RwLock<HashMap<AgentId, usize>>,
    /// Global sequential [`AgentId`] allocator, so ids keep the same
    /// dense-from-zero shape as the single-loop runtime.
    next_agent: AtomicUsize,
}

impl ShardRouter {
    pub(crate) fn new(evt: Vec<mpsc::UnboundedSender<LoopEvent>>) -> Self {
        let shards = evt.len();
        ShardRouter {
            evt,
            map: Mutex::new(ShardMap::new(shards)),
            owners: RwLock::new(HashMap::new()),
            next_agent: AtomicUsize::new(0),
        }
    }

    pub(crate) fn alloc_agent(&self) -> AgentId {
        self.next_agent.fetch_add(1, Ordering::Relaxed)
    }

    /// Routes a completed E2 setup to its entity's shard.
    pub(crate) fn dispatch_new_agent(
        &self,
        req: E2SetupRequest,
        transport: flexric_transport::Transport,
    ) {
        let shard = self
            .map
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .assign(req.global_node.ran_entity_key());
        let _ = self.evt[shard].send(LoopEvent::NewAgent(req, transport));
    }

    /// Records `shard` as the owner of `agent` (idempotent on reconnect).
    pub(crate) fn bind(&self, agent: AgentId, shard: usize) {
        self.owners.write().unwrap_or_else(|e| e.into_inner()).insert(agent, shard);
    }

    /// Forgets an agent and, once no agent of the entity remains, the
    /// entity pin.
    pub(crate) fn unbind(&self, agent: AgentId, entity_gone: Option<&(Plmn, u64)>) {
        self.owners.write().unwrap_or_else(|e| e.into_inner()).remove(&agent);
        if let Some(key) = entity_gone {
            self.map.lock().unwrap_or_else(|e| e.into_inner()).release(key);
        }
    }

    /// Hands an already-encoded message to the shard owning `agent`.
    /// Called from another shard's flush when the target is not local; the
    /// payload is a frozen `Bytes`, so crossing the boundary never
    /// re-encodes, and the stream id travels with it.  Messages for
    /// unknown or own-shard-but-offline agents are dropped, as a frame for
    /// a vanished connection would be.
    pub(crate) fn forward(&self, from_shard: usize, agent: AgentId, msg: WireMsg) {
        let owner = self.owners.read().unwrap_or_else(|e| e.into_inner()).get(&agent).copied();
        match owner {
            Some(s) if s != from_shard => {
                let _ = self.evt[s].send(LoopEvent::Forward(agent, msg));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_keys_go_to_least_loaded_shard() {
        let mut m: ShardMap<u64> = ShardMap::new(3);
        assert_eq!(m.assign(10), 0);
        assert_eq!(m.assign(11), 1);
        assert_eq!(m.assign(12), 2);
        assert_eq!(m.assign(13), 0, "wraps to the least-loaded again");
        assert_eq!(m.load(), &[2, 1, 1]);
    }

    #[test]
    fn assignment_is_sticky() {
        let mut m: ShardMap<u64> = ShardMap::new(4);
        let s = m.assign(7);
        for _ in 0..10 {
            m.assign(99);
            m.assign(98);
            assert_eq!(m.assign(7), s, "re-asking for a known key never moves it");
        }
    }

    #[test]
    fn release_rebalances() {
        let mut m: ShardMap<u64> = ShardMap::new(2);
        assert_eq!(m.assign(1), 0);
        assert_eq!(m.assign(2), 1);
        assert_eq!(m.assign(3), 0);
        // Shard 0 has 2 keys, shard 1 has 1: next lands on 1.
        assert_eq!(m.assign(4), 1);
        m.release(&1);
        m.release(&3);
        // Now 0 is empty: new keys go there first.
        assert_eq!(m.assign(5), 0);
        // Releasing an unknown key is a no-op.
        m.release(&42);
        assert_eq!(m.load().iter().sum::<usize>(), 3);
    }

    #[test]
    fn single_shard_takes_everything() {
        let mut m: ShardMap<u64> = ShardMap::new(1);
        for k in 0..100 {
            assert_eq!(m.assign(k), 0);
        }
        assert_eq!(m.load(), &[100]);
    }
}
