//! The FlexRIC agent library (paper §4.1).
//!
//! Extends a base station with E2 agent functionality.  The agent owns the
//! connections to one or several controllers, performs the E2 setup
//! handshake, and dispatches functional procedures to registered
//! [`RanFunction`]s through the generic RAN-function API: callbacks for
//! subscription requests, subscription deletes, and control messages
//! (paper §4.1.1), plus a tick callback that drives periodic report
//! subscriptions.
//!
//! ## Multi-controller support (§4.1.2)
//!
//! The agent can be connected to additional controllers at runtime (via
//! [`AgentHandle::add_controller`] or an inbound E2 Connection Update).
//! RAN functions see the *controller origin* of every message, and the
//! UE-to-controller association decides which UEs a RAN function may expose
//! to which controller: every UE is associated with the first controller;
//! additional controllers see only explicitly associated UEs.
//!
//! ## Connection robustness
//!
//! Agent-initiated procedures (RIC Service Update) are tracked in the
//! shared procedure-endpoint layer ([`crate::endpoint`]) with deadlines and
//! retransmission, and transaction ids come from its wraparound-safe
//! allocator.  When a controller connection drops, a supervisor task
//! redials it with capped exponential backoff
//! ([`AgentConfig::reconnect`]) and replays the E2 Setup handshake —
//! re-announcing all RAN functions — so the controller can re-issue its
//! subscriptions without the embedder doing anything.

use std::collections::{HashMap, HashSet};
use std::io;
use std::time::Duration;

use bytes::Bytes;
use tokio::sync::{mpsc, oneshot};

use flexric_codec::E2apCodec;
use flexric_e2ap::*;
use flexric_sm::{ReportTrigger, SmCodec, SmPayload};
use flexric_transport::fault::FaultHandle;
use flexric_transport::{connect, Transport, TransportAddr, WireMsg};

use crate::endpoint::{Backoff, E2apEndpoint, ProcedureClass, ProcedureKey, RetryPolicy};
use crate::scratch::{self, EncodeScratch, Targets};

/// Index of a controller connection at this agent (0 = first controller).
pub type CtrlId = usize;

/// Configuration of an agent.
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// Identity advertised in E2 setup.
    pub node: GlobalE2NodeId,
    /// E2AP encoding used on all connections.
    pub codec: E2apCodec,
    /// Controllers to connect to at startup; the first is the default
    /// controller that sees all UEs.
    pub controllers: Vec<TransportAddr>,
    /// Internal tick period in milliseconds; `None` means the embedder
    /// drives time explicitly through [`AgentHandle::tick`] (virtual-time
    /// simulations).
    pub tick_ms: Option<u64>,
    /// Deadlines and retransmission budget for tracked procedures.
    pub retry: RetryPolicy,
    /// Backoff for redialing a lost controller connection; `None` disables
    /// automatic reconnection.  The initial connections at
    /// [`Agent::spawn`] always fail fast.
    pub reconnect: Option<Backoff>,
    /// Fault injector applied to every outbound frame (robustness tests).
    pub fault: Option<FaultHandle>,
}

impl AgentConfig {
    /// A single-controller agent with 1 ms internal ticks and automatic
    /// reconnection under the default backoff.
    pub fn new(node: GlobalE2NodeId, controller: TransportAddr) -> Self {
        AgentConfig {
            node,
            codec: E2apCodec::default(),
            controllers: vec![controller],
            tick_ms: Some(1),
            retry: RetryPolicy::default(),
            reconnect: Some(Backoff::default()),
            fault: None,
        }
    }
}

/// An admitted subscription, as tracked by the agent and handed to RAN
/// functions for indication sending.
#[derive(Debug, Clone)]
pub struct SubscriptionInfo {
    /// Which controller requested it.
    pub ctrl: CtrlId,
    /// The subscription's request id.
    pub req_id: RicRequestId,
    /// The RAN function it addresses.
    pub ran_function: RanFunctionId,
    /// The admitted action id.
    pub action: RicActionId,
    /// The raw event trigger definition.
    pub trigger: Bytes,
}

/// Context handed to every [`RanFunction`] callback.
pub struct AgentCtx<'a> {
    /// Current time in milliseconds.
    pub now_ms: u64,
    outbox: &'a mut Vec<(Targets<CtrlId>, E2apPdu)>,
    assoc: &'a UeAssoc,
}

impl AgentCtx<'_> {
    /// Queues an arbitrary PDU toward a controller.
    pub fn send(&mut self, ctrl: CtrlId, pdu: E2apPdu) {
        self.outbox.push((Targets::One(ctrl), pdu));
    }

    /// Queues one PDU toward several controllers.  The PDU is encoded once
    /// at flush and the frame is shared across all targets.
    pub fn send_multi(&mut self, ctrls: Vec<CtrlId>, pdu: E2apPdu) {
        if ctrls.is_empty() {
            return;
        }
        self.outbox.push((Targets::from_vec(ctrls), pdu));
    }

    /// Queues a report indication for a subscription.
    pub fn send_indication(
        &mut self,
        sub: &SubscriptionInfo,
        sn: Option<u32>,
        header: Bytes,
        message: Bytes,
    ) {
        self.send(
            sub.ctrl,
            E2apPdu::RicIndication(RicIndication {
                req_id: sub.req_id,
                ran_function: sub.ran_function,
                action: sub.action,
                sn,
                ind_type: RicIndicationType::Report,
                header,
                message,
                call_process_id: None,
            }),
        );
    }

    /// Queues one report payload for several subscriptions at once.
    ///
    /// Subscriptions whose indication PDU would be identical (same request
    /// id, RAN function and action — common when controllers issue the
    /// same subscription) are grouped and encoded once at flush, sharing
    /// the frozen frame across their controllers.  Distinct groups are
    /// queued separately, so this is always safe to call.
    pub fn send_indication_multi<'s>(
        &mut self,
        subs: impl IntoIterator<Item = &'s SubscriptionInfo>,
        sn: Option<u32>,
        header: Bytes,
        message: Bytes,
    ) {
        let mut groups: Vec<(RicRequestId, RanFunctionId, RicActionId, Vec<CtrlId>)> = Vec::new();
        for sub in subs {
            match groups
                .iter_mut()
                .find(|(r, f, a, _)| *r == sub.req_id && *f == sub.ran_function && *a == sub.action)
            {
                Some((_, _, _, ctrls)) => ctrls.push(sub.ctrl),
                None => groups.push((sub.req_id, sub.ran_function, sub.action, vec![sub.ctrl])),
            }
        }
        for (req_id, ran_function, action, ctrls) in groups {
            let pdu = E2apPdu::RicIndication(RicIndication {
                req_id,
                ran_function,
                action,
                sn,
                ind_type: RicIndicationType::Report,
                header: header.clone(),
                message: message.clone(),
                call_process_id: None,
            });
            self.outbox.push((Targets::from_vec(ctrls), pdu));
        }
    }

    /// Whether `rnti` is exposed to `ctrl` under the current
    /// UE-to-controller association.
    pub fn ue_exposed(&self, ctrl: CtrlId, rnti: u16) -> bool {
        self.assoc.exposed(ctrl, rnti)
    }
}

/// The generic RAN-function API: custom SM-specific logic implements this
/// trait and registers with the agent.
pub trait RanFunction: Send {
    /// The function id advertised at E2 setup.
    fn id(&self) -> RanFunctionId;
    /// The service model OID advertised at E2 setup.
    fn oid(&self) -> String;
    /// The SM-encoded RAN function definition.
    fn definition(&self) -> Bytes;
    /// Definition revision.
    fn revision(&self) -> u16 {
        1
    }
    /// Service-model version advertised behind the OID (`major.minor`).
    /// Registry-backed functions report their descriptor's version; the
    /// default matches pre-versioning peers.
    fn version(&self) -> FnVersion {
        FnVersion::V1
    }

    /// A controller requests a subscription.  Return the admitted actions
    /// (commonly all of them) or a cause for rejection.  The function is
    /// responsible for SLA admission control (paper §4.1.2).
    fn on_subscription(
        &mut self,
        ctx: &mut AgentCtx,
        sub: &SubscriptionInfo,
        req: &RicSubscriptionRequest,
    ) -> Result<(), Cause>;

    /// A controller re-issues an existing subscription with a new event
    /// trigger — the server-driven *retune* path (report-period backoff on
    /// quiescence, tightening on anomaly).  The subscription identity
    /// (controller, request id) is unchanged; only the trigger differs.
    ///
    /// The default implementation tears the subscription down and
    /// re-admits it, which is always correct; functions with per-stream
    /// state (delta encoders) override this to retune in place.
    fn on_subscription_update(
        &mut self,
        ctx: &mut AgentCtx,
        sub: &SubscriptionInfo,
        req: &RicSubscriptionRequest,
    ) -> Result<(), Cause> {
        self.on_subscription_delete(ctx, sub.ctrl, sub.req_id);
        self.on_subscription(ctx, sub, req)
    }

    /// A controller deletes a subscription.
    fn on_subscription_delete(&mut self, ctx: &mut AgentCtx, ctrl: CtrlId, req_id: RicRequestId);

    /// A controller sends a control message.  Return the control outcome
    /// bytes (if any) or a cause for failure.
    fn on_control(
        &mut self,
        ctx: &mut AgentCtx,
        ctrl: CtrlId,
        req: &RicControlRequest,
    ) -> Result<Option<Bytes>, Cause>;

    /// Called on every agent tick; periodic report functions emit their
    /// indications here.
    fn on_tick(&mut self, _ctx: &mut AgentCtx) {}
}

/// Helper managing the periodic report subscriptions of a RAN function:
/// decodes [`ReportTrigger`]s, tracks due times, answers deletes.
#[derive(Debug, Default)]
pub struct PeriodicSubs {
    subs: Vec<(SubscriptionInfo, ReportTrigger, u64)>,
}

impl PeriodicSubs {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of active subscriptions.
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// Whether no subscription is active.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// Admits a subscription whose event trigger is a [`ReportTrigger`]
    /// encoded with `sm_codec`.
    pub fn admit(
        &mut self,
        sub: &SubscriptionInfo,
        sm_codec: SmCodec,
        now_ms: u64,
    ) -> Result<(), Cause> {
        let trigger = ReportTrigger::decode(sm_codec, &sub.trigger)
            .map_err(|_| Cause::Ric(RicCause::UnsupportedEventTrigger))?;
        if self.subs.iter().any(|(s, _, _)| s.ctrl == sub.ctrl && s.req_id == sub.req_id) {
            return Err(Cause::Ric(RicCause::DuplicateAction));
        }
        self.subs.push((sub.clone(), trigger, now_ms));
        Ok(())
    }

    /// Retunes an existing subscription to the trigger carried by `sub`
    /// (same controller + request id, new event trigger) without tearing
    /// it down: the new period takes effect at the next due time.  Returns
    /// the decoded new trigger so callers can reset per-stream state
    /// (delta encoders force a keyframe on retune).
    pub fn retune(
        &mut self,
        sub: &SubscriptionInfo,
        sm_codec: SmCodec,
        now_ms: u64,
    ) -> Result<ReportTrigger, Cause> {
        let trigger = ReportTrigger::decode(sm_codec, &sub.trigger)
            .map_err(|_| Cause::Ric(RicCause::UnsupportedEventTrigger))?;
        let entry = self
            .subs
            .iter_mut()
            .find(|(s, _, _)| s.ctrl == sub.ctrl && s.req_id == sub.req_id)
            .ok_or(Cause::Ric(RicCause::RequestIdUnknown))?;
        entry.0 = sub.clone();
        entry.1 = trigger;
        entry.2 = now_ms + trigger.period_ms.max(1) as u64;
        Ok(trigger)
    }

    /// Removes a subscription; returns whether it existed.
    pub fn remove(&mut self, ctrl: CtrlId, req_id: RicRequestId) -> bool {
        let before = self.subs.len();
        self.subs.retain(|(s, _, _)| !(s.ctrl == ctrl && s.req_id == req_id));
        self.subs.len() != before
    }

    /// Removes all subscriptions of a controller (reset / disconnect).
    pub fn remove_ctrl(&mut self, ctrl: CtrlId) {
        self.subs.retain(|(s, _, _)| s.ctrl != ctrl);
    }

    /// Calls `f` for every subscription due at `now_ms` and re-arms it.
    pub fn for_due(&mut self, now_ms: u64, mut f: impl FnMut(&SubscriptionInfo, &ReportTrigger)) {
        for (sub, trigger, next_due) in &mut self.subs {
            if now_ms >= *next_due {
                f(sub, trigger);
                let period = trigger.period_ms.max(1) as u64;
                *next_due = now_ms + period;
            }
        }
    }
}

/// UE-to-controller association table (paper §4.1.2).
#[derive(Debug, Default)]
pub struct UeAssoc {
    extra: HashMap<u16, HashSet<CtrlId>>,
}

impl UeAssoc {
    /// Whether `rnti` is exposed to `ctrl`: the first controller sees all
    /// UEs; additional controllers only explicitly associated ones.
    pub fn exposed(&self, ctrl: CtrlId, rnti: u16) -> bool {
        ctrl == 0 || self.extra.get(&rnti).is_some_and(|s| s.contains(&ctrl))
    }

    /// Associates a UE with a controller.
    pub fn associate(&mut self, rnti: u16, ctrl: CtrlId) {
        self.extra.entry(rnti).or_default().insert(ctrl);
    }

    /// Removes an association.
    pub fn disassociate(&mut self, rnti: u16, ctrl: CtrlId) {
        if let Some(s) = self.extra.get_mut(&rnti) {
            s.remove(&ctrl);
            if s.is_empty() {
                self.extra.remove(&rnti);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

enum Cmd {
    Tick(u64),
    AssociateUe(u16, CtrlId),
    DisassociateUe(u16, CtrlId),
    AddController(TransportAddr, oneshot::Sender<io::Result<CtrlId>>),
    Stats(oneshot::Sender<AgentStats>),
    Stop,
}

/// Counters exposed by [`AgentHandle::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AgentStats {
    /// Messages received from controllers.
    pub rx_msgs: u64,
    /// Messages sent to controllers.
    pub tx_msgs: u64,
    /// Bytes sent to controllers (encoded E2AP).
    pub tx_bytes: u64,
    /// Active subscriptions across all functions.
    pub active_subs: u64,
    /// Connected controllers.
    pub controllers: u64,
    /// Procedure retransmissions sent.
    pub retries: u64,
    /// Procedures that expired terminally.
    pub timeouts: u64,
    /// Controller connections re-established by the supervisor.
    pub reconnects: u64,
    /// Inbound PDUs that failed to decode.
    pub decode_errors: u64,
}

/// Agent-layer registry metrics, mirroring the per-instance [`AgentStats`]
/// into the process-wide registry (summed across agents in one process).
/// Registered as a block on first touch so the layer is always listed.
struct AgentObs {
    rx_msgs: flexric_obs::Counter,
    tx_msgs: flexric_obs::Counter,
    tx_bytes: flexric_obs::Counter,
    indications_sent: flexric_obs::Counter,
    decode_errors: flexric_obs::Counter,
    reconnects: flexric_obs::Counter,
    active_subs: flexric_obs::Gauge,
    controllers: flexric_obs::Gauge,
    dispatch_ns: flexric_obs::Histogram,
}

fn obs() -> &'static AgentObs {
    static M: std::sync::OnceLock<AgentObs> = std::sync::OnceLock::new();
    M.get_or_init(|| AgentObs {
        rx_msgs: flexric_obs::counter("flexric_agent_rx_msgs_total", "messages from controllers"),
        tx_msgs: flexric_obs::counter("flexric_agent_tx_msgs_total", "messages to controllers"),
        tx_bytes: flexric_obs::counter("flexric_agent_tx_bytes_total", "encoded bytes sent"),
        indications_sent: flexric_obs::counter(
            "flexric_agent_indications_sent_total",
            "RIC indications fanned out to controllers",
        ),
        decode_errors: flexric_obs::counter(
            "flexric_agent_decode_errors_total",
            "inbound PDUs that failed to decode",
        ),
        reconnects: flexric_obs::counter(
            "flexric_agent_reconnects_total",
            "controller connections re-established",
        ),
        active_subs: flexric_obs::gauge(
            "flexric_agent_subscriptions_live",
            "active subscriptions across all functions",
        ),
        controllers: flexric_obs::gauge("flexric_agent_controllers", "connected controllers"),
        dispatch_ns: flexric_obs::histogram(
            "flexric_agent_dispatch_ns",
            "inbound PDU decode + handler dispatch latency",
        ),
    })
}

/// Handle to a running agent.
#[derive(Debug, Clone)]
pub struct AgentHandle {
    cmd: mpsc::UnboundedSender<Cmd>,
}

impl AgentHandle {
    /// Advances agent time (virtual-time mode, or extra ticks).
    pub fn tick(&self, now_ms: u64) {
        let _ = self.cmd.send(Cmd::Tick(now_ms));
    }

    /// Exposes `rnti` to an additional controller.
    pub fn associate_ue(&self, rnti: u16, ctrl: CtrlId) {
        let _ = self.cmd.send(Cmd::AssociateUe(rnti, ctrl));
    }

    /// Stops exposing `rnti` to a controller.
    pub fn disassociate_ue(&self, rnti: u16, ctrl: CtrlId) {
        let _ = self.cmd.send(Cmd::DisassociateUe(rnti, ctrl));
    }

    /// Connects to an additional controller, returning its [`CtrlId`].
    pub async fn add_controller(&self, addr: TransportAddr) -> io::Result<CtrlId> {
        let (tx, rx) = oneshot::channel();
        self.cmd
            .send(Cmd::AddController(addr, tx))
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "agent stopped"))?;
        rx.await.map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "agent stopped"))?
    }

    /// Snapshot of the agent's counters.
    pub async fn stats(&self) -> io::Result<AgentStats> {
        let (tx, rx) = oneshot::channel();
        self.cmd
            .send(Cmd::Stats(tx))
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "agent stopped"))?;
        rx.await.map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "agent stopped"))
    }

    /// Stops the agent.
    pub fn stop(&self) {
        let _ = self.cmd.send(Cmd::Stop);
    }
}

enum LoopEvent {
    Inbound(CtrlId, u64, WireMsg),
    ConnClosed(CtrlId, u64),
    /// A supervisor re-established a controller connection (setup
    /// handshake already completed).
    Reconnected(CtrlId, Transport),
    Cmd(Cmd),
}

struct CtrlConn {
    tx: mpsc::UnboundedSender<WireMsg>,
    alive: bool,
    /// Distinguishes this connection from earlier ones under the same
    /// [`CtrlId`] (reconnects), so stale reader events are ignored.
    epoch: u64,
}

/// The agent runtime: owns the RAN functions and the controller
/// connections; single logical event loop, like the paper's
/// single-threaded implementation.
pub struct Agent {
    cfg: AgentConfig,
    functions: Vec<Box<dyn RanFunction>>,
    sub_index: HashMap<(CtrlId, RicRequestId), usize>,
    conns: Vec<CtrlConn>,
    /// Dial address per controller, kept for the reconnect supervisor.
    ctrl_addrs: Vec<TransportAddr>,
    assoc: UeAssoc,
    outbox: Vec<(Targets<CtrlId>, E2apPdu)>,
    stats: AgentStats,
    scratch: EncodeScratch,
    now_ms: u64,
    evt_tx: mpsc::UnboundedSender<LoopEvent>,
    /// The shared procedure endpoint: outstanding agent-initiated
    /// procedures plus the wraparound-safe transaction-id allocator.
    endpoint: E2apEndpoint<CtrlId, ()>,
    next_epoch: u64,
    pending_ctrls: Vec<TransportAddr>,
}

/// Dials a controller and runs the blocking E2 setup handshake; returns
/// the ready transport.  Used for both the initial connections and the
/// supervisor's redials.
async fn establish(
    addr: &TransportAddr,
    codec: E2apCodec,
    node: GlobalE2NodeId,
    txid: u8,
    ran_functions: Vec<RanFunctionItem>,
) -> io::Result<Transport> {
    let mut transport = connect(addr).await?;
    let setup = E2apPdu::E2SetupRequest(E2SetupRequest {
        transaction_id: txid,
        global_node: node,
        ran_functions,
        component_configs: vec![],
    });
    let buf = Bytes::from(codec.encode(&setup));
    transport.send(WireMsg::e2ap(buf)).await?;
    let reply = transport
        .recv()
        .await?
        .ok_or_else(|| io::Error::new(io::ErrorKind::ConnectionReset, "closed during setup"))?;
    match codec.decode(&reply.payload) {
        Ok(E2apPdu::E2SetupResponse(_)) => Ok(transport),
        Ok(E2apPdu::E2SetupFailure(f)) => {
            Err(io::Error::other(format!("E2 setup rejected: {:?}", f.cause)))
        }
        Ok(other) => {
            Err(io::Error::other(format!("unexpected setup reply: {:?}", other.msg_type())))
        }
        Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
    }
}

impl Agent {
    /// Connects to all configured controllers, performs the E2 setup
    /// handshake with each, and spawns the agent event loop.
    pub async fn spawn(
        cfg: AgentConfig,
        functions: Vec<Box<dyn RanFunction>>,
    ) -> io::Result<AgentHandle> {
        let (evt_tx, evt_rx) = mpsc::unbounded_channel();
        let (cmd_tx, cmd_rx) = mpsc::unbounded_channel();
        let mut agent = Agent {
            cfg: cfg.clone(),
            functions,
            sub_index: HashMap::new(),
            conns: Vec::new(),
            ctrl_addrs: Vec::new(),
            assoc: UeAssoc::default(),
            outbox: Vec::new(),
            stats: AgentStats::default(),
            scratch: EncodeScratch::with_capacity(4096),
            now_ms: 0,
            evt_tx,
            endpoint: E2apEndpoint::new(cfg.retry),
            next_epoch: 0,
            pending_ctrls: Vec::new(),
        };
        for addr in &cfg.controllers {
            agent.connect_controller(addr).await?;
        }
        tokio::spawn(agent.run(evt_rx, cmd_rx));
        Ok(AgentHandle { cmd: cmd_tx })
    }

    fn fn_items(&self) -> Vec<RanFunctionItem> {
        self.functions
            .iter()
            .map(|f| RanFunctionItem {
                id: f.id(),
                definition: f.definition(),
                revision: f.revision(),
                oid: f.oid(),
                version: f.version(),
            })
            .collect()
    }

    async fn connect_controller(&mut self, addr: &TransportAddr) -> io::Result<CtrlId> {
        let txid = self.endpoint.alloc_tx_id();
        let transport =
            establish(addr, self.cfg.codec, self.cfg.node, txid, self.fn_items()).await?;
        let ctrl_id = self.conns.len();
        self.ctrl_addrs.push(addr.clone());
        self.register_conn(ctrl_id, transport);
        self.stats.controllers += 1;
        Ok(ctrl_id)
    }

    /// Spawns the writer/reader tasks for a ready transport and registers
    /// it under `ctrl` — appending for a new controller, replacing in
    /// place on a reconnect.
    fn register_conn(&mut self, ctrl: CtrlId, transport: Transport) {
        self.next_epoch += 1;
        let epoch = self.next_epoch;
        let (send_half, mut recv_half) = transport.split();
        let tx = crate::conn::spawn_writer(send_half, self.cfg.fault.clone());
        let evt = self.evt_tx.clone();
        tokio::spawn(async move {
            loop {
                match recv_half.recv().await {
                    Ok(Some(msg)) => {
                        if evt.send(LoopEvent::Inbound(ctrl, epoch, msg)).is_err() {
                            break;
                        }
                    }
                    Ok(None) | Err(_) => {
                        let _ = evt.send(LoopEvent::ConnClosed(ctrl, epoch));
                        break;
                    }
                }
            }
        });
        let conn = CtrlConn { tx, alive: true, epoch };
        if ctrl == self.conns.len() {
            self.conns.push(conn);
        } else {
            self.conns[ctrl] = conn;
        }
    }

    /// Spawns the reconnect supervisor for a lost controller connection:
    /// redial with capped exponential backoff, replay the setup handshake,
    /// and hand the ready transport back to the event loop.
    fn spawn_supervisor(&mut self, ctrl: CtrlId, backoff: Backoff) {
        let addr = self.ctrl_addrs[ctrl].clone();
        let codec = self.cfg.codec;
        let node = self.cfg.node;
        let txid = self.endpoint.alloc_tx_id();
        let items = self.fn_items();
        let evt = self.evt_tx.clone();
        tokio::spawn(async move {
            let mut attempt = 0u32;
            loop {
                tokio::time::sleep(Duration::from_millis(backoff.delay_ms(attempt))).await;
                attempt = attempt.saturating_add(1);
                match establish(&addr, codec, node, txid, items.clone()).await {
                    Ok(transport) => {
                        let _ = evt.send(LoopEvent::Reconnected(ctrl, transport));
                        return;
                    }
                    Err(_) => {
                        if evt.is_closed() {
                            return; // agent stopped; stop dialing
                        }
                    }
                }
            }
        });
    }

    async fn run(
        mut self,
        mut evt_rx: mpsc::UnboundedReceiver<LoopEvent>,
        mut cmd_rx: mpsc::UnboundedReceiver<Cmd>,
    ) {
        let mut ticker = self.cfg.tick_ms.map(|ms| {
            let mut iv = tokio::time::interval(std::time::Duration::from_millis(ms.max(1)));
            iv.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Skip);
            iv
        });
        loop {
            let event = if let Some(iv) = ticker.as_mut() {
                tokio::select! {
                    biased;
                    Some(cmd) = cmd_rx.recv() => LoopEvent::Cmd(cmd),
                    Some(ev) = evt_rx.recv() => ev,
                    _ = iv.tick() => LoopEvent::Cmd(Cmd::Tick(crate::mono_ms())),
                    else => break,
                }
            } else {
                tokio::select! {
                    biased;
                    Some(cmd) = cmd_rx.recv() => LoopEvent::Cmd(cmd),
                    Some(ev) = evt_rx.recv() => ev,
                    else => break,
                }
            };
            match event {
                LoopEvent::Inbound(ctrl, epoch, msg) => {
                    if !self.conns.get(ctrl).is_some_and(|c| c.alive && c.epoch == epoch) {
                        continue; // stale reader of a replaced connection
                    }
                    self.stats.rx_msgs += 1;
                    obs().rx_msgs.inc();
                    let _t = obs().dispatch_ns.timer();
                    self.handle_inbound(ctrl, &msg.payload);
                }
                LoopEvent::ConnClosed(ctrl, epoch) => self.handle_closed(ctrl, epoch),
                LoopEvent::Reconnected(ctrl, transport) => {
                    self.register_conn(ctrl, transport);
                    self.stats.controllers += 1;
                    self.stats.reconnects += 1;
                    obs().reconnects.inc();
                }
                LoopEvent::Cmd(Cmd::Tick(now)) => {
                    self.now_ms = now;
                    self.tick();
                }
                LoopEvent::Cmd(Cmd::AssociateUe(rnti, ctrl)) => self.assoc.associate(rnti, ctrl),
                LoopEvent::Cmd(Cmd::DisassociateUe(rnti, ctrl)) => {
                    self.assoc.disassociate(rnti, ctrl)
                }
                LoopEvent::Cmd(Cmd::AddController(addr, reply)) => {
                    let res = self.connect_controller(&addr).await;
                    let _ = reply.send(res);
                }
                LoopEvent::Cmd(Cmd::Stats(reply)) => {
                    let mut s = self.stats;
                    s.active_subs = self.sub_index.len() as u64;
                    let _ = reply.send(s);
                }
                LoopEvent::Cmd(Cmd::Stop) => break,
            }
            // Connect to controllers queued by an E2 Connection Update.
            while let Some(addr) = self.pending_ctrls.pop() {
                let _ = self.connect_controller(&addr).await;
            }
            self.flush();
        }
    }

    fn handle_closed(&mut self, ctrl: CtrlId, epoch: u64) {
        match self.conns.get_mut(ctrl) {
            Some(c) if c.alive && c.epoch == epoch => c.alive = false,
            _ => return, // stale notification from a replaced connection
        }
        self.stats.controllers = self.stats.controllers.saturating_sub(1);
        self.drop_ctrl_subs(ctrl);
        // Procedures in flight toward this controller terminate now; the
        // supervisor re-announces everything at setup anyway.
        let _ = self.endpoint.table.connection_lost(ctrl);
        if let Some(backoff) = self.cfg.reconnect {
            self.spawn_supervisor(ctrl, backoff);
        }
    }

    fn drop_ctrl_subs(&mut self, ctrl: CtrlId) {
        let dropped: Vec<(CtrlId, RicRequestId)> =
            self.sub_index.keys().filter(|(c, _)| *c == ctrl).copied().collect();
        for key in dropped {
            if let Some(fidx) = self.sub_index.remove(&key) {
                let mut ctx =
                    AgentCtx { now_ms: self.now_ms, outbox: &mut self.outbox, assoc: &self.assoc };
                self.functions[fidx].on_subscription_delete(&mut ctx, key.0, key.1);
            }
        }
        // Messages queued toward a dead controller are discarded at flush.
    }

    fn tick(&mut self) {
        // Retransmit due procedures and count terminal timeouts.
        let now = self.now_ms;
        let timed_out = {
            let Agent { endpoint, outbox, stats, .. } = self;
            endpoint.table.poll(now, |ctrl, pdu| {
                stats.retries += 1;
                outbox.push((Targets::One(ctrl), pdu.clone()));
            })
        };
        self.stats.timeouts += timed_out.len() as u64;
        let mut ctx =
            AgentCtx { now_ms: self.now_ms, outbox: &mut self.outbox, assoc: &self.assoc };
        for f in &mut self.functions {
            f.on_tick(&mut ctx);
        }
    }

    fn find_fn(&self, id: RanFunctionId) -> Option<usize> {
        self.functions.iter().position(|f| f.id() == id)
    }

    fn handle_inbound(&mut self, ctrl: CtrlId, raw: &Bytes) {
        // Borrowed decode: byte-valued fields (control headers, action
        // definitions …) stay refcounted views of the transport read slab.
        let pdu = match self.cfg.codec.decode_borrowed(raw) {
            Ok(p) => p,
            Err(_) => {
                self.stats.decode_errors += 1;
                obs().decode_errors.inc();
                self.outbox.push((
                    ctrl.into(),
                    E2apPdu::ErrorIndication(ErrorIndication {
                        req_id: None,
                        ran_function: None,
                        cause: Some(Cause::Protocol(ProtocolCause::TransferSyntaxError)),
                    }),
                ));
                return;
            }
        };
        match pdu {
            E2apPdu::RicSubscriptionRequest(req) => self.handle_subscription(ctrl, req),
            E2apPdu::RicSubscriptionDeleteRequest(req) => {
                self.handle_subscription_delete(ctrl, req)
            }
            E2apPdu::RicControlRequest(req) => self.handle_control(ctrl, req),
            E2apPdu::E2ConnectionUpdate(upd) => {
                // New controller connections cannot complete synchronously
                // inside this dispatcher; the addresses are queued as
                // pending and the event loop connects on its next turn
                // (same path as AgentHandle::add_controller).
                let ack = E2apPdu::E2ConnectionUpdateAck(E2ConnectionUpdateAck {
                    transaction_id: upd.transaction_id,
                    setup: upd.add.clone(),
                    failed: vec![],
                });
                self.outbox.push((ctrl.into(), ack));
                for tnl in upd.add {
                    let addr = if let Some(name) = tnl.address.strip_prefix("mem:") {
                        TransportAddr::Mem(name.to_owned())
                    } else {
                        match format!("{}:{}", tnl.address, tnl.port).parse() {
                            Ok(a) => TransportAddr::Tcp(a),
                            Err(_) => continue,
                        }
                    };
                    self.pending_ctrls.push(addr);
                }
            }
            E2apPdu::ResetRequest(req) => {
                let subs: Vec<(CtrlId, RicRequestId)> =
                    self.sub_index.keys().filter(|(c, _)| *c == ctrl).copied().collect();
                for key in subs {
                    if let Some(fidx) = self.sub_index.remove(&key) {
                        let mut ctx = AgentCtx {
                            now_ms: self.now_ms,
                            outbox: &mut self.outbox,
                            assoc: &self.assoc,
                        };
                        self.functions[fidx].on_subscription_delete(&mut ctx, key.0, key.1);
                    }
                }
                self.outbox.push((
                    ctrl.into(),
                    E2apPdu::ResetResponse(ResetResponse { transaction_id: req.transaction_id }),
                ));
            }
            E2apPdu::RicServiceQuery(q) => {
                let known: HashSet<RanFunctionId> = q.accepted.iter().copied().collect();
                let missing: Vec<RanFunctionItem> =
                    self.fn_items().into_iter().filter(|f| !known.contains(&f.id)).collect();
                if !missing.is_empty() {
                    // The update is an agent-initiated procedure: tracked
                    // with a deadline and retransmitted until acked.
                    let txid = self.endpoint.alloc_tx_id();
                    let pdu = E2apPdu::RicServiceUpdate(RicServiceUpdate {
                        transaction_id: txid,
                        added: missing,
                        modified: vec![],
                        removed: vec![],
                    });
                    self.endpoint.table.begin(
                        ctrl,
                        ProcedureKey::Tx(txid),
                        ProcedureClass::ServiceUpdate,
                        Some(pdu.clone()),
                        (),
                        self.now_ms,
                    );
                    self.outbox.push((ctrl.into(), pdu));
                }
            }
            E2apPdu::RicServiceUpdateAck(ack) => {
                if self
                    .endpoint
                    .table
                    .complete(ctrl, ProcedureKey::Tx(ack.transaction_id))
                    .is_some()
                {
                    crate::endpoint::note_completed(true);
                }
            }
            E2apPdu::ErrorIndication(_)
            | E2apPdu::E2SetupResponse(_)
            | E2apPdu::E2ConnectionUpdateAck(_)
            | E2apPdu::ResetResponse(_) => {}
            other => {
                self.outbox.push((
                    ctrl.into(),
                    E2apPdu::ErrorIndication(ErrorIndication {
                        req_id: other.ric_request_id(),
                        ran_function: other.ran_function_id(),
                        cause: Some(Cause::Protocol(
                            ProtocolCause::MessageNotCompatibleWithReceiverState,
                        )),
                    }),
                ));
            }
        }
    }

    fn handle_subscription(&mut self, ctrl: CtrlId, req: RicSubscriptionRequest) {
        let Some(fidx) = self.find_fn(req.ran_function) else {
            self.outbox.push((
                ctrl.into(),
                E2apPdu::RicSubscriptionFailure(RicSubscriptionFailure {
                    req_id: req.req_id,
                    ran_function: req.ran_function,
                    cause: Cause::Ric(RicCause::RanFunctionIdInvalid),
                }),
            ));
            return;
        };
        if let Some(&sub_fidx) = self.sub_index.get(&(ctrl, req.req_id)) {
            // An existing (controller, request id): either at-least-once
            // retransmit of a response we already sent, or a server-driven
            // *retune* carrying a new event trigger.  Both flow through
            // on_subscription_update — a retransmit retunes to the same
            // trigger, which is idempotent — and are re-acknowledged so
            // the server's procedure entry completes.
            let action = req.actions.first().map(|a| a.id).unwrap_or_default();
            let sub = SubscriptionInfo {
                ctrl,
                req_id: req.req_id,
                ran_function: req.ran_function,
                action,
                trigger: req.event_trigger.clone(),
            };
            let mut ctx =
                AgentCtx { now_ms: self.now_ms, outbox: &mut self.outbox, assoc: &self.assoc };
            match self.functions[sub_fidx].on_subscription_update(&mut ctx, &sub, &req) {
                Ok(()) => {
                    self.outbox.push((
                        ctrl.into(),
                        E2apPdu::RicSubscriptionResponse(RicSubscriptionResponse {
                            req_id: req.req_id,
                            ran_function: req.ran_function,
                            admitted: req.actions.iter().map(|a| a.id).collect(),
                            not_admitted: vec![],
                        }),
                    ));
                }
                Err(cause) => {
                    self.sub_index.remove(&(ctrl, req.req_id));
                    self.outbox.push((
                        ctrl.into(),
                        E2apPdu::RicSubscriptionFailure(RicSubscriptionFailure {
                            req_id: req.req_id,
                            ran_function: req.ran_function,
                            cause,
                        }),
                    ));
                }
            }
            return;
        }
        let action = req.actions.first().map(|a| a.id).unwrap_or_default();
        let sub = SubscriptionInfo {
            ctrl,
            req_id: req.req_id,
            ran_function: req.ran_function,
            action,
            trigger: req.event_trigger.clone(),
        };
        let mut ctx =
            AgentCtx { now_ms: self.now_ms, outbox: &mut self.outbox, assoc: &self.assoc };
        match self.functions[fidx].on_subscription(&mut ctx, &sub, &req) {
            Ok(()) => {
                self.sub_index.insert((ctrl, req.req_id), fidx);
                self.outbox.push((
                    ctrl.into(),
                    E2apPdu::RicSubscriptionResponse(RicSubscriptionResponse {
                        req_id: req.req_id,
                        ran_function: req.ran_function,
                        admitted: req.actions.iter().map(|a| a.id).collect(),
                        not_admitted: vec![],
                    }),
                ));
            }
            Err(cause) => {
                self.outbox.push((
                    ctrl.into(),
                    E2apPdu::RicSubscriptionFailure(RicSubscriptionFailure {
                        req_id: req.req_id,
                        ran_function: req.ran_function,
                        cause,
                    }),
                ));
            }
        }
    }

    fn handle_subscription_delete(&mut self, ctrl: CtrlId, req: RicSubscriptionDeleteRequest) {
        match self.sub_index.remove(&(ctrl, req.req_id)) {
            Some(fidx) => {
                let mut ctx =
                    AgentCtx { now_ms: self.now_ms, outbox: &mut self.outbox, assoc: &self.assoc };
                self.functions[fidx].on_subscription_delete(&mut ctx, ctrl, req.req_id);
                self.outbox.push((
                    ctrl.into(),
                    E2apPdu::RicSubscriptionDeleteResponse(RicSubscriptionDeleteResponse {
                        req_id: req.req_id,
                        ran_function: req.ran_function,
                    }),
                ));
            }
            None => {
                self.outbox.push((
                    ctrl.into(),
                    E2apPdu::RicSubscriptionDeleteFailure(RicSubscriptionDeleteFailure {
                        req_id: req.req_id,
                        ran_function: req.ran_function,
                        cause: Cause::Ric(RicCause::RequestIdUnknown),
                    }),
                ));
            }
        }
    }

    fn handle_control(&mut self, ctrl: CtrlId, req: RicControlRequest) {
        let Some(fidx) = self.find_fn(req.ran_function) else {
            self.outbox.push((
                ctrl.into(),
                E2apPdu::RicControlFailure(RicControlFailure {
                    req_id: req.req_id,
                    ran_function: req.ran_function,
                    call_process_id: req.call_process_id.clone(),
                    cause: Cause::Ric(RicCause::RanFunctionIdInvalid),
                    outcome: None,
                }),
            ));
            return;
        };
        let mut ctx =
            AgentCtx { now_ms: self.now_ms, outbox: &mut self.outbox, assoc: &self.assoc };
        let result = self.functions[fidx].on_control(&mut ctx, ctrl, &req);
        match result {
            Ok(outcome) => {
                if matches!(req.ack_request, Some(ControlAckRequest::Ack)) || outcome.is_some() {
                    self.outbox.push((
                        ctrl.into(),
                        E2apPdu::RicControlAcknowledge(RicControlAcknowledge {
                            req_id: req.req_id,
                            ran_function: req.ran_function,
                            call_process_id: req.call_process_id,
                            outcome,
                        }),
                    ));
                }
            }
            Err(cause) => {
                if !matches!(req.ack_request, Some(ControlAckRequest::NoAck)) {
                    self.outbox.push((
                        ctrl.into(),
                        E2apPdu::RicControlFailure(RicControlFailure {
                            req_id: req.req_id,
                            ran_function: req.ran_function,
                            call_process_id: req.call_process_id,
                            cause,
                            outcome: None,
                        }),
                    ));
                }
            }
        }
    }

    fn flush(&mut self) {
        let m = obs();
        let indications: u64 = self
            .outbox
            .iter()
            .filter(|(_, pdu)| matches!(pdu, E2apPdu::RicIndication(_)))
            .map(|(targets, _)| {
                targets
                    .as_slice()
                    .iter()
                    .filter(|&&c| self.conns.get(c).is_some_and(|conn| conn.alive))
                    .count() as u64
            })
            .sum();
        m.indications_sent.add(indications);
        // Encode each queued PDU exactly once into the reusable scratch
        // buffer and share the frozen frame across its targets.
        let Agent { conns, stats, outbox, scratch, cfg, .. } = self;
        scratch::flush_outbox(scratch, cfg.codec, outbox, |ctrl, msg| {
            let Some(conn) = conns.get(ctrl) else { return };
            if !conn.alive {
                return;
            }
            stats.tx_msgs += 1;
            stats.tx_bytes += msg.payload.len() as u64;
            m.tx_msgs.inc();
            m.tx_bytes.add(msg.payload.len() as u64);
            let _ = conn.tx.send(msg);
        });
        m.active_subs.set(self.sub_index.len() as i64);
        m.controllers.set(self.stats.controllers as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ue_assoc_defaults_to_first_controller() {
        let mut assoc = UeAssoc::default();
        assert!(assoc.exposed(0, 0x4601));
        assert!(!assoc.exposed(1, 0x4601));
        assoc.associate(0x4601, 1);
        assert!(assoc.exposed(1, 0x4601));
        assert!(!assoc.exposed(2, 0x4601));
        assoc.disassociate(0x4601, 1);
        assert!(!assoc.exposed(1, 0x4601));
        assert!(assoc.exposed(0, 0x4601), "first controller always sees UEs");
    }

    #[test]
    fn periodic_subs_admit_and_fire() {
        let mut subs = PeriodicSubs::new();
        let trigger = ReportTrigger::every_ms(10).encode(SmCodec::Flatb);
        let sub = SubscriptionInfo {
            ctrl: 0,
            req_id: RicRequestId::new(1, 1),
            ran_function: RanFunctionId::new(142),
            action: RicActionId(0),
            trigger: Bytes::from(trigger),
        };
        subs.admit(&sub, SmCodec::Flatb, 0).unwrap();
        assert_eq!(subs.len(), 1);
        // Duplicate rejected.
        assert_eq!(subs.admit(&sub, SmCodec::Flatb, 0), Err(Cause::Ric(RicCause::DuplicateAction)));
        // Fires at 0, re-arms for 10.
        let mut fired = 0;
        subs.for_due(0, |_, _| fired += 1);
        assert_eq!(fired, 1);
        subs.for_due(5, |_, _| fired += 1);
        assert_eq!(fired, 1, "not due yet");
        subs.for_due(10, |_, _| fired += 1);
        assert_eq!(fired, 2);
        assert!(subs.remove(0, RicRequestId::new(1, 1)));
        assert!(!subs.remove(0, RicRequestId::new(1, 1)));
        assert!(subs.is_empty());
    }

    #[test]
    fn periodic_subs_reject_bad_trigger() {
        let mut subs = PeriodicSubs::new();
        let sub = SubscriptionInfo {
            ctrl: 0,
            req_id: RicRequestId::new(1, 2),
            ran_function: RanFunctionId::new(142),
            action: RicActionId(0),
            trigger: Bytes::from_static(b"\xFF\xFF"),
        };
        assert_eq!(
            subs.admit(&sub, SmCodec::Flatb, 0),
            Err(Cause::Ric(RicCause::UnsupportedEventTrigger))
        );
    }

    #[test]
    fn periodic_subs_remove_ctrl() {
        let mut subs = PeriodicSubs::new();
        let trigger = Bytes::from(ReportTrigger::every_ms(1).encode(SmCodec::Asn1Per));
        for ctrl in 0..3 {
            let sub = SubscriptionInfo {
                ctrl,
                req_id: RicRequestId::new(1, ctrl as u16),
                ran_function: RanFunctionId::new(142),
                action: RicActionId(0),
                trigger: trigger.clone(),
            };
            subs.admit(&sub, SmCodec::Asn1Per, 0).unwrap();
        }
        subs.remove_ctrl(1);
        assert_eq!(subs.len(), 2);
    }
}
