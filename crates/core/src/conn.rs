//! Connection plumbing shared by the agent and server runtimes: the
//! batching writer task, optionally routed through a fault injector.
//!
//! Both event loops used to carry their own copy of this task; it lives
//! here once, next to the procedure-endpoint layer the loops also share.
//!
//! The writer queues [`WireMsg`]s (not bare frames), so the stream id —
//! stream 0 for global/control procedures, nonzero for bulk indications —
//! survives to the wire, and a drained batch is re-ordered so control
//! frames overtake queued bulk traffic: a subscription or control
//! procedure is never stuck behind thousands of coalesced indications.
//! The reorder is a stable partition, so per-stream ordering (the SCTP
//! guarantee E2AP relies on) is preserved within each class.

use tokio::sync::mpsc;

use flexric_transport::fault::{FaultHandle, FaultySender};
use flexric_transport::{SendHalf, WireMsg};

/// A send half, optionally wrapped in a shared fault injector.
enum WireSender {
    Plain(SendHalf),
    Faulty(FaultySender),
}

impl WireSender {
    fn new(half: SendHalf, fault: Option<FaultHandle>) -> Self {
        match fault {
            Some(h) => WireSender::Faulty(FaultySender::with_handle(half, h)),
            None => WireSender::Plain(half),
        }
    }

    async fn send_batch(&mut self, batch: Vec<WireMsg>) -> std::io::Result<()> {
        match self {
            WireSender::Plain(s) => s.send_batch(batch).await,
            WireSender::Faulty(s) => s.send_batch(batch).await,
        }
    }
}

/// Control frames that jumped ahead of queued bulk frames in a writer
/// batch — visibility into the priority mechanism under load.
fn promotions() -> &'static flexric_obs::Counter {
    static C: std::sync::OnceLock<flexric_obs::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| {
        flexric_obs::counter(
            "flexric_conn_control_promotions_total",
            "control frames reordered ahead of queued bulk frames",
        )
    })
}

/// Moves control-stream frames ahead of bulk frames, preserving relative
/// order within each class.  Returns how many control frames actually
/// overtook at least one bulk frame.
fn prioritize(batch: &mut [WireMsg]) -> u64 {
    let mut bulk_seen = 0u64;
    let mut promoted = 0u64;
    for m in batch.iter() {
        if m.is_control() {
            if bulk_seen > 0 {
                promoted += 1;
            }
        } else {
            bulk_seen += 1;
        }
    }
    if promoted > 0 {
        batch.sort_by_key(|m| !m.is_control());
    }
    promoted
}

/// Spawns the writer task for one connection: messages queued on the
/// returned channel are coalesced (up to 64 per flush), control frames are
/// promoted ahead of bulk, and the batch goes out as one vectored write.
/// The task ends when the channel closes or the transport errors; dropping
/// the sender is how a runtime degrades a connection.
pub(crate) fn spawn_writer(
    half: SendHalf,
    fault: Option<FaultHandle>,
) -> mpsc::UnboundedSender<WireMsg> {
    let (out_tx, mut out_rx) = mpsc::unbounded_channel::<WireMsg>();
    tokio::spawn(async move {
        let mut sender = WireSender::new(half, fault);
        let mut batch = Vec::with_capacity(8);
        while let Some(msg) = out_rx.recv().await {
            batch.push(msg);
            // Coalesce everything already queued into one flush.
            while batch.len() < 64 {
                match out_rx.try_recv() {
                    Ok(msg) => batch.push(msg),
                    Err(_) => break,
                }
            }
            let promoted = prioritize(&mut batch);
            if promoted > 0 {
                promotions().add(promoted);
            }
            if sender.send_batch(std::mem::take(&mut batch)).await.is_err() {
                break;
            }
        }
    });
    out_tx
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn msg(stream: u16, tag: u8) -> WireMsg {
        WireMsg::e2ap_on(stream, Bytes::from(vec![tag]))
    }

    #[test]
    fn control_overtakes_bulk_but_order_within_class_holds() {
        let mut batch = vec![msg(1, 0), msg(1, 1), msg(0, 2), msg(1, 3), msg(0, 4), msg(1, 5)];
        let promoted = prioritize(&mut batch);
        assert_eq!(promoted, 2, "both control frames had bulk queued ahead");
        let streams: Vec<u16> = batch.iter().map(|m| m.stream).collect();
        assert_eq!(streams, [0, 0, 1, 1, 1, 1]);
        let tags: Vec<u8> = batch.iter().map(|m| m.payload[0]).collect();
        assert_eq!(tags, [2, 4, 0, 1, 3, 5], "stable within each class");
    }

    #[test]
    fn all_control_or_all_bulk_is_untouched() {
        let mut ctl = vec![msg(0, 0), msg(0, 1)];
        assert_eq!(prioritize(&mut ctl), 0);
        assert_eq!(ctl.iter().map(|m| m.payload[0]).collect::<Vec<_>>(), [0, 1]);

        let mut bulk = vec![msg(1, 0), msg(2, 1), msg(1, 2)];
        assert_eq!(prioritize(&mut bulk), 0);
        assert_eq!(bulk.iter().map(|m| m.payload[0]).collect::<Vec<_>>(), [0, 1, 2]);
    }

    #[test]
    fn control_already_first_needs_no_promotion() {
        let mut batch = vec![msg(0, 0), msg(1, 1), msg(1, 2)];
        assert_eq!(prioritize(&mut batch), 0);
        assert_eq!(batch.iter().map(|m| m.payload[0]).collect::<Vec<_>>(), [0, 1, 2]);
    }
}
