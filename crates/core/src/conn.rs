//! Connection plumbing shared by the agent and server runtimes: the
//! batching writer task, optionally routed through a fault injector.
//!
//! Both event loops used to carry their own copy of this task; it lives
//! here once, next to the procedure-endpoint layer the loops also share.

use bytes::Bytes;
use tokio::sync::mpsc;

use flexric_transport::fault::{FaultHandle, FaultySender};
use flexric_transport::{SendHalf, WireMsg};

/// A send half, optionally wrapped in a shared fault injector.
enum WireSender {
    Plain(SendHalf),
    Faulty(FaultySender),
}

impl WireSender {
    fn new(half: SendHalf, fault: Option<FaultHandle>) -> Self {
        match fault {
            Some(h) => WireSender::Faulty(FaultySender::with_handle(half, h)),
            None => WireSender::Plain(half),
        }
    }

    async fn send_batch(&mut self, batch: Vec<WireMsg>) -> std::io::Result<()> {
        match self {
            WireSender::Plain(s) => s.send_batch(batch).await,
            WireSender::Faulty(s) => s.send_batch(batch).await,
        }
    }
}

/// Spawns the writer task for one connection: frames queued on the
/// returned channel are coalesced (up to 64 per flush) into batched
/// vectored writes.  The task ends when the channel closes or the
/// transport errors; dropping the sender is how a runtime degrades a
/// connection.
pub(crate) fn spawn_writer(
    half: SendHalf,
    fault: Option<FaultHandle>,
) -> mpsc::UnboundedSender<Bytes> {
    let (out_tx, mut out_rx) = mpsc::unbounded_channel::<Bytes>();
    tokio::spawn(async move {
        let mut sender = WireSender::new(half, fault);
        let mut batch = Vec::with_capacity(8);
        while let Some(buf) = out_rx.recv().await {
            batch.push(WireMsg::e2ap(buf));
            // Coalesce everything already queued into one flush.
            while batch.len() < 64 {
                match out_rx.try_recv() {
                    Ok(buf) => batch.push(WireMsg::e2ap(buf)),
                    Err(_) => break,
                }
            }
            if sender.send_batch(std::mem::take(&mut batch)).await.is_err() {
                break;
            }
        }
    });
    out_tx
}
