//! End-to-end tests of the SDK: agent ↔ server over the in-memory and TCP
//! transports, covering setup, subscription, indication, control,
//! multi-controller operation, and CU/DU merging.

use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;

use flexric::agent::{
    Agent, AgentConfig, AgentCtx, CtrlId, PeriodicSubs, RanFunction, SubscriptionInfo,
};
use flexric::server::{
    AgentId, AgentInfo, IApp, IndicationRef, Server, ServerApi, ServerConfig, ServerEvent,
    SubOutcome,
};
use flexric_codec::E2apCodec;
use flexric_e2ap::*;
use flexric_sm::{hw::HwPing, ReportTrigger, SmCodec, SmPayload};
use flexric_transport::TransportAddr;

fn node(node_type: E2NodeType, id: u64) -> GlobalE2NodeId {
    GlobalE2NodeId::new(Plmn::TEST, node_type, id)
}

fn ric() -> GlobalRicId {
    GlobalRicId::new(Plmn::TEST, 1)
}

// ---------------------------------------------------------------------------
// Test RAN function: periodic counter reports + echo control
// ---------------------------------------------------------------------------

struct CounterFn {
    subs: PeriodicSubs,
    sm_codec: SmCodec,
    counter: u32,
    ctrl_log: Arc<Mutex<Vec<(CtrlId, Vec<u8>)>>>,
}

impl CounterFn {
    fn new(sm_codec: SmCodec) -> Self {
        // The server negotiates advertised SMs against the global registry,
        // so the test SM registers like any third-party plugin (idempotent;
        // duplicate registrations across tests are ignored).
        let _ = flexric_sm::registry::global().register(
            flexric_sm::SmDescriptor::new(
                7,
                "test.counter",
                flexric_sm::SmVersion::V1,
                flexric_sm::RanFuncDef::simple("COUNTER", "e2e test counter SM"),
            )
            .trigger::<ReportTrigger>()
            .indication::<HwPing>(),
        );
        CounterFn {
            subs: PeriodicSubs::new(),
            sm_codec,
            counter: 0,
            ctrl_log: Arc::new(Mutex::new(Vec::new())),
        }
    }
}

impl RanFunction for CounterFn {
    fn id(&self) -> RanFunctionId {
        RanFunctionId::new(7)
    }
    fn oid(&self) -> String {
        "test.counter".into()
    }
    fn definition(&self) -> Bytes {
        Bytes::from_static(b"counter-def")
    }
    fn on_subscription(
        &mut self,
        ctx: &mut AgentCtx,
        sub: &SubscriptionInfo,
        _req: &RicSubscriptionRequest,
    ) -> Result<(), Cause> {
        self.subs.admit(sub, self.sm_codec, ctx.now_ms)
    }
    fn on_subscription_delete(&mut self, _ctx: &mut AgentCtx, ctrl: CtrlId, req_id: RicRequestId) {
        self.subs.remove(ctrl, req_id);
    }
    fn on_control(
        &mut self,
        _ctx: &mut AgentCtx,
        ctrl: CtrlId,
        req: &RicControlRequest,
    ) -> Result<Option<Bytes>, Cause> {
        if req.message.as_ref() == b"fail" {
            return Err(Cause::Ric(RicCause::ControlMessageInvalid));
        }
        self.ctrl_log.lock().push((ctrl, req.message.to_vec()));
        Ok(Some(Bytes::from(format!("echo:{}", String::from_utf8_lossy(&req.message)))))
    }
    fn on_tick(&mut self, ctx: &mut AgentCtx) {
        let counter = &mut self.counter;
        let now = ctx.now_ms;
        let mut due: Vec<SubscriptionInfo> = Vec::new();
        self.subs.for_due(now, |sub, _| due.push(sub.clone()));
        for sub in due {
            *counter += 1;
            let ping = HwPing { seq: *counter, tstamp_ns: now * 1_000_000, payload: Bytes::new() };
            let msg = Bytes::from(ping.encode(self.sm_codec));
            ctx.send_indication(&sub, Some(*counter), Bytes::new(), msg);
        }
    }
}

// ---------------------------------------------------------------------------
// Test iApp: subscribes on connect, records everything
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Recorded {
    connected: Vec<GlobalE2NodeId>,
    formed: Vec<(Plmn, u64)>,
    admitted: u64,
    failed: u64,
    indications: Vec<(AgentId, u32)>,
    ctrl_acks: Vec<String>,
    ctrl_fails: u64,
    disconnects: u64,
}

struct TestApp {
    sm_codec: SmCodec,
    period_ms: u32,
    state: Arc<Mutex<Recorded>>,
    ind_count: Arc<AtomicU64>,
}

enum AppCmd {
    SendControl(AgentId, Vec<u8>),
}

impl IApp for TestApp {
    fn name(&self) -> &str {
        "test-app"
    }

    fn on_agent_connected(&mut self, api: &mut ServerApi, agent: &AgentInfo) {
        self.state.lock().connected.push(agent.node);
        if agent.function_by_oid("test.counter").is_some() {
            let trigger =
                Bytes::from(ReportTrigger::every_ms(self.period_ms).encode(self.sm_codec));
            api.subscribe_report(agent.id, RanFunctionId::new(7), trigger);
        }
    }

    fn on_agent_disconnected(&mut self, _api: &mut ServerApi, _agent: AgentId) {
        self.state.lock().disconnects += 1;
    }

    fn on_ran_formed(&mut self, _api: &mut ServerApi, ran: &flexric::server::RanEntity) {
        self.state.lock().formed.push(ran.key);
    }

    fn on_subscription_outcome(&mut self, _api: &mut ServerApi, _agent: AgentId, out: &SubOutcome) {
        match out {
            SubOutcome::Admitted(_) => self.state.lock().admitted += 1,
            SubOutcome::Failed(_)
            | SubOutcome::TimedOut { .. }
            | SubOutcome::ConnectionLost { .. } => self.state.lock().failed += 1,
        }
    }

    fn on_indication(&mut self, _api: &mut ServerApi, agent: AgentId, ind: &IndicationRef) {
        let (_, msg) = ind.sm_payload().expect("payload");
        let ping = HwPing::decode(self.sm_codec, msg).expect("hw decode");
        self.state.lock().indications.push((agent, ping.seq));
        self.ind_count.fetch_add(1, Ordering::Relaxed);
    }

    fn on_control_outcome(
        &mut self,
        _api: &mut ServerApi,
        _agent: AgentId,
        out: &flexric::server::CtrlOutcome,
    ) {
        match out {
            flexric::server::CtrlOutcome::Ack(ack) => {
                let s = ack.outcome.as_ref().map(|o| String::from_utf8_lossy(o).to_string());
                self.state.lock().ctrl_acks.push(s.unwrap_or_default());
            }
            flexric::server::CtrlOutcome::Failed(_)
            | flexric::server::CtrlOutcome::TimedOut { .. }
            | flexric::server::CtrlOutcome::ConnectionLost { .. } => {
                self.state.lock().ctrl_fails += 1
            }
        }
    }

    fn on_custom(&mut self, api: &mut ServerApi, msg: Box<dyn Any + Send>) {
        if let Ok(cmd) = msg.downcast::<AppCmd>() {
            match *cmd {
                AppCmd::SendControl(agent, payload) => {
                    api.control(
                        agent,
                        RanFunctionId::new(7),
                        Bytes::new(),
                        Bytes::from(payload),
                        Some(ControlAckRequest::Ack),
                    );
                }
            }
        }
    }
}

async fn wait_until(mut cond: impl FnMut() -> bool, what: &str) {
    for _ in 0..500 {
        if cond() {
            return;
        }
        tokio::time::sleep(Duration::from_millis(10)).await;
    }
    panic!("timeout waiting for {what}");
}

async fn run_full_flow(codec: E2apCodec, sm_codec: SmCodec, addr: TransportAddr) {
    let state = Arc::new(Mutex::new(Recorded::default()));
    let ind_count = Arc::new(AtomicU64::new(0));
    let app =
        TestApp { sm_codec, period_ms: 1, state: state.clone(), ind_count: ind_count.clone() };

    let mut cfg = ServerConfig::new(ric(), addr);
    cfg.codec = codec;
    cfg.tick_ms = Some(5);
    let server = Server::spawn(cfg, vec![Box::new(app)]).await.expect("server");
    let server_addr = server.addrs[0].clone();

    let counter = CounterFn::new(sm_codec);
    let ctrl_log = counter.ctrl_log.clone();
    let mut acfg = AgentConfig::new(node(E2NodeType::Gnb, 1), server_addr);
    acfg.codec = codec;
    acfg.tick_ms = Some(1);
    let agent = Agent::spawn(acfg, vec![Box::new(counter)]).await.expect("agent");

    // Subscription admitted and indications flowing.
    wait_until(|| state.lock().admitted == 1, "subscription admitted").await;
    wait_until(|| ind_count.load(Ordering::Relaxed) >= 20, "20 indications").await;
    {
        let st = state.lock();
        assert_eq!(st.connected, vec![node(E2NodeType::Gnb, 1)]);
        assert_eq!(st.formed, vec![(Plmn::TEST, 1)]);
        assert_eq!(st.failed, 0);
        // Sequence numbers are monotonically increasing per agent.
        let seqs: Vec<u32> = st.indications.iter().map(|(_, s)| *s).collect();
        assert!(seqs.windows(2).all(|w| w[1] > w[0]), "monotonic seqs: {seqs:?}");
    }

    // Control round-trip through the iApp.
    server.to_iapp("test-app", Box::new(AppCmd::SendControl(0, b"hello".to_vec())));
    wait_until(|| state.lock().ctrl_acks.len() == 1, "control ack").await;
    assert_eq!(state.lock().ctrl_acks[0], "echo:hello");
    assert_eq!(ctrl_log.lock().len(), 1);

    // Failing control produces a failure outcome.
    server.to_iapp("test-app", Box::new(AppCmd::SendControl(0, b"fail".to_vec())));
    wait_until(|| state.lock().ctrl_fails == 1, "control failure").await;

    // Agent stats are sane.
    let astats = agent.stats().await.unwrap();
    assert!(astats.tx_msgs > 20);
    assert_eq!(astats.active_subs, 1);
    assert_eq!(astats.controllers, 1);

    // Server stats are sane.
    let sstats = server.stats().await.unwrap();
    assert!(sstats.rx_msgs > 20);
    assert_eq!(sstats.agents, 1);
    assert_eq!(sstats.subs, 1);

    // Teardown: stopping the agent disconnects it at the server.
    agent.stop();
    wait_until(|| state.lock().disconnects == 1, "disconnect").await;
    server.stop();
}

#[tokio::test]
async fn full_flow_mem_fb() {
    run_full_flow(E2apCodec::Flatb, SmCodec::Flatb, TransportAddr::Mem("e2e-fb".into())).await;
}

#[tokio::test]
async fn full_flow_mem_asn() {
    run_full_flow(E2apCodec::Asn1Per, SmCodec::Asn1Per, TransportAddr::Mem("e2e-asn".into())).await;
}

#[tokio::test]
async fn full_flow_tcp_mixed_encodings() {
    // E2AP in FB, SM in ASN.1 — one of the paper's "mixed" combinations.
    run_full_flow(E2apCodec::Flatb, SmCodec::Asn1Per, TransportAddr::parse("127.0.0.1:0").unwrap())
        .await;
}

#[tokio::test]
async fn cu_du_merge_forms_ran() {
    let state = Arc::new(Mutex::new(Recorded::default()));
    let app = TestApp {
        sm_codec: SmCodec::Flatb,
        period_ms: 1000,
        state: state.clone(),
        ind_count: Arc::new(AtomicU64::new(0)),
    };
    let mut cfg = ServerConfig::new(ric(), TransportAddr::Mem("e2e-cudu".into()));
    cfg.tick_ms = None;
    let server = Server::spawn(cfg, vec![Box::new(app)]).await.unwrap();
    let addr = server.addrs[0].clone();

    let mut events = server.events();

    let mut acfg = AgentConfig::new(node(E2NodeType::GnbCu, 9), addr.clone());
    acfg.tick_ms = None;
    let _cu = Agent::spawn(acfg, vec![Box::new(CounterFn::new(SmCodec::Flatb))]).await.unwrap();
    wait_until(|| state.lock().connected.len() == 1, "CU connected").await;
    assert!(state.lock().formed.is_empty(), "CU alone does not form a RAN");

    let mut acfg = AgentConfig::new(node(E2NodeType::GnbDu, 9), addr);
    acfg.tick_ms = None;
    let _du = Agent::spawn(acfg, vec![Box::new(CounterFn::new(SmCodec::Flatb))]).await.unwrap();
    wait_until(|| state.lock().formed.len() == 1, "RAN formed").await;
    assert_eq!(state.lock().formed[0], (Plmn::TEST, 9));

    // The broadcast event stream saw the same story.
    let mut saw_formed = false;
    while let Ok(ev) = events.try_recv() {
        if matches!(ev, ServerEvent::RanFormed(_)) {
            saw_formed = true;
        }
    }
    assert!(saw_formed, "RanFormed published on event stream");
    server.stop();
}

#[tokio::test]
async fn multi_controller_agent_serves_both() {
    // Two controllers; the agent connects to both and serves independent
    // subscriptions (paper §4.1.2).
    let mk_server = |name: &str| {
        let state = Arc::new(Mutex::new(Recorded::default()));
        let ind_count = Arc::new(AtomicU64::new(0));
        let app = TestApp {
            sm_codec: SmCodec::Flatb,
            period_ms: 1,
            state: state.clone(),
            ind_count: ind_count.clone(),
        };
        let mut cfg = ServerConfig::new(ric(), TransportAddr::Mem(name.into()));
        cfg.tick_ms = Some(5);
        (cfg, app, state, ind_count)
    };
    let (cfg1, app1, _state1, count1) = mk_server("e2e-mc-1");
    let (cfg2, app2, _state2, count2) = mk_server("e2e-mc-2");
    let s1 = Server::spawn(cfg1, vec![Box::new(app1)]).await.unwrap();
    let s2 = Server::spawn(cfg2, vec![Box::new(app2)]).await.unwrap();

    let mut acfg = AgentConfig::new(node(E2NodeType::Gnb, 3), s1.addrs[0].clone());
    acfg.tick_ms = Some(1);
    let agent = Agent::spawn(acfg, vec![Box::new(CounterFn::new(SmCodec::Flatb))]).await.unwrap();

    let ctrl2 = agent.add_controller(s2.addrs[0].clone()).await.unwrap();
    assert_eq!(ctrl2, 1);

    wait_until(|| count1.load(Ordering::Relaxed) >= 10, "ctrl 1 indications").await;
    wait_until(|| count2.load(Ordering::Relaxed) >= 10, "ctrl 2 indications").await;

    let stats = agent.stats().await.unwrap();
    assert_eq!(stats.controllers, 2);
    assert_eq!(stats.active_subs, 2);

    agent.stop();
    s1.stop();
    s2.stop();
}

#[tokio::test]
async fn subscription_to_unknown_function_fails() {
    struct FailApp {
        state: Arc<Mutex<Recorded>>,
    }
    impl IApp for FailApp {
        fn name(&self) -> &str {
            "fail-app"
        }
        fn on_agent_connected(&mut self, api: &mut ServerApi, agent: &AgentInfo) {
            self.state.lock().connected.push(agent.node);
            // Function 999 does not exist at the agent.
            api.subscribe_report(agent.id, RanFunctionId::new(999), Bytes::new());
        }
        fn on_subscription_outcome(
            &mut self,
            _api: &mut ServerApi,
            _agent: AgentId,
            out: &SubOutcome,
        ) {
            match out {
                SubOutcome::Admitted(_) => self.state.lock().admitted += 1,
                SubOutcome::Failed(f) => {
                    assert_eq!(
                        f.cause,
                        Cause::Ric(RicCause::RanFunctionIdInvalid),
                        "expected invalid function cause"
                    );
                    self.state.lock().failed += 1;
                }
                SubOutcome::TimedOut { .. } | SubOutcome::ConnectionLost { .. } => {
                    panic!("unexpected endpoint terminal for rejected subscription")
                }
            }
        }
    }
    let state = Arc::new(Mutex::new(Recorded::default()));
    let mut cfg = ServerConfig::new(ric(), TransportAddr::Mem("e2e-subfail".into()));
    cfg.tick_ms = None;
    let server =
        Server::spawn(cfg, vec![Box::new(FailApp { state: state.clone() })]).await.unwrap();
    let mut acfg = AgentConfig::new(node(E2NodeType::Gnb, 4), server.addrs[0].clone());
    acfg.tick_ms = None;
    let agent = Agent::spawn(acfg, vec![Box::new(CounterFn::new(SmCodec::Flatb))]).await.unwrap();
    wait_until(|| state.lock().failed == 1, "subscription failure").await;
    assert_eq!(state.lock().admitted, 0);
    agent.stop();
    server.stop();
}

#[tokio::test]
async fn agent_rejects_connect_to_dead_controller() {
    let acfg = AgentConfig::new(
        node(E2NodeType::Gnb, 5),
        TransportAddr::Mem("nobody-listening-here".into()),
    );
    assert!(Agent::spawn(acfg, vec![]).await.is_err());
}
