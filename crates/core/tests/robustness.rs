//! Robustness tests for the shared procedure-endpoint layer: message loss
//! with deterministic fault injection, controller restarts, and agent
//! reconnects within the server's grace window.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;

use flexric::agent::{
    Agent, AgentConfig, AgentCtx, CtrlId, PeriodicSubs, RanFunction, SubscriptionInfo,
};
use flexric::server::{
    AgentId, AgentInfo, IApp, IndicationRef, Server, ServerApi, ServerConfig, ServerEvent,
    SubOutcome,
};
use flexric_e2ap::*;
use flexric_sm::{hw::HwPing, ReportTrigger, SmCodec};
use flexric_transport::fault::{FaultConfig, FaultHandle};
use flexric_transport::TransportAddr;

fn node(id: u64) -> GlobalE2NodeId {
    GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Gnb, id)
}

fn ric() -> GlobalRicId {
    GlobalRicId::new(Plmn::TEST, 1)
}

async fn wait_until(mut cond: impl FnMut() -> bool, what: &str) {
    for _ in 0..500 {
        if cond() {
            return;
        }
        tokio::time::sleep(Duration::from_millis(10)).await;
    }
    panic!("timeout waiting for {what}");
}

// ---------------------------------------------------------------------------
// Minimal periodic-report RAN function (id 7)
// ---------------------------------------------------------------------------

struct PingFn {
    subs: PeriodicSubs,
    sm_codec: SmCodec,
    seq: u32,
}

impl PingFn {
    fn new(sm_codec: SmCodec) -> Self {
        // Register the test SM so the server's setup negotiation accepts
        // it (idempotent across tests in this binary).
        let _ = flexric_sm::registry::global().register(
            flexric_sm::SmDescriptor::new(
                7,
                "test.ping",
                flexric_sm::SmVersion::V1,
                flexric_sm::RanFuncDef::simple("PING", "robustness test ping SM"),
            )
            .trigger::<ReportTrigger>()
            .indication::<HwPing>(),
        );
        PingFn { subs: PeriodicSubs::new(), sm_codec, seq: 0 }
    }
}

impl RanFunction for PingFn {
    fn id(&self) -> RanFunctionId {
        RanFunctionId::new(7)
    }
    fn oid(&self) -> String {
        "test.ping".into()
    }
    fn definition(&self) -> Bytes {
        Bytes::from_static(b"ping-def")
    }
    fn on_subscription(
        &mut self,
        ctx: &mut AgentCtx,
        sub: &SubscriptionInfo,
        _req: &RicSubscriptionRequest,
    ) -> Result<(), Cause> {
        self.subs.admit(sub, self.sm_codec, ctx.now_ms)
    }
    fn on_subscription_delete(&mut self, _ctx: &mut AgentCtx, ctrl: CtrlId, req_id: RicRequestId) {
        self.subs.remove(ctrl, req_id);
    }
    fn on_control(
        &mut self,
        _ctx: &mut AgentCtx,
        _ctrl: CtrlId,
        _req: &RicControlRequest,
    ) -> Result<Option<Bytes>, Cause> {
        Ok(None)
    }
    fn on_tick(&mut self, ctx: &mut AgentCtx) {
        let seq = &mut self.seq;
        let now = ctx.now_ms;
        let mut due: Vec<SubscriptionInfo> = Vec::new();
        self.subs.for_due(now, |sub, _| due.push(sub.clone()));
        for sub in due {
            *seq += 1;
            let ping = HwPing { seq: *seq, tstamp_ns: now * 1_000_000, payload: Bytes::new() };
            let msg = Bytes::from(ping.encode(self.sm_codec));
            ctx.send_indication(&sub, Some(*seq), Bytes::new(), msg);
        }
    }
}

// ---------------------------------------------------------------------------
// Recording iApp
// ---------------------------------------------------------------------------

#[derive(Default)]
struct RobState {
    connected: u64,
    reconnected: u64,
    admitted: u64,
    failed: u64,
    timed_out: u64,
    lost: u64,
    last_agent: Option<AgentId>,
    /// Which shard each agent's callbacks ran on (0 on a 1-shard server).
    shard_of: std::collections::HashMap<AgentId, usize>,
}

struct RobApp {
    sm_codec: SmCodec,
    period_ms: u32,
    auto_subscribe: bool,
    state: Arc<Mutex<RobState>>,
    ind_count: Arc<AtomicU64>,
}

enum RobCmd {
    Subscribe(AgentId),
    /// One PDU to many agents — exercises the cross-shard fan-out.
    SendMulti(Vec<AgentId>),
}

impl RobApp {
    fn subscribe(&self, api: &mut ServerApi, agent: AgentId) {
        let trigger = Bytes::from(ReportTrigger::every_ms(self.period_ms).encode(self.sm_codec));
        api.subscribe_report(agent, RanFunctionId::new(7), trigger);
    }
}

impl IApp for RobApp {
    fn name(&self) -> &str {
        "rob-app"
    }

    fn on_agent_connected(&mut self, api: &mut ServerApi, agent: &AgentInfo) {
        {
            let mut st = self.state.lock();
            st.connected += 1;
            st.last_agent = Some(agent.id);
            st.shard_of.insert(agent.id, api.shard());
        }
        if self.auto_subscribe {
            self.subscribe(api, agent.id);
        }
    }

    fn on_agent_reconnected(&mut self, api: &mut ServerApi, agent: &AgentInfo) {
        let mut st = self.state.lock();
        st.reconnected += 1;
        st.last_agent = Some(agent.id);
        st.shard_of.insert(agent.id, api.shard());
    }

    fn on_subscription_outcome(&mut self, _api: &mut ServerApi, _agent: AgentId, out: &SubOutcome) {
        let mut st = self.state.lock();
        match out {
            SubOutcome::Admitted(_) => st.admitted += 1,
            SubOutcome::Failed(_) => st.failed += 1,
            SubOutcome::TimedOut { .. } => st.timed_out += 1,
            SubOutcome::ConnectionLost { .. } => st.lost += 1,
        }
    }

    fn on_indication(&mut self, _api: &mut ServerApi, _agent: AgentId, _ind: &IndicationRef) {
        self.ind_count.fetch_add(1, Ordering::Relaxed);
    }

    fn on_custom(&mut self, api: &mut ServerApi, msg: Box<dyn std::any::Any + Send>) {
        if let Ok(cmd) = msg.downcast::<RobCmd>() {
            match *cmd {
                RobCmd::Subscribe(agent) => self.subscribe(api, agent),
                RobCmd::SendMulti(agents) => api.send_pdu_multi(
                    agents,
                    E2apPdu::ErrorIndication(ErrorIndication {
                        req_id: None,
                        ran_function: None,
                        cause: None,
                    }),
                ),
            }
        }
    }
}

fn mk_app(auto_subscribe: bool, period_ms: u32) -> (RobApp, Arc<Mutex<RobState>>, Arc<AtomicU64>) {
    let state = Arc::new(Mutex::new(RobState::default()));
    let ind_count = Arc::new(AtomicU64::new(0));
    let app = RobApp {
        sm_codec: SmCodec::Flatb,
        period_ms,
        auto_subscribe,
        state: state.clone(),
        ind_count: ind_count.clone(),
    };
    (app, state, ind_count)
}

// ---------------------------------------------------------------------------
// 1. A lost RIC Subscription Request is retransmitted until admitted.
// ---------------------------------------------------------------------------

#[tokio::test]
async fn lost_subscription_request_is_retransmitted() {
    let fault = FaultHandle::new(FaultConfig::default());
    let (app, state, ind_count) = mk_app(false, 1);

    let mut cfg = ServerConfig::new(ric(), TransportAddr::Mem("rob-retry".into()));
    cfg.tick_ms = Some(5);
    cfg.fault = Some(fault.clone());
    let server = Server::spawn(cfg, vec![Box::new(app)]).await.expect("server");

    let mut acfg = AgentConfig::new(node(1), server.addrs[0].clone());
    acfg.tick_ms = Some(1);
    let agent = Agent::spawn(acfg, vec![Box::new(PingFn::new(SmCodec::Flatb))]).await.unwrap();

    wait_until(|| state.lock().connected == 1, "agent connected").await;
    let agent_id = state.lock().last_agent.unwrap();

    // Swallow the next outbound frame — the subscription request — then
    // ask the iApp to subscribe.
    fault.drop_next(1);
    server.to_iapp("rob-app", Box::new(RobCmd::Subscribe(agent_id)));

    // The endpoint layer retransmits after the subscription deadline and
    // the retry goes through.
    wait_until(|| state.lock().admitted == 1, "subscription admitted after retry").await;
    wait_until(|| ind_count.load(Ordering::Relaxed) >= 3, "indications flowing").await;

    assert_eq!(fault.stats().dropped, 1, "exactly the targeted frame was dropped");
    let stats = server.stats().await.unwrap();
    assert!(stats.retries >= 1, "expected at least one retransmission, got {}", stats.retries);
    assert_eq!(state.lock().timed_out, 0);
    assert_eq!(state.lock().failed, 0);

    agent.stop();
    server.stop();
}

// ---------------------------------------------------------------------------
// 2. Controller restart: the agent's supervisor redials and the restarted
//    controller's iApps resubscribe — indications resume.
// ---------------------------------------------------------------------------

#[tokio::test]
async fn controller_restart_agent_reconnects_and_resubscribes() {
    let (app_a, state_a, ind_a) = mk_app(true, 1);
    let mut cfg = ServerConfig::new(ric(), TransportAddr::Mem("rob-restart".into()));
    cfg.tick_ms = Some(5);
    let server_a = Server::spawn(cfg, vec![Box::new(app_a)]).await.expect("server A");
    let addr = server_a.addrs[0].clone();

    let mut acfg = AgentConfig::new(node(2), addr.clone());
    acfg.tick_ms = Some(1);
    let agent = Agent::spawn(acfg, vec![Box::new(PingFn::new(SmCodec::Flatb))]).await.unwrap();

    wait_until(|| state_a.lock().admitted == 1, "initial subscription").await;
    wait_until(|| ind_a.load(Ordering::Relaxed) >= 5, "initial indications").await;

    // Kill the controller; the agent's supervisor starts redialing.
    server_a.stop();

    // A new controller comes up on the same address.  The old listener is
    // torn down asynchronously, so retry the bind until it frees up.
    let state_b = Arc::new(Mutex::new(RobState::default()));
    let ind_b = Arc::new(AtomicU64::new(0));
    let mut server_b = None;
    for _ in 0..200 {
        let app_b = RobApp {
            sm_codec: SmCodec::Flatb,
            period_ms: 1,
            auto_subscribe: true,
            state: state_b.clone(),
            ind_count: ind_b.clone(),
        };
        let mut cfg = ServerConfig::new(ric(), addr.clone());
        cfg.tick_ms = Some(5);
        match Server::spawn(cfg, vec![Box::new(app_b)]).await {
            Ok(s) => {
                server_b = Some(s);
                break;
            }
            Err(_) => tokio::time::sleep(Duration::from_millis(10)).await,
        }
    }
    let server_b = server_b.expect("server B bound the freed address");

    // The agent reconnects, the new controller subscribes afresh, and
    // indications resume.
    wait_until(|| state_b.lock().admitted == 1, "resubscribed after restart").await;
    wait_until(|| ind_b.load(Ordering::Relaxed) >= 5, "indications after restart").await;

    let astats = agent.stats().await.unwrap();
    assert!(astats.reconnects >= 1, "supervisor reconnected, got {}", astats.reconnects);
    assert_eq!(astats.controllers, 1);
    assert_eq!(astats.active_subs, 1);

    agent.stop();
    server_b.stop();
}

// ---------------------------------------------------------------------------
// 3. Agent drop + return within the grace window: same AgentId, the
//    server replays the subscription intent, AgentReconnected fires.
// ---------------------------------------------------------------------------

#[tokio::test]
async fn agent_reconnect_within_grace_replays_subscriptions() {
    let (app, state, ind_count) = mk_app(true, 1);
    let mut cfg = ServerConfig::new(ric(), TransportAddr::Mem("rob-grace".into()));
    cfg.tick_ms = Some(5);
    cfg.reconnect_grace_ms = 2_000;
    let server = Server::spawn(cfg, vec![Box::new(app)]).await.expect("server");
    let addr = server.addrs[0].clone();
    let mut events = server.events();

    let mut acfg = AgentConfig::new(node(42), addr.clone());
    acfg.tick_ms = Some(1);
    let first = Agent::spawn(acfg, vec![Box::new(PingFn::new(SmCodec::Flatb))]).await.unwrap();

    wait_until(|| state.lock().admitted == 1, "initial subscription").await;
    let first_id = state.lock().last_agent.unwrap();
    first.stop();

    // Same E2 node returns within the grace window.
    let mut acfg = AgentConfig::new(node(42), addr);
    acfg.tick_ms = Some(1);
    let second = Agent::spawn(acfg, vec![Box::new(PingFn::new(SmCodec::Flatb))]).await.unwrap();

    wait_until(|| state.lock().reconnected == 1, "reconnect detected").await;
    assert_eq!(state.lock().last_agent, Some(first_id), "agent kept its id");
    assert_eq!(state.lock().connected, 1, "on_agent_connected fired only once");

    // The replayed subscription is re-admitted and indications resume.
    wait_until(|| state.lock().admitted == 2, "replayed subscription admitted").await;
    let before = ind_count.load(Ordering::Relaxed);
    wait_until(|| ind_count.load(Ordering::Relaxed) >= before + 3, "indications after reconnect")
        .await;

    let sstats = server.stats().await.unwrap();
    assert_eq!(sstats.reconnects, 1);
    assert_eq!(sstats.agents, 1);
    assert_eq!(sstats.subs, 1);

    let mut saw_reconnected = false;
    while let Ok(ev) = events.try_recv() {
        if let ServerEvent::AgentReconnected(info) = ev {
            assert_eq!(info.id, first_id);
            saw_reconnected = true;
        }
    }
    assert!(saw_reconnected, "AgentReconnected published on event stream");

    second.stop();
    server.stop();
}

// ---------------------------------------------------------------------------
// 4. Sharded server: an agent returning within the grace window rebinds on
//    its original shard with the same AgentId, and the replayed
//    subscription is re-admitted there.
// ---------------------------------------------------------------------------

/// Per-shard RobApp instances sharing one state/counter, as
/// [`Server::spawn_sharded`] requires.
fn sharded_factory(
    auto_subscribe: bool,
    period_ms: u32,
) -> (impl FnMut(usize) -> Vec<Box<dyn IApp>>, Arc<Mutex<RobState>>, Arc<AtomicU64>) {
    let state = Arc::new(Mutex::new(RobState::default()));
    let ind_count = Arc::new(AtomicU64::new(0));
    let (st, ind) = (state.clone(), ind_count.clone());
    let factory = move |_shard: usize| {
        vec![Box::new(RobApp {
            sm_codec: SmCodec::Flatb,
            period_ms,
            auto_subscribe,
            state: st.clone(),
            ind_count: ind.clone(),
        }) as Box<dyn IApp>]
    };
    (factory, state, ind_count)
}

#[tokio::test]
async fn sharded_reconnect_within_grace_rebinds_to_original_shard() {
    let (factory, state, ind_count) = sharded_factory(true, 1);
    let mut cfg = ServerConfig::new(ric(), TransportAddr::Mem("rob-shard-grace".into()));
    cfg.tick_ms = Some(5);
    cfg.reconnect_grace_ms = 2_000;
    cfg.shards = 4;
    let server = Server::spawn_sharded(cfg, factory).await.expect("server");
    let addr = server.addrs[0].clone();

    // Fill several shards so the rebind target is not trivially shard 0.
    let mut others = Vec::new();
    for id in [50, 51, 52] {
        let mut acfg = AgentConfig::new(node(id), addr.clone());
        acfg.tick_ms = Some(1);
        others.push(Agent::spawn(acfg, vec![Box::new(PingFn::new(SmCodec::Flatb))]).await.unwrap());
    }
    wait_until(|| state.lock().connected == 3, "other agents connected").await;

    let mut acfg = AgentConfig::new(node(42), addr.clone());
    acfg.tick_ms = Some(1);
    let first = Agent::spawn(acfg, vec![Box::new(PingFn::new(SmCodec::Flatb))]).await.unwrap();
    wait_until(|| state.lock().connected == 4, "agent 42 connected").await;
    let (first_id, first_shard) = {
        let st = state.lock();
        let id = st.last_agent.unwrap();
        (id, st.shard_of[&id])
    };
    wait_until(|| state.lock().admitted == 4, "all initial subscriptions").await;
    first.stop();

    // The same E2 node returns within the grace window.
    let mut acfg = AgentConfig::new(node(42), addr);
    acfg.tick_ms = Some(1);
    let second = Agent::spawn(acfg, vec![Box::new(PingFn::new(SmCodec::Flatb))]).await.unwrap();

    wait_until(|| state.lock().reconnected == 1, "reconnect detected").await;
    {
        let st = state.lock();
        assert_eq!(st.last_agent, Some(first_id), "agent kept its id across shards");
        assert_eq!(
            st.shard_of[&first_id], first_shard,
            "entity-key affinity rebinds the agent on its original shard"
        );
        assert_eq!(st.connected, 4, "no spurious on_agent_connected");
    }

    // The replayed subscription is re-admitted and indications resume.
    wait_until(|| state.lock().admitted == 5, "replayed subscription admitted").await;
    let before = ind_count.load(Ordering::Relaxed);
    wait_until(|| ind_count.load(Ordering::Relaxed) >= before + 3, "indications after rebind")
        .await;

    let sstats = server.stats().await.unwrap();
    assert_eq!(sstats.reconnects, 1);
    assert_eq!(sstats.agents, 4, "summed over shards");
    assert_eq!(sstats.subs, 4);

    second.stop();
    for a in others {
        a.stop();
    }
    server.stop();
}

// ---------------------------------------------------------------------------
// 5. Sharded server: send_pdu_multi reaches agents on different shards
//    exactly once each — the cross-shard handover neither drops nor
//    duplicates frames.
// ---------------------------------------------------------------------------

#[tokio::test]
async fn sharded_send_pdu_multi_reaches_every_shard_exactly_once() {
    let (factory, state, _ind) = sharded_factory(false, 1);
    let mut cfg = ServerConfig::new(ric(), TransportAddr::Mem("rob-shard-multi".into()));
    cfg.tick_ms = Some(5);
    cfg.shards = 4;
    let server = Server::spawn_sharded(cfg, factory).await.expect("server");
    let addr = server.addrs[0].clone();

    let mut agents = Vec::new();
    for id in [60, 61, 62, 63] {
        let mut acfg = AgentConfig::new(node(id), addr.clone());
        acfg.tick_ms = Some(1);
        agents.push(Agent::spawn(acfg, vec![Box::new(PingFn::new(SmCodec::Flatb))]).await.unwrap());
    }
    wait_until(|| state.lock().connected == 4, "all agents connected").await;

    let infos = server.agents().await.unwrap();
    assert_eq!(infos.len(), 4);
    let shards_used: std::collections::HashSet<usize> =
        state.lock().shard_of.values().copied().collect();
    assert!(
        shards_used.len() >= 2,
        "4 distinct entities on 4 shards must spread over several shards, got {shards_used:?}"
    );

    // Quiesce, then snapshot each agent's rx counter.
    tokio::time::sleep(Duration::from_millis(50)).await;
    let mut before = Vec::new();
    for a in &agents {
        before.push(a.stats().await.unwrap().rx_msgs);
    }

    // One PDU to all agents, issued on shard 0 (to_iapp enters there);
    // targets on other shards cross through the router.
    let ids: Vec<AgentId> = infos.iter().map(|i| i.id).collect();
    server.to_iapp("rob-app", Box::new(RobCmd::SendMulti(ids)));

    // Every agent gets it...
    for (i, a) in agents.iter().enumerate() {
        let mut delivered = false;
        for _ in 0..500 {
            if a.stats().await.unwrap().rx_msgs > before[i] {
                delivered = true;
                break;
            }
            tokio::time::sleep(Duration::from_millis(10)).await;
        }
        assert!(delivered, "broadcast frame never reached agent {i}");
    }
    // ...and, after things settle, exactly once.
    tokio::time::sleep(Duration::from_millis(200)).await;
    for (i, a) in agents.iter().enumerate() {
        let rx = a.stats().await.unwrap().rx_msgs;
        assert_eq!(
            rx,
            before[i] + 1,
            "agent {i} must receive the broadcast exactly once (no cross-shard duplicate)"
        );
    }

    for a in agents {
        a.stop();
    }
    server.stop();
}
