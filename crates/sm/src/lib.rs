//! E2 service models (E2SM) of the FlexRIC reproduction.
//!
//! Service models are "specifications in their own right" (paper Appendix
//! A.3): each defines the payloads exchanged between an xApp/iApp and a RAN
//! function — event triggers, action definitions, indication headers and
//! messages, control headers/messages and outcomes.  This crate has three
//! parts:
//!
//! 1. **The payload layer** ([`SmPayload`]): every SM payload encodes with
//!    either the ASN.1-PER-style or the FlatBuffers-style codec
//!    ([`SmCodec`]), independently of the E2AP encoding — the four
//!    E2AP×E2SM combinations of the paper's Fig. 7.  The hot-path entry is
//!    [`SmPayload::encode_into`], which reuses a caller-owned scratch
//!    buffer (the PR 3 zero-allocation discipline); [`SmPayload::encode`]
//!    is the allocating convenience form.
//!
//! 2. **The bundled SM set**: the monitoring SMs — [`mac`], [`rlc`],
//!    [`pdcp`] statistics (§4.1, §5.1) and [`kpm`] (cf. O-RAN E2SM-KPM) —
//!    plus the slice control SM ([`slice`], SC SM §6.1.2), the traffic
//!    control SM ([`tc`], TC SM §6.1.1), RRC UE-event notifications
//!    ([`rrc`]) and the hello-world SM ([`hw`], the ping SM of §5.2).
//!    Monitoring SMs additionally speak the [`delta`] stream: dirty-field
//!    delta indications with keyframes, suppression, and verified
//!    reconstruction ([`ReportMode::Delta`] on the [`trigger`]).
//!
//! 3. **The plugin registry** ([`registry`]): every SM — bundled or
//!    third-party — is described by a versioned [`registry::SmDescriptor`]
//!    (RAN function id, OID, `major.minor` version, type-erased codec
//!    vtable, delta hooks, funcdef builder) registered in a process-wide
//!    [`registry::SmRegistry`].  Agents advertise `oid@version` from the
//!    registry, servers negotiate semver-compatibility at E2 Setup (major
//!    must match, highest minor wins), and iApps decode through the vtable
//!    instead of static `match` arms — so a new service model plugs in
//!    with zero core-code edits (see `examples/custom_sm.rs`).

pub mod delta;
pub mod funcdef;
pub mod hw;
pub mod kpm;
pub mod mac;
pub mod pdcp;
pub mod registry;
pub mod rlc;
pub mod rrc;
pub mod slice;
pub mod tc;
pub mod trigger;

pub use delta::{
    content_hash, DeltaDecoder, DeltaEncoder, DeltaEvent, DeltaOut, DeltaRows, DeltaStreams,
    ReportOut,
};
pub use funcdef::RanFuncDef;
pub use registry::{SmDescriptor, SmRegistry, SmVersion};
pub use trigger::{ReportMode, ReportTrigger};

use bytes::{Bytes, BytesMut};
use flexric_codec::error::Result;
use flexric_codec::fb::{FbBuilder, FbView};
use flexric_codec::per::{BitReader, BitWriter};
use flexric_codec::ByteSink;

/// Which encoding an SM payload uses, independent of the E2AP encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SmCodec {
    /// ASN.1-aligned-PER style.
    #[default]
    Asn1Per,
    /// FlatBuffers style.
    Flatb,
}

impl SmCodec {
    /// All codecs, for sweeps.
    pub const ALL: [SmCodec; 2] = [SmCodec::Asn1Per, SmCodec::Flatb];

    /// Short label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            SmCodec::Asn1Per => "ASN",
            SmCodec::Flatb => "FB",
        }
    }
}

/// Implemented by every SM payload: dual-codec encode/decode.
///
/// The `encode_per`/`encode_fb` bodies are generic over the output
/// [`ByteSink`], so one implementation serves both the allocating
/// [`encode`](SmPayload::encode) convenience and the scratch-reusing
/// [`encode_into`](SmPayload::encode_into) hot path.
pub trait SmPayload: Sized {
    /// Encodes into the PER-style writer.
    fn encode_per<B: ByteSink>(&self, w: &mut BitWriter<B>);
    /// Decodes from the PER-style reader.
    fn decode_per(r: &mut BitReader) -> Result<Self>;
    /// Encodes into an FB-style message, returning the root table offset.
    fn encode_fb<B: ByteSink>(&self, b: &mut FbBuilder<B>) -> u32;
    /// Decodes from the root table of an FB-style message.
    fn decode_fb(t: &flexric_codec::fb::FbTable) -> Result<Self>;

    /// Encodes with the chosen codec into a fresh buffer.
    fn encode(&self, codec: SmCodec) -> Vec<u8> {
        match codec {
            SmCodec::Asn1Per => {
                let mut w = BitWriter::with_capacity(1024);
                self.encode_per(&mut w);
                w.finish()
            }
            SmCodec::Flatb => {
                let mut b = FbBuilder::with_capacity(2048);
                let root = self.encode_fb(&mut b);
                b.finish(root)
            }
        }
    }

    /// Encodes with the chosen codec into a caller-owned scratch buffer,
    /// splitting the message off as a frozen [`Bytes`].
    ///
    /// Byte-for-byte identical to [`encode`](SmPayload::encode) — both
    /// dispatch to the same generic body.  Steady-state this allocates
    /// nothing: once every frozen handle of a previous message drops, the
    /// scratch buffer reclaims that capacity (the PR 3 `encode_into`
    /// discipline, extended to SM payloads).
    fn encode_into(&self, codec: SmCodec, buf: &mut BytesMut) -> Bytes {
        match codec {
            SmCodec::Asn1Per => {
                let mut w = BitWriter::over(std::mem::take(buf));
                self.encode_per(&mut w);
                *buf = w.into_buf();
            }
            SmCodec::Flatb => {
                let mut b = FbBuilder::over(std::mem::take(buf));
                let root = self.encode_fb(&mut b);
                *buf = b.finish_buf(root);
            }
        }
        buf.split().freeze()
    }

    /// Decodes with the chosen codec.
    fn decode(codec: SmCodec, buf: &[u8]) -> Result<Self> {
        match codec {
            SmCodec::Asn1Per => {
                let mut r = BitReader::new(buf);
                Self::decode_per(&mut r)
            }
            SmCodec::Flatb => {
                let view = FbView::parse(buf)?;
                Self::decode_fb(&view.root()?)
            }
        }
    }
}

/// Well-known RAN function ids of the bundled service models.
///
/// These are the default ids the bundled [`registry`] descriptors carry;
/// third-party SMs pick unused ids at registration time.
pub mod rf {
    /// Hello-world SM (ping), cf. O-RAN's E2SM-HW.
    pub const HW: u16 = 2;
    /// MAC statistics SM.
    pub const MAC_STATS: u16 = 142;
    /// RLC statistics SM.
    pub const RLC_STATS: u16 = 143;
    /// PDCP statistics SM.
    pub const PDCP_STATS: u16 = 144;
    /// Slice control SM (SC SM).
    pub const SLICE_CTRL: u16 = 145;
    /// Traffic control SM (TC SM).
    pub const TC_CTRL: u16 = 146;
    /// RRC UE-event SM.
    pub const RRC_EVENT: u16 = 147;
    /// KPM (performance metrics) SM, cf. O-RAN E2SM-KPM.
    pub const KPM: u16 = 148;
}

/// Object identifiers (OIDs) of the bundled service models, used in the
/// `RanFunctionItem.oid` field so controllers can match functions by name.
pub mod oid {
    /// Hello-world SM.
    pub const HW: &str = "flexric.sm.hw";
    /// MAC statistics SM.
    pub const MAC_STATS: &str = "flexric.sm.mac_stats";
    /// RLC statistics SM.
    pub const RLC_STATS: &str = "flexric.sm.rlc_stats";
    /// PDCP statistics SM.
    pub const PDCP_STATS: &str = "flexric.sm.pdcp_stats";
    /// Slice control SM.
    pub const SLICE_CTRL: &str = "flexric.sm.slice_ctrl";
    /// Traffic control SM.
    pub const TC_CTRL: &str = "flexric.sm.tc_ctrl";
    /// RRC UE-event SM.
    pub const RRC_EVENT: &str = "flexric.sm.rrc_event";
    /// KPM SM.
    pub const KPM: &str = "flexric.sm.kpm";
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;
    use std::fmt::Debug;

    /// Round-trips `msg` through both codecs and asserts equality, and
    /// asserts the scratch-buffer encode path is byte-identical to the
    /// allocating one.
    pub fn roundtrip_both<T: SmPayload + PartialEq + Debug>(msg: &T) {
        let mut scratch = BytesMut::new();
        for codec in SmCodec::ALL {
            let buf = msg.encode(codec);
            let back =
                T::decode(codec, &buf).unwrap_or_else(|e| panic!("{codec:?} decode failed: {e}"));
            assert_eq!(&back, msg, "{codec:?} roundtrip");
            let frozen = msg.encode_into(codec, &mut scratch);
            assert_eq!(&frozen[..], &buf[..], "{codec:?} encode_into byte-identical");
        }
    }

    /// Asserts decoding garbage fails rather than panicking.
    pub fn garbage_rejected<T: SmPayload + Debug>() {
        for codec in SmCodec::ALL {
            assert!(T::decode(codec, &[]).is_err(), "{codec:?} empty");
            let _ = T::decode(codec, &[0xFF; 7]);
        }
    }
}
