//! Event trigger definitions shared by the monitoring service models.

use flexric_codec::error::{CodecError, Result};
use flexric_codec::fb::{FbBuilder, FbTable, TableBuilder};
use flexric_codec::per::{BitReader, BitWriter};

use crate::SmPayload;

/// Periodic report trigger: "send an indication every `period_ms`".
///
/// This is the trigger every statistics subscription in the paper uses
/// (1 ms in the hot-path experiments, 10 ms in the 100-agent scaling run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportTrigger {
    /// Reporting period in milliseconds (0 = every opportunity).
    pub period_ms: u32,
    /// Restrict the report to these RNTIs; empty = all UEs.
    ///
    /// "An active E2 subscription addresses all (or an indicated subset) of
    /// UEs" (paper §4.1.2).
    pub rnti_filter_lo: u16,
    /// Upper bound of the RNTI filter range (inclusive); `lo=1, hi=0`
    /// encodes "no filter".
    pub rnti_filter_hi: u16,
}

impl ReportTrigger {
    /// A trigger with the given period and no UE filter.
    pub fn every_ms(period_ms: u32) -> Self {
        ReportTrigger { period_ms, rnti_filter_lo: 1, rnti_filter_hi: 0 }
    }

    /// Whether this trigger filters UEs at all.
    pub fn has_filter(&self) -> bool {
        self.rnti_filter_lo <= self.rnti_filter_hi
    }

    /// Whether `rnti` passes the filter.
    pub fn matches(&self, rnti: u16) -> bool {
        !self.has_filter() || (self.rnti_filter_lo..=self.rnti_filter_hi).contains(&rnti)
    }
}

impl SmPayload for ReportTrigger {
    fn encode_per(&self, w: &mut BitWriter) {
        w.put_uint(self.period_ms as u64);
        w.put_bits(self.rnti_filter_lo as u64, 16);
        w.put_bits(self.rnti_filter_hi as u64, 16);
    }

    fn decode_per(r: &mut BitReader) -> Result<Self> {
        Ok(ReportTrigger {
            period_ms: r.get_uint()? as u32,
            rnti_filter_lo: r.get_bits(16)? as u16,
            rnti_filter_hi: r.get_bits(16)? as u16,
        })
    }

    fn encode_fb(&self, b: &mut FbBuilder) -> u32 {
        let mut t = TableBuilder::new();
        t.u32(0, self.period_ms).u16(1, self.rnti_filter_lo).u16(2, self.rnti_filter_hi);
        t.end(b)
    }

    fn decode_fb(t: &FbTable) -> Result<Self> {
        Ok(ReportTrigger {
            period_ms: t.u32(0)?.ok_or(CodecError::Malformed { what: "trigger period" })?,
            rnti_filter_lo: t.u16(1)?.unwrap_or(1),
            rnti_filter_hi: t.u16(2)?.unwrap_or(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::*;

    #[test]
    fn roundtrip() {
        roundtrip_both(&ReportTrigger::every_ms(1));
        roundtrip_both(&ReportTrigger { period_ms: 10, rnti_filter_lo: 5, rnti_filter_hi: 20 });
        garbage_rejected::<ReportTrigger>();
    }

    #[test]
    fn filter_semantics() {
        let all = ReportTrigger::every_ms(1);
        assert!(!all.has_filter());
        assert!(all.matches(0) && all.matches(u16::MAX));
        let some = ReportTrigger { period_ms: 1, rnti_filter_lo: 10, rnti_filter_hi: 12 };
        assert!(some.has_filter());
        assert!(some.matches(10) && some.matches(12));
        assert!(!some.matches(9) && !some.matches(13));
    }
}
