//! Event trigger definitions shared by the monitoring service models.

use flexric_codec::error::{CodecError, Result};
use flexric_codec::fb::{FbBuilder, FbTable, TableBuilder};
use flexric_codec::per::{BitReader, BitWriter};
use flexric_codec::ByteSink;

use crate::SmPayload;

/// How report payloads are encoded on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReportMode {
    /// Every indication carries the full snapshot (the paper's baseline).
    #[default]
    Full,
    /// Indications carry dirty-field deltas against the previously
    /// emitted report ([`crate::delta`]), with a full keyframe every
    /// `keyframe_every` report opportunities and unchanged snapshots
    /// suppressed outright.
    Delta {
        /// Report opportunities per keyframe (≥ 1; 1 degenerates to
        /// full reporting in keyframe framing).
        keyframe_every: u32,
    },
}

/// Periodic report trigger: "send an indication every `period_ms`".
///
/// This is the trigger every statistics subscription in the paper uses
/// (1 ms in the hot-path experiments, 10 ms in the 100-agent scaling run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportTrigger {
    /// Reporting period in milliseconds (0 = every opportunity).
    pub period_ms: u32,
    /// Restrict the report to these RNTIs; empty = all UEs.
    ///
    /// "An active E2 subscription addresses all (or an indicated subset) of
    /// UEs" (paper §4.1.2).
    pub rnti_filter_lo: u16,
    /// Upper bound of the RNTI filter range (inclusive); `lo=1, hi=0`
    /// encodes "no filter".
    pub rnti_filter_hi: u16,
    /// Full-snapshot vs delta-encoded indications.
    pub mode: ReportMode,
}

impl ReportTrigger {
    /// A trigger with the given period, no UE filter, full reports.
    pub fn every_ms(period_ms: u32) -> Self {
        ReportTrigger { period_ms, rnti_filter_lo: 1, rnti_filter_hi: 0, mode: ReportMode::Full }
    }

    /// A delta-mode trigger with the given period and keyframe cadence.
    pub fn delta_every_ms(period_ms: u32, keyframe_every: u32) -> Self {
        ReportTrigger {
            mode: ReportMode::Delta { keyframe_every: keyframe_every.max(1) },
            ..ReportTrigger::every_ms(period_ms)
        }
    }

    /// The same trigger with a different period — what a server-driven
    /// retune changes.
    pub fn with_period_ms(self, period_ms: u32) -> Self {
        ReportTrigger { period_ms, ..self }
    }

    /// Whether this trigger filters UEs at all.
    pub fn has_filter(&self) -> bool {
        self.rnti_filter_lo <= self.rnti_filter_hi
    }

    /// Whether `rnti` passes the filter.
    pub fn matches(&self, rnti: u16) -> bool {
        !self.has_filter() || (self.rnti_filter_lo..=self.rnti_filter_hi).contains(&rnti)
    }
}

impl SmPayload for ReportTrigger {
    fn encode_per<B: ByteSink>(&self, w: &mut BitWriter<B>) {
        w.put_uint(self.period_ms as u64);
        w.put_bits(self.rnti_filter_lo as u64, 16);
        w.put_bits(self.rnti_filter_hi as u64, 16);
        match self.mode {
            ReportMode::Full => w.put_bit(false),
            ReportMode::Delta { keyframe_every } => {
                w.put_bit(true);
                w.put_uint(keyframe_every as u64);
            }
        }
    }

    fn decode_per(r: &mut BitReader) -> Result<Self> {
        let period_ms = r.get_uint()? as u32;
        let rnti_filter_lo = r.get_bits(16)? as u16;
        let rnti_filter_hi = r.get_bits(16)? as u16;
        let mode = if r.get_bit()? {
            let keyframe_every = (r.get_uint()? as u32).max(1);
            ReportMode::Delta { keyframe_every }
        } else {
            ReportMode::Full
        };
        Ok(ReportTrigger { period_ms, rnti_filter_lo, rnti_filter_hi, mode })
    }

    fn encode_fb<B: ByteSink>(&self, b: &mut FbBuilder<B>) -> u32 {
        let mut t = TableBuilder::new();
        t.u32(0, self.period_ms).u16(1, self.rnti_filter_lo).u16(2, self.rnti_filter_hi);
        if let ReportMode::Delta { keyframe_every } = self.mode {
            t.u32(3, keyframe_every.max(1));
        }
        t.end(b)
    }

    fn decode_fb(t: &FbTable) -> Result<Self> {
        let mode = match t.u32(3)?.unwrap_or(0) {
            0 => ReportMode::Full,
            k => ReportMode::Delta { keyframe_every: k },
        };
        Ok(ReportTrigger {
            period_ms: t.u32(0)?.ok_or(CodecError::Malformed { what: "trigger period" })?,
            rnti_filter_lo: t.u16(1)?.unwrap_or(1),
            rnti_filter_hi: t.u16(2)?.unwrap_or(0),
            mode,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::*;

    #[test]
    fn roundtrip() {
        roundtrip_both(&ReportTrigger::every_ms(1));
        roundtrip_both(&ReportTrigger {
            period_ms: 10,
            rnti_filter_lo: 5,
            rnti_filter_hi: 20,
            mode: ReportMode::Full,
        });
        roundtrip_both(&ReportTrigger::delta_every_ms(10, 16));
        roundtrip_both(&ReportTrigger {
            period_ms: 0,
            rnti_filter_lo: 3,
            rnti_filter_hi: 7,
            mode: ReportMode::Delta { keyframe_every: 1 },
        });
        garbage_rejected::<ReportTrigger>();
    }

    #[test]
    fn filter_semantics() {
        let all = ReportTrigger::every_ms(1);
        assert!(!all.has_filter());
        assert!(all.matches(0) && all.matches(u16::MAX));
        let some = ReportTrigger {
            period_ms: 1,
            rnti_filter_lo: 10,
            rnti_filter_hi: 12,
            mode: ReportMode::Full,
        };
        assert!(some.has_filter());
        assert!(some.matches(10) && some.matches(12));
        assert!(!some.matches(9) && !some.matches(13));
    }

    #[test]
    fn retune_and_mode_helpers() {
        let t = ReportTrigger::delta_every_ms(10, 8);
        assert_eq!(t.mode, ReportMode::Delta { keyframe_every: 8 });
        let r = t.with_period_ms(80);
        assert_eq!(r.period_ms, 80);
        assert_eq!(r.mode, t.mode, "retune preserves mode and filter");
        assert_eq!(r.rnti_filter_lo, t.rnti_filter_lo);
        // keyframe_every is clamped to ≥ 1 at construction and decode.
        assert_eq!(
            ReportTrigger::delta_every_ms(5, 0).mode,
            ReportMode::Delta { keyframe_every: 1 }
        );
    }
}
