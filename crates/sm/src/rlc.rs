//! RLC statistics service model.
//!
//! Exposes per-bearer RLC buffer state — most importantly the *sojourn
//! time* packets spend in the DRB buffer, the quantity the traffic-control
//! xApp of §6.1.1 watches to detect bufferbloat (Fig. 11).

use flexric_codec::error::{CodecError, Result};
use flexric_codec::fb::{FbBuilder, FbTable, TableBuilder};
use flexric_codec::per::{BitReader, BitWriter};
use flexric_codec::ByteSink;

use crate::delta::DeltaRows;
use crate::SmPayload;

/// Per-(UE, DRB) RLC statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RlcBearerStats {
    /// Owning UE.
    pub rnti: u16,
    /// Data radio bearer id (1–32).
    pub drb_id: u8,
    /// PDUs transmitted in the reporting period.
    pub tx_pdus: u64,
    /// Bytes transmitted in the reporting period.
    pub tx_bytes: u64,
    /// Retransmitted PDUs.
    pub retx_pdus: u64,
    /// PDUs dropped (buffer overflow).
    pub dropped_pdus: u64,
    /// Current buffer occupancy in bytes.
    pub buffer_bytes: u64,
    /// Current buffer occupancy in packets.
    pub buffer_pkts: u32,
    /// Average sojourn time of packets leaving the buffer, microseconds.
    pub sojourn_us_avg: u64,
    /// Maximum sojourn time observed in the period, microseconds.
    pub sojourn_us_max: u64,
}

/// An RLC statistics indication.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RlcStatsInd {
    /// Snapshot time in milliseconds since cell start.
    pub tstamp_ms: u64,
    /// Per-bearer statistics.
    pub bearers: Vec<RlcBearerStats>,
}

fn put_bearer<B: ByteSink>(w: &mut BitWriter<B>, s: &RlcBearerStats) {
    w.put_bits(s.rnti as u64, 16);
    w.put_bits(s.drb_id as u64, 8);
    w.put_uint(s.tx_pdus);
    w.put_uint(s.tx_bytes);
    w.put_uint(s.retx_pdus);
    w.put_uint(s.dropped_pdus);
    w.put_uint(s.buffer_bytes);
    w.put_uint(s.buffer_pkts as u64);
    w.put_uint(s.sojourn_us_avg);
    w.put_uint(s.sojourn_us_max);
}

fn get_bearer(r: &mut BitReader) -> Result<RlcBearerStats> {
    Ok(RlcBearerStats {
        rnti: r.get_bits(16)? as u16,
        drb_id: r.get_bits(8)? as u8,
        tx_pdus: r.get_uint()?,
        tx_bytes: r.get_uint()?,
        retx_pdus: r.get_uint()?,
        dropped_pdus: r.get_uint()?,
        buffer_bytes: r.get_uint()?,
        buffer_pkts: r.get_uint()? as u32,
        sojourn_us_avg: r.get_uint()?,
        sojourn_us_max: r.get_uint()?,
    })
}

fn enc_bearer_fb<B: ByteSink>(b: &mut FbBuilder<B>, s: &RlcBearerStats) -> u32 {
    let mut t = TableBuilder::new();
    t.u16(0, s.rnti)
        .u8(1, s.drb_id)
        .u64(2, s.tx_pdus)
        .u64(3, s.tx_bytes)
        .u64(4, s.retx_pdus)
        .u64(5, s.dropped_pdus)
        .u64(6, s.buffer_bytes)
        .u32(7, s.buffer_pkts)
        .u64(8, s.sojourn_us_avg)
        .u64(9, s.sojourn_us_max);
    t.end(b)
}

fn dec_bearer_fb(t: &FbTable) -> Result<RlcBearerStats> {
    Ok(RlcBearerStats {
        rnti: t.req_u16(0, "rnti")?,
        drb_id: t.req_u8(1, "drb")?,
        tx_pdus: t.req_u64(2, "tx pdus")?,
        tx_bytes: t.req_u64(3, "tx bytes")?,
        retx_pdus: t.req_u64(4, "retx")?,
        dropped_pdus: t.req_u64(5, "dropped")?,
        buffer_bytes: t.req_u64(6, "buffer bytes")?,
        buffer_pkts: t.req_u32(7, "buffer pkts")?,
        sojourn_us_avg: t.req_u64(8, "sojourn avg")?,
        sojourn_us_max: t.req_u64(9, "sojourn max")?,
    })
}

impl SmPayload for RlcStatsInd {
    fn encode_per<B: ByteSink>(&self, w: &mut BitWriter<B>) {
        w.put_uint(self.tstamp_ms);
        w.put_length(self.bearers.len());
        for s in &self.bearers {
            put_bearer(w, s);
        }
    }

    fn decode_per(r: &mut BitReader) -> Result<Self> {
        let tstamp_ms = r.get_uint()?;
        let n = r.get_length()?;
        if n > 65536 {
            return Err(CodecError::Malformed { what: "too many bearers" });
        }
        let mut bearers = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            bearers.push(get_bearer(r)?);
        }
        Ok(RlcStatsInd { tstamp_ms, bearers })
    }

    fn encode_fb<B: ByteSink>(&self, b: &mut FbBuilder<B>) -> u32 {
        let offs: Vec<u32> = self.bearers.iter().map(|s| enc_bearer_fb(b, s)).collect();
        let bearers = b.vec_off(&offs);
        let mut t = TableBuilder::new();
        t.u64(0, self.tstamp_ms).off(1, bearers);
        t.end(b)
    }

    fn decode_fb(t: &FbTable) -> Result<Self> {
        let v = t.vector_or_empty(1)?;
        let mut bearers = Vec::with_capacity(v.len());
        for i in 0..v.len() {
            bearers.push(dec_bearer_fb(&v.table_at(i)?)?);
        }
        Ok(RlcStatsInd { tstamp_ms: t.req_u64(0, "tstamp")?, bearers })
    }
}

impl DeltaRows for RlcStatsInd {
    type Row = RlcBearerStats;
    const FIELD_COUNT: u32 = 8;
    const NAME: &'static str = "rlc";

    fn tstamp_ms(&self) -> u64 {
        self.tstamp_ms
    }
    fn set_tstamp_ms(&mut self, t: u64) {
        self.tstamp_ms = t;
    }
    fn rows(&self) -> &[RlcBearerStats] {
        &self.bearers
    }
    fn rows_mut(&mut self) -> &mut Vec<RlcBearerStats> {
        &mut self.bearers
    }
    fn row_key(row: &RlcBearerStats) -> u32 {
        row.rnti as u32 | ((row.drb_id as u32) << 16)
    }
    fn field(row: &RlcBearerStats, i: u32) -> u64 {
        match i {
            0 => row.tx_pdus,
            1 => row.tx_bytes,
            2 => row.retx_pdus,
            3 => row.dropped_pdus,
            4 => row.buffer_bytes,
            5 => row.buffer_pkts as u64,
            6 => row.sojourn_us_avg,
            _ => row.sojourn_us_max,
        }
    }
    fn set_field(row: &mut RlcBearerStats, i: u32, v: u64) {
        match i {
            0 => row.tx_pdus = v,
            1 => row.tx_bytes = v,
            2 => row.retx_pdus = v,
            3 => row.dropped_pdus = v,
            4 => row.buffer_bytes = v,
            5 => row.buffer_pkts = v as u32,
            6 => row.sojourn_us_avg = v,
            _ => row.sojourn_us_max = v,
        }
    }
    fn new_row(key: u32) -> RlcBearerStats {
        RlcBearerStats { rnti: key as u16, drb_id: (key >> 16) as u8, ..Default::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::*;

    fn sample(n: usize) -> RlcStatsInd {
        RlcStatsInd {
            tstamp_ms: 5_000,
            bearers: (0..n)
                .map(|i| RlcBearerStats {
                    rnti: 0x4601 + i as u16,
                    drb_id: 1,
                    tx_pdus: 1000,
                    tx_bytes: 1_500_000,
                    retx_pdus: 3,
                    dropped_pdus: 0,
                    buffer_bytes: 250_000,
                    buffer_pkts: 170,
                    sojourn_us_avg: 180_000,
                    sojourn_us_max: 420_000,
                })
                .collect(),
        }
    }

    #[test]
    fn roundtrip() {
        roundtrip_both(&sample(0));
        roundtrip_both(&sample(4));
        roundtrip_both(&sample(64));
        garbage_rejected::<RlcStatsInd>();
    }
}
