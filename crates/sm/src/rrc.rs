//! RRC UE-event service model.
//!
//! Notifies controllers of UE arrivals/departures with the information the
//! paper's slicing xApp needs for UE-to-service discovery: "through RRC UE
//! notifications, the xApp discovers the UE-to-service association through
//! the selected PLMN identification or slice information (S-NSSAI)
//! provided in the attach procedure" (§6.1.2).  The same events drive the
//! UE-to-controller association of disaggregated deployments (Fig. 4).

use flexric_codec::error::{CodecError, Result};
use flexric_codec::fb::{FbBuilder, FbTable, TableBuilder};
use flexric_codec::per::{BitReader, BitWriter};
use flexric_codec::ByteSink;

use crate::SmPayload;

/// Kind of RRC event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum RrcEventKind {
    /// UE completed attach.
    Attach = 0,
    /// UE detached / connection released.
    Detach = 1,
    /// UE handed over into this cell.
    HandoverIn = 2,
    /// UE handed over out of this cell.
    HandoverOut = 3,
}

impl RrcEventKind {
    /// Builds an event of this kind for a UE described by `(rnti, plmn,
    /// snssai)` — helper for substrates emitting handover events.
    pub fn event(self, rnti: u16, plmn: (u16, u16), snssai: Option<u32>) -> RrcUeEvent {
        RrcUeEvent { rnti, kind: self, plmn_mcc: plmn.0, plmn_mnc: plmn.1, snssai }
    }

    /// Decodes a discriminant.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(RrcEventKind::Attach),
            1 => Some(RrcEventKind::Detach),
            2 => Some(RrcEventKind::HandoverIn),
            3 => Some(RrcEventKind::HandoverOut),
            _ => None,
        }
    }
}

/// One UE event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RrcUeEvent {
    /// The UE.
    pub rnti: u16,
    /// What happened.
    pub kind: RrcEventKind,
    /// Selected PLMN MCC.
    pub plmn_mcc: u16,
    /// Selected PLMN MNC.
    pub plmn_mnc: u16,
    /// Single network slice selection assistance info (24-bit SST+SD),
    /// `None` when not provided in the attach.
    pub snssai: Option<u32>,
}

/// An RRC event indication.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RrcEventInd {
    /// Event time in milliseconds since cell start.
    pub tstamp_ms: u64,
    /// The events (usually one per indication).
    pub events: Vec<RrcUeEvent>,
}

impl SmPayload for RrcEventInd {
    fn encode_per<B: ByteSink>(&self, w: &mut BitWriter<B>) {
        w.put_uint(self.tstamp_ms);
        w.put_length(self.events.len());
        for e in &self.events {
            w.put_bits(e.rnti as u64, 16);
            w.put_constrained(e.kind as u64, 0, 3);
            w.put_constrained(e.plmn_mcc as u64, 0, 999);
            w.put_constrained(e.plmn_mnc as u64, 0, 999);
            w.put_bit(e.snssai.is_some());
            if let Some(s) = e.snssai {
                w.put_uint(s as u64);
            }
        }
    }

    fn decode_per(r: &mut BitReader) -> Result<Self> {
        let tstamp_ms = r.get_uint()?;
        let n = r.get_length()?;
        if n > 65536 {
            return Err(CodecError::Malformed { what: "too many events" });
        }
        let mut events = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            let rnti = r.get_bits(16)? as u16;
            let k = r.get_constrained(0, 3)? as u8;
            let kind = RrcEventKind::from_u8(k)
                .ok_or(CodecError::BadDiscriminant { what: "rrc event", value: k as u64 })?;
            let plmn_mcc = r.get_constrained(0, 999)? as u16;
            let plmn_mnc = r.get_constrained(0, 999)? as u16;
            let snssai = if r.get_bit()? { Some(r.get_uint()? as u32) } else { None };
            events.push(RrcUeEvent { rnti, kind, plmn_mcc, plmn_mnc, snssai });
        }
        Ok(RrcEventInd { tstamp_ms, events })
    }

    fn encode_fb<B: ByteSink>(&self, b: &mut FbBuilder<B>) -> u32 {
        let offs: Vec<u32> = self
            .events
            .iter()
            .map(|e| {
                let mut t = TableBuilder::new();
                t.u16(0, e.rnti).u8(1, e.kind as u8).u16(2, e.plmn_mcc).u16(3, e.plmn_mnc);
                if let Some(s) = e.snssai {
                    t.u32(4, s);
                }
                t.end(b)
            })
            .collect();
        let events = b.vec_off(&offs);
        let mut t = TableBuilder::new();
        t.u64(0, self.tstamp_ms).off(1, events);
        t.end(b)
    }

    fn decode_fb(t: &FbTable) -> Result<Self> {
        let v = t.vector_or_empty(1)?;
        let mut events = Vec::with_capacity(v.len());
        for i in 0..v.len() {
            let et = v.table_at(i)?;
            let k = et.req_u8(1, "rrc event kind")?;
            events.push(RrcUeEvent {
                rnti: et.req_u16(0, "rnti")?,
                kind: RrcEventKind::from_u8(k)
                    .ok_or(CodecError::BadDiscriminant { what: "rrc event", value: k as u64 })?,
                plmn_mcc: et.req_u16(2, "mcc")?,
                plmn_mnc: et.req_u16(3, "mnc")?,
                snssai: et.u32(4)?,
            });
        }
        Ok(RrcEventInd { tstamp_ms: t.req_u64(0, "tstamp")?, events })
    }
}

/// Control messages of the RRC SM: connection-management actions an xApp
/// can trigger ("user associations and handovers can be controlled" —
/// paper §1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RrcCtrl {
    /// Hand a UE over to another cell (mobility load balancing).
    Handover {
        /// The UE to move.
        rnti: u16,
        /// Target cell id (deployment-global index).
        target_cell: u32,
    },
    /// Release a UE's connection.
    Release {
        /// The UE to release.
        rnti: u16,
    },
}

impl SmPayload for RrcCtrl {
    fn encode_per<B: ByteSink>(&self, w: &mut BitWriter<B>) {
        match self {
            RrcCtrl::Handover { rnti, target_cell } => {
                w.put_constrained(0, 0, 1);
                w.put_bits(*rnti as u64, 16);
                w.put_uint(*target_cell as u64);
            }
            RrcCtrl::Release { rnti } => {
                w.put_constrained(1, 0, 1);
                w.put_bits(*rnti as u64, 16);
            }
        }
    }

    fn decode_per(r: &mut BitReader) -> Result<Self> {
        match r.get_constrained(0, 1)? {
            0 => Ok(RrcCtrl::Handover {
                rnti: r.get_bits(16)? as u16,
                target_cell: r.get_uint()? as u32,
            }),
            1 => Ok(RrcCtrl::Release { rnti: r.get_bits(16)? as u16 }),
            v => Err(CodecError::BadDiscriminant { what: "rrc ctrl", value: v }),
        }
    }

    fn encode_fb<B: ByteSink>(&self, b: &mut FbBuilder<B>) -> u32 {
        let mut t = TableBuilder::new();
        match self {
            RrcCtrl::Handover { rnti, target_cell } => {
                t.u8(0, 0).u16(1, *rnti).u32(2, *target_cell);
            }
            RrcCtrl::Release { rnti } => {
                t.u8(0, 1).u16(1, *rnti);
            }
        }
        t.end(b)
    }

    fn decode_fb(t: &FbTable) -> Result<Self> {
        match t.req_u8(0, "rrc ctrl kind")? {
            0 => Ok(RrcCtrl::Handover {
                rnti: t.req_u16(1, "rnti")?,
                target_cell: t.req_u32(2, "target cell")?,
            }),
            1 => Ok(RrcCtrl::Release { rnti: t.req_u16(1, "rnti")? }),
            v => Err(CodecError::BadDiscriminant { what: "rrc ctrl", value: v as u64 }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::*;

    #[test]
    fn ctrl_roundtrip() {
        roundtrip_both(&RrcCtrl::Handover { rnti: 0x4601, target_cell: 2 });
        roundtrip_both(&RrcCtrl::Release { rnti: u16::MAX });
        garbage_rejected::<RrcCtrl>();
    }

    #[test]
    fn roundtrip() {
        roundtrip_both(&RrcEventInd::default());
        roundtrip_both(&RrcEventInd {
            tstamp_ms: 1234,
            events: vec![
                RrcUeEvent {
                    rnti: 0x4601,
                    kind: RrcEventKind::Attach,
                    plmn_mcc: 208,
                    plmn_mnc: 95,
                    snssai: Some(0x01_0000AA),
                },
                RrcUeEvent {
                    rnti: 0x4602,
                    kind: RrcEventKind::Detach,
                    plmn_mcc: 1,
                    plmn_mnc: 1,
                    snssai: None,
                },
                RrcUeEvent {
                    rnti: 1,
                    kind: RrcEventKind::HandoverIn,
                    plmn_mcc: 999,
                    plmn_mnc: 999,
                    snssai: Some(u32::MAX),
                },
            ],
        });
        garbage_rejected::<RrcEventInd>();
    }

    #[test]
    fn kind_discriminants() {
        for k in [
            RrcEventKind::Attach,
            RrcEventKind::Detach,
            RrcEventKind::HandoverIn,
            RrcEventKind::HandoverOut,
        ] {
            assert_eq!(RrcEventKind::from_u8(k as u8), Some(k));
        }
        assert_eq!(RrcEventKind::from_u8(4), None);
    }
}
