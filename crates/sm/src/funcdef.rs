//! RAN function definition payload, carried opaquely in E2 setup.

use flexric_codec::error::{CodecError, Result};
use flexric_codec::fb::{FbBuilder, FbTable, TableBuilder};
use flexric_codec::per::{BitReader, BitWriter};
use flexric_codec::ByteSink;

use crate::SmPayload;

/// One capability style of a RAN function (report style, control style, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncStyle {
    /// Style type (SM-specific).
    pub style: i32,
    /// Human-readable style name.
    pub name: String,
}

/// The RAN function definition advertised at E2 setup: what a controller
/// learns about a function before subscribing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RanFuncDef {
    /// Short function name, e.g. `"MAC-STATS"`.
    pub name: String,
    /// Free-text description.
    pub description: String,
    /// Supported report styles.
    pub report_styles: Vec<FuncStyle>,
    /// Supported control styles.
    pub control_styles: Vec<FuncStyle>,
}

impl RanFuncDef {
    /// A definition with just a name and description.
    pub fn simple(name: &str, description: &str) -> Self {
        RanFuncDef {
            name: name.to_owned(),
            description: description.to_owned(),
            report_styles: vec![],
            control_styles: vec![],
        }
    }
}

fn put_styles<B: ByteSink>(w: &mut BitWriter<B>, styles: &[FuncStyle]) {
    w.put_length(styles.len());
    for s in styles {
        w.put_uint(s.style as u32 as u64);
        w.put_utf8(&s.name);
    }
}

fn get_styles(r: &mut BitReader) -> Result<Vec<FuncStyle>> {
    let n = r.get_length()?;
    if n > 4096 {
        return Err(CodecError::Malformed { what: "too many styles" });
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(FuncStyle { style: r.get_uint()? as u32 as i32, name: r.get_utf8()? });
    }
    Ok(out)
}

impl SmPayload for RanFuncDef {
    fn encode_per<B: ByteSink>(&self, w: &mut BitWriter<B>) {
        w.put_utf8(&self.name);
        w.put_utf8(&self.description);
        put_styles(w, &self.report_styles);
        put_styles(w, &self.control_styles);
    }

    fn decode_per(r: &mut BitReader) -> Result<Self> {
        Ok(RanFuncDef {
            name: r.get_utf8()?,
            description: r.get_utf8()?,
            report_styles: get_styles(r)?,
            control_styles: get_styles(r)?,
        })
    }

    fn encode_fb<B: ByteSink>(&self, b: &mut FbBuilder<B>) -> u32 {
        let name = b.string(&self.name);
        let desc = b.string(&self.description);
        let enc_styles = |b: &mut FbBuilder<B>, styles: &[FuncStyle]| -> u32 {
            let offs: Vec<u32> = styles
                .iter()
                .map(|s| {
                    let n = b.string(&s.name);
                    let mut t = TableBuilder::new();
                    t.u32(0, s.style as u32).off(1, n);
                    t.end(b)
                })
                .collect();
            b.vec_off(&offs)
        };
        let rep = enc_styles(b, &self.report_styles);
        let ctl = enc_styles(b, &self.control_styles);
        let mut t = TableBuilder::new();
        t.off(0, name).off(1, desc).off(2, rep).off(3, ctl);
        t.end(b)
    }

    fn decode_fb(t: &FbTable) -> Result<Self> {
        let dec_styles = |slot: u16| -> Result<Vec<FuncStyle>> {
            let v = t.vector_or_empty(slot)?;
            let mut out = Vec::with_capacity(v.len());
            for i in 0..v.len() {
                let st = v.table_at(i)?;
                out.push(FuncStyle {
                    style: st.req_u32(0, "style type")? as i32,
                    name: st
                        .string(1)?
                        .ok_or(CodecError::Malformed { what: "style name" })?
                        .to_owned(),
                });
            }
            Ok(out)
        };
        Ok(RanFuncDef {
            name: t.string(0)?.ok_or(CodecError::Malformed { what: "func name" })?.to_owned(),
            description: t
                .string(1)?
                .ok_or(CodecError::Malformed { what: "func description" })?
                .to_owned(),
            report_styles: dec_styles(2)?,
            control_styles: dec_styles(3)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::*;

    #[test]
    fn roundtrip() {
        roundtrip_both(&RanFuncDef::simple("MAC-STATS", "per-UE MAC statistics"));
        roundtrip_both(&RanFuncDef {
            name: "SLICE-CTRL".into(),
            description: "radio resource slicing".into(),
            report_styles: vec![FuncStyle { style: 1, name: "periodic".into() }],
            control_styles: vec![
                FuncStyle { style: 1, name: "add/mod slice".into() },
                FuncStyle { style: -2, name: "ue assoc".into() },
            ],
        });
        garbage_rejected::<RanFuncDef>();
    }

    #[test]
    fn negative_style_survives() {
        let def = RanFuncDef {
            name: "X".into(),
            description: String::new(),
            report_styles: vec![FuncStyle { style: i32::MIN, name: "n".into() }],
            control_styles: vec![],
        };
        roundtrip_both(&def);
    }
}
