//! Traffic control service model (TC SM, paper §6.1.1).
//!
//! Abstracts the configuration of multiple flows within the RAN "similarly
//! to how OpenFlow abstracts flows in a switch": a classifier segregates
//! packets into queues, a scheduler pulls from the queues, and a pacer
//! limits the rate toward the RLC buffer (Fig. 10b).  The bufferbloat
//! experiment of Fig. 11 is driven entirely through this SM: the xApp adds
//! a second FIFO queue, installs a 5-tuple filter for the VoIP flow, loads
//! the 5G-BDP pacer, and selects the round-robin scheduler.

use flexric_codec::error::{CodecError, Result};
use flexric_codec::fb::{FbBuilder, FbTable, TableBuilder};
use flexric_codec::per::{BitReader, BitWriter};
use flexric_codec::ByteSink;

use crate::SmPayload;

/// Queue discipline of a TC queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueKind {
    /// FIFO with a byte capacity (drop-tail).
    Fifo {
        /// Capacity in bytes; 0 = unbounded.
        cap_bytes: u32,
    },
    /// CoDel-style: FIFO that drops when sojourn exceeds `target_us` for
    /// longer than `interval_us` (extension beyond the paper's FIFO).
    Codel {
        /// Sojourn target in microseconds.
        target_us: u32,
        /// Estimation interval in microseconds.
        interval_us: u32,
    },
}

/// The scheduler pulling packets from TC queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum TcSchedAlgo {
    /// Round-robin over active queues (the paper's choice).
    #[default]
    RoundRobin = 0,
    /// Strict priority: lowest queue id first.
    StrictPriority = 1,
    /// Weighted round robin (weights configured per queue id order).
    WeightedRoundRobin = 2,
}

impl TcSchedAlgo {
    /// Decodes a discriminant.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(TcSchedAlgo::RoundRobin),
            1 => Some(TcSchedAlgo::StrictPriority),
            2 => Some(TcSchedAlgo::WeightedRoundRobin),
            _ => None,
        }
    }
}

/// The pacer limiting the rate toward the RLC buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PacerConf {
    /// No pacing: packets pass straight to the RLC (transparent mode).
    #[default]
    None,
    /// 5G-BDP pacer: keep the RLC buffer's sojourn at `target_delay_us` by
    /// tracking its drain rate — "it tries to submit just enough packets to
    /// the DRB not to starve it, without bloating it" (§6.1.1).
    Bdp {
        /// Target RLC sojourn in microseconds.
        target_delay_us: u32,
    },
}

/// A 5-tuple classifier rule; `None` fields are wildcards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FiveTupleRule {
    /// Rule id, unique within the bearer.
    pub id: u32,
    /// Source IPv4 address.
    pub src_ip: Option<u32>,
    /// Destination IPv4 address.
    pub dst_ip: Option<u32>,
    /// Source port.
    pub src_port: Option<u16>,
    /// Destination port.
    pub dst_port: Option<u16>,
    /// IP protocol (6 = TCP, 17 = UDP).
    pub proto: Option<u8>,
}

impl FiveTupleRule {
    /// Whether a packet's 5-tuple matches this rule.
    pub fn matches(
        &self,
        src_ip: u32,
        dst_ip: u32,
        src_port: u16,
        dst_port: u16,
        proto: u8,
    ) -> bool {
        self.src_ip.is_none_or(|v| v == src_ip)
            && self.dst_ip.is_none_or(|v| v == dst_ip)
            && self.src_port.is_none_or(|v| v == src_port)
            && self.dst_port.is_none_or(|v| v == dst_port)
            && self.proto.is_none_or(|v| v == proto)
    }
}

/// Control messages of the TC SM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcCtrl {
    /// Create a queue.
    AddQueue {
        /// Queue id, unique within the bearer.
        id: u32,
        /// Discipline.
        kind: QueueKind,
    },
    /// Remove a queue (its backlog is re-enqueued to queue 0).
    DelQueue {
        /// Queue id.
        id: u32,
    },
    /// Install a classifier rule directing matches to `queue`.
    AddRule {
        /// The match rule.
        rule: FiveTupleRule,
        /// Target queue id.
        queue: u32,
        /// Precedence: lower value is checked first.
        precedence: u32,
    },
    /// Remove a classifier rule.
    DelRule {
        /// Rule id.
        rule_id: u32,
    },
    /// Select the queue scheduler.
    SetSched {
        /// The algorithm.
        algo: TcSchedAlgo,
        /// Weights for [`TcSchedAlgo::WeightedRoundRobin`], by queue-id
        /// order; ignored otherwise.
        weights: Vec<u32>,
    },
    /// Configure the pacer.
    SetPacer {
        /// The pacer configuration.
        pacer: PacerConf,
    },
}

/// Per-queue status in a TC statistics indication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcQueueStats {
    /// Queue id.
    pub id: u32,
    /// Current backlog in bytes.
    pub backlog_bytes: u64,
    /// Current backlog in packets.
    pub backlog_pkts: u32,
    /// Average sojourn of packets leaving this queue, microseconds.
    pub sojourn_us_avg: u64,
    /// Maximum sojourn in the period, microseconds.
    pub sojourn_us_max: u64,
    /// Packets dropped by the discipline.
    pub drops: u64,
    /// Packets forwarded in the period.
    pub tx_pkts: u64,
    /// Bytes forwarded in the period.
    pub tx_bytes: u64,
}

/// A TC statistics indication for one bearer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TcStatsInd {
    /// Snapshot time in milliseconds since cell start.
    pub tstamp_ms: u64,
    /// Owning UE.
    pub rnti: u16,
    /// Bearer.
    pub drb_id: u8,
    /// Per-queue statistics.
    pub queues: Vec<TcQueueStats>,
    /// Current pacer release rate estimate, kbit/s (0 when unpaced).
    pub pacer_rate_kbps: u64,
}

// ---------------------------------------------------------------------------
// PER helpers
// ---------------------------------------------------------------------------

fn put_kind<B: ByteSink>(w: &mut BitWriter<B>, k: &QueueKind) {
    match k {
        QueueKind::Fifo { cap_bytes } => {
            w.put_constrained(0, 0, 1);
            w.put_uint(*cap_bytes as u64);
        }
        QueueKind::Codel { target_us, interval_us } => {
            w.put_constrained(1, 0, 1);
            w.put_uint(*target_us as u64);
            w.put_uint(*interval_us as u64);
        }
    }
}

fn get_kind(r: &mut BitReader) -> Result<QueueKind> {
    match r.get_constrained(0, 1)? {
        0 => Ok(QueueKind::Fifo { cap_bytes: r.get_uint()? as u32 }),
        1 => Ok(QueueKind::Codel {
            target_us: r.get_uint()? as u32,
            interval_us: r.get_uint()? as u32,
        }),
        v => Err(CodecError::BadDiscriminant { what: "queue kind", value: v }),
    }
}

fn put_opt_uint<B: ByteSink>(w: &mut BitWriter<B>, v: Option<u64>) {
    w.put_bit(v.is_some());
    if let Some(v) = v {
        w.put_uint(v);
    }
}

fn get_opt_uint(r: &mut BitReader) -> Result<Option<u64>> {
    if r.get_bit()? {
        Ok(Some(r.get_uint()?))
    } else {
        Ok(None)
    }
}

fn put_rule<B: ByteSink>(w: &mut BitWriter<B>, rule: &FiveTupleRule) {
    w.put_uint(rule.id as u64);
    put_opt_uint(w, rule.src_ip.map(u64::from));
    put_opt_uint(w, rule.dst_ip.map(u64::from));
    put_opt_uint(w, rule.src_port.map(u64::from));
    put_opt_uint(w, rule.dst_port.map(u64::from));
    put_opt_uint(w, rule.proto.map(u64::from));
}

fn get_rule(r: &mut BitReader) -> Result<FiveTupleRule> {
    Ok(FiveTupleRule {
        id: r.get_uint()? as u32,
        src_ip: get_opt_uint(r)?.map(|v| v as u32),
        dst_ip: get_opt_uint(r)?.map(|v| v as u32),
        src_port: get_opt_uint(r)?.map(|v| v as u16),
        dst_port: get_opt_uint(r)?.map(|v| v as u16),
        proto: get_opt_uint(r)?.map(|v| v as u8),
    })
}

fn put_pacer<B: ByteSink>(w: &mut BitWriter<B>, p: &PacerConf) {
    match p {
        PacerConf::None => w.put_constrained(0, 0, 1),
        PacerConf::Bdp { target_delay_us } => {
            w.put_constrained(1, 0, 1);
            w.put_uint(*target_delay_us as u64);
        }
    }
}

fn get_pacer(r: &mut BitReader) -> Result<PacerConf> {
    match r.get_constrained(0, 1)? {
        0 => Ok(PacerConf::None),
        1 => Ok(PacerConf::Bdp { target_delay_us: r.get_uint()? as u32 }),
        v => Err(CodecError::BadDiscriminant { what: "pacer", value: v }),
    }
}

// ---------------------------------------------------------------------------
// FB helpers
// ---------------------------------------------------------------------------

fn enc_rule_fb<B: ByteSink>(b: &mut FbBuilder<B>, rule: &FiveTupleRule) -> u32 {
    let mut t = TableBuilder::new();
    t.u32(0, rule.id);
    if let Some(v) = rule.src_ip {
        t.u32(1, v);
    }
    if let Some(v) = rule.dst_ip {
        t.u32(2, v);
    }
    if let Some(v) = rule.src_port {
        t.u16(3, v);
    }
    if let Some(v) = rule.dst_port {
        t.u16(4, v);
    }
    if let Some(v) = rule.proto {
        t.u8(5, v);
    }
    t.end(b)
}

fn dec_rule_fb(t: &FbTable) -> Result<FiveTupleRule> {
    Ok(FiveTupleRule {
        id: t.req_u32(0, "rule id")?,
        src_ip: t.u32(1)?,
        dst_ip: t.u32(2)?,
        src_port: t.u16(3)?,
        dst_port: t.u16(4)?,
        proto: t.u8(5)?,
    })
}

impl SmPayload for TcCtrl {
    fn encode_per<B: ByteSink>(&self, w: &mut BitWriter<B>) {
        match self {
            TcCtrl::AddQueue { id, kind } => {
                w.put_constrained(0, 0, 5);
                w.put_uint(*id as u64);
                put_kind(w, kind);
            }
            TcCtrl::DelQueue { id } => {
                w.put_constrained(1, 0, 5);
                w.put_uint(*id as u64);
            }
            TcCtrl::AddRule { rule, queue, precedence } => {
                w.put_constrained(2, 0, 5);
                put_rule(w, rule);
                w.put_uint(*queue as u64);
                w.put_uint(*precedence as u64);
            }
            TcCtrl::DelRule { rule_id } => {
                w.put_constrained(3, 0, 5);
                w.put_uint(*rule_id as u64);
            }
            TcCtrl::SetSched { algo, weights } => {
                w.put_constrained(4, 0, 5);
                w.put_constrained(*algo as u64, 0, 2);
                w.put_length(weights.len());
                for wt in weights {
                    w.put_uint(*wt as u64);
                }
            }
            TcCtrl::SetPacer { pacer } => {
                w.put_constrained(5, 0, 5);
                put_pacer(w, pacer);
            }
        }
    }

    fn decode_per(r: &mut BitReader) -> Result<Self> {
        match r.get_constrained(0, 5)? {
            0 => Ok(TcCtrl::AddQueue { id: r.get_uint()? as u32, kind: get_kind(r)? }),
            1 => Ok(TcCtrl::DelQueue { id: r.get_uint()? as u32 }),
            2 => Ok(TcCtrl::AddRule {
                rule: get_rule(r)?,
                queue: r.get_uint()? as u32,
                precedence: r.get_uint()? as u32,
            }),
            3 => Ok(TcCtrl::DelRule { rule_id: r.get_uint()? as u32 }),
            4 => {
                let a = r.get_constrained(0, 2)? as u8;
                let algo = TcSchedAlgo::from_u8(a)
                    .ok_or(CodecError::BadDiscriminant { what: "tc sched", value: a as u64 })?;
                let n = r.get_length()?;
                if n > 4096 {
                    return Err(CodecError::Malformed { what: "too many weights" });
                }
                let mut weights = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    weights.push(r.get_uint()? as u32);
                }
                Ok(TcCtrl::SetSched { algo, weights })
            }
            5 => Ok(TcCtrl::SetPacer { pacer: get_pacer(r)? }),
            v => Err(CodecError::BadDiscriminant { what: "tc ctrl", value: v }),
        }
    }

    fn encode_fb<B: ByteSink>(&self, b: &mut FbBuilder<B>) -> u32 {
        match self {
            TcCtrl::AddQueue { id, kind } => {
                let mut t = TableBuilder::new();
                t.u8(0, 0).u32(1, *id);
                match kind {
                    QueueKind::Fifo { cap_bytes } => {
                        t.u8(2, 0).u32(3, *cap_bytes);
                    }
                    QueueKind::Codel { target_us, interval_us } => {
                        t.u8(2, 1).u32(3, *target_us).u32(4, *interval_us);
                    }
                }
                t.end(b)
            }
            TcCtrl::DelQueue { id } => {
                let mut t = TableBuilder::new();
                t.u8(0, 1).u32(1, *id);
                t.end(b)
            }
            TcCtrl::AddRule { rule, queue, precedence } => {
                let rule = enc_rule_fb(b, rule);
                let mut t = TableBuilder::new();
                t.u8(0, 2).off(5, rule).u32(1, *queue).u32(3, *precedence);
                t.end(b)
            }
            TcCtrl::DelRule { rule_id } => {
                let mut t = TableBuilder::new();
                t.u8(0, 3).u32(1, *rule_id);
                t.end(b)
            }
            TcCtrl::SetSched { algo, weights } => {
                let wv = b.vec_u32(weights);
                let mut t = TableBuilder::new();
                t.u8(0, 4).u8(2, *algo as u8).off(5, wv);
                t.end(b)
            }
            TcCtrl::SetPacer { pacer } => {
                let mut t = TableBuilder::new();
                t.u8(0, 5);
                match pacer {
                    PacerConf::None => t.u8(2, 0),
                    PacerConf::Bdp { target_delay_us } => t.u8(2, 1).u32(3, *target_delay_us),
                };
                t.end(b)
            }
        }
    }

    fn decode_fb(t: &FbTable) -> Result<Self> {
        match t.req_u8(0, "tc ctrl kind")? {
            0 => {
                let id = t.req_u32(1, "queue id")?;
                let kind = match t.req_u8(2, "queue kind")? {
                    0 => QueueKind::Fifo { cap_bytes: t.req_u32(3, "cap")? },
                    1 => QueueKind::Codel {
                        target_us: t.req_u32(3, "target")?,
                        interval_us: t.req_u32(4, "interval")?,
                    },
                    v => {
                        return Err(CodecError::BadDiscriminant {
                            what: "queue kind",
                            value: v as u64,
                        })
                    }
                };
                Ok(TcCtrl::AddQueue { id, kind })
            }
            1 => Ok(TcCtrl::DelQueue { id: t.req_u32(1, "queue id")? }),
            2 => Ok(TcCtrl::AddRule {
                rule: dec_rule_fb(&t.req_table(5, "rule")?)?,
                queue: t.req_u32(1, "queue")?,
                precedence: t.req_u32(3, "precedence")?,
            }),
            3 => Ok(TcCtrl::DelRule { rule_id: t.req_u32(1, "rule id")? }),
            4 => {
                let a = t.req_u8(2, "tc sched")?;
                let v = t.vector_or_empty(5)?;
                let mut weights = Vec::with_capacity(v.len());
                for i in 0..v.len() {
                    weights.push(v.u32_at(i)?);
                }
                Ok(TcCtrl::SetSched {
                    algo: TcSchedAlgo::from_u8(a)
                        .ok_or(CodecError::BadDiscriminant { what: "tc sched", value: a as u64 })?,
                    weights,
                })
            }
            5 => {
                let pacer = match t.req_u8(2, "pacer kind")? {
                    0 => PacerConf::None,
                    1 => PacerConf::Bdp { target_delay_us: t.req_u32(3, "target delay")? },
                    v => {
                        return Err(CodecError::BadDiscriminant { what: "pacer", value: v as u64 })
                    }
                };
                Ok(TcCtrl::SetPacer { pacer })
            }
            v => Err(CodecError::BadDiscriminant { what: "tc ctrl", value: v as u64 }),
        }
    }
}

impl SmPayload for TcStatsInd {
    fn encode_per<B: ByteSink>(&self, w: &mut BitWriter<B>) {
        w.put_uint(self.tstamp_ms);
        w.put_bits(self.rnti as u64, 16);
        w.put_bits(self.drb_id as u64, 8);
        w.put_length(self.queues.len());
        for q in &self.queues {
            w.put_uint(q.id as u64);
            w.put_uint(q.backlog_bytes);
            w.put_uint(q.backlog_pkts as u64);
            w.put_uint(q.sojourn_us_avg);
            w.put_uint(q.sojourn_us_max);
            w.put_uint(q.drops);
            w.put_uint(q.tx_pkts);
            w.put_uint(q.tx_bytes);
        }
        w.put_uint(self.pacer_rate_kbps);
    }

    fn decode_per(r: &mut BitReader) -> Result<Self> {
        let tstamp_ms = r.get_uint()?;
        let rnti = r.get_bits(16)? as u16;
        let drb_id = r.get_bits(8)? as u8;
        let n = r.get_length()?;
        if n > 4096 {
            return Err(CodecError::Malformed { what: "too many queues" });
        }
        let mut queues = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            queues.push(TcQueueStats {
                id: r.get_uint()? as u32,
                backlog_bytes: r.get_uint()?,
                backlog_pkts: r.get_uint()? as u32,
                sojourn_us_avg: r.get_uint()?,
                sojourn_us_max: r.get_uint()?,
                drops: r.get_uint()?,
                tx_pkts: r.get_uint()?,
                tx_bytes: r.get_uint()?,
            });
        }
        let pacer_rate_kbps = r.get_uint()?;
        Ok(TcStatsInd { tstamp_ms, rnti, drb_id, queues, pacer_rate_kbps })
    }

    fn encode_fb<B: ByteSink>(&self, b: &mut FbBuilder<B>) -> u32 {
        let offs: Vec<u32> = self
            .queues
            .iter()
            .map(|q| {
                let mut t = TableBuilder::new();
                t.u32(0, q.id)
                    .u64(1, q.backlog_bytes)
                    .u32(2, q.backlog_pkts)
                    .u64(3, q.sojourn_us_avg)
                    .u64(4, q.sojourn_us_max)
                    .u64(5, q.drops)
                    .u64(6, q.tx_pkts)
                    .u64(7, q.tx_bytes);
                t.end(b)
            })
            .collect();
        let queues = b.vec_off(&offs);
        let mut t = TableBuilder::new();
        t.u64(0, self.tstamp_ms)
            .u16(1, self.rnti)
            .u8(2, self.drb_id)
            .off(3, queues)
            .u64(4, self.pacer_rate_kbps);
        t.end(b)
    }

    fn decode_fb(t: &FbTable) -> Result<Self> {
        let v = t.vector_or_empty(3)?;
        let mut queues = Vec::with_capacity(v.len());
        for i in 0..v.len() {
            let qt = v.table_at(i)?;
            queues.push(TcQueueStats {
                id: qt.req_u32(0, "queue id")?,
                backlog_bytes: qt.req_u64(1, "backlog bytes")?,
                backlog_pkts: qt.req_u32(2, "backlog pkts")?,
                sojourn_us_avg: qt.req_u64(3, "sojourn avg")?,
                sojourn_us_max: qt.req_u64(4, "sojourn max")?,
                drops: qt.req_u64(5, "drops")?,
                tx_pkts: qt.req_u64(6, "tx pkts")?,
                tx_bytes: qt.req_u64(7, "tx bytes")?,
            });
        }
        Ok(TcStatsInd {
            tstamp_ms: t.req_u64(0, "tstamp")?,
            rnti: t.req_u16(1, "rnti")?,
            drb_id: t.req_u8(2, "drb")?,
            queues,
            pacer_rate_kbps: t.req_u64(4, "pacer rate")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::*;

    #[test]
    fn ctrl_roundtrip() {
        roundtrip_both(&TcCtrl::AddQueue { id: 1, kind: QueueKind::Fifo { cap_bytes: 0 } });
        roundtrip_both(&TcCtrl::AddQueue {
            id: 2,
            kind: QueueKind::Codel { target_us: 5_000, interval_us: 100_000 },
        });
        roundtrip_both(&TcCtrl::DelQueue { id: 2 });
        roundtrip_both(&TcCtrl::AddRule {
            rule: FiveTupleRule {
                id: 9,
                src_ip: Some(0x0A00_0001),
                dst_ip: None,
                src_port: None,
                dst_port: Some(5004),
                proto: Some(17),
            },
            queue: 1,
            precedence: 0,
        });
        roundtrip_both(&TcCtrl::AddRule {
            rule: FiveTupleRule::default(),
            queue: 0,
            precedence: u32::MAX,
        });
        roundtrip_both(&TcCtrl::DelRule { rule_id: 9 });
        roundtrip_both(&TcCtrl::SetSched { algo: TcSchedAlgo::RoundRobin, weights: vec![] });
        roundtrip_both(&TcCtrl::SetSched {
            algo: TcSchedAlgo::WeightedRoundRobin,
            weights: vec![1, 3, 9],
        });
        roundtrip_both(&TcCtrl::SetPacer { pacer: PacerConf::None });
        roundtrip_both(&TcCtrl::SetPacer { pacer: PacerConf::Bdp { target_delay_us: 10_000 } });
        garbage_rejected::<TcCtrl>();
    }

    #[test]
    fn stats_roundtrip() {
        roundtrip_both(&TcStatsInd::default());
        roundtrip_both(&TcStatsInd {
            tstamp_ms: 60_000,
            rnti: 0x4601,
            drb_id: 1,
            queues: vec![
                TcQueueStats {
                    id: 0,
                    backlog_bytes: 2_800_000,
                    backlog_pkts: 1900,
                    sojourn_us_avg: 580_000,
                    sojourn_us_max: 910_000,
                    drops: 42,
                    tx_pkts: 100_000,
                    tx_bytes: 150_000_000,
                },
                TcQueueStats { id: 1, sojourn_us_avg: 900, ..Default::default() },
            ],
            pacer_rate_kbps: 38_000,
        });
        garbage_rejected::<TcStatsInd>();
    }

    #[test]
    fn rule_matching() {
        let rule = FiveTupleRule {
            id: 1,
            src_ip: Some(0x0A000001),
            dst_ip: None,
            src_port: None,
            dst_port: Some(5004),
            proto: Some(17),
        };
        assert!(rule.matches(0x0A000001, 0xC0A80001, 40000, 5004, 17));
        assert!(!rule.matches(0x0A000002, 0xC0A80001, 40000, 5004, 17)); // src ip
        assert!(!rule.matches(0x0A000001, 0xC0A80001, 40000, 5005, 17)); // dst port
        assert!(!rule.matches(0x0A000001, 0xC0A80001, 40000, 5004, 6)); // proto
        let wildcard = FiveTupleRule::default();
        assert!(wildcard.matches(1, 2, 3, 4, 5));
    }
}
