//! PDCP statistics service model.
//!
//! Per-bearer PDCP packet/byte counters, completing the "MAC, RLC, and
//! PDCP" statistics bundle the paper exports at 1 ms in §5.1.

use flexric_codec::error::{CodecError, Result};
use flexric_codec::fb::{FbBuilder, FbTable, TableBuilder};
use flexric_codec::per::{BitReader, BitWriter};
use flexric_codec::ByteSink;

use crate::delta::DeltaRows;
use crate::SmPayload;

/// Per-(UE, DRB) PDCP statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PdcpBearerStats {
    /// Owning UE.
    pub rnti: u16,
    /// Data radio bearer id.
    pub drb_id: u8,
    /// PDUs sent downlink in the reporting period.
    pub tx_pdus: u64,
    /// Bytes sent downlink in the reporting period.
    pub tx_bytes: u64,
    /// PDUs received uplink.
    pub rx_pdus: u64,
    /// Bytes received uplink.
    pub rx_bytes: u64,
    /// Cumulative downlink SDU bytes since attach.
    pub tx_aggr_bytes: u64,
    /// Cumulative uplink SDU bytes since attach.
    pub rx_aggr_bytes: u64,
    /// Out-of-window discards.
    pub rx_discards: u64,
}

/// A PDCP statistics indication.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PdcpStatsInd {
    /// Snapshot time in milliseconds since cell start.
    pub tstamp_ms: u64,
    /// Per-bearer statistics.
    pub bearers: Vec<PdcpBearerStats>,
}

fn put_bearer<B: ByteSink>(w: &mut BitWriter<B>, s: &PdcpBearerStats) {
    w.put_bits(s.rnti as u64, 16);
    w.put_bits(s.drb_id as u64, 8);
    w.put_uint(s.tx_pdus);
    w.put_uint(s.tx_bytes);
    w.put_uint(s.rx_pdus);
    w.put_uint(s.rx_bytes);
    w.put_uint(s.tx_aggr_bytes);
    w.put_uint(s.rx_aggr_bytes);
    w.put_uint(s.rx_discards);
}

fn get_bearer(r: &mut BitReader) -> Result<PdcpBearerStats> {
    Ok(PdcpBearerStats {
        rnti: r.get_bits(16)? as u16,
        drb_id: r.get_bits(8)? as u8,
        tx_pdus: r.get_uint()?,
        tx_bytes: r.get_uint()?,
        rx_pdus: r.get_uint()?,
        rx_bytes: r.get_uint()?,
        tx_aggr_bytes: r.get_uint()?,
        rx_aggr_bytes: r.get_uint()?,
        rx_discards: r.get_uint()?,
    })
}

fn enc_bearer_fb<B: ByteSink>(b: &mut FbBuilder<B>, s: &PdcpBearerStats) -> u32 {
    let mut t = TableBuilder::new();
    t.u16(0, s.rnti)
        .u8(1, s.drb_id)
        .u64(2, s.tx_pdus)
        .u64(3, s.tx_bytes)
        .u64(4, s.rx_pdus)
        .u64(5, s.rx_bytes)
        .u64(6, s.tx_aggr_bytes)
        .u64(7, s.rx_aggr_bytes)
        .u64(8, s.rx_discards);
    t.end(b)
}

fn dec_bearer_fb(t: &FbTable) -> Result<PdcpBearerStats> {
    Ok(PdcpBearerStats {
        rnti: t.req_u16(0, "rnti")?,
        drb_id: t.req_u8(1, "drb")?,
        tx_pdus: t.req_u64(2, "tx pdus")?,
        tx_bytes: t.req_u64(3, "tx bytes")?,
        rx_pdus: t.req_u64(4, "rx pdus")?,
        rx_bytes: t.req_u64(5, "rx bytes")?,
        tx_aggr_bytes: t.req_u64(6, "tx aggr")?,
        rx_aggr_bytes: t.req_u64(7, "rx aggr")?,
        rx_discards: t.req_u64(8, "discards")?,
    })
}

impl SmPayload for PdcpStatsInd {
    fn encode_per<B: ByteSink>(&self, w: &mut BitWriter<B>) {
        w.put_uint(self.tstamp_ms);
        w.put_length(self.bearers.len());
        for s in &self.bearers {
            put_bearer(w, s);
        }
    }

    fn decode_per(r: &mut BitReader) -> Result<Self> {
        let tstamp_ms = r.get_uint()?;
        let n = r.get_length()?;
        if n > 65536 {
            return Err(CodecError::Malformed { what: "too many bearers" });
        }
        let mut bearers = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            bearers.push(get_bearer(r)?);
        }
        Ok(PdcpStatsInd { tstamp_ms, bearers })
    }

    fn encode_fb<B: ByteSink>(&self, b: &mut FbBuilder<B>) -> u32 {
        let offs: Vec<u32> = self.bearers.iter().map(|s| enc_bearer_fb(b, s)).collect();
        let bearers = b.vec_off(&offs);
        let mut t = TableBuilder::new();
        t.u64(0, self.tstamp_ms).off(1, bearers);
        t.end(b)
    }

    fn decode_fb(t: &FbTable) -> Result<Self> {
        let v = t.vector_or_empty(1)?;
        let mut bearers = Vec::with_capacity(v.len());
        for i in 0..v.len() {
            bearers.push(dec_bearer_fb(&v.table_at(i)?)?);
        }
        Ok(PdcpStatsInd { tstamp_ms: t.req_u64(0, "tstamp")?, bearers })
    }
}

impl DeltaRows for PdcpStatsInd {
    type Row = PdcpBearerStats;
    const FIELD_COUNT: u32 = 7;
    const NAME: &'static str = "pdcp";

    fn tstamp_ms(&self) -> u64 {
        self.tstamp_ms
    }
    fn set_tstamp_ms(&mut self, t: u64) {
        self.tstamp_ms = t;
    }
    fn rows(&self) -> &[PdcpBearerStats] {
        &self.bearers
    }
    fn rows_mut(&mut self) -> &mut Vec<PdcpBearerStats> {
        &mut self.bearers
    }
    fn row_key(row: &PdcpBearerStats) -> u32 {
        row.rnti as u32 | ((row.drb_id as u32) << 16)
    }
    fn field(row: &PdcpBearerStats, i: u32) -> u64 {
        match i {
            0 => row.tx_pdus,
            1 => row.tx_bytes,
            2 => row.rx_pdus,
            3 => row.rx_bytes,
            4 => row.tx_aggr_bytes,
            5 => row.rx_aggr_bytes,
            _ => row.rx_discards,
        }
    }
    fn set_field(row: &mut PdcpBearerStats, i: u32, v: u64) {
        match i {
            0 => row.tx_pdus = v,
            1 => row.tx_bytes = v,
            2 => row.rx_pdus = v,
            3 => row.rx_bytes = v,
            4 => row.tx_aggr_bytes = v,
            5 => row.rx_aggr_bytes = v,
            _ => row.rx_discards = v,
        }
    }
    fn new_row(key: u32) -> PdcpBearerStats {
        PdcpBearerStats { rnti: key as u16, drb_id: (key >> 16) as u8, ..Default::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::*;

    #[test]
    fn roundtrip() {
        roundtrip_both(&PdcpStatsInd::default());
        roundtrip_both(&PdcpStatsInd {
            tstamp_ms: 77,
            bearers: vec![
                PdcpBearerStats {
                    rnti: 0x4601,
                    drb_id: 1,
                    tx_pdus: 12,
                    tx_bytes: 18_000,
                    rx_pdus: 4,
                    rx_bytes: 400,
                    tx_aggr_bytes: 1 << 40,
                    rx_aggr_bytes: 1 << 22,
                    rx_discards: 2,
                },
                PdcpBearerStats { rnti: 0x4602, drb_id: 2, ..Default::default() },
            ],
        });
        garbage_rejected::<PdcpStatsInd>();
    }
}
