//! Delta-encoded indication streams: dirty-field bitmaps, keyframes, and
//! suppression for the periodic monitoring service models.
//!
//! A full KPI snapshot every report period for every agent makes
//! monitoring traffic the dominant byte stream at scale ("Power-Efficient
//! RAN Intelligent Controllers Through Optimized KPI Monitoring",
//! PAPERS.md).  This module lets a report subscription opt into a *delta
//! stream* ([`crate::trigger::ReportMode::Delta`]):
//!
//! * each indication carries only the fields that changed since the last
//!   emitted report, as a per-row dirty bitmap ([`DeltaRows::FIELD_COUNT`]
//!   bits) plus the changed values;
//! * every `keyframe_every`-th report opportunity emits a *keyframe* — the
//!   full snapshot in the subscription's [`SmCodec`] — bounding the resync
//!   window and doubling as liveness for quiescent cells;
//! * a report whose content hash ([`content_hash`]) equals the previous
//!   report's is *suppressed* entirely (nothing is sent; the server's last
//!   reconstruction stays valid);
//! * frames are tagged with a stream *epoch* that bumps on every
//!   (re)subscription, mode change, and resync request, so the
//!   reconnect/replay machinery of the procedure layer forces a keyframe
//!   instead of letting stale deltas apply to a stale base.  Period-only
//!   retunes deliberately do *not* bump the epoch: sequence continuity
//!   over the ordered transport keeps the receiver's base valid, so
//!   backing off a quiescent cell costs no keyframe.
//!
//! The decoder reconstructs the full snapshot from the last keyframe plus
//! deltas and verifies a 64-bit post-hash carried in every delta frame:
//! any divergence (reordering, lost frame, codec bug) surfaces as
//! [`DeltaEvent::NeedKeyframe`] rather than silently wrong statistics, and
//! the controller answers it by retuning the subscription (which forces a
//! keyframe).  Reconstruction is exact: re-encoding the reconstructed
//! snapshot is byte-identical to encoding the sender's snapshot.
//!
//! The delta frame itself uses a codec-independent bit-packed wire format
//! (like `BearerAddr`) — dirty bitmaps are inherently bit-oriented — while
//! embedded keyframes use the subscription's negotiated [`SmCodec`].

use std::collections::HashMap;
use std::hash::Hash;

use bytes::{Bytes, BytesMut};
use flexric_codec::error::{CodecError, Result};
use flexric_codec::per::{BitReader, BitWriter};

use crate::trigger::ReportMode;
use crate::{SmCodec, SmPayload};

/// Rows-of-scalars view of a snapshot payload, the shape all periodic
/// monitoring SMs share: a timestamp, at most one auxiliary header scalar,
/// and a list of keyed rows whose fields all widen to `u64`.
///
/// Implementations must be *exact*: `field`/`set_field` round-trip every
/// representable value, and two snapshots with equal keys, fields, aux and
/// [`DeltaRows::structure_sig`] encode byte-identically (timestamps are
/// carried explicitly by delta frames).
pub trait DeltaRows: SmPayload + Clone + PartialEq {
    /// The row type.
    type Row: Clone + PartialEq;
    /// Diffable fields per row, excluding the key (≤ 32).
    const FIELD_COUNT: u32;
    /// Label for metrics and debugging.
    const NAME: &'static str;

    /// Snapshot timestamp (always changes; carried explicitly, excluded
    /// from the content hash so pure timestamp advances suppress).
    fn tstamp_ms(&self) -> u64;
    /// Sets the snapshot timestamp.
    fn set_tstamp_ms(&mut self, t: u64);
    /// Auxiliary header scalar (e.g. the MAC cell PRB capacity); `0` if
    /// the payload has none.
    fn aux(&self) -> u64 {
        0
    }
    /// Sets the auxiliary header scalar.
    fn set_aux(&mut self, _v: u64) {}
    /// The rows.
    fn rows(&self) -> &[Self::Row];
    /// Mutable row storage, for reconstruction.
    fn rows_mut(&mut self) -> &mut Vec<Self::Row>;
    /// Stable identity of a row within the stream (e.g. RNTI, or
    /// RNTI|DRB).  Rows are diffed against the previous row of the same
    /// key; keys that disappear are encoded as removals.
    fn row_key(row: &Self::Row) -> u32;
    /// Reads field `i` (0-based, `< FIELD_COUNT`) widened to `u64`.
    fn field(row: &Self::Row, i: u32) -> u64;
    /// Writes field `i` (narrowing as the row type requires).
    fn set_field(row: &mut Self::Row, i: u32, v: u64);
    /// A fresh row for `key` with all fields at their default; new keys
    /// are encoded as a full-bitmap diff against this.
    fn new_row(key: u32) -> Self::Row;
    /// Signature of row identity not captured by keys and fields (e.g.
    /// the KPM measurement-name sequence).  A change forces a keyframe.
    fn structure_sig(&self) -> u64 {
        0
    }
}

/// FNV-1a 64-bit, the stream's content hash primitive.
#[inline]
fn fnv1a(h: u64, v: u64) -> u64 {
    let mut h = h;
    for byte in v.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Seed for FNV-1a.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Hashes a string into the stream hash (for `structure_sig` impls).
pub fn hash_str(h: u64, s: &str) -> u64 {
    let mut h = fnv1a(h, s.len() as u64);
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Content hash of a snapshot: aux, structure signature, and every row's
/// key and fields, in row order.  The timestamp is deliberately excluded —
/// a report that differs only by timestamp is suppressible.
pub fn content_hash<T: DeltaRows>(snap: &T) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, snap.aux());
    h = fnv1a(h, snap.structure_sig());
    h = fnv1a(h, snap.rows().len() as u64);
    for row in snap.rows() {
        h = fnv1a(h, T::row_key(row) as u64);
        for i in 0..T::FIELD_COUNT {
            h = fnv1a(h, T::field(row, i));
        }
    }
    h
}

// ---------------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------------

/// Global SM-report series (PR 5 convention: registered at zero on first
/// touch of the layer, so every series is visible even while idle — call
/// [`register_metrics`] at startup from any component on the report path).
pub struct DeltaObs {
    /// `flexric_sm_report_bytes_total{mode="full"}`.
    pub bytes_full: flexric_obs::Counter,
    /// `flexric_sm_report_bytes_total{mode="delta"}`.
    pub bytes_delta: flexric_obs::Counter,
    /// `flexric_sm_report_bytes_total{mode="keyframe"}`.
    pub bytes_keyframe: flexric_obs::Counter,
    /// Reports suppressed by the unchanged-snapshot hash.
    pub suppressed: flexric_obs::Counter,
    /// Keyframes emitted.
    pub keyframes: flexric_obs::Counter,
    /// Decoder resyncs requested (epoch/sequence/hash divergence).
    pub resyncs: flexric_obs::Counter,
    /// Malformed delta frames (wire-level decode failures).
    pub decode_errors: flexric_obs::Counter,
}

/// The registered series (see [`DeltaObs`]).
pub fn obs() -> &'static DeltaObs {
    static OBS: std::sync::OnceLock<DeltaObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| {
        let bytes = "SM report payload bytes emitted, by report mode";
        DeltaObs {
            bytes_full: flexric_obs::counter_with(
                "flexric_sm_report_bytes_total",
                &[("mode", "full")],
                bytes,
            ),
            bytes_delta: flexric_obs::counter_with(
                "flexric_sm_report_bytes_total",
                &[("mode", "delta")],
                bytes,
            ),
            bytes_keyframe: flexric_obs::counter_with(
                "flexric_sm_report_bytes_total",
                &[("mode", "keyframe")],
                bytes,
            ),
            suppressed: flexric_obs::counter(
                "flexric_sm_reports_suppressed_total",
                "Reports suppressed because the snapshot content was unchanged",
            ),
            keyframes: flexric_obs::counter(
                "flexric_sm_keyframes_total",
                "Full-snapshot keyframes emitted on delta streams",
            ),
            resyncs: flexric_obs::counter(
                "flexric_sm_delta_resyncs_total",
                "Delta decoder resyncs (epoch/sequence/hash divergence)",
            ),
            decode_errors: flexric_obs::counter(
                "flexric_sm_delta_decode_errors_total",
                "Malformed delta frames rejected by the decoder",
            ),
        }
    })
}

/// Registers every SM-report series at zero (idempotent).
pub fn register_metrics() {
    let _ = obs();
}

// ---------------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------------

/// Upper bound on rows per frame, mirroring the SM decoders' own limits.
const MAX_ROWS: usize = 65_536;

/// A decoded delta frame, before application.
struct DeltaBody {
    tstamp_ms: u64,
    aux: Option<u64>,
    /// `(key, bitmap, values-in-ascending-bit-order)`.
    changed: Vec<(u32, u32, Vec<u64>)>,
    removed: Vec<u32>,
    /// Explicit final key order, when append-order reconstruction would
    /// be wrong (row reordering between snapshots).
    order: Option<Vec<u32>>,
    post_hash: u64,
}

fn encode_frame_header(w: &mut BitWriter, epoch: u32, seq: u32, is_delta: bool) {
    w.put_bits(epoch as u64, 32);
    w.put_bits(seq as u64, 32);
    w.put_bit(is_delta);
}

fn encode_delta_body<T: DeltaRows>(w: &mut BitWriter, body: &DeltaBody) {
    w.put_uint(body.tstamp_ms);
    w.put_bit(body.aux.is_some());
    if let Some(aux) = body.aux {
        w.put_uint(aux);
    }
    w.put_length(body.changed.len());
    for (key, bitmap, values) in &body.changed {
        w.put_bits(*key as u64, 32);
        w.put_bits(*bitmap as u64, T::FIELD_COUNT);
        for v in values {
            w.put_uint(*v);
        }
    }
    w.put_length(body.removed.len());
    for key in &body.removed {
        w.put_bits(*key as u64, 32);
    }
    w.put_bit(body.order.is_some());
    if let Some(order) = &body.order {
        w.put_length(order.len());
        for key in order {
            w.put_bits(*key as u64, 32);
        }
    }
    w.put_bits(body.post_hash, 64);
}

fn decode_delta_body<T: DeltaRows>(r: &mut BitReader) -> Result<DeltaBody> {
    let tstamp_ms = r.get_uint()?;
    let aux = if r.get_bit()? { Some(r.get_uint()?) } else { None };
    let n_changed = r.get_length()?;
    if n_changed > MAX_ROWS {
        return Err(CodecError::Malformed { what: "too many changed rows" });
    }
    let mut changed = Vec::with_capacity(n_changed.min(1024));
    for _ in 0..n_changed {
        let key = r.get_bits(32)? as u32;
        let bitmap = r.get_bits(T::FIELD_COUNT)? as u32;
        let mut values = Vec::with_capacity(bitmap.count_ones() as usize);
        for _ in 0..bitmap.count_ones() {
            values.push(r.get_uint()?);
        }
        changed.push((key, bitmap, values));
    }
    let n_removed = r.get_length()?;
    if n_removed > MAX_ROWS {
        return Err(CodecError::Malformed { what: "too many removed rows" });
    }
    let mut removed = Vec::with_capacity(n_removed.min(1024));
    for _ in 0..n_removed {
        removed.push(r.get_bits(32)? as u32);
    }
    let order = if r.get_bit()? {
        let n = r.get_length()?;
        if n > MAX_ROWS {
            return Err(CodecError::Malformed { what: "order too long" });
        }
        let mut order = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            order.push(r.get_bits(32)? as u32);
        }
        Some(order)
    } else {
        None
    };
    let post_hash = r.get_bits(64)?;
    Ok(DeltaBody { tstamp_ms, aux, changed, removed, order, post_hash })
}

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

/// What one report opportunity produced on a delta stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaOut {
    /// A full-snapshot keyframe frame.
    Keyframe(Vec<u8>),
    /// A dirty-field delta frame.
    Delta(Vec<u8>),
    /// Nothing: the snapshot content was unchanged.
    Suppressed,
}

/// Per-subscription delta encoder: diffs each snapshot against the last
/// emitted one, schedules keyframes, and suppresses unchanged reports.
#[derive(Debug)]
pub struct DeltaEncoder<T: DeltaRows> {
    /// Stream incarnation; bumped by [`DeltaEncoder::force_keyframe`]
    /// (resubscribe, retune, reconnect replay).
    epoch: u32,
    /// Sequence of the last *emitted* frame (suppressed reports do not
    /// advance it, so the decoder never sees a gap from suppression).
    seq: u32,
    /// Report opportunities since the last keyframe.
    since_key: u32,
    keyframe_every: u32,
    last: Option<T>,
    last_hash: u64,
}

impl<T: DeltaRows> DeltaEncoder<T> {
    /// A fresh stream; the first report is always a keyframe.
    pub fn new(keyframe_every: u32) -> Self {
        register_metrics();
        DeltaEncoder {
            epoch: 1,
            seq: 0,
            since_key: 0,
            keyframe_every: keyframe_every.max(1),
            last: None,
            last_hash: 0,
        }
    }

    /// Current stream epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Starts a new stream incarnation: the next report is a keyframe
    /// under a fresh epoch.  Called on resubscription, retune, and
    /// reconnect replay so the receiver never applies deltas across a
    /// discontinuity.
    pub fn force_keyframe(&mut self) {
        self.epoch = self.epoch.wrapping_add(1).max(1);
        self.last = None;
        self.since_key = 0;
    }

    /// Encodes one report opportunity.  Exactly one of: a keyframe (first
    /// report, periodic refresh, or structural change), a delta frame, or
    /// suppression.
    pub fn encode(&mut self, snap: &T, codec: SmCodec) -> DeltaOut {
        self.since_key += 1;
        let hash = content_hash(snap);
        let keyframe_due = self.since_key >= self.keyframe_every;
        let base_ok = match &self.last {
            None => false,
            Some(last) => {
                last.structure_sig() == snap.structure_sig() && unique_keys::<T>(snap.rows())
            }
        };
        if base_ok && !keyframe_due && hash == self.last_hash {
            obs().suppressed.inc();
            return DeltaOut::Suppressed;
        }
        if !base_ok || keyframe_due {
            return DeltaOut::Keyframe(self.emit_keyframe(snap, hash, codec));
        }
        let last = self.last.as_ref().expect("base_ok implies last");
        let body = diff(last, snap, hash);
        let mut w = BitWriter::with_capacity(256);
        self.seq = self.seq.wrapping_add(1);
        encode_frame_header(&mut w, self.epoch, self.seq, true);
        encode_delta_body::<T>(&mut w, &body);
        let frame = w.finish();
        // A pathological diff can exceed the keyframe (every field of
        // every row dirty, plus bitmaps); fall back to a keyframe so the
        // stream never costs more than full reporting plus the header.
        let key_len = estimate_keyframe_len(snap, codec);
        if frame.len() > key_len {
            self.seq = self.seq.wrapping_sub(1);
            return DeltaOut::Keyframe(self.emit_keyframe(snap, hash, codec));
        }
        self.last = Some(snap.clone());
        self.last_hash = hash;
        obs().bytes_delta.add(frame.len() as u64);
        DeltaOut::Delta(frame)
    }

    fn emit_keyframe(&mut self, snap: &T, hash: u64, codec: SmCodec) -> Vec<u8> {
        let blob = snap.encode(codec);
        let mut w = BitWriter::with_capacity(blob.len() + 16);
        self.seq = self.seq.wrapping_add(1);
        encode_frame_header(&mut w, self.epoch, self.seq, false);
        w.put_octets(&blob);
        self.since_key = 0;
        self.last = Some(snap.clone());
        self.last_hash = hash;
        let frame = w.finish();
        obs().keyframes.inc();
        obs().bytes_keyframe.add(frame.len() as u64);
        frame
    }
}

/// Whether every row key is unique (delta diffing requires it; duplicate
/// keys — possible for degenerate KPM reports — force keyframes instead).
fn unique_keys<T: DeltaRows>(rows: &[T::Row]) -> bool {
    let mut seen = std::collections::HashSet::with_capacity(rows.len());
    rows.iter().all(|r| seen.insert(T::row_key(r)))
}

fn estimate_keyframe_len<T: DeltaRows>(snap: &T, codec: SmCodec) -> usize {
    // Header (9 B) + length determinant + blob; the blob length dominates.
    9 + 4 + snap.encode(codec).len()
}

fn diff<T: DeltaRows>(prev: &T, cur: &T, post_hash: u64) -> DeltaBody {
    let prev_idx: HashMap<u32, &T::Row> = prev.rows().iter().map(|r| (T::row_key(r), r)).collect();
    let cur_keys: std::collections::HashSet<u32> =
        cur.rows().iter().map(|r| T::row_key(r)).collect();
    let mut changed = Vec::new();
    let mut new_keys = Vec::new();
    for row in cur.rows() {
        let key = T::row_key(row);
        let base_row;
        let is_new = !prev_idx.contains_key(&key);
        let base = match prev_idx.get(&key) {
            Some(p) => *p,
            None => {
                new_keys.push(key);
                base_row = T::new_row(key);
                &base_row
            }
        };
        let mut bitmap = 0u32;
        let mut values = Vec::new();
        for i in 0..T::FIELD_COUNT {
            let v = T::field(row, i);
            if v != T::field(base, i) {
                bitmap |= 1 << i;
                values.push(v);
            }
        }
        // New keys must appear even with an empty bitmap (an all-default
        // row), or the decoder would never materialize them.
        if bitmap != 0 || is_new {
            changed.push((key, bitmap, values));
        }
    }
    let removed: Vec<u32> =
        prev.rows().iter().map(|r| T::row_key(r)).filter(|k| !cur_keys.contains(k)).collect();
    // Expected reconstruction order: surviving previous rows in place,
    // new rows appended in snapshot order.  Carry an explicit order only
    // when the snapshot deviates (reordering).
    let mut expected: Vec<u32> =
        prev.rows().iter().map(|r| T::row_key(r)).filter(|k| cur_keys.contains(k)).collect();
    expected.extend(new_keys.iter().copied());
    let actual: Vec<u32> = cur.rows().iter().map(|r| T::row_key(r)).collect();
    let order = (expected != actual).then_some(actual);
    DeltaBody {
        tstamp_ms: cur.tstamp_ms(),
        aux: (cur.aux() != prev.aux()).then(|| cur.aux()),
        changed,
        removed,
        order,
        post_hash,
    }
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

/// Outcome of feeding one frame to the decoder.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaEvent<T> {
    /// The stream's current full snapshot, reconstructed.
    Snapshot {
        /// The reconstruction (byte-identical to the sender's snapshot).
        snap: T,
        /// Whether any content changed relative to the previous
        /// reconstruction (keyframes of unchanged content report `false`).
        changed: bool,
        /// Whether this frame was a keyframe.
        keyframe: bool,
    },
    /// The frame could not be applied (stale epoch, sequence gap, or hash
    /// divergence); the sender must be asked for a keyframe — e.g. by
    /// retuning the subscription.
    NeedKeyframe {
        /// Why the stream lost sync.
        reason: &'static str,
    },
}

/// Per-subscription delta decoder: holds the last reconstruction and
/// applies keyframes and deltas, verifying the post-hash of every delta.
#[derive(Debug, Default)]
pub struct DeltaDecoder<T: DeltaRows> {
    epoch: u32,
    seq: u32,
    last: Option<T>,
    /// Keyframes applied.
    pub keyframes: u64,
    /// Delta frames applied.
    pub deltas: u64,
    /// Resyncs requested ([`DeltaEvent::NeedKeyframe`] outcomes).
    pub resyncs: u64,
}

impl<T: DeltaRows> DeltaDecoder<T> {
    /// A decoder with no base snapshot; the first useful frame is a
    /// keyframe.
    pub fn new() -> Self {
        register_metrics();
        DeltaDecoder { epoch: 0, seq: 0, last: None, keyframes: 0, deltas: 0, resyncs: 0 }
    }

    /// The current reconstruction, if the stream is in sync.
    pub fn current(&self) -> Option<&T> {
        self.last.as_ref()
    }

    /// Applies one frame.  `Err` means the frame was malformed at the
    /// wire level; [`DeltaEvent::NeedKeyframe`] means it was well-formed
    /// but unusable without a fresh keyframe.
    pub fn apply(&mut self, frame: &[u8], codec: SmCodec) -> Result<DeltaEvent<T>> {
        let res = self.apply_inner(frame, codec);
        match &res {
            Err(_) => obs().decode_errors.inc(),
            Ok(DeltaEvent::NeedKeyframe { .. }) => {
                self.resyncs += 1;
                obs().resyncs.inc();
            }
            Ok(DeltaEvent::Snapshot { .. }) => {}
        }
        res
    }

    fn apply_inner(&mut self, frame: &[u8], codec: SmCodec) -> Result<DeltaEvent<T>> {
        let mut r = BitReader::new(frame);
        let epoch = r.get_bits(32)? as u32;
        let seq = r.get_bits(32)? as u32;
        let is_delta = r.get_bit()?;
        if !is_delta {
            let blob = r.get_octets()?;
            let snap = T::decode(codec, blob)?;
            let changed = match &self.last {
                Some(prev) => content_hash(prev) != content_hash(&snap),
                None => true,
            };
            self.epoch = epoch;
            self.seq = seq;
            self.last = Some(snap.clone());
            self.keyframes += 1;
            return Ok(DeltaEvent::Snapshot { snap, changed, keyframe: true });
        }
        let body = decode_delta_body::<T>(&mut r)?;
        if self.last.is_none() {
            return Ok(DeltaEvent::NeedKeyframe { reason: "no keyframe yet" });
        }
        if epoch != self.epoch {
            return Ok(DeltaEvent::NeedKeyframe { reason: "epoch changed" });
        }
        if seq != self.seq.wrapping_add(1) {
            return Ok(DeltaEvent::NeedKeyframe { reason: "sequence gap" });
        }
        let prev = self.last.as_ref().expect("checked above");
        let Some(snap) = apply_body(prev, &body) else {
            self.last = None;
            return Ok(DeltaEvent::NeedKeyframe { reason: "inconsistent delta" });
        };
        if content_hash(&snap) != body.post_hash {
            // Divergence is terminal for this epoch: drop the base so no
            // further delta applies until a keyframe restores it.
            self.last = None;
            return Ok(DeltaEvent::NeedKeyframe { reason: "hash mismatch" });
        }
        let changed = !body.changed.is_empty() || !body.removed.is_empty() || body.aux.is_some();
        self.seq = seq;
        self.last = Some(snap.clone());
        self.deltas += 1;
        Ok(DeltaEvent::Snapshot { snap, changed, keyframe: false })
    }
}

/// Applies a delta body to the previous reconstruction; `None` if the
/// body references state the base does not have (caught by the post-hash
/// path as a resync anyway, but detected early here).
fn apply_body<T: DeltaRows>(prev: &T, body: &DeltaBody) -> Option<T> {
    let mut snap = prev.clone();
    snap.set_tstamp_ms(body.tstamp_ms);
    if let Some(aux) = body.aux {
        snap.set_aux(aux);
    }
    let removed: std::collections::HashSet<u32> = body.removed.iter().copied().collect();
    let rows = snap.rows_mut();
    rows.retain(|r| !removed.contains(&T::row_key(r)));
    let mut index: HashMap<u32, usize> =
        rows.iter().enumerate().map(|(i, r)| (T::row_key(r), i)).collect();
    for (key, bitmap, values) in &body.changed {
        let idx = match index.get(key) {
            Some(i) => *i,
            None => {
                rows.push(T::new_row(*key));
                index.insert(*key, rows.len() - 1);
                rows.len() - 1
            }
        };
        let row = &mut rows[idx];
        let mut vi = 0;
        for i in 0..T::FIELD_COUNT {
            if bitmap & (1 << i) != 0 {
                T::set_field(row, i, *values.get(vi)?);
                vi += 1;
            }
        }
    }
    if let Some(order) = &body.order {
        if order.len() != rows.len() {
            return None;
        }
        let mut by_key: HashMap<u32, T::Row> =
            rows.drain(..).map(|r| (T::row_key(&r), r)).collect();
        for key in order {
            rows.push(by_key.remove(key)?);
        }
    }
    Some(snap)
}

// ---------------------------------------------------------------------------
// Per-subscription stream sets
// ---------------------------------------------------------------------------

/// What a report opportunity produced, across both report modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportOut {
    /// Send these payload bytes (full snapshot, keyframe, or delta).
    Send(Bytes),
    /// Send nothing (suppressed).
    Suppressed,
}

/// Encoder streams keyed by subscription, with the full/delta mode switch
/// folded in — the agent-side integration point for RAN functions.
#[derive(Debug, Default)]
pub struct DeltaStreams<K: Eq + Hash, T: DeltaRows> {
    streams: HashMap<K, DeltaEncoder<T>>,
    /// Scratch for full-mode encodes ([`SmPayload::encode_into`]); delta
    /// frames already build in the encoder's own buffers.
    scratch: BytesMut,
}

impl<K: Eq + Hash, T: DeltaRows> DeltaStreams<K, T> {
    /// An empty stream set.
    pub fn new() -> Self {
        register_metrics();
        DeltaStreams { streams: HashMap::new(), scratch: BytesMut::new() }
    }

    /// (Re)starts the stream of a subscription: an existing stream bumps
    /// its epoch (next report is a keyframe), a new one starts fresh.
    /// Call on subscription admit *and* on retune/update.
    pub fn reset(&mut self, key: K, keyframe_every: u32) {
        self.streams
            .entry(key)
            .and_modify(|e| e.force_keyframe())
            .or_insert_with(|| DeltaEncoder::new(keyframe_every.max(1)));
    }

    /// Ensures the stream of a subscription exists *without* restarting
    /// it.  A period-only retune over an ordered transport preserves
    /// sequence continuity, so the receiver's delta base stays valid and
    /// forcing a keyframe would only waste bytes.
    pub fn ensure(&mut self, key: K, keyframe_every: u32) {
        self.streams.entry(key).or_insert_with(|| DeltaEncoder::new(keyframe_every.max(1)));
    }

    /// Drops the stream of a deleted subscription.
    pub fn remove(&mut self, key: &K) {
        self.streams.remove(key);
    }

    /// Drops every stream whose key fails the predicate (e.g. all
    /// subscriptions of a departed controller).
    pub fn retain_keys(&mut self, mut f: impl FnMut(&K) -> bool) {
        self.streams.retain(|k, _| f(k));
    }

    /// Drops every stream (controller reset).
    pub fn clear(&mut self) {
        self.streams.clear();
    }

    /// Encodes one report opportunity under the subscription's mode.
    /// Full mode bypasses the stream; delta mode diffs/suppresses.  All
    /// `flexric_sm_report_*` series are counted here.
    pub fn report(&mut self, key: K, mode: ReportMode, snap: &T, codec: SmCodec) -> ReportOut {
        match mode {
            ReportMode::Full => {
                // A mode flip back to full invalidates the delta base.
                if let Some(enc) = self.streams.get_mut(&key) {
                    enc.force_keyframe();
                }
                let buf = snap.encode_into(codec, &mut self.scratch);
                obs().bytes_full.add(buf.len() as u64);
                ReportOut::Send(buf)
            }
            ReportMode::Delta { keyframe_every } => {
                let enc = self
                    .streams
                    .entry(key)
                    .or_insert_with(|| DeltaEncoder::new(keyframe_every.max(1)));
                match enc.encode(snap, codec) {
                    DeltaOut::Keyframe(buf) | DeltaOut::Delta(buf) => {
                        ReportOut::Send(Bytes::from(buf))
                    }
                    DeltaOut::Suppressed => ReportOut::Suppressed,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::{MacStatsInd, MacUeStats};
    use crate::rlc::{RlcBearerStats, RlcStatsInd};

    fn mac(tstamp: u64, ues: &[(u16, u64)]) -> MacStatsInd {
        MacStatsInd {
            tstamp_ms: tstamp,
            cell_prbs: 106,
            ues: ues
                .iter()
                .map(|(rnti, c)| MacUeStats {
                    rnti: *rnti,
                    cqi: 12,
                    mcs: 20,
                    prbs_dl: (*c % 50) as u32,
                    tbs_dl_bytes: c * 1500,
                    dl_aggr_bytes: c * 3000,
                    ..Default::default()
                })
                .collect(),
        }
    }

    fn roundtrip(frames: &[DeltaOut], codec: SmCodec) -> Vec<DeltaEvent<MacStatsInd>> {
        let mut dec = DeltaDecoder::new();
        frames
            .iter()
            .filter_map(|f| match f {
                DeltaOut::Keyframe(b) | DeltaOut::Delta(b) => {
                    Some(dec.apply(b, codec).expect("well-formed frame"))
                }
                DeltaOut::Suppressed => None,
            })
            .collect()
    }

    #[test]
    fn keyframe_then_deltas_reconstruct_exactly() {
        for codec in SmCodec::ALL {
            let mut enc = DeltaEncoder::new(16);
            let snaps = [
                mac(0, &[(1, 10), (2, 20)]),
                mac(10, &[(1, 11), (2, 20)]),
                mac(20, &[(1, 11), (2, 20), (3, 5)]),
                mac(30, &[(2, 21), (3, 5)]),
            ];
            let frames: Vec<DeltaOut> = snaps.iter().map(|s| enc.encode(s, codec)).collect();
            assert!(matches!(frames[0], DeltaOut::Keyframe(_)), "first is keyframe");
            assert!(frames[1..].iter().all(|f| matches!(f, DeltaOut::Delta(_))));
            let events = roundtrip(&frames, codec);
            assert_eq!(events.len(), snaps.len());
            for (ev, snap) in events.iter().zip(snaps.iter()) {
                match ev {
                    DeltaEvent::Snapshot { snap: got, changed, .. } => {
                        assert_eq!(got, snap, "{codec:?} reconstruction");
                        assert_eq!(got.encode(codec), snap.encode(codec), "byte-identical");
                        assert!(*changed);
                    }
                    other => panic!("{codec:?}: unexpected {other:?}"),
                }
            }
        }
    }

    #[test]
    fn unchanged_snapshot_suppressed_timestamp_ignored() {
        let mut enc = DeltaEncoder::new(1000);
        let a = mac(0, &[(1, 10)]);
        let mut b = a.clone();
        b.tstamp_ms = 50;
        assert!(matches!(enc.encode(&a, SmCodec::Asn1Per), DeltaOut::Keyframe(_)));
        assert_eq!(enc.encode(&b, SmCodec::Asn1Per), DeltaOut::Suppressed);
        // Any content change un-suppresses.
        let mut c = b.clone();
        c.ues[0].bsr = 777;
        assert!(matches!(enc.encode(&c, SmCodec::Asn1Per), DeltaOut::Delta(_)));
    }

    #[test]
    fn periodic_keyframe_even_when_quiescent() {
        let mut enc = DeltaEncoder::new(4);
        let snap = mac(0, &[(1, 10)]);
        let kinds: Vec<u8> = (0..9)
            .map(|i| {
                let mut s = snap.clone();
                s.tstamp_ms = i * 10;
                match enc.encode(&s, SmCodec::Flatb) {
                    DeltaOut::Keyframe(_) => b'k',
                    DeltaOut::Delta(_) => b'd',
                    DeltaOut::Suppressed => b's',
                }
            })
            .collect();
        // Opportunity 1 keys; 2-3 suppress; 4th opportunity re-keys.
        assert_eq!(kinds, b"ksssksssk".to_vec());
    }

    #[test]
    fn lost_delta_detected_and_keyframe_resyncs() {
        let codec = SmCodec::Flatb;
        let mut enc = DeltaEncoder::new(100);
        let mut dec = DeltaDecoder::<MacStatsInd>::new();
        let s1 = mac(0, &[(1, 1)]);
        let s2 = mac(10, &[(1, 2)]);
        let s3 = mac(20, &[(1, 3)]);
        let DeltaOut::Keyframe(f1) = enc.encode(&s1, codec) else { panic!() };
        let DeltaOut::Delta(_lost) = enc.encode(&s2, codec) else { panic!() };
        let DeltaOut::Delta(f3) = enc.encode(&s3, codec) else { panic!() };
        assert!(matches!(dec.apply(&f1, codec).unwrap(), DeltaEvent::Snapshot { .. }));
        // The f2 delta is lost: f3 has a sequence gap.
        assert!(matches!(
            dec.apply(&f3, codec).unwrap(),
            DeltaEvent::NeedKeyframe { reason: "sequence gap" }
        ));
        // The resync path: force a keyframe (as a retune would).
        enc.force_keyframe();
        let s4 = mac(30, &[(1, 4)]);
        let DeltaOut::Keyframe(f4) = enc.encode(&s4, codec) else { panic!() };
        match dec.apply(&f4, codec).unwrap() {
            DeltaEvent::Snapshot { snap, keyframe: true, .. } => assert_eq!(snap, s4),
            other => panic!("unexpected {other:?}"),
        }
        // And the stream continues with deltas.
        let s5 = mac(40, &[(1, 5)]);
        let DeltaOut::Delta(f5) = enc.encode(&s5, codec) else { panic!() };
        match dec.apply(&f5, codec).unwrap() {
            DeltaEvent::Snapshot { snap, keyframe: false, .. } => assert_eq!(snap, s5),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(dec.resyncs, 1);
    }

    #[test]
    fn epoch_change_requires_keyframe() {
        let codec = SmCodec::Asn1Per;
        let mut enc = DeltaEncoder::new(100);
        let mut dec = DeltaDecoder::<MacStatsInd>::new();
        let DeltaOut::Keyframe(f1) = enc.encode(&mac(0, &[(1, 1)]), codec) else { panic!() };
        dec.apply(&f1, codec).unwrap();
        // A new incarnation (reconnect replay) under a bumped epoch.
        enc.force_keyframe();
        let DeltaOut::Keyframe(f2) = enc.encode(&mac(10, &[(1, 2)]), codec) else { panic!() };
        // Deltas of the new epoch apply only after its keyframe.
        let DeltaOut::Delta(f3) = enc.encode(&mac(20, &[(1, 3)]), codec) else { panic!() };
        let mut stale = DeltaDecoder::<MacStatsInd>::new();
        stale.apply(&f1, codec).unwrap();
        assert!(matches!(
            stale.apply(&f3, codec).unwrap(),
            DeltaEvent::NeedKeyframe { reason: "epoch changed" }
        ));
        dec.apply(&f2, codec).unwrap();
        assert!(matches!(dec.apply(&f3, codec).unwrap(), DeltaEvent::Snapshot { .. }));
    }

    #[test]
    fn row_reordering_reconstructs_in_order() {
        let codec = SmCodec::Flatb;
        let mut enc = DeltaEncoder::new(100);
        let mut dec = DeltaDecoder::<MacStatsInd>::new();
        let s1 = mac(0, &[(1, 1), (2, 2), (3, 3)]);
        let s2 = mac(10, &[(3, 3), (1, 1), (2, 9)]); // reordered + one change
        let DeltaOut::Keyframe(f1) = enc.encode(&s1, codec) else { panic!() };
        let f2 = match enc.encode(&s2, codec) {
            DeltaOut::Delta(f) => f,
            DeltaOut::Keyframe(f) => f, // acceptable fallback, still exact
            DeltaOut::Suppressed => panic!("content changed"),
        };
        dec.apply(&f1, codec).unwrap();
        match dec.apply(&f2, codec).unwrap() {
            DeltaEvent::Snapshot { snap, .. } => {
                assert_eq!(snap, s2);
                assert_eq!(snap.encode(codec), s2.encode(codec));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn garbage_frames_rejected_not_panicking() {
        let mut dec = DeltaDecoder::<RlcStatsInd>::new();
        assert!(dec.apply(&[], SmCodec::Asn1Per).is_err());
        let _ = dec.apply(&[0xFF; 11], SmCodec::Asn1Per);
        let _ = dec.apply(&[0x00; 32], SmCodec::Flatb);
    }

    #[test]
    fn rlc_stream_roundtrip() {
        let codec = SmCodec::Asn1Per;
        let mk = |t: u64, soj: u64| RlcStatsInd {
            tstamp_ms: t,
            bearers: vec![RlcBearerStats {
                rnti: 0x4601,
                drb_id: 1,
                tx_pdus: t,
                sojourn_us_avg: soj,
                ..Default::default()
            }],
        };
        let mut enc = DeltaEncoder::new(8);
        let mut dec = DeltaDecoder::<RlcStatsInd>::new();
        for i in 0..20u64 {
            let snap = mk(i * 10, 100 + i * 7);
            match enc.encode(&snap, codec) {
                DeltaOut::Keyframe(f) | DeltaOut::Delta(f) => match dec.apply(&f, codec).unwrap() {
                    DeltaEvent::Snapshot { snap: got, .. } => {
                        assert_eq!(got, snap);
                    }
                    other => panic!("unexpected {other:?}"),
                },
                DeltaOut::Suppressed => panic!("every report changes"),
            }
        }
        assert_eq!(dec.resyncs, 0);
    }

    #[test]
    fn delta_frames_smaller_than_full_snapshots() {
        let codec = SmCodec::Flatb;
        let base: Vec<(u16, u64)> = (0..32).map(|i| (0x4601 + i as u16, 100)).collect();
        let mut enc = DeltaEncoder::new(1000);
        let s1 = mac(0, &base);
        enc.encode(&s1, codec);
        // One UE's counters move.
        let mut bumped = base.clone();
        bumped[3].1 = 101;
        let s2 = mac(10, &bumped);
        let DeltaOut::Delta(f) = enc.encode(&s2, codec) else { panic!("expected delta") };
        let full = s2.encode(codec).len();
        assert!(
            f.len() * 4 < full,
            "delta {} B should be ≪ full {} B for a 1-of-32-UE change",
            f.len(),
            full
        );
    }

    #[test]
    fn ensure_preserves_stream_reset_rekeys() {
        let codec = SmCodec::Flatb;
        let mode = ReportMode::Delta { keyframe_every: 100 };
        let mut streams: DeltaStreams<u32, MacStatsInd> = DeltaStreams::new();
        streams.reset(7, 100);
        let ReportOut::Send(_) = streams.report(7, mode, &mac(0, &[(1, 1)]), codec) else {
            panic!()
        };
        // A soft retune (period-only change) keeps the stream: the next
        // changed report is still a delta, not a keyframe.
        streams.ensure(7, 100);
        let ReportOut::Send(f) = streams.report(7, mode, &mac(10, &[(1, 2)]), codec) else {
            panic!()
        };
        let mut dec = DeltaDecoder::<MacStatsInd>::new();
        assert!(matches!(
            dec.apply(&f, codec).unwrap(),
            DeltaEvent::NeedKeyframe { reason: "no keyframe yet" }
        ));
        // A hard reset (re-admit or resync request) bumps the epoch: the
        // next report is a keyframe again.
        streams.reset(7, 100);
        let ReportOut::Send(f) = streams.report(7, mode, &mac(20, &[(1, 3)]), codec) else {
            panic!()
        };
        match dec.apply(&f, codec).unwrap() {
            DeltaEvent::Snapshot { keyframe, .. } => assert!(keyframe),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn streams_full_mode_counts_and_mode_flip_rekeys() {
        let codec = SmCodec::Flatb;
        let mut streams: DeltaStreams<u32, MacStatsInd> = DeltaStreams::new();
        let snap = mac(0, &[(1, 1)]);
        let ReportOut::Send(full) = streams.report(7, ReportMode::Full, &snap, codec) else {
            panic!()
        };
        assert_eq!(full, snap.encode(codec));
        // Delta mode: fresh stream keys first.
        let ReportOut::Send(kf) =
            streams.report(7, ReportMode::Delta { keyframe_every: 8 }, &snap, codec)
        else {
            panic!()
        };
        assert_ne!(kf, full, "keyframe frame is wrapped, not the bare snapshot");
        // Unchanged content suppresses on the delta stream.
        let mut s2 = snap.clone();
        s2.tstamp_ms = 99;
        assert_eq!(
            streams.report(7, ReportMode::Delta { keyframe_every: 8 }, &s2, codec),
            ReportOut::Suppressed
        );
    }
}
