//! Slice control service model (SC SM, paper §6.1.2).
//!
//! Abstracts the configuration of radio-resource slices in a RAT-agnostic
//! way: a *slice scheduler* distributes resources among slices, and a
//! per-slice *UE scheduler* distributes them among the slice's UEs
//! (Fig. 12).  The SM lets a controller select the slice algorithm,
//! add/modify/delete slices with algorithm-specific parameters, and
//! associate UEs to slices.  The NVS parameters mirror the paper's
//! Appendix B: capacity slices carry a resource share, rate slices carry a
//! reserved rate over a reference rate.

use flexric_codec::error::{CodecError, Result};
use flexric_codec::fb::{FbBuilder, FbTable, TableBuilder};
use flexric_codec::per::{BitReader, BitWriter};
use flexric_codec::ByteSink;

use crate::SmPayload;

/// Shares are expressed in milli-units (1000 = 100 %), keeping the wire
/// format integer-only.
pub const SHARE_SCALE: u32 = 1000;

/// The slice-scheduling algorithm installed at the MAC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum SliceAlgo {
    /// No slicing: a single implicit slice over all resources.
    #[default]
    None = 0,
    /// Static PRB partitioning.
    Static = 1,
    /// NVS (Kokku et al.), with work-conserving sharing.
    Nvs = 2,
    /// NVS without sharing: idle slices waste their slots (Fig. 13b upper).
    NvsNoSharing = 3,
}

impl SliceAlgo {
    /// Decodes a discriminant.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(SliceAlgo::None),
            1 => Some(SliceAlgo::Static),
            2 => Some(SliceAlgo::Nvs),
            3 => Some(SliceAlgo::NvsNoSharing),
            _ => None,
        }
    }
}

/// The per-slice UE scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum UeSchedAlgo {
    /// Round-robin over backlogged UEs.
    #[default]
    RoundRobin = 0,
    /// Proportional fair.
    PropFair = 1,
    /// Maximum throughput (highest MCS first).
    MaxThroughput = 2,
}

impl UeSchedAlgo {
    /// Decodes a discriminant.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(UeSchedAlgo::RoundRobin),
            1 => Some(UeSchedAlgo::PropFair),
            2 => Some(UeSchedAlgo::MaxThroughput),
            _ => None,
        }
    }
}

/// Algorithm-specific slice parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceParams {
    /// NVS capacity slice: a share of cell resources, in milli-units.
    NvsCapacity {
        /// Resource share (`0..=1000`).
        share_milli: u32,
    },
    /// NVS rate slice: reserved rate over a reference rate.
    NvsRate {
        /// Reserved rate in kbit/s.
        rate_kbps: u32,
        /// Reference rate in kbit/s.
        ref_kbps: u32,
    },
    /// Static PRB range (inclusive).
    StaticRb {
        /// First PRB of the partition.
        lo: u16,
        /// Last PRB of the partition.
        hi: u16,
    },
}

impl SliceParams {
    /// The share of cell resources this parameterization reserves, as a
    /// fraction, given the cell's reference rate for rate slices.
    pub fn share(&self, cell_prbs: u32) -> f64 {
        match self {
            SliceParams::NvsCapacity { share_milli } => *share_milli as f64 / SHARE_SCALE as f64,
            SliceParams::NvsRate { rate_kbps, ref_kbps } => {
                if *ref_kbps == 0 {
                    0.0
                } else {
                    *rate_kbps as f64 / *ref_kbps as f64
                }
            }
            SliceParams::StaticRb { lo, hi } => {
                if hi < lo || cell_prbs == 0 {
                    0.0
                } else {
                    (*hi - *lo + 1) as f64 / cell_prbs as f64
                }
            }
        }
    }
}

/// Configuration of one slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceConf {
    /// Slice id, unique within the cell.
    pub id: u32,
    /// Free-text label ("operator A sub-slice 1").
    pub label: String,
    /// Algorithm-specific parameters.
    pub params: SliceParams,
    /// UE scheduler used inside this slice.
    pub ue_sched: UeSchedAlgo,
}

/// Control messages of the SC SM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SliceCtrl {
    /// Select the slice algorithm.
    SetAlgo {
        /// The algorithm to install.
        algo: SliceAlgo,
    },
    /// Add or reconfigure slices (upsert by id).
    AddModSlices {
        /// The slice configurations.
        slices: Vec<SliceConf>,
    },
    /// Delete slices by id.
    DelSlices {
        /// Ids to remove.
        ids: Vec<u32>,
    },
    /// Associate UEs with slices.
    AssocUeSlice {
        /// `(rnti, slice id)` pairs.
        assoc: Vec<(u16, u32)>,
    },
}

/// Per-slice status in a statistics indication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceStatus {
    /// The slice's configuration.
    pub conf: SliceConf,
    /// PRBs allocated to the slice in the reporting period.
    pub alloc_prbs: u64,
    /// MAC throughput of the slice in the period, kbit/s.
    pub thr_kbps: u64,
    /// Number of UEs associated.
    pub num_ues: u32,
}

/// A slice statistics indication: current algorithm, slices, associations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SliceStatsInd {
    /// Snapshot time in milliseconds since cell start.
    pub tstamp_ms: u64,
    /// The active slice algorithm.
    pub algo: SliceAlgo,
    /// Per-slice status.
    pub slices: Vec<SliceStatus>,
    /// UE-to-slice association, `(rnti, slice id)`.
    pub ue_assoc: Vec<(u16, u32)>,
}

// ---------------------------------------------------------------------------
// Codec helpers
// ---------------------------------------------------------------------------

fn put_params<B: ByteSink>(w: &mut BitWriter<B>, p: &SliceParams) {
    match p {
        SliceParams::NvsCapacity { share_milli } => {
            w.put_constrained(0, 0, 2);
            w.put_uint(*share_milli as u64);
        }
        SliceParams::NvsRate { rate_kbps, ref_kbps } => {
            w.put_constrained(1, 0, 2);
            w.put_uint(*rate_kbps as u64);
            w.put_uint(*ref_kbps as u64);
        }
        SliceParams::StaticRb { lo, hi } => {
            w.put_constrained(2, 0, 2);
            w.put_bits(*lo as u64, 16);
            w.put_bits(*hi as u64, 16);
        }
    }
}

fn get_params(r: &mut BitReader) -> Result<SliceParams> {
    match r.get_constrained(0, 2)? {
        0 => Ok(SliceParams::NvsCapacity { share_milli: r.get_uint()? as u32 }),
        1 => Ok(SliceParams::NvsRate {
            rate_kbps: r.get_uint()? as u32,
            ref_kbps: r.get_uint()? as u32,
        }),
        2 => Ok(SliceParams::StaticRb { lo: r.get_bits(16)? as u16, hi: r.get_bits(16)? as u16 }),
        v => Err(CodecError::BadDiscriminant { what: "slice params", value: v }),
    }
}

fn put_conf<B: ByteSink>(w: &mut BitWriter<B>, c: &SliceConf) {
    w.put_uint(c.id as u64);
    w.put_utf8(&c.label);
    put_params(w, &c.params);
    w.put_constrained(c.ue_sched as u64, 0, 2);
}

fn get_conf(r: &mut BitReader) -> Result<SliceConf> {
    let id = r.get_uint()? as u32;
    let label = r.get_utf8()?;
    let params = get_params(r)?;
    let s = r.get_constrained(0, 2)? as u8;
    let ue_sched = UeSchedAlgo::from_u8(s)
        .ok_or(CodecError::BadDiscriminant { what: "ue sched", value: s as u64 })?;
    Ok(SliceConf { id, label, params, ue_sched })
}

fn enc_params_fb(t: &mut TableBuilder, base: u16, p: &SliceParams) {
    match p {
        SliceParams::NvsCapacity { share_milli } => {
            t.u8(base, 0).u32(base + 1, *share_milli);
        }
        SliceParams::NvsRate { rate_kbps, ref_kbps } => {
            t.u8(base, 1).u32(base + 1, *rate_kbps).u32(base + 2, *ref_kbps);
        }
        SliceParams::StaticRb { lo, hi } => {
            t.u8(base, 2).u32(base + 1, *lo as u32).u32(base + 2, *hi as u32);
        }
    }
}

fn dec_params_fb(t: &FbTable, base: u16) -> Result<SliceParams> {
    match t.req_u8(base, "params kind")? {
        0 => Ok(SliceParams::NvsCapacity { share_milli: t.req_u32(base + 1, "share")? }),
        1 => Ok(SliceParams::NvsRate {
            rate_kbps: t.req_u32(base + 1, "rate")?,
            ref_kbps: t.req_u32(base + 2, "ref rate")?,
        }),
        2 => Ok(SliceParams::StaticRb {
            lo: t.req_u32(base + 1, "rb lo")? as u16,
            hi: t.req_u32(base + 2, "rb hi")? as u16,
        }),
        v => Err(CodecError::BadDiscriminant { what: "slice params", value: v as u64 }),
    }
}

fn enc_conf_fb<B: ByteSink>(b: &mut FbBuilder<B>, c: &SliceConf) -> u32 {
    let label = b.string(&c.label);
    let mut t = TableBuilder::new();
    t.u32(0, c.id).off(1, label).u8(2, c.ue_sched as u8);
    enc_params_fb(&mut t, 3, &c.params);
    t.end(b)
}

fn dec_conf_fb(t: &FbTable) -> Result<SliceConf> {
    let s = t.req_u8(2, "ue sched")?;
    Ok(SliceConf {
        id: t.req_u32(0, "slice id")?,
        label: t.string(1)?.ok_or(CodecError::Malformed { what: "slice label" })?.to_owned(),
        params: dec_params_fb(t, 3)?,
        ue_sched: UeSchedAlgo::from_u8(s)
            .ok_or(CodecError::BadDiscriminant { what: "ue sched", value: s as u64 })?,
    })
}

fn put_assoc<B: ByteSink>(w: &mut BitWriter<B>, assoc: &[(u16, u32)]) {
    w.put_length(assoc.len());
    for (rnti, slice) in assoc {
        w.put_bits(*rnti as u64, 16);
        w.put_uint(*slice as u64);
    }
}

fn get_assoc(r: &mut BitReader) -> Result<Vec<(u16, u32)>> {
    let n = r.get_length()?;
    if n > 65536 {
        return Err(CodecError::Malformed { what: "too many associations" });
    }
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push((r.get_bits(16)? as u16, r.get_uint()? as u32));
    }
    Ok(out)
}

fn enc_assoc_fb<B: ByteSink>(b: &mut FbBuilder<B>, assoc: &[(u16, u32)]) -> u32 {
    // Encoded as a flat u64 vector: (rnti << 32) | slice.
    let packed: Vec<u64> = assoc.iter().map(|(r, s)| ((*r as u64) << 32) | *s as u64).collect();
    b.vec_u64(&packed)
}

fn dec_assoc_fb(v: &flexric_codec::fb::FbVector) -> Result<Vec<(u16, u32)>> {
    let mut out = Vec::with_capacity(v.len());
    for i in 0..v.len() {
        let p = v.u64_at(i)?;
        out.push(((p >> 32) as u16, p as u32));
    }
    Ok(out)
}

impl SmPayload for SliceCtrl {
    fn encode_per<B: ByteSink>(&self, w: &mut BitWriter<B>) {
        match self {
            SliceCtrl::SetAlgo { algo } => {
                w.put_constrained(0, 0, 3);
                w.put_constrained(*algo as u64, 0, 3);
            }
            SliceCtrl::AddModSlices { slices } => {
                w.put_constrained(1, 0, 3);
                w.put_length(slices.len());
                for s in slices {
                    put_conf(w, s);
                }
            }
            SliceCtrl::DelSlices { ids } => {
                w.put_constrained(2, 0, 3);
                w.put_length(ids.len());
                for id in ids {
                    w.put_uint(*id as u64);
                }
            }
            SliceCtrl::AssocUeSlice { assoc } => {
                w.put_constrained(3, 0, 3);
                put_assoc(w, assoc);
            }
        }
    }

    fn decode_per(r: &mut BitReader) -> Result<Self> {
        match r.get_constrained(0, 3)? {
            0 => {
                let a = r.get_constrained(0, 3)? as u8;
                Ok(SliceCtrl::SetAlgo {
                    algo: SliceAlgo::from_u8(a)
                        .ok_or(CodecError::BadDiscriminant { what: "algo", value: a as u64 })?,
                })
            }
            1 => {
                let n = r.get_length()?;
                if n > 4096 {
                    return Err(CodecError::Malformed { what: "too many slices" });
                }
                let mut slices = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    slices.push(get_conf(r)?);
                }
                Ok(SliceCtrl::AddModSlices { slices })
            }
            2 => {
                let n = r.get_length()?;
                if n > 4096 {
                    return Err(CodecError::Malformed { what: "too many ids" });
                }
                let mut ids = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    ids.push(r.get_uint()? as u32);
                }
                Ok(SliceCtrl::DelSlices { ids })
            }
            3 => Ok(SliceCtrl::AssocUeSlice { assoc: get_assoc(r)? }),
            v => Err(CodecError::BadDiscriminant { what: "slice ctrl", value: v }),
        }
    }

    fn encode_fb<B: ByteSink>(&self, b: &mut FbBuilder<B>) -> u32 {
        match self {
            SliceCtrl::SetAlgo { algo } => {
                let mut t = TableBuilder::new();
                t.u8(0, 0).u8(1, *algo as u8);
                t.end(b)
            }
            SliceCtrl::AddModSlices { slices } => {
                let offs: Vec<u32> = slices.iter().map(|s| enc_conf_fb(b, s)).collect();
                let v = b.vec_off(&offs);
                let mut t = TableBuilder::new();
                t.u8(0, 1).off(2, v);
                t.end(b)
            }
            SliceCtrl::DelSlices { ids } => {
                let v = b.vec_u32(ids);
                let mut t = TableBuilder::new();
                t.u8(0, 2).off(2, v);
                t.end(b)
            }
            SliceCtrl::AssocUeSlice { assoc } => {
                let v = enc_assoc_fb(b, assoc);
                let mut t = TableBuilder::new();
                t.u8(0, 3).off(2, v);
                t.end(b)
            }
        }
    }

    fn decode_fb(t: &FbTable) -> Result<Self> {
        match t.req_u8(0, "slice ctrl kind")? {
            0 => {
                let a = t.req_u8(1, "algo")?;
                Ok(SliceCtrl::SetAlgo {
                    algo: SliceAlgo::from_u8(a)
                        .ok_or(CodecError::BadDiscriminant { what: "algo", value: a as u64 })?,
                })
            }
            1 => {
                let v = t.vector_or_empty(2)?;
                let mut slices = Vec::with_capacity(v.len());
                for i in 0..v.len() {
                    slices.push(dec_conf_fb(&v.table_at(i)?)?);
                }
                Ok(SliceCtrl::AddModSlices { slices })
            }
            2 => {
                let v = t.vector_or_empty(2)?;
                let mut ids = Vec::with_capacity(v.len());
                for i in 0..v.len() {
                    ids.push(v.u32_at(i)?);
                }
                Ok(SliceCtrl::DelSlices { ids })
            }
            3 => Ok(SliceCtrl::AssocUeSlice { assoc: dec_assoc_fb(&t.vector_or_empty(2)?)? }),
            v => Err(CodecError::BadDiscriminant { what: "slice ctrl", value: v as u64 }),
        }
    }
}

impl SmPayload for SliceStatsInd {
    fn encode_per<B: ByteSink>(&self, w: &mut BitWriter<B>) {
        w.put_uint(self.tstamp_ms);
        w.put_constrained(self.algo as u64, 0, 3);
        w.put_length(self.slices.len());
        for s in &self.slices {
            put_conf(w, &s.conf);
            w.put_uint(s.alloc_prbs);
            w.put_uint(s.thr_kbps);
            w.put_uint(s.num_ues as u64);
        }
        put_assoc(w, &self.ue_assoc);
    }

    fn decode_per(r: &mut BitReader) -> Result<Self> {
        let tstamp_ms = r.get_uint()?;
        let a = r.get_constrained(0, 3)? as u8;
        let algo = SliceAlgo::from_u8(a)
            .ok_or(CodecError::BadDiscriminant { what: "algo", value: a as u64 })?;
        let n = r.get_length()?;
        if n > 4096 {
            return Err(CodecError::Malformed { what: "too many slices" });
        }
        let mut slices = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            slices.push(SliceStatus {
                conf: get_conf(r)?,
                alloc_prbs: r.get_uint()?,
                thr_kbps: r.get_uint()?,
                num_ues: r.get_uint()? as u32,
            });
        }
        let ue_assoc = get_assoc(r)?;
        Ok(SliceStatsInd { tstamp_ms, algo, slices, ue_assoc })
    }

    fn encode_fb<B: ByteSink>(&self, b: &mut FbBuilder<B>) -> u32 {
        let offs: Vec<u32> = self
            .slices
            .iter()
            .map(|s| {
                let conf = enc_conf_fb(b, &s.conf);
                let mut t = TableBuilder::new();
                t.off(0, conf).u64(1, s.alloc_prbs).u64(2, s.thr_kbps).u32(3, s.num_ues);
                t.end(b)
            })
            .collect();
        let slices = b.vec_off(&offs);
        let assoc = enc_assoc_fb(b, &self.ue_assoc);
        let mut t = TableBuilder::new();
        t.u64(0, self.tstamp_ms).u8(1, self.algo as u8).off(2, slices).off(3, assoc);
        t.end(b)
    }

    fn decode_fb(t: &FbTable) -> Result<Self> {
        let a = t.req_u8(1, "algo")?;
        let v = t.vector_or_empty(2)?;
        let mut slices = Vec::with_capacity(v.len());
        for i in 0..v.len() {
            let st = v.table_at(i)?;
            slices.push(SliceStatus {
                conf: dec_conf_fb(&st.req_table(0, "conf")?)?,
                alloc_prbs: st.req_u64(1, "alloc prbs")?,
                thr_kbps: st.req_u64(2, "thr")?,
                num_ues: st.req_u32(3, "num ues")?,
            });
        }
        Ok(SliceStatsInd {
            tstamp_ms: t.req_u64(0, "tstamp")?,
            algo: SliceAlgo::from_u8(a)
                .ok_or(CodecError::BadDiscriminant { what: "algo", value: a as u64 })?,
            slices,
            ue_assoc: dec_assoc_fb(&t.vector_or_empty(3)?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::*;

    fn confs() -> Vec<SliceConf> {
        vec![
            SliceConf {
                id: 0,
                label: "op-a".into(),
                params: SliceParams::NvsCapacity { share_milli: 660 },
                ue_sched: UeSchedAlgo::PropFair,
            },
            SliceConf {
                id: 1,
                label: "op-b".into(),
                params: SliceParams::NvsRate { rate_kbps: 5_000, ref_kbps: 50_000 },
                ue_sched: UeSchedAlgo::RoundRobin,
            },
            SliceConf {
                id: 2,
                label: "static".into(),
                params: SliceParams::StaticRb { lo: 0, hi: 24 },
                ue_sched: UeSchedAlgo::MaxThroughput,
            },
        ]
    }

    #[test]
    fn ctrl_roundtrip() {
        roundtrip_both(&SliceCtrl::SetAlgo { algo: SliceAlgo::Nvs });
        roundtrip_both(&SliceCtrl::SetAlgo { algo: SliceAlgo::NvsNoSharing });
        roundtrip_both(&SliceCtrl::AddModSlices { slices: confs() });
        roundtrip_both(&SliceCtrl::AddModSlices { slices: vec![] });
        roundtrip_both(&SliceCtrl::DelSlices { ids: vec![0, 7, u32::MAX] });
        roundtrip_both(&SliceCtrl::AssocUeSlice {
            assoc: vec![(0x4601, 0), (0x4602, 1), (u16::MAX, u32::MAX)],
        });
        garbage_rejected::<SliceCtrl>();
    }

    #[test]
    fn stats_roundtrip() {
        roundtrip_both(&SliceStatsInd::default());
        roundtrip_both(&SliceStatsInd {
            tstamp_ms: 42,
            algo: SliceAlgo::Nvs,
            slices: confs()
                .into_iter()
                .map(|conf| SliceStatus { conf, alloc_prbs: 999, thr_kbps: 30_000, num_ues: 2 })
                .collect(),
            ue_assoc: vec![(0x4601, 0), (0x4602, 1)],
        });
        garbage_rejected::<SliceStatsInd>();
    }

    #[test]
    fn share_computation() {
        assert!((SliceParams::NvsCapacity { share_milli: 500 }.share(100) - 0.5).abs() < 1e-9);
        assert!(
            (SliceParams::NvsRate { rate_kbps: 5_000, ref_kbps: 50_000 }.share(100) - 0.1).abs()
                < 1e-9
        );
        assert!((SliceParams::StaticRb { lo: 0, hi: 24 }.share(50) - 0.5).abs() < 1e-9);
        // Degenerate cases do not divide by zero.
        assert_eq!(SliceParams::NvsRate { rate_kbps: 1, ref_kbps: 0 }.share(100), 0.0);
        assert_eq!(SliceParams::StaticRb { lo: 10, hi: 5 }.share(100), 0.0);
        assert_eq!(SliceParams::StaticRb { lo: 0, hi: 5 }.share(0), 0.0);
    }

    #[test]
    fn algo_discriminants() {
        for a in [SliceAlgo::None, SliceAlgo::Static, SliceAlgo::Nvs, SliceAlgo::NvsNoSharing] {
            assert_eq!(SliceAlgo::from_u8(a as u8), Some(a));
        }
        assert_eq!(SliceAlgo::from_u8(4), None);
        for s in [UeSchedAlgo::RoundRobin, UeSchedAlgo::PropFair, UeSchedAlgo::MaxThroughput] {
            assert_eq!(UeSchedAlgo::from_u8(s as u8), Some(s));
        }
        assert_eq!(UeSchedAlgo::from_u8(3), None);
    }
}
