//! Hello-world service model: the ping SM of the paper's RTT experiments.
//!
//! The paper modifies O-RAN's "Hello World" SM "to perform a ping by
//! sending a control message to the RAN function, to which the agent
//! responds with an indication message" (§5.2), and translates the SM 1:1
//! from ASN.1 to FB to study the E2SM-encoding impact.  [`HwPing`] is that
//! message in both directions.

use bytes::Bytes;
use flexric_codec::error::{CodecError, Result};
use flexric_codec::fb::{FbBuilder, FbTable, TableBuilder};
use flexric_codec::per::{BitReader, BitWriter};
use flexric_codec::ByteSink;

use crate::SmPayload;

/// A ping (control message) or pong (indication message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HwPing {
    /// Sequence number, echoed in the reply.
    pub seq: u32,
    /// Sender timestamp in nanoseconds (opaque to the peer, echoed back).
    pub tstamp_ns: u64,
    /// Padding payload, sized by the experiment (100 B / 1500 B in Fig. 7).
    pub payload: Bytes,
}

impl HwPing {
    /// Creates a ping with a zero-filled payload of `size` bytes.
    pub fn sized(seq: u32, tstamp_ns: u64, size: usize) -> Self {
        HwPing { seq, tstamp_ns, payload: Bytes::from(vec![0u8; size]) }
    }
}

impl SmPayload for HwPing {
    fn encode_per<B: ByteSink>(&self, w: &mut BitWriter<B>) {
        w.put_uint(self.seq as u64);
        w.put_uint(self.tstamp_ns);
        w.put_octets(&self.payload);
    }

    fn decode_per(r: &mut BitReader) -> Result<Self> {
        Ok(HwPing {
            seq: r.get_uint()? as u32,
            tstamp_ns: r.get_uint()?,
            payload: Bytes::copy_from_slice(r.get_octets()?),
        })
    }

    fn encode_fb<B: ByteSink>(&self, b: &mut FbBuilder<B>) -> u32 {
        let payload = b.blob(&self.payload);
        let mut t = TableBuilder::new();
        t.u32(0, self.seq).u64(1, self.tstamp_ns).off(2, payload);
        t.end(b)
    }

    fn decode_fb(t: &FbTable) -> Result<Self> {
        Ok(HwPing {
            seq: t.u32(0)?.ok_or(CodecError::Malformed { what: "hw seq" })?,
            tstamp_ns: t.u64(1)?.ok_or(CodecError::Malformed { what: "hw tstamp" })?,
            payload: Bytes::copy_from_slice(t.req_bytes(2, "hw payload")?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::*;
    use crate::SmCodec;

    #[test]
    fn roundtrip() {
        roundtrip_both(&HwPing::sized(1, 123_456_789, 100));
        roundtrip_both(&HwPing::sized(u32::MAX, u64::MAX, 1500));
        roundtrip_both(&HwPing { seq: 0, tstamp_ns: 0, payload: Bytes::new() });
        garbage_rejected::<HwPing>();
    }

    #[test]
    fn fb_overhead_in_paper_band() {
        // Paper §5.2: "for each FB message, we observe 30-40 B overhead".
        let ping = HwPing::sized(7, 42, 100);
        let fb = ping.encode(SmCodec::Flatb);
        let overhead = fb.len() as i64 - 100;
        assert!((20..=60).contains(&overhead), "fb overhead {overhead}");
        let per = ping.encode(SmCodec::Asn1Per);
        assert!(per.len() < fb.len());
    }
}
