//! KPM service model — the paper's Appendix A.4 notes that E2SM-KPM
//! ("Performance metrics […] defines various report types on periodic
//! timer expires") is one of the two O-RAN-standardized service models.
//! This module implements a simplified KPM v2: a controller subscribes
//! with an action definition naming 3GPP-style measurements and a
//! granularity period; the RAN function answers with measurement reports.

use flexric_codec::error::{CodecError, Result};
use flexric_codec::fb::{FbBuilder, FbTable, TableBuilder};
use flexric_codec::per::{BitReader, BitWriter};
use flexric_codec::ByteSink;

use crate::delta::{hash_str, DeltaRows};
use crate::SmPayload;

/// Well-known measurement names (3GPP TS 28.552 style).
pub mod meas {
    /// Per-UE downlink throughput (kbit/s).
    pub const DRB_UE_THP_DL: &str = "DRB.UEThpDl";
    /// Total downlink PRB usage in the period.
    pub const RRU_PRB_TOT_DL: &str = "RRU.PrbTotDl";
    /// Downlink RLC SDU delay (µs).
    pub const DRB_RLC_SDU_DELAY_DL: &str = "DRB.RlcSduDelayDl";
    /// Downlink PDCP SDU volume (bytes).
    pub const DRB_PDCP_SDU_VOLUME_DL: &str = "DRB.PdcpSduVolumeDL";
    /// Mean number of RRC-connected UEs.
    pub const RRC_CONN_MEAN: &str = "RRC.ConnMean";
    /// Handovers executed at this cell in the period (in + out).
    pub const HO_EXE_TOTAL: &str = "HO.ExeTotal";
}

/// KPM action definition: which measurements to report, how often.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KpmActionDef {
    /// Granularity period in milliseconds.
    pub granularity_ms: u32,
    /// Measurement names to collect.
    pub measurements: Vec<String>,
    /// Restrict to one UE (`None` = cell-level + all UEs).
    pub ue_filter: Option<u16>,
}

impl KpmActionDef {
    /// A cell-level definition over the given measurements.
    pub fn cell(granularity_ms: u32, measurements: &[&str]) -> Self {
        KpmActionDef {
            granularity_ms,
            measurements: measurements.iter().map(|m| (*m).to_owned()).collect(),
            ue_filter: None,
        }
    }
}

impl SmPayload for KpmActionDef {
    fn encode_per<B: ByteSink>(&self, w: &mut BitWriter<B>) {
        w.put_uint(self.granularity_ms as u64);
        w.put_length(self.measurements.len());
        for m in &self.measurements {
            w.put_utf8(m);
        }
        w.put_bit(self.ue_filter.is_some());
        if let Some(u) = self.ue_filter {
            w.put_bits(u as u64, 16);
        }
    }

    fn decode_per(r: &mut BitReader) -> Result<Self> {
        let granularity_ms = r.get_uint()? as u32;
        let n = r.get_length()?;
        if n > 1024 {
            return Err(CodecError::Malformed { what: "too many measurements" });
        }
        let mut measurements = Vec::with_capacity(n.min(32));
        for _ in 0..n {
            measurements.push(r.get_utf8()?);
        }
        let ue_filter = if r.get_bit()? { Some(r.get_bits(16)? as u16) } else { None };
        Ok(KpmActionDef { granularity_ms, measurements, ue_filter })
    }

    fn encode_fb<B: ByteSink>(&self, b: &mut FbBuilder<B>) -> u32 {
        let offs: Vec<u32> = self.measurements.iter().map(|m| b.string(m)).collect();
        let v = b.vec_off(&offs);
        let mut t = TableBuilder::new();
        t.u32(0, self.granularity_ms).off(1, v);
        if let Some(u) = self.ue_filter {
            t.u16(2, u);
        }
        t.end(b)
    }

    fn decode_fb(t: &FbTable) -> Result<Self> {
        let v = t.vector_or_empty(1)?;
        let mut measurements = Vec::with_capacity(v.len());
        for i in 0..v.len() {
            measurements.push(
                std::str::from_utf8(v.bytes_at(i)?).map_err(|_| CodecError::BadUtf8)?.to_owned(),
            );
        }
        Ok(KpmActionDef {
            granularity_ms: t.req_u32(0, "granularity")?,
            measurements,
            ue_filter: t.u16(2)?,
        })
    }
}

/// One measurement record: a named value, optionally labelled with a UE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KpmRecord {
    /// Measurement name.
    pub name: String,
    /// UE label (`None` = cell-level).
    pub rnti: Option<u16>,
    /// Integer value (unit depends on the measurement).
    pub value: u64,
}

/// A KPM measurement report.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KpmReport {
    /// End of the granularity period, ms.
    pub tstamp_ms: u64,
    /// Granularity period, ms.
    pub granularity_ms: u32,
    /// The records.
    pub records: Vec<KpmRecord>,
}

impl SmPayload for KpmReport {
    fn encode_per<B: ByteSink>(&self, w: &mut BitWriter<B>) {
        w.put_uint(self.tstamp_ms);
        w.put_uint(self.granularity_ms as u64);
        w.put_length(self.records.len());
        for rec in &self.records {
            w.put_utf8(&rec.name);
            w.put_bit(rec.rnti.is_some());
            if let Some(u) = rec.rnti {
                w.put_bits(u as u64, 16);
            }
            w.put_uint(rec.value);
        }
    }

    fn decode_per(r: &mut BitReader) -> Result<Self> {
        let tstamp_ms = r.get_uint()?;
        let granularity_ms = r.get_uint()? as u32;
        let n = r.get_length()?;
        if n > 65536 {
            return Err(CodecError::Malformed { what: "too many records" });
        }
        let mut records = Vec::with_capacity(n.min(256));
        for _ in 0..n {
            let name = r.get_utf8()?;
            let rnti = if r.get_bit()? { Some(r.get_bits(16)? as u16) } else { None };
            let value = r.get_uint()?;
            records.push(KpmRecord { name, rnti, value });
        }
        Ok(KpmReport { tstamp_ms, granularity_ms, records })
    }

    fn encode_fb<B: ByteSink>(&self, b: &mut FbBuilder<B>) -> u32 {
        let offs: Vec<u32> = self
            .records
            .iter()
            .map(|rec| {
                let name = b.string(&rec.name);
                let mut t = TableBuilder::new();
                t.off(0, name).u64(2, rec.value);
                if let Some(u) = rec.rnti {
                    t.u16(1, u);
                }
                t.end(b)
            })
            .collect();
        let v = b.vec_off(&offs);
        let mut t = TableBuilder::new();
        t.u64(0, self.tstamp_ms).u32(1, self.granularity_ms).off(2, v);
        t.end(b)
    }

    fn decode_fb(t: &FbTable) -> Result<Self> {
        let v = t.vector_or_empty(2)?;
        let mut records = Vec::with_capacity(v.len());
        for i in 0..v.len() {
            let rt = v.table_at(i)?;
            records.push(KpmRecord {
                name: rt
                    .string(0)?
                    .ok_or(CodecError::Malformed { what: "record name" })?
                    .to_owned(),
                rnti: rt.u16(1)?,
                value: rt.req_u64(2, "record value")?,
            });
        }
        Ok(KpmReport {
            tstamp_ms: t.req_u64(0, "tstamp")?,
            granularity_ms: t.req_u32(1, "granularity")?,
            records,
        })
    }
}

/// Delta streams diff KPM *values* only: record identity (name + UE
/// label) lives in [`DeltaRows::structure_sig`], so any change to the
/// measurement set — new UE, renamed measurement, reordering — forces a
/// keyframe rather than trying to carry a string through a delta frame.
/// `new_row` is therefore unreachable in a consistent stream (and an
/// inconsistent one fails the post-hash and resyncs).
impl DeltaRows for KpmReport {
    type Row = KpmRecord;
    const FIELD_COUNT: u32 = 1;
    const NAME: &'static str = "kpm";

    fn tstamp_ms(&self) -> u64 {
        self.tstamp_ms
    }
    fn set_tstamp_ms(&mut self, t: u64) {
        self.tstamp_ms = t;
    }
    fn aux(&self) -> u64 {
        self.granularity_ms as u64
    }
    fn set_aux(&mut self, v: u64) {
        self.granularity_ms = v as u32;
    }
    fn rows(&self) -> &[KpmRecord] {
        &self.records
    }
    fn rows_mut(&mut self) -> &mut Vec<KpmRecord> {
        &mut self.records
    }
    fn row_key(row: &KpmRecord) -> u32 {
        let h = hash_str(0xcbf2_9ce4_8422_2325, &row.name);
        let h = match row.rnti {
            Some(r) => h.wrapping_mul(31).wrapping_add(r as u64 + 1),
            None => h.wrapping_mul(31),
        };
        (h ^ (h >> 32)) as u32
    }
    fn field(row: &KpmRecord, _i: u32) -> u64 {
        row.value
    }
    fn set_field(row: &mut KpmRecord, _i: u32, v: u64) {
        row.value = v;
    }
    fn new_row(_key: u32) -> KpmRecord {
        KpmRecord { name: String::new(), rnti: None, value: 0 }
    }
    fn structure_sig(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for rec in &self.records {
            h = hash_str(h, &rec.name);
            h = h.wrapping_mul(31).wrapping_add(rec.rnti.map_or(0, |r| r as u64 + 1));
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::*;

    #[test]
    fn action_def_roundtrip() {
        roundtrip_both(&KpmActionDef::cell(1000, &[meas::DRB_UE_THP_DL, meas::RRU_PRB_TOT_DL]));
        roundtrip_both(&KpmActionDef {
            granularity_ms: 10,
            measurements: vec![],
            ue_filter: Some(0x4601),
        });
        garbage_rejected::<KpmActionDef>();
    }

    #[test]
    fn delta_stream_values_only_and_structure_change_rekeys() {
        use crate::delta::{DeltaDecoder, DeltaEncoder, DeltaEvent, DeltaOut};
        use crate::SmCodec;
        let codec = SmCodec::Asn1Per;
        let mk = |t: u64, prb: u64, thp: u64| KpmReport {
            tstamp_ms: t,
            granularity_ms: 1_000,
            records: vec![
                KpmRecord { name: meas::RRU_PRB_TOT_DL.into(), rnti: None, value: prb },
                KpmRecord { name: meas::DRB_UE_THP_DL.into(), rnti: Some(0x4601), value: thp },
            ],
        };
        let mut enc = DeltaEncoder::new(100);
        let mut dec = DeltaDecoder::<KpmReport>::new();
        let s1 = mk(0, 100, 30_000);
        let s2 = mk(1000, 120, 31_000);
        let DeltaOut::Keyframe(f1) = enc.encode(&s1, codec) else { panic!() };
        let DeltaOut::Delta(f2) = enc.encode(&s2, codec) else { panic!("values-only delta") };
        dec.apply(&f1, codec).unwrap();
        match dec.apply(&f2, codec).unwrap() {
            DeltaEvent::Snapshot { snap, .. } => {
                assert_eq!(snap, s2);
                assert_eq!(snap.encode(codec), s2.encode(codec));
            }
            other => panic!("unexpected {other:?}"),
        }
        // A new record (new UE) changes the structure signature: keyframe.
        let mut s3 = mk(2000, 120, 31_000);
        s3.records.push(KpmRecord {
            name: meas::DRB_UE_THP_DL.into(),
            rnti: Some(0x4602),
            value: 5_000,
        });
        assert!(matches!(enc.encode(&s3, codec), DeltaOut::Keyframe(_)));
    }

    #[test]
    fn report_roundtrip() {
        roundtrip_both(&KpmReport::default());
        roundtrip_both(&KpmReport {
            tstamp_ms: 5_000,
            granularity_ms: 1_000,
            records: vec![
                KpmRecord { name: meas::RRU_PRB_TOT_DL.into(), rnti: None, value: 106_000 },
                KpmRecord { name: meas::DRB_UE_THP_DL.into(), rnti: Some(0x4601), value: 30_000 },
                KpmRecord { name: meas::RRC_CONN_MEAN.into(), rnti: None, value: 3 },
            ],
        });
        garbage_rejected::<KpmReport>();
    }
}
